//===- fig13b_fault_scaling.cpp - Fig. 13b: fault-tolerance scaling ----------===//
//
// Reproduces Fig. 13b: simulation time of the MTBDD fault-tolerance
// analysis (compilation excluded) as the network size and the bound on
// link failures grow, on symmetric fat trees and the asymmetric
// USCarrier-style WAN.
//
// Expected shape: fat trees scale gracefully (scenario classes collapse
// via MTBDD sharing); USCarrier degrades faster as failures increase
// because its routes vary wildly across scenarios (Sec. 6.3).
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "bench/BenchUtil.h"
#include "net/Generators.h"

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  struct Net {
    std::string Name;
    std::string Src;
    unsigned MaxFailures;
  };
  std::vector<Net> Nets;
  std::vector<unsigned> Ks = A.Paper   ? std::vector<unsigned>{12, 16, 20, 28}
                             : A.Smoke ? std::vector<unsigned>{4}
                                       : std::vector<unsigned>{4, 6, 8};
  for (unsigned K : Ks)
    Nets.push_back({"Fat" + std::to_string(K), generateSpSingle(K),
                    A.Smoke ? 2u : 3u});
  // The WAN is asymmetric: multi-failure scenarios share little, so the
  // default stops at 2 failures (use --paper for 3, as in the figure).
  Nets.push_back({"USCarrier", generateUsCarrier(),
                  A.Paper ? 3u : A.Smoke ? 1u : 2u});

  std::printf("Fig. 13b — fault-tolerance simulation time (s) vs number of "
              "link failures\n(compilation excluded).\n\n");
  Table T({"network", "nodes/links", "1-link (s)", "2-links (s)",
           "3-links (s)"});
  JsonReport J;

  for (const Net &N : Nets) {
    DiagnosticEngine Diags;
    auto P = loadGenerated(N.Src, Diags);
    if (!P) {
      Diags.printToStderr();
      return 1;
    }
    std::vector<std::string> Cells = {
        N.Name, std::to_string(P->numNodes()) + "/" +
                    std::to_string(P->links().size())};
    // One context per network, reused across failure budgets: each run
    // garbage-collects the previous one's diagrams instead of rebuilding
    // the arena (the cross-scenario reuse the memory-system overhaul buys).
    NvContext Ctx(P->numNodes());
    for (unsigned F = 1; F <= 3; ++F) {
      if (F > N.MaxFailures) {
        Cells.push_back("(skipped)");
        continue;
      }
      FtOptions Opts;
      Opts.LinkFailures = F;
      FtRunResult R = runFaultTolerance(*P, Opts, /*Compiled=*/true, Diags,
                                        /*CheckAsserts=*/false, &Ctx);
      Cells.push_back(R.Converged ? sec(R.SimulateMs) : "diverged");

      uint64_t Lookups = R.CacheHits + R.CacheMisses;
      BddManager::GcStats Gc = Ctx.Mgr.gcStats();
      J.begin("fig13b")
          .field("network", N.Name)
          .field("outcome", R.Outcome.ok() ? "ok" : R.Outcome.str())
          .field("nodes", static_cast<uint64_t>(P->numNodes()))
          .field("links", static_cast<uint64_t>(P->links().size()))
          .field("failures", static_cast<uint64_t>(F))
          .field("simulate_ms", R.SimulateMs)
          .field("pops", R.Stats.Pops)
          .field("cache_hit_rate",
                 Lookups ? static_cast<double>(R.CacheHits) / Lookups : 0.0)
          .field("memory_bytes", static_cast<uint64_t>(Ctx.Mgr.memoryBytes()))
          .field("peak_nodes", static_cast<uint64_t>(Gc.PeakNodes))
          .field("gc_collections", Gc.Collections)
          .field("gc_nodes_reclaimed", Gc.NodesReclaimed);
    }
    T.row(Cells);
  }
  T.print();
  if (!J.writeTo(A.JsonPath))
    return 1;
  return 0;
}
