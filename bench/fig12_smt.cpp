//===- fig12_smt.cpp - Fig. 12: SMT solve time, NV vs MineSweeper ------------===//
//
// Reproduces Fig. 12: per-network SMT solve time of the reachability
// property for NV's optimizing encoder vs the MineSweeper-style baseline
// (no partial evaluation, a named constant per intermediate), on SP(k)
// and FAT(k) fat trees.
//
// Expected shape (Sec. 6.2): the two are comparable on shortest-path
// policies; on the tag-and-filter FAT policy the baseline blows up and
// eventually times out, while NV degrades far more gently.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "net/Generators.h"
#include "smt/Verifier.h"

using namespace nv;
using namespace nvbench;

namespace {

std::string solveCell(const Program &P, bool Baseline, unsigned TimeoutSec,
                      uint64_t *Asserts = nullptr) {
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  Opts.TimeoutMs = TimeoutSec * 1000;
  if (Baseline) {
    Opts.Smt.ConstantFold = false;
    Opts.Smt.NameIntermediates = true;
    Opts.UseTacticPipeline = false;
  }
  VerifyResult R = verifyProgram(P, Opts, Diags);
  if (Asserts)
    *Asserts = R.NumAssertions;
  // Timeouts (and any budget/cancellation trip) surface as
  // ResourceExhausted under the run-governance layer; Unknown is genuine
  // solver incompleteness.
  if (R.Status == VerifyStatus::ResourceExhausted) {
    std::string TO = ">";
    TO += std::to_string(TimeoutSec);
    TO += "s T/O";
    return TO;
  }
  if (R.Status == VerifyStatus::Unknown)
    return "unknown";
  if (R.Status == VerifyStatus::EncodingError)
    return "error";
  std::string Verdict = R.Status == VerifyStatus::Verified ? "" : " (cex!)";
  return ms(R.SolveMs) + Verdict;
}

} // namespace

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  std::vector<unsigned> Ks = A.Paper ? std::vector<unsigned>{8, 10, 12}
                                     : std::vector<unsigned>{4, 6, 8};

  std::printf("Fig. 12 — SMT solve time (ms): reachability of a single "
              "announced prefix.\n"
              "NV = optimizing pipeline; MS = MineSweeper-style baseline "
              "(no partial eval,\nnamed intermediates). Timeout %us.\n\n",
              A.TimeoutSec);

  Table T({"network", "nodes", "NV solve (ms)", "MS solve (ms)",
           "NV #asserts", "MS #asserts"});
  for (bool Fat : {false, true}) {
    for (unsigned K : Ks) {
      DiagnosticEngine Diags;
      auto P = loadGenerated(
          Fat ? generateFatSingle(K, 0, /*AssertTorsOnly=*/false)
              : generateSpSingle(K),
          Diags);
      if (!P) {
        Diags.printToStderr();
        return 1;
      }
      uint64_t ANv = 0, AMs = 0;
      std::string Nv = solveCell(*P, false, A.TimeoutSec, &ANv);
      std::string Ms = solveCell(*P, true, A.TimeoutSec, &AMs);
      T.row({(Fat ? "FAT" : "SP") + std::to_string(K),
             std::to_string(P->numNodes()), Nv, Ms, std::to_string(ANv),
             std::to_string(AMs)});
    }
  }
  T.print();
  return 0;
}
