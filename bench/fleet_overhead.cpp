//===- fleet_overhead.cpp - Crash isolation tax of the worker fleet ----------===//
//
// Measures what `--workers N` costs: the same per-scenario naive units
// run (a) in-process, serially, through the canonical record producer,
// (b) on a 1-worker fleet — same serial schedule plus fork/exec, frame
// encode/decode, heartbeats, and pipe hops, so the difference divided by
// the job count is the per-job dispatch overhead — and (c) on a
// --threads-wide fleet, showing the isolation tax is bought back by
// parallelism. The CI bench-smoke stage tracks inproc_ms and fleet_ms in
// BENCH_2.json via bench_compare.py.
//
// The binary is its own fleet worker (re-exec'd with --fleet-worker K L,
// regenerating the identical network from the same generator seed), so
// the benchmark needs no other binary at run time.
//
//===----------------------------------------------------------------------===//

#include "baselines/NaiveFailures.h"
#include "bench/BenchUtil.h"
#include "core/Parser.h"
#include "net/Generators.h"
#include "support/Fleet.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <cstring>

using namespace nv;
using namespace nvbench;

namespace {

/// Parses + type-checks the generated source and builds the bits every
/// mode shares: scenarios, one evaluator, the pinned drop value.
struct NaiveSetup {
  std::optional<Program> P;
  std::unique_ptr<NvContext> Ctx;
  std::unique_ptr<InterpProgramEvaluator> Eval;
  const Value *Drop = nullptr;
  std::vector<FtScenario> Scenarios;

  bool init(const std::string &Src, const FtOptions &Opts) {
    DiagnosticEngine Diags;
    P = loadGenerated(Src, Diags);
    if (!P) {
      Diags.printToStderr();
      return false;
    }
    Ctx = std::make_unique<NvContext>(P->numNodes());
    Eval = std::make_unique<InterpProgramEvaluator>(*Ctx, *P);
    Drop = Ctx->noneV();
    Ctx->pinValue(Drop);
    Scenarios = enumerateScenarios(*P, Opts);
    return true;
  }
};

/// Worker half: regenerate the same network, serve scenario jobs.
int fleetWorker(unsigned K, unsigned Links) {
  FtOptions Opts;
  Opts.LinkFailures = Links;
  NaiveSetup S;
  if (!S.init(generateSpSingle(K), Opts))
    return 2;
  return runFleetWorker([&](const FleetJob &J) {
    size_t I = std::strtoull(J.Key.c_str() + 1, nullptr, 10);
    return runNaiveScenarioRecord(*S.P, *S.Eval, S.Scenarios, I, S.Drop,
                                  Opts);
  });
}

} // namespace

int main(int argc, char **argv) {
  if (argc >= 4 && !std::strcmp(argv[1], "--fleet-worker"))
    return fleetWorker(static_cast<unsigned>(atoi(argv[2])),
                       static_cast<unsigned>(atoi(argv[3])));

  Args A = Args::parse(argc, argv);
  std::vector<unsigned> Ks = A.Paper   ? std::vector<unsigned>{8, 12}
                             : A.Smoke ? std::vector<unsigned>{4}
                                       : std::vector<unsigned>{4, 6};
  unsigned Links = 2;
  unsigned ParWorkers = A.Threads > 1 ? A.Threads : 4;

  std::printf("Fleet overhead — naive per-scenario units in-process vs on "
              "crash-isolated workers\n(--workers 1 isolates the dispatch "
              "tax; --workers %u shows it bought back).\n\n",
              ParWorkers);
  Table T({"network", "jobs", "in-process (s)", "fleet 1w (s)",
           "fleet " + std::to_string(ParWorkers) + "w (s)",
           "dispatch/job (ms)"});
  JsonReport J;

  for (unsigned K : Ks) {
    FtOptions Opts;
    Opts.LinkFailures = Links;
    NaiveSetup S;
    if (!S.init(generateSpSingle(K), Opts))
      return 1;
    std::string Name = "Fat" + std::to_string(K);
    size_t Jobs = S.Scenarios.size();

    // (a) In-process serial: the floor the fleet is measured against.
    Stopwatch W;
    for (size_t I = 0; I < Jobs; ++I)
      (void)runNaiveScenarioRecord(*S.P, *S.Eval, S.Scenarios, I, S.Drop,
                                   Opts);
    double InprocMs = W.elapsedMs();

    std::vector<FleetJob> JobList;
    for (size_t I = 0; I < Jobs; ++I)
      JobList.push_back({naiveScenarioKey(I), ""});
    FleetOptions FO;
    FO.WorkerArgv = {getExecutablePath(), "--fleet-worker",
                     std::to_string(K), std::to_string(Links)};
    FO.Verbose = false;

    // (b) 1-worker fleet: same serial schedule + the whole isolation tax.
    FO.Workers = 1;
    W.restart();
    FleetResult F1 = runFleet(FO, JobList);
    double Fleet1Ms = W.elapsedMs();

    // (c) the workers the crash isolation was bought alongside.
    FO.Workers = ParWorkers;
    W.restart();
    FleetResult FN = runFleet(FO, JobList);
    double FleetNMs = W.elapsedMs();

    if (!F1.Outcome.ok() || !FN.Outcome.ok() ||
        F1.Results.size() != Jobs || FN.Results.size() != Jobs) {
      std::fprintf(stderr, "fleet run degraded: %s / %s\n",
                   F1.Outcome.str().c_str(), FN.Outcome.str().c_str());
      return 1;
    }

    double DispatchMs = Jobs ? (Fleet1Ms - InprocMs) / double(Jobs) : 0;
    char Disp[32];
    std::snprintf(Disp, sizeof(Disp), "%.3f", DispatchMs);
    T.row({Name, std::to_string(Jobs), sec(InprocMs), sec(Fleet1Ms),
           sec(FleetNMs), Disp});

    J.begin("fleet_overhead")
        .field("network", Name)
        .field("outcome", "ok")
        .field("links", static_cast<uint64_t>(Links))
        .field("jobs", static_cast<uint64_t>(Jobs))
        .field("workers", static_cast<uint64_t>(ParWorkers))
        .field("inproc_ms", InprocMs)
        .field("fleet_ms", Fleet1Ms)
        .field("fleet_par_ms", FleetNMs)
        .field("dispatch_ms_per_job", DispatchMs);
  }
  T.print();
  if (!J.writeTo(A.JsonPath))
    return 1;
  return 0;
}
