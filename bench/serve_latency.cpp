//===- serve_latency.cpp - Cold CLI pipeline vs warm serve session -----------===//
//
// Measures what `nv serve` exists to buy: the latency of a repeat
// fault-tolerance query against a resident session versus the cold cost
// of the same query as a one-shot CLI-style invocation that repays the
// whole pipeline every time. Both warm layers are reported — the memoized
// repeat (an identical query answered from the session's result cache,
// the daemon's steady-state repeat latency) and the "fresh" recompute
// (cached transform/evaluators, but the meta-simulation re-runs).
//
// The CI bench-smoke stage runs this with --smoke --min-speedup N and
// fails the build when warm repeats stop being at least N times faster
// than cold runs — the regression gate for the service's reason to exist.
//
// Extra flags (beyond the standard BenchUtil set):
//   --min-speedup X   exit 1 unless every network's warm speedup >= X
//   --repeats N       warm repeats per network (default 10)
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "bench/BenchUtil.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "net/Generators.h"
#include "serve/Serve.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>

using namespace nv;
using namespace nvbench;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

/// One cold query: everything a fresh `nv ft` process does after argv
/// parsing — parse, typecheck, transform, build evaluators, simulate,
/// check. Returns the wall time, or a negative value on failure.
double coldQuery(const std::string &Src, unsigned LinkFailures) {
  Stopwatch W;
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  if (!P || !typeCheck(*P, Diags))
    return -1;
  FtOptions Opts;
  Opts.LinkFailures = LinkFailures;
  FtRunResult R = runFaultTolerance(*P, Opts, /*Compiled=*/false, Diags);
  if (!R.Outcome.ok() || !R.Converged)
    return -1;
  return W.elapsedMs();
}

} // namespace

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  double MinSpeedup = 0;
  unsigned Repeats = 10;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--min-speedup") && I + 1 < argc)
      MinSpeedup = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--repeats") && I + 1 < argc)
      Repeats = static_cast<unsigned>(std::atoi(argv[++I]));
  }

  struct Net {
    std::string Name;
    std::string Src;
    unsigned LinkFailures;
  };
  std::vector<Net> Nets;
  std::vector<unsigned> Ks = A.Paper   ? std::vector<unsigned>{8, 12, 16}
                             : A.Smoke ? std::vector<unsigned>{4}
                                       : std::vector<unsigned>{4, 6, 8};
  for (unsigned K : Ks)
    Nets.push_back({"Fat" + std::to_string(K), generateSpSingle(K),
                    A.Smoke ? 1u : 2u});

  std::printf("serve latency — cold one-shot pipeline vs warm resident "
              "session (ft query).\n\n");
  Table T({"network", "cold (ms)", "recompute (ms)", "repeat (ms)", "speedup"});
  JsonReport J;
  bool GateOk = true;

  for (const Net &N : Nets) {
    // Cold: a fresh pipeline per iteration, like one CLI invocation.
    std::vector<double> ColdMs;
    for (unsigned I = 0; I < 3; ++I) {
      double Ms = coldQuery(N.Src, N.LinkFailures);
      if (Ms < 0) {
        std::fprintf(stderr, "%s: cold query failed\n", N.Name.c_str());
        return 1;
      }
      ColdMs.push_back(Ms);
    }

    // Warm: load once into a serve session, then repeat the same query.
    ServeConfig Cfg;
    Cfg.Threads = 1;
    auto Res = ServeCore::create(Cfg);
    if (!Res.Core) {
      std::fprintf(stderr, "serve core: %s\n", Res.Error.c_str());
      return 1;
    }
    Json LoadReq = Json::object();
    LoadReq.set("verb", "load");
    LoadReq.set("session", "bench");
    LoadReq.set("program", N.Src);
    Json Load = Res.Core->executeLine(LoadReq.dump());
    std::string FtLine = "{\"verb\":\"ft\",\"session\":\"bench\",\"links\":" +
                         std::to_string(N.LinkFailures) + "}";
    Json First = Res.Core->executeLine(FtLine); // the session's cold miss
    if (Load.getNumber("code", -1) != 0 || First.getNumber("code", -1) > 1) {
      std::fprintf(stderr, "%s: serve setup failed: %s / %s\n", N.Name.c_str(),
                   Load.dump().c_str(), First.dump().c_str());
      return 1;
    }
    std::string FreshLine = FtLine;
    FreshLine.insert(FreshLine.size() - 1, ",\"fresh\":true");
    std::vector<double> RecomputeMs, RepeatMs;
    for (unsigned I = 0; I < Repeats; ++I) {
      Stopwatch W;
      Json R = Res.Core->executeLine(FreshLine);
      double Ms = W.elapsedMs();
      if (R.getNumber("code", -1) > 1 || !R.getBool("warm")) {
        std::fprintf(stderr, "%s: warm recompute went cold: %s\n",
                     N.Name.c_str(), R.dump().c_str());
        return 1;
      }
      RecomputeMs.push_back(Ms);

      W.restart();
      Json C = Res.Core->executeLine(FtLine);
      Ms = W.elapsedMs();
      if (C.getNumber("code", -1) > 1 || !C.getBool("cached")) {
        std::fprintf(stderr, "%s: repeat missed the result memo: %s\n",
                     N.Name.c_str(), C.dump().c_str());
        return 1;
      }
      RepeatMs.push_back(Ms);
    }

    double Cold = median(ColdMs), Recompute = median(RecomputeMs),
           Repeat = median(RepeatMs);
    double Speedup = Repeat > 0 ? Cold / Repeat : 0;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0fx", Speedup);
    T.row({N.Name, ms(Cold), ms(Recompute), ms(Repeat), Buf});
    J.begin("serve_latency")
        .field("network", N.Name)
        .field("link_failures", static_cast<uint64_t>(N.LinkFailures))
        .field("cold_ms", Cold)
        .field("warm_recompute_ms", Recompute)
        .field("warm_repeat_ms", Repeat)
        .field("speedup", Speedup);
    if (MinSpeedup > 0 && Speedup < MinSpeedup) {
      std::fprintf(stderr,
                   "%s: warm-repeat speedup %.1fx below the --min-speedup "
                   "%.1fx gate (cold %.2fms, repeat %.2fms)\n",
                   N.Name.c_str(), Speedup, MinSpeedup, Cold, Repeat);
      GateOk = false;
    }
  }

  T.print();
  if (!J.writeTo(A.JsonPath))
    return 1;
  if (!GateOk)
    return 1;
  if (MinSpeedup > 0)
    std::printf("\nwarm-speedup gate (>= %.1fx): ok\n", MinSpeedup);
  return 0;
}
