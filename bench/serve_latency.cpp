//===- serve_latency.cpp - Cold CLI pipeline vs warm serve session -----------===//
//
// Measures what `nv serve` exists to buy: the latency of a repeat
// fault-tolerance query against a resident session versus the cold cost
// of the same query as a one-shot CLI-style invocation that repays the
// whole pipeline every time. Both warm layers are reported — the memoized
// repeat (an identical query answered from the session's result cache,
// the daemon's steady-state repeat latency) and the "fresh" recompute
// (cached transform/evaluators, but the meta-simulation re-runs).
//
// The CI bench-smoke stage runs this with --smoke --min-speedup N and
// fails the build when warm repeats stop being at least N times faster
// than cold runs — the regression gate for the service's reason to exist.
//
// Extra flags (beyond the standard BenchUtil set):
//   --min-speedup X   exit 1 unless every network's warm speedup >= X
//   --repeats N       warm repeats per network (default 10)
//   --saturate        overload mode instead: 8 closed-loop submitters
//                     against a 2-worker core with MaxInflight 2 /
//                     QueueDepth 4 (capacity 6 < offered 8, so admission
//                     must shed). Emits shed_rate and accepted_p99_ms;
//                     exits 1 if nothing was shed, anything shed was
//                     journal-visible, or no request was accepted.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "bench/BenchUtil.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "net/Generators.h"
#include "serve/Serve.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <thread>

using namespace nv;
using namespace nvbench;

namespace {

double median(std::vector<double> Xs) {
  std::sort(Xs.begin(), Xs.end());
  size_t N = Xs.size();
  return N % 2 ? Xs[N / 2] : (Xs[N / 2 - 1] + Xs[N / 2]) / 2;
}

double percentileOf(std::vector<double> Xs, double P) {
  if (Xs.empty())
    return 0;
  std::sort(Xs.begin(), Xs.end());
  double Idx = P * static_cast<double>(Xs.size() - 1);
  size_t Lo = static_cast<size_t>(Idx);
  size_t Hi = std::min(Lo + 1, Xs.size() - 1);
  return Xs[Lo] + (Xs[Hi] - Xs[Lo]) * (Idx - static_cast<double>(Lo));
}

/// Saturation mode: drive a deliberately small core (2 workers,
/// MaxInflight 2, QueueDepth 4) with 8 closed-loop submitters. Offered
/// concurrency 8 > capacity 6, so admission control must shed; what the
/// gate pins down is that it sheds *cleanly* — overloaded responses with
/// a retry_after_ms hint, accepted requests finishing with a bounded
/// p99, and nothing shed ever reaching the journal.
int runSaturate(const Args &A) {
  ServeConfig Cfg;
  Cfg.Threads = 3; // 2 workers run requests; see MaxInflight default
  Cfg.MaxInflight = 2;
  Cfg.QueueDepth = 4;
  auto Res = ServeCore::create(Cfg);
  if (!Res.Core) {
    std::fprintf(stderr, "serve core: %s\n", Res.Error.c_str());
    return 1;
  }
  ServeCore &Core = *Res.Core;
  Json LoadReq = Json::object();
  LoadReq.set("verb", "load");
  LoadReq.set("session", "bench");
  LoadReq.set("program", generateSpSingle(4));
  if (Core.executeLine(LoadReq.dump()).getNumber("code", -1) != 0) {
    std::fprintf(stderr, "saturate: load failed\n");
    return 1;
  }
  // "fresh" on every query so the result memo cannot absorb the load.
  const std::string Line =
      "{\"verb\":\"ft\",\"session\":\"bench\",\"links\":1,\"fresh\":true}";

  const unsigned Submitters = 8;
  const unsigned PerThread = A.Smoke ? 15 : 40;
  std::atomic<uint64_t> Shed{0}, AcceptedOk{0}, Failed{0};
  std::atomic<uint64_t> RetryHints{0};
  std::mutex LatM;
  std::vector<double> AcceptedMs;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Submitters; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I < PerThread; ++I) {
        Stopwatch W;
        Json R = Core.submit(Line)->wait();
        double Ms = W.elapsedMs();
        if (R.getBool("overloaded")) {
          Shed.fetch_add(1, std::memory_order_relaxed);
          if (R.getNumber("retry_after_ms", 0) > 0)
            RetryHints.fetch_add(1, std::memory_order_relaxed);
        } else if (R.getNumber("code", -1) <= 1) {
          AcceptedOk.fetch_add(1, std::memory_order_relaxed);
          std::lock_guard<std::mutex> L(LatM);
          AcceptedMs.push_back(Ms);
        } else {
          Failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  uint64_t Offered = static_cast<uint64_t>(Submitters) * PerThread;
  double ShedRate = static_cast<double>(Shed) / static_cast<double>(Offered);
  double P99 = percentileOf(AcceptedMs, 0.99);
  double P50 = percentileOf(AcceptedMs, 0.50);

  Table T({"offered", "accepted", "shed", "shed rate", "p50 (ms)",
           "p99 (ms)"});
  char RateBuf[32];
  std::snprintf(RateBuf, sizeof(RateBuf), "%.1f%%", 100 * ShedRate);
  T.row({std::to_string(Offered), std::to_string(AcceptedOk.load()),
         std::to_string(Shed.load()), RateBuf, ms(P50), ms(P99)});
  T.print();

  JsonReport J;
  J.begin("serve_saturation")
      .field("network", std::string("Fat4"))
      .field("offered", Offered)
      .field("accepted", AcceptedOk.load())
      .field("shed", Shed.load())
      .field("shed_rate", ShedRate)
      .field("accepted_p50_ms", P50)
      .field("accepted_p99_ms", P99);
  if (!J.writeTo(A.JsonPath))
    return 1;

  if (Failed.load()) {
    std::fprintf(stderr, "saturate: %llu requests failed outright\n",
                 static_cast<unsigned long long>(Failed.load()));
    return 1;
  }
  if (Shed.load() == 0 || AcceptedOk.load() == 0) {
    std::fprintf(stderr,
                 "saturate: expected both shedding and accepted work "
                 "(shed %llu, accepted %llu)\n",
                 static_cast<unsigned long long>(Shed.load()),
                 static_cast<unsigned long long>(AcceptedOk.load()));
    return 1;
  }
  if (RetryHints.load() != Shed.load()) {
    std::fprintf(stderr,
                 "saturate: %llu shed responses missing retry_after_ms\n",
                 static_cast<unsigned long long>(Shed.load() -
                                                 RetryHints.load()));
    return 1;
  }
  std::printf("\nsaturation gate: shed cleanly with retry hints, "
              "accepted p99 %.1f ms\n", P99);
  return 0;
}

/// One cold query: everything a fresh `nv ft` process does after argv
/// parsing — parse, typecheck, transform, build evaluators, simulate,
/// check. Returns the wall time, or a negative value on failure.
double coldQuery(const std::string &Src, unsigned LinkFailures) {
  Stopwatch W;
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  if (!P || !typeCheck(*P, Diags))
    return -1;
  FtOptions Opts;
  Opts.LinkFailures = LinkFailures;
  FtRunResult R = runFaultTolerance(*P, Opts, /*Compiled=*/false, Diags);
  if (!R.Outcome.ok() || !R.Converged)
    return -1;
  return W.elapsedMs();
}

} // namespace

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  double MinSpeedup = 0;
  unsigned Repeats = 10;
  bool Saturate = false;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--min-speedup") && I + 1 < argc)
      MinSpeedup = std::atof(argv[++I]);
    else if (!std::strcmp(argv[I], "--repeats") && I + 1 < argc)
      Repeats = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--saturate"))
      Saturate = true;
  }
  if (Saturate)
    return runSaturate(A);

  struct Net {
    std::string Name;
    std::string Src;
    unsigned LinkFailures;
  };
  std::vector<Net> Nets;
  std::vector<unsigned> Ks = A.Paper   ? std::vector<unsigned>{8, 12, 16}
                             : A.Smoke ? std::vector<unsigned>{4}
                                       : std::vector<unsigned>{4, 6, 8};
  for (unsigned K : Ks)
    Nets.push_back({"Fat" + std::to_string(K), generateSpSingle(K),
                    A.Smoke ? 1u : 2u});

  std::printf("serve latency — cold one-shot pipeline vs warm resident "
              "session (ft query).\n\n");
  Table T({"network", "cold (ms)", "recompute (ms)", "repeat (ms)", "speedup"});
  JsonReport J;
  bool GateOk = true;

  for (const Net &N : Nets) {
    // Cold: a fresh pipeline per iteration, like one CLI invocation.
    std::vector<double> ColdMs;
    for (unsigned I = 0; I < 3; ++I) {
      double Ms = coldQuery(N.Src, N.LinkFailures);
      if (Ms < 0) {
        std::fprintf(stderr, "%s: cold query failed\n", N.Name.c_str());
        return 1;
      }
      ColdMs.push_back(Ms);
    }

    // Warm: load once into a serve session, then repeat the same query.
    ServeConfig Cfg;
    Cfg.Threads = 1;
    auto Res = ServeCore::create(Cfg);
    if (!Res.Core) {
      std::fprintf(stderr, "serve core: %s\n", Res.Error.c_str());
      return 1;
    }
    Json LoadReq = Json::object();
    LoadReq.set("verb", "load");
    LoadReq.set("session", "bench");
    LoadReq.set("program", N.Src);
    Json Load = Res.Core->executeLine(LoadReq.dump());
    std::string FtLine = "{\"verb\":\"ft\",\"session\":\"bench\",\"links\":" +
                         std::to_string(N.LinkFailures) + "}";
    Json First = Res.Core->executeLine(FtLine); // the session's cold miss
    if (Load.getNumber("code", -1) != 0 || First.getNumber("code", -1) > 1) {
      std::fprintf(stderr, "%s: serve setup failed: %s / %s\n", N.Name.c_str(),
                   Load.dump().c_str(), First.dump().c_str());
      return 1;
    }
    std::string FreshLine = FtLine;
    FreshLine.insert(FreshLine.size() - 1, ",\"fresh\":true");
    std::vector<double> RecomputeMs, RepeatMs;
    for (unsigned I = 0; I < Repeats; ++I) {
      Stopwatch W;
      Json R = Res.Core->executeLine(FreshLine);
      double Ms = W.elapsedMs();
      if (R.getNumber("code", -1) > 1 || !R.getBool("warm")) {
        std::fprintf(stderr, "%s: warm recompute went cold: %s\n",
                     N.Name.c_str(), R.dump().c_str());
        return 1;
      }
      RecomputeMs.push_back(Ms);

      W.restart();
      Json C = Res.Core->executeLine(FtLine);
      Ms = W.elapsedMs();
      if (C.getNumber("code", -1) > 1 || !C.getBool("cached")) {
        std::fprintf(stderr, "%s: repeat missed the result memo: %s\n",
                     N.Name.c_str(), C.dump().c_str());
        return 1;
      }
      RepeatMs.push_back(Ms);
    }

    double Cold = median(ColdMs), Recompute = median(RecomputeMs),
           Repeat = median(RepeatMs);
    double Speedup = Repeat > 0 ? Cold / Repeat : 0;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0fx", Speedup);
    T.row({N.Name, ms(Cold), ms(Recompute), ms(Repeat), Buf});
    J.begin("serve_latency")
        .field("network", N.Name)
        .field("link_failures", static_cast<uint64_t>(N.LinkFailures))
        .field("cold_ms", Cold)
        .field("warm_recompute_ms", Recompute)
        .field("warm_repeat_ms", Repeat)
        .field("speedup", Speedup);
    if (MinSpeedup > 0 && Speedup < MinSpeedup) {
      std::fprintf(stderr,
                   "%s: warm-repeat speedup %.1fx below the --min-speedup "
                   "%.1fx gate (cold %.2fms, repeat %.2fms)\n",
                   N.Name.c_str(), Speedup, MinSpeedup, Cold, Repeat);
      GateOk = false;
    }
  }

  T.print();
  if (!J.writeTo(A.JsonPath))
    return 1;
  if (!GateOk)
    return 1;
  if (MinSpeedup > 0)
    std::printf("\nwarm-speedup gate (>= %.1fx): ok\n", MinSpeedup);
  return 0;
}
