//===- fig13a_fault_tolerance.cpp - Fig. 13a: single-link fault tolerance ----===//
//
// Reproduces Fig. 13a: total time to check single-link fault tolerance of
// the reachability property, comparing
//   NV-BDD  — the Fig. 5 meta-protocol over MTBDDs (one simulation for all
//             scenarios, compiled evaluator),
//   NV-SMT  — symbolic failure booleans through NV's optimizing encoder,
//   MS      — the same symbolic failures through the MineSweeper-style
//             baseline encoder.
//
// Expected shape: the SMT approaches deteriorate quickly with failures in
// the state space (MS first); NV-BDD stays in the seconds range.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "analysis/SymbolicFailures.h"
#include "bench/BenchUtil.h"
#include "net/Generators.h"
#include "smt/Verifier.h"
#include "support/Timer.h"

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  struct Net {
    std::string Name;
    std::string Src;
  };
  std::vector<Net> Nets;
  std::vector<unsigned> Ks = A.Paper ? std::vector<unsigned>{8, 10, 12}
                                     : std::vector<unsigned>{4, 6, 8};
  for (unsigned K : Ks)
    Nets.push_back({"SP" + std::to_string(K), generateSpSingle(K)});
  Nets.push_back({A.Paper ? "FAT12" : "FAT8",
                  generateFatSingle(A.Paper ? 12 : 8)});

  std::printf("Fig. 13a — single-link fault tolerance, total time (ms).\n"
              "Timeout %us per SMT solve.\n\n",
              A.TimeoutSec);
  Table T({"network", "nodes/links", "NV-BDD (ms)", "NV-SMT (ms)",
           "MS (ms)"});

  for (const Net &N : Nets) {
    DiagnosticEngine Diags;
    auto P = loadGenerated(N.Src, Diags);
    if (!P) {
      Diags.printToStderr();
      return 1;
    }

    // NV-BDD: meta-protocol, compiled, all scenarios at once + check.
    Stopwatch W;
    FtRunResult Bdd = runFaultTolerance(*P, FtOptions{}, true, Diags);
    double BddMs = W.elapsedMs();
    std::string BddCell =
        Bdd.Converged ? ms(BddMs) + (Bdd.Check.holds() ? "" : " (cex!)")
                      : "diverged";

    // NV-SMT / MS: one symbolic failure per link, bounded by 1.
    auto SymP = makeSymbolicFailureProgram(*P, 1, Diags);
    auto SolveCell = [&](bool Baseline) -> std::string {
      if (!SymP)
        return "error";
      VerifyOptions Opts;
      Opts.TimeoutMs = A.TimeoutSec * 1000;
      if (Baseline) {
        Opts.Smt.ConstantFold = false;
        Opts.Smt.NameIntermediates = true;
        Opts.UseTacticPipeline = false;
      }
      Stopwatch WS;
      VerifyResult R = verifyProgram(*SymP, Opts, Diags);
      if (R.Status == VerifyStatus::Unknown)
        return ">" + std::to_string(A.TimeoutSec) + "s T/O";
      return ms(WS.elapsedMs()) +
             (R.Status == VerifyStatus::Verified ? "" : " (cex!)");
    };
    std::string NvSmt = SolveCell(false);
    std::string Ms2 = SolveCell(true);

    T.row({N.Name,
           std::to_string(P->numNodes()) + "/" +
               std::to_string(P->links().size()),
           BddCell, NvSmt, Ms2});
  }
  T.print();
  return 0;
}
