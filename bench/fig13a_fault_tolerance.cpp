//===- fig13a_fault_tolerance.cpp - Fig. 13a: single-link fault tolerance ----===//
//
// Reproduces Fig. 13a: total time to check single-link fault tolerance of
// the reachability property, comparing
//   NV-BDD  — the Fig. 5 meta-protocol over MTBDDs (one simulation for all
//             scenarios, compiled evaluator),
//   Naive   — one simulation per failure scenario (Sec. 2.7's strawman);
//             sharded over --threads workers, each with its own arena,
//   NV-SMT  — symbolic failure booleans through NV's optimizing encoder,
//   MS      — the same symbolic failures through the MineSweeper-style
//             baseline encoder.
//
// Expected shape: the SMT approaches deteriorate quickly with failures in
// the state space (MS first); NV-BDD stays in the seconds range and beats
// the naive baseline even when the latter is parallelized.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "analysis/SymbolicFailures.h"
#include "baselines/NaiveFailures.h"
#include "bench/BenchUtil.h"
#include "net/Generators.h"
#include "smt/Verifier.h"
#include "support/Timer.h"

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  struct Net {
    std::string Name;
    std::string Src;
  };
  std::vector<Net> Nets;
  std::vector<unsigned> Ks = A.Paper ? std::vector<unsigned>{8, 10, 12}
                                     : std::vector<unsigned>{4, 6, 8};
  for (unsigned K : Ks)
    Nets.push_back({"SP" + std::to_string(K), generateSpSingle(K)});
  Nets.push_back({A.Paper ? "FAT12" : "FAT8",
                  generateFatSingle(A.Paper ? 12 : 8)});

  std::optional<ThreadPool> Pool;
  if (A.Threads > 1)
    Pool.emplace(A.Threads);

  std::printf("Fig. 13a — single-link fault tolerance, total time (ms).\n"
              "Timeout %us per SMT solve; %u worker thread(s).\n\n",
              A.TimeoutSec, A.Threads);
  Table T({"network", "nodes/links", "NV-BDD (ms)", "Naive (ms)",
           "NV-SMT (ms)", "MS (ms)"});
  JsonReport J;

  for (const Net &N : Nets) {
    DiagnosticEngine Diags;
    auto P = loadGenerated(N.Src, Diags);
    if (!P) {
      Diags.printToStderr();
      return 1;
    }

    // NV-BDD: meta-protocol, compiled, all scenarios at once + check
    // (the check's scenario-indexing loop is sharded over the pool).
    FtOptions FtOpts;
    FtOpts.Threads = A.Threads;
    Stopwatch W;
    FtRunResult Bdd = runFaultTolerance(*P, FtOpts, true, Diags);
    double BddMs = W.elapsedMs();
    std::string BddCell =
        Bdd.Converged ? ms(BddMs) + (Bdd.Check.holds() ? "" : " (cex!)")
                      : "diverged";

    // Naive: one simulation per scenario; the scenario list is sharded
    // over the pool with one re-parsed program + arena per chunk.
    W.restart();
    FtCheckResult Naive;
    if (Pool) {
      Naive = naiveFaultToleranceParallel(*P, FtOptions{}, *Pool);
    } else {
      NvContext Ctx(P->numNodes());
      InterpProgramEvaluator Eval(Ctx, *P);
      Naive = naiveFaultTolerance(*P, Eval, FtOptions{}, Ctx.noneV());
    }
    double NaiveMs = W.elapsedMs();
    std::string NaiveCell = ms(NaiveMs) + (Naive.holds() ? "" : " (cex!)");

    // NV-SMT / MS: one symbolic failure per link, bounded by 1.
    auto SymP = makeSymbolicFailureProgram(*P, 1, Diags);
    auto SolveCell = [&](bool Baseline) -> std::string {
      if (!SymP)
        return "error";
      VerifyOptions Opts;
      Opts.TimeoutMs = A.TimeoutSec * 1000;
      if (Baseline) {
        Opts.Smt.ConstantFold = false;
        Opts.Smt.NameIntermediates = true;
        Opts.UseTacticPipeline = false;
      }
      Stopwatch WS;
      VerifyResult R = verifyProgram(*SymP, Opts, Diags);
      if (R.Status == VerifyStatus::ResourceExhausted ||
          R.Status == VerifyStatus::Unknown) {
        std::string TO = ">";
        TO += std::to_string(A.TimeoutSec);
        TO += "s T/O";
        return TO;
      }
      return ms(WS.elapsedMs()) +
             (R.Status == VerifyStatus::Verified ? "" : " (cex!)");
    };
    std::string NvSmt = SolveCell(false);
    std::string Ms2 = SolveCell(true);

    T.row({N.Name,
           std::to_string(P->numNodes()) + "/" +
               std::to_string(P->links().size()),
           BddCell, NaiveCell, NvSmt, Ms2});

    uint64_t Lookups = Bdd.CacheHits + Bdd.CacheMisses;
    // Governance outcome of the measured runs: a non-"ok" record carries a
    // budget/cancellation/fault verdict and is excluded from trajectory
    // comparison by tools/ci/bench_compare.py.
    std::string Outcome = !Bdd.Outcome.ok()     ? Bdd.Outcome.str()
                          : !Naive.Outcome.ok() ? Naive.Outcome.str()
                                                : "ok";
    J.begin("fig13a")
        .field("network", N.Name)
        .field("outcome", Outcome)
        .field("nodes", static_cast<uint64_t>(P->numNodes()))
        .field("links", static_cast<uint64_t>(P->links().size()))
        .field("threads", A.Threads)
        .field("nv_bdd_ms", BddMs)
        .field("naive_ms", NaiveMs)
        .field("pops", Bdd.Stats.Pops)
        .field("cache_hit_rate",
               Lookups ? static_cast<double>(Bdd.CacheHits) / Lookups : 0.0)
        .field("scenarios", Naive.ScenariosChecked);
  }
  T.print();
  if (Pool)
    printPoolStats(*Pool);
  if (!J.writeTo(A.JsonPath))
    return 1;
  return 0;
}
