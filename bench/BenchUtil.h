//===- BenchUtil.h - Shared benchmark harness helpers -----------*- C++ -*-===//
//
// Part of nv-cpp. Table formatting and argument handling shared by the
// figure-reproduction benchmark drivers. Every driver accepts:
//   --paper      run the paper's exact network sizes (hours on one core)
//   --timeout S  per-solve SMT timeout in seconds (default 60)
// and prints one aligned table matching the figure's rows/series.
//
//===----------------------------------------------------------------------===//

#ifndef NV_BENCH_BENCHUTIL_H
#define NV_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace nvbench {

struct Args {
  bool Paper = false;
  unsigned TimeoutSec = 60;

  static Args parse(int argc, char **argv) {
    Args A;
    for (int I = 1; I < argc; ++I) {
      if (!std::strcmp(argv[I], "--paper"))
        A.Paper = true;
      else if (!std::strcmp(argv[I], "--timeout") && I + 1 < argc)
        A.TimeoutSec = static_cast<unsigned>(atoi(argv[++I]));
    }
    return A;
  }
};

/// Fixed-width table printer.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void row(std::vector<std::string> Cells) { Rows.push_back(std::move(Cells)); }

  void print() const {
    std::vector<size_t> W(Headers.size());
    for (size_t I = 0; I < Headers.size(); ++I)
      W[I] = Headers[I].size();
    for (const auto &R : Rows)
      for (size_t I = 0; I < R.size() && I < W.size(); ++I)
        W[I] = std::max(W[I], R[I].size());
    auto Line = [&](const std::vector<std::string> &Cells) {
      for (size_t I = 0; I < W.size(); ++I)
        std::printf("%-*s  ", static_cast<int>(W[I]),
                    I < Cells.size() ? Cells[I].c_str() : "");
      std::printf("\n");
    };
    Line(Headers);
    for (size_t I = 0; I < W.size(); ++I)
      std::printf("%s  ", std::string(W[I], '-').c_str());
    std::printf("\n");
    for (const auto &R : Rows)
      Line(R);
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

inline std::string ms(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

inline std::string sec(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms / 1000.0);
  return Buf;
}

} // namespace nvbench

#endif // NV_BENCH_BENCHUTIL_H
