//===- BenchUtil.h - Shared benchmark harness helpers -----------*- C++ -*-===//
//
// Part of nv-cpp. Table formatting and argument handling shared by the
// figure-reproduction benchmark drivers. Every driver accepts:
//   --paper      run the paper's exact network sizes (hours on one core)
//   --smoke      run the smallest configuration only (seconds; used by the
//                CI bench-smoke regression gate)
//   --timeout S  per-solve SMT timeout in seconds (default 60)
//   --threads N  worker threads for the sharded analyses (default: the
//                NV_THREADS environment variable if set, else 1)
//   --json PATH  also write machine-readable results (one JSON array)
//   --gc-watermark N  MTBDD garbage-collection watermark in nodes for all
//                contexts the run creates (exported as NV_GC_WATERMARK;
//                0 disables collection, 1 collects at every safe point)
// and prints one aligned table matching the figure's rows/series.
//
//===----------------------------------------------------------------------===//

#ifndef NV_BENCH_BENCHUTIL_H
#define NV_BENCH_BENCHUTIL_H

#include "support/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace nvbench {

struct Args {
  bool Paper = false;
  bool Smoke = false;
  unsigned TimeoutSec = 60;
  unsigned Threads = 1;
  std::string JsonPath;

  static Args parse(int argc, char **argv) {
    Args A;
    if (const char *Env = std::getenv("NV_THREADS")) {
      int N = std::atoi(Env);
      if (N >= 1)
        A.Threads = static_cast<unsigned>(N);
    }
    for (int I = 1; I < argc; ++I) {
      if (!std::strcmp(argv[I], "--paper"))
        A.Paper = true;
      else if (!std::strcmp(argv[I], "--smoke"))
        A.Smoke = true;
      else if (!std::strcmp(argv[I], "--timeout") && I + 1 < argc)
        A.TimeoutSec = static_cast<unsigned>(atoi(argv[++I]));
      else if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
        A.Threads = static_cast<unsigned>(atoi(argv[++I]));
      else if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
        A.JsonPath = argv[++I];
      else if (!std::strcmp(argv[I], "--gc-watermark") && I + 1 < argc)
        // Managers read NV_GC_WATERMARK at construction, so exporting it
        // reaches every context the benchmark creates (including the ones
        // built internally by the analyses).
        setenv("NV_GC_WATERMARK", argv[++I], /*overwrite=*/1);
    }
    if (A.Threads == 0)
      A.Threads = nv::ThreadPool::defaultThreadCount();
    return A;
  }
};

/// Collects one flat JSON object per measurement and writes them as an
/// array, for BENCH_*.json trajectory tracking. Keys/strings must not need
/// escaping (benchmark and network names are plain identifiers).
class JsonReport {
public:
  /// Starts a new record; returns *this for chaining field() calls.
  JsonReport &begin(const std::string &Bench) {
    Records.emplace_back();
    return field("bench", Bench);
  }
  JsonReport &field(const std::string &Key, const std::string &V) {
    Records.back().push_back({Key, "\"" + V + "\""});
    return *this;
  }
  JsonReport &field(const std::string &Key, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
    Records.back().push_back({Key, Buf});
    return *this;
  }
  JsonReport &field(const std::string &Key, uint64_t V) {
    Records.back().push_back({Key, std::to_string(V)});
    return *this;
  }
  JsonReport &field(const std::string &Key, unsigned V) {
    return field(Key, static_cast<uint64_t>(V));
  }

  /// Writes the array to \p Path; no-op when Path is empty. Returns false
  /// (with a message on stderr) when the file cannot be written.
  bool writeTo(const std::string &Path) const {
    if (Path.empty())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "[\n");
    for (size_t R = 0; R < Records.size(); ++R) {
      std::fprintf(F, "  {");
      for (size_t I = 0; I < Records[R].size(); ++I)
        std::fprintf(F, "%s\"%s\": %s", I ? ", " : "",
                     Records[R][I].first.c_str(),
                     Records[R][I].second.c_str());
      std::fprintf(F, "}%s\n", R + 1 < Records.size() ? "," : "");
    }
    std::fprintf(F, "]\n");
    std::fclose(F);
    return true;
  }

private:
  std::vector<std::vector<std::pair<std::string, std::string>>> Records;
};

/// Prints the pool's work/idle counters (the "ThreadPool-stats" line of
/// the bench drivers).
inline void printPoolStats(const nv::ThreadPool &Pool) {
  nv::ThreadPool::Stats S = Pool.stats();
  std::printf("\n[threadpool] threads=%u parallel_for=%llu tasks=%llu "
              "worker_idle_ms=%.1f\n",
              Pool.numThreads(),
              static_cast<unsigned long long>(S.ParallelForCalls),
              static_cast<unsigned long long>(S.TasksRun), S.WorkerIdleMs);
}

/// Fixed-width table printer.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void row(std::vector<std::string> Cells) { Rows.push_back(std::move(Cells)); }

  void print() const {
    std::vector<size_t> W(Headers.size());
    for (size_t I = 0; I < Headers.size(); ++I)
      W[I] = Headers[I].size();
    for (const auto &R : Rows)
      for (size_t I = 0; I < R.size() && I < W.size(); ++I)
        W[I] = std::max(W[I], R[I].size());
    auto Line = [&](const std::vector<std::string> &Cells) {
      for (size_t I = 0; I < W.size(); ++I)
        std::printf("%-*s  ", static_cast<int>(W[I]),
                    I < Cells.size() ? Cells[I].c_str() : "");
      std::printf("\n");
    };
    Line(Headers);
    for (size_t I = 0; I < W.size(); ++I)
      std::printf("%s  ", std::string(W[I], '-').c_str());
    std::printf("\n");
    for (const auto &R : Rows)
      Line(R);
  }

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

inline std::string ms(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", V);
  return Buf;
}

inline std::string sec(double Ms) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.2f", Ms / 1000.0);
  return Buf;
}

} // namespace nvbench

#endif // NV_BENCH_BENCHUTIL_H
