//===- ablation_incremental_merge.cpp - Algorithm 1 lines 15-17 ablation -----===//
//
// Measures the ShapeShifter incremental-merge trick of Algorithm 1: when
// merge(old, new) == new, merge the new route into the current label
// instead of re-merging everything received. Disabling it forces the
// line-18 full re-merge on every stale update.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "eval/Compile.h"
#include "net/Generators.h"

#include <benchmark/benchmark.h>

using namespace nv;

namespace {

void BM_Simulate(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  bool Incremental = State.range(1) != 0;
  bool FaultTolerance = State.range(2) != 0;

  DiagnosticEngine Diags;
  auto P = loadGenerated(generateSpSingle(K), Diags);
  Program Prog = *P;
  if (FaultTolerance)
    Prog = *makeFaultTolerantProgram(*P, FtOptions{}, Diags);

  for (auto _ : State) {
    NvContext Ctx(Prog.numNodes());
    CompiledProgramEvaluator Eval(Ctx, Prog);
    SimOptions Opts;
    Opts.IncrementalMerge = Incremental;
    SimResult R = simulate(Prog, Eval, Opts);
    benchmark::DoNotOptimize(R.Converged);
    State.counters["merges"] = static_cast<double>(R.Stats.MergeCalls);
    State.counters["full_merges"] = static_cast<double>(R.Stats.FullMerges);
  }
}

} // namespace

BENCHMARK(BM_Simulate)
    ->ArgNames({"k", "incremental", "ft"})
    ->Args({8, 1, 0})
    ->Args({8, 0, 0})
    ->Args({6, 1, 1})
    ->Args({6, 0, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
