//===- fig14_simulation.cpp - Fig. 14: all-prefixes simulation ---------------===//
//
// Reproduces Fig. 14: time to solve the all-prefixes routing problem with
//   NV              — MTBDD simulator, interpreted evaluator,
//   NV-native       — closure-compiled evaluator, compilation excluded,
//   NV-native-total — compilation included,
//   Batfish         — the per-prefix baseline (plain values, full merges,
//                     fresh state per prefix).
//
// Expected shape: NV an order of magnitude faster than the per-prefix
// baseline with a much flatter growth curve, and far smaller memory
// (values allocated) because the RIB MTBDDs share across prefixes.
//
//===----------------------------------------------------------------------===//

#include "baselines/BatfishSim.h"
#include "bench/BenchUtil.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "net/Generators.h"
#include "support/Timer.h"

#include <optional>

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  std::vector<unsigned> Ks = A.Paper   ? std::vector<unsigned>{20, 24, 28, 32}
                             : A.Smoke ? std::vector<unsigned>{4, 8}
                                       : std::vector<unsigned>{4, 8, 12, 16};

  std::optional<ThreadPool> Pool;
  if (A.Threads > 1)
    Pool.emplace(A.Threads);

  std::printf("Fig. 14 — all-prefixes simulation time (s) and memory "
              "(interned values); Batfish baseline sharded over %u "
              "thread(s).\n\n",
              A.Threads);
  Table T({"network", "nodes", "prefixes", "NV (s)", "NV-native (s)",
           "NV-native-total (s)", "Batfish (s)", "NV values",
           "Batfish values"});
  JsonReport J;

  for (unsigned K : Ks) {
    DiagnosticEngine Diags;
    auto All = loadGenerated(generateSpAllPrefixes(K), Diags);
    auto Param = loadGenerated(generateSpSingleParam(K), Diags);
    if (!All || !Param) {
      Diags.printToStderr();
      return 1;
    }
    FatTree FT(K);
    auto Leaves = FT.leaves();

    // NV interpreted.
    Stopwatch W;
    NvContext CtxI(All->numNodes());
    InterpProgramEvaluator EI(CtxI, *All);
    SimResult RI = simulate(*All, EI);
    double NvMs = W.elapsedMs();

    // NV native: compile, then simulate.
    NvContext CtxC(All->numNodes());
    W.restart();
    CompiledProgramEvaluator EC(CtxC, *All);
    double CompileMs = W.elapsedMs();
    W.restart();
    SimResult RC = simulate(*All, EC);
    double NativeMs = W.elapsedMs();

    // Batfish-style per-prefix baseline, sharded over the pool.
    W.restart();
    BatfishResult BF =
        batfishAllPrefixes(*Param, Leaves, nullptr, Pool ? &*Pool : nullptr);
    double BatfishMs = W.elapsedMs();

    // Governance outcome: a non-"ok" record is emitted (and the row
    // skipped) rather than aborting the whole sweep, so trajectory runs
    // under a budget still produce comparable JSON for the sizes that
    // finished; bench_compare.py drops the non-ok entries.
    std::string Outcome = !RI.Outcome.ok()   ? RI.Outcome.str()
                          : !RC.Outcome.ok() ? RC.Outcome.str()
                          : !BF.Outcome.ok() ? BF.Outcome.str()
                                             : "ok";
    if (!RI.Converged || !RC.Converged || !BF.Converged) {
      std::printf("divergence at k=%u (%s)!\n", K, Outcome.c_str());
      J.begin("fig14")
          .field("network", "Fat" + std::to_string(K))
          .field("outcome", Outcome == "ok" ? "not-converged" : Outcome);
      continue;
    }
    T.row({"Fat" + std::to_string(K), std::to_string(All->numNodes()),
           std::to_string(Leaves.size()), sec(NvMs), sec(NativeMs),
           sec(NativeMs + CompileMs), sec(BatfishMs),
           std::to_string(CtxC.Arena.size()),
           std::to_string(BF.TotalValuesAllocated)});

    uint64_t Lookups = CtxC.Mgr.cacheHits() + CtxC.Mgr.cacheMisses();
    J.begin("fig14")
        .field("network", "Fat" + std::to_string(K))
        .field("outcome", "ok")
        .field("nodes", static_cast<uint64_t>(All->numNodes()))
        .field("prefixes", static_cast<uint64_t>(Leaves.size()))
        .field("threads", A.Threads)
        .field("nv_ms", NvMs)
        .field("nv_native_ms", NativeMs)
        .field("batfish_ms", BatfishMs)
        .field("pops", BF.TotalPops)
        .field("cache_hit_rate",
               Lookups ? static_cast<double>(CtxC.Mgr.cacheHits()) / Lookups
                       : 0.0);
  }
  T.print();
  if (Pool)
    printPoolStats(*Pool);
  if (!J.writeTo(A.JsonPath))
    return 1;
  return 0;
}
