//===- fig14_simulation.cpp - Fig. 14: all-prefixes simulation ---------------===//
//
// Reproduces Fig. 14: time to solve the all-prefixes routing problem with
//   NV              — MTBDD simulator, interpreted evaluator,
//   NV-native       — closure-compiled evaluator, compilation excluded,
//   NV-native-total — compilation included,
//   Batfish         — the per-prefix baseline (plain values, full merges,
//                     fresh state per prefix).
//
// Expected shape: NV an order of magnitude faster than the per-prefix
// baseline with a much flatter growth curve, and far smaller memory
// (values allocated) because the RIB MTBDDs share across prefixes.
//
//===----------------------------------------------------------------------===//

#include "baselines/BatfishSim.h"
#include "bench/BenchUtil.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "net/Generators.h"
#include "support/Timer.h"

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  std::vector<unsigned> Ks = A.Paper ? std::vector<unsigned>{20, 24, 28, 32}
                                     : std::vector<unsigned>{4, 8, 12, 16};

  std::printf("Fig. 14 — all-prefixes simulation time (s) and memory "
              "(interned values).\n\n");
  Table T({"network", "nodes", "prefixes", "NV (s)", "NV-native (s)",
           "NV-native-total (s)", "Batfish (s)", "NV values",
           "Batfish values"});

  for (unsigned K : Ks) {
    DiagnosticEngine Diags;
    auto All = loadGenerated(generateSpAllPrefixes(K), Diags);
    auto Param = loadGenerated(generateSpSingleParam(K), Diags);
    if (!All || !Param) {
      Diags.printToStderr();
      return 1;
    }
    FatTree FT(K);
    auto Leaves = FT.leaves();

    // NV interpreted.
    Stopwatch W;
    NvContext CtxI(All->numNodes());
    InterpProgramEvaluator EI(CtxI, *All);
    SimResult RI = simulate(*All, EI);
    double NvMs = W.elapsedMs();

    // NV native: compile, then simulate.
    NvContext CtxC(All->numNodes());
    W.restart();
    CompiledProgramEvaluator EC(CtxC, *All);
    double CompileMs = W.elapsedMs();
    W.restart();
    SimResult RC = simulate(*All, EC);
    double NativeMs = W.elapsedMs();

    // Batfish-style per-prefix baseline.
    W.restart();
    BatfishResult BF = batfishAllPrefixes(*Param, Leaves);
    double BatfishMs = W.elapsedMs();

    if (!RI.Converged || !RC.Converged || !BF.Converged) {
      std::printf("divergence at k=%u!\n", K);
      return 1;
    }
    T.row({"Fat" + std::to_string(K), std::to_string(All->numNodes()),
           std::to_string(Leaves.size()), sec(NvMs), sec(NativeMs),
           sec(NativeMs + CompileMs), sec(BatfishMs),
           std::to_string(CtxC.Arena.size()),
           std::to_string(BF.TotalValuesAllocated)});
  }
  T.print();
  return 0;
}
