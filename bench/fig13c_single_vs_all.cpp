//===- fig13c_single_vs_all.cpp - Fig. 13c: single- vs all-prefixes ----------===//
//
// Reproduces Fig. 13c: total time (including compilation) to run the
// single-link fault-tolerance analysis over every announced prefix, either
// one prefix at a time (re-instantiating a `symbolic dest` program per
// prefix) or all prefixes simultaneously (the attribute is lifted to
// dict[edge, dict[prefix, route]]), with the interpreted and the
// closure-compiled ("native") evaluators. The Single modes shard the
// prefix list over --threads workers (per-prefix runs are independent).
//
// Expected shape: Single-Native fastest (uniform per-scenario routes,
// amortized compilation), All-Interp slowest; single-prefix beats
// all-prefixes by a small factor (the paper reports 3-7x).
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "bench/BenchUtil.h"
#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "net/Generators.h"
#include "support/Fatal.h"
#include "support/Timer.h"

#include <atomic>
#include <optional>

using namespace nv;
using namespace nvbench;

namespace {

/// Runs the single-destination analysis for one leaf in a shard-persistent
/// context: the arena is garbage-collected back to its pinned baseline
/// first, so MTBDD/arena tables no longer grow monotonically across the
/// 32+ per-destination runs. Returns false on divergence.
bool runOneLeaf(const Program &Meta, NvContext &Ctx, uint32_t Dest,
                bool Native) {
  Ctx.resetBetweenRuns();
  SymbolicAssignment Sym{{"dest", Ctx.nodeV(Dest)}};
  std::unique_ptr<ProtocolEvaluator> Eval;
  if (Native)
    Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, Meta, Sym);
  else
    Eval = std::make_unique<InterpProgramEvaluator>(Ctx, Meta, Sym);
  SimResult R = simulate(Meta, *Eval);
  return R.Converged;
}

/// FT over each prefix separately: one meta-program with a symbolic dest,
/// instantiated per leaf. With a pool, one persistent worker per thread
/// re-parses the program once (AST free-variable caches fill lazily, so
/// programs are not shared across threads), then claims leaves dynamically
/// and reuses its context across them.
double singleMode(const Program &Meta, const std::vector<uint32_t> &Leaves,
                  bool Native, ThreadPool *Pool) {
  Stopwatch W;
  if (!Pool || Pool->numThreads() <= 1 || Leaves.size() <= 1) {
    NvContext Ctx(Meta.numNodes());
    for (uint32_t Dest : Leaves)
      if (!runOneLeaf(Meta, Ctx, Dest, Native))
        return -1;
    return W.elapsedMs();
  }
  std::string Src = printProgram(Meta);
  size_t Workers =
      std::min(Leaves.size(), static_cast<size_t>(Pool->numThreads()));
  std::atomic<size_t> Next{0};
  std::atomic<bool> Ok{true};
  Pool->parallelFor(Workers, [&](size_t) {
    DiagnosticEngine Diags;
    auto Local = parseProgram(Src, Diags);
    if (!Local || !typeCheck(*Local, Diags))
      fatalError("internal: fig13c worker failed to re-parse the "
                 "program:\n" +
                 Diags.str());
    NvContext Ctx(Local->numNodes());
    for (size_t I = Next.fetch_add(1); I < Leaves.size();
         I = Next.fetch_add(1))
      if (!runOneLeaf(*Local, Ctx, Leaves[I], Native))
        Ok.store(false);
  });
  return Ok.load() ? W.elapsedMs() : -1;
}

double allMode(const Program &Meta, bool Native) {
  Stopwatch W;
  NvContext Ctx(Meta.numNodes());
  std::unique_ptr<ProtocolEvaluator> Eval;
  if (Native)
    Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, Meta);
  else
    Eval = std::make_unique<InterpProgramEvaluator>(Ctx, Meta);
  SimResult R = simulate(Meta, *Eval);
  return R.Converged ? W.elapsedMs() : -1;
}

} // namespace

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  unsigned K = A.Paper ? 16 : 8;
  FatTree FT(K);
  auto Leaves = FT.leaves();

  std::optional<ThreadPool> Pool;
  if (A.Threads > 1)
    Pool.emplace(A.Threads);
  ThreadPool *PoolPtr = Pool ? &*Pool : nullptr;

  std::printf("Fig. 13c — fault tolerance over all %zu prefixes of SP%u/"
              "FAT%u:\nper-prefix (Single, %u thread(s)) vs simultaneous "
              "(All), interpreted vs native. Total time (s).\n\n",
              Leaves.size(), K, K, A.Threads);
  Table T({"network", "Single-Native", "Single-Interp", "All-Native",
           "All-Interp"});
  JsonReport J;

  for (bool Fat : {false, true}) {
    DiagnosticEngine Diags;
    auto Param = loadGenerated(
        Fat ? generateFatSingleParam(K) : generateSpSingleParam(K), Diags);
    auto All = loadGenerated(
        Fat ? generateFatAllPrefixes(K) : generateSpAllPrefixes(K), Diags);
    if (!Param || !All) {
      Diags.printToStderr();
      return 1;
    }
    FtOptions Opts; // 1 link failure
    auto MetaSingle = makeFaultTolerantProgram(*Param, Opts, Diags);
    FtOptions AllOpts;
    AllOpts.DropValueSource = "createDict None"; // drop = empty RIB
    auto MetaAll = makeFaultTolerantProgram(*All, AllOpts, Diags);
    if (!MetaSingle || !MetaAll) {
      Diags.printToStderr();
      return 1;
    }

    double SN = singleMode(*MetaSingle, Leaves, true, PoolPtr);
    double SI = singleMode(*MetaSingle, Leaves, false, PoolPtr);
    double AN = allMode(*MetaAll, true);
    double AI = allMode(*MetaAll, false);
    auto Cell = [](double V) { return V < 0 ? std::string("diverged")
                                            : sec(V); };
    std::string Name = Fat ? "FAT" + std::to_string(K)
                           : "SP" + std::to_string(K);
    T.row({Name, Cell(SN), Cell(SI), Cell(AN), Cell(AI)});

    J.begin("fig13c")
        .field("network", Name)
        .field("outcome", (SN < 0 || SI < 0 || AN < 0 || AI < 0)
                              ? "not-converged"
                              : "ok")
        .field("nodes", static_cast<uint64_t>(Param->numNodes()))
        .field("prefixes", static_cast<uint64_t>(Leaves.size()))
        .field("threads", A.Threads)
        .field("single_native_ms", SN)
        .field("single_interp_ms", SI)
        .field("all_native_ms", AN)
        .field("all_interp_ms", AI);
  }
  T.print();
  if (Pool)
    printPoolStats(*Pool);
  if (!J.writeTo(A.JsonPath))
    return 1;
  return 0;
}
