//===- fig13c_single_vs_all.cpp - Fig. 13c: single- vs all-prefixes ----------===//
//
// Reproduces Fig. 13c: total time (including compilation) to run the
// single-link fault-tolerance analysis over every announced prefix, either
// one prefix at a time (re-instantiating a `symbolic dest` program per
// prefix) or all prefixes simultaneously (the attribute is lifted to
// dict[edge, dict[prefix, route]]), with the interpreted and the
// closure-compiled ("native") evaluators.
//
// Expected shape: Single-Native fastest (uniform per-scenario routes,
// amortized compilation), All-Interp slowest; single-prefix beats
// all-prefixes by a small factor (the paper reports 3-7x).
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "bench/BenchUtil.h"
#include "eval/Compile.h"
#include "net/Generators.h"
#include "support/Timer.h"

using namespace nv;
using namespace nvbench;

namespace {

/// FT over each prefix separately: one meta-program with a symbolic dest,
/// instantiated per leaf.
double singleMode(const Program &Meta, const std::vector<uint32_t> &Leaves,
                  bool Native) {
  Stopwatch W;
  // Fresh context per destination: monotone MTBDD/arena tables would
  // otherwise grow across the 32+ runs and slow everything down.
  for (uint32_t Leaf : Leaves) {
    NvContext Ctx(Meta.numNodes());
    SymbolicAssignment Sym{{"dest", Ctx.nodeV(Leaf)}};
    std::unique_ptr<ProtocolEvaluator> Eval;
    if (Native)
      Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, Meta, Sym);
    else
      Eval = std::make_unique<InterpProgramEvaluator>(Ctx, Meta, Sym);
    SimResult R = simulate(Meta, *Eval);
    if (!R.Converged)
      return -1;
  }
  return W.elapsedMs();
}

double allMode(const Program &Meta, bool Native) {
  Stopwatch W;
  NvContext Ctx(Meta.numNodes());
  std::unique_ptr<ProtocolEvaluator> Eval;
  if (Native)
    Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, Meta);
  else
    Eval = std::make_unique<InterpProgramEvaluator>(Ctx, Meta);
  SimResult R = simulate(Meta, *Eval);
  return R.Converged ? W.elapsedMs() : -1;
}

} // namespace

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  unsigned K = A.Paper ? 16 : 8;
  FatTree FT(K);
  auto Leaves = FT.leaves();

  std::printf("Fig. 13c — fault tolerance over all %zu prefixes of SP%u/"
              "FAT%u:\nper-prefix (Single) vs simultaneous (All), "
              "interpreted vs native. Total time (s).\n\n",
              Leaves.size(), K, K);
  Table T({"network", "Single-Native", "Single-Interp", "All-Native",
           "All-Interp"});

  for (bool Fat : {false, true}) {
    DiagnosticEngine Diags;
    auto Param = loadGenerated(
        Fat ? generateFatSingleParam(K) : generateSpSingleParam(K), Diags);
    auto All = loadGenerated(
        Fat ? generateFatAllPrefixes(K) : generateSpAllPrefixes(K), Diags);
    if (!Param || !All) {
      Diags.printToStderr();
      return 1;
    }
    FtOptions Opts; // 1 link failure
    auto MetaSingle = makeFaultTolerantProgram(*Param, Opts, Diags);
    FtOptions AllOpts;
    AllOpts.DropValueSource = "createDict None"; // drop = empty RIB
    auto MetaAll = makeFaultTolerantProgram(*All, AllOpts, Diags);
    if (!MetaSingle || !MetaAll) {
      Diags.printToStderr();
      return 1;
    }

    double SN = singleMode(*MetaSingle, Leaves, true);
    double SI = singleMode(*MetaSingle, Leaves, false);
    double AN = allMode(*MetaAll, true);
    double AI = allMode(*MetaAll, false);
    auto Cell = [](double V) { return V < 0 ? std::string("diverged")
                                            : sec(V); };
    T.row({Fat ? "FAT" + std::to_string(K) : "SP" + std::to_string(K),
           Cell(SN), Cell(SI), Cell(AN), Cell(AI)});
  }
  T.print();
  return 0;
}
