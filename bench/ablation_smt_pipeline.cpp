//===- ablation_smt_pipeline.cpp - SMT pipeline stage ablation ---------------===//
//
// Isolates the two encoder properties that separate NV's systematic
// pipeline (Sec. 5.2) from the MineSweeper-style baseline:
//   fold   — partial evaluation of concrete leaves in C++,
//   name   — a fresh equated constant per intermediate result.
// All four combinations are run on SP(k) and FAT(k); reported are encode
// time, solve time, assertion count and named-intermediate count.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "net/Generators.h"
#include "smt/Verifier.h"

using namespace nv;
using namespace nvbench;

int main(int argc, char **argv) {
  Args A = Args::parse(argc, argv);
  unsigned K = A.Paper ? 8 : 4;

  std::printf("SMT pipeline ablation on SP%u and FAT%u (timeout %us).\n\n",
              K, K, A.TimeoutSec);
  Table T({"network", "fold", "name", "encode (ms)", "solve (ms)",
           "#asserts", "#named"});

  for (bool Fat : {false, true}) {
    DiagnosticEngine Diags;
    auto P = loadGenerated(Fat ? generateFatSingle(K) : generateSpSingle(K),
                           Diags);
    if (!P) {
      Diags.printToStderr();
      return 1;
    }
    for (bool Fold : {true, false})
      for (bool Name : {false, true}) {
        VerifyOptions Opts;
        Opts.TimeoutMs = A.TimeoutSec * 1000;
        Opts.Smt.ConstantFold = Fold;
        Opts.Smt.NameIntermediates = Name;
        VerifyResult R = verifyProgram(*P, Opts, Diags);
        // Solver timeouts surface as ResourceExhausted under the
        // run-governance layer; Unknown is genuine incompleteness.
        std::string Solve;
        if (R.Status == VerifyStatus::ResourceExhausted ||
            R.Status == VerifyStatus::Unknown) {
          Solve = ">";
          Solve += std::to_string(A.TimeoutSec);
          Solve += "s";
        } else {
          Solve = ms(R.SolveMs);
        }
        std::string Label = Fat ? "FAT" : "SP";
        Label += std::to_string(K);
        T.row({Label,
               Fold ? "on" : "off", Name ? "on" : "off", ms(R.EncodeMs),
               Solve, std::to_string(R.NumAssertions),
               std::to_string(R.NamedIntermediates)});
      }
  }
  T.print();
  return 0;
}
