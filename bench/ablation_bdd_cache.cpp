//===- ablation_bdd_cache.cpp - MTBDD operation-cache ablation ---------------===//
//
// Sec. 5.1: "To amortize the cost of these operations we cache them".
// Measures the fault-tolerance meta-simulation with the MTBDD operation
// cache enabled vs disabled (google-benchmark).
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "eval/Compile.h"
#include "net/Generators.h"

#include <benchmark/benchmark.h>

using namespace nv;

namespace {

struct Fixture {
  Program Meta;
  static Fixture &forK(unsigned K) {
    static std::map<unsigned, Fixture> Cache;
    auto It = Cache.find(K);
    if (It != Cache.end())
      return It->second;
    DiagnosticEngine Diags;
    auto P = loadGenerated(generateSpSingle(K), Diags);
    auto M = makeFaultTolerantProgram(*P, FtOptions{}, Diags);
    Fixture F{*M};
    return Cache.emplace(K, std::move(F)).first->second;
  }
};

void BM_FaultToleranceSim(benchmark::State &State) {
  unsigned K = static_cast<unsigned>(State.range(0));
  bool CacheOn = State.range(1) != 0;
  Fixture &F = Fixture::forK(K);
  for (auto _ : State) {
    NvContext Ctx(F.Meta.numNodes());
    Ctx.Mgr.setCachingEnabled(CacheOn);
    CompiledProgramEvaluator Eval(Ctx, F.Meta);
    SimResult R = simulate(F.Meta, Eval);
    benchmark::DoNotOptimize(R.Converged);
    State.counters["cache_hits"] =
        static_cast<double>(Ctx.Mgr.cacheHits());
    State.counters["cache_misses"] =
        static_cast<double>(Ctx.Mgr.cacheMisses());
  }
}

} // namespace

BENCHMARK(BM_FaultToleranceSim)
    ->ArgNames({"k", "cache"})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({6, 1})
    ->Args({6, 0})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
