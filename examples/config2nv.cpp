//===- config2nv.cpp - Sec. 4: vendor configurations to NV --------------------===//
//
// Parses a Cisco-style configuration (the route-map of Fig. 10a inside a
// small network), shows the route-map DAG before and after hoisting the
// prefix conditions, emits the NV program, and verifies reachability of an
// announced prefix with the SMT backend.
//
//===----------------------------------------------------------------------===//

#include "frontend/Config.h"
#include "frontend/RouteMapDag.h"
#include "frontend/Translate.h"
#include "net/Generators.h"
#include "smt/Verifier.h"

#include <cstdio>

using namespace nv;

namespace {

const char *Configs = R"cfg(
router A
interface neighbor B
interface neighbor C
ip route 192.168.2.0/24
network 10.1.0.0/16

router B
interface neighbor A
interface neighbor D
router bgp 2
neighbor D route-map RM1 out
ip community-list comm1 permit 12
ip community-list comm2 permit 34
ip prefix-list pfx permit 192.168.2.0/24
route-map RM1 permit 10
match community comm1
match ip address prefix-list pfx
set local-preference 200
route-map RM1 permit 20
match community comm2
set local-preference 100

router C
interface neighbor A
interface neighbor D
router bgp 3
neighbor D route-map TAGALL out
route-map TAGALL permit 10
set community 12

router D
interface neighbor B
interface neighbor C
)cfg";

} // namespace

int main() {
  printf("== config2nv: translating router configurations (Sec. 4) ==\n\n");
  DiagnosticEngine Diags;
  auto Net = parseConfigs(Configs, Diags);
  if (!Net) {
    Diags.printToStderr();
    return 1;
  }
  printf("Parsed %zu routers; links:", Net->Routers.size());
  for (auto [U, V] : Net->links(Diags))
    printf(" %s-%s", Net->Routers[U].Name.c_str(),
           Net->Routers[V].Name.c_str());
  printf("\n");

  // --- Fig. 10: the route-map DAG before and after hoisting ----------------
  const RouterConfig &B = Net->Routers[1]; // router B holds RM1
  const RouteMap &RM1 = B.RouteMaps.at("RM1");
  RouteMapDag D = buildRouteMapDag(RM1);
  printf("\nRoute-map RM1 as a DAG (Fig. 10b):\n%s", D.str().c_str());
  RouteMapDag H = hoistPrefixConditions(D);
  printf("\nAfter hoisting prefix conditions (Fig. 10c):\n%s",
         H.str().c_str());
  printf("(prefix conditions hoisted: %s)\n",
         H.prefixConditionsHoisted() ? "yes" : "no");

  // --- Emission -------------------------------------------------------------
  auto T = translateConfigs(*Net, Diags);
  if (!T) {
    Diags.printToStderr();
    return 1;
  }
  printf("\nGenerated NV program (%zu bytes); RM1 as mapIte (Fig. 10d):\n",
         T->NvSource.size());
  std::string Fn =
      emitRouteMapFunction("transRM1", B, RM1, Diags);
  printf("%s\n", Fn.c_str());

  // --- Verify reachability of A's 10.1.0.0/16 ------------------------------
  Prefix Target;
  Target.Addr = (10u << 24) | (1u << 16);
  Target.Len = 16;
  std::string Src = T->NvSource + nvAssertReachable(Target);
  DiagnosticEngine D2;
  auto P = loadGenerated(Src, D2);
  if (!P) {
    D2.printToStderr();
    return 1;
  }
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(*P, Opts, D2);
  printf("SMT reachability of %s from every router: %s\n",
         Target.str().c_str(),
         R.Status == VerifyStatus::Verified ? "VERIFIED" : "FAILED");
  if (R.Status != VerifyStatus::Verified)
    printf("%s\n", R.Counterexample.c_str());
  return R.Status == VerifyStatus::Verified ? 0 : 1;
}
