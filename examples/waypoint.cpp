//===- waypoint.cpp - Fig. 3: tracking traversed nodes ------------------------===//
//
// Sec. 2.6's modeling flexibility: augmenting BGP routes with the set of
// traversed nodes to reason about waypointing — "does every route to the
// destination pass through the firewall node?". The model is the paper's
// Fig. 3 (shipped as the built-in `bgpTrace` include).
//
//===----------------------------------------------------------------------===//

#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <cstdio>

using namespace nv;

namespace {

/// 0 is the destination; 3 is a firewall; traffic from 4 and 5 should
/// always traverse the firewall. Topology:
///     0 -- 3 -- 4
///     |         |
///     + -- 2 -- 5      (2 is a backdoor path around the firewall)
std::string program(bool CutBackdoor) {
  std::string Edges = CutBackdoor ? "{0n=3n;3n=4n;4n=5n}"
                                  : "{0n=3n;3n=4n;4n=5n;0n=2n;2n=5n}";
  return "include bgpTrace\n"
         "let nodes = 6\n"
         "let edges = " + Edges + "\n"
         "type attribute = traceAttr\n"
         "let trans e x = transTrace e x\n"
         "let merge u x y = mergeTrace u x y\n"
         "let init (u : node) =\n"
         "  match u with\n"
         "  | 0n ->\n"
         "    let s : set[node] = {} in\n"
         "    Some (s, {length = 0; lp = 100; med = 0; comms = {}; "
         "origin = 0n})\n"
         "  | _ -> None\n"
         // Waypoint property: nodes 4 and 5 only hold routes that
         // traversed the firewall (node 3).
         "let assert (u : node) (x : attribute) =\n"
         "  match x with\n"
         "  | None -> false\n"
         "  | Some (s, b) ->\n"
         "    if u = 4n || u = 5n then s[3n] else true\n";
}

int run(const char *Title, bool CutBackdoor) {
  printf("-- %s --\n", Title);
  DiagnosticEngine Diags;
  auto P = parseProgram(program(CutBackdoor), Diags);
  if (!P || !typeCheck(*P, Diags)) {
    Diags.printToStderr();
    return 1;
  }

  NvContext Ctx(P->numNodes());
  InterpProgramEvaluator Eval(Ctx, *P);
  SimResult R = simulate(*P, Eval);
  printf("converged: %s\n", R.Converged ? "yes" : "no");
  for (uint32_t U = 0; U < P->numNodes(); ++U) {
    const Value *L = R.Labels[U];
    if (!L->isSome()) {
      printf("  node %u: no route\n", U);
      continue;
    }
    // traceAttr = option[(set[node], bgp)].
    const Value *Visited = L->Inner->Elems[0];
    bool ViaFirewall = Ctx.mapGet(Visited, Ctx.nodeV(3)) == Ctx.TrueV;
    printf("  node %u: route of length %llu, via firewall: %s\n", U,
           static_cast<unsigned long long>(L->Inner->Elems[1]->Elems[1]->I),
           ViaFirewall ? "yes" : "NO");
  }
  auto Failed = checkAsserts(Eval, R);
  printf("waypoint property: %s\n\n", Failed.empty() ? "HOLDS" : "VIOLATED");

  DiagnosticEngine D2;
  VerifyOptions Opts;
  VerifyResult V = verifyProgram(*P, Opts, D2);
  printf("SMT agrees: %s\n\n",
         (V.Status == VerifyStatus::Verified) == Failed.empty() ? "yes"
                                                                : "NO");
  return 0;
}

} // namespace

int main() {
  printf("== Waypointing with traversed-node sets (Fig. 3) ==\n\n");
  run("With the backdoor path 0-2-5 (property should fail)", false);
  run("Backdoor removed (property should hold)", true);
  return 0;
}
