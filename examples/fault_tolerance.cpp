//===- fault_tolerance.cpp - Fig. 4/5: all failures in one simulation --------===//
//
// Runs the paper's fault-tolerance meta-protocol on a FatTree: one
// simulation computes the routes of every single-link-failure scenario at
// once, and the MTBDD sharing exposes Fig. 4's insight — failures inside a
// pod do not affect routes outside it, so the number of distinct routes
// per node stays tiny compared to the number of scenarios.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "eval/Compile.h"
#include "net/Generators.h"
#include "support/Timer.h"

#include <cstdio>

using namespace nv;

int main(int argc, char **argv) {
  unsigned K = argc > 1 ? static_cast<unsigned>(atoi(argv[1])) : 4;
  printf("== Fault tolerance on SP(%u): every link failure at once ==\n\n",
         K);

  DiagnosticEngine Diags;
  auto P = loadGenerated(generateSpSingle(K), Diags);
  if (!P) {
    Diags.printToStderr();
    return 1;
  }
  size_t NumLinks = P->links().size();
  printf("Network: %u nodes, %zu links => %zu single-link scenarios\n",
         P->numNodes(), NumLinks, NumLinks);

  // --- The meta-protocol: dict[edge, route] ------------------------------
  FtOptions Opts; // one link failure
  FtRunResult R = runFaultTolerance(*P, Opts, /*Compiled=*/true, Diags);
  if (!R.Converged) {
    Diags.printToStderr();
    return 1;
  }
  printf("\nMeta-protocol (Fig. 5) simulation: transform %.1fms, "
         "simulate %.1fms, check %.1fms\n",
         R.TransformMs, R.SimulateMs, R.CheckMs);
  printf("Property %s across %llu scenarios (%zu violations)\n",
         R.Check.holds() ? "HOLDS" : "FAILS",
         static_cast<unsigned long long>(R.Check.ScenariosChecked),
         R.Check.Violations.size());

  // --- Fig. 4: MTBDD sharing collapses equivalent scenarios ---------------
  auto Meta = makeFaultTolerantProgram(*P, Opts, Diags);
  NvContext Ctx(P->numNodes());
  CompiledProgramEvaluator Eval(Ctx, *Meta);
  SimResult Sim = simulate(*Meta, Eval);
  printf("\nDistinct routes per node across all %zu scenarios "
         "(Fig. 4's pod locality):\n", NumLinks);
  size_t MaxDistinct = 0;
  for (uint32_t U = 0; U < P->numNodes(); ++U)
    MaxDistinct = std::max(
        MaxDistinct, Ctx.Mgr.numDistinctLeaves(Sim.Labels[U]->MapRoot));
  for (uint32_t U = 0; U < std::min<uint32_t>(4, P->numNodes()); ++U)
    printf("  node %u: %zu distinct routes\n", U,
           Ctx.Mgr.numDistinctLeaves(Sim.Labels[U]->MapRoot));
  printf("  ... maximum over all nodes: %zu (out of %zu scenarios)\n",
         MaxDistinct, NumLinks);

  // --- Baseline: one simulation per scenario ------------------------------
  Stopwatch W;
  InterpProgramEvaluator Base(Ctx, *P);
  FtCheckResult Naive = naiveFaultTolerance(*P, Base, Opts, Ctx.noneV());
  printf("\nNaive baseline (re-simulate per scenario): %.1fms for %llu "
         "simulations — same verdict: %s\n",
         W.elapsedMs(),
         static_cast<unsigned long long>(Naive.ScenariosChecked),
         Naive.holds() == R.Check.holds() ? "yes" : "NO (bug!)");

  // --- Two simultaneous failures -------------------------------------------
  FtOptions Two;
  Two.LinkFailures = 2;
  Stopwatch W2;
  FtRunResult R2 = runFaultTolerance(*P, Two, true, Diags);
  printf("\nTwo simultaneous link failures (%llu scenarios): %.1fms, "
         "property %s (%zu violations)\n",
         static_cast<unsigned long long>(R2.Check.ScenariosChecked),
         W2.elapsedMs(), R2.Check.holds() ? "HOLDS" : "FAILS",
         R2.Check.Violations.size());
  if (!R2.Check.Violations.empty()) {
    const FtViolation &V = R2.Check.Violations.front();
    printf("  e.g. scenario %s cuts off node %u\n", V.Scenario.str().c_str(),
           V.Node);
  }
  return 0;
}
