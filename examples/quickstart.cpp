//===- quickstart.cpp - The paper's Fig. 2 walkthrough ------------------------===//
//
// The working example of Sec. 2: a 5-node network whose internal nodes
// (0-3) run BGP, with an external peer (node 4) announcing an arbitrary
// route. We simulate the network with a concrete announcement, then use
// the SMT verifier to show node 4 *can* hijack traffic, and that an
// import filter repairs the property.
//
//===----------------------------------------------------------------------===//

#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <cstdio>

using namespace nv;

namespace {

const char *Fig2b = R"nv(
include bgp
let nodes = 5
let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}

symbolic route : attribute

let trans e x = transBgp e x
let merge u x y = mergeBgp u x y

let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | 4n -> route
  | _ -> None

(* Nodes inside our network must prefer the route originated at node 0. *)
let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some b -> if u <> 4n then b.origin = 0n else true
)nv";

const char *WithFilter =
    "let trans (e : edge) (x : attribute) =\n"
    "  let (u, v) = e in\n"
    "  if u = 4n then None else transBgp e x\n";

Program mustLoad(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  if (!P || !typeCheck(*P, Diags)) {
    Diags.printToStderr();
    exit(1);
  }
  return *P;
}

} // namespace

int main() {
  printf("== NV quickstart: the Fig. 2 BGP hijack example ==\n\n");
  Program P = mustLoad(Fig2b);
  printf("Parsed %zu declarations; attribute type: %s\n", P.Decls.size(),
         typeToString(P.AttrType).c_str());

  // --- Simulation with a concrete peer announcement -----------------------
  NvContext Ctx(P.numNodes());
  DiagnosticEngine Diags;
  ExprPtr RouteE = parseExprString(
      "let c : set[int] = {} in "
      "Some {length = 0; lp = 100; med = 10; comms = c; origin = 4n}",
      Diags);
  typeCheckExpr(RouteE, Diags);
  InterpProgramEvaluator Boot(Ctx, P);
  const Value *Announced = Boot.evalUnderGlobals(RouteE);

  InterpProgramEvaluator Eval(Ctx, P, {{"route", Announced}});
  SimResult R = simulate(P, Eval);
  printf("\nSimulated with node 4 announcing med=10 (converged: %s,"
         " %llu messages):\n",
         R.Converged ? "yes" : "no",
         static_cast<unsigned long long>(R.Stats.TransCalls));
  for (uint32_t U = 0; U < P.numNodes(); ++U)
    printf("  node %u selects %s\n", U, Ctx.printValue(R.Labels[U]).c_str());
  auto Failed = checkAsserts(Eval, R);
  printf("  assertion failing at %zu node(s) — nodes 1 and 2 were hijacked\n",
         Failed.size());

  // --- SMT verification over EVERY possible announcement ------------------
  printf("\nVerifying over all possible announcements (SMT)...\n");
  VerifyOptions Opts;
  VerifyResult V = verifyProgram(P, Opts, Diags);
  printf("  verdict: %s\n",
         V.Status == VerifyStatus::Falsified ? "FALSIFIED (hijack possible)"
                                             : "verified");
  if (V.Status == VerifyStatus::Falsified)
    printf("  counterexample:\n%s", V.Counterexample.c_str());

  // --- Repair with an import filter ---------------------------------------
  printf("\nAdding an import filter on routes from node 4 and re-verifying"
         "...\n");
  std::string Fixed(Fig2b);
  size_t Pos = Fixed.find("let trans e x = transBgp e x");
  Fixed.replace(Pos, std::string("let trans e x = transBgp e x").size(),
                WithFilter);
  Program P2 = mustLoad(Fixed);
  VerifyResult V2 = verifyProgram(P2, Opts, Diags);
  printf("  verdict: %s\n", V2.Status == VerifyStatus::Verified
                                ? "VERIFIED (no hijack possible)"
                                : "still falsified?!");
  return V2.Status == VerifyStatus::Verified ? 0 : 1;
}
