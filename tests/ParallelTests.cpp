//===- ParallelTests.cpp - sharded-analysis determinism tests ----------------===//
//
// The parallel analyses must be bit-for-bit deterministic: the naive
// baseline, the Batfish baseline and the meta-protocol's assert check all
// promise output identical to their serial runs for any pool size. Also
// pins the two serial-kernel overhauls the shards run on: the
// direct-mapped (lossy) MTBDD op cache stays correct under eviction, and
// the simulator's flat receive table computes the same fixpoint as the
// synchronous-iteration oracle on a random topology.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/BatfishSim.h"
#include "baselines/NaiveFailures.h"
#include "bdd/Mtbdd.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "net/Generators.h"

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <tuple>

using namespace nv;

namespace {

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

/// Shortest-path routing with an all-nodes-reachable assertion.
std::string spProgram(uint32_t Nodes,
                      const std::vector<std::pair<int, int>> &Links) {
  std::string Edges;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Edges += ";";
    Edges += std::to_string(Links[I].first) + "n=" +
             std::to_string(Links[I].second) + "n";
  }
  return "let nodes = " + std::to_string(Nodes) +
         "\n"
         "let edges = {" +
         Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

/// Line 0-1-2-3: every single-link failure breaks reachability, so the
/// naive/meta analyses report a non-trivial violation list whose order we
/// can compare across pool sizes.
const std::vector<std::pair<int, int>> Line = {{0, 1}, {1, 2}, {2, 3}};

/// Comparable projection of a violation list (routes by string: parallel
/// shards intern them in different arenas).
std::vector<std::tuple<std::string, uint32_t, std::string>>
violationKeys(const FtCheckResult &R) {
  std::vector<std::tuple<std::string, uint32_t, std::string>> Out;
  for (const FtViolation &V : R.Violations)
    Out.push_back({V.Scenario.str(), V.Node, V.Route->str()});
  return Out;
}

//===----------------------------------------------------------------------===//
// Naive baseline: serial vs sharded
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminism, NaiveBaselineIdenticalAcrossPoolSizes) {
  Program P = parseAndCheck(spProgram(4, Line));

  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  FtCheckResult Serial = naiveFaultTolerance(P, Eval, FtOptions{}, Ctx.noneV());
  EXPECT_EQ(Serial.ScenariosChecked, 3u);
  EXPECT_FALSE(Serial.holds());
  auto SerialKeys = violationKeys(Serial);

  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    FtCheckResult Par = naiveFaultToleranceParallel(P, FtOptions{}, Pool);
    EXPECT_EQ(Par.ScenariosChecked, Serial.ScenariosChecked) << Threads;
    EXPECT_EQ(violationKeys(Par), SerialKeys) << Threads << " threads";
    // Route pointers must stay valid: their arenas ride along.
    for (const FtViolation &V : Par.Violations)
      EXPECT_FALSE(V.Route->str().empty());
  }
}

//===----------------------------------------------------------------------===//
// Batfish baseline: serial vs sharded
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminism, BatfishBaselineIdenticalAcrossPoolSizes) {
  DiagnosticEngine Diags;
  auto Param = loadGenerated(generateSpSingleParam(4), Diags);
  ASSERT_TRUE(Param.has_value()) << Diags.str();
  auto Leaves = FatTree(4).leaves();
  ASSERT_GT(Leaves.size(), 1u);

  // Hop count of the selected route; pure in its argument.
  auto Extract = [](const Value *V) -> int64_t {
    return V->isSome() ? static_cast<int64_t>(V->Inner->I) : -1;
  };

  BatfishResult Serial = batfishAllPrefixes(*Param, Leaves, Extract);
  ASSERT_TRUE(Serial.Converged);
  EXPECT_EQ(Serial.PrefixesSimulated, Leaves.size());

  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    BatfishResult Par = batfishAllPrefixes(*Param, Leaves, Extract, &Pool);
    EXPECT_EQ(Par.Converged, Serial.Converged);
    EXPECT_EQ(Par.PrefixesSimulated, Serial.PrefixesSimulated);
    EXPECT_EQ(Par.TotalPops, Serial.TotalPops) << Threads;
    EXPECT_EQ(Par.TotalValuesAllocated, Serial.TotalValuesAllocated)
        << Threads;
    EXPECT_EQ(Par.Labels, Serial.Labels) << Threads << " threads";
  }
}

//===----------------------------------------------------------------------===//
// Meta-protocol assert check: serial vs sharded indexing
//===----------------------------------------------------------------------===//

TEST(ParallelDeterminism, FtCheckIdenticalAcrossPoolSizes) {
  Program P = parseAndCheck(spProgram(4, Line));
  FtOptions Opts;
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, Opts, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();

  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator MetaEval(Ctx, *Meta);
  SimResult MetaR = simulate(*Meta, MetaEval);
  ASSERT_TRUE(MetaR.Converged);
  InterpProgramEvaluator BaseEval(Ctx, P);

  FtCheckResult Serial =
      checkFaultTolerance(Ctx, P, BaseEval, MetaR, Opts, nullptr);
  EXPECT_EQ(Serial.Violations.size(), 6u);

  for (unsigned Threads : {2u, 8u}) {
    ThreadPool Pool(Threads);
    FtCheckResult Par =
        checkFaultTolerance(Ctx, P, BaseEval, MetaR, Opts, &Pool);
    ASSERT_EQ(Par.Violations.size(), Serial.Violations.size()) << Threads;
    for (size_t I = 0; I < Par.Violations.size(); ++I) {
      EXPECT_EQ(Par.Violations[I].Scenario.str(),
                Serial.Violations[I].Scenario.str());
      EXPECT_EQ(Par.Violations[I].Node, Serial.Violations[I].Node);
      // Same context on both sides: even the interned route pointers match.
      EXPECT_EQ(Par.Violations[I].Route, Serial.Violations[I].Route);
    }
  }
}

TEST(ParallelDeterminism, RunFaultToleranceThreadsOptionAgrees) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  FtOptions Serial1;
  FtRunResult A = runFaultTolerance(P, Serial1, /*Compiled=*/false, Diags);
  FtOptions Par;
  Par.Threads = 4;
  FtRunResult B = runFaultTolerance(P, Par, /*Compiled=*/false, Diags);
  ASSERT_TRUE(A.Converged && B.Converged);
  ASSERT_EQ(A.Check.Violations.size(), B.Check.Violations.size());
  for (size_t I = 0; I < A.Check.Violations.size(); ++I) {
    EXPECT_EQ(A.Check.Violations[I].Scenario.str(),
              B.Check.Violations[I].Scenario.str());
    EXPECT_EQ(A.Check.Violations[I].Node, B.Check.Violations[I].Node);
  }
}

//===----------------------------------------------------------------------===//
// Direct-mapped op cache: eviction never changes results
//===----------------------------------------------------------------------===//

TEST(OpCache, SlotsRoundUpToPowerOfTwo) {
  EXPECT_EQ(BddManager(1).opCacheSlots(), 16u);
  EXPECT_EQ(BddManager(16).opCacheSlots(), 16u);
  EXPECT_EQ(BddManager(17).opCacheSlots(), 32u);
  EXPECT_EQ(BddManager(BddManager::DefaultOpCacheSlots).opCacheSlots(),
            BddManager::DefaultOpCacheSlots);
}

TEST(OpCache, EvictionUnderTinyCacheStaysCorrect) {
  // 16-slot cache + dozens of live (Tag, A, B) triples: most lookups
  // collide and entries get overwritten constantly. Every result must
  // still equal the uncached recomputation (hash-consing makes equal
  // diagrams identical refs within one manager).
  static int Payloads[64];
  BddManager M(1); // 16 slots
  ASSERT_EQ(M.opCacheSlots(), 16u);

  const unsigned Bits = 5;
  std::mt19937 Rng(7);
  auto RandomMap = [&]() {
    BddManager::Ref R = M.leaf(&Payloads[0]);
    for (int S = 0; S < 8; ++S) {
      std::vector<bool> Key(Bits);
      for (unsigned B = 0; B < Bits; ++B)
        Key[B] = Rng() & 1;
      R = M.set(R, Key, &Payloads[Rng() % 64]);
    }
    return R;
  };

  auto Min = [](const void *A, const void *B) {
    return A < B ? A : B; // arbitrary but deterministic on interned leaves
  };

  std::vector<BddManager::Ref> Maps;
  for (int I = 0; I < 12; ++I)
    Maps.push_back(RandomMap());

  // Round 1: cached, with heavy eviction across 3 distinct tags.
  uint64_t Tags[3] = {M.freshOpTag(), M.freshOpTag(), M.freshOpTag()};
  std::vector<BddManager::Ref> Cached;
  for (size_t I = 0; I < Maps.size(); ++I)
    for (size_t K = 0; K < Maps.size(); ++K)
      Cached.push_back(M.apply2(Maps[I], Maps[K], Min, Tags[(I + K) % 3]));
  EXPECT_GT(M.cacheMisses(), 0u);

  // Round 2: caching off — ground truth.
  M.clearCaches();
  M.setCachingEnabled(false);
  size_t Idx = 0;
  for (size_t I = 0; I < Maps.size(); ++I)
    for (size_t K = 0; K < Maps.size(); ++K)
      EXPECT_EQ(Cached[Idx++],
                M.apply2(Maps[I], Maps[K], Min, Tags[(I + K) % 3]))
          << "pair " << I << "," << K;
}

TEST(OpCache, TinyCacheAgreesWithDefaultCache) {
  // The same op sequence on a 16-slot and a default-size manager must
  // produce structurally identical diagrams (compared via forEachKey).
  static int Payloads[8];
  auto Run = [&](BddManager &M, std::vector<std::vector<const void *>> &Out) {
    const unsigned Bits = 3;
    auto Add = [](const void *A, const void *B) {
      return A > B ? A : B;
    };
    BddManager::Ref X = M.leaf(&Payloads[0]);
    BddManager::Ref Y = M.leaf(&Payloads[1]);
    for (int S = 0; S < 6; ++S) {
      std::vector<bool> Key(Bits);
      for (unsigned B = 0; B < Bits; ++B)
        Key[B] = (S >> B) & 1;
      X = M.set(X, Key, &Payloads[(S + 2) % 8]);
      Y = M.set(Y, Key, &Payloads[(S * 3) % 8]);
    }
    BddManager::Ref Z = M.apply2(X, Y, Add, M.freshOpTag());
    Z = M.map1(Z, [](const void *L) { return L; }, M.freshOpTag());
    std::vector<const void *> Row;
    M.forEachKey(Z, Bits, [&](const std::vector<bool> &, const void *L) {
      Row.push_back(L);
    });
    Out.push_back(Row);
  };
  std::vector<std::vector<const void *>> Tiny, Default;
  BddManager MT(1), MD;
  Run(MT, Tiny);
  Run(MD, Default);
  EXPECT_EQ(Tiny, Default);
}

//===----------------------------------------------------------------------===//
// Flat receive table: fixpoint matches BFS oracle on a random topology
//===----------------------------------------------------------------------===//

TEST(FlatReceiveTable, MatchesBfsOracleOnRandomTopology) {
  // Random connected graph: a random spanning tree plus extra edges,
  // fixed seed. The shortest-path program's fixpoint must equal BFS
  // hop counts from node 0, under both merge strategies (the incremental
  // path and the full re-merge path scan the receive table differently).
  const uint32_t N = 14;
  std::mt19937 Rng(42);
  std::vector<std::pair<int, int>> Links;
  for (uint32_t V = 1; V < N; ++V)
    Links.push_back({static_cast<int>(Rng() % V), static_cast<int>(V)});
  for (int Extra = 0; Extra < 10; ++Extra) {
    uint32_t A = Rng() % N, B = Rng() % N;
    if (A == B)
      continue;
    auto E = std::make_pair(static_cast<int>(std::min(A, B)),
                            static_cast<int>(std::max(A, B)));
    bool Dup = false;
    for (auto &L : Links)
      Dup |= L == E;
    if (!Dup)
      Links.push_back(E);
  }

  // BFS oracle over the undirected topology.
  std::vector<int64_t> Dist(N, -1);
  Dist[0] = 0;
  std::deque<uint32_t> Q{0};
  while (!Q.empty()) {
    uint32_t U = Q.front();
    Q.pop_front();
    for (auto &[A, B] : Links) {
      uint32_t X = static_cast<uint32_t>(A), Y = static_cast<uint32_t>(B);
      uint32_t V;
      if (X == U)
        V = Y;
      else if (Y == U)
        V = X;
      else
        continue;
      if (Dist[V] < 0) {
        Dist[V] = Dist[U] + 1;
        Q.push_back(V);
      }
    }
  }

  Program P = parseAndCheck(spProgram(N, Links));
  for (bool Incremental : {true, false}) {
    NvContext Ctx(P.numNodes());
    InterpProgramEvaluator Eval(Ctx, P);
    SimOptions Opts;
    Opts.IncrementalMerge = Incremental;
    SimResult R = simulate(P, Eval, Opts);
    ASSERT_TRUE(R.Converged) << "incremental=" << Incremental;
    ASSERT_EQ(R.Labels.size(), N);
    for (uint32_t U = 0; U < N; ++U) {
      ASSERT_TRUE(Dist[U] >= 0) << "graph not connected at " << U;
      ASSERT_TRUE(R.Labels[U]->isSome()) << U;
      EXPECT_EQ(static_cast<int64_t>(R.Labels[U]->Inner->I), Dist[U])
          << "node " << U << " incremental=" << Incremental;
    }
  }
}

TEST(FlatReceiveTable, BothMergeStrategiesAgreeOnStats) {
  // Same fixpoint regardless of strategy; the flat table must not change
  // the order full re-merges fold senders in (ascending sender id, the
  // old std::map order), so label pointers agree within one context.
  //
  // Chain 0-1-2-3-4 plus shortcut 0-4: node 3 first learns the 3-hop
  // chain route, then the 2-hop route through the shortcut, so it re-sends
  // an *improved* route over an already-written slot — the only situation
  // that exercises the full re-merge scan (line 18).
  Program P = parseAndCheck(
      spProgram(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}}));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  SimOptions Inc, Full;
  Full.IncrementalMerge = false;
  SimResult A = simulate(P, Eval, Inc);
  SimResult B = simulate(P, Eval, Full);
  ASSERT_TRUE(A.Converged && B.Converged);
  EXPECT_EQ(A.Labels, B.Labels);
  EXPECT_GT(B.Stats.FullMerges, 0u);
}

} // namespace
