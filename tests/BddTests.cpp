//===- BddTests.cpp - MTBDD substrate tests ---------------------------------===//
//
// Property tests of the MTBDD package against brute-force enumeration over
// all keys, plus canonicity and cache-behaviour checks.
//
//===----------------------------------------------------------------------===//

#include "bdd/Mtbdd.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace nv;

namespace {

/// Interned integer payloads for leaf values.
const void *payload(int V) {
  static std::map<int, std::unique_ptr<int>> Pool;
  auto &P = Pool[V];
  if (!P)
    P = std::make_unique<int>(V);
  return P.get();
}

int payloadValue(const void *P) { return *static_cast<const int *>(P); }

std::vector<bool> keyBits(uint64_t K, unsigned NumBits) {
  std::vector<bool> Bits(NumBits);
  for (unsigned I = 0; I < NumBits; ++I)
    Bits[I] = (K >> (NumBits - 1 - I)) & 1;
  return Bits;
}

TEST(Mtbdd, LeavesAreCanonical) {
  BddManager M;
  EXPECT_EQ(M.leaf(payload(1)), M.leaf(payload(1)));
  EXPECT_NE(M.leaf(payload(1)), M.leaf(payload(2)));
}

TEST(Mtbdd, MkNodeReduces) {
  BddManager M;
  BddManager::Ref L = M.leaf(payload(7));
  EXPECT_EQ(M.mkNode(0, L, L), L);
  BddManager::Ref A = M.mkNode(1, M.leaf(payload(1)), M.leaf(payload(2)));
  EXPECT_EQ(M.mkNode(1, M.leaf(payload(1)), M.leaf(payload(2))), A);
}

TEST(Mtbdd, CreateIsTotal) {
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(42));
  for (uint64_t K = 0; K < 16; ++K)
    EXPECT_EQ(payloadValue(M.get(Map, keyBits(K, 4))), 42);
}

TEST(Mtbdd, SetThenGet) {
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(0));
  Map = M.set(Map, keyBits(5, 4), payload(55));
  Map = M.set(Map, keyBits(9, 4), payload(99));
  for (uint64_t K = 0; K < 16; ++K) {
    int Expected = K == 5 ? 55 : K == 9 ? 99 : 0;
    EXPECT_EQ(payloadValue(M.get(Map, keyBits(K, 4))), Expected) << K;
  }
}

/// Property: a random sequence of sets agrees with a std::map reference,
/// and re-building the same contents in any order yields the same root
/// (canonicity).
class MtbddRandomSets : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(MtbddRandomSets, MatchesReferenceAndIsCanonical) {
  auto [NumBits, Seed] = GetParam();
  std::mt19937 Rng(Seed);
  uint64_t Space = uint64_t(1) << NumBits;

  BddManager M;
  BddManager::Ref Map = M.leaf(payload(-1));
  std::map<uint64_t, int> Ref;

  for (int I = 0; I < 100; ++I) {
    uint64_t K = Rng() % Space;
    int V = static_cast<int>(Rng() % 5);
    Map = M.set(Map, keyBits(K, NumBits), payload(V));
    Ref[K] = V;
  }
  for (uint64_t K = 0; K < Space; ++K) {
    int Expected = Ref.count(K) ? Ref[K] : -1;
    ASSERT_EQ(payloadValue(M.get(Map, keyBits(K, NumBits))), Expected);
  }

  // Rebuild in shuffled key order: same final contents => same root.
  std::vector<std::pair<uint64_t, int>> Entries(Ref.begin(), Ref.end());
  std::shuffle(Entries.begin(), Entries.end(), Rng);
  BddManager::Ref Map2 = M.leaf(payload(-1));
  for (const auto &[K, V] : Entries)
    Map2 = M.set(Map2, keyBits(K, NumBits), payload(V));
  EXPECT_EQ(Map, Map2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MtbddRandomSets,
    ::testing::Combine(::testing::Values(4, 6, 8, 10),
                       ::testing::Values(1, 2, 3)));

TEST(Mtbdd, Map1AppliesOncePerDistinctLeaf) {
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(0));
  // Two distinct non-default leaves over an 8-bit key space.
  for (uint64_t K = 0; K < 64; ++K)
    Map = M.set(Map, keyBits(K, 8), payload(1));
  Map = M.set(Map, keyBits(200, 8), payload(2));

  int Calls = 0;
  uint64_t Tag = M.freshOpTag();
  BddManager::Ref Out = M.map1(
      Map,
      [&](const void *P) {
        ++Calls;
        return payload(payloadValue(P) + 10);
      },
      Tag);
  EXPECT_EQ(Calls, 3); // leaves 0, 1, 2 — not 256 keys
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(3, 8))), 11);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(200, 8))), 12);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(250, 8))), 10);
}

TEST(Mtbdd, Apply2MatchesBruteForce) {
  const unsigned Bits = 6;
  std::mt19937 Rng(7);
  BddManager M;
  BddManager::Ref A = M.leaf(payload(0));
  BddManager::Ref B = M.leaf(payload(1));
  for (int I = 0; I < 40; ++I) {
    A = M.set(A, keyBits(Rng() % 64, Bits), payload(int(Rng() % 4)));
    B = M.set(B, keyBits(Rng() % 64, Bits), payload(int(Rng() % 4)));
  }
  BddManager::Ref Out = M.apply2(
      A, B,
      [&](const void *X, const void *Y) {
        return payload(payloadValue(X) * 10 + payloadValue(Y));
      },
      M.freshOpTag());
  for (uint64_t K = 0; K < 64; ++K) {
    auto KB = keyBits(K, Bits);
    EXPECT_EQ(payloadValue(M.get(Out, KB)),
              payloadValue(M.get(A, KB)) * 10 + payloadValue(M.get(B, KB)));
  }
}

//===----------------------------------------------------------------------===//
// Boolean diagrams
//===----------------------------------------------------------------------===//

class BoolOps : public ::testing::TestWithParam<int> {};

TEST_P(BoolOps, MatchTruthTablesOnRandomDiagrams) {
  const unsigned Bits = 5;
  std::mt19937 Rng(GetParam());
  static const bool TrueP = true, FalseP = false;
  BddManager M;
  M.setBoolPayloads(&TrueP, &FalseP);

  auto RandomBdd = [&]() {
    BddManager::Ref R = (Rng() & 1) ? M.trueBdd() : M.falseBdd();
    for (int I = 0; I < 10; ++I) {
      BddManager::Ref V = M.bitVar(Rng() % Bits);
      switch (Rng() % 3) {
      case 0:
        R = M.bddAnd(R, V);
        break;
      case 1:
        R = M.bddOr(R, V);
        break;
      default:
        R = M.bddXor(R, V);
        break;
      }
    }
    return R;
  };
  auto Holds = [&](BddManager::Ref R, uint64_t K) {
    return M.get(R, keyBits(K, Bits)) == &TrueP;
  };

  BddManager::Ref A = RandomBdd(), B = RandomBdd(), C = RandomBdd();
  BddManager::Ref NotA = M.bddNot(A);
  BddManager::Ref AndAB = M.bddAnd(A, B);
  BddManager::Ref OrAB = M.bddOr(A, B);
  BddManager::Ref XorAB = M.bddXor(A, B);
  BddManager::Ref IteABC = M.bddIte(A, B, C);
  for (uint64_t K = 0; K < 32; ++K) {
    ASSERT_EQ(Holds(NotA, K), !Holds(A, K));
    ASSERT_EQ(Holds(AndAB, K), Holds(A, K) && Holds(B, K));
    ASSERT_EQ(Holds(OrAB, K), Holds(A, K) || Holds(B, K));
    ASSERT_EQ(Holds(XorAB, K), Holds(A, K) != Holds(B, K));
    ASSERT_EQ(Holds(IteABC, K), Holds(A, K) ? Holds(B, K) : Holds(C, K));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoolOps, ::testing::Range(1, 9));

TEST(Mtbdd, MtbddIteSelectsPerKey) {
  static const bool TrueP = true, FalseP = false;
  BddManager M;
  M.setBoolPayloads(&TrueP, &FalseP);
  // Predicate: bit 0 set (keys >= 8 over 4 bits).
  BddManager::Ref Pred = M.bitVar(0);
  BddManager::Ref T = M.leaf(payload(100));
  BddManager::Ref E = M.leaf(payload(200));
  E = M.set(E, keyBits(2, 4), payload(222));
  BddManager::Ref Out = M.mtbddIte(Pred, T, E);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(9, 4))), 100);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(2, 4))), 222);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(3, 4))), 200);
}

TEST(Mtbdd, CacheMakesRepeatedOpsFree) {
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(0));
  for (uint64_t K = 0; K < 30; ++K)
    Map = M.set(Map, keyBits(K * 7 % 256, 8), payload(int(K % 6)));

  uint64_t Tag = M.freshOpTag();
  int Calls = 0;
  auto Fn = [&](const void *P) {
    ++Calls;
    return payload(payloadValue(P) + 1);
  };
  BddManager::Ref R1 = M.map1(Map, Fn, Tag);
  int CallsFirst = Calls;
  BddManager::Ref R2 = M.map1(Map, Fn, Tag);
  EXPECT_EQ(R1, R2);
  EXPECT_EQ(Calls, CallsFirst) << "second run must be fully cached";
  EXPECT_GT(M.cacheHits(), 0u);
}

TEST(Mtbdd, DisablingCacheStillCorrect) {
  BddManager M;
  M.setCachingEnabled(false);
  BddManager::Ref Map = M.leaf(payload(0));
  Map = M.set(Map, keyBits(3, 4), payload(5));
  BddManager::Ref Out =
      M.map1(Map, [&](const void *P) { return payload(payloadValue(P) * 2); },
             M.freshOpTag());
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(3, 4))), 10);
  EXPECT_EQ(payloadValue(M.get(Out, keyBits(4, 4))), 0);
  EXPECT_EQ(M.cacheHits(), 0u);
}

TEST(Mtbdd, DistinctLeavesAndCubes) {
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(0));
  Map = M.set(Map, keyBits(1, 4), payload(1));
  Map = M.set(Map, keyBits(2, 4), payload(1));
  EXPECT_EQ(M.numDistinctLeaves(Map), 2u);

  // Cubes must tile the key space consistently with get().
  std::map<uint64_t, int> FromCubes;
  M.forEachCube(Map, 4, [&](const std::vector<int8_t> &Cube, const void *P) {
    for (uint64_t K = 0; K < 16; ++K) {
      bool Matches = true;
      for (unsigned I = 0; I < 4 && Matches; ++I) {
        bool Bit = (K >> (3 - I)) & 1;
        if (Cube[I] >= 0 && Cube[I] != static_cast<int8_t>(Bit))
          Matches = false;
      }
      if (Matches) {
        ASSERT_FALSE(FromCubes.count(K)) << "cubes must not overlap";
        FromCubes[K] = payloadValue(P);
      }
    }
  });
  ASSERT_EQ(FromCubes.size(), 16u);
  for (uint64_t K = 0; K < 16; ++K)
    EXPECT_EQ(FromCubes[K], payloadValue(M.get(Map, keyBits(K, 4))));
}

TEST(Mtbdd, OpenAddressedTablesGrowAndStayCanonical) {
  // Push both hash-consing tables through several capacity doublings and
  // check canonicity and lookups against a brute-force oracle throughout.
  BddManager M;
  size_t LeafCap0 = M.leafCapacity();
  size_t UniqueCap0 = M.uniqueCapacity();

  // Leaves: enough distinct payloads to force multiple leaf-table grows.
  std::vector<BddManager::Ref> Leaves;
  const int NumLeaves = 5000;
  for (int I = 0; I < NumLeaves; ++I)
    Leaves.push_back(M.leaf(payload(I)));
  EXPECT_GT(M.leafCapacity(), LeafCap0);
  for (int I = 0; I < NumLeaves; ++I) {
    EXPECT_EQ(M.leaf(payload(I)), Leaves[I]);
    EXPECT_EQ(payloadValue(M.leafPayload(Leaves[I])), I);
  }

  // Internal nodes: a 13-bit map with a near-unique payload per key builds
  // ~2^14 internal nodes, several unique-table grows past the default
  // 2^13 capacity. The std::map oracle checks every key after the dust
  // settles.
  const unsigned Bits = 13;
  std::map<uint64_t, int> Oracle;
  BddManager::Ref Map = M.leaf(payload(-1));
  std::mt19937_64 Rng(7);
  for (uint64_t K = 0; K < (1u << Bits); ++K) {
    int V = static_cast<int>(Rng() % 4093);
    Oracle[K] = V;
    Map = M.set(Map, keyBits(K, Bits), payload(V));
  }
  EXPECT_GT(M.uniqueCapacity(), UniqueCap0);
  for (uint64_t K = 0; K < (1u << Bits); ++K)
    EXPECT_EQ(payloadValue(M.get(Map, keyBits(K, Bits))), Oracle[K]);

  // Re-interning existing nodes is pure lookup: hits rise, no growth.
  uint64_t Hits0 = M.uniqueHits();
  size_t Nodes0 = M.numNodes();
  BddManager::Ref Again = M.leaf(payload(3));
  const BddManager::Node N = M.node(Map);
  EXPECT_EQ(M.mkNode(N.Var, N.Lo, N.Hi), Map);
  EXPECT_EQ(Again, Leaves[3]);
  EXPECT_GT(M.uniqueHits(), Hits0);
  EXPECT_EQ(M.numNodes(), Nodes0);
  EXPECT_GE(M.uniqueLookups(), M.uniqueHits());
}

TEST(Mtbdd, UniqueTableCountersTrackLoad) {
  BddManager M;
  uint64_t Lookups0 = M.uniqueLookups();
  BddManager::Ref A = M.mkNode(0, M.leaf(payload(1)), M.leaf(payload(2)));
  uint64_t MissLookups = M.uniqueLookups();
  EXPECT_GT(MissLookups, Lookups0);
  uint64_t Hits1 = M.uniqueHits();
  // Identical request: every probe is now a hit.
  EXPECT_EQ(M.mkNode(0, M.leaf(payload(1)), M.leaf(payload(2))), A);
  EXPECT_EQ(M.uniqueHits(), Hits1 + 3); // two leaves + one internal node
}

TEST(Mtbdd, SharingKeepsDiagramsSmall) {
  // The fault-tolerance insight (Sec. 2.7): many keys, few distinct
  // values => node count stays near the number of distinct values times
  // the key width, far below the key-space size.
  BddManager M;
  BddManager::Ref Map = M.leaf(payload(0));
  const unsigned Bits = 16;
  // 2^16 keys, but only 3 distinct values laid out in large runs.
  for (uint64_t K = 0; K < 8; ++K)
    Map = M.set(Map, keyBits(K, Bits), payload(int(K % 3)));
  EXPECT_LT(M.numReachableNodes(Map), 64u);
}

} // namespace
