//===- FleetTests.cpp - Crash-isolated worker fleet tests --------------------===//
//
// Tests of the coordinator/worker execution layer (support/Fleet.h): fleet
// merges bit-identical at any worker count, SIGKILL mid-job requeues and
// completes, a silent (wedged) worker trips the heartbeat liveness timeout
// and respawns, and a job that keeps killing workers is quarantined with a
// runnable repro artifact instead of wedging the run.
//
// The test binary is its own worker: the coordinator re-execs it with
// `--fleet-worker-mode <echo|slow>` (handled in main before gtest sees
// argv), so no other binary needs to exist at test time. This file
// therefore registers with a custom main and links GTest::gtest only.
//
//===----------------------------------------------------------------------===//

#include "support/Fleet.h"
#include "support/Journal.h"
#include "support/Resume.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace nv;

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "nv_fleet_test_" + Name;
}

/// Sets an environment variable for the spawned workers (children inherit
/// the coordinator's environment) and restores emptiness on scope exit so
/// tests cannot leak hooks into each other.
struct EnvGuard {
  std::string Name;
  EnvGuard(const char *N, const std::string &V) : Name(N) {
    ::setenv(N, V.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(Name.c_str()); }
};

/// Baseline options every test starts from: this binary as the worker,
/// tight timings (tests should take milliseconds, not the production
/// 10-second liveness window), and no stderr chatter.
FleetOptions testOptions(const char *Mode, unsigned Workers) {
  FleetOptions O;
  O.Workers = Workers;
  O.WorkerArgv = {getExecutablePath(), "--fleet-worker-mode", Mode};
  O.HeartbeatMs = 25;
  O.LivenessTimeoutMs = 5000;
  O.BackoffBaseMs = 5;
  O.BackoffCapMs = 50;
  O.PoisonThreshold = 100; // individual tests opt in to quarantine
  O.StragglerMinMs = 60000; // and to speculation
  O.QuarantineDir = ::testing::TempDir();
  O.Verbose = false;
  return O;
}

std::vector<FleetJob> makeJobs(const char *Prefix, size_t N,
                               const std::string &Spec = "") {
  std::vector<FleetJob> Jobs;
  for (size_t I = 0; I < N; ++I) {
    std::string Key = Prefix;
    Key += std::to_string(I);
    Jobs.push_back({Key, Spec});
  }
  return Jobs;
}

/// One canonical rendering of a whole fleet result — the merge identity
/// the bit-identical tests compare.
std::string renderResults(const FleetResult &FR) {
  std::string Out;
  for (const auto &[Key, Rec] : FR.Results)
    Out += Rec.render() + "\x1e";
  return Out;
}

//===----------------------------------------------------------------------===//
// Bit-identical merge
//===----------------------------------------------------------------------===//

TEST(FleetMerge, BitIdenticalAcrossWorkerCounts) {
  // The same 40 jobs at 1, 2, and 8 workers must merge to byte-identical
  // aggregates: records are pure functions of the job, and the result map
  // is keyed, so scheduling order cannot leak into the merge.
  std::vector<FleetJob> Jobs;
  for (size_t I = 0; I < 40; ++I) {
    std::string Suffix = std::to_string(I);
    Jobs.push_back({"k" + Suffix, "payload-" + Suffix});
  }

  std::string Reference;
  for (unsigned Workers : {1u, 2u, 8u}) {
    FleetResult FR = runFleet(testOptions("echo", Workers), Jobs);
    ASSERT_TRUE(FR.Outcome.ok()) << Workers << " workers: "
                                 << FR.Outcome.str();
    EXPECT_EQ(FR.Stats.JobsCompleted, 40u);
    EXPECT_EQ(FR.Results.size(), 40u);
    EXPECT_TRUE(FR.QuarantinedKeys.empty());
    std::string Rendered = renderResults(FR);
    if (Reference.empty())
      Reference = Rendered;
    else
      EXPECT_EQ(Rendered, Reference) << "merge differs at " << Workers
                                     << " workers";
  }
}

TEST(FleetMerge, ResultsFlowThroughOnResultExactlyOnce) {
  std::vector<FleetJob> Jobs = makeJobs("r", 10);
  std::mutex M;
  std::vector<std::string> Seen;
  FleetCallbacks CB;
  CB.OnResult = [&](const UnitRecord &Rec) {
    std::lock_guard<std::mutex> L(M);
    Seen.push_back(Rec.Key);
  };
  FleetResult FR = runFleet(testOptions("echo", 3), Jobs, CB);
  ASSERT_TRUE(FR.Outcome.ok()) << FR.Outcome.str();
  EXPECT_EQ(Seen.size(), 10u);
  std::sort(Seen.begin(), Seen.end());
  EXPECT_EQ(std::unique(Seen.begin(), Seen.end()), Seen.end());
}

//===----------------------------------------------------------------------===//
// Crash recovery
//===----------------------------------------------------------------------===//

TEST(FleetCrash, SigkillMidJobRequeuesAndCompletes) {
  // One worker, four 200ms jobs. SIGKILL the worker ~100ms after it
  // spawns — mid-first-job by construction — and the run must still
  // produce all four records: the in-flight job requeues, the worker
  // respawns, nothing is lost.
  std::vector<FleetJob> Jobs = makeJobs("s", 4, "200");

  std::mutex M;
  std::vector<pid_t> Pids;
  FleetCallbacks CB;
  CB.OnSpawn = [&](pid_t Pid, unsigned) {
    std::lock_guard<std::mutex> L(M);
    Pids.push_back(Pid);
  };
  std::atomic<bool> Done{false};
  std::thread Killer([&] {
    for (int I = 0; I < 2000 && !Done.load(); ++I) {
      {
        std::lock_guard<std::mutex> L(M);
        if (!Pids.empty())
          break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::lock_guard<std::mutex> L(M);
    if (!Pids.empty())
      ::kill(Pids.front(), SIGKILL);
  });

  FleetResult FR = runFleet(testOptions("slow", 1), Jobs, CB);
  Done.store(true);
  Killer.join();

  ASSERT_TRUE(FR.Outcome.ok()) << FR.Outcome.str();
  EXPECT_EQ(FR.Results.size(), 4u);
  EXPECT_TRUE(FR.QuarantinedKeys.empty());
  EXPECT_GE(FR.Stats.WorkerDeaths, 1u);
  EXPECT_GE(FR.Stats.JobsRequeued, 1u);
  EXPECT_GE(FR.Stats.Respawns, 1u);
  // The satellite contract: the last child exit reason is surfaced.
  EXPECT_EQ(FR.Stats.LastExit, "signal:" + std::to_string(SIGKILL));
}

TEST(FleetCrash, HeartbeatTimeoutRespawnsWedgedWorker) {
  // The wedge hook freezes whichever worker first picks up job "w3":
  // heartbeats stop, the handler hangs forever. The coordinator must
  // notice the silence (liveness timeout), SIGKILL the wedged worker,
  // and requeue — the latch file guarantees the respawned worker runs
  // the job normally, so the run completes with every record present.
  std::string Latch = tmpPath("wedge_latch");
  std::remove(Latch.c_str());
  EnvGuard G1("NV_FLEET_WEDGE_KEY", "w3");
  EnvGuard G2("NV_FLEET_WEDGE_ONCE_FILE", Latch);

  FleetOptions O = testOptions("echo", 2);
  O.LivenessTimeoutMs = 400;
  FleetResult FR = runFleet(O, makeJobs("w", 8));
  std::remove(Latch.c_str());

  ASSERT_TRUE(FR.Outcome.ok()) << FR.Outcome.str();
  EXPECT_EQ(FR.Results.size(), 8u);
  EXPECT_TRUE(FR.QuarantinedKeys.empty());
  EXPECT_GE(FR.Stats.HeartbeatTimeouts, 1u);
  EXPECT_GE(FR.Stats.WorkerDeaths, 1u);
  EXPECT_GE(FR.Stats.JobsRequeued, 1u);
}

//===----------------------------------------------------------------------===//
// Poison quarantine
//===----------------------------------------------------------------------===//

TEST(FleetPoison, QuarantinedAfterThresholdDeathsWithRepro) {
  EnvGuard G("NV_FLEET_POISON_KEY", "p3");

  FleetOptions O = testOptions("echo", 2);
  O.PoisonThreshold = 2;
  FleetResult FR = runFleet(O, makeJobs("p", 6));

  // The run COMPLETES: five healthy jobs plus one quarantined record.
  ASSERT_TRUE(FR.Outcome.ok()) << FR.Outcome.str();
  EXPECT_EQ(FR.Results.size(), 6u);
  ASSERT_EQ(FR.QuarantinedKeys.size(), 1u);
  EXPECT_EQ(FR.QuarantinedKeys[0], "p3");
  EXPECT_EQ(FR.Stats.Quarantined, 1u);
  EXPECT_EQ(FR.Stats.WorkerDeaths, 2u); // exactly PoisonThreshold deaths

  // The quarantined record carries the structured outcome the drivers map
  // to exit 3, plus a runnable repro script.
  const UnitRecord &Rec = FR.Results.at("p3");
  RunOutcome Outcome;
  unsigned Attempts = 1;
  ASSERT_TRUE(parseOutcome(Rec, Outcome, Attempts));
  EXPECT_EQ(Outcome.Status, RunStatus::Quarantined);
  EXPECT_EQ(Attempts, 2u);
  const std::string *Repro = Rec.get("repro");
  ASSERT_NE(Repro, nullptr);
  EXPECT_EQ(::access(Repro->c_str(), X_OK), 0) << *Repro;
  std::remove(Repro->c_str());

  // Healthy siblings are normal records, not quarantine debris.
  RunOutcome Sib;
  ASSERT_TRUE(parseOutcome(FR.Results.at("p0"), Sib, Attempts));
  EXPECT_TRUE(Sib.ok());
}

} // namespace

int main(int argc, char **argv) {
  // Worker half: the coordinator re-execs this binary with the mode flag.
  // Handled before gtest so the flag never reaches InitGoogleTest.
  if (argc >= 3 && !std::strcmp(argv[1], "--fleet-worker-mode")) {
    std::string Mode = argv[2];
    return runFleetWorker([&](const FleetJob &J) {
      if (Mode == "slow")
        ::usleep(static_cast<unsigned>(std::atoi(J.Spec.c_str())) * 1000u);
      UnitRecord Rec;
      Rec.Key = J.Key;
      Rec.add("status", "ok");
      // A deterministic pure function of the job — what makes the
      // bit-identical merge assertion meaningful.
      Rec.add("echo", J.Spec);
      Rec.add("digest", fnv1a64Hex(J.Key + ":" + J.Spec));
      return Rec;
    });
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
