//===- ServeTests.cpp - nv serve service-layer tests --------------------------===//
//
// Tests of the long-lived verification service: the JSON codec, the
// journal-backed request queue, session lifecycle (create/evict/LRU),
// warm-cache reuse producing bit-identical results to a cold run,
// per-request Governor isolation under concurrency, cancellation of an
// in-flight request (the client-disconnect path), journal replay of an
// interrupted request queue, and the Unix-socket transport end to end.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/RequestLog.h"
#include "serve/Serve.h"
#include "serve/Server.h"
#include "serve/Supervisor.h"

#include "analysis/FaultTolerance.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace nv;

namespace {

/// Shortest-path line network with an all-reachable assert: one failed
/// link partitions the line, so ft finds violations deterministically.
std::string spProgram() {
  return R"(let nodes = 4
let edges = {0n=1n;1n=2n;2n=3n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) = match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) = match x, y with | _, None -> x | None, _ -> y | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) = match x with | None -> false | Some d -> true
)";
}

/// Count-to-infinity: prefer-larger merge on a cycle diverges, so a run
/// only ends when a budget or cancellation stops it.
std::string divergingProgram() {
  return R"(let nodes = 2
let edges = {0n=1n;1n=0n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) = match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) = match x, y with | _, None -> x | None, _ -> y | Some a, Some b -> if a <= b then y else x
)";
}

/// One-line JSON string field helper for request construction.
std::string jstr(const std::string &S) { return Json(S).dump(); }

std::string loadLine(const std::string &Session, const std::string &Prog) {
  return "{\"verb\":\"load\",\"session\":" + jstr(Session) +
         ",\"program\":" + jstr(Prog) + "}";
}

std::string tmpPath(const std::string &Stem) {
  return testing::TempDir() + Stem + "." + std::to_string(::getpid());
}

} // namespace

//===----------------------------------------------------------------------===//
// Json codec
//===----------------------------------------------------------------------===//

TEST(ServeJson, RoundTripAndDeterministicOrder) {
  Json O = Json::object();
  O.set("verb", "load");
  O.set("count", 42);
  O.set("ratio", 1.5);
  O.set("flag", true);
  O.set("nothing", Json());
  Json Arr = Json::array();
  Arr.push(1);
  Arr.push("two");
  O.set("items", std::move(Arr));
  std::string Text = O.dump();
  // Insertion order is preserved, integers print without a fraction.
  EXPECT_EQ(Text, "{\"verb\":\"load\",\"count\":42,\"ratio\":1.5,"
                  "\"flag\":true,\"nothing\":null,\"items\":[1,\"two\"]}");
  Json Back;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, Back, Err)) << Err;
  EXPECT_EQ(Back.dump(), Text);
}

TEST(ServeJson, StringEscapes) {
  Json S(std::string("a\"b\\c\nd\te\x01"));
  std::string Text = S.dump();
  EXPECT_EQ(Text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  Json Back;
  std::string Err;
  ASSERT_TRUE(Json::parse(Text, Back, Err)) << Err;
  EXPECT_EQ(Back.str(), S.str());
  // \u escapes incl. surrogate pairs decode to UTF-8.
  ASSERT_TRUE(Json::parse("\"\\u0041\\ud83d\\ude00\"", Back, Err)) << Err;
  EXPECT_EQ(Back.str(), "A\xF0\x9F\x98\x80");
}

TEST(ServeJson, ParseErrorsCarryOffsets) {
  Json V;
  std::string Err;
  EXPECT_FALSE(Json::parse("{\"a\":1", V, Err));
  EXPECT_NE(Err.find("offset"), std::string::npos);
  EXPECT_FALSE(Json::parse("{} trailing", V, Err));
  EXPECT_NE(Err.find("trailing"), std::string::npos);
  EXPECT_FALSE(Json::parse("{\"a\" 1}", V, Err));
  EXPECT_FALSE(Json::parse("\"\\ud800\"", V, Err)); // lone surrogate
  EXPECT_FALSE(Json::parse("", V, Err));
}

TEST(ServeJson, TypedAccessorsWithDefaults) {
  Json V;
  std::string Err;
  ASSERT_TRUE(Json::parse("{\"n\":7,\"s\":\"x\",\"b\":true}", V, Err));
  EXPECT_EQ(V.getNumber("n", 0), 7);
  EXPECT_EQ(V.getNumber("missing", 3), 3);
  EXPECT_EQ(V.getString("s"), "x");
  EXPECT_EQ(V.getString("n", "d"), "d"); // wrong type -> default
  EXPECT_TRUE(V.getBool("b"));
}

//===----------------------------------------------------------------------===//
// RequestLog
//===----------------------------------------------------------------------===//

TEST(RequestLog, RecordsAndComputesPending) {
  std::string Path = tmpPath("reqlog");
  std::remove(Path.c_str());
  {
    RequestLog::OpenResult O = RequestLog::open(Path);
    ASSERT_TRUE(O.Log) << O.Error;
    EXPECT_TRUE(O.Log->pending().empty());
    O.Log->recordAccepted("r1", "{\"verb\":\"ping\"}");
    O.Log->recordDone("r1", 0, "ok");
    O.Log->recordAccepted("r2", "{\"verb\":\"stats\"}");
    // r2 never completes: the "crash".
  }
  RequestLog::OpenResult O = RequestLog::open(Path);
  ASSERT_TRUE(O.Log) << O.Error;
  ASSERT_EQ(O.Log->pending().size(), 1u);
  EXPECT_EQ(O.Log->pending()[0].Id, "r2");
  EXPECT_EQ(O.Log->pending()[0].Body, "{\"verb\":\"stats\"}");
  EXPECT_EQ(O.Log->nextSeq(), 3u); // past the largest journaled id
  EXPECT_EQ(O.Log->acceptedCount(), 2u);
  EXPECT_EQ(O.Log->doneCount(), 1u);
  std::remove(Path.c_str());
}

TEST(RequestLog, RejectsForeignJournal) {
  std::string Path = tmpPath("foreignlog");
  std::remove(Path.c_str());
  {
    std::string Err;
    auto W = createJournal(Path, "tool=nv\ncommand=ft\n", Err);
    ASSERT_TRUE(W) << Err;
  }
  RequestLog::OpenResult O = RequestLog::open(Path);
  EXPECT_FALSE(O.Log);
  EXPECT_TRUE(O.Hard); // binding mismatch = user error, exit 2
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// ServeCore sessions
//===----------------------------------------------------------------------===//

TEST(ServeCore, SessionLifecycleAndErrorTaxonomy) {
  ServeConfig Cfg;
  Cfg.Threads = 1;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;

  // Protocol errors are code 2 (user error), not crashes.
  EXPECT_EQ(Core.executeLine("not json").getNumber("code", -1), 2);
  EXPECT_EQ(Core.executeLine("[1,2]").getNumber("code", -1), 2);
  EXPECT_EQ(Core.executeLine("{\"verb\":\"nope\"}").getNumber("code", -1), 2);
  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"ghost\"}")
                .getNumber("code", -1),
            2);

  Json Ping = Core.executeLine("{\"verb\":\"ping\"}");
  EXPECT_TRUE(Ping.getBool("ok"));

  Json Load = Core.executeLine(loadLine("a", spProgram()));
  ASSERT_EQ(Load.getNumber("code", -1), 0) << Load.dump();
  EXPECT_EQ(Load.getString("session"), "a");
  EXPECT_EQ(Load.getNumber("nodes", 0), 4);
  EXPECT_EQ(Load.getNumber("edges", 0), 3);

  Json Sim = Core.executeLine("{\"verb\":\"sim\",\"session\":\"a\"}");
  EXPECT_EQ(Sim.getNumber("code", -1), 0) << Sim.dump();
  EXPECT_TRUE(Sim.getBool("converged"));

  // A bad program is a code-2 response with diagnostics, session intact.
  Json Bad = Core.executeLine(loadLine("b", "let nodes = ("));
  EXPECT_EQ(Bad.getNumber("code", -1), 2);
  EXPECT_NE(Bad.getString("error").find("parse error"), std::string::npos);

  Json Unload = Core.executeLine("{\"verb\":\"unload\",\"session\":\"a\"}");
  EXPECT_EQ(Unload.getNumber("code", -1), 0);
  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"a\"}")
                .getNumber("code", -1),
            2);
}

TEST(ServeCore, LruEvictionKeepsRecentlyUsed) {
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.MaxSessions = 2;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;

  EXPECT_EQ(Core.executeLine(loadLine("s1", spProgram())).getNumber("code", -1),
            0);
  EXPECT_EQ(Core.executeLine(loadLine("s2", spProgram())).getNumber("code", -1),
            0);
  // Touch s1 so s2 is the LRU victim when s3 arrives.
  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"s1\"}")
                .getNumber("code", -1),
            0);
  Json Load3 = Core.executeLine(loadLine("s3", spProgram()));
  EXPECT_EQ(Load3.getNumber("code", -1), 0);
  EXPECT_EQ(Load3.getNumber("evicted", 0), 1);

  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"s1\"}")
                .getNumber("code", -1),
            0);
  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"s2\"}")
                .getNumber("code", -1),
            2); // evicted
  EXPECT_EQ(Core.executeLine("{\"verb\":\"sim\",\"session\":\"s3\"}")
                .getNumber("code", -1),
            0);
}

//===----------------------------------------------------------------------===//
// Warm-cache reuse: bit-identical to cold
//===----------------------------------------------------------------------===//

TEST(ServeCore, WarmFtRepeatIsBitIdenticalToColdAndDirect) {
  // The reference: a direct (cold) runFaultTolerance on the same program,
  // fingerprinted with the same blob idiom the service uses.
  DiagnosticEngine Diags;
  auto P = parseProgram(spProgram(), Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  FtOptions Opts;
  FtRunResult Direct = runFaultTolerance(*P, Opts, /*Compiled=*/false, Diags);
  ASSERT_TRUE(Direct.Outcome.ok()) << Direct.Outcome.str();
  std::string Blob;
  for (const FtViolation &V : Direct.Check.Violations)
    Blob += V.Scenario.str() + "@" + std::to_string(V.Node) + "=" +
            V.routeStr() + "\n";
  std::string DirectHash = fnv1a64Hex(Blob);
  ASSERT_FALSE(Direct.Check.Violations.empty()); // line net: real violations

  ServeConfig Cfg;
  Cfg.Threads = 1;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("n", spProgram())).getNumber("code", -1),
            0);

  Json Cold = Core.executeLine("{\"verb\":\"ft\",\"session\":\"n\"}");
  ASSERT_EQ(Cold.getNumber("code", -1), 1) << Cold.dump(); // violations
  EXPECT_FALSE(Cold.getBool("warm"));
  EXPECT_EQ(Cold.getString("violations_hash"), DirectHash);

  // "fresh" bypasses the result memo: the engines actually re-run, on the
  // cached transform/evaluators, and must reproduce the cold bits.
  for (int I = 0; I < 3; ++I) {
    Json Warm = Core.executeLine(
        "{\"verb\":\"ft\",\"session\":\"n\",\"fresh\":true}");
    ASSERT_EQ(Warm.getNumber("code", -1), 1) << Warm.dump();
    EXPECT_TRUE(Warm.getBool("warm"));
    EXPECT_FALSE(Warm.getBool("cached"));
    EXPECT_EQ(Warm.getNumber("transform_ms", -1), 0); // transform skipped
    EXPECT_EQ(Warm.getString("violations_hash"), DirectHash);
    EXPECT_EQ(Warm.getNumber("scenarios", -1), Cold.getNumber("scenarios", -2));
    EXPECT_EQ(Warm.getNumber("violations", -1),
              Cold.getNumber("violations", -2));
  }

  // A plain repeat is a result-memo hit: same verdict bits, no engine run.
  Json Memo = Core.executeLine("{\"verb\":\"ft\",\"session\":\"n\"}");
  ASSERT_EQ(Memo.getNumber("code", -1), 1) << Memo.dump();
  EXPECT_TRUE(Memo.getBool("cached"));
  EXPECT_EQ(Memo.getString("violations_hash"), DirectHash);

  // A different variant key is its own cold entry (both cache layers).
  Json Node = Core.executeLine(
      "{\"verb\":\"ft\",\"session\":\"n\",\"node\":true}");
  EXPECT_FALSE(Node.getBool("warm"));
  EXPECT_FALSE(Node.getBool("cached"));
  Json Stats = Core.statsJson();
  const Json *FtCache = Stats.get("ft_cache");
  ASSERT_NE(FtCache, nullptr);
  EXPECT_EQ(FtCache->getNumber("hits", -1), 3);
  EXPECT_EQ(FtCache->getNumber("misses", -1), 2);
  const Json *ResCache = Stats.get("result_cache");
  ASSERT_NE(ResCache, nullptr);
  EXPECT_EQ(ResCache->getNumber("hits", -1), 1);
  // The cold ft and the node variant looked up and missed; fresh repeats
  // never consult the memo.
  EXPECT_EQ(ResCache->getNumber("misses", -1), 2);
}

//===----------------------------------------------------------------------===//
// Per-request governance
//===----------------------------------------------------------------------===//

TEST(ServeCore, BudgetTripIsolatedFromConcurrentRequests) {
  ServeConfig Cfg;
  Cfg.Threads = 4;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("x", spProgram())).getNumber("code", -1),
            0);
  ASSERT_EQ(Core.executeLine(loadLine("y", spProgram())).getNumber("code", -1),
            0);

  // Concurrently: a budget-doomed ft on x, healthy fts on y.
  auto Doomed =
      Core.submit("{\"verb\":\"ft\",\"session\":\"x\",\"max_steps\":1}");
  auto Healthy1 = Core.submit("{\"verb\":\"ft\",\"session\":\"y\"}");
  auto Healthy2 = Core.submit("{\"verb\":\"sim\",\"session\":\"y\"}");
  Json DoomedR = Doomed->wait();
  Json HealthyR1 = Healthy1->wait();
  Json HealthyR2 = Healthy2->wait();
  EXPECT_EQ(DoomedR.getNumber("code", -1), 3) << DoomedR.dump();
  EXPECT_EQ(DoomedR.getString("outcome_status"), "step-budget-exceeded");
  EXPECT_EQ(HealthyR1.getNumber("code", -1), 1) << HealthyR1.dump();
  EXPECT_EQ(HealthyR2.getNumber("code", -1), 0) << HealthyR2.dump();

  // The tripped session is not poisoned: the same query, unbudgeted, runs.
  Json After = Core.executeLine("{\"verb\":\"ft\",\"session\":\"x\"}");
  EXPECT_EQ(After.getNumber("code", -1), 1) << After.dump();

  // Budget trips never memoize: re-issuing the doomed request re-runs it.
  Json Doomed2 =
      Core.executeLine("{\"verb\":\"ft\",\"session\":\"x\",\"max_steps\":1}");
  EXPECT_EQ(Doomed2.getNumber("code", -1), 3);
  EXPECT_FALSE(Doomed2.getBool("cached"));
}

TEST(ServeCore, CancelTokenStopsInFlightRequest) {
  ServeConfig Cfg;
  Cfg.Threads = 2; // a pool of one would run submit() inline
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(
      Core.executeLine(loadLine("d", divergingProgram())).getNumber("code", -1),
      0);

  // The diverging sim would run ~100M steps; the cancel (the client-
  // disconnect path in the socket layer) stops it at a safe point. The
  // deadline is a backstop so a cancellation bug fails rather than hangs.
  auto Cancel = std::make_shared<CancelToken>();
  auto Pending = Core.submit(
      "{\"verb\":\"sim\",\"session\":\"d\",\"deadline_ms\":60000}", Cancel);
  EXPECT_FALSE(Pending->waitFor(50)); // genuinely in flight
  Cancel->requestCancel();
  Json R = Pending->wait();
  EXPECT_EQ(R.getNumber("code", -1), 3) << R.dump();
  EXPECT_EQ(R.getString("outcome_status"), "canceled");

  // The session survives the canceled request.
  Json After = Core.executeLine(
      "{\"verb\":\"sim\",\"session\":\"d\",\"max_steps\":100}");
  EXPECT_EQ(After.getNumber("code", -1), 3);
  EXPECT_EQ(After.getString("outcome_status"), "step-budget-exceeded");
}

//===----------------------------------------------------------------------===//
// Journal replay
//===----------------------------------------------------------------------===//

TEST(ServeCore, ReplaysInterruptedRequestQueue) {
  std::string Path = tmpPath("servelog");
  std::remove(Path.c_str());

  // A "crashed" daemon: load accepted AND done, ft accepted but not done.
  // (recordDone for the load is what a real crash between the two
  // requests leaves behind; the ft must replay, and replaying it only
  // works because the *load* — with its client-chosen session id — is
  // also still in the journal... so journal the load as pending too.)
  {
    RequestLog::OpenResult O = RequestLog::open(Path);
    ASSERT_TRUE(O.Log) << O.Error;
    O.Log->recordAccepted("r1", loadLine("replayed", spProgram()));
    O.Log->recordAccepted("r2", "{\"verb\":\"ft\",\"session\":\"replayed\"}");
  }

  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.JournalPath = Path;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  EXPECT_EQ(Res.Core->replayedCount(), 2u);

  // The replayed load rebuilt the session: a fresh recompute hits the
  // transform cache the replayed ft primed, and a plain repeat is
  // answered from the result memo the replay populated.
  Json Warm = Res.Core->executeLine(
      "{\"verb\":\"ft\",\"session\":\"replayed\",\"fresh\":true}");
  EXPECT_EQ(Warm.getNumber("code", -1), 1) << Warm.dump();
  EXPECT_TRUE(Warm.getBool("warm"));
  Json Memo =
      Res.Core->executeLine("{\"verb\":\"ft\",\"session\":\"replayed\"}");
  EXPECT_EQ(Memo.getNumber("code", -1), 1) << Memo.dump();
  EXPECT_TRUE(Memo.getBool("cached"));

  // New ids never collide with journaled ones.
  EXPECT_EQ(Warm.getString("id"), "r3");
  Res.Core.reset();

  // The queue drained durably: nothing pending on the next open.
  RequestLog::OpenResult O = RequestLog::open(Path);
  ASSERT_TRUE(O.Log) << O.Error;
  EXPECT_TRUE(O.Log->pending().empty());
  std::remove(Path.c_str());
}

TEST(ServeCore, ReplayedShutdownDoesNotStopFreshDaemon) {
  std::string Path = tmpPath("shutdownlog");
  std::remove(Path.c_str());
  {
    RequestLog::OpenResult O = RequestLog::open(Path);
    ASSERT_TRUE(O.Log) << O.Error;
    O.Log->recordAccepted("r1", "{\"verb\":\"shutdown\"}");
  }
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.JournalPath = Path;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  EXPECT_EQ(Res.Core->replayedCount(), 1u);
  EXPECT_FALSE(Res.Core->shutdownRequested());
  std::remove(Path.c_str());
}

TEST(ServeCore, CorruptJournalIsHardError) {
  std::string Path = tmpPath("badlog");
  {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("garbage, not a journal\n", F);
    std::fclose(F);
  }
  ServeConfig Cfg;
  Cfg.JournalPath = Path;
  auto Res = ServeCore::create(Cfg);
  EXPECT_FALSE(Res.Core);
  EXPECT_TRUE(Res.Hard);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Socket transport
//===----------------------------------------------------------------------===//

TEST(ServeServer, EndToEndOverUnixSocket) {
  Server::Options Opts;
  Opts.SocketPath = tmpPath("sock");
  Opts.Core.Threads = 2;
  Server::CreateResult Res = Server::create(Opts);
  ASSERT_TRUE(Res.Srv) << Res.Error;
  std::atomic<int> ExitCode{-1};
  std::thread Runner(
      [&] { ExitCode.store(Res.Srv->run(/*Cancel=*/nullptr)); });

  std::string Err, Resp;
  auto Client = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client) << Err;
  ASSERT_TRUE(Client->request("{\"verb\":\"ping\"}", Resp, Err)) << Err;
  Json R;
  ASSERT_TRUE(Json::parse(Resp, R, Err)) << Err;
  EXPECT_TRUE(R.getBool("ok"));

  ASSERT_TRUE(Client->request(loadLine("s", spProgram()), Resp, Err)) << Err;
  ASSERT_TRUE(Json::parse(Resp, R, Err)) << Err;
  ASSERT_EQ(R.getNumber("code", -1), 0) << Resp;

  // A second client sees the first client's session: state is shared.
  auto Client2 = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client2) << Err;
  ASSERT_TRUE(
      Client2->request("{\"verb\":\"ft\",\"session\":\"s\"}", Resp, Err))
      << Err;
  ASSERT_TRUE(Json::parse(Resp, R, Err)) << Err;
  EXPECT_EQ(R.getNumber("code", -1), 1) << Resp;

  ASSERT_TRUE(Client->request("{\"verb\":\"shutdown\"}", Resp, Err)) << Err;
  Runner.join();
  EXPECT_EQ(ExitCode.load(), 0);
}

//===----------------------------------------------------------------------===//
// Admission control / overload
//===----------------------------------------------------------------------===//

namespace {

/// Spins until the core's health verb reports \p Active engine requests
/// executing (the worker picked the blocking request up), or fails.
void waitForEngineActive(ServeCore &Core, int Active) {
  for (int I = 0; I < 400; ++I) {
    Json H = Core.executeLine("{\"verb\":\"health\"}");
    if (H.getNumber("engine_active", -1) == Active)
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "engine_active never reached " << Active;
}

} // namespace

TEST(ServeAdmission, ShedsEngineVerbsWithRetryHintAdmitsControlVerbs) {
  ServeConfig Cfg;
  Cfg.Threads = 2; // one worker runs requests
  Cfg.MaxInflight = 1;
  Cfg.QueueDepth = 0; // any engine request while one runs is shed
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("d", divergingProgram()))
                .getNumber("code", -1),
            0);
  EXPECT_EQ(Core.executeLine("{\"verb\":\"health\"}").getString("state"),
            "ready");

  // Occupy the single slot with a run that only ends when canceled.
  auto Cancel = std::make_shared<CancelToken>();
  auto Blocker =
      Core.submit("{\"verb\":\"sim\",\"session\":\"d\",\"max_steps\":"
                  "1000000000}",
                  Cancel);
  waitForEngineActive(Core, 1);

  // An engine verb is shed with the full overload response shape...
  Json Shed = Core.submit("{\"verb\":\"sim\",\"session\":\"d\"}")->wait();
  EXPECT_EQ(Shed.getNumber("code", -1), 3) << Shed.dump();
  EXPECT_FALSE(Shed.getBool("ok"));
  EXPECT_TRUE(Shed.getBool("overloaded"));
  EXPECT_GE(Shed.getNumber("retry_after_ms", 0), 25);
  EXPECT_LE(Shed.getNumber("retry_after_ms", 0), 5000);
  EXPECT_EQ(Shed.getString("outcome_status"), "overloaded");

  // ...while control verbs still get through, and health says why.
  Json Ping = Core.submit("{\"verb\":\"ping\"}")->wait();
  EXPECT_EQ(Ping.getNumber("code", -1), 0) << Ping.dump();
  Json H = Core.executeLine("{\"verb\":\"health\"}");
  EXPECT_EQ(H.getString("state"), "overloaded") << H.dump();
  EXPECT_EQ(H.getNumber("shed", -1), 1);

  Cancel->requestCancel();
  Json BlockerR = Blocker->wait();
  EXPECT_EQ(BlockerR.getString("outcome_status"), "canceled");

  // Capacity released: engine verbs run again and health recovers.
  Json After = Core.submit("{\"verb\":\"sim\",\"session\":\"d\","
                           "\"max_steps\":10}")
                   ->wait();
  EXPECT_EQ(After.getString("outcome_status"), "step-budget-exceeded")
      << After.dump();
  EXPECT_EQ(Core.executeLine("{\"verb\":\"health\"}").getString("state"),
            "ready");
  Json Stats = Core.statsJson();
  const Json *Adm = Stats.get("admission");
  ASSERT_NE(Adm, nullptr);
  EXPECT_EQ(Adm->getNumber("shed", -1), 1);
  EXPECT_EQ(Adm->getNumber("max_inflight", -1), 1);
}

TEST(ServeAdmission, ShedRequestsAreNeverJournaled) {
  std::string Path = tmpPath("shedlog");
  std::remove(Path.c_str());
  {
    ServeConfig Cfg;
    Cfg.Threads = 2;
    Cfg.MaxInflight = 1;
    Cfg.QueueDepth = 0;
    Cfg.JournalPath = Path;
    auto Res = ServeCore::create(Cfg);
    ASSERT_TRUE(Res.Core) << Res.Error;
    ServeCore &Core = *Res.Core;
    ASSERT_EQ(Core.executeLine(loadLine("d", divergingProgram()))
                  .getNumber("code", -1),
              0);
    auto Cancel = std::make_shared<CancelToken>();
    auto Blocker = Core.submit(
        "{\"verb\":\"sim\",\"session\":\"d\",\"max_steps\":1000000000}",
        Cancel);
    waitForEngineActive(Core, 1);
    for (int I = 0; I < 3; ++I) {
      Json Shed = Core.submit("{\"verb\":\"sim\",\"session\":\"d\"}")->wait();
      ASSERT_TRUE(Shed.getBool("overloaded")) << Shed.dump();
    }
    Cancel->requestCancel();
    Blocker->wait();
  }
  // The journal saw exactly the load, the blocker, and nothing shed —
  // and nothing is pending, so a restart replays no rejected work.
  RequestLog::OpenResult O = RequestLog::open(Path);
  ASSERT_TRUE(O.Log) << O.Error;
  EXPECT_EQ(O.Log->acceptedCount(), 2u);
  EXPECT_TRUE(O.Log->pending().empty());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Degradation under pressure
//===----------------------------------------------------------------------===//

TEST(ServePressure, MemoEntryCapEvictsOldestEntries) {
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.MemoEntryCap = 2;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("s", spProgram())).getNumber("code", -1),
            0);
  // Three distinct verdict-producing queries: one must be evicted.
  for (int Steps = 10000; Steps < 10003; ++Steps)
    ASSERT_LE(Core.executeLine("{\"verb\":\"sim\",\"session\":\"s\","
                               "\"max_steps\":" +
                               std::to_string(Steps) + "}")
                  .getNumber("code", -1),
              1);
  Json Stats = Core.statsJson();
  const Json *Press = Stats.get("pressure");
  ASSERT_NE(Press, nullptr);
  EXPECT_EQ(Press->getNumber("memo_evicted", -1), 1) << Press->dump();
}

TEST(ServePressure, HeapWatermarkEvictsIdleSessionsBeforeRejecting) {
  ServeConfig Cfg;
  Cfg.Threads = 1;
  Cfg.HeapBudgetBytes = 1; // any resident session is over budget
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("a", spProgram())).getNumber("code", -1),
            0);
  // Loading b trips the watermark; idle a is evicted, b still loads.
  ASSERT_EQ(Core.executeLine(loadLine("b", spProgram())).getNumber("code", -1),
            0);
  Json OnA = Core.executeLine("{\"verb\":\"sim\",\"session\":\"a\"}");
  EXPECT_EQ(OnA.getNumber("code", -1), 2) << OnA.dump(); // unknown session
  Json OnB = Core.executeLine("{\"verb\":\"sim\",\"session\":\"b\"}");
  EXPECT_EQ(OnB.getNumber("code", -1), 0) << OnB.dump();
  Json Stats = Core.statsJson();
  const Json *Press = Stats.get("pressure");
  ASSERT_NE(Press, nullptr);
  EXPECT_GE(Press->getNumber("sessions_evicted", -1), 1) << Press->dump();
  EXPECT_EQ(Press->getNumber("loads_rejected", -1), 0);
}

TEST(ServePressure, LoadRejectsWithOverloadedWhenOnlyBusySessionsRemain) {
  ServeConfig Cfg;
  Cfg.Threads = 2;
  Cfg.HeapBudgetBytes = 1;
  Cfg.QueueDepth = 64; // admission itself must not interfere here
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("d", divergingProgram()))
                .getNumber("code", -1),
            0);
  // d is mid-request (its mutex is held), so nothing is evictable: the
  // incoming load must bounce with the overloaded shape, not evict it.
  auto Cancel = std::make_shared<CancelToken>();
  auto Blocker = Core.submit(
      "{\"verb\":\"sim\",\"session\":\"d\",\"max_steps\":1000000000}",
      Cancel);
  waitForEngineActive(Core, 1);
  Json R = Core.executeLine(loadLine("e", spProgram()));
  EXPECT_EQ(R.getNumber("code", -1), 3) << R.dump();
  EXPECT_TRUE(R.getBool("overloaded"));
  EXPECT_TRUE(R.getBool("heap_pressure"));
  Cancel->requestCancel();
  Blocker->wait();
  // With d idle again the same load degrades instead of bouncing.
  EXPECT_EQ(Core.executeLine(loadLine("e", spProgram())).getNumber("code", -1),
            0);
  Json Stats = Core.statsJson();
  const Json *Press = Stats.get("pressure");
  ASSERT_NE(Press, nullptr);
  EXPECT_EQ(Press->getNumber("loads_rejected", -1), 1);
}

//===----------------------------------------------------------------------===//
// Client resilience
//===----------------------------------------------------------------------===//

TEST(ServeClientRetry, DelayScheduleIsCappedJitteredAndHonorsHints) {
  RetryOptions RO;
  RO.BackoffBaseMs = 100;
  RO.BackoffCapMs = 2000;
  uint64_t State = 42;
  // Exponential with jitter in [delay/2, delay], deterministic per seed.
  for (unsigned Attempt = 1; Attempt <= 10; ++Attempt) {
    unsigned Full = std::min<unsigned>(100u << (Attempt - 1), 2000);
    unsigned D = retryDelayMs(Attempt, RO, State, /*RetryAfterMs=*/0);
    EXPECT_GE(D, Full / 2) << "attempt " << Attempt;
    EXPECT_LE(D, Full) << "attempt " << Attempt;
  }
  // The server's hint is a floor even when backoff would wait less.
  unsigned Hinted = retryDelayMs(1, RO, State, /*RetryAfterMs=*/5000);
  EXPECT_EQ(Hinted, 5000u);
  // Same seed, same schedule: shed fleets diverge, a single client is
  // reproducible.
  uint64_t A = 7, B = 7;
  EXPECT_EQ(retryDelayMs(3, RO, A, 0), retryDelayMs(3, RO, B, 0));
}

TEST(ServeClientRetry, ReadTimeoutIsSurfacedNotRetried) {
  // A listener that accepts but never answers: the read deadline, not a
  // transport error, ends the request.
  std::string Path = tmpPath("mute");
  std::remove(Path.c_str());
  int Ls = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Ls, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
  ASSERT_EQ(::bind(Ls, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  ASSERT_EQ(::listen(Ls, 4), 0);

  ClientOptions CO;
  CO.ReadTimeoutMs = 100;
  std::string Err, Resp;
  auto Client = ServeClient::connect(Path, Err, CO);
  ASSERT_TRUE(Client) << Err;
  EXPECT_FALSE(Client->request("{\"verb\":\"ping\"}", Resp, Err));
  EXPECT_TRUE(Client->timedOut()) << Err;
  EXPECT_NE(Err.find("timed out"), std::string::npos) << Err;

  // ResilientClient must not re-send after a timeout (the request may
  // still be running server-side).
  RetryOptions RO;
  RO.MaxAttempts = 5;
  ResilientClient RC(Path, CO, RO);
  EXPECT_FALSE(RC.request("{\"verb\":\"ping\"}", Resp, Err));
  EXPECT_TRUE(RC.timedOut());
  EXPECT_EQ(RC.retries(), 0u);
  ::close(Ls);
  std::remove(Path.c_str());
}

TEST(ServeClientRetry, GivesUpAfterMaxAttemptsOnConnectFailure) {
  RetryOptions RO;
  RO.MaxAttempts = 2;
  RO.BackoffBaseMs = 1;
  ClientOptions CO;
  CO.ConnectTimeoutMs = 100;
  ResilientClient RC(tmpPath("nosuchsock"), CO, RO);
  std::string Resp, Err;
  EXPECT_FALSE(RC.request("{\"verb\":\"ping\"}", Resp, Err));
  EXPECT_EQ(RC.retries(), 1u);
  EXPECT_NE(Err.find("gave up after 2 attempts"), std::string::npos) << Err;
}

TEST(ServeClientRetry, RetriesOverloadedUntilCapacityReturns) {
  ServeConfig Cfg;
  Cfg.Threads = 2;
  Cfg.MaxInflight = 1;
  Cfg.QueueDepth = 0;
  auto Res = ServeCore::create(Cfg);
  ASSERT_TRUE(Res.Core) << Res.Error;
  ServeCore &Core = *Res.Core;
  ASSERT_EQ(Core.executeLine(loadLine("d", divergingProgram()))
                .getNumber("code", -1),
            0);
  // The blocker self-trips on its deadline, so the shed request's
  // retries eventually find capacity.
  auto Blocker = Core.submit("{\"verb\":\"sim\",\"session\":\"d\","
                             "\"deadline_ms\":400}");
  waitForEngineActive(Core, 1);

  // Drive ResilientClient's classification directly through the core
  // (no socket needed): first attempt sheds, a later one succeeds.
  RetryOptions RO;
  RO.MaxAttempts = 20;
  RO.BackoffBaseMs = 50;
  RO.BackoffCapMs = 200;
  uint64_t Jitter = RO.JitterSeed;
  unsigned Attempts = 0;
  Json R;
  for (;; ++Attempts) {
    ASSERT_LT(Attempts, 20u);
    R = Core.submit("{\"verb\":\"sim\",\"session\":\"d\",\"max_steps\":10}")
            ->wait();
    if (!R.getBool("overloaded"))
      break;
    unsigned Hint =
        static_cast<unsigned>(R.getNumber("retry_after_ms", 0));
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(retryDelayMs(Attempts + 1, RO, Jitter, Hint), 300u)));
  }
  EXPECT_GE(Attempts, 1u); // it was actually shed at least once
  EXPECT_EQ(R.getString("outcome_status"), "step-budget-exceeded");
  EXPECT_EQ(Blocker->wait().getString("outcome_status"),
            "deadline-exceeded");
}

//===----------------------------------------------------------------------===//
// Connection hygiene
//===----------------------------------------------------------------------===//

namespace {

/// Reads one newline-terminated line from a raw fd with a deadline.
bool readRawLine(int Fd, std::string &Out, unsigned DeadlineMs) {
  Out.clear();
  auto End = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(DeadlineMs);
  char C;
  for (;;) {
    auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    End - std::chrono::steady_clock::now())
                    .count();
    if (Left <= 0)
      return false;
    pollfd P{Fd, POLLIN, 0};
    if (::poll(&P, 1, static_cast<int>(Left)) <= 0)
      continue;
    ssize_t N = ::recv(Fd, &C, 1, 0);
    if (N <= 0)
      return false;
    if (C == '\n')
      return true;
    Out += C;
  }
}

} // namespace

TEST(ServeHygiene, OversizedRequestLineGetsErrorAndClose) {
  Server::Options Opts;
  Opts.SocketPath = tmpPath("bigline");
  Opts.Core.Threads = 2;
  Opts.MaxLineBytes = 1024;
  Server::CreateResult Res = Server::create(Opts);
  ASSERT_TRUE(Res.Srv) << Res.Error;
  std::thread Runner([&] { Res.Srv->run(nullptr); });

  std::string Err;
  auto Client = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client) << Err;
  // 8 KiB with no newline: the server must cut in, not buffer forever.
  std::string Big(8192, 'x');
  ASSERT_EQ(::send(Client->fd(), Big.data(), Big.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(Big.size()));
  std::string Line;
  ASSERT_TRUE(readRawLine(Client->fd(), Line, 5000));
  Json R;
  ASSERT_TRUE(Json::parse(Line, R, Err)) << Line;
  EXPECT_EQ(R.getNumber("code", -1), 2) << Line;
  EXPECT_NE(R.getString("error").find("exceeds"), std::string::npos);
  // And the connection is torn down, not left leaking. Closing with our
  // unconsumed bytes still queued makes the kernel send RST, so a reset
  // is as valid an end as a clean EOF here.
  char C;
  ssize_t N = ::recv(Client->fd(), &C, 1, 0);
  EXPECT_TRUE(N == 0 || (N < 0 && errno == ECONNRESET)) << N << " " << errno;

  std::string Resp;
  auto Client2 = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client2) << Err;
  ASSERT_TRUE(Client2->request("{\"verb\":\"shutdown\"}", Resp, Err)) << Err;
  Runner.join();
}

TEST(ServeHygiene, IdleConnectionIsReapedWithErrorLine) {
  Server::Options Opts;
  Opts.SocketPath = tmpPath("idleconn");
  Opts.Core.Threads = 2;
  Opts.IdleTimeoutMs = 150;
  Server::CreateResult Res = Server::create(Opts);
  ASSERT_TRUE(Res.Srv) << Res.Error;
  std::thread Runner([&] { Res.Srv->run(nullptr); });

  std::string Err;
  auto Client = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client) << Err;
  // Say nothing: the server must reap us, with a parting explanation.
  std::string Line;
  ASSERT_TRUE(readRawLine(Client->fd(), Line, 5000));
  Json R;
  ASSERT_TRUE(Json::parse(Line, R, Err)) << Line;
  EXPECT_EQ(R.getNumber("code", -1), 3) << Line;
  EXPECT_TRUE(R.getBool("idle_timeout"));
  char C;
  EXPECT_EQ(::recv(Client->fd(), &C, 1, 0), 0);

  // An active client with traffic inside the window is not reaped.
  std::string Resp;
  auto Client2 = ServeClient::connect(Opts.SocketPath, Err);
  ASSERT_TRUE(Client2) << Err;
  for (int I = 0; I < 3; ++I) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    ASSERT_TRUE(Client2->request("{\"verb\":\"ping\"}", Resp, Err)) << Err;
  }
  ASSERT_TRUE(Client2->request("{\"verb\":\"shutdown\"}", Resp, Err)) << Err;
  Runner.join();
}

//===----------------------------------------------------------------------===//
// Supervisor
//===----------------------------------------------------------------------===//

TEST(ServeSupervisor, BackoffScheduleIsExponentialCappedAndResets) {
  EXPECT_EQ(nextRestartDelayMs(0, 100, 5000), 0u);
  EXPECT_EQ(nextRestartDelayMs(1, 100, 5000), 100u);
  EXPECT_EQ(nextRestartDelayMs(2, 100, 5000), 200u);
  EXPECT_EQ(nextRestartDelayMs(6, 100, 5000), 3200u);
  EXPECT_EQ(nextRestartDelayMs(7, 100, 5000), 5000u);  // capped
  EXPECT_EQ(nextRestartDelayMs(100, 100, 5000), 5000u); // no overflow
  EXPECT_EQ(nextRestartDelayMs(3, 0, 5000), 4u);        // base clamped to 1
}

TEST(ServeSupervisor, RestartsAbnormalExitsUntilDeliberateExit) {
  SupervisorOptions Opts;
  Opts.BackoffBaseMs = 1;
  Opts.BackoffCapMs = 4;
  // Generations 0 and 1 "crash" (resource exit); generation 2 exits
  // cleanly — the supervisor must restart through the crashes and then
  // return the deliberate code.
  int Code = superviseLoop(
      [](uint64_t Gen) { return Gen < 2 ? 3 : 0; }, Opts);
  EXPECT_EQ(Code, 0);
}

TEST(ServeSupervisor, RestartBudgetBoundsCrashLoops) {
  SupervisorOptions Opts;
  Opts.BackoffBaseMs = 1;
  Opts.BackoffCapMs = 2;
  Opts.MaxRestarts = 2;
  int Code = superviseLoop([](uint64_t) { return 4; }, Opts);
  EXPECT_EQ(Code, 3);
}

TEST(ServeServer, ReclaimsStaleSocketRefusesLiveOne) {
  std::string Path = tmpPath("stale");
  std::remove(Path.c_str());
  // A stale socket file: bound by a "crashed" daemon that never unlinked.
  {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(Fd, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
    ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0)
        << strerror(errno);
    ::close(Fd); // closed, not unlinked: the file is now stale
  }
  Server::Options Opts;
  Opts.SocketPath = Path;
  Opts.Core.Threads = 1;
  Server::CreateResult First = Server::create(Opts);
  ASSERT_TRUE(First.Srv) << First.Error; // stale file reclaimed
  // While one daemon holds the socket, a second must refuse it.
  Server::CreateResult Second = Server::create(Opts);
  EXPECT_FALSE(Second.Srv);
  EXPECT_NE(Second.Error.find("already serving"), std::string::npos)
      << Second.Error;
}
