//===- SmtTests.cpp - SMT verifier tests -------------------------------------===//

#include "analysis/SymbolicFailures.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "smt/Verifier.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

VerifyResult verify(const Program &P, SmtOptions Smt = {}) {
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  Opts.Smt = Smt;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_NE(R.Status, VerifyStatus::EncodingError) << Diags.str();
  return R;
}

/// Fig. 2b, with a symbolic route announced by the external peer.
std::string fig2b(bool WithFilter) {
  std::string ImportFilter =
      WithFilter
          // Import policy on edges from node 4: drop everything.
          ? "let trans (e : edge) (x : attribute) =\n"
            "  let (u, v) = e in\n"
            "  if u = 4n then None else transBgp e x\n"
          : "let trans e x = transBgp e x\n";
  return "include bgp\n"
         "let nodes = 5\n"
         "let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}\n"
         "symbolic route : attribute\n" +
         ImportFilter +
         "let merge u x y = mergeBgp u x y\n"
         "let init (u : node) =\n"
         "  match u with\n"
         "  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; "
         "origin = 0n}\n"
         "  | 4n -> route\n"
         "  | _ -> None\n"
         "let assert (u : node) (x : attribute) =\n"
         "  match x with\n"
         "  | None -> false\n"
         "  | Some b -> if u <> 4n then b.origin = 0n else true\n";
}

TEST(Smt, Fig2bHijackRefuted) {
  // Sec. 2.5: "the SMT analysis will refute our assertion: node 4 may
  // send a better route than node 0".
  Program P = parseAndCheck(fig2b(false));
  VerifyResult R = verify(P);
  EXPECT_EQ(R.Status, VerifyStatus::Falsified);
  EXPECT_FALSE(R.Counterexample.empty());
}

TEST(Smt, Fig2bVerifiedWithImportFilter) {
  Program P = parseAndCheck(fig2b(true));
  VerifyResult R = verify(P);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

TEST(Smt, ShortestPathReachabilityVerified) {
  const char *Src = R"nv(
let nodes = 4
let edges = {0n=1n;0n=2n;1n=3n;2n=3n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) =
  match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) =
  match x with | None -> false | Some d -> true
)nv";
  Program P = parseAndCheck(Src);
  VerifyResult R = verify(P);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

TEST(Smt, DisconnectedNodeFalsified) {
  const char *Src = R"nv(
let nodes = 3
let edges = {0n=1n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) =
  match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) =
  match x with | None -> false | Some d -> true
)nv";
  Program P = parseAndCheck(Src);
  VerifyResult R = verify(P);
  EXPECT_EQ(R.Status, VerifyStatus::Falsified);
  // Node 2 is unreachable and must be flagged in the counterexample.
  EXPECT_NE(R.Counterexample.find("node 2 [!]"), std::string::npos)
      << R.Counterexample;
}

TEST(Smt, BoundOnPathLengthVerified) {
  // Richer arithmetic property: hop counts are at most 2 on the diamond.
  const char *Src = R"nv(
let nodes = 4
let edges = {0n=1n;0n=2n;1n=3n;2n=3n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) =
  match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) =
  match x with | None -> false | Some d -> d <= 2
)nv";
  Program P = parseAndCheck(Src);
  EXPECT_EQ(verify(P).Status, VerifyStatus::Verified);
}

TEST(Smt, RequireConstrainsSymbolics) {
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
symbolic seed : int
require seed < 10
let init (u : node) = seed
let trans (e : edge) (x : int) = x
let merge (u : node) (x : int) (y : int) = if x <= y then x else y
let assert (u : node) (x : int) = x < 10
)nv";
  Program P = parseAndCheck(Src);
  EXPECT_EQ(verify(P).Status, VerifyStatus::Verified);

  // Without the require, the property is falsifiable.
  Program P2 = parseAndCheck(
      "let nodes = 2\nlet edges = {0n=1n}\nsymbolic seed : int\n"
      "let init (u : node) = seed\nlet trans (e : edge) (x : int) = x\n"
      "let merge (u : node) (x : int) (y : int) = if x <= y then x else y\n"
      "let assert (u : node) (x : int) = x < 10");
  EXPECT_EQ(verify(P2).Status, VerifyStatus::Falsified);
}

TEST(Smt, CommunitiesUnrolledAndFiltered) {
  // Tag-and-filter policy over a set of communities (the FAT-policy
  // mechanism): node 1 tags routes with community 99; node 2 drops tagged
  // routes. Node 3 (behind 2) still gets the direct route via 2.
  const char *Src = R"nv(
let nodes = 4
let edges = {0n=1n;1n=2n;0n=2n;2n=3n}
type rt = {hops : int; tags : set[int]}
type attribute = option[rt]

let init (u : node) =
  let empty : set[int] = {} in
  match u with
  | 0n -> Some {hops = 0; tags = empty}
  | _ -> None

let trans (e : edge) (x : attribute) =
  let (u, v) = e in
  match x with
  | None -> None
  | Some r ->
    let stepped = {r with hops = r.hops + 1} in
    if u = 1n then Some {stepped with tags = stepped.tags[99 := true]}
    else if v = 2n && stepped.tags[99] then None
    else Some stepped

let merge (u : node) (x : attribute) (y : attribute) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a.hops <= b.hops then x else y

let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some r -> !(r.tags[99])
)nv";
  Program P = parseAndCheck(Src);
  EXPECT_EQ(verify(P).Status, VerifyStatus::Verified);
}

TEST(Smt, SymbolicMapKey) {
  // The paper's symbolic-key encoding: a symbolic destination indexes the
  // map; whatever the key, the stored value is >= 1.
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
symbolic dest : int4
let table : dict[int4, int] = ((createDict 1)[3u4 := 5])[7u4 := 9]
let init (u : node) = table[dest]
(* Strictly increasing transfer: rules out self-supporting loop states. *)
let trans (e : edge) (x : int) = x + 1
let merge (u : node) (x : int) (y : int) = if x <= y then x else y
let assert (u : node) (x : int) = 1 <= x
)nv";
  Program P = parseAndCheck(Src);
  EXPECT_EQ(verify(P).Status, VerifyStatus::Verified);

  // And a falsifiable variant: claim the value is always below 5 (dest may
  // select the 5 or 9 entries).
  std::string Bad(Src);
  size_t Pos = Bad.find("1 <= x");
  Bad.replace(Pos, 6, "x < 5");
  Program P2 = parseAndCheck(Bad);
  EXPECT_EQ(verify(P2).Status, VerifyStatus::Falsified);
}

TEST(Smt, ComputedMapKeyRejected) {
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
let init (u : node) = 1
let trans (e : edge) (x : int) = x
let merge (u : node) (x : int) (y : int) = x
let assert (u : node) (x : int) =
  let m : dict[int, bool] = createDict false in m[x]
)nv";
  Program P = parseAndCheck(Src);
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::EncodingError);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Baseline (MineSweeper-style) options agree on verdicts
//===----------------------------------------------------------------------===//

class SmtModeAgreement : public ::testing::TestWithParam<bool> {};

TEST_P(SmtModeAgreement, SameVerdictsLargerEncoding) {
  bool Hijack = GetParam();
  Program P = parseAndCheck(fig2b(!Hijack));
  SmtOptions Optimized; // NV pipeline
  SmtOptions Baseline;  // MineSweeper-ish
  Baseline.ConstantFold = false;
  Baseline.NameIntermediates = true;

  VerifyResult RO = verify(P, Optimized);
  VerifyResult RB = verify(P, Baseline);
  EXPECT_EQ(RO.Status, RB.Status);
  EXPECT_GT(RB.NamedIntermediates, 0u);
  EXPECT_GE(RB.NumAssertions, RO.NumAssertions);
}

INSTANTIATE_TEST_SUITE_P(Both, SmtModeAgreement, ::testing::Bool());

//===----------------------------------------------------------------------===//
// Symbolic failures (the NV-SMT fault-tolerance route)
//===----------------------------------------------------------------------===//

std::string spAssert(const std::string &Edges, uint32_t Nodes) {
  return "let nodes = " + std::to_string(Nodes) + "\nlet edges = {" + Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

TEST(SmtFailures, DiamondSingleFailureVerified) {
  Program P = parseAndCheck(spAssert("0n=1n;0n=2n;1n=3n;2n=3n", 4));
  DiagnosticEngine Diags;
  auto F = makeSymbolicFailureProgram(P, 1, Diags);
  ASSERT_TRUE(F.has_value()) << Diags.str();
  EXPECT_EQ(verify(*F).Status, VerifyStatus::Verified);
}

TEST(SmtFailures, DiamondTwoFailuresFalsified) {
  Program P = parseAndCheck(spAssert("0n=1n;0n=2n;1n=3n;2n=3n", 4));
  DiagnosticEngine Diags;
  auto F = makeSymbolicFailureProgram(P, 2, Diags);
  ASSERT_TRUE(F.has_value()) << Diags.str();
  EXPECT_EQ(verify(*F).Status, VerifyStatus::Falsified);
}

TEST(SmtFailures, LineSingleFailureFalsified) {
  Program P = parseAndCheck(spAssert("0n=1n;1n=2n", 3));
  DiagnosticEngine Diags;
  auto F = makeSymbolicFailureProgram(P, 1, Diags);
  ASSERT_TRUE(F.has_value()) << Diags.str();
  EXPECT_EQ(verify(*F).Status, VerifyStatus::Falsified);
}

} // namespace
