//===- FuzzTests.cpp - Differential fuzzer self-tests --------------------------===//
//
// Part of nv-cpp. Tests for the nv-fuzz subsystem: generator determinism
// and validity, the cross-engine oracle, the planted-bug detection path,
// the greedy minimizer, and the corpus format. The committed regression
// corpus under tests/corpus/ is replayed through the full oracle (the
// directory is baked in as NV_CORPUS_DIR at configure time).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/InstanceGen.h"
#include "fuzz/Minimize.h"
#include "fuzz/Oracle.h"
#include "fuzz/Rng.h"

#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "support/Governor.h"

#include <gtest/gtest.h>

#include <set>

using namespace nv;

namespace {

/// Oracle options sized for unit tests: full engine matrix, but modest
/// SMT timeout so a wedged solver can't hang the suite.
OracleOptions testOracleOptions() {
  OracleOptions O;
  O.SmtTimeoutMs = 10000;
  return O;
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(FuzzRng, DeterministicAndWellDistributed) {
  FuzzRng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());

  // below()/range() stay in bounds and hit every bucket eventually.
  FuzzRng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I) {
    uint64_t V = R.below(5);
    ASSERT_LT(V, 5u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
  for (int I = 0; I < 100; ++I) {
    uint64_t V = R.range(3, 9);
    ASSERT_GE(V, 3u);
    ASSERT_LE(V, 9u);
  }
}

TEST(FuzzRng, MixSeedSeparatesInstances) {
  std::set<uint64_t> Derived;
  for (uint64_t I = 0; I < 1000; ++I)
    Derived.insert(mixSeed(42, I));
  EXPECT_EQ(Derived.size(), 1000u);
  EXPECT_EQ(mixSeed(42, 7), mixSeed(42, 7));
  EXPECT_NE(mixSeed(42, 7), mixSeed(43, 7));
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGen, SpecAndRenderAreDeterministic) {
  for (uint64_t Seed : {1ull, 99ull, 0xdeadbeefull, ~0ull}) {
    FuzzSpec S1 = specFromSeed(Seed), S2 = specFromSeed(Seed);
    EXPECT_EQ(S1, S2);
    DiagnosticEngine D1, D2;
    FuzzInstance I1 = renderSpec(S1, D1), I2 = renderSpec(S2, D2);
    EXPECT_EQ(I1.NvSource, I2.NvSource);
    EXPECT_EQ(I1.ConfigText, I2.ConfigText);
    EXPECT_EQ(I1.Name, I2.Name);
  }
}

TEST(FuzzGen, EverySeedYieldsAWellTypedProgram) {
  unsigned PerFamily[6] = {};
  for (uint64_t Seed = 0; Seed < 150; ++Seed) {
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    ASSERT_FALSE(Inst.NvSource.empty())
        << "seed " << Seed << ": " << Diags.str();
    auto P = parseProgram(Inst.NvSource, Diags);
    ASSERT_TRUE(P) << "seed " << Seed << ":\n"
                   << Inst.NvSource << "\n"
                   << Diags.str();
    ASSERT_TRUE(typeCheck(*P, Diags)) << "seed " << Seed << ":\n"
                                      << Inst.NvSource << "\n"
                                      << Diags.str();
    EXPECT_EQ(P->numNodes(), Inst.Spec.NumNodes);
    EXPECT_EQ(P->links().size(), Inst.Spec.Edges.size());
    ++PerFamily[static_cast<int>(Inst.Spec.Policy)];

    // Edge list invariants the minimizer relies on.
    const auto &E = Inst.Spec.Edges;
    ASSERT_FALSE(E.empty());
    for (size_t I = 0; I < E.size(); ++I) {
      EXPECT_LT(E[I].first, E[I].second);
      EXPECT_LT(E[I].second, Inst.Spec.NumNodes);
      if (I) {
        EXPECT_LT(E[I - 1], E[I]);
      }
    }
    EXPECT_LT(Inst.Spec.Dest, Inst.Spec.NumNodes);
  }
  // 150 seeds must exercise every policy family.
  for (int F = 0; F < 6; ++F)
    EXPECT_GT(PerFamily[F], 0u) << "family " << F << " never generated";
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracle, BatchOfSeedsAgreesAcrossEngines) {
  OracleOptions Opts = testOracleOptions();
  for (uint64_t I = 0; I < 25; ++I) {
    uint64_t Seed = mixSeed(7, I);
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    ASSERT_FALSE(Inst.NvSource.empty()) << Diags.str();
    OracleVerdict V = runOracle(Inst, Opts, Diags);
    EXPECT_TRUE(V.Ok) << Inst.Name << ": " << V.Mismatch << "\n"
                      << Inst.NvSource;
    // The four simulation legs always run.
    EXPECT_GE(V.Runs.size(), 4u);
  }
}

TEST(FuzzOracle, VerdictListsEngines) {
  DiagnosticEngine Diags;
  FuzzInstance Inst = instanceFromSeed(2, Diags); // sp-option (see corpus)
  OracleOptions Opts = testOracleOptions();
  OracleVerdict V = runOracle(Inst, Opts, Diags);
  ASSERT_TRUE(V.Ok);
  std::set<std::string> Names;
  for (const EngineRun &R : V.Runs)
    Names.insert(R.Engine);
  EXPECT_TRUE(Names.count("interp-wm0"));
  EXPECT_TRUE(Names.count("interp-wm1"));
  EXPECT_TRUE(Names.count("native-wm0"));
  EXPECT_TRUE(Names.count("native-wm1"));
}

/// Finds an sp-option instance with more than the planted 6-edge floor,
/// so minimization has real work to do.
static FuzzInstance findShrinkableSpOption(uint64_t &SeedOut) {
  for (uint64_t I = 0;; ++I) {
    uint64_t Seed = mixSeed(1, I);
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    if (Inst.Spec.Policy == PolicyKind::SpOption &&
        Inst.Spec.Edges.size() > 6) {
      SeedOut = Seed;
      return Inst;
    }
  }
}

TEST(FuzzOracle, PlantedBugIsCaught) {
  uint64_t Seed = 0;
  FuzzInstance Inst = findShrinkableSpOption(Seed);
  DiagnosticEngine Diags;

  OracleOptions Clean = testOracleOptions();
  OracleVerdict VClean = runOracle(Inst, Clean, Diags);
  EXPECT_TRUE(VClean.Ok) << VClean.Mismatch;

  OracleOptions Buggy = Clean;
  Buggy.InjectBugForTesting = true;
  OracleVerdict VBug = runOracle(Inst, Buggy, Diags);
  ASSERT_FALSE(VBug.Ok) << "planted bug not detected on " << Inst.Name;
  EXPECT_NE(VBug.Mismatch.find("native-wm1"), std::string::npos)
      << VBug.Mismatch;
}

//===----------------------------------------------------------------------===//
// Fault-injection matrix
//===----------------------------------------------------------------------===//

/// Every safe-point site, armed at several countdowns, against the full
/// oracle matrix: the injected fault must degrade the one leg it hits into
/// the canonical skip fingerprint (or miss entirely when the site is never
/// reached), never abort the process and never register as a divergence.
TEST(FuzzFaultInject, EverySiteDegradesToSkipNeverDivergence) {
  DiagnosticEngine Diags;
  FuzzInstance Inst = instanceFromSeed(2, Diags); // sp-option, FT+SMT legs
  ASSERT_FALSE(Inst.NvSource.empty()) << Diags.str();
  OracleOptions Opts = testOracleOptions();

  for (unsigned S = 0; S < NumGovSites; ++S) {
    for (uint64_t Countdown : {uint64_t(1), uint64_t(25)}) {
      GovSite Site = static_cast<GovSite>(S);
      FaultInject::arm(Site, Countdown);
      DiagnosticEngine D;
      OracleVerdict V = runOracle(Inst, Opts, D);
      FaultInject::disarmAll();
      EXPECT_TRUE(V.Ok) << govSiteName(Site) << ":" << Countdown << " — "
                        << V.Mismatch;
      EXPECT_GE(V.Runs.size(), 4u) << govSiteName(Site);
    }
  }
}

/// An immediate fault on the hottest site skips (at least) the first sim
/// leg with the canonical fingerprint; later legs — where the one-shot
/// countdown has already fired — run normally and still agree.
TEST(FuzzFaultInject, ImmediateFaultYieldsCanonicalSkipFingerprint) {
  DiagnosticEngine Diags;
  FuzzInstance Inst = instanceFromSeed(2, Diags);
  ASSERT_FALSE(Inst.NvSource.empty()) << Diags.str();
  OracleOptions Opts = testOracleOptions();

  FaultInject::arm(GovSite::SimPop, 1);
  OracleVerdict V = runOracle(Inst, Opts, Diags);
  FaultInject::disarmAll();

  EXPECT_TRUE(V.Ok) << V.Mismatch;
  bool SawSkip = false, SawNonSkip = false;
  for (const EngineRun &R : V.Runs) {
    if (R.Fingerprint == "skip:resource-limit")
      SawSkip = true;
    else
      SawNonSkip = true;
  }
  EXPECT_TRUE(SawSkip) << "no leg was skipped despite sim-pop:1";
  EXPECT_TRUE(SawNonSkip) << "every leg skipped: one-shot countdown re-fired?";
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimize, ShrinkCandidatesAreValidSpecs) {
  FuzzSpec S = specFromSeed(12); // sp-option on a FatTree: many edges.
  for (const FuzzSpec &C : shrinkCandidates(S)) {
    DiagnosticEngine Diags;
    FuzzInstance Inst = renderSpec(C, Diags);
    ASSERT_FALSE(Inst.NvSource.empty()) << Diags.str();
    auto P = parseProgram(Inst.NvSource, Diags);
    ASSERT_TRUE(P) << Inst.NvSource << Diags.str();
    EXPECT_TRUE(typeCheck(*P, Diags)) << Inst.NvSource << Diags.str();
  }
}

TEST(FuzzMinimize, ShrinksPlantedBugToEdgeFloor) {
  uint64_t Seed = 0;
  FuzzInstance Inst = findShrinkableSpOption(Seed);
  ASSERT_GT(Inst.Spec.Edges.size(), 6u);

  OracleOptions Buggy = testOracleOptions();
  Buggy.InjectBugForTesting = true;
  MinimizeResult M = minimizeSpec(Inst.Spec, Buggy);

  // The planted bug fires iff edges >= 6, so a 1-minimal repro has
  // exactly 6 edges and still diverges.
  EXPECT_EQ(M.Final.Edges.size(), 6u);
  EXPECT_GT(M.MovesApplied, 0u);
  EXPECT_FALSE(M.Verdict.Ok);

  // The repro is gone once the bug is switched off (it is a repro of the
  // planted bug, not a latent real one).
  DiagnosticEngine Diags;
  OracleOptions Clean = testOracleOptions();
  OracleVerdict VClean = runOracle(M.Instance, Clean, Diags);
  EXPECT_TRUE(VClean.Ok) << VClean.Mismatch;
}

TEST(FuzzMinimize, NonDivergingSpecIsReturnedUnchanged) {
  FuzzSpec S = specFromSeed(2);
  OracleOptions Opts = testOracleOptions();
  MinimizeResult M = minimizeSpec(S, Opts);
  EXPECT_EQ(M.Final, S);
  EXPECT_EQ(M.MovesApplied, 0u);
  EXPECT_TRUE(M.Verdict.Ok);
}

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

TEST(FuzzCorpus, RoundTripsHeaderAndSource) {
  DiagnosticEngine Diags;
  FuzzInstance Inst = instanceFromSeed(3, Diags); // tuple-lex
  std::string Text = corpusFileText(Inst, "round-trip test");
  auto Back = parseCorpusText(Text);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Spec.Seed, Inst.Spec.Seed);
  EXPECT_EQ(Back->Spec.Policy, Inst.Spec.Policy);
  EXPECT_EQ(Back->SmtComparable, Inst.SmtComparable);
  EXPECT_EQ(Back->FtComparable, Inst.FtComparable);

  // The corpus file *is* a valid NV program (header is an NV comment).
  auto P = parseProgram(Back->NvSource, Diags);
  ASSERT_TRUE(P) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
}

TEST(FuzzCorpus, RejectsFilesWithoutHeader) {
  EXPECT_FALSE(parseCorpusText("let nodes = 2\nlet edges = {0n=1n}\n"));
  EXPECT_FALSE(parseCorpusText(""));
}

#ifdef NV_CORPUS_DIR
TEST(FuzzCorpus, CommittedCorpusReplaysClean) {
  std::vector<std::string> Files = listCorpusFiles(NV_CORPUS_DIR);
  ASSERT_GE(Files.size(), 10u)
      << "regression corpus missing from " << NV_CORPUS_DIR;
  OracleOptions Opts = testOracleOptions();
  for (const std::string &F : Files) {
    auto Inst = loadCorpusFile(F);
    ASSERT_TRUE(Inst.has_value()) << F;
    DiagnosticEngine Diags;
    OracleVerdict V = runOracle(*Inst, Opts, Diags);
    EXPECT_TRUE(V.Ok) << F << ": " << V.Mismatch;
  }
}
#endif

} // namespace
