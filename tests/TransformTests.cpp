//===- TransformTests.cpp - NV-to-NV transformation tests -------------------===//

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Interp.h"
#include "eval/ProgramEvaluator.h"
#include "transform/Transforms.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

ExprPtr parseE(const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  EXPECT_TRUE(E) << Diags.str();
  return E;
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

TEST(Subst, ReplacesFreeOccurrences) {
  ExprPtr E = substitute(parseE("x + x"), "x", parseE("3"));
  EXPECT_EQ(printExpr(E), "3 + 3");
}

TEST(Subst, RespectsShadowing) {
  ExprPtr E = substitute(parseE("let x = 1 in x + y"), "x", parseE("9"));
  EXPECT_EQ(printExpr(E), "let x = 1 in x + y");
  ExprPtr F = substitute(parseE("fun x -> x"), "x", parseE("9"));
  EXPECT_EQ(printExpr(F), "fun x -> x");
}

TEST(Subst, AvoidsCapture) {
  // Substituting y := x under a binder for x must rename the binder.
  ExprPtr E = substitute(parseE("fun x -> x + y"), "y", parseE("x"));
  ASSERT_EQ(E->Kind, ExprKind::Fun);
  EXPECT_NE(E->Name, "x") << printExpr(E);
  // The body adds the (renamed) parameter and the free x.
  EXPECT_EQ(E->Args[0]->Args[0]->Name, E->Name);
  EXPECT_EQ(E->Args[0]->Args[1]->Name, "x");
}

TEST(Subst, AvoidsCaptureInMatch) {
  ExprPtr E = substitute(parseE("match o with | Some v -> v + y | None -> y"),
                         "y", parseE("v"));
  // Pattern binder v must have been freshened.
  ASSERT_EQ(E->Kind, ExprKind::Match);
  const MatchCase &C = E->Cases[0];
  ASSERT_EQ(C.Pat->Elems[0]->Kind, PatternKind::Var);
  EXPECT_NE(C.Pat->Elems[0]->Name, "v");
  EXPECT_EQ(C.Body->Args[1]->Name, "v"); // the substituted free v
}

//===----------------------------------------------------------------------===//
// Alpha renaming
//===----------------------------------------------------------------------===//

TEST(Alpha, MakesBindersUnique) {
  uint64_t Counter = 0;
  ExprPtr E = alphaRename(
      parseE("let x = 1 in (let x = 2 in x) + x"), Counter);
  ASSERT_EQ(E->Kind, ExprKind::Let);
  std::string Outer = E->Name;
  const ExprPtr &InnerLet = E->Args[1]->Args[0];
  ASSERT_EQ(InnerLet->Kind, ExprKind::Let);
  EXPECT_NE(Outer, InnerLet->Name);
  // Inner use refers to the inner binder, outer use to the outer.
  EXPECT_EQ(InnerLet->Args[1]->Name, InnerLet->Name);
  EXPECT_EQ(E->Args[1]->Args[1]->Name, Outer);
}

TEST(Alpha, PreservesSemantics) {
  NvContext Ctx(4);
  for (const char *Src :
       {"let x = 2 in let x = x + 1 in x + x",
        "match Some 3 with | Some v -> (match Some 4 with | Some v -> v "
        "| None -> 0) + v | None -> 0",
        "let f (x : int) = x + 1 in f (let x = 2 in x)"}) {
    ExprPtr E = parseE(Src);
    uint64_t Counter = 0;
    ExprPtr R = alphaRename(E, Counter);
    DiagnosticEngine Diags;
    ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
    ASSERT_TRUE(typeCheckExpr(R, Diags)) << printExpr(R) << Diags.str();
    Interp I(Ctx);
    EXPECT_EQ(I.eval(E.get(), nullptr), I.eval(R.get(), nullptr)) << Src;
  }
}

//===----------------------------------------------------------------------===//
// Partial evaluation
//===----------------------------------------------------------------------===//

/// PE must preserve meaning: evaluate before and after.
class PePreservesSemantics : public ::testing::TestWithParam<const char *> {};

TEST_P(PePreservesSemantics, SameValue) {
  NvContext Ctx(4);
  ExprPtr E = parseE(GetParam());
  uint64_t Counter = 0;
  ExprPtr R = partialEval(alphaRename(E, Counter));
  DiagnosticEngine Diags;
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  ASSERT_TRUE(typeCheckExpr(R, Diags))
      << GetParam() << " PE'd to ill-typed " << printExpr(R) << "\n"
      << Diags.str();
  Interp I(Ctx);
  EXPECT_EQ(I.eval(E.get(), nullptr), I.eval(R.get(), nullptr))
      << GetParam() << "  ==>  " << printExpr(R);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PePreservesSemantics,
    ::testing::Values(
        "1 + 2 - 4",
        "(fun (x : int) -> x + x) 21",
        "let x = 3 + 4 in x + x",
        "if 1 < 2 then 10 else 20",
        "if (fun (b : bool) -> b) true then 1 else 0",
        "match Some (1 + 1) with | Some v -> v + 1 | None -> 0",
        "match (1, (2, 3)) with | (a, (b, c)) -> a + b + c",
        "{lp = 1 + 1; med = 0}.lp",
        "let r = {lp = 5; med = 7} in {r with med = r.lp}.med",
        "(fun (x : int) -> fun (y : int) -> x - y) 10 4",
        "let dead = 1 + 2 in 5",
        "(1, 2) = (1, 2)",
        "Some 1 = None",
        "let f (o : option[int]) = match o with | Some v -> v | None -> 0 "
        "in f (Some 3) + f None",
        "255u8 + 1u8",
        "!(3 < 2) && (2 <= 2 || false)"));

TEST(PartialEval, FoldsSelfEquality) {
  // Pure and total: e = e folds to true even for unknown e.
  ExprPtr E = parseE("fun (x : int) -> x = x");
  uint64_t C = 0;
  ExprPtr R = partialEval(alphaRename(E, C));
  ASSERT_EQ(R->Kind, ExprKind::Fun);
  EXPECT_EQ(printExpr(R->Args[0]), "true");
}

TEST(PartialEval, ReducesSize) {
  ExprPtr E = parseE(
      "let add (x : int) (y : int) = x + y in "
      "let inc (x : int) = add x 1 in inc (inc (inc 0))");
  uint64_t C = 0;
  ExprPtr R = partialEval(alphaRename(E, C));
  EXPECT_EQ(printExpr(R), "3");
}

TEST(PartialEval, ResidualMatchKept) {
  // Unknown scrutinee: the match survives, bodies still simplified.
  ExprPtr E = parseE(
      "fun (o : option[int]) -> match o with | Some v -> v + (1 + 1) "
      "| None -> 1 + 1");
  uint64_t C = 0;
  ExprPtr R = partialEval(alphaRename(E, C));
  ASSERT_EQ(R->Args[0]->Kind, ExprKind::Match);
  EXPECT_EQ(printExpr(R->Args[0]->Cases[1].Body), "2");
}

TEST(PartialEval, PrunesImpossibleCases) {
  ExprPtr E = parseE("fun (x : int) -> match Some x with "
                     "| None -> 0 | Some v -> v");
  uint64_t C = 0;
  ExprPtr R = partialEval(alphaRename(E, C));
  // Scrutinee is Some x: the None case dies, Some binds directly.
  EXPECT_EQ(R->Args[0]->Kind, ExprKind::Var) << printExpr(R);
}

TEST(PartialEval, SpecializesTransferOverConcreteEdge) {
  // The shape the SMT pipeline relies on: trans applied to a literal edge
  // and a Some route collapses to the updated record.
  const char *Src = R"nv(
include bgp
let nodes = 2
let edges = {0n=1n}
let trans e x = transBgp e x
let merge u x y = mergeBgp u x y
let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | _ -> None
)nv";
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  // Partial evaluation preserves the types recorded on the input nodes;
  // the residual program is evaluated without re-checking (beta reduction
  // erases parameter annotations).
  Program R = partialEvalProgram(*P);
  ASSERT_NE(R.findLet("trans"), nullptr);
  ASSERT_NE(R.findLet("init"), nullptr);
  ASSERT_NE(R.findLet("merge"), nullptr);

  NvContext Ctx(2);
  InterpProgramEvaluator E1(Ctx, *P), E2(Ctx, R);
  const Value *Route = E1.init(0);
  ASSERT_TRUE(Route->isSome());
  EXPECT_EQ(E1.trans(0, 1, Route), E2.trans(0, 1, Route));
  EXPECT_EQ(E1.merge(1, Route, Ctx.noneV()), E2.merge(1, Route, Ctx.noneV()));
}

TEST(PartialEval, ProgramSemanticsPreserved) {
  const char *Src = R"nv(
let nodes = 3
let edges = {0n=1n;1n=2n}
let two = 1 + 1
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) =
  match x with | None -> None | Some d -> Some (d + two)
let merge (u : node) (x : option[int]) (y : option[int]) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a <= b then x else y
)nv";
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  Program R = partialEvalProgram(*P);

  // The helper `two` must have been inlined away.
  EXPECT_EQ(R.findLet("two"), nullptr);

  NvContext Ctx(3);
  InterpProgramEvaluator E1(Ctx, *P), E2(Ctx, R);
  for (uint32_t U = 0; U < 3; ++U)
    EXPECT_EQ(E1.init(U), E2.init(U)) << U;
  const Value *Route = Ctx.someV(Ctx.intV(5));
  EXPECT_EQ(E1.trans(0, 1, Route), E2.trans(0, 1, Route));
  EXPECT_EQ(E1.merge(1, Route, Ctx.noneV()), E2.merge(1, Route, Ctx.noneV()));
}

TEST(Transforms, RenameSemanticDecls) {
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
let init (u : node) = 0
let trans (e : edge) (x : int) = x
let merge (u : node) (x : int) (y : int) = x
let assert (u : node) (x : int) = x = init u
)nv";
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  Program R = renameSemanticDecls(*P);
  EXPECT_EQ(R.findLet("init"), nullptr);
  EXPECT_NE(R.findLet("__base_init"), nullptr);
  // The reference to init inside assert was retargeted.
  const Decl *A = R.findLet("__base_assert");
  ASSERT_NE(A, nullptr);
  bool FoundRef = false;
  forEachExpr(A->Body, [&](const ExprPtr &E) {
    if (E->Kind == ExprKind::Var && E->Name == "__base_init")
      FoundRef = true;
  });
  EXPECT_TRUE(FoundRef);
}

} // namespace
