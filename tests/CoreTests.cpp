//===- CoreTests.cpp - Lexer/parser/typechecker/printer tests -------------===//

#include "core/Lexer.h"
#include "core/Parser.h"
#include "core/Printer.h"
#include "core/Stdlib.h"
#include "core/TypeChecker.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

ExprPtr parseE(const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  EXPECT_TRUE(E) << "parse failed for: " << Src << "\n" << Diags.str();
  return E;
}

TypePtr parseT(const std::string &Src) {
  DiagnosticEngine Diags;
  TypePtr T = parseTypeString(Src, Diags);
  EXPECT_TRUE(T) << "type parse failed for: " << Src << "\n" << Diags.str();
  return T;
}

std::optional<Program> parseP(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << "program parse failed:\n" << Diags.str();
  return P;
}

/// The working example of Fig. 2b.
const char *Fig2b = R"nv(
include bgp
let nodes = 5
let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}

symbolic route : attribute

let trans e x = transBgp e x

let merge u x y = mergeBgp u x y

let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | 4n -> route
  | _ -> None

let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some b -> if u <> 4n then b.origin = 0n else true
)nv";

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, BasicTokens) {
  DiagnosticEngine Diags;
  auto Toks = lex("let x = 5u8 + 3 in x <> 2n", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 11u);
  EXPECT_TRUE(Toks[0].isIdent("let"));
  EXPECT_EQ(Toks[3].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[3].IntVal, 5u);
  EXPECT_EQ(Toks[3].Width, 8u);
  EXPECT_EQ(Toks[5].Kind, TokKind::IntLit);
  EXPECT_EQ(Toks[5].Width, 32u);
  EXPECT_EQ(Toks[8].Kind, TokKind::Neq);
  EXPECT_EQ(Toks[9].Kind, TokKind::NodeLit);
  EXPECT_EQ(Toks[9].IntVal, 2u);
  EXPECT_EQ(Toks[10].Kind, TokKind::Eof);
}

TEST(Lexer, CommentsNestAndLineCommentsWork) {
  DiagnosticEngine Diags;
  auto Toks = lex("(* outer (* inner *) still *) x // trailing\ny", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_TRUE(Toks[0].isIdent("x"));
  EXPECT_TRUE(Toks[1].isIdent("y"));
}

TEST(Lexer, TracksLocations) {
  DiagnosticEngine Diags;
  auto Toks = lex("a\n  b", Diags);
  EXPECT_EQ(Toks[0].Loc.Line, 1);
  EXPECT_EQ(Toks[1].Loc.Line, 2);
  EXPECT_EQ(Toks[1].Loc.Col, 3);
}

TEST(Lexer, ReportsUnterminatedComment) {
  DiagnosticEngine Diags;
  lex("(* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, OperatorTokens) {
  DiagnosticEngine Diags;
  auto Toks = lex(":= -> || && <= >= ! |", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_EQ(Toks[0].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[1].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[2].Kind, TokKind::OrOr);
  EXPECT_EQ(Toks[3].Kind, TokKind::AndAnd);
  EXPECT_EQ(Toks[4].Kind, TokKind::Le);
  EXPECT_EQ(Toks[5].Kind, TokKind::Ge);
  EXPECT_EQ(Toks[6].Kind, TokKind::Bang);
  EXPECT_EQ(Toks[7].Kind, TokKind::Bar);
}

//===----------------------------------------------------------------------===//
// Type parsing
//===----------------------------------------------------------------------===//

TEST(TypeParse, BaseTypes) {
  EXPECT_EQ(typeToString(parseT("bool")), "bool");
  EXPECT_EQ(typeToString(parseT("int")), "int");
  EXPECT_EQ(typeToString(parseT("int8")), "int8");
  EXPECT_EQ(typeToString(parseT("node")), "node");
  EXPECT_EQ(typeToString(parseT("edge")), "edge");
}

TEST(TypeParse, Compound) {
  EXPECT_EQ(typeToString(parseT("option[int]")), "option[int]");
  EXPECT_EQ(typeToString(parseT("set[int]")), "set[int]");
  EXPECT_EQ(typeToString(parseT("dict[edge, option[bool]]")),
            "dict[edge, option[bool]]");
  EXPECT_EQ(typeToString(parseT("(int, int5)")), "(int, int5)");
  EXPECT_EQ(typeToString(parseT("int -> bool -> int")), "int -> bool -> int");
}

TEST(TypeParse, RecordSortsLabels) {
  TypePtr T = parseT("{lp : int; length : int}");
  ASSERT_EQ(T->Labels.size(), 2u);
  EXPECT_EQ(T->Labels[0], "length");
  EXPECT_EQ(T->Labels[1], "lp");
}

TEST(TypeParse, SetIsDictToBool) {
  TypePtr T = parseT("set[node]");
  ASSERT_EQ(T->Kind, TypeKind::Dict);
  EXPECT_EQ(resolve(T->Elems[1])->Kind, TypeKind::Bool);
}

//===----------------------------------------------------------------------===//
// Expression parsing
//===----------------------------------------------------------------------===//

TEST(Parser, Precedence) {
  // + binds tighter than <, which binds tighter than &&, then ||.
  ExprPtr E = parseE("a + 1 < b && c || d");
  ASSERT_EQ(E->Kind, ExprKind::Oper);
  EXPECT_EQ(E->OpCode, Op::Or);
  EXPECT_EQ(E->Args[0]->OpCode, Op::And);
  EXPECT_EQ(E->Args[0]->Args[0]->OpCode, Op::Lt);
  EXPECT_EQ(E->Args[0]->Args[0]->Args[0]->OpCode, Op::Add);
}

TEST(Parser, ApplicationIsLeftAssociative) {
  ExprPtr E = parseE("f a b");
  ASSERT_EQ(E->Kind, ExprKind::App);
  EXPECT_EQ(E->Args[0]->Kind, ExprKind::App);
  EXPECT_EQ(E->Args[0]->Args[0]->Name, "f");
}

TEST(Parser, MapGetSetSugar) {
  ExprPtr Get = parseE("m[3]");
  ASSERT_EQ(Get->Kind, ExprKind::Oper);
  EXPECT_EQ(Get->OpCode, Op::MGet);
  ExprPtr Set = parseE("m[3 := true]");
  EXPECT_EQ(Set->OpCode, Op::MSet);
}

TEST(Parser, SetLiteralDesugarsToCreateAndSet) {
  ExprPtr E = parseE("{1, 2}");
  ASSERT_EQ(E->Kind, ExprKind::Oper);
  EXPECT_EQ(E->OpCode, Op::MSet);
  EXPECT_EQ(E->Args[0]->OpCode, Op::MSet);
  EXPECT_EQ(E->Args[0]->Args[0]->OpCode, Op::MCreate);
}

TEST(Parser, EmptySetLiteral) {
  ExprPtr E = parseE("{}");
  ASSERT_EQ(E->Kind, ExprKind::Oper);
  EXPECT_EQ(E->OpCode, Op::MCreate);
}

TEST(Parser, RecordLiteralAndUpdate) {
  ExprPtr R = parseE("{lp = 100; length = 0}");
  ASSERT_EQ(R->Kind, ExprKind::Record);
  // Labels are sorted.
  EXPECT_EQ(R->Labels[0], "length");
  ExprPtr U = parseE("{b with length = b.length + 1}");
  ASSERT_EQ(U->Kind, ExprKind::RecordUpdate);
  EXPECT_EQ(U->Labels[0], "length");
}

TEST(Parser, MatchWithTupleScrutinee) {
  ExprPtr E = parseE("match x, y with | _, None -> true | None, _ -> false "
                     "| Some a, Some b -> a = b");
  ASSERT_EQ(E->Kind, ExprKind::Match);
  EXPECT_EQ(E->Args[0]->Kind, ExprKind::Tuple);
  ASSERT_EQ(E->Cases.size(), 3u);
  EXPECT_EQ(E->Cases[0].Pat->Kind, PatternKind::Tuple);
}

TEST(Parser, DestructuringLet) {
  ExprPtr E = parseE("let (u, v) = e in u");
  ASSERT_EQ(E->Kind, ExprKind::Match);
  ASSERT_EQ(E->Cases.size(), 1u);
  EXPECT_EQ(E->Cases[0].Pat->Kind, PatternKind::Tuple);
}

TEST(Parser, PrimitivesRequireFullApplication) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseExprString("map f", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, MapPrimitives) {
  ExprPtr E = parseE("mapIte (fun k -> k = 3) (fun v -> v + 1) (fun v -> v) m");
  ASSERT_EQ(E->Kind, ExprKind::Oper);
  EXPECT_EQ(E->OpCode, Op::MMapIte);
  EXPECT_EQ(E->Args.size(), 4u);
  ExprPtr C = parseE("combine f m1 m2");
  EXPECT_EQ(C->OpCode, Op::MCombine);
}

TEST(Parser, SomeBindsTighterThanApplication) {
  // `f Some x` applies f to (Some x)? No: Some is an operand on its own.
  ExprPtr E = parseE("Some (1, 2)");
  ASSERT_EQ(E->Kind, ExprKind::Some);
  EXPECT_EQ(E->Args[0]->Kind, ExprKind::Tuple);
}

TEST(Parser, IfChains) {
  ExprPtr E = parseE("if a then 1 else if b then 2 else 3");
  ASSERT_EQ(E->Kind, ExprKind::If);
  EXPECT_EQ(E->Args[2]->Kind, ExprKind::If);
}

TEST(Parser, LetFunctionSugar) {
  ExprPtr E = parseE("let f (x : int) y = x + y in f 1 2");
  ASSERT_EQ(E->Kind, ExprKind::Let);
  EXPECT_EQ(E->Args[0]->Kind, ExprKind::Fun);
  EXPECT_EQ(E->Args[0]->Args[0]->Kind, ExprKind::Fun);
}

//===----------------------------------------------------------------------===//
// Program parsing
//===----------------------------------------------------------------------===//

TEST(ProgramParse, Fig2b) {
  auto P = parseP(Fig2b);
  ASSERT_TRUE(P);
  EXPECT_EQ(P->numNodes(), 5u);
  EXPECT_EQ(P->links().size(), 6u);
  EXPECT_EQ(P->directedEdges().size(), 12u);
  EXPECT_NE(P->initDecl(), nullptr);
  EXPECT_NE(P->transDecl(), nullptr);
  EXPECT_NE(P->mergeDecl(), nullptr);
  EXPECT_NE(P->assertDecl(), nullptr);
  EXPECT_EQ(P->symbolics().size(), 1u);
}

TEST(ProgramParse, UnknownIncludeFails) {
  DiagnosticEngine Diags;
  auto P = parseProgram("include nosuchmodel", Diags);
  EXPECT_FALSE(P.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ProgramParse, CustomIncludeResolver) {
  DiagnosticEngine Diags;
  ParseOptions Opts;
  Opts.Resolver = [](const std::string &Name) -> std::optional<std::string> {
    if (Name == "mine")
      return std::string("let helper (x : int) = x + 1");
    return std::nullopt;
  };
  auto P = parseProgram("include mine\nlet v = helper 1", Diags, Opts);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  EXPECT_NE(P->findLet("helper"), nullptr);
}

TEST(ProgramParse, BuiltinModelsAllParse) {
  for (const char *Name : {"bgp", "bgpTrace", "rip", "ospf"}) {
    DiagnosticEngine Diags;
    auto P = parseProgram(std::string("include ") + Name, Diags);
    EXPECT_TRUE(P.has_value()) << Name << ":\n" << Diags.str();
  }
}

//===----------------------------------------------------------------------===//
// Printer round trips
//===----------------------------------------------------------------------===//

TEST(Printer, ExprRoundTrip) {
  const char *Cases[] = {
      "if a then 1 else 2",
      "let x = 1 in x + 2",
      "match o with | None -> 0 | Some v -> v",
      "{length = 0; lp = 100}",
      "{b with lp = 200}",
      "m[3 := true][4]",
      "map (fun v -> v + 1) m",
      "combine (fun a b -> a) m1 m2",
      "Some (1, true)",
      "fun (x : int) -> x",
  };
  for (const char *Src : Cases) {
    ExprPtr E1 = parseE(Src);
    std::string Printed = printExpr(E1);
    DiagnosticEngine Diags;
    ExprPtr E2 = parseExprString(Printed, Diags);
    ASSERT_TRUE(E2) << "reparse failed for: " << Printed;
    EXPECT_TRUE(exprEquals(E1, E2)) << Src << " vs " << Printed;
  }
}

TEST(Printer, ProgramRoundTrip) {
  auto P1 = parseP(Fig2b);
  ASSERT_TRUE(P1);
  std::string Printed = printProgram(*P1);
  DiagnosticEngine Diags;
  auto P2 = parseProgram(Printed, Diags);
  ASSERT_TRUE(P2.has_value()) << Diags.str() << "\n" << Printed;
  EXPECT_EQ(P2->numNodes(), P1->numNodes());
  EXPECT_EQ(P2->links(), P1->links());
}

//===----------------------------------------------------------------------===//
// Type checking
//===----------------------------------------------------------------------===//

TypePtr typeOf(const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  EXPECT_TRUE(E) << Diags.str();
  if (!E)
    return nullptr;
  TypePtr T = typeCheckExpr(E, Diags);
  EXPECT_TRUE(T) << "typecheck failed for: " << Src << "\n" << Diags.str();
  return T;
}

bool illTyped(const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  if (!E)
    return true;
  return typeCheckExpr(E, Diags) == nullptr;
}

TEST(TypeCheck, Basics) {
  EXPECT_EQ(typeToString(typeOf("1 + 2")), "int");
  EXPECT_EQ(typeToString(typeOf("1u8 + 2u8")), "int8");
  EXPECT_EQ(typeToString(typeOf("1 < 2")), "bool");
  EXPECT_EQ(typeToString(typeOf("if true then 1 else 2")), "int");
  EXPECT_EQ(typeToString(typeOf("Some 3")), "option[int]");
  EXPECT_EQ(typeToString(typeOf("(1, true)")), "(int, bool)");
}

TEST(TypeCheck, WidthMismatchRejected) {
  EXPECT_TRUE(illTyped("1u8 + 2u16"));
  EXPECT_TRUE(illTyped("1u8 = 1"));
}

TEST(TypeCheck, BranchMismatchRejected) {
  EXPECT_TRUE(illTyped("if true then 1 else false"));
  EXPECT_TRUE(illTyped("if 1 then 2 else 3"));
}

TEST(TypeCheck, MatchOnOption) {
  EXPECT_EQ(typeToString(typeOf("match Some 1 with | None -> 0 | Some v -> v")),
            "int");
}

TEST(TypeCheck, RecordFieldAccess) {
  EXPECT_EQ(typeToString(typeOf("{lp = 100; length = 0}.lp")), "int");
  EXPECT_TRUE(illTyped("{lp = 100}.nosuch"));
}

TEST(TypeCheck, MapOps) {
  EXPECT_EQ(typeToString(typeOf("(createDict 0)[true]")), "int");
  EXPECT_EQ(typeToString(
                typeOf("let m : dict[int, int] = createDict 1 in "
                       "map (fun v -> v = 0) m")),
            "set[int]");
  EXPECT_EQ(typeToString(
                typeOf("let m : set[int8] = {1u8} in "
                       "combine (fun a b -> a && b) m m")),
            "set[int8]");
  // An unconstrained createDict key stays polymorphic.
  EXPECT_EQ(resolve(typeOf("createDict 0")->Elems[0])->Kind, TypeKind::Var);
}

TEST(TypeCheck, SetLiteral) {
  EXPECT_EQ(typeToString(typeOf("{1, 2, 3}")), "set[int]");
}

TEST(TypeCheck, LambdasAndLets) {
  EXPECT_EQ(typeToString(typeOf("let f = fun (x : int) -> x + 1 in f 2")),
            "int");
  EXPECT_TRUE(illTyped("let f = fun (x : int) -> x in f true"));
  EXPECT_TRUE(illTyped("nosuchvar"));
}

TEST(TypeCheck, Fig2bProgram) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Fig2b, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  ASSERT_TRUE(P->AttrType);
  // attribute = option[bgp record]
  TypePtr Attr = P->AttrType;
  ASSERT_EQ(Attr->Kind, TypeKind::Option);
  EXPECT_EQ(resolve(Attr->Elems[0])->Kind, TypeKind::Record);
}

TEST(TypeCheck, NodeLiteralOutOfRangeRejected) {
  DiagnosticEngine Diags;
  auto P = parseProgram("let nodes = 2\nlet edges = {0n=1n}\n"
                        "let init (u : node) = u = 7n\n"
                        "let trans (e : edge) (x : bool) = x\n"
                        "let merge (u : node) (x : bool) (y : bool) = x",
                        Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  EXPECT_FALSE(typeCheck(*P, Diags));
}

TEST(TypeCheck, SymbolicMustBeConcrete) {
  DiagnosticEngine Diags;
  auto P = parseProgram("symbolic f : int -> int", Diags);
  ASSERT_TRUE(P.has_value());
  EXPECT_FALSE(typeCheck(*P, Diags));
}

TEST(TypeCheck, RequireMustBeBool) {
  DiagnosticEngine Diags;
  auto P = parseProgram("symbolic x : int\nrequire x + 1", Diags);
  ASSERT_TRUE(P.has_value());
  EXPECT_FALSE(typeCheck(*P, Diags));
}

TEST(TypeCheck, TopLevelLetPolymorphism) {
  DiagnosticEngine Diags;
  auto P = parseProgram(
      "let id x = x\nlet a = id 1\nlet b = id true", Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
}

TEST(TypeCheck, BuiltinModelsTypeCheck) {
  for (const char *Name : {"bgp", "bgpTrace", "rip", "ospf"}) {
    DiagnosticEngine Diags;
    auto P = parseProgram(std::string("include ") + Name, Diags);
    ASSERT_TRUE(P.has_value()) << Name;
    EXPECT_TRUE(typeCheck(*P, Diags)) << Name << ":\n" << Diags.str();
  }
}

TEST(TypeCheck, EdgeDestructuring) {
  EXPECT_EQ(typeToString(typeOf("fun (e : edge) -> let (u, v) = e in u")),
            "edge -> node");
}

} // namespace
