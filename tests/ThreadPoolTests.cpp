//===- ThreadPoolTests.cpp - worker-pool unit tests --------------------------===//
//
// The pool underlies every sharded analysis, so its contract is pinned
// here: every index runs exactly once, exceptions propagate, repeated
// parallelFor calls do not leak work between jobs, and the stats counters
// add up.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

using namespace nv;

namespace {

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    std::vector<std::atomic<int>> Hits(1000);
    Pool.parallelFor(Hits.size(), [&](size_t I) { Hits[I].fetch_add(1); });
    for (size_t I = 0; I < Hits.size(); ++I)
      EXPECT_EQ(Hits[I].load(), 1) << "index " << I << " threads " << Threads;
  }
}

TEST(ThreadPool, ZeroAndOneTasks) {
  ThreadPool Pool(4);
  int Ran = 0;
  Pool.parallelFor(0, [&](size_t) { ++Ran; });
  EXPECT_EQ(Ran, 0);
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Ran;
  });
  EXPECT_EQ(Ran, 1);
}

TEST(ThreadPool, RepeatedCallsDoNotMixJobs) {
  // A stale worker from job N must never execute job N+1's function with a
  // recycled index (the ABA hazard of pool-level counters).
  ThreadPool Pool(4);
  for (int Round = 0; Round < 50; ++Round) {
    std::atomic<uint64_t> Sum{0};
    Pool.parallelFor(64, [&, Round](size_t I) {
      Sum.fetch_add(static_cast<uint64_t>(Round) * 1000 + I);
    });
    uint64_t Expected = static_cast<uint64_t>(Round) * 1000 * 64 +
                        (64 * 63) / 2;
    EXPECT_EQ(Sum.load(), Expected) << "round " << Round;
  }
}

TEST(ThreadPool, FirstExceptionPropagates) {
  ThreadPool Pool(2);
  EXPECT_THROW(Pool.parallelFor(16,
                                [&](size_t I) {
                                  if (I == 7)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool stays usable after an exceptional job.
  std::atomic<int> Ran{0};
  Pool.parallelFor(8, [&](size_t) { Ran.fetch_add(1); });
  EXPECT_EQ(Ran.load(), 8);
}

TEST(ThreadPool, StatsCountTasksAndCalls) {
  ThreadPool Pool(2);
  Pool.parallelFor(10, [](size_t) {});
  Pool.parallelFor(5, [](size_t) {});
  ThreadPool::Stats S = Pool.stats();
  EXPECT_EQ(S.TasksRun, 15u);
  EXPECT_EQ(S.ParallelForCalls, 2u);
  EXPECT_GE(S.WorkerIdleMs, 0.0);
}

TEST(ThreadPool, DefaultThreadCountHonorsEnv) {
  setenv("NV_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
  unsetenv("NV_THREADS");
  EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
}

TEST(ThreadPool, ZeroThreadsMeansDefault) {
  setenv("NV_THREADS", "2", 1);
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numThreads(), 2u);
  unsetenv("NV_THREADS");
}

} // namespace
