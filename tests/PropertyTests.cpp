//===- PropertyTests.cpp - Randomized cross-component properties -------------===//
//
// Seed-parameterized properties tying independent subsystems together:
// the simulator and the SMT verifier must agree on reachability of random
// networks; the per-prefix Batfish baseline must compute the same routes
// as the bulk MTBDD simulation; route-map DAG hoisting must preserve the
// DAG's decision semantics; and the parser must reject garbage gracefully.
//
//===----------------------------------------------------------------------===//

#include "baselines/BatfishSim.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "frontend/RouteMapDag.h"
#include "net/Generators.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace nv;

namespace {

//===----------------------------------------------------------------------===//
// Simulator vs SMT on random topologies
//===----------------------------------------------------------------------===//

/// Random (possibly disconnected) graph running shortest-path routing with
/// an all-nodes-reachable assert. The protocol is strictly monotone, so
/// the stable state is unique: the simulator's verdict and the verifier's
/// verdict must coincide exactly.
std::string randomSpNetwork(std::mt19937 &Rng, uint32_t N) {
  std::set<std::pair<uint32_t, uint32_t>> Links;
  uint32_t NumLinks = 1 + Rng() % (2 * N);
  for (uint32_t I = 0; I < NumLinks; ++I) {
    uint32_t A = Rng() % N, B = Rng() % N;
    if (A == B)
      continue;
    if (A > B)
      std::swap(A, B);
    Links.insert({A, B});
  }
  std::string Edges;
  for (auto [A, B] : Links) {
    if (!Edges.empty())
      Edges += ";";
    Edges += std::to_string(A) + "n=" + std::to_string(B) + "n";
  }
  if (Edges.empty())
    Edges = "0n=1n";
  return "let nodes = " + std::to_string(N) + "\nlet edges = {" + Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

class SimSmtAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SimSmtAgreement, SameReachabilityVerdict) {
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 3; ++Round) {
    uint32_t N = 3 + Rng() % 5;
    std::string Src = randomSpNetwork(Rng, N);
    DiagnosticEngine Diags;
    auto P = parseProgram(Src, Diags);
    ASSERT_TRUE(P.has_value()) << Diags.str() << Src;
    ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str() << Src;

    NvContext Ctx(N);
    InterpProgramEvaluator Eval(Ctx, *P);
    SimResult R = simulate(*P, Eval);
    ASSERT_TRUE(R.Converged);
    bool SimHolds = checkAsserts(Eval, R).empty();

    VerifyOptions Opts;
    Opts.TimeoutMs = 20000;
    VerifyResult V = verifyProgram(*P, Opts, Diags);
    ASSERT_NE(V.Status, VerifyStatus::EncodingError) << Diags.str();
    ASSERT_NE(V.Status, VerifyStatus::Unknown);
    EXPECT_EQ(SimHolds, V.Status == VerifyStatus::Verified)
        << Src << "\n" << V.Counterexample;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSmtAgreement, ::testing::Range(1, 13));

//===----------------------------------------------------------------------===//
// Batfish per-prefix baseline vs NV bulk simulation
//===----------------------------------------------------------------------===//

class BatfishAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(BatfishAgreement, SameDistancesAsBulkMtbddRun) {
  unsigned K = GetParam();
  DiagnosticEngine Diags;
  auto All = loadGenerated(generateSpAllPrefixes(K), Diags);
  auto Param = loadGenerated(generateSpSingleParam(K), Diags);
  ASSERT_TRUE(All && Param) << Diags.str();
  FatTree FT(K);
  auto Leaves = FT.leaves();

  NvContext Ctx(All->numNodes());
  InterpProgramEvaluator Eval(Ctx, *All);
  SimResult Bulk = simulate(*All, Eval);
  ASSERT_TRUE(Bulk.Converged);

  // Extract hop counts while each per-prefix context is alive; BGP record
  // sorted fields: {comms, length, lp, med, origin}.
  BatfishResult BF = batfishAllPrefixes(*Param, Leaves, [](const Value *L) {
    return L->isSome() ? static_cast<int64_t>(L->Inner->Elems[1]->I) : -1;
  });
  ASSERT_TRUE(BF.Converged);
  ASSERT_EQ(BF.Labels.size(), Leaves.size());

  for (size_t Pfx = 0; Pfx < Leaves.size(); ++Pfx)
    for (uint32_t U = 0; U < All->numNodes(); ++U) {
      const Value *FromBulk = Ctx.mapGet(Bulk.Labels[U], Ctx.intV(Pfx, 16));
      int64_t FromBF = BF.Labels[Pfx][U];
      if (FromBulk->isNone()) {
        EXPECT_EQ(FromBF, -1) << U << "/" << Pfx;
        continue;
      }
      EXPECT_EQ(static_cast<int64_t>(FromBulk->Inner->I), FromBF)
          << U << "/" << Pfx;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BatfishAgreement, ::testing::Values(4u, 6u));

//===----------------------------------------------------------------------===//
// Route-map DAG hoisting preserves decision semantics
//===----------------------------------------------------------------------===//

/// Direct C++ evaluation of a DAG against an assignment of list names to
/// truth values; returns the reached leaf's description.
std::string evalDag(const RouteMapDag &D,
                    const std::map<std::string, bool> &Truth) {
  int I = D.Root;
  for (;;) {
    const RouteMapDag::Node &N = D.node(I);
    switch (N.K) {
    case RouteMapDag::Node::Kind::Drop:
      return "drop";
    case RouteMapDag::Node::Kind::Mutate: {
      std::string S = "mutate";
      if (N.SetLocalPref)
        S += " lp" + std::to_string(*N.SetLocalPref);
      if (N.SetMetric)
        S += " med" + std::to_string(*N.SetMetric);
      if (N.AddCommunity)
        S += " c" + std::to_string(*N.AddCommunity);
      return S;
    }
    default:
      I = Truth.at(N.ListName) ? N.True : N.False;
    }
  }
}

class DagHoisting : public ::testing::TestWithParam<int> {};

TEST_P(DagHoisting, PreservesSemanticsOnRandomRouteMaps) {
  std::mt19937 Rng(GetParam());
  const char *CommLists[] = {"c1", "c2", "c3"};
  const char *PfxLists[] = {"p1", "p2"};

  for (int Round = 0; Round < 10; ++Round) {
    RouteMap RM;
    RM.Name = "RM";
    unsigned NumClauses = 1 + Rng() % 4;
    for (unsigned C = 0; C < NumClauses; ++C) {
      RouteMapClause Clause;
      Clause.Permit = Rng() % 4 != 0;
      Clause.Seq = static_cast<int>(C) * 10;
      if (Rng() % 2)
        Clause.MatchCommunityList = CommLists[Rng() % 3];
      if (Rng() % 2)
        Clause.MatchPrefixList = PfxLists[Rng() % 2];
      if (Rng() % 2)
        Clause.SetLocalPref = 100 + Rng() % 100;
      if (Rng() % 2)
        Clause.SetMetric = Rng() % 50;
      RM.Clauses.push_back(Clause);
    }

    RouteMapDag D = buildRouteMapDag(RM);
    RouteMapDag H = hoistPrefixConditions(D);
    ASSERT_TRUE(H.prefixConditionsHoisted());

    // Exhaustive truth assignments over the five lists.
    for (unsigned Bits = 0; Bits < 32; ++Bits) {
      std::map<std::string, bool> Truth = {
          {"c1", (Bits & 1) != 0},  {"c2", (Bits & 2) != 0},
          {"c3", (Bits & 4) != 0},  {"p1", (Bits & 8) != 0},
          {"p2", (Bits & 16) != 0},
      };
      EXPECT_EQ(evalDag(D, Truth), evalDag(H, Truth))
          << "seed " << GetParam() << " round " << Round << " bits " << Bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagHoisting, ::testing::Range(1, 9));

//===----------------------------------------------------------------------===//
// Parser robustness
//===----------------------------------------------------------------------===//

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, GarbageNeverCrashes) {
  std::mt19937 Rng(GetParam());
  const char *Fragments[] = {
      "let",   "in",    "fun",  "match", "with", "|",  "->", "(",  ")",
      "{",     "}",     "[",    "]",     "=",    ":=", "x",  "1",  "2n",
      "Some",  "None",  "if",   "then",  "else", "+",  "-",  "&&", "!",
      "dict",  "int8",  ",",    ";",     ":",    "3u4", "createDict",
      "mapIte", "type", "symbolic", "require", "\"s\"", ".",
  };
  for (int Round = 0; Round < 40; ++Round) {
    std::string Src;
    unsigned Len = Rng() % 60;
    for (unsigned I = 0; I < Len; ++I) {
      Src += Fragments[Rng() % (sizeof(Fragments) / sizeof(*Fragments))];
      Src += ' ';
    }
    DiagnosticEngine Diags;
    auto P = parseProgram(Src, Diags); // must not crash or hang
    if (P) {
      DiagnosticEngine D2;
      typeCheck(*P, D2); // nor may checking a parsed soup crash
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(1, 7));

//===----------------------------------------------------------------------===//
// Compiled vs interpreted on random topologies with richer policy
//===----------------------------------------------------------------------===//

class EvaluatorAgreement : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorAgreement, SameFixpointOnRandomBgpNetworks) {
  std::mt19937 Rng(GetParam() * 77);
  uint32_t N = 4 + Rng() % 4;
  std::string Src = randomSpNetwork(Rng, N);
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();

  NvContext Ctx(N);
  InterpProgramEvaluator EI(Ctx, *P);
  CompiledProgramEvaluator EC(Ctx, *P);
  SimResult RI = simulate(*P, EI);
  SimResult RC = simulate(*P, EC);
  ASSERT_TRUE(RI.Converged && RC.Converged);
  EXPECT_EQ(RI.Labels, RC.Labels);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorAgreement, ::testing::Range(1, 11));

} // namespace
