//===- EvalTests.cpp - Interpreter / map runtime / simulator tests ----------===//

#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/Interp.h"
#include "eval/NvContext.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

/// Parses, type-checks and interprets a closed expression.
const Value *evalStr(NvContext &Ctx, const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  EXPECT_TRUE(E) << Diags.str();
  if (!E)
    return nullptr;
  TypePtr T = typeCheckExpr(E, Diags);
  EXPECT_TRUE(T) << "typecheck failed: " << Src << "\n" << Diags.str();
  if (!T)
    return nullptr;
  Interp I(Ctx);
  return I.eval(E.get(), nullptr);
}

std::string evalStrS(NvContext &Ctx, const std::string &Src) {
  const Value *V = evalStr(Ctx, Src);
  return V ? V->str() : "<error>";
}

TEST(Interp, Arithmetic) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "1 + 2"), "3");
  EXPECT_EQ(evalStrS(Ctx, "5 - 7"), "4294967294"); // 32-bit wrap
  EXPECT_EQ(evalStrS(Ctx, "255u8 + 1u8"), "0u8");  // width-8 wrap
  EXPECT_EQ(evalStrS(Ctx, "0u8 - 1u8"), "255u8");
  EXPECT_EQ(evalStrS(Ctx, "3 < 4"), "true");
  EXPECT_EQ(evalStrS(Ctx, "4 <= 3"), "false");
  EXPECT_EQ(evalStrS(Ctx, "4 >= 4"), "true");
}

TEST(Interp, Booleans) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "true && false"), "false");
  EXPECT_EQ(evalStrS(Ctx, "true || false"), "true");
  EXPECT_EQ(evalStrS(Ctx, "!true"), "false");
}

TEST(Interp, StructuralEqualityViaInterning) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "(1, true) = (1, true)"), "true");
  EXPECT_EQ(evalStrS(Ctx, "(1, true) = (2, true)"), "false");
  EXPECT_EQ(evalStrS(Ctx, "Some (1, 2) = Some (1, 2)"), "true");
  EXPECT_EQ(evalStrS(Ctx, "{lp = 1; med = 2} = {med = 2; lp = 1}"), "true");
  EXPECT_EQ(evalStrS(Ctx, "None = Some 1"), "false");
}

TEST(Interp, LetFunMatch) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "let x = 3 in x + x"), "6");
  EXPECT_EQ(evalStrS(Ctx, "let f (x : int) = x + 1 in f (f 1)"), "3");
  EXPECT_EQ(evalStrS(Ctx, "match Some 5 with | None -> 0 | Some v -> v"), "5");
  EXPECT_EQ(evalStrS(Ctx, "match (1, 2) with | (a, b) -> a + b"), "3");
  EXPECT_EQ(
      evalStrS(Ctx, "match Some (Some 2) with | Some (Some x) -> x | _ -> 0"),
      "2");
}

TEST(Interp, RecordsAndUpdates) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "{lp = 100; length = 3}.lp"), "100");
  EXPECT_EQ(
      evalStrS(Ctx, "let b = {lp = 100; length = 3} in "
                    "{b with length = b.length + 1}.length"),
      "4");
  EXPECT_EQ(evalStrS(Ctx, "match {lp = 9; med = 1} with | {lp = v} -> v"),
            "9");
}

TEST(Interp, ClosuresCapture) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "let y = 10 in let f (x : int) = x + y in "
                          "let y = 99 in f 1"),
            "11"); // lexical scoping
}

TEST(Interp, MapOperations) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "let m : dict[int8, int] = createDict 7 in m[3u8]"),
            "7");
  EXPECT_EQ(evalStrS(Ctx, "let m : dict[int8, int] = createDict 7 in "
                          "m[3u8 := 9][3u8]"),
            "9");
  EXPECT_EQ(evalStrS(Ctx, "let m : dict[int8, int] = createDict 7 in "
                          "m[3u8 := 9][4u8]"),
            "7");
  EXPECT_EQ(evalStrS(Ctx, "let m : set[int8] = {1u8, 2u8} in m[2u8]"), "true");
  EXPECT_EQ(evalStrS(Ctx, "let m : set[int8] = {1u8, 2u8} in m[3u8]"),
            "false");
}

TEST(Interp, MapHigherOrder) {
  NvContext Ctx(4);
  EXPECT_EQ(evalStrS(Ctx, "let m : dict[int8, int] = createDict 1 in "
                          "(map (fun v -> v + 10) m[2u8 := 5])[2u8]"),
            "15");
  EXPECT_EQ(evalStrS(Ctx, "let m : dict[int8, int] = createDict 1 in "
                          "(map (fun v -> v + 10) m[2u8 := 5])[9u8]"),
            "11");
  EXPECT_EQ(evalStrS(Ctx,
                     "let a : dict[int8, int] = (createDict 1)[2u8 := 5] in "
                     "let b : dict[int8, int] = (createDict 100)[3u8 := 7] in "
                     "(combine (fun x y -> x + y) a b)[2u8]"),
            "105");
}

TEST(Interp, MapEqualityIsCanonical) {
  NvContext Ctx(4);
  // Same contents built in different orders compare equal.
  EXPECT_EQ(evalStrS(Ctx, "let a : set[int8] = {1u8, 2u8} in "
                          "let b : set[int8] = {2u8, 1u8} in a = b"),
            "true");
  EXPECT_EQ(evalStrS(Ctx, "let a : set[int8] = {1u8} in "
                          "let b : set[int8] = {2u8} in a = b"),
            "false");
}

//===----------------------------------------------------------------------===//
// mapIte and symbolic predicates
//===----------------------------------------------------------------------===//

TEST(SymBdd, MapIteOnIntPredicate) {
  NvContext Ctx(4);
  // Fig. 11: increment where key > 3, drop (to None) elsewhere.
  const char *Src =
      "let m : dict[int3, option[int]] = createDict (Some 0) in "
      "mapIte (fun k -> k > 3u3) "
      "  (fun v -> match v with | None -> None | Some x -> Some (x + 1)) "
      "  (fun v -> None) m";
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  Interp I(Ctx);
  const Value *M = I.eval(E.get(), nullptr);
  ASSERT_EQ(M->K, Value::Kind::Map);
  for (uint64_t K = 0; K < 8; ++K) {
    const Value *V = Ctx.mapGet(M, Ctx.intV(K, 3));
    if (K > 3) {
      ASSERT_TRUE(V->isSome()) << K;
      EXPECT_EQ(V->Inner->I, 1u) << K;
    } else {
      EXPECT_TRUE(V->isNone()) << K;
    }
  }
}

/// Property: predToBdd agrees with concretely applying the predicate, for
/// a family of predicates over int8 keys.
class PredBdd : public ::testing::TestWithParam<const char *> {};

TEST_P(PredBdd, MatchesConcreteEvaluation) {
  NvContext Ctx(4);
  std::string Src = GetParam();
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  ASSERT_TRUE(E) << Diags.str();
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  Interp I(Ctx);
  const Value *Pred = I.eval(E.get(), nullptr);
  ASSERT_EQ(Pred->K, Value::Kind::Closure);

  TypePtr KeyTy = Type::intTy(8);
  BddManager::Ref Bdd = Ctx.predToBdd(Pred, KeyTy);
  for (uint64_t K = 0; K < 256; ++K) {
    const Value *Key = Ctx.intV(K, 8);
    std::vector<bool> Bits;
    Ctx.encodeValue(Key, KeyTy, Bits);
    bool FromBdd = Ctx.Mgr.get(Bdd, Bits) == Ctx.TrueV;
    bool Concrete = Ctx.applyClosure(Pred, Key)->isTrue();
    ASSERT_EQ(FromBdd, Concrete) << Src << " at key " << K;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Predicates, PredBdd,
    ::testing::Values(
        "fun (k : int8) -> k = 3u8",
        "fun (k : int8) -> k < 10u8",
        "fun (k : int8) -> k >= 200u8",
        "fun (k : int8) -> k = 3u8 || k = 250u8",
        "fun (k : int8) -> !(k <= 5u8) && k < 9u8",
        "fun (k : int8) -> k + 1u8 = 0u8",
        "fun (k : int8) -> k - 1u8 > k", // wraps only at 0
        "fun (k : int8) -> if k < 128u8 then k = 5u8 else k = 200u8",
        "fun (k : int8) -> let t = k + k in t = 4u8",
        "fun (k : int8) -> (match k = 7u8 with | true -> true | _ -> k = 9u8)",
        "fun (k : int8) -> (fun (j : int8) -> j > 250u8) k"));

TEST(SymBdd, EdgeEqualityPredicate) {
  // The fault-tolerance transfer predicate: fun e' -> e = e'.
  NvContext Ctx(6);
  const char *Src = "fun (e : edge) -> fun (k : edge) -> e = k";
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  Interp I(Ctx);
  const Value *Outer = I.eval(E.get(), nullptr);
  const Value *Pred = Ctx.applyClosure(Outer, Ctx.edgeV(2, 3));

  BddManager::Ref Bdd = Ctx.predToBdd(Pred, Type::edgeTy());
  for (uint32_t U = 0; U < 6; ++U)
    for (uint32_t V = 0; V < 6; ++V) {
      std::vector<bool> Bits;
      Ctx.encodeValue(Ctx.edgeV(U, V), Type::edgeTy(), Bits);
      bool FromBdd = Ctx.Mgr.get(Bdd, Bits) == Ctx.TrueV;
      EXPECT_EQ(FromBdd, U == 2 && V == 3) << U << "~" << V;
    }
}

TEST(SymBdd, OptionKeyPredicate) {
  NvContext Ctx(4);
  const char *Src =
      "fun (k : option[int4]) -> match k with | None -> true | Some v -> "
      "v > 2u4";
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  Interp I(Ctx);
  const Value *Pred = I.eval(E.get(), nullptr);
  TypePtr KeyTy = Type::optionTy(Type::intTy(4));
  BddManager::Ref Bdd = Ctx.predToBdd(Pred, KeyTy);

  for (const Value *Key : Ctx.enumerateType(KeyTy)) {
    std::vector<bool> Bits;
    Ctx.encodeValue(Key, KeyTy, Bits);
    bool FromBdd = Ctx.Mgr.get(Bdd, Bits) == Ctx.TrueV;
    bool Concrete = Ctx.applyClosure(Pred, Key)->isTrue();
    EXPECT_EQ(FromBdd, Concrete) << Key->str();
  }
}

//===----------------------------------------------------------------------===//
// Encoding round trips
//===----------------------------------------------------------------------===//

class EncodingRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(EncodingRoundTrip, DecodeInvertsEncode) {
  NvContext Ctx(5);
  DiagnosticEngine Diags;
  TypePtr Ty = parseTypeString(GetParam(), Diags);
  ASSERT_TRUE(Ty) << Diags.str();
  for (const Value *V : Ctx.enumerateType(Ty)) {
    std::vector<bool> Bits;
    Ctx.encodeValue(V, Ty, Bits);
    EXPECT_EQ(Bits.size(), Ctx.Layout.widthOf(Ty));
    size_t Pos = 0;
    EXPECT_EQ(Ctx.decodeValue(Bits, Pos, Ty), V) << V->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Types, EncodingRoundTrip,
                         ::testing::Values("bool", "int4", "node", "edge",
                                           "option[int3]", "(int2, bool)",
                                           "{a : int2; b : option[bool]}",
                                           "option[(node, int2)]"));

//===----------------------------------------------------------------------===//
// Whole-program evaluation and simulation
//===----------------------------------------------------------------------===//

const char *Fig2b = R"nv(
include bgp
let nodes = 5
let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}

symbolic route : attribute

let trans e x = transBgp e x
let merge u x y = mergeBgp u x y

let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | 4n -> route
  | _ -> None

let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some b -> if u <> 4n then b.origin = 0n else true
)nv";

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

TEST(Simulate, Fig2bNoHijackWhenPeerSilent) {
  Program P = parseAndCheck(Fig2b);
  NvContext Ctx(P.numNodes());
  // symbolic route defaults to None: node 4 announces nothing.
  InterpProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);

  // Every node (including the silent peer, which learns the route back
  // from nodes 1 and 2) ends up routing to origin 0: the assert holds.
  auto Failed = checkAsserts(Eval, R);
  EXPECT_TRUE(Failed.empty());
  EXPECT_EQ(R.Labels[4]->Inner->Elems[4], Ctx.nodeV(0));
  for (uint32_t U : {0u, 1u, 2u, 3u}) {
    ASSERT_TRUE(R.Labels[U]->isSome()) << U;
    // origin is the last field in sorted label order
    // {comms, length, lp, med, origin}.
    EXPECT_EQ(R.Labels[U]->Inner->Elems[4], Ctx.nodeV(0)) << U;
  }
  // Path lengths: node 0 announces at 0; its neighbors see 1; node 3/4 two.
  EXPECT_EQ(R.Labels[0]->Inner->Elems[1]->I, 0u);
  EXPECT_EQ(R.Labels[1]->Inner->Elems[1]->I, 1u);
  EXPECT_EQ(R.Labels[2]->Inner->Elems[1]->I, 1u);
  EXPECT_EQ(R.Labels[3]->Inner->Elems[1]->I, 2u);
}

TEST(Simulate, Fig2bHijackWithBetterRoute) {
  Program P = parseAndCheck(Fig2b);
  NvContext Ctx(P.numNodes());

  // Node 4 announces a same-length route with a lower med: by the Fig. 2a
  // tie-breaking it beats node 0's route at nodes 1 and 2 (length 1 vs 1,
  // equal lp, med 10 < 80): traffic is hijacked.
  InterpProgramEvaluator Boot(Ctx, P);
  DiagnosticEngine Diags;
  ExprPtr RouteE = parseExprString(
      "let c : set[int] = {} in "
      "Some {length = 0; lp = 100; med = 10; comms = c; origin = 4n}",
      Diags);
  ASSERT_TRUE(RouteE);
  ASSERT_TRUE(typeCheckExpr(RouteE, Diags)) << Diags.str();
  const Value *Route = Boot.evalUnderGlobals(RouteE);

  InterpProgramEvaluator Eval(Ctx, P, {{"route", Route}});
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  auto Failed = checkAsserts(Eval, R);
  // Nodes 1 and 2 prefer the hijacker's route.
  EXPECT_EQ(R.Labels[1]->Inner->Elems[4], Ctx.nodeV(4));
  EXPECT_EQ(R.Labels[2]->Inner->Elems[4], Ctx.nodeV(4));
  EXPECT_FALSE(Failed.empty());
}

TEST(Simulate, ShortestPathHopCount) {
  // A 6-node line with a shortcut; attribute = option[int] hop count.
  const char *Src = R"nv(
let nodes = 6
let edges = {0n=1n;1n=2n;2n=3n;3n=4n;4n=5n;0n=4n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) =
  match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) =
  match x, y with
  | _, None -> x
  | None, _ -> y
  | Some a, Some b -> if a <= b then x else y
)nv";
  Program P = parseAndCheck(Src);
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  int Expected[6] = {0, 1, 2, 2, 1, 2}; // 0-4 shortcut pulls 3,4,5 closer
  for (uint32_t U = 0; U < 6; ++U) {
    ASSERT_TRUE(R.Labels[U]->isSome());
    EXPECT_EQ(R.Labels[U]->Inner->I, static_cast<uint64_t>(Expected[U])) << U;
  }
}

TEST(Simulate, IncrementalAndFullMergeAgree) {
  Program P = parseAndCheck(Fig2b);
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator E1(Ctx, P);
  SimOptions Fast;
  SimResult R1 = simulate(P, E1, Fast);
  SimOptions Slow;
  Slow.IncrementalMerge = false;
  InterpProgramEvaluator E2(Ctx, P);
  SimResult R2 = simulate(P, E2, Slow);
  ASSERT_TRUE(R1.Converged && R2.Converged);
  EXPECT_EQ(R1.Labels, R2.Labels); // interned: pointer equality is semantic
}

TEST(Simulate, RequireTracksAssignment) {
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
symbolic x : int
require x < 10
let init (u : node) = x
let trans (e : edge) (v : int) = v
let merge (u : node) (a : int) (b : int) = a
)nv";
  Program P = parseAndCheck(Src);
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Ok(Ctx, P, {{"x", Ctx.intV(5)}});
  EXPECT_TRUE(Ok.requiresHold());
  InterpProgramEvaluator Bad(Ctx, P, {{"x", Ctx.intV(50)}});
  EXPECT_FALSE(Bad.requiresHold());
}

TEST(Simulate, MapValuedAttributes) {
  // Attributes are whole dictionaries (the all-prefixes pattern): each of
  // two prefixes is announced by a different node; everyone learns both.
  const char *Src = R"nv(
let nodes = 3
let edges = {0n=1n;1n=2n}
type attribute = dict[int2, option[int]]

let init (u : node) =
  let base : attribute = createDict None in
  match u with
  | 0n -> base[0u2 := Some 0]
  | 2n -> base[1u2 := Some 0]
  | _ -> base

let trans (e : edge) (x : attribute) =
  map (fun v -> match v with | None -> None | Some d -> Some (d + 1)) x

let merge (u : node) (x : attribute) (y : attribute) =
  combine (fun a b ->
    match a, b with
    | _, None -> a
    | None, _ -> b
    | Some d1, Some d2 -> if d1 <= d2 then a else b) x y
)nv";
  Program P = parseAndCheck(Src);
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);

  auto DistTo = [&](uint32_t U, uint64_t Prefix) -> const Value * {
    return Ctx.mapGet(R.Labels[U], Ctx.intV(Prefix, 2));
  };
  EXPECT_EQ(DistTo(0, 0)->Inner->I, 0u);
  EXPECT_EQ(DistTo(1, 0)->Inner->I, 1u);
  EXPECT_EQ(DistTo(2, 0)->Inner->I, 2u);
  EXPECT_EQ(DistTo(0, 1)->Inner->I, 2u);
  EXPECT_EQ(DistTo(2, 1)->Inner->I, 0u);
  // Unannounced prefixes stay None everywhere.
  EXPECT_TRUE(DistTo(1, 2)->isNone());
}

} // namespace
