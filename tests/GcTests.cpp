//===- GcTests.cpp - MTBDD garbage-collection tests --------------------------===//
//
// Stress tests of the mark-and-sweep collector: pinned state survives a
// sweep + remap with identical observable behaviour, a stress watermark
// (collect at every safe point) leaves every analysis bit-identical to a
// GC-off run at any pool size, and the cross-scenario reuse loops return
// the node count to the pinned baseline after every scenario.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "bdd/Mtbdd.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

using namespace nv;

namespace {

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

/// Shortest-path routing with an all-nodes-reachable assertion (same
/// program family as ParallelTests, so violation lists are non-trivial).
std::string spProgram(uint32_t Nodes,
                      const std::vector<std::pair<int, int>> &Links) {
  std::string Edges;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Edges += ";";
    Edges += std::to_string(Links[I].first) + "n=" +
             std::to_string(Links[I].second) + "n";
  }
  return "let nodes = " + std::to_string(Nodes) +
         "\n"
         "let edges = {" +
         Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

const std::vector<std::pair<int, int>> Line = {{0, 1}, {1, 2}, {2, 3}};

std::vector<std::tuple<std::string, uint32_t, std::string>>
violationKeys(const FtCheckResult &R) {
  std::vector<std::tuple<std::string, uint32_t, std::string>> Out;
  for (const FtViolation &V : R.Violations)
    Out.push_back({V.Scenario.str(), V.Node, V.Route->str()});
  return Out;
}

/// Scoped NV_GC_WATERMARK override: contexts created inside the scope pick
/// the value up in their BddManager constructor.
struct ScopedWatermarkEnv {
  explicit ScopedWatermarkEnv(const char *V) {
    setenv("NV_GC_WATERMARK", V, /*overwrite=*/1);
  }
  ~ScopedWatermarkEnv() { unsetenv("NV_GC_WATERMARK"); }
};

//===----------------------------------------------------------------------===//
// Pinned state survives sweep + remap
//===----------------------------------------------------------------------===//

TEST(Gc, PinnedLabelsSurviveSweepAndRemap) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, FtOptions{}, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();

  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, *Meta);
  SimResult R = simulate(*Meta, Eval);
  ASSERT_TRUE(R.Converged);

  // Pin every label, then snapshot observable behaviour.
  for (const Value *L : R.Labels)
    Ctx.pinValue(L);
  const Value *L1 = R.Labels[1];
  ASSERT_EQ(L1->K, Value::Kind::Map);
  unsigned Bits = L1->KeyBits;
  std::vector<bool> Key(Bits, false);
  const void *RouteBefore = Ctx.Mgr.get(L1->MapRoot, Key);
  std::vector<std::pair<std::vector<int8_t>, const void *>> CubesBefore;
  Ctx.Mgr.forEachCube(L1->MapRoot, Bits,
                      [&](const std::vector<int8_t> &C, const void *Leaf) {
                        CubesBefore.push_back({C, Leaf});
                      });
  std::string StrBefore = L1->str();

  // Allocate garbage, then sweep. The unpinned intermediate diagrams die;
  // the labels must not.
  uint64_t Collections0 = Ctx.Mgr.gcStats().Collections;
  size_t Reclaimed = Ctx.Mgr.collectGarbage();
  EXPECT_EQ(Ctx.Mgr.gcStats().Collections, Collections0 + 1);
  EXPECT_GT(Reclaimed, 0u);

  // Pointer-identical leaf payloads (interned values are stable), same
  // cubes, same rendering; set() still works on the remapped root.
  EXPECT_EQ(Ctx.Mgr.get(L1->MapRoot, Key), RouteBefore);
  std::vector<std::pair<std::vector<int8_t>, const void *>> CubesAfter;
  Ctx.Mgr.forEachCube(L1->MapRoot, Bits,
                      [&](const std::vector<int8_t> &C, const void *Leaf) {
                        CubesAfter.push_back({C, Leaf});
                      });
  EXPECT_EQ(CubesAfter, CubesBefore);
  EXPECT_EQ(L1->str(), StrBefore);

  BddManager::Ref Updated = Ctx.Mgr.set(L1->MapRoot, Key, RouteBefore);
  EXPECT_EQ(Updated, L1->MapRoot); // same key -> same payload is a no-op
  EXPECT_EQ(Ctx.Mgr.get(Updated, Key), RouteBefore);

  for (const Value *L : R.Labels)
    Ctx.unpinValue(L);
}

//===----------------------------------------------------------------------===//
// Stress watermark: bit-identical results at any pool size
//===----------------------------------------------------------------------===//

TEST(Gc, StressWatermarkNaiveBitIdenticalAcrossPoolSizes) {
  Program P = parseAndCheck(spProgram(4, Line));

  // GC-off reference (default huge watermark; only the between-scenario
  // resets run).
  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  {
    NvContext Ctx(P.numNodes());
    Ctx.Mgr.setGcWatermark(0);
    InterpProgramEvaluator Eval(Ctx, P);
    Ref = violationKeys(naiveFaultTolerance(P, Eval, FtOptions{}, Ctx.noneV()));
    ASSERT_FALSE(Ref.empty());
  }

  // Stress: collect at every simulator safe point, serial and sharded.
  ScopedWatermarkEnv Env("1");
  {
    NvContext Ctx(P.numNodes());
    ASSERT_EQ(Ctx.Mgr.gcWatermark(), 1u);
    InterpProgramEvaluator Eval(Ctx, P);
    FtCheckResult R = naiveFaultTolerance(P, Eval, FtOptions{}, Ctx.noneV());
    EXPECT_EQ(violationKeys(R), Ref);
    EXPECT_GT(Ctx.Mgr.gcStats().Collections, 0u);
  }
  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    FtCheckResult R = naiveFaultToleranceParallel(P, FtOptions{}, Pool);
    EXPECT_EQ(violationKeys(R), Ref) << Threads << " threads";
  }
}

TEST(Gc, StressWatermarkMetaAnalysisBitIdentical) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;

  FtRunResult Off = runFaultTolerance(P, FtOptions{}, /*Compiled=*/false,
                                      Diags);
  ASSERT_TRUE(Off.Converged) << Diags.str();

  ScopedWatermarkEnv Env("1");
  for (unsigned Threads : {1u, 2u, 8u}) {
    FtOptions Opts;
    Opts.Threads = Threads;
    FtRunResult On = runFaultTolerance(P, Opts, /*Compiled=*/false, Diags);
    ASSERT_TRUE(On.Converged);
    // Same fixpoint trajectory (pop-for-pop) and same violation order.
    EXPECT_EQ(On.Stats.Pops, Off.Stats.Pops) << Threads;
    EXPECT_EQ(violationKeys(On.Check), violationKeys(Off.Check)) << Threads;
  }
}

//===----------------------------------------------------------------------===//
// Cross-scenario reuse: node count returns to the pinned baseline
//===----------------------------------------------------------------------===//

TEST(Gc, NodeCountReturnsToPinnedBaselineBetweenScenarios) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, FtOptions{}, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();

  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, *Meta);

  // The first run fills the lazily-created pinned state (trans/merge
  // partial applications, predicate cache); afterwards every collected
  // run must land on exactly the same floor.
  size_t Baseline = 0;
  for (int Run = 0; Run < 3; ++Run) {
    SimResult R = simulate(*Meta, Eval);
    ASSERT_TRUE(R.Converged);
    EXPECT_GT(Ctx.Mgr.numNodes(), 2u);
    Ctx.resetBetweenRuns();
    if (Run == 0)
      Baseline = Ctx.Mgr.numNodes();
    else
      EXPECT_EQ(Ctx.Mgr.numNodes(), Baseline) << "run " << Run;
  }
  EXPECT_EQ(Ctx.Mgr.gcStats().FloorAfterLastGc, Baseline);
}

//===----------------------------------------------------------------------===//
// Simulator MaxSteps diagnostic
//===----------------------------------------------------------------------===//

TEST(Simulator, MaxStepsExceededFilesDiagnostic) {
  Program P = parseAndCheck(spProgram(4, Line));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);

  DiagnosticEngine Diags;
  SimOptions Opts;
  Opts.Budget.MaxSteps = 2; // the 4-node fixpoint needs more pops than this
  Opts.Diags = &Diags;
  SimResult R = simulate(P, Eval, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::StepBudgetExceeded);
  EXPECT_NE(Diags.str().find("did not converge"), std::string::npos)
      << Diags.str();

  // Without a sink the bound still stops the run, silently, with the same
  // structured outcome.
  SimOptions Quiet;
  Quiet.Budget.MaxSteps = 2;
  SimResult Q = simulate(P, Eval, Quiet);
  EXPECT_FALSE(Q.Converged);
  EXPECT_EQ(Q.Outcome.Status, RunStatus::StepBudgetExceeded);
}

} // namespace
