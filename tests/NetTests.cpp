//===- NetTests.cpp - Topology + generated-program tests ---------------------===//

#include "eval/Compile.h"
#include "eval/ProgramEvaluator.h"
#include "net/Generators.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <gtest/gtest.h>

#include <set>

using namespace nv;

namespace {

TEST(Topology, FatTreeCounts) {
  for (unsigned K : {4u, 6u, 8u}) {
    FatTree FT(K);
    Topology T = FT.topology();
    EXPECT_EQ(T.NumNodes, 5 * K * K / 4) << K;
    EXPECT_EQ(T.Links.size(), static_cast<size_t>(K) * K * K / 2) << K;
    EXPECT_EQ(FT.leaves().size(), static_cast<size_t>(K) * K / 2) << K;
    // Every link endpoint is a declared node, and layers differ by one.
    for (const auto &[U, V] : T.Links) {
      EXPECT_LT(U, T.NumNodes);
      EXPECT_LT(V, T.NumNodes);
      int LU = static_cast<int>(FT.layerOf(U));
      int LV = static_cast<int>(FT.layerOf(V));
      EXPECT_EQ(LV - LU, 1) << U << "~" << V;
    }
  }
}

TEST(Topology, UsCarrierShape) {
  Topology T = usCarrierTopology();
  EXPECT_EQ(T.NumNodes, 174u);
  EXPECT_EQ(T.Links.size(), 410u);
  // Deterministic: same seed, same graph.
  Topology T2 = usCarrierTopology();
  EXPECT_EQ(T.Links, T2.Links);
  // No duplicate links.
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  for (auto [U, V] : T.Links) {
    if (U > V)
      std::swap(U, V);
    EXPECT_TRUE(Seen.insert({U, V}).second);
  }
}

Program load(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = loadGenerated(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  return *P;
}

TEST(Generators, SpSingleSimulatesAndAsserts) {
  Program P = load(generateSpSingle(4));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());
}

TEST(Generators, FatSingleSimulatesAndAsserts) {
  Program P = load(generateFatSingle(4));
  NvContext Ctx(P.numNodes());
  CompiledProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());
}

TEST(Generators, FatPolicyDropsValleys) {
  // Under the valley-free policy, the hop counts must match SP hop counts
  // (valley paths are never shortest in a fat tree), and all routes keep
  // origin = dest: simulate both and compare path lengths.
  Program SP = load(generateSpSingle(4));
  Program FAT = load(generateFatSingle(4));
  NvContext Ctx(SP.numNodes());
  InterpProgramEvaluator ESP(Ctx, SP), EFAT(Ctx, FAT);
  SimResult RSP = simulate(SP, ESP), RFAT = simulate(FAT, EFAT);
  ASSERT_TRUE(RSP.Converged && RFAT.Converged);
  for (uint32_t U = 0; U < SP.numNodes(); ++U) {
    ASSERT_TRUE(RSP.Labels[U]->isSome());
    ASSERT_TRUE(RFAT.Labels[U]->isSome());
    // length is field index 1 in sorted order {comms,length,lp,med,origin}.
    EXPECT_EQ(RSP.Labels[U]->Inner->Elems[1], RFAT.Labels[U]->Inner->Elems[1])
        << U;
  }
}

TEST(Generators, SpAllPrefixesComputesAllDistances) {
  Program P = load(generateSpAllPrefixes(4));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  FatTree FT(4);
  auto Leaves = FT.leaves();
  // Every node has a route to every prefix; a leaf's own prefix is 0 hops.
  for (uint32_t U = 0; U < P.numNodes(); ++U)
    for (size_t Pfx = 0; Pfx < Leaves.size(); ++Pfx) {
      const Value *D = Ctx.mapGet(R.Labels[U], Ctx.intV(Pfx, 16));
      ASSERT_TRUE(D->isSome()) << U << " prefix " << Pfx;
      if (U == Leaves[Pfx])
        EXPECT_EQ(D->Inner->I, 0u);
      else
        EXPECT_GE(D->Inner->I, 1u);
    }
}

TEST(Generators, FatAllPrefixesAgreesWithSpOnDistances) {
  Program PS = load(generateSpAllPrefixes(4));
  Program PF = load(generateFatAllPrefixes(4));
  NvContext Ctx(PS.numNodes());
  InterpProgramEvaluator ES(Ctx, PS), EF(Ctx, PF);
  SimResult RS = simulate(PS, ES), RF = simulate(PF, EF);
  ASSERT_TRUE(RS.Converged && RF.Converged);
  FatTree FT(4);
  for (uint32_t U = 0; U < PS.numNodes(); ++U)
    for (size_t Pfx = 0; Pfx < FT.leaves().size(); ++Pfx) {
      const Value *DS = Ctx.mapGet(RS.Labels[U], Ctx.intV(Pfx, 16));
      const Value *DF = Ctx.mapGet(RF.Labels[U], Ctx.intV(Pfx, 16));
      ASSERT_TRUE(DF->isSome());
      // rt = {dn; len}: len is field 1 in sorted order.
      EXPECT_EQ(DS->Inner->I, DF->Inner->Elems[1]->I) << U << "/" << Pfx;
    }
}

TEST(Generators, UsCarrierSimulatesAndAsserts) {
  Program P = load(generateUsCarrier());
  NvContext Ctx(P.numNodes());
  CompiledProgramEvaluator Eval(Ctx, P);
  SimResult R = simulate(P, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());
}

TEST(Generators, SpSingleVerifiesWithSmt) {
  Program P = load(generateSpSingle(4));
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

TEST(Generators, FatSingleVerifiesWithSmt) {
  Program P = load(generateFatSingle(4));
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

} // namespace
