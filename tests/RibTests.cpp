//===- RibTests.cpp - Multi-protocol RIB model tests (Sec. 4.1, Fig. 9) ------===//

#include "eval/ProgramEvaluator.h"
#include "frontend/Config.h"
#include "frontend/Translate.h"
#include "net/Generators.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

/// Fig. 1's flavor: A statically routes a prefix and injects it into OSPF
/// (metric 20, distance 70); B carries it in OSPF and redistributes OSPF
/// into BGP; C speaks only BGP.
const char *MixedConfig = R"cfg(
router A
interface neighbor B cost 5
ip route 192.168.1.0/24
router ospf 1
redistribute static metric 20
distance 70

router B
interface neighbor A cost 5
interface neighbor C
router ospf 1
router bgp 2
redistribute ospf

router C
interface neighbor B
router bgp 3
)cfg";

NetworkConfig parseCfg(const std::string &Text) {
  DiagnosticEngine Diags;
  auto Net = parseConfigs(Text, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.str();
  return *Net;
}

TEST(RibConfig, ParsesProtocolBlocks) {
  NetworkConfig Net = parseCfg(MixedConfig);
  ASSERT_EQ(Net.Routers.size(), 3u);
  const RouterConfig &A = Net.Routers[0];
  EXPECT_TRUE(A.OspfEnabled);
  EXPECT_FALSE(A.BgpEnabled);
  EXPECT_TRUE(A.OspfRedistStatic);
  EXPECT_EQ(A.OspfRedistMetric, 20u);
  EXPECT_EQ(A.OspfDistance, 70u);
  EXPECT_EQ(A.OspfCosts.at("B"), 5u);
  const RouterConfig &B = Net.Routers[1];
  EXPECT_TRUE(B.OspfEnabled);
  EXPECT_TRUE(B.BgpEnabled);
  EXPECT_TRUE(B.BgpRedistOspf);
  EXPECT_TRUE(usesRibModel(Net));
}

TEST(RibTranslate, RedistributionChainEndToEnd) {
  NetworkConfig Net = parseCfg(MixedConfig);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  ASSERT_EQ(T->Prefixes.size(), 1u);
  Prefix P = T->Prefixes[0];

  std::string Src = T->NvSource + nvAssertReachableRib(P);
  DiagnosticEngine D2;
  auto Prog = loadGenerated(Src, D2);
  ASSERT_TRUE(Prog.has_value()) << D2.str() << "\n" << Src;

  NvContext Ctx(3);
  InterpProgramEvaluator Eval(Ctx, *Prog);
  SimResult R = simulate(*Prog, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());

  const Value *Key = Ctx.tupleV({Ctx.intV(P.Addr), Ctx.intV(P.Len, 6)});
  // ribEntry sorted fields: {bgp, connected, ospf, selected, static}.
  auto EntryAt = [&](uint32_t U) { return Ctx.mapGet(R.Labels[U], Key); };

  // A selects its static route (selected = 1).
  const Value *EA = EntryAt(0);
  ASSERT_TRUE(EA->Elems[4]->isSome());
  EXPECT_EQ(EA->Elems[3]->Inner->I, 1u);

  // B carries the OSPF route: cost = redist metric 20 + link cost 5,
  // selected = 2 (ospf).
  const Value *EB = EntryAt(1);
  ASSERT_TRUE(EB->Elems[2]->isSome());
  EXPECT_EQ(EB->Elems[2]->Inner->Elems[0]->I, 25u);
  EXPECT_EQ(EB->Elems[3]->Inner->I, 2u);
  // C echoes the redistributed route back to B over eBGP; it sits in B's
  // BGP slot but loses the administrative-distance selection to OSPF.
  EXPECT_TRUE(EB->Elems[0]->isSome());

  // C learns it via BGP redistribution at B: selected = 3 (bgp), one hop.
  const Value *EC = EntryAt(2);
  ASSERT_TRUE(EC->Elems[0]->isSome());
  EXPECT_EQ(EC->Elems[3]->Inner->I, 3u);
  EXPECT_TRUE(EC->Elems[2]->isNone()); // OSPF does not reach C
}

TEST(RibTranslate, OspfPrefersLowerCostPath) {
  // Triangle with asymmetric costs: A-B direct cost 10, A-C-B cost 2+2.
  const char *Cfg = R"cfg(
router A
interface neighbor B cost 10
interface neighbor C cost 2
connected 10.1.0.0/16
router ospf 1
redistribute connected
network 10.1.0.0/16

router B
interface neighbor A cost 10
interface neighbor C cost 2
router ospf 1

router C
interface neighbor A cost 2
interface neighbor B cost 2
router ospf 1
)cfg";
  NetworkConfig Net = parseCfg(Cfg);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  std::string Src = T->NvSource + nvAssertReachableRib(T->Prefixes[0]);
  DiagnosticEngine D2;
  auto Prog = loadGenerated(Src, D2);
  ASSERT_TRUE(Prog.has_value()) << D2.str() << "\n" << Src;

  NvContext Ctx(3);
  InterpProgramEvaluator Eval(Ctx, *Prog);
  SimResult R = simulate(*Prog, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());

  Prefix P = T->Prefixes[0];
  const Value *Key = Ctx.tupleV({Ctx.intV(P.Addr), Ctx.intV(P.Len, 6)});
  // B's OSPF cost must be 4 (via C), not 10 (direct).
  const Value *EB = Ctx.mapGet(R.Labels[1], Key);
  ASSERT_TRUE(EB->Elems[2]->isSome());
  EXPECT_EQ(EB->Elems[2]->Inner->Elems[0]->I, 4u);
  // C: cost 2.
  const Value *EC = Ctx.mapGet(R.Labels[2], Key);
  EXPECT_EQ(EC->Elems[2]->Inner->Elems[0]->I, 2u);
}

TEST(RibTranslate, AdministrativeDistanceDecidesOspfVsBgp) {
  // D hears the same prefix via OSPF (from A) and via eBGP (from E which
  // originates it into BGP). With the default distances OSPF(110) beats
  // BGP(170); raising D's OSPF distance above 170 flips the choice.
  const char *Base = R"cfg(
router A
interface neighbor D
connected 10.9.0.0/16
router ospf 1
redistribute connected

router E
interface neighbor D
router bgp 5
network 10.9.0.0/16

router D
interface neighbor A
interface neighbor E
router bgp 9
router ospf 1
)cfg";
  for (bool RaiseOspf : {false, true}) {
    bool LowerOspf = RaiseOspf; // raised above BGP's 170 => BGP selected
    std::string Cfg(Base);
    if (LowerOspf)
      Cfg += "distance 180\n"; // appended inside D's ospf block
    NetworkConfig Net = parseCfg(Cfg);
    DiagnosticEngine Diags;
    auto T = translateConfigs(Net, Diags);
    ASSERT_TRUE(T.has_value()) << Diags.str();
    std::string Src = T->NvSource + nvAssertReachableRib(T->Prefixes[0]);
    DiagnosticEngine D2;
    auto Prog = loadGenerated(Src, D2);
    ASSERT_TRUE(Prog.has_value()) << D2.str();

    NvContext Ctx(3);
    InterpProgramEvaluator Eval(Ctx, *Prog);
    SimResult R = simulate(*Prog, Eval);
    ASSERT_TRUE(R.Converged);
    Prefix P = T->Prefixes[0];
    const Value *Key = Ctx.tupleV({Ctx.intV(P.Addr), Ctx.intV(P.Len, 6)});
    const Value *ED = Ctx.mapGet(R.Labels[2], Key); // router D is index 2
    ASSERT_TRUE(ED->Elems[3]->isSome()) << "selected must exist";
    // Both protocol slots are populated...
    ASSERT_TRUE(ED->Elems[0]->isSome());
    ASSERT_TRUE(ED->Elems[2]->isSome());
    // ...and the admin distance decides: bgp(3) once OSPF's distance is
    // raised past BGP's 170, ospf(2) by default.
    EXPECT_EQ(ED->Elems[3]->Inner->I, LowerOspf ? 3u : 2u);
  }
}

TEST(RibTranslate, SmtVerifiesRibReachability) {
  NetworkConfig Net = parseCfg(MixedConfig);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  std::string Src = T->NvSource + nvAssertReachableRib(T->Prefixes[0]);
  DiagnosticEngine D2;
  auto Prog = loadGenerated(Src, D2);
  ASSERT_TRUE(Prog.has_value()) << D2.str();
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(*Prog, Opts, D2);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

TEST(RibTranslate, BgpOnlyConfigsKeepTheLeanModel) {
  // No OSPF/redistribution: the original BGP-only translation is used
  // (attribute = dict[prefix, option[bgpRoute]]).
  const char *Cfg = R"cfg(
router A
interface neighbor B
network 10.0.0.0/8

router B
interface neighbor A
router bgp 2
)cfg";
  NetworkConfig Net = parseCfg(Cfg);
  EXPECT_FALSE(usesRibModel(Net));
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  EXPECT_NE(T->NvSource.find("type rib = option[bgpRoute]"), std::string::npos);
  EXPECT_EQ(T->NvSource.find("ribEntry"), std::string::npos);
}

} // namespace
