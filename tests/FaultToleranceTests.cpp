//===- FaultToleranceTests.cpp - Fig. 5 meta-protocol tests -----------------===//
//
// The MTBDD fault-tolerance analysis is checked against the naive
// per-scenario simulation baseline: for every scenario, indexing the
// meta-program's converged dict must give exactly the label the scenario's
// own simulation computes.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

/// Shortest-path routing with an all-nodes-reachable assertion, on a
/// configurable topology.
std::string spProgram(uint32_t Nodes,
                      const std::vector<std::pair<int, int>> &Links) {
  std::string Edges;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Edges += ";";
    Edges += std::to_string(Links[I].first) + "n=" +
             std::to_string(Links[I].second) + "n";
  }
  return "let nodes = " + std::to_string(Nodes) +
         "\n"
         "let edges = {" +
         Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

/// Diamond: 0-1, 0-2, 1-3, 2-3 — survives any single link failure.
const std::vector<std::pair<int, int>> Diamond = {{0, 1}, {0, 2}, {1, 3},
                                                  {2, 3}};
/// Line: 0-1-2-3 — any link failure cuts reachability.
const std::vector<std::pair<int, int>> Line = {{0, 1}, {1, 2}, {2, 3}};

/// Oracle check: the meta-program's per-scenario routes equal the naive
/// per-scenario simulation's routes, for every node and scenario.
void expectMatchesNaive(const std::string &Src, const FtOptions &Opts) {
  Program P = parseAndCheck(Src);
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, Opts, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();

  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator MetaEval(Ctx, *Meta);
  SimResult MetaR = simulate(*Meta, MetaEval);
  ASSERT_TRUE(MetaR.Converged);

  InterpProgramEvaluator BaseEval(Ctx, P);
  for (const FtScenario &S : enumerateScenarios(P, Opts)) {
    SimResult NaiveR = simulateScenario(P, BaseEval, S, Ctx.noneV());
    ASSERT_TRUE(NaiveR.Converged) << S.str();
    const Value *Key = scenarioKey(Ctx, S, Opts);
    for (uint32_t U = 0; U < P.numNodes(); ++U) {
      const Value *FromMeta = Ctx.mapGet(MetaR.Labels[U], Key);
      EXPECT_EQ(FromMeta, NaiveR.Labels[U])
          << "scenario " << S.str() << " node " << U << ": meta="
          << FromMeta->str() << " naive=" << NaiveR.Labels[U]->str();
    }
  }
}

TEST(FaultTolerance, SingleLinkMatchesNaiveOnDiamond) {
  expectMatchesNaive(spProgram(4, Diamond), FtOptions{});
}

TEST(FaultTolerance, SingleLinkMatchesNaiveOnLine) {
  expectMatchesNaive(spProgram(4, Line), FtOptions{});
}

TEST(FaultTolerance, TwoLinksMatchesNaive) {
  FtOptions Opts;
  Opts.LinkFailures = 2;
  expectMatchesNaive(spProgram(4, Diamond), Opts);
}

TEST(FaultTolerance, NodeAndLinkMatchesNaive) {
  FtOptions Opts;
  Opts.NodeFailure = true;
  Opts.LinkFailures = 1;
  expectMatchesNaive(spProgram(4, Diamond), Opts);
}

TEST(FaultTolerance, NodeOnlyMatchesNaive) {
  FtOptions Opts;
  Opts.NodeFailure = true;
  Opts.LinkFailures = 0;
  expectMatchesNaive(spProgram(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}}),
                     Opts);
}

TEST(FaultTolerance, BgpPolicyMatchesNaive) {
  // The Fig. 2 BGP model (lp/med tie-breaking) under single link failure.
  const char *Src = R"nv(
include bgp
let nodes = 5
let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}
let trans e x = transBgp e x
let merge u x y = mergeBgp u x y
let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | _ -> None
let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some b -> b.origin = 0n
)nv";
  expectMatchesNaive(Src, FtOptions{});
}

TEST(FaultTolerance, DiamondSurvivesSingleFailure) {
  Program P = parseAndCheck(spProgram(4, Diamond));
  DiagnosticEngine Diags;
  FtRunResult R = runFaultTolerance(P, FtOptions{}, /*Compiled=*/false, Diags);
  ASSERT_TRUE(R.Converged) << Diags.str();
  EXPECT_TRUE(R.Check.holds());
  EXPECT_EQ(R.Check.ScenariosChecked, 4u);
}

TEST(FaultTolerance, LineViolatesSingleFailure) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  FtRunResult R = runFaultTolerance(P, FtOptions{}, /*Compiled=*/false, Diags);
  ASSERT_TRUE(R.Converged) << Diags.str();
  EXPECT_FALSE(R.Check.holds());
  // Failing link 1-2 cuts nodes 2 and 3; failing 2-3 cuts node 3; failing
  // 0-1 cuts 1, 2, 3.
  EXPECT_EQ(R.Check.Violations.size(), 6u);
}

TEST(FaultTolerance, DiamondDoesNotSurviveTwoFailures) {
  Program P = parseAndCheck(spProgram(4, Diamond));
  FtOptions Opts;
  Opts.LinkFailures = 2;
  DiagnosticEngine Diags;
  FtRunResult R = runFaultTolerance(P, Opts, /*Compiled=*/false, Diags);
  ASSERT_TRUE(R.Converged) << Diags.str();
  EXPECT_FALSE(R.Check.holds());
}

TEST(FaultTolerance, CompiledEvaluatorAgrees) {
  Program P = parseAndCheck(spProgram(4, Diamond));
  DiagnosticEngine Diags;
  FtRunResult RI = runFaultTolerance(P, FtOptions{}, false, Diags);
  FtRunResult RC = runFaultTolerance(P, FtOptions{}, true, Diags);
  ASSERT_TRUE(RI.Converged && RC.Converged);
  EXPECT_EQ(RI.Check.holds(), RC.Check.holds());
  EXPECT_EQ(RI.Check.Violations.size(), RC.Check.Violations.size());
}

TEST(FaultTolerance, SharingCollapsesScenarios) {
  // Fig. 4's insight: the number of distinct routes across scenarios is
  // far below the number of scenarios. On the diamond, node 3's dict over
  // 4+ scenarios holds at most 3 distinct routes.
  Program P = parseAndCheck(spProgram(4, Diamond));
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, FtOptions{}, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, *Meta);
  SimResult R = simulate(*Meta, Eval);
  ASSERT_TRUE(R.Converged);
  for (uint32_t U = 0; U < 4; ++U) {
    ASSERT_EQ(R.Labels[U]->K, Value::Kind::Map);
    EXPECT_LE(Ctx.Mgr.numDistinctLeaves(R.Labels[U]->MapRoot), 3u) << U;
  }
}

TEST(FaultTolerance, GeneratedProgramPrintsAndReparses) {
  Program P = parseAndCheck(spProgram(4, Diamond));
  DiagnosticEngine Diags;
  auto Meta = makeFaultTolerantProgram(P, FtOptions{}, Diags);
  ASSERT_TRUE(Meta.has_value()) << Diags.str();
  std::string Printed = printProgram(*Meta);
  DiagnosticEngine D2;
  auto Again = parseProgram(Printed, D2);
  ASSERT_TRUE(Again.has_value()) << D2.str() << "\n" << Printed;
  EXPECT_TRUE(typeCheck(*Again, D2)) << D2.str();
}

} // namespace
