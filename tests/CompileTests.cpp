//===- CompileTests.cpp - Closure compiler vs interpreter agreement ---------===//
//
// The compiled ("native") evaluator must agree with the tree-walking
// interpreter on every expression and every simulated network.
//
//===----------------------------------------------------------------------===//

#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "eval/Interp.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

/// Evaluates a closed expression both ways and checks agreement; returns
/// the (shared) result rendering.
std::string evalBoth(NvContext &Ctx, const std::string &Src) {
  DiagnosticEngine Diags;
  ExprPtr E = parseExprString(Src, Diags);
  EXPECT_TRUE(E) << Diags.str();
  if (!E)
    return "<parse error>";
  TypePtr T = typeCheckExpr(E, Diags);
  EXPECT_TRUE(T) << Src << "\n" << Diags.str();
  if (!T)
    return "<type error>";

  Interp I(Ctx);
  const Value *VI = I.eval(E.get(), nullptr);

  Compiler C(Ctx);
  CExpr CE = C.compile(E);
  Frame F;
  const Value *VC = CE(F);

  EXPECT_EQ(VI, VC) << Src << ": interp=" << VI->str()
                    << " compiled=" << VC->str();
  return VI->str();
}

class InterpCompiledAgreement : public ::testing::TestWithParam<const char *> {
};

TEST_P(InterpCompiledAgreement, SameResult) {
  NvContext Ctx(8);
  evalBoth(Ctx, GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Exprs, InterpCompiledAgreement,
    ::testing::Values(
        "1 + 2 - 1",
        "let x = 4 in x + x",
        "let f (x : int) (y : int) = x - y in f 10 3",
        "if 3 < 4 then Some 1 else None",
        "match (Some 3, None) with | (Some a, None) -> a | _ -> 0",
        "let r = {lp = 7; med = 2} in {r with med = r.lp}.med",
        "(1, (2, 3)).1.0",
        "let g (f : int -> int) = f 5 in g (fun x -> x + 1)",
        "let y = 3 in let f (x : int) = x + y in let y = 100 in f 1",
        "let m : dict[int4, int] = createDict 0 in (m[3u4 := 9])[3u4]",
        "let m : set[int4] = {1u4, 3u4} in (m[1u4], m[2u4])",
        "let m : dict[int4, int] = (createDict 1)[2u4 := 5] in "
        "(map (fun v -> v + 10) m)[2u4] + (map (fun v -> v + 10) m)[0u4]",
        "let a : dict[int4, int] = (createDict 1)[2u4 := 5] in "
        "let b : dict[int4, int] = (createDict 10)[3u4 := 70] in "
        "(combine (fun x y -> x + y) a b)[3u4]",
        "let m : dict[int4, option[int]] = createDict (Some 0) in "
        "(mapIte (fun k -> k > 3u4) "
        " (fun v -> match v with | None -> None | Some x -> Some (x + 1)) "
        " (fun v -> None) m)[9u4]",
        "match 2n with | 0n -> 10 | 2n -> 20 | _ -> 30",
        "let (a, b) = (4, 7) in a - b"));

const char *Fig2b = R"nv(
include bgp
let nodes = 5
let edges = {0n=1n;0n=2n;1n=4n;2n=4n;1n=3n;2n=3n}
symbolic route : attribute
let trans e x = transBgp e x
let merge u x y = mergeBgp u x y
let init (u : node) =
  match u with
  | 0n -> Some {length = 0; lp = 100; med = 80; comms = {}; origin = 0n}
  | 4n -> route
  | _ -> None
let assert (u : node) (x : attribute) =
  match x with
  | None -> false
  | Some b -> if u <> 4n then b.origin = 0n else true
)nv";

TEST(Compiled, SimulationAgreesWithInterpreter) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Fig2b, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();

  NvContext Ctx(P->numNodes());
  InterpProgramEvaluator EI(Ctx, *P);
  SimResult RI = simulate(*P, EI);
  CompiledProgramEvaluator EC(Ctx, *P);
  SimResult RC = simulate(*P, EC);

  ASSERT_TRUE(RI.Converged && RC.Converged);
  EXPECT_EQ(RI.Labels, RC.Labels);
  EXPECT_EQ(checkAsserts(EI, RI), checkAsserts(EC, RC));
}

TEST(Compiled, MapAttributeSimulationAgrees) {
  const char *Src = R"nv(
let nodes = 4
let edges = {0n=1n;1n=2n;2n=3n;0n=3n}
type attribute = dict[int2, option[int8]]
let init (u : node) =
  let base : attribute = createDict None in
  match u with
  | 0n -> base[0u2 := Some 0u8]
  | 3n -> base[1u2 := Some 0u8]
  | _ -> base
let trans (e : edge) (x : attribute) =
  map (fun v -> match v with | None -> None | Some d -> Some (d + 1u8)) x
let merge (u : node) (x : attribute) (y : attribute) =
  combine (fun a b ->
    match a, b with
    | _, None -> a
    | None, _ -> b
    | Some d1, Some d2 -> if d1 <= d2 then a else b) x y
)nv";
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();

  NvContext Ctx(P->numNodes());
  InterpProgramEvaluator EI(Ctx, *P);
  CompiledProgramEvaluator EC(Ctx, *P);
  SimResult RI = simulate(*P, EI);
  SimResult RC = simulate(*P, EC);
  ASSERT_TRUE(RI.Converged && RC.Converged);
  EXPECT_EQ(RI.Labels, RC.Labels);
}

TEST(Compiled, SymbolicAssignmentRespected) {
  const char *Src = R"nv(
let nodes = 2
let edges = {0n=1n}
symbolic seed : int
let init (u : node) = seed
let trans (e : edge) (x : int) = x
let merge (u : node) (a : int) (b : int) = if a <= b then a else b
)nv";
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  ASSERT_TRUE(P.has_value()) << Diags.str();
  ASSERT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  NvContext Ctx(2);
  CompiledProgramEvaluator EC(Ctx, *P, {{"seed", Ctx.intV(42)}});
  SimResult R = simulate(*P, EC);
  EXPECT_EQ(R.Labels[0], Ctx.intV(42));
  EXPECT_EQ(R.Labels[1], Ctx.intV(42));
}

TEST(Compiled, PredicateBddsWorkFromCompiledClosures) {
  // Symbolic evaluation (predToBdd) must also work when the predicate is a
  // CompiledClosure, via its sourceExpr/lookupFree hooks.
  NvContext Ctx(6);
  DiagnosticEngine Diags;
  ExprPtr E =
      parseExprString("fun (e : edge) -> fun (k : edge) -> e = k", Diags);
  ASSERT_TRUE(E);
  ASSERT_TRUE(typeCheckExpr(E, Diags)) << Diags.str();
  Compiler C(Ctx);
  CExpr CE = C.compile(E);
  Frame F;
  const Value *Outer = CE(F);
  const Value *Pred = Ctx.applyClosure(Outer, Ctx.edgeV(4, 1));

  BddManager::Ref Bdd = Ctx.predToBdd(Pred, Type::edgeTy());
  for (uint32_t U = 0; U < 6; ++U)
    for (uint32_t V = 0; V < 6; ++V) {
      std::vector<bool> Bits;
      Ctx.encodeValue(Ctx.edgeV(U, V), Type::edgeTy(), Bits);
      EXPECT_EQ(Ctx.Mgr.get(Bdd, Bits) == Ctx.TrueV, U == 4 && V == 1);
    }
}

} // namespace
