//===- FrontendTests.cpp - Config parsing / DAG / translation tests ----------===//

#include "eval/ProgramEvaluator.h"
#include "frontend/Config.h"
#include "frontend/RouteMapDag.h"
#include "frontend/Translate.h"
#include "net/Generators.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <gtest/gtest.h>

using namespace nv;

namespace {

/// The route-map of Fig. 10a, inside a minimal router.
const char *Fig10Config = R"cfg(
router A
ip community-list comm1 permit 12
ip community-list comm2 permit 34
ip prefix-list pfx permit 192.168.2.0/24
route-map RM1 permit 10
match community comm1
match ip address prefix-list pfx
set local-preference 200
route-map RM1 permit 20
match community comm2
set local-preference 100
)cfg";

NetworkConfig parseCfg(const std::string &Text) {
  DiagnosticEngine Diags;
  auto Net = parseConfigs(Text, Diags);
  EXPECT_TRUE(Net.has_value()) << Diags.str();
  return *Net;
}

TEST(ConfigParse, Fig10aStructure) {
  NetworkConfig Net = parseCfg(Fig10Config);
  ASSERT_EQ(Net.Routers.size(), 1u);
  const RouterConfig &A = Net.Routers[0];
  EXPECT_EQ(A.CommunityLists.at("comm1"), std::vector<uint32_t>{12});
  EXPECT_EQ(A.PrefixLists.at("pfx").size(), 1u);
  EXPECT_EQ(A.PrefixLists.at("pfx")[0].str(), "192.168.2.0/24");
  const RouteMap &RM = A.RouteMaps.at("RM1");
  ASSERT_EQ(RM.Clauses.size(), 2u);
  EXPECT_EQ(RM.Clauses[0].Seq, 10);
  EXPECT_EQ(*RM.Clauses[0].MatchCommunityList, "comm1");
  EXPECT_EQ(*RM.Clauses[0].MatchPrefixList, "pfx");
  EXPECT_EQ(*RM.Clauses[0].SetLocalPref, 200u);
  EXPECT_FALSE(RM.Clauses[1].MatchPrefixList.has_value());
  EXPECT_EQ(*RM.Clauses[1].SetLocalPref, 100u);
}

TEST(ConfigParse, BadStatementsRejected) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(parseConfigs("router A\nbogus statement", Diags).has_value());
  DiagnosticEngine D2;
  EXPECT_FALSE(parseConfigs("network 1.2.3.4/24", D2).has_value());
  DiagnosticEngine D3;
  EXPECT_FALSE(
      parseConfigs("router A\nip route 999.2.3.4/24", D3).has_value());
}

TEST(RouteMapDagTest, Fig10bShape) {
  NetworkConfig Net = parseCfg(Fig10Config);
  RouteMapDag D = buildRouteMapDag(Net.Routers[0].RouteMaps.at("RM1"));
  // Fig. 10b: comm1 at the root; its true-branch tests the prefix; its
  // false-branch tests comm2.
  const auto &Root = D.node(D.Root);
  EXPECT_EQ(Root.K, RouteMapDag::Node::Kind::CondCommunity);
  EXPECT_EQ(Root.ListName, "comm1");
  EXPECT_EQ(D.node(Root.True).K, RouteMapDag::Node::Kind::CondPrefix);
  EXPECT_EQ(D.node(Root.False).K, RouteMapDag::Node::Kind::CondCommunity);
  EXPECT_EQ(D.node(Root.False).ListName, "comm2");
  EXPECT_FALSE(D.prefixConditionsHoisted());
}

TEST(RouteMapDagTest, Fig10cHoisting) {
  NetworkConfig Net = parseCfg(Fig10Config);
  RouteMapDag D = buildRouteMapDag(Net.Routers[0].RouteMaps.at("RM1"));
  RouteMapDag H = hoistPrefixConditions(D);
  EXPECT_TRUE(H.prefixConditionsHoisted());
  // Fig. 10c: prefix test at the top, community tests below.
  const auto &Root = H.node(H.Root);
  EXPECT_EQ(Root.K, RouteMapDag::Node::Kind::CondPrefix);
  EXPECT_EQ(Root.ListName, "pfx");
  EXPECT_EQ(H.node(Root.True).K, RouteMapDag::Node::Kind::CondCommunity);
  EXPECT_EQ(H.node(Root.False).K, RouteMapDag::Node::Kind::CondCommunity);
  // On the prefix-false side the comm1-true path must fall through to
  // comm2 (lp 100), not to the lp 200 mutation.
  const auto &FalseSide = H.node(Root.False);
  EXPECT_EQ(FalseSide.ListName, "comm1");
  const auto &FT = H.node(FalseSide.True);
  EXPECT_EQ(FT.K, RouteMapDag::Node::Kind::CondCommunity);
  EXPECT_EQ(FT.ListName, "comm2");
}

/// Semantic check of the emitted Fig. 10d function: apply it to RIBs with
/// known tags/prefixes and check the resulting local preferences.
TEST(RouteMapDagTest, Fig10dSemantics) {
  NetworkConfig Net = parseCfg(Fig10Config);
  DiagnosticEngine Diags;
  std::string Fn = emitRouteMapFunction(
      "transRM1", Net.Routers[0], Net.Routers[0].RouteMaps.at("RM1"), Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

  Prefix Matching = Net.Routers[0].PrefixLists.at("pfx")[0];
  Prefix Other;
  Other.Addr = 0x0A000000; // 10.0.0.0/24
  Other.Len = 24;

  std::string Src =
      "type ipv4Prefix = (int, int6)\n"
      "type bgpRoute = {comms : set[int]; length : int; lp : int; "
      "med : int}\n"
      "type rib = option[bgpRoute]\n"
      "type attribute = dict[ipv4Prefix, rib]\n" +
      Fn +
      "let mkRoute (c : int) =\n"
      "  let tags : set[int] = {} in\n"
      "  Some {comms = tags[c := true]; length = 0; lp = 0; med = 0}\n"
      // A RIB with a comm1-tagged route at the matching prefix, a
      // comm1-tagged route at another prefix, and a comm2-tagged route.
      "let base : attribute = createDict None\n"
      "let ribIn : attribute = ((base[" +
      prefixKeyLiteral(Matching) + " := mkRoute 12])[" +
      prefixKeyLiteral(Other) + " := mkRoute 12])[" +
      "(167772672, 24u6) := mkRoute 34]\n"
      "let ribOut : attribute = transRM1 ribIn\n"
      "let lpAt (p : ipv4Prefix) =\n"
      "  match ribOut[p] with | None -> 0 - 1 | Some r -> r.lp\n"
      "let r1 = lpAt " + prefixKeyLiteral(Matching) + "\n"
      "let r2 = lpAt " + prefixKeyLiteral(Other) + "\n"
      "let r3 = lpAt (167772672, 24u6)\n";

  DiagnosticEngine D2;
  auto P = loadGenerated(Src, D2);
  ASSERT_TRUE(P.has_value()) << D2.str() << "\n" << Src;

  // No topology needed: evaluate the globals directly.
  NvContext Ctx(2);
  Interp I(Ctx);
  EnvPtr Env;
  for (const DeclPtr &D : P->Decls)
    if (D->Kind == DeclKind::Let)
      Env = envBind(Env, D->Name, I.eval(D->Body.get(), Env));
  // comm1 + matching prefix -> lp 200 (clause 10).
  EXPECT_EQ(envLookup(Env.get(), "r1")->I, 200u);
  // comm1 + other prefix -> falls through; no comm2 -> dropped (-1).
  EXPECT_EQ(envLookup(Env.get(), "r2"),
            Ctx.intV(static_cast<uint64_t>(0) - 1, 32));
  // comm2 -> lp 100 (clause 20).
  EXPECT_EQ(envLookup(Env.get(), "r3")->I, 100u);
}

//===----------------------------------------------------------------------===//
// End-to-end: configs -> NV -> simulate + verify
//===----------------------------------------------------------------------===//

/// A 4-router square with tagging at B and filtering at C: A originates
/// two prefixes, D should route around C for tagged routes.
const char *SquareConfig = R"cfg(
router A
interface neighbor B
interface neighbor C
ip route 10.0.1.0/24
network 10.0.2.0/24

router B
interface neighbor A
interface neighbor D
router bgp 2
neighbor D route-map TAG out
ip community-list all permit 55
route-map TAG permit 10
set community 55

router C
interface neighbor A
interface neighbor D
router bgp 3
neighbor D route-map NOOP out
route-map NOOP permit 10

router D
interface neighbor B
interface neighbor C
router bgp 4
neighbor B route-map DROPTAG in
ip community-list tagged permit 55
route-map DROPTAG deny 5
match community tagged
route-map DROPTAG permit 10
)cfg";

TEST(Translate, SquareEndToEnd) {
  NetworkConfig Net = parseCfg(SquareConfig);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  ASSERT_EQ(T->Prefixes.size(), 2u);

  std::string Src = T->NvSource + nvAssertReachable(T->Prefixes[0]);
  DiagnosticEngine D2;
  auto P = loadGenerated(Src, D2);
  ASSERT_TRUE(P.has_value()) << D2.str() << "\n" << Src;

  NvContext Ctx(P->numNodes());
  InterpProgramEvaluator Eval(Ctx, *P);
  SimResult R = simulate(*P, Eval);
  ASSERT_TRUE(R.Converged);
  EXPECT_TRUE(checkAsserts(Eval, R).empty());

  // D (router 3) must have learned A's prefixes via C (unfiltered): its
  // routes are present and untagged.
  const Value *DRoute = Ctx.mapGet(R.Labels[3], Ctx.tupleV({
      Ctx.intV(T->Prefixes[0].Addr), Ctx.intV(T->Prefixes[0].Len, 6)}));
  ASSERT_TRUE(DRoute->isSome());
  // Route record sorted fields: {comms, length, lp, med}; tag 55 unset.
  const Value *Comms = DRoute->Inner->Elems[0];
  EXPECT_EQ(Ctx.mapGet(Comms, Ctx.intV(55)), Ctx.FalseV);
  // Two hops: A -> C -> D.
  EXPECT_EQ(DRoute->Inner->Elems[1]->I, 2u);
}

TEST(Translate, SquareVerifiesWithSmt) {
  NetworkConfig Net = parseCfg(SquareConfig);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  ASSERT_TRUE(T.has_value()) << Diags.str();
  std::string Src = T->NvSource + nvAssertReachable(T->Prefixes[0]);
  DiagnosticEngine D2;
  auto P = loadGenerated(Src, D2);
  ASSERT_TRUE(P.has_value()) << D2.str();
  VerifyOptions Opts;
  VerifyResult R = verifyProgram(*P, Opts, D2);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << R.Counterexample;
}

TEST(Translate, UndefinedListRejected) {
  const char *Bad = R"cfg(
router A
interface neighbor B
router bgp 1
neighbor B route-map RM out
route-map RM permit 10
match community nosuchlist
set local-preference 200

router B
interface neighbor A
)cfg";
  NetworkConfig Net = parseCfg(Bad);
  DiagnosticEngine Diags;
  auto T = translateConfigs(Net, Diags);
  EXPECT_FALSE(T.has_value());
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
