//===- GovernorTests.cpp - Run-governance layer tests ------------------------===//
//
// Tests of the Governor/RunBudget/CancelToken/FaultInject layer: budgets
// trip mid-run with structured outcomes instead of aborts, cancellation
// fans out across ThreadPool shards while untripped siblings stay
// bit-identical to an ungoverned run, deterministic fault injection skips
// exactly the governed job it hits, and the CLI exit-code mapping is
// stable.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"
#include "support/Governor.h"
#include "support/Journal.h"
#include "support/Resume.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <set>
#include <thread>
#include <tuple>

#include <unistd.h>

using namespace nv;

namespace {

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

/// Shortest-path routing with an all-nodes-reachable assertion; the same
/// family GcTests/ParallelTests use, so naive fault tolerance has a
/// non-trivial violation list to compare.
std::string spProgram(uint32_t Nodes,
                      const std::vector<std::pair<int, int>> &Links) {
  std::string Edges;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Edges += ";";
    Edges += std::to_string(Links[I].first) + "n=" +
             std::to_string(Links[I].second) + "n";
  }
  return "let nodes = " + std::to_string(Nodes) +
         "\n"
         "let edges = {" +
         Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

const std::vector<std::pair<int, int>> Line = {{0, 1}, {1, 2}, {2, 3}};

std::vector<std::tuple<std::string, uint32_t, std::string>>
violationKeys(const FtCheckResult &R) {
  std::vector<std::tuple<std::string, uint32_t, std::string>> Out;
  for (const FtViolation &V : R.Violations)
    Out.push_back({V.Scenario.str(), V.Node, V.routeStr()});
  return Out;
}

/// Restores a clean process-global fault-injection state around each test
/// (a failed ASSERT must not leave a countdown armed for the next test).
struct FaultInjectGuard {
  ~FaultInjectGuard() { FaultInject::disarmAll(); }
};

//===----------------------------------------------------------------------===//
// Outcomes, exit codes, site names, spec parsing
//===----------------------------------------------------------------------===//

TEST(RunOutcome, StatusNamesAndResourceClassification) {
  EXPECT_STREQ(runStatusName(RunStatus::Ok), "ok");
  EXPECT_STREQ(runStatusName(RunStatus::DeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(runStatusName(RunStatus::FaultInjected), "fault-injected");

  // An overloaded daemon is a transient resource condition: retryable
  // (exit 3), like a tripped deadline and unlike a user error.
  EXPECT_STREQ(runStatusName(RunStatus::Overloaded), "overloaded");
  // A quarantined poison job is also a resource outcome (exit 3): the
  // input may be fine, the fleet just refused to keep dying on it.
  EXPECT_STREQ(runStatusName(RunStatus::Quarantined), "quarantined");

  for (RunStatus S : {RunStatus::DeadlineExceeded,
                      RunStatus::StepBudgetExceeded,
                      RunStatus::NodeBudgetExceeded,
                      RunStatus::HeapBudgetExceeded, RunStatus::Canceled,
                      RunStatus::FaultInjected, RunStatus::Overloaded,
                      RunStatus::Quarantined})
    EXPECT_TRUE(isResourceLimit(S)) << runStatusName(S);
  for (RunStatus S :
       {RunStatus::Ok, RunStatus::EvalError, RunStatus::InternalError})
    EXPECT_FALSE(isResourceLimit(S)) << runStatusName(S);
}

TEST(RunOutcome, StrAndExitCodeMapping) {
  EXPECT_EQ(RunOutcome{}.str(), "ok");
  RunOutcome O{RunStatus::DeadlineExceeded, "5 ms", "sim-pop"};
  EXPECT_EQ(O.str(), "deadline-exceeded@sim-pop: 5 ms");

  EXPECT_EQ(exitCodeForOutcome(RunOutcome{}), 0);
  EXPECT_EQ(exitCodeForOutcome(O), 3);
  EXPECT_EQ(exitCodeForOutcome(
                RunOutcome{RunStatus::Canceled, "", "solver-check"}),
            3);
  EXPECT_EQ(exitCodeForOutcome(RunOutcome{RunStatus::EvalError, "", ""}), 2);
  EXPECT_EQ(exitCodeForOutcome(RunOutcome{RunStatus::InternalError, "", ""}),
            4);
  EXPECT_EQ(exitCodeForOutcome(
                RunOutcome{RunStatus::Overloaded, "", "serve-accept"}),
            3);
}

TEST(GovSites, ServeAndFleetSitesAreArmable) {
  // The serve- and fleet-stage sites ride the same spec grammar as engine
  // sites, so chaos scripts can arm them by name.
  FaultInjectGuard Guard;
  for (const char *Name : {"serve-accept", "serve-enqueue", "serve-respond",
                           "fleet-spawn", "fleet-dispatch", "fleet-result"}) {
    GovSite S;
    ASSERT_TRUE(govSiteFromName(Name, S)) << Name;
    std::string Err;
    EXPECT_TRUE(FaultInject::armFromSpec(std::string(Name) + ":1", &Err))
        << Err;
    FaultInject::disarmAll();
  }
}

TEST(GovSites, NamesRoundTrip) {
  for (unsigned I = 0; I < NumGovSites; ++I) {
    GovSite S = static_cast<GovSite>(I), Back;
    ASSERT_TRUE(govSiteFromName(govSiteName(S), Back)) << govSiteName(S);
    EXPECT_EQ(Back, S);
  }
  GovSite Out;
  EXPECT_FALSE(govSiteFromName("bogus", Out));
  EXPECT_FALSE(govSiteFromName("", Out));
}

TEST(FaultInjectSpec, ParsesValidAndRejectsMalformed) {
  FaultInjectGuard Guard;
  std::string Err;
  EXPECT_TRUE(FaultInject::armFromSpec("sim-pop:3", &Err)) << Err;
  EXPECT_TRUE(FaultInject::armed());
  FaultInject::disarmAll();
  EXPECT_FALSE(FaultInject::armed());

  EXPECT_TRUE(FaultInject::armFromSpec("alloc:1,table-grow:5", &Err)) << Err;
  FaultInject::disarmAll();

  for (const char *Bad : {"bogus:1", "sim-pop", "sim-pop:", "sim-pop:zero",
                          "sim-pop:0", "sim-pop:1x", "alloc:2,bad"}) {
    Err.clear();
    EXPECT_FALSE(FaultInject::armFromSpec(Bad, &Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
    FaultInject::disarmAll();
  }
}

TEST(FaultInjectSpec, CountdownFiresExactlyOnce) {
  FaultInjectGuard Guard;
  FaultInject::arm(GovSite::SimPop, 3);
  FaultInject::hit(GovSite::SimPop);
  FaultInject::hit(GovSite::ApplyCacheMiss); // other sites unaffected
  FaultInject::hit(GovSite::SimPop);
  bool Fired = false;
  try {
    FaultInject::hit(GovSite::SimPop); // third hit: countdown reaches 0
  } catch (const EngineError &E) {
    Fired = true;
    EXPECT_EQ(E.outcome().Status, RunStatus::FaultInjected);
    EXPECT_STREQ(E.outcome().Site, "sim-pop");
  }
  EXPECT_TRUE(Fired);
  FaultInject::hit(GovSite::SimPop); // one-shot: no re-fire
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

TEST(CancelToken, HooksRunOnCancelAndOnLateRegistration) {
  CancelToken Tok;
  int Fired = 0;
  uint64_t Id = Tok.addInterruptHook([&] { ++Fired; });
  EXPECT_EQ(Fired, 0);
  Tok.requestCancel();
  EXPECT_TRUE(Tok.isCanceled());
  EXPECT_EQ(Fired, 1);

  // Registering against an already-canceled token fires immediately (the
  // guarded work must still be interrupted).
  int Late = 0;
  uint64_t LateId = Tok.addInterruptHook([&] { ++Late; });
  EXPECT_EQ(Late, 1);

  Tok.removeInterruptHook(Id);
  Tok.removeInterruptHook(LateId);
  Tok.reset();
  EXPECT_FALSE(Tok.isCanceled());
  Tok.requestCancel();
  EXPECT_EQ(Fired, 1); // removed hooks no longer run
  EXPECT_EQ(Late, 1);
}

//===----------------------------------------------------------------------===//
// Governor scopes and safe points
//===----------------------------------------------------------------------===//

TEST(Governor, UnlimitedScopeArmsNothing) {
  EXPECT_EQ(Governor::current(), nullptr);
  {
    Governor::Scope Scope((RunBudget()));
    EXPECT_EQ(Governor::current(), nullptr);
    EXPECT_FALSE(Governor::active());
  }
  Governor::pollSafePoint(GovSite::SimPop); // no governor: no-op, no throw
}

TEST(Governor, RemainingMsTracksTightestDeadline) {
  EXPECT_LT(Governor::remainingMs(), 0); // no deadline armed
  RunBudget Outer;
  Outer.DeadlineMs = 60000;
  Governor::Scope OuterScope(Outer);
  RunBudget Inner;
  Inner.DeadlineMs = 5000;
  Governor::Scope InnerScope(Inner);
  double Ms = Governor::remainingMs();
  EXPECT_GE(Ms, 0);
  EXPECT_LE(Ms, 5000);
}

TEST(Governor, DeadlineStopsSimulationWithStructuredOutcome) {
  Program P = parseAndCheck(spProgram(4, Line));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);

  DiagnosticEngine Diags;
  SimOptions Opts;
  Opts.Budget.DeadlineMs = 0.0001; // expires before the first safe point
  Opts.Diags = &Diags;
  SimResult R = simulate(P, Eval, Opts);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::DeadlineExceeded);
  EXPECT_TRUE(R.Outcome.resourceLimit());
  EXPECT_NE(Diags.str().find("did not converge"), std::string::npos)
      << Diags.str();

  // The governed trip leaves the context usable: the same evaluator runs
  // to convergence once the deadline is lifted.
  SimResult Again = simulate(P, Eval);
  EXPECT_TRUE(Again.Converged);
  EXPECT_TRUE(Again.Outcome.ok());
}

TEST(Governor, OuterScopeGovernsInnerEngineRun) {
  Program P = parseAndCheck(spProgram(4, Line));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);

  RunBudget Outer;
  Outer.DeadlineMs = 0.0001;
  Governor::Scope Scope(Outer);
  // simulate() itself runs with its default (step-only) budget; the outer
  // driver deadline still trips through the chain and is reported
  // structurally, not thrown across the API.
  SimResult R = simulate(P, Eval);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::DeadlineExceeded);
}

TEST(Governor, NodeBudgetTripsMetaSimulation) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  FtOptions Opts;
  Opts.Budget.MaxLiveNodes = 4; // far below what the Fig. 5 meta-sim needs
  FtRunResult R = runFaultTolerance(P, Opts, /*Compiled=*/false, Diags);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::NodeBudgetExceeded);
  EXPECT_EQ(exitCodeForOutcome(R.Outcome), 3);
}

TEST(Governor, HeapWatermarkTripsMetaSimulation) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  FtOptions Opts;
  Opts.Budget.MaxHeapBytes = 1024; // below the manager's initial tables
  FtRunResult R = runFaultTolerance(P, Opts, /*Compiled=*/false, Diags);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::HeapBudgetExceeded);
}

TEST(Governor, StepBudgetReportsThroughFtRun) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  FtOptions Opts;
  Opts.Budget.MaxSteps = 1;
  FtRunResult R = runFaultTolerance(P, Opts, /*Compiled=*/false, Diags);
  EXPECT_FALSE(R.Converged);
  EXPECT_EQ(R.Outcome.Status, RunStatus::StepBudgetExceeded);
}

//===----------------------------------------------------------------------===//
// SMT verifier under governance
//===----------------------------------------------------------------------===//

TEST(Governor, SmtDeadlineReportsResourceExhausted) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  Opts.Budget.DeadlineMs = 0.0001;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::ResourceExhausted);
  EXPECT_TRUE(R.Outcome.resourceLimit()) << R.Outcome.str();
}

TEST(Governor, SmtCanceledTokenReportsResourceExhausted) {
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  CancelToken Tok;
  Tok.requestCancel();
  VerifyOptions Opts;
  Opts.Budget.Cancel = &Tok;
  VerifyResult R = verifyProgram(P, Opts, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::ResourceExhausted);
  EXPECT_EQ(R.Outcome.Status, RunStatus::Canceled) << R.Outcome.str();
}

TEST(Governor, SmtUngovernedStillVerifies) {
  // The same program verifies normally without a budget (the governance
  // path does not perturb the verdict).
  Program P = parseAndCheck(spProgram(4, Line));
  DiagnosticEngine Diags;
  VerifyResult R = verifyProgram(P, VerifyOptions{}, Diags);
  EXPECT_EQ(R.Status, VerifyStatus::Verified) << Diags.str();
  EXPECT_TRUE(R.Outcome.ok());
}

//===----------------------------------------------------------------------===//
// Per-scenario confinement: sharded runs, cancellation fan-out
//===----------------------------------------------------------------------===//

TEST(Governor, PreCanceledTokenSkipsEveryScenarioSerial) {
  Program P = parseAndCheck(spProgram(4, Line));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  CancelToken Tok;
  Tok.requestCancel();
  FtOptions Opts;
  Opts.Budget.Cancel = &Tok;
  FtCheckResult R = naiveFaultTolerance(P, Eval, Opts, Ctx.noneV());
  EXPECT_GT(R.ScenariosChecked, 0u);
  EXPECT_EQ(R.ScenariosSkipped, R.ScenariosChecked);
  EXPECT_EQ(R.Outcome.Status, RunStatus::Canceled);
  EXPECT_TRUE(R.Violations.empty());
}

TEST(Governor, CancellationFansOutAcrossThreadPoolShards) {
  Program P = parseAndCheck(spProgram(4, Line));
  CancelToken Tok;
  Tok.requestCancel();
  FtOptions Opts;
  Opts.Budget.Cancel = &Tok;
  for (unsigned Threads : {2u, 8u}) {
    ThreadPool Pool(Threads);
    FtCheckResult R = naiveFaultToleranceParallel(P, Opts, Pool);
    EXPECT_GT(R.ScenariosChecked, 0u) << Threads;
    EXPECT_EQ(R.ScenariosSkipped, R.ScenariosChecked) << Threads;
    EXPECT_EQ(R.Outcome.Status, RunStatus::Canceled) << Threads;
    EXPECT_TRUE(R.Violations.empty()) << Threads;
  }
}

TEST(Governor, UntrippedBudgetShardedRunIsBitIdentical) {
  Program P = parseAndCheck(spProgram(4, Line));

  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  {
    ThreadPool Pool(4);
    Ref = violationKeys(naiveFaultToleranceParallel(P, FtOptions{}, Pool));
    ASSERT_FALSE(Ref.empty());
  }

  // A generous budget (with a live but untriggered token) must not perturb
  // results at any pool size: same violations, same order, nothing skipped.
  CancelToken Tok;
  FtOptions Governed;
  Governed.Budget.DeadlineMs = 600000;
  Governed.Budget.MaxSteps = 100'000'000;
  Governed.Budget.MaxLiveNodes = 1u << 30;
  Governed.Budget.MaxHeapBytes = size_t(1) << 40;
  Governed.Budget.Cancel = &Tok;
  for (unsigned Threads : {1u, 2u, 8u}) {
    ThreadPool Pool(Threads);
    FtCheckResult R = naiveFaultToleranceParallel(P, Governed, Pool);
    EXPECT_EQ(R.ScenariosSkipped, 0u) << Threads;
    EXPECT_TRUE(R.Outcome.ok()) << Threads << ": " << R.Outcome.str();
    EXPECT_EQ(violationKeys(R), Ref) << Threads << " threads";
  }
}

TEST(Governor, InjectedFaultSkipsExactlyOneScenarioSerial) {
  FaultInjectGuard Guard;
  Program P = parseAndCheck(spProgram(4, Line));

  // Keys are extracted while the reference context is alive: the
  // violations' Route pointers are interned in it.
  uint64_t RefScenarios = 0;
  size_t RefViolations = 0;
  std::set<std::tuple<std::string, uint32_t, std::string>> RefSet;
  {
    NvContext RefCtx(P.numNodes());
    InterpProgramEvaluator RefEval(RefCtx, P);
    FtCheckResult Ref =
        naiveFaultTolerance(P, RefEval, FtOptions{}, RefCtx.noneV());
    ASSERT_EQ(Ref.ScenariosSkipped, 0u);
    ASSERT_FALSE(Ref.Violations.empty());
    RefScenarios = Ref.ScenariosChecked;
    RefViolations = Ref.Violations.size();
    auto RefKeys = violationKeys(Ref);
    RefSet.insert(RefKeys.begin(), RefKeys.end());
  }

  // The countdown lands mid-way through the scenario sweep; the fault is
  // one-shot, so exactly one scenario is skipped and every sibling result
  // survives verbatim.
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  FaultInject::arm(GovSite::SimPop, 10);
  FtCheckResult R = naiveFaultTolerance(P, Eval, FtOptions{}, Ctx.noneV());
  FaultInject::disarmAll();

  EXPECT_EQ(R.ScenariosChecked, RefScenarios);
  EXPECT_EQ(R.ScenariosSkipped, 1u);
  EXPECT_EQ(R.Outcome.Status, RunStatus::FaultInjected);
  EXPECT_STREQ(R.Outcome.Site, "sim-pop");
  EXPECT_LE(R.Violations.size(), RefViolations);
  for (const auto &K : violationKeys(R))
    EXPECT_TRUE(RefSet.count(K))
        << "violation not in the ungoverned reference: " << std::get<0>(K);
}

//===----------------------------------------------------------------------===//
// Graceful shutdown: signal-driven drain + checkpoint journal
//===----------------------------------------------------------------------===//

TEST(GracefulShutdownTest, SigintDrainsShardsAndJournalsCompletedJobsOnce) {
  // A sweep big enough (node failure x every link key on a 16-node line)
  // that the signal reliably lands mid-flight.
  std::vector<std::pair<int, int>> Long;
  for (int I = 0; I + 1 < 16; ++I)
    Long.push_back({I, I + 1});
  Program P = parseAndCheck(spProgram(16, Long));
  FtOptions Base;
  Base.NodeFailure = true;

  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  uint64_t RefScenarios = 0;
  {
    ThreadPool Pool(4);
    FtCheckResult R = naiveFaultToleranceParallel(P, Base, Pool);
    ASSERT_TRUE(R.Outcome.ok()) << R.Outcome.str();
    Ref = violationKeys(R);
    RefScenarios = R.ScenariosChecked;
    ASSERT_GT(RefScenarios, 8u);
  }

  std::string Path = ::testing::TempDir() + "nv_governor_sigint_journal";
  std::remove(Path.c_str());
  RunBinding Binding;
  Binding.set("tool", "governor-tests");
  Binding.set("program", fnv1a64Hex(spProgram(16, Long)));

  // Interrupted run: deliver a real SIGINT (process-directed, like Ctrl-C)
  // once a few units have been journaled. GracefulShutdown must be
  // constructed before the pool and the runner thread so every thread
  // inherits the blocked mask and delivery funnels to the watcher.
  uint64_t Completed = 0;
  {
    CancelToken Tok;
    GracefulShutdown Shutdown(Tok);
    auto L = ResumeLog::open(Path, Binding);
    ASSERT_TRUE(L.Log) << L.Error;
    FtOptions Opts = Base;
    Opts.Budget.Cancel = &Tok;
    Opts.Resume = L.Log.get();
    ThreadPool Pool(4);
    FtCheckResult R;
    std::thread Runner(
        [&] { R = naiveFaultToleranceParallel(P, Opts, Pool); });
    while (L.Log->entryCount() < 3)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ::kill(::getpid(), SIGINT);
    Runner.join();

    EXPECT_TRUE(Shutdown.triggered());
    EXPECT_EQ(Shutdown.signalNumber(), SIGINT);
    // In-flight jobs drained at their safe points: the run reports the
    // structured Canceled outcome instead of dying, every scenario is
    // accounted for, and at least one was cut short.
    ASSERT_EQ(R.Outcome.Status, RunStatus::Canceled) << R.Outcome.str();
    EXPECT_EQ(R.ScenariosChecked, RefScenarios);
    EXPECT_GT(R.ScenariosSkipped, 0u);
    Completed = R.ScenariosChecked - R.ScenariosSkipped;
    // Exactly the completed jobs were journaled — canceled ones never are.
    EXPECT_EQ(L.Log->entryCount(), Completed);
  }

  // On disk: one frame per completed job, all keys distinct.
  JournalRead JR = readJournal(Path);
  ASSERT_EQ(JR.St, JournalRead::State::Ok) << JR.Error;
  EXPECT_EQ(JR.Entries.size(), Completed);
  std::set<std::string> Keys;
  for (const std::string &E : JR.Entries) {
    UnitRecord Rec;
    ASSERT_TRUE(UnitRecord::parse(E, Rec));
    Keys.insert(Rec.Key);
  }
  EXPECT_EQ(Keys.size(), JR.Entries.size()) << "duplicate journal keys";

  // Resume without interruption: replays exactly the completed jobs, the
  // aggregate matches the uninterrupted reference, and the journal ends
  // with each scenario recorded exactly once.
  {
    auto L = ResumeLog::open(Path, Binding);
    ASSERT_TRUE(L.Log) << L.Error;
    EXPECT_EQ(L.Log->replayedCount(), Completed);
    FtOptions Opts = Base;
    Opts.Resume = L.Log.get();
    ThreadPool Pool(4);
    FtCheckResult R = naiveFaultToleranceParallel(P, Opts, Pool);
    EXPECT_TRUE(R.Outcome.ok()) << R.Outcome.str();
    EXPECT_EQ(R.ScenariosChecked, RefScenarios);
    EXPECT_EQ(R.ScenariosReplayed, Completed);
    EXPECT_EQ(R.ScenariosSkipped, 0u);
    EXPECT_EQ(violationKeys(R), Ref);
  }
  JournalRead JR2 = readJournal(Path);
  ASSERT_EQ(JR2.St, JournalRead::State::Ok) << JR2.Error;
  EXPECT_EQ(JR2.Entries.size(), RefScenarios);
  Keys.clear();
  for (const std::string &E : JR2.Entries) {
    UnitRecord Rec;
    ASSERT_TRUE(UnitRecord::parse(E, Rec));
    Keys.insert(Rec.Key);
  }
  EXPECT_EQ(Keys.size(), JR2.Entries.size()) << "duplicate after resume";

  std::remove(Path.c_str());
}

} // namespace
