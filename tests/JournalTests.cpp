//===- JournalTests.cpp - Checkpoint/resume journal tests --------------------===//
//
// Tests of the crash-resilience layer: the checksummed journal format
// (torn tails tolerated, interior corruption a hard error), run bindings
// (provenance-excluded matching), unit records, per-unit retry with
// budget escalation, and end-to-end resume of the sharded naive analysis
// — a resumed run's aggregate must be identical to an uninterrupted one.
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "support/Governor.h"
#include "support/Journal.h"
#include "support/Resume.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <tuple>

using namespace nv;

namespace {

std::string tmpPath(const std::string &Name) {
  return ::testing::TempDir() + "nv_journal_test_" + Name;
}

/// Reads a file's raw bytes.
std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void spew(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), std::streamsize(Bytes.size()));
  ASSERT_TRUE(Out.good()) << Path;
}

Program parseAndCheck(const std::string &Src) {
  DiagnosticEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P.has_value()) << Diags.str();
  EXPECT_TRUE(typeCheck(*P, Diags)) << Diags.str();
  return *P;
}

/// Same shortest-path family GovernorTests uses; fault tolerance over a
/// line topology yields a deterministic non-empty violation list.
std::string spProgram(uint32_t Nodes,
                      const std::vector<std::pair<int, int>> &Links) {
  std::string Edges;
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      Edges += ";";
    Edges += std::to_string(Links[I].first) + "n=" +
             std::to_string(Links[I].second) + "n";
  }
  return "let nodes = " + std::to_string(Nodes) +
         "\n"
         "let edges = {" +
         Edges +
         "}\n"
         "let init (u : node) = match u with | 0n -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> Some (d + 1)\n"
         "let merge (u : node) (x : option[int]) (y : option[int]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n"
         "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | Some d -> true\n";
}

const std::vector<std::pair<int, int>> Line = {{0, 1}, {1, 2}, {2, 3}};

/// Violation identity that works for live and replayed violations alike.
std::vector<std::tuple<std::string, uint32_t, std::string>>
violationKeys(const FtCheckResult &R) {
  std::vector<std::tuple<std::string, uint32_t, std::string>> Out;
  for (const FtViolation &V : R.Violations)
    Out.push_back({V.Scenario.str(), V.Node, V.routeStr()});
  return Out;
}

struct FaultInjectGuard {
  ~FaultInjectGuard() { FaultInject::disarmAll(); }
};

//===----------------------------------------------------------------------===//
// Journal format
//===----------------------------------------------------------------------===//

TEST(Journal, RoundTripAndAppendAfterReopen) {
  std::string Path = tmpPath("roundtrip");
  std::remove(Path.c_str());

  EXPECT_EQ(readJournal(Path).St, JournalRead::State::NoFile);

  std::string Err;
  auto W = createJournal(Path, "k=v\n", Err);
  ASSERT_TRUE(W) << Err;
  EXPECT_TRUE(W->append("unit-a"));
  EXPECT_TRUE(W->append("unit-b"));
  W.reset();

  JournalRead R = readJournal(Path);
  ASSERT_EQ(R.St, JournalRead::State::Ok) << R.Error;
  EXPECT_EQ(R.Header, "k=v\n");
  ASSERT_EQ(R.Entries.size(), 2u);
  EXPECT_EQ(R.Entries[0], "unit-a");
  EXPECT_EQ(R.Entries[1], "unit-b");
  EXPECT_FALSE(R.TornTail);

  // Continue the journal where the scan left off.
  auto W2 = appendJournal(Path, R.ValidBytes, Err);
  ASSERT_TRUE(W2) << Err;
  EXPECT_TRUE(W2->append("unit-c"));
  W2.reset();
  JournalRead R2 = readJournal(Path);
  ASSERT_EQ(R2.St, JournalRead::State::Ok) << R2.Error;
  EXPECT_EQ(R2.Entries.size(), 3u);

  std::remove(Path.c_str());
}

TEST(Journal, TornTailDroppedAndTruncatedOnReopen) {
  std::string Path = tmpPath("torn");
  std::remove(Path.c_str());
  std::string Err;
  auto W = createJournal(Path, "h\n", Err);
  ASSERT_TRUE(W) << Err;
  EXPECT_TRUE(W->append("unit-a"));
  EXPECT_TRUE(W->append("unit-b"));
  W.reset();

  // Chop into the middle of the final frame: crash debris, not corruption.
  std::string Bytes = slurp(Path);
  spew(Path, Bytes.substr(0, Bytes.size() - 3));

  JournalRead R = readJournal(Path);
  ASSERT_EQ(R.St, JournalRead::State::Ok) << R.Error;
  EXPECT_TRUE(R.TornTail);
  ASSERT_EQ(R.Entries.size(), 1u);
  EXPECT_EQ(R.Entries[0], "unit-a");

  // The writer truncates the torn tail, so the re-recorded unit's frame
  // never lands after garbage.
  auto W2 = appendJournal(Path, R.ValidBytes, Err);
  ASSERT_TRUE(W2) << Err;
  EXPECT_TRUE(W2->append("unit-b"));
  W2.reset();
  JournalRead R2 = readJournal(Path);
  ASSERT_EQ(R2.St, JournalRead::State::Ok) << R2.Error;
  EXPECT_FALSE(R2.TornTail);
  ASSERT_EQ(R2.Entries.size(), 2u);
  EXPECT_EQ(R2.Entries[1], "unit-b");

  std::remove(Path.c_str());
}

TEST(Journal, CorruptInteriorChecksumIsHard) {
  std::string Path = tmpPath("corrupt");
  std::remove(Path.c_str());
  std::string Err;
  auto W = createJournal(Path, "h\n", Err);
  ASSERT_TRUE(W) << Err;
  EXPECT_TRUE(W->append("unit-a"));
  EXPECT_TRUE(W->append("unit-b"));
  W.reset();

  // Flip one payload byte of a mid-file frame: a complete frame whose
  // checksum no longer matches is interior damage, never "torn".
  std::string Bytes = slurp(Path);
  size_t Mid = 8 + 8 + 2 + 8 + 2; // magic, header frame, into unit-a
  ASSERT_LT(Mid, Bytes.size());
  Bytes[Mid] ^= 0x40;
  spew(Path, Bytes);

  JournalRead R = readJournal(Path);
  EXPECT_EQ(R.St, JournalRead::State::Corrupt);
  EXPECT_FALSE(R.Error.empty());

  std::remove(Path.c_str());
}

TEST(Journal, BadMagicIsCorrupt) {
  std::string Path = tmpPath("magic");
  spew(Path, "NOTAJRNL with some trailing bytes");
  JournalRead R = readJournal(Path);
  EXPECT_EQ(R.St, JournalRead::State::Corrupt);
  EXPECT_FALSE(R.Error.empty());
  std::remove(Path.c_str());
}

TEST(Journal, SecondWriterOnOneJournalFailsFast) {
  // Two coordinators pointed at one journal must not interleave frames:
  // the writer holds an exclusive flock for its lifetime, so the second
  // open fails fast with a clear error — in both the create and the
  // append flavors — and the journal stays intact.
  std::string Path = tmpPath("flock");
  std::remove(Path.c_str());

  std::string Err;
  auto W = createJournal(Path, "h\n", Err);
  ASSERT_TRUE(W) << Err;
  EXPECT_TRUE(W->append("unit-a"));

  std::string Err2;
  auto Clash = createJournal(Path, "h\n", Err2);
  EXPECT_FALSE(Clash);
  EXPECT_NE(Err2.find("lock"), std::string::npos) << Err2;

  JournalRead Mid = readJournal(Path); // reading is still fine
  ASSERT_EQ(Mid.St, JournalRead::State::Ok) << Mid.Error;
  std::string Err3;
  auto Clash2 = appendJournal(Path, Mid.ValidBytes, Err3);
  EXPECT_FALSE(Clash2);
  EXPECT_NE(Err3.find("lock"), std::string::npos) << Err3;

  // Releasing the first writer releases the lock; appending then works
  // and the first writer's frames survived the failed opens.
  W.reset();
  JournalRead R = readJournal(Path);
  ASSERT_EQ(R.St, JournalRead::State::Ok) << R.Error;
  ASSERT_EQ(R.Entries.size(), 1u);
  EXPECT_EQ(R.Entries[0], "unit-a");
  std::string Err4;
  auto W2 = appendJournal(Path, R.ValidBytes, Err4);
  ASSERT_TRUE(W2) << Err4;
  EXPECT_TRUE(W2->append("unit-b"));

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Bindings and unit records
//===----------------------------------------------------------------------===//

TEST(RunBindingTest, ProvenanceLinesDoNotBind) {
  RunBinding A, B;
  A.set("tool", "nv");
  A.setInt("links", 2);
  A.setProvenance("threads", "16");
  B.set("tool", "nv");
  B.setInt("links", 2);
  B.setProvenance("threads", "1"); // different parallelism: still matches
  std::string Why;
  EXPECT_TRUE(RunBinding::matches(A.render(), B.render(), Why)) << Why;

  RunBinding C;
  C.set("tool", "nv");
  C.setInt("links", 3);
  EXPECT_FALSE(RunBinding::matches(A.render(), C.render(), Why));
  EXPECT_NE(Why.find("links"), std::string::npos) << Why;
}

TEST(UnitRecordTest, RenderParseRoundTripWithRepeatedKeys) {
  UnitRecord R;
  R.Key = "s17";
  R.add("status", "ok");
  R.add("v", "0 1 Some 2");
  R.add("v", "1 3 None");
  R.addInt("attempts", 2);

  UnitRecord Back;
  ASSERT_TRUE(UnitRecord::parse(R.render(), Back));
  EXPECT_EQ(Back.Key, "s17");
  ASSERT_NE(Back.get("status"), nullptr);
  EXPECT_EQ(*Back.get("status"), "ok");
  EXPECT_EQ(Back.all("v"),
            (std::vector<std::string>{"0 1 Some 2", "1 3 None"}));

  UnitRecord Bad;
  EXPECT_FALSE(UnitRecord::parse("", Bad));
  EXPECT_FALSE(UnitRecord::parse("key\nno-equals-line\n", Bad));
}

TEST(UnitRecordTest, OutcomeRoundTripRestoresStaticSiteName) {
  UnitRecord R;
  R.Key = "u";
  RunOutcome O{RunStatus::DeadlineExceeded, "5 ms", govSiteName(GovSite::SimPop)};
  addOutcome(R, O, 3);

  RunOutcome Back;
  unsigned Attempts = 0;
  ASSERT_TRUE(parseOutcome(R, Back, Attempts));
  EXPECT_EQ(Back.Status, RunStatus::DeadlineExceeded);
  EXPECT_EQ(Back.Detail, "5 ms");
  EXPECT_EQ(Attempts, 3u);
  // Pointer-stable: the replayed site IS the static name string.
  EXPECT_EQ(Back.Site, govSiteName(GovSite::SimPop));
}

TEST(GovernorNames, RunStatusRoundTrips) {
  for (RunStatus S :
       {RunStatus::Ok, RunStatus::DeadlineExceeded,
        RunStatus::StepBudgetExceeded, RunStatus::NodeBudgetExceeded,
        RunStatus::HeapBudgetExceeded, RunStatus::Canceled,
        RunStatus::FaultInjected, RunStatus::Overloaded,
        RunStatus::Quarantined, RunStatus::EvalError,
        RunStatus::InternalError}) {
    RunStatus Back;
    ASSERT_TRUE(runStatusFromName(runStatusName(S), Back)) << runStatusName(S);
    EXPECT_EQ(Back, S);
  }
  RunStatus Out;
  EXPECT_FALSE(runStatusFromName("bogus", Out));
}

//===----------------------------------------------------------------------===//
// Retry policy
//===----------------------------------------------------------------------===//

TEST(Retry, EscalateBudgetScalesOnlyFiniteLimits) {
  CancelToken Tok;
  RunBudget B;
  B.DeadlineMs = 100;
  B.MaxSteps = 1000;
  B.MaxLiveNodes = 0; // unlimited stays unlimited
  B.Cancel = &Tok;

  RunBudget E = escalateBudget(B, 2.0, 3); // third attempt: x4
  EXPECT_DOUBLE_EQ(E.DeadlineMs, 400);
  EXPECT_EQ(E.MaxSteps, 4000u);
  EXPECT_EQ(E.MaxLiveNodes, 0u);
  EXPECT_EQ(E.Cancel, &Tok); // escalation never drops the token

  RunBudget Same = escalateBudget(B, 2.0, 1); // first attempt: unscaled
  EXPECT_DOUBLE_EQ(Same.DeadlineMs, 100);
}

TEST(Retry, TransientClassification) {
  EXPECT_TRUE(isTransientOutcome(
      RunOutcome{RunStatus::DeadlineExceeded, "", ""}));
  EXPECT_TRUE(isTransientOutcome(
      RunOutcome{RunStatus::FaultInjected, "", ""}));
  EXPECT_FALSE(isTransientOutcome(RunOutcome{})); // ok
  EXPECT_FALSE(isTransientOutcome(
      RunOutcome{RunStatus::Canceled, "", ""})); // whole run stopping
  EXPECT_FALSE(isTransientOutcome(
      RunOutcome{RunStatus::EvalError, "", ""})); // deterministic
}

TEST(Retry, RetriesTransientUntilSuccess) {
  RetryPolicy Policy;
  Policy.MaxAttempts = 3;
  RunBudget B;
  B.MaxSteps = 10;
  unsigned Attempts = 0;
  std::vector<uint64_t> SeenBudgets;
  RunOutcome O = runUnitWithRetry(B, Policy, Attempts,
                                  [&](const RunBudget &AB) -> RunOutcome {
    SeenBudgets.push_back(AB.MaxSteps);
    if (SeenBudgets.size() < 2)
      return RunOutcome{RunStatus::StepBudgetExceeded, "", ""};
    return RunOutcome{};
  });
  EXPECT_TRUE(O.ok());
  EXPECT_EQ(Attempts, 2u);
  ASSERT_EQ(SeenBudgets.size(), 2u);
  EXPECT_EQ(SeenBudgets[0], 10u);
  EXPECT_EQ(SeenBudgets[1], 20u); // escalated
}

TEST(Retry, GivesUpAfterMaxAttemptsAndNeverRetriesCancel) {
  RetryPolicy Policy;
  Policy.MaxAttempts = 3;
  unsigned Attempts = 0;
  RunOutcome O = runUnitWithRetry({}, Policy, Attempts,
                                  [](const RunBudget &) -> RunOutcome {
    return RunOutcome{RunStatus::DeadlineExceeded, "", ""};
  });
  EXPECT_EQ(O.Status, RunStatus::DeadlineExceeded);
  EXPECT_EQ(Attempts, 3u);

  Attempts = 0;
  unsigned Calls = 0;
  O = runUnitWithRetry({}, Policy, Attempts,
                       [&](const RunBudget &) -> RunOutcome {
    ++Calls;
    return RunOutcome{RunStatus::Canceled, "", ""};
  });
  EXPECT_EQ(O.Status, RunStatus::Canceled);
  EXPECT_EQ(Calls, 1u); // cancellation is terminal
}

//===----------------------------------------------------------------------===//
// ResumeLog
//===----------------------------------------------------------------------===//

RunBinding testBinding() {
  RunBinding B;
  B.set("tool", "journal-tests");
  B.set("program", fnv1a64Hex("program text"));
  B.setProvenance("threads", "4");
  return B;
}

TEST(ResumeLogTest, FreshJournalRecordsThenReplays) {
  std::string Path = tmpPath("resume_fresh");
  std::remove(Path.c_str());

  {
    auto R = ResumeLog::open(Path, testBinding());
    ASSERT_TRUE(R.Log) << R.Error;
    EXPECT_EQ(R.Log->replayedCount(), 0u);
    UnitRecord U;
    U.Key = "s0";
    U.add("status", "ok");
    R.Log->recordDone(U);
    U.Key = "s1";
    R.Log->recordDone(U);
    EXPECT_EQ(R.Log->entryCount(), 2u);
  }

  auto R2 = ResumeLog::open(Path, testBinding());
  ASSERT_TRUE(R2.Log) << R2.Error;
  EXPECT_EQ(R2.Log->replayedCount(), 2u);
  EXPECT_TRUE(R2.Log->isDone("s0"));
  EXPECT_FALSE(R2.Log->isDone("s2"));
  UnitRecord Out;
  ASSERT_TRUE(R2.Log->replay("s1", Out));
  ASSERT_NE(Out.get("status"), nullptr);
  EXPECT_EQ(*Out.get("status"), "ok");

  std::remove(Path.c_str());
}

TEST(ResumeLogTest, BindingMismatchIsHardError) {
  std::string Path = tmpPath("resume_binding");
  std::remove(Path.c_str());
  { ASSERT_TRUE(ResumeLog::open(Path, testBinding()).Log); }

  RunBinding Other;
  Other.set("tool", "journal-tests");
  Other.set("program", fnv1a64Hex("DIFFERENT program text"));
  auto R = ResumeLog::open(Path, Other);
  EXPECT_FALSE(R.Log);
  EXPECT_TRUE(R.Hard);
  EXPECT_NE(R.Error.find("does not match"), std::string::npos) << R.Error;

  std::remove(Path.c_str());
}

TEST(ResumeLogTest, CorruptJournalIsHardError) {
  std::string Path = tmpPath("resume_corrupt");
  std::remove(Path.c_str());
  {
    auto R = ResumeLog::open(Path, testBinding());
    ASSERT_TRUE(R.Log);
    UnitRecord U;
    U.Key = "s0";
    R.Log->recordDone(U);
    U.Key = "s1";
    R.Log->recordDone(U);
  }
  std::string Bytes = slurp(Path);
  // Offset 20 is inside the header frame's payload (magic 8 + frame
  // length/checksum 8 + 4): a complete frame whose checksum fails.
  Bytes[20] ^= 0x01;
  spew(Path, Bytes);

  auto R = ResumeLog::open(Path, testBinding());
  EXPECT_FALSE(R.Log);
  EXPECT_TRUE(R.Hard);
  EXPECT_FALSE(R.Error.empty());

  std::remove(Path.c_str());
}

TEST(ResumeLogTest, TornTailToleratedAndUnitRerecorded) {
  std::string Path = tmpPath("resume_torn");
  std::remove(Path.c_str());
  {
    auto R = ResumeLog::open(Path, testBinding());
    ASSERT_TRUE(R.Log);
    UnitRecord U;
    U.Key = "s0";
    R.Log->recordDone(U);
    U.Key = "s1";
    R.Log->recordDone(U);
  }
  std::string Bytes = slurp(Path);
  spew(Path, Bytes.substr(0, Bytes.size() - 2)); // died mid-append

  auto R = ResumeLog::open(Path, testBinding());
  ASSERT_TRUE(R.Log) << R.Error;
  EXPECT_TRUE(R.Log->tornTailDropped());
  EXPECT_EQ(R.Log->replayedCount(), 1u); // s1's frame was torn: it re-runs
  EXPECT_FALSE(R.Log->isDone("s1"));
  UnitRecord U;
  U.Key = "s1";
  R.Log->recordDone(U);
  EXPECT_EQ(R.Log->entryCount(), 2u);

  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// End-to-end: sharded naive analysis under resume
//===----------------------------------------------------------------------===//

RunBinding naiveBinding() {
  RunBinding B;
  B.set("tool", "journal-tests-naive");
  B.set("program", fnv1a64Hex(spProgram(4, Line)));
  return B;
}

TEST(NaiveResume, InterruptedRunResumesIdenticalAtAnyThreadCount) {
  Program P = parseAndCheck(spProgram(4, Line));

  // Uninterrupted reference.
  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  uint64_t RefScenarios = 0;
  {
    ThreadPool Pool(2);
    FtCheckResult R = naiveFaultToleranceParallel(P, FtOptions{}, Pool);
    ASSERT_FALSE(R.Violations.empty());
    Ref = violationKeys(R);
    RefScenarios = R.ScenariosChecked;
  }

  // Fully journaled run.
  std::string Path = tmpPath("naive_resume");
  std::remove(Path.c_str());
  {
    auto L = ResumeLog::open(Path, naiveBinding());
    ASSERT_TRUE(L.Log) << L.Error;
    ThreadPool Pool(4);
    FtOptions Opts;
    Opts.Resume = L.Log.get();
    FtCheckResult R = naiveFaultToleranceParallel(P, Opts, Pool);
    EXPECT_EQ(violationKeys(R), Ref);
    EXPECT_EQ(R.ScenariosReplayed, 0u);
    EXPECT_EQ(L.Log->entryCount(), RefScenarios);
  }

  // Simulate an interruption: keep only the first half of the completed
  // units, then resume at a different thread count. The resumed aggregate
  // must be identical to the uninterrupted reference.
  JournalRead Full = readJournal(Path);
  ASSERT_EQ(Full.St, JournalRead::State::Ok) << Full.Error;
  ASSERT_EQ(Full.Entries.size(), RefScenarios);
  std::string Partial = tmpPath("naive_resume_partial");
  std::remove(Partial.c_str());
  {
    std::string Err;
    auto W = createJournal(Partial, Full.Header, Err);
    ASSERT_TRUE(W) << Err;
    for (size_t I = 0; I < Full.Entries.size() / 2; ++I)
      ASSERT_TRUE(W->append(Full.Entries[I]));
  }
  for (unsigned Threads : {1u, 4u}) {
    auto L = ResumeLog::open(Partial, naiveBinding());
    ASSERT_TRUE(L.Log) << L.Error;
    EXPECT_EQ(L.Log->replayedCount(), Full.Entries.size() / 2);
    ThreadPool Pool(Threads);
    FtOptions Opts;
    Opts.Resume = L.Log.get();
    FtCheckResult R = naiveFaultToleranceParallel(P, Opts, Pool);
    EXPECT_EQ(R.ScenariosChecked, RefScenarios) << Threads;
    EXPECT_EQ(R.ScenariosReplayed, Full.Entries.size() / 2) << Threads;
    EXPECT_EQ(R.ScenariosSkipped, 0u) << Threads;
    EXPECT_TRUE(R.Outcome.ok()) << R.Outcome.str();
    EXPECT_EQ(violationKeys(R), Ref) << Threads << " threads";
    // Only the missing half was re-run and recorded; nothing duplicated.
    EXPECT_EQ(L.Log->entryCount(), RefScenarios) << Threads;
    std::remove(Partial.c_str());
    std::string Err;
    auto W = createJournal(Partial, Full.Header, Err);
    ASSERT_TRUE(W) << Err;
    for (size_t I = 0; I < Full.Entries.size() / 2; ++I)
      ASSERT_TRUE(W->append(Full.Entries[I]));
  }

  std::remove(Path.c_str());
  std::remove(Partial.c_str());
}

TEST(NaiveFleetRecords, WorkerRecordsAggregateIdenticalToInProcess) {
  // The fleet contract at the unit level: records produced by the worker
  // handler (runNaiveScenarioRecord, one fresh record per scenario) fold
  // through aggregateNaiveScenarioRecords into exactly the aggregate the
  // in-process path computes — which is why `--workers N` merges are
  // bit-identical to `--workers 0` regardless of which worker ran what.
  Program P = parseAndCheck(spProgram(4, Line));
  FtOptions Opts;

  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  uint64_t RefScenarios = 0;
  {
    ThreadPool Pool(2);
    FtCheckResult R = naiveFaultToleranceParallel(P, Opts, Pool);
    ASSERT_FALSE(R.Violations.empty());
    Ref = violationKeys(R);
    RefScenarios = R.ScenariosChecked;
  }

  // "Workers": one evaluator producing every record, out of order, into a
  // key-indexed map — the shape a fleet run's Results arrive in.
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  const Value *Drop = Ctx.noneV();
  Ctx.pinValue(Drop);
  auto Scenarios = enumerateScenarios(P, Opts);
  ASSERT_EQ(Scenarios.size(), RefScenarios);
  std::map<std::string, UnitRecord> Results;
  for (size_t I = Scenarios.size(); I-- > 0;)
    Results[naiveScenarioKey(I)] =
        runNaiveScenarioRecord(P, Eval, Scenarios, I, Drop, Opts);

  FtCheckResult Agg;
  ASSERT_TRUE(aggregateNaiveScenarioRecords(
      Scenarios,
      [&](const std::string &Key, UnitRecord &Rec) {
        auto It = Results.find(Key);
        if (It == Results.end())
          return false;
        Rec = It->second;
        return true;
      },
      Agg));
  EXPECT_EQ(Agg.ScenariosChecked, RefScenarios);
  EXPECT_EQ(Agg.ScenariosSkipped, 0u);
  EXPECT_TRUE(Agg.Outcome.ok()) << Agg.Outcome.str();
  EXPECT_EQ(violationKeys(Agg), Ref);

  // A missing record is a hard aggregation failure, never silence.
  Results.erase(naiveScenarioKey(0));
  FtCheckResult Agg2;
  EXPECT_FALSE(aggregateNaiveScenarioRecords(
      Scenarios,
      [&](const std::string &Key, UnitRecord &Rec) {
        auto It = Results.find(Key);
        if (It == Results.end())
          return false;
        Rec = It->second;
        return true;
      },
      Agg2));
}

TEST(NaiveRetry, InjectedFaultRetriedThenSucceeds) {
  FaultInjectGuard Guard;
  Program P = parseAndCheck(spProgram(4, Line));

  std::vector<std::tuple<std::string, uint32_t, std::string>> Ref;
  {
    NvContext RefCtx(P.numNodes());
    InterpProgramEvaluator RefEval(RefCtx, P);
    FtCheckResult R =
        naiveFaultTolerance(P, RefEval, FtOptions{}, RefCtx.noneV());
    ASSERT_EQ(R.ScenariosSkipped, 0u);
    Ref = violationKeys(R);
  }

  // The injected fault is one-shot: the scenario it hits fails its first
  // attempt and succeeds on retry, so nothing is skipped and the final
  // report matches the fault-free reference exactly.
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);
  FaultInject::arm(GovSite::SimPop, 10);
  FtOptions Opts;
  Opts.Retry.MaxAttempts = 3;
  FtCheckResult R = naiveFaultTolerance(P, Eval, Opts, Ctx.noneV());
  FaultInject::disarmAll();

  EXPECT_EQ(R.ScenariosSkipped, 0u);
  EXPECT_EQ(R.RetriesPerformed, 1u);
  EXPECT_TRUE(R.Outcome.ok()) << R.Outcome.str();
  EXPECT_EQ(violationKeys(R), Ref);
}

TEST(NaiveRetry, PersistentTransientGivesUpAndSkips) {
  Program P = parseAndCheck(spProgram(4, Line));
  NvContext Ctx(P.numNodes());
  InterpProgramEvaluator Eval(Ctx, P);

  // A one-step budget trips every scenario on every attempt (escalation
  // disabled), so each scenario burns its retries and is skipped.
  FtOptions Opts;
  Opts.Budget.MaxSteps = 1;
  Opts.Retry.MaxAttempts = 2;
  Opts.Retry.BudgetScale = 1.0;
  FtCheckResult R = naiveFaultTolerance(P, Eval, Opts, Ctx.noneV());

  EXPECT_GT(R.ScenariosChecked, 0u);
  EXPECT_EQ(R.ScenariosSkipped, R.ScenariosChecked);
  EXPECT_EQ(R.RetriesPerformed, R.ScenariosChecked); // one retry each
  EXPECT_EQ(R.Outcome.Status, RunStatus::StepBudgetExceeded);
  EXPECT_TRUE(R.Violations.empty());
}

} // namespace
