file(REMOVE_RECURSE
  "libnv_eval.a"
)
