# Empty compiler generated dependencies file for nv_eval.
# This may be replaced when dependencies are built.
