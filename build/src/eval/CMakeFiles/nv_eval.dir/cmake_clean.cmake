file(REMOVE_RECURSE
  "CMakeFiles/nv_eval.dir/Compile.cpp.o"
  "CMakeFiles/nv_eval.dir/Compile.cpp.o.d"
  "CMakeFiles/nv_eval.dir/Interp.cpp.o"
  "CMakeFiles/nv_eval.dir/Interp.cpp.o.d"
  "CMakeFiles/nv_eval.dir/NvContext.cpp.o"
  "CMakeFiles/nv_eval.dir/NvContext.cpp.o.d"
  "CMakeFiles/nv_eval.dir/ProgramEvaluator.cpp.o"
  "CMakeFiles/nv_eval.dir/ProgramEvaluator.cpp.o.d"
  "CMakeFiles/nv_eval.dir/SymBdd.cpp.o"
  "CMakeFiles/nv_eval.dir/SymBdd.cpp.o.d"
  "CMakeFiles/nv_eval.dir/Value.cpp.o"
  "CMakeFiles/nv_eval.dir/Value.cpp.o.d"
  "libnv_eval.a"
  "libnv_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
