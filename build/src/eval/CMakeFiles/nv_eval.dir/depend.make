# Empty dependencies file for nv_eval.
# This may be replaced when dependencies are built.
