
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/Compile.cpp" "src/eval/CMakeFiles/nv_eval.dir/Compile.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/Compile.cpp.o.d"
  "/root/repo/src/eval/Interp.cpp" "src/eval/CMakeFiles/nv_eval.dir/Interp.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/Interp.cpp.o.d"
  "/root/repo/src/eval/NvContext.cpp" "src/eval/CMakeFiles/nv_eval.dir/NvContext.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/NvContext.cpp.o.d"
  "/root/repo/src/eval/ProgramEvaluator.cpp" "src/eval/CMakeFiles/nv_eval.dir/ProgramEvaluator.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/ProgramEvaluator.cpp.o.d"
  "/root/repo/src/eval/SymBdd.cpp" "src/eval/CMakeFiles/nv_eval.dir/SymBdd.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/SymBdd.cpp.o.d"
  "/root/repo/src/eval/Value.cpp" "src/eval/CMakeFiles/nv_eval.dir/Value.cpp.o" "gcc" "src/eval/CMakeFiles/nv_eval.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bdd/CMakeFiles/nv_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
