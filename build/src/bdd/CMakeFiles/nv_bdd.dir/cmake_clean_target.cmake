file(REMOVE_RECURSE
  "libnv_bdd.a"
)
