file(REMOVE_RECURSE
  "CMakeFiles/nv_bdd.dir/Mtbdd.cpp.o"
  "CMakeFiles/nv_bdd.dir/Mtbdd.cpp.o.d"
  "libnv_bdd.a"
  "libnv_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
