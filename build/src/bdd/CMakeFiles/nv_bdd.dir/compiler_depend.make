# Empty compiler generated dependencies file for nv_bdd.
# This may be replaced when dependencies are built.
