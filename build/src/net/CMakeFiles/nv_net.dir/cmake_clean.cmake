file(REMOVE_RECURSE
  "CMakeFiles/nv_net.dir/Generators.cpp.o"
  "CMakeFiles/nv_net.dir/Generators.cpp.o.d"
  "CMakeFiles/nv_net.dir/Topology.cpp.o"
  "CMakeFiles/nv_net.dir/Topology.cpp.o.d"
  "libnv_net.a"
  "libnv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
