file(REMOVE_RECURSE
  "libnv_net.a"
)
