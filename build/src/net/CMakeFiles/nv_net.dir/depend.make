# Empty dependencies file for nv_net.
# This may be replaced when dependencies are built.
