# Empty compiler generated dependencies file for nv_sim.
# This may be replaced when dependencies are built.
