file(REMOVE_RECURSE
  "CMakeFiles/nv_sim.dir/Simulator.cpp.o"
  "CMakeFiles/nv_sim.dir/Simulator.cpp.o.d"
  "libnv_sim.a"
  "libnv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
