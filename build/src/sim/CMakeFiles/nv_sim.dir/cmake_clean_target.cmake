file(REMOVE_RECURSE
  "libnv_sim.a"
)
