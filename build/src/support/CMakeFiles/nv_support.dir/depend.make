# Empty dependencies file for nv_support.
# This may be replaced when dependencies are built.
