file(REMOVE_RECURSE
  "libnv_support.a"
)
