file(REMOVE_RECURSE
  "CMakeFiles/nv_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/nv_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/nv_support.dir/Fatal.cpp.o"
  "CMakeFiles/nv_support.dir/Fatal.cpp.o.d"
  "libnv_support.a"
  "libnv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
