file(REMOVE_RECURSE
  "CMakeFiles/nv_smt.dir/SmtEncoder.cpp.o"
  "CMakeFiles/nv_smt.dir/SmtEncoder.cpp.o.d"
  "CMakeFiles/nv_smt.dir/SmtEval.cpp.o"
  "CMakeFiles/nv_smt.dir/SmtEval.cpp.o.d"
  "CMakeFiles/nv_smt.dir/Verifier.cpp.o"
  "CMakeFiles/nv_smt.dir/Verifier.cpp.o.d"
  "libnv_smt.a"
  "libnv_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
