# Empty dependencies file for nv_smt.
# This may be replaced when dependencies are built.
