file(REMOVE_RECURSE
  "libnv_smt.a"
)
