# Empty dependencies file for nv_analysis.
# This may be replaced when dependencies are built.
