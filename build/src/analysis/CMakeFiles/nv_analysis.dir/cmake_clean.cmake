file(REMOVE_RECURSE
  "CMakeFiles/nv_analysis.dir/FaultTolerance.cpp.o"
  "CMakeFiles/nv_analysis.dir/FaultTolerance.cpp.o.d"
  "CMakeFiles/nv_analysis.dir/SymbolicFailures.cpp.o"
  "CMakeFiles/nv_analysis.dir/SymbolicFailures.cpp.o.d"
  "libnv_analysis.a"
  "libnv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
