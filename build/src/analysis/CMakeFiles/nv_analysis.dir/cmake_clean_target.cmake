file(REMOVE_RECURSE
  "libnv_analysis.a"
)
