# Empty compiler generated dependencies file for nv_core.
# This may be replaced when dependencies are built.
