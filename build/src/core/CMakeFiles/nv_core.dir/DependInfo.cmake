
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Ast.cpp" "src/core/CMakeFiles/nv_core.dir/Ast.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Ast.cpp.o.d"
  "/root/repo/src/core/Lexer.cpp" "src/core/CMakeFiles/nv_core.dir/Lexer.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Lexer.cpp.o.d"
  "/root/repo/src/core/Parser.cpp" "src/core/CMakeFiles/nv_core.dir/Parser.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Parser.cpp.o.d"
  "/root/repo/src/core/Printer.cpp" "src/core/CMakeFiles/nv_core.dir/Printer.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Printer.cpp.o.d"
  "/root/repo/src/core/Stdlib.cpp" "src/core/CMakeFiles/nv_core.dir/Stdlib.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Stdlib.cpp.o.d"
  "/root/repo/src/core/Type.cpp" "src/core/CMakeFiles/nv_core.dir/Type.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/Type.cpp.o.d"
  "/root/repo/src/core/TypeChecker.cpp" "src/core/CMakeFiles/nv_core.dir/TypeChecker.cpp.o" "gcc" "src/core/CMakeFiles/nv_core.dir/TypeChecker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/nv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
