file(REMOVE_RECURSE
  "libnv_core.a"
)
