file(REMOVE_RECURSE
  "CMakeFiles/nv_core.dir/Ast.cpp.o"
  "CMakeFiles/nv_core.dir/Ast.cpp.o.d"
  "CMakeFiles/nv_core.dir/Lexer.cpp.o"
  "CMakeFiles/nv_core.dir/Lexer.cpp.o.d"
  "CMakeFiles/nv_core.dir/Parser.cpp.o"
  "CMakeFiles/nv_core.dir/Parser.cpp.o.d"
  "CMakeFiles/nv_core.dir/Printer.cpp.o"
  "CMakeFiles/nv_core.dir/Printer.cpp.o.d"
  "CMakeFiles/nv_core.dir/Stdlib.cpp.o"
  "CMakeFiles/nv_core.dir/Stdlib.cpp.o.d"
  "CMakeFiles/nv_core.dir/Type.cpp.o"
  "CMakeFiles/nv_core.dir/Type.cpp.o.d"
  "CMakeFiles/nv_core.dir/TypeChecker.cpp.o"
  "CMakeFiles/nv_core.dir/TypeChecker.cpp.o.d"
  "libnv_core.a"
  "libnv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
