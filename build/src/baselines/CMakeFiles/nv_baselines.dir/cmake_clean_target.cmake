file(REMOVE_RECURSE
  "libnv_baselines.a"
)
