# Empty dependencies file for nv_baselines.
# This may be replaced when dependencies are built.
