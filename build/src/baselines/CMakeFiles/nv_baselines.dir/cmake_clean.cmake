file(REMOVE_RECURSE
  "CMakeFiles/nv_baselines.dir/BatfishSim.cpp.o"
  "CMakeFiles/nv_baselines.dir/BatfishSim.cpp.o.d"
  "CMakeFiles/nv_baselines.dir/NaiveFailures.cpp.o"
  "CMakeFiles/nv_baselines.dir/NaiveFailures.cpp.o.d"
  "libnv_baselines.a"
  "libnv_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
