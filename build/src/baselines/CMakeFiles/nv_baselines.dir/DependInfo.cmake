
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/BatfishSim.cpp" "src/baselines/CMakeFiles/nv_baselines.dir/BatfishSim.cpp.o" "gcc" "src/baselines/CMakeFiles/nv_baselines.dir/BatfishSim.cpp.o.d"
  "/root/repo/src/baselines/NaiveFailures.cpp" "src/baselines/CMakeFiles/nv_baselines.dir/NaiveFailures.cpp.o" "gcc" "src/baselines/CMakeFiles/nv_baselines.dir/NaiveFailures.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/nv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/nv_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nv_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/nv_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/nv_transform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
