file(REMOVE_RECURSE
  "CMakeFiles/nv_transform.dir/Transforms.cpp.o"
  "CMakeFiles/nv_transform.dir/Transforms.cpp.o.d"
  "libnv_transform.a"
  "libnv_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
