# Empty compiler generated dependencies file for nv_transform.
# This may be replaced when dependencies are built.
