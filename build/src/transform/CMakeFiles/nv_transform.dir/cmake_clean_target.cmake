file(REMOVE_RECURSE
  "libnv_transform.a"
)
