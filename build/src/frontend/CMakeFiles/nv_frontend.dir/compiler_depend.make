# Empty compiler generated dependencies file for nv_frontend.
# This may be replaced when dependencies are built.
