file(REMOVE_RECURSE
  "libnv_frontend.a"
)
