# Empty dependencies file for nv_frontend.
# This may be replaced when dependencies are built.
