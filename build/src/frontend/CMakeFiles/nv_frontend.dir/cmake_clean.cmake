file(REMOVE_RECURSE
  "CMakeFiles/nv_frontend.dir/Config.cpp.o"
  "CMakeFiles/nv_frontend.dir/Config.cpp.o.d"
  "CMakeFiles/nv_frontend.dir/RouteMapDag.cpp.o"
  "CMakeFiles/nv_frontend.dir/RouteMapDag.cpp.o.d"
  "CMakeFiles/nv_frontend.dir/Translate.cpp.o"
  "CMakeFiles/nv_frontend.dir/Translate.cpp.o.d"
  "libnv_frontend.a"
  "libnv_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
