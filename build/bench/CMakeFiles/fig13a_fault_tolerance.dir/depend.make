# Empty dependencies file for fig13a_fault_tolerance.
# This may be replaced when dependencies are built.
