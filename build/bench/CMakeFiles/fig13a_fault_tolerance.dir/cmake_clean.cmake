file(REMOVE_RECURSE
  "CMakeFiles/fig13a_fault_tolerance.dir/fig13a_fault_tolerance.cpp.o"
  "CMakeFiles/fig13a_fault_tolerance.dir/fig13a_fault_tolerance.cpp.o.d"
  "fig13a_fault_tolerance"
  "fig13a_fault_tolerance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
