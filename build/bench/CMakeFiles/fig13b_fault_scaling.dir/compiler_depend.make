# Empty compiler generated dependencies file for fig13b_fault_scaling.
# This may be replaced when dependencies are built.
