# Empty dependencies file for fig13c_single_vs_all.
# This may be replaced when dependencies are built.
