file(REMOVE_RECURSE
  "CMakeFiles/fig13c_single_vs_all.dir/fig13c_single_vs_all.cpp.o"
  "CMakeFiles/fig13c_single_vs_all.dir/fig13c_single_vs_all.cpp.o.d"
  "fig13c_single_vs_all"
  "fig13c_single_vs_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13c_single_vs_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
