file(REMOVE_RECURSE
  "CMakeFiles/ablation_incremental_merge.dir/ablation_incremental_merge.cpp.o"
  "CMakeFiles/ablation_incremental_merge.dir/ablation_incremental_merge.cpp.o.d"
  "ablation_incremental_merge"
  "ablation_incremental_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_incremental_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
