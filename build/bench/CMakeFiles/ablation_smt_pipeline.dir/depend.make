# Empty dependencies file for ablation_smt_pipeline.
# This may be replaced when dependencies are built.
