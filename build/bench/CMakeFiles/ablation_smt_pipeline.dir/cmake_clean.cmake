file(REMOVE_RECURSE
  "CMakeFiles/ablation_smt_pipeline.dir/ablation_smt_pipeline.cpp.o"
  "CMakeFiles/ablation_smt_pipeline.dir/ablation_smt_pipeline.cpp.o.d"
  "ablation_smt_pipeline"
  "ablation_smt_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_smt_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
