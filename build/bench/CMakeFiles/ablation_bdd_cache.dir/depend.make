# Empty dependencies file for ablation_bdd_cache.
# This may be replaced when dependencies are built.
