file(REMOVE_RECURSE
  "CMakeFiles/ablation_bdd_cache.dir/ablation_bdd_cache.cpp.o"
  "CMakeFiles/ablation_bdd_cache.dir/ablation_bdd_cache.cpp.o.d"
  "ablation_bdd_cache"
  "ablation_bdd_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bdd_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
