file(REMOVE_RECURSE
  "CMakeFiles/fig14_simulation.dir/fig14_simulation.cpp.o"
  "CMakeFiles/fig14_simulation.dir/fig14_simulation.cpp.o.d"
  "fig14_simulation"
  "fig14_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
