# Empty dependencies file for fig14_simulation.
# This may be replaced when dependencies are built.
