# Empty compiler generated dependencies file for fig12_smt.
# This may be replaced when dependencies are built.
