file(REMOVE_RECURSE
  "CMakeFiles/fig12_smt.dir/fig12_smt.cpp.o"
  "CMakeFiles/fig12_smt.dir/fig12_smt.cpp.o.d"
  "fig12_smt"
  "fig12_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
