file(REMOVE_RECURSE
  "CMakeFiles/nv.dir/nv.cpp.o"
  "CMakeFiles/nv.dir/nv.cpp.o.d"
  "nv"
  "nv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
