# Empty compiler generated dependencies file for nv.
# This may be replaced when dependencies are built.
