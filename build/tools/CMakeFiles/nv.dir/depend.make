# Empty dependencies file for nv.
# This may be replaced when dependencies are built.
