# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(core_tests "/root/repo/build/tests/core_tests")
set_tests_properties(core_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bdd_tests "/root/repo/build/tests/bdd_tests")
set_tests_properties(bdd_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(eval_tests "/root/repo/build/tests/eval_tests")
set_tests_properties(eval_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compile_tests "/root/repo/build/tests/compile_tests")
set_tests_properties(compile_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(transform_tests "/root/repo/build/tests/transform_tests")
set_tests_properties(transform_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_tolerance_tests "/root/repo/build/tests/fault_tolerance_tests")
set_tests_properties(fault_tolerance_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;23;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(smt_tests "/root/repo/build/tests/smt_tests")
set_tests_properties(smt_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;26;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_tests "/root/repo/build/tests/net_tests")
set_tests_properties(net_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;29;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(frontend_tests "/root/repo/build/tests/frontend_tests")
set_tests_properties(frontend_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;32;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_tests "/root/repo/build/tests/property_tests")
set_tests_properties(property_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;36;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rib_tests "/root/repo/build/tests/rib_tests")
set_tests_properties(rib_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;40;nv_add_test;/root/repo/tests/CMakeLists.txt;0;")
