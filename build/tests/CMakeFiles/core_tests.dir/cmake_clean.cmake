file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/CoreTests.cpp.o"
  "CMakeFiles/core_tests.dir/CoreTests.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
