file(REMOVE_RECURSE
  "CMakeFiles/eval_tests.dir/EvalTests.cpp.o"
  "CMakeFiles/eval_tests.dir/EvalTests.cpp.o.d"
  "eval_tests"
  "eval_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
