file(REMOVE_RECURSE
  "CMakeFiles/compile_tests.dir/CompileTests.cpp.o"
  "CMakeFiles/compile_tests.dir/CompileTests.cpp.o.d"
  "compile_tests"
  "compile_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compile_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
