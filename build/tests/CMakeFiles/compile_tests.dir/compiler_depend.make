# Empty compiler generated dependencies file for compile_tests.
# This may be replaced when dependencies are built.
