# Empty dependencies file for fault_tolerance_tests.
# This may be replaced when dependencies are built.
