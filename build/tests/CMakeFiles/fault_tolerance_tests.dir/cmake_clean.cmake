file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerance_tests.dir/FaultToleranceTests.cpp.o"
  "CMakeFiles/fault_tolerance_tests.dir/FaultToleranceTests.cpp.o.d"
  "fault_tolerance_tests"
  "fault_tolerance_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerance_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
