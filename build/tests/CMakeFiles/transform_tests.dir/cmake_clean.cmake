file(REMOVE_RECURSE
  "CMakeFiles/transform_tests.dir/TransformTests.cpp.o"
  "CMakeFiles/transform_tests.dir/TransformTests.cpp.o.d"
  "transform_tests"
  "transform_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
