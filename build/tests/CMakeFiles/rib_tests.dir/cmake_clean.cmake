file(REMOVE_RECURSE
  "CMakeFiles/rib_tests.dir/RibTests.cpp.o"
  "CMakeFiles/rib_tests.dir/RibTests.cpp.o.d"
  "rib_tests"
  "rib_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rib_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
