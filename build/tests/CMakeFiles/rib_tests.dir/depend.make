# Empty dependencies file for rib_tests.
# This may be replaced when dependencies are built.
