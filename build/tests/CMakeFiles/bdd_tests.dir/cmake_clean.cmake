file(REMOVE_RECURSE
  "CMakeFiles/bdd_tests.dir/BddTests.cpp.o"
  "CMakeFiles/bdd_tests.dir/BddTests.cpp.o.d"
  "bdd_tests"
  "bdd_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
