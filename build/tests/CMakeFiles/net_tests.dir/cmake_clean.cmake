file(REMOVE_RECURSE
  "CMakeFiles/net_tests.dir/NetTests.cpp.o"
  "CMakeFiles/net_tests.dir/NetTests.cpp.o.d"
  "net_tests"
  "net_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
