file(REMOVE_RECURSE
  "CMakeFiles/smt_tests.dir/SmtTests.cpp.o"
  "CMakeFiles/smt_tests.dir/SmtTests.cpp.o.d"
  "smt_tests"
  "smt_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
