file(REMOVE_RECURSE
  "CMakeFiles/config2nv.dir/config2nv.cpp.o"
  "CMakeFiles/config2nv.dir/config2nv.cpp.o.d"
  "config2nv"
  "config2nv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config2nv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
