# Empty dependencies file for config2nv.
# This may be replaced when dependencies are built.
