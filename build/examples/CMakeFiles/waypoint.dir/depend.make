# Empty dependencies file for waypoint.
# This may be replaced when dependencies are built.
