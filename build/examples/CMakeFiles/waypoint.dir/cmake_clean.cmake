file(REMOVE_RECURSE
  "CMakeFiles/waypoint.dir/waypoint.cpp.o"
  "CMakeFiles/waypoint.dir/waypoint.cpp.o.d"
  "waypoint"
  "waypoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waypoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
