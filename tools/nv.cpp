//===- nv.cpp - The nv command-line driver ------------------------------------===//
//
// Part of nv-cpp. A command-line front end over the library:
//
//   nv check  FILE.nv                 parse + type check, print summary
//   nv print  FILE.nv                 pretty-print the parsed program
//   nv sim    FILE.nv [opts]          simulate to a stable state (Alg. 1)
//   nv verify FILE.nv [opts]          SMT-verify the assert over all
//                                     stable states / symbolic values
//   nv ft     FILE.nv [opts]          fault-tolerance meta-analysis (Fig. 5)
//   nv naive  FILE.nv [opts]          naive per-scenario failure sweep
//                                     (sharded, checkpointable)
//   nv journal FILE.journal           inspect a checkpoint journal
//   nv serve  SOCKET [opts]           long-lived verification daemon on a
//                                     Unix socket (newline-delimited JSON);
//                                     --threads N, --journal PATH (request
//                                     crash log), --max-sessions N
//   nv req    SOCKET [JSON...]        send request(s) to a daemon; with no
//                                     arguments, reads one request per
//                                     stdin line (scripted session); exits
//                                     with the last response's code
//
// Common options:
//   --native            use the closure-compiled evaluator (sim/ft)
//   --sym NAME=EXPR     bind a symbolic to a concrete NV expression (sim/ft)
//   --timeout SECS      SMT timeout (verify)
//   --baseline          MineSweeper-style encoder options (verify)
//   --links K           number of simultaneous link failures (ft/naive)
//   --node              also fail one node per scenario (ft/naive)
//   --threads N         worker threads for the sharded phases (ft/naive)
//   --deadline-ms MS    wall-clock budget for the run (sim/verify/ft/naive)
//   --node-budget N     MTBDD live-node budget (sim/ft/naive)
//   --max-steps N       simulator step (worklist-pop) budget (sim/ft/naive)
//   --resume PATH       checkpoint/resume journal (ft/naive): completed
//                       units replay, new completions append durably
//   --retry N           attempts per unit for transient trips (ft/naive)
//   --json PATH         machine-readable result (ft/naive)
//   --workers N         run the sharded units on N crash-isolated worker
//                       subprocesses (ft/naive; 0 = in-process, the
//                       default). A worker crash requeues its unit; a unit
//                       that kills several workers is quarantined with a
//                       runnable repro script and the run completes with
//                       exit code 3. Aggregates are bit-identical to
//                       --workers 0 for any N.
//   --chunk N           scenarios per check chunk (ft; default 512) — the
//                       journal/fleet unit of the assert check
//
// There is also a hidden `nv worker FILE --cmd <naive|ft> [opts]` verb:
// the fleet re-execs the current binary with that verb to obtain workers
// (job pipe on fd 3, result pipe on fd 4 — see support/Fleet.h).
//
// SIGINT/SIGTERM trigger graceful shutdown in sim/verify/ft/naive:
// in-flight jobs drain at their governor safe points, the journal is
// already durable per completed unit, and the exit code is 3.
//
// Exit codes:
//   0  success (property holds / command completed)
//   1  property falsified (failed assert, FT violations, counterexample)
//   2  user error (bad usage, parse/type/evaluation error, solver unknown,
//      corrupt or mismatched --resume journal)
//   3  resource exhausted (deadline, step/node budget, cancellation,
//      injected fault) — the run ended with a structured outcome, not a
//      verdict
//   4  internal error
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "core/Parser.h"
#include "serve/Client.h"
#include "serve/Json.h"
#include "serve/Server.h"
#include "serve/Supervisor.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"
#include "support/Fleet.h"
#include "support/Journal.h"
#include "support/Resume.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace nv;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nv <check|print|sim|verify|ft|naive|journal> FILE "
               "[options]\n"
               "       nv serve SOCKET [--threads N] [--journal PATH] "
               "[--max-sessions N]\n"
               "                [--max-inflight N] [--queue-depth N] "
               "[--heap-budget-mb N]\n"
               "                [--memo-cap N] [--idle-timeout-ms MS] "
               "[--max-line-bytes N]\n"
               "                [--supervise] [--restart-backoff-ms MS] "
               "[--restart-cap-ms MS]\n"
               "                [--max-restarts N]\n"
               "       nv req SOCKET [--timeout-ms MS] [--retries N] "
               "[JSON...]\n"
               "                (no JSON: one request per stdin line; "
               "exit 3 on timeout/overload)\n"
               "  --native  --sym NAME=EXPR  --timeout SECS  --baseline\n"
               "  --links K  --node  --threads N\n"
               "  --deadline-ms MS  --node-budget N  --max-steps N\n"
               "  --resume PATH  --retry N  --json PATH\n"
               "  --workers N (ft/naive: crash-isolated worker fleet; 0 = "
               "in-process)\n"
               "  --chunk N (ft: scenarios per check chunk, default 512)\n");
  return 2;
}

struct CliOptions {
  std::string Command;
  std::string File;
  bool Native = false;
  bool Baseline = false;
  bool NodeFailure = false;
  unsigned Links = 1;
  unsigned Threads = 1;
  unsigned TimeoutSec = 0;
  unsigned Retry = 1;
  unsigned Workers = 0;  ///< ft/naive: fleet size (0 = in-process).
  unsigned Chunk = 512;  ///< ft: scenarios per check chunk.
  std::string WorkerCmd; ///< hidden worker verb: which analysis to serve.
  double DeadlineMs = 0;
  uint64_t MaxSteps = 0;
  uint64_t NodeBudget = 0;
  std::string ResumePath;
  std::string JsonPath;
  CancelToken *Cancel = nullptr; ///< Set by main for the engine commands.
  std::vector<std::pair<std::string, std::string>> Syms;

  /// Folds the governance flags into \p B (leaves unset knobs alone, so
  /// engine defaults like the simulator's step budget survive).
  void applyBudget(RunBudget &B) const {
    if (DeadlineMs > 0)
      B.DeadlineMs = DeadlineMs;
    if (MaxSteps > 0)
      B.MaxSteps = MaxSteps;
    if (NodeBudget > 0)
      B.MaxLiveNodes = static_cast<size_t>(NodeBudget);
    if (Cancel)
      B.Cancel = Cancel;
  }

  /// The journal binding of an ft/naive run: everything that changes the
  /// unit list or unit semantics. Thread count and file path are recorded
  /// as provenance only — results are thread-count-invariant by design,
  /// and the program content (not its path) is what binds.
  RunBinding binding(const std::string &ProgramText) const {
    RunBinding B;
    B.set("tool", "nv");
    B.set("command", Command);
    B.set("program", fnv1a64Hex(ProgramText));
    B.setInt("links", Links);
    B.setInt("node-failure", NodeFailure ? 1 : 0);
    B.setInt("native", Native ? 1 : 0);
    B.set("deadline-ms", std::to_string(DeadlineMs));
    B.setInt("max-steps", (long long)MaxSteps);
    B.setInt("node-budget", (long long)NodeBudget);
    B.setInt("retry", Retry);
    if (Command == "ft")
      B.setInt("chunk", Chunk); // chunking changes ft's unit list
    // Worker count deliberately does NOT bind: fleet and in-process runs
    // produce identical unit records, so their journals are interchangeable
    // (resume a crashed --workers 8 run with --workers 0, or vice versa).
    B.setProvenance("workers", std::to_string(Workers));
    B.setProvenance("threads", std::to_string(Threads));
    B.setProvenance("file", File);
    return B;
  }
};

std::optional<CliOptions> parseCli(int argc, char **argv) {
  if (argc < 3)
    return std::nullopt;
  CliOptions O;
  O.Command = argv[1];
  O.File = argv[2];
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--native")) {
      O.Native = true;
    } else if (!std::strcmp(argv[I], "--baseline")) {
      O.Baseline = true;
    } else if (!std::strcmp(argv[I], "--node")) {
      O.NodeFailure = true;
    } else if (!std::strcmp(argv[I], "--links") && I + 1 < argc) {
      O.Links = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--threads") && I + 1 < argc) {
      O.Threads = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--retry") && I + 1 < argc) {
      O.Retry = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--workers") && I + 1 < argc) {
      O.Workers = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--chunk") && I + 1 < argc) {
      O.Chunk = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--cmd") && I + 1 < argc) {
      O.WorkerCmd = argv[++I];
    } else if (!std::strcmp(argv[I], "--resume") && I + 1 < argc) {
      O.ResumePath = argv[++I];
    } else if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      O.JsonPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--timeout") && I + 1 < argc) {
      O.TimeoutSec = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--deadline-ms") && I + 1 < argc) {
      O.DeadlineMs = atof(argv[++I]);
    } else if (!std::strcmp(argv[I], "--max-steps") && I + 1 < argc) {
      O.MaxSteps = strtoull(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--node-budget") && I + 1 < argc) {
      O.NodeBudget = strtoull(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--sym") && I + 1 < argc) {
      std::string Arg = argv[++I];
      size_t Eq = Arg.find('=');
      if (Eq == std::string::npos)
        return std::nullopt;
      O.Syms.emplace_back(Arg.substr(0, Eq), Arg.substr(Eq + 1));
    } else {
      return std::nullopt;
    }
  }
  return O;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Resolves includes relative to the program's directory before falling
/// back to the built-in registry.
ParseOptions fileParseOptions(const std::string &Path) {
  std::string Dir = ".";
  size_t Slash = Path.rfind('/');
  if (Slash != std::string::npos)
    Dir = Path.substr(0, Slash);
  ParseOptions Opts;
  Opts.Resolver = [Dir](const std::string &Name) -> std::optional<std::string> {
    if (auto Src = readFile(Dir + "/" + Name + ".nv"))
      return Src;
    return std::nullopt;
  };
  return Opts;
}

SymbolicAssignment resolveSyms(NvContext &Ctx, const Program &P,
                               const CliOptions &O, bool &Ok) {
  SymbolicAssignment Out;
  Ok = true;
  InterpProgramEvaluator Boot(Ctx, P);
  for (const auto &[Name, Src] : O.Syms) {
    DiagnosticEngine Diags;
    ExprPtr E = parseExprString(Src, Diags);
    if (!E || !typeCheckExpr(E, Diags)) {
      std::fprintf(stderr, "bad --sym %s=%s:\n%s", Name.c_str(), Src.c_str(),
                   Diags.str().c_str());
      Ok = false;
      continue;
    }
    Out[Name] = Boot.evalUnderGlobals(E);
  }
  return Out;
}

int cmdSim(const Program &P, const CliOptions &O) {
  NvContext Ctx(P.numNodes());
  bool Ok = true;
  SymbolicAssignment Syms = resolveSyms(Ctx, P, O, Ok);
  if (!Ok)
    return 2;
  std::unique_ptr<ProtocolEvaluator> Eval;
  if (O.Native)
    Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, P, Syms);
  else
    Eval = std::make_unique<InterpProgramEvaluator>(Ctx, P, Syms);
  if (!Eval->requiresHold())
    std::printf("warning: a require clause fails under this symbolic "
                "assignment\n");
  SimOptions SO;
  O.applyBudget(SO.Budget);
  SimResult R = simulate(P, *Eval, SO);
  if (!R.Converged) {
    std::printf("simulation did not converge (%llu steps): %s\n",
                static_cast<unsigned long long>(R.Stats.Pops),
                R.Outcome.str().c_str());
    return exitCodeForOutcome(R.Outcome);
  }
  for (uint32_t U = 0; U < P.numNodes(); ++U)
    std::printf("node %u: %s\n", U, Ctx.printValue(R.Labels[U]).c_str());
  if (P.assertDecl()) {
    auto Failed = checkAsserts(*Eval, R);
    if (Failed.empty()) {
      std::printf("assertion holds at every node\n");
    } else {
      std::printf("assertion FAILS at %zu node(s):", Failed.size());
      for (uint32_t U : Failed)
        std::printf(" %u", U);
      std::printf("\n");
      return 1;
    }
  }
  return 0;
}

int cmdVerify(const Program &P, const CliOptions &O) {
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  Opts.TimeoutMs = O.TimeoutSec * 1000;
  O.applyBudget(Opts.Budget);
  if (O.Baseline) {
    Opts.Smt.ConstantFold = false;
    Opts.Smt.NameIntermediates = true;
    Opts.UseTacticPipeline = false;
  }
  VerifyResult R = verifyProgram(P, Opts, Diags);
  Diags.printToStderr();
  switch (R.Status) {
  case VerifyStatus::Verified:
    std::printf("verified (encode %.1fms, solve %.1fms, %llu assertions)\n",
                R.EncodeMs, R.SolveMs,
                static_cast<unsigned long long>(R.NumAssertions));
    return 0;
  case VerifyStatus::Falsified:
    std::printf("FALSIFIED (solve %.1fms); counterexample:\n%s", R.SolveMs,
                R.Counterexample.c_str());
    return 1;
  case VerifyStatus::Unknown:
    std::printf("unknown (solver incompleteness)\n");
    return 2;
  case VerifyStatus::ResourceExhausted:
    std::printf("resource exhausted: %s\n", R.Outcome.str().c_str());
    return 3;
  case VerifyStatus::EncodingError:
    return exitCodeForOutcome(R.Outcome);
  }
  return 4;
}

/// Opens the --resume journal when one was requested. Returns false with
/// \p ExitCode set on failure: corruption or a binding mismatch is a user
/// error (2) per the exit-code table — never silently reused.
bool openResume(const CliOptions &O, const std::string &ProgramText,
                std::unique_ptr<ResumeLog> &Log, int &ExitCode) {
  if (O.ResumePath.empty())
    return true;
  ResumeLog::OpenResult R = ResumeLog::open(O.ResumePath, O.binding(ProgramText));
  if (!R.Log) {
    std::fprintf(stderr, "nv: %s\n", R.Error.c_str());
    ExitCode = 2;
    return false;
  }
  Log = std::move(R.Log);
  if (Log->tornTailDropped())
    std::fprintf(stderr,
                 "nv: note: %s ended mid-entry (interrupted write); the "
                 "torn entry was dropped and that unit re-runs\n",
                 Log->path().c_str());
  if (Log->replayedCount())
    std::printf("resuming from %s: %zu completed unit(s) replayed\n",
                Log->path().c_str(), Log->replayedCount());
  return true;
}

/// Minimal JSON string escaping for outcome/detail text.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

/// Fingerprint of the violation set in scenario order — the run's semantic
/// payload. Identical for live and replayed violations (routeStr), which
/// is what makes "bit-identical aggregate" checkable from the JSON alone.
std::string violationsHash(const std::vector<FtViolation> &Vs) {
  std::string Blob;
  for (const FtViolation &V : Vs)
    Blob += V.Scenario.str() + "@" + std::to_string(V.Node) + "=" +
            V.routeStr() + "\n";
  return fnv1a64Hex(Blob);
}

//===----------------------------------------------------------------------===//
// Worker fleet (ft/naive --workers N)
//===----------------------------------------------------------------------===//

/// Builds ft/naive analysis options from the CLI flags. The fleet worker
/// MUST build these identically to the coordinator — unit semantics (and
/// so records) depend on them.
FtOptions ftOptionsFromCli(const CliOptions &O) {
  FtOptions Opts;
  Opts.LinkFailures = O.Links;
  Opts.NodeFailure = O.NodeFailure;
  O.applyBudget(Opts.Budget);
  Opts.Retry.MaxAttempts = O.Retry;
  Opts.CheckChunkSize = O.Chunk;
  return Opts;
}

/// The argv a fleet re-execs to obtain a worker: the hidden `worker` verb
/// plus exactly the flags that influence unit semantics. Thread count and
/// journal path stay coordinator-side; budgets travel so a worker governs
/// each unit the way the in-process path would.
std::vector<std::string> fleetWorkerArgv(const CliOptions &O,
                                         const char *Cmd) {
  std::vector<std::string> A{getExecutablePath(), "worker", O.File,
                             "--cmd",             Cmd,      "--links",
                             std::to_string(O.Links)};
  if (O.NodeFailure)
    A.push_back("--node");
  if (O.Native)
    A.push_back("--native");
  if (O.Retry != 1) {
    A.push_back("--retry");
    A.push_back(std::to_string(O.Retry));
  }
  if (O.DeadlineMs > 0) {
    A.push_back("--deadline-ms");
    A.push_back(std::to_string(O.DeadlineMs));
  }
  if (O.MaxSteps) {
    A.push_back("--max-steps");
    A.push_back(std::to_string(O.MaxSteps));
  }
  if (O.NodeBudget) {
    A.push_back("--node-budget");
    A.push_back(std::to_string(O.NodeBudget));
  }
  if (!std::strcmp(Cmd, "ft")) {
    A.push_back("--chunk");
    A.push_back(std::to_string(O.Chunk));
  }
  return A;
}

/// The hidden `nv worker FILE --cmd <naive|ft>` verb: serves that
/// analysis' job units over the fleet pipes (fd 3 jobs in, fd 4 results
/// out — see support/Fleet.h). Job handler exceptions kill the process by
/// design; the coordinator's requeue/quarantine machinery owns recovery.
int cmdWorker(const Program &P, const CliOptions &O) {
  FtOptions Opts = ftOptionsFromCli(O);

  if (O.WorkerCmd == "naive") {
    // One parse + evaluator + arena for the process lifetime; the handler
    // collects back to the pinned baseline between scenarios, mirroring
    // one persistent thread of naiveFaultToleranceParallel.
    auto Scenarios = enumerateScenarios(P, Opts);
    NvContext Ctx(P.numNodes());
    InterpProgramEvaluator Eval(Ctx, P);
    const Value *Drop = Ctx.noneV();
    Ctx.pinValue(Drop);
    return runFleetWorker([&](const FleetJob &J) -> UnitRecord {
      if (J.Key.size() < 2 || J.Key[0] != 's')
        throw std::runtime_error("naive worker: bad job key '" + J.Key + "'");
      size_t I = std::strtoull(J.Key.c_str() + 1, nullptr, 10);
      if (I >= Scenarios.size())
        throw std::runtime_error("naive worker: scenario " + J.Key +
                                 " out of range");
      return runNaiveScenarioRecord(P, Eval, Scenarios, I, Drop, Opts);
    });
  }

  if (O.WorkerCmd == "ft") {
    // The meta-simulation is rebuilt lazily on the first job — a spare
    // worker that never gets one costs nothing, and a respawned worker
    // only pays the cost when it actually has work. The coordinator ran
    // the same (deterministic) transform + simulation before spawning the
    // fleet, so a converged run is guaranteed here.
    struct FtWorkerState {
      NvContext Ctx;
      std::optional<Program> Meta;
      std::unique_ptr<ProtocolEvaluator> MetaEval;
      std::unique_ptr<InterpProgramEvaluator> BaseEval;
      SimResult Sim;
      std::unique_ptr<FtChecker> Checker;
      explicit FtWorkerState(uint32_t N) : Ctx(N) {}
    };
    std::unique_ptr<FtWorkerState> S;
    auto Ensure = [&] {
      if (S)
        return;
      DiagnosticEngine Diags;
      auto Meta = makeFaultTolerantProgram(P, Opts, Diags);
      if (!Meta)
        throw std::runtime_error("ft worker: transform failed:\n" +
                                 Diags.str());
      auto St = std::make_unique<FtWorkerState>(P.numNodes());
      St->Meta = std::move(Meta);
      Governor::Scope Guard(Opts.Budget);
      if (O.Native)
        St->MetaEval =
            std::make_unique<CompiledProgramEvaluator>(St->Ctx, *St->Meta);
      else
        St->MetaEval =
            std::make_unique<InterpProgramEvaluator>(St->Ctx, *St->Meta);
      SimOptions SO;
      SO.Budget = RunBudget{}; // governed by the scope above
      St->Sim = simulate(*St->Meta, *St->MetaEval, SO);
      if (!St->Sim.Converged)
        throw std::runtime_error("ft worker: meta-simulation did not "
                                 "converge: " +
                                 St->Sim.Outcome.str());
      St->BaseEval = std::make_unique<InterpProgramEvaluator>(St->Ctx, P);
      St->Checker = std::make_unique<FtChecker>(St->Ctx, P, *St->BaseEval,
                                                St->Sim, Opts);
      S = std::move(St);
    };
    return runFleetWorker([&](const FleetJob &J) -> UnitRecord {
      if (J.Key.size() < 2 || J.Key[0] != 'c')
        throw std::runtime_error("ft worker: bad job key '" + J.Key + "'");
      Ensure();
      size_t C = std::strtoull(J.Key.c_str() + 1, nullptr, 10);
      if (C >= S->Checker->numChunks())
        throw std::runtime_error("ft worker: chunk " + J.Key +
                                 " out of range");
      return S->Checker->checkChunk(C);
    });
  }

  std::fprintf(stderr, "nv: worker: unknown --cmd '%s'\n",
               O.WorkerCmd.c_str());
  return 2;
}

/// Shared fleet-coordinator plumbing for ft/naive: spawns the fleet over
/// \p Jobs (units already journaled are the caller's to exclude), journals
/// each result as it lands, and surfaces quarantines. Returns 0 to proceed
/// with aggregation, or the exit code of a failed fleet run.
int runUnitFleet(const CliOptions &O, const char *Cmd, ResumeLog *Log,
                 std::vector<FleetJob> Jobs, FleetResult &FR) {
  FleetOptions FO;
  FO.Workers = O.Workers;
  FO.WorkerArgv = fleetWorkerArgv(O, Cmd);
  FO.Cancel = O.Cancel;
  applyFleetEnvOverrides(FO);
  FleetCallbacks CB;
  CB.OnResult = [&](const UnitRecord &Rec) {
    // Durable the moment it exists — a coordinator crash after this point
    // costs nothing; the journal replays the unit on resume.
    if (Log)
      Log->recordDone(Rec);
  };
  FR = runFleet(FO, Jobs, CB);
  if (!FR.Outcome.ok()) {
    std::fprintf(stderr, "nv: fleet run failed: %s\n",
                 FR.Outcome.str().c_str());
    return exitCodeForOutcome(FR.Outcome);
  }
  for (const std::string &K : FR.QuarantinedKeys) {
    auto It = FR.Results.find(K);
    const std::string *Repro =
        It == FR.Results.end() ? nullptr : It->second.get("repro");
    std::printf("QUARANTINED unit %s (%s); repro: %s\n", K.c_str(),
                It == FR.Results.end()
                    ? "?"
                    : It->second.get("detail")
                          ? It->second.get("detail")->c_str()
                          : "?",
                Repro ? Repro->c_str() : "(none)");
  }
  std::printf("fleet: %s\n", FR.Stats.str().c_str());
  return 0;
}

/// A record lookup over a finished fleet run: fleet results first, then
/// units replayed from the journal before the fleet launched.
std::function<bool(const std::string &, UnitRecord &)>
fleetLookup(const FleetResult &FR, ResumeLog *Log) {
  return [&FR, Log](const std::string &Key, UnitRecord &Rec) {
    auto It = FR.Results.find(Key);
    if (It != FR.Results.end()) {
      Rec = It->second;
      return true;
    }
    return Log && Log->replay(Key, Rec);
  };
}

int cmdNaive(const Program &P, const CliOptions &O) {
  FtOptions Opts = ftOptionsFromCli(O);

  std::string Text = printProgram(P);
  std::unique_ptr<ResumeLog> Log;
  int Ec = 0;
  if (!openResume(O, Text, Log, Ec))
    return Ec;
  Opts.Resume = Log.get();

  Stopwatch W;
  FtCheckResult R;
  if (O.Workers > 0) {
    // Fleet mode: scenarios run in crash-isolated worker subprocesses.
    // Workers return the same UnitRecords the in-process path journals, so
    // the aggregate below is bit-identical to --workers 0.
    auto Scenarios = enumerateScenarios(P, Opts);
    std::vector<FleetJob> Jobs;
    size_t Replayed = 0;
    for (size_t I = 0; I < Scenarios.size(); ++I) {
      std::string Key = naiveScenarioKey(I);
      if (Log && Log->isDone(Key))
        ++Replayed;
      else
        Jobs.push_back({Key, ""});
    }
    FleetResult FR;
    if (int FleetEc = runUnitFleet(O, "naive", Log.get(), std::move(Jobs), FR))
      return FleetEc;
    if (!aggregateNaiveScenarioRecords(Scenarios, fleetLookup(FR, Log.get()),
                                       R)) {
      std::fprintf(stderr, "nv: fleet aggregate is missing scenario "
                           "records\n");
      return 4;
    }
    R.ScenariosReplayed = Replayed;
  } else {
    ThreadPool Pool(O.Threads);
    R = naiveFaultToleranceParallel(P, Opts, Pool);
  }
  double Ms = W.elapsedMs();
  std::string VioHash = violationsHash(R.Violations);

  std::printf("%llu scenarios checked (%llu replayed, %llu skipped, %llu "
              "retries), %zu violation(s) in %.1fms\n",
              (unsigned long long)R.ScenariosChecked,
              (unsigned long long)R.ScenariosReplayed,
              (unsigned long long)R.ScenariosSkipped,
              (unsigned long long)R.RetriesPerformed, R.Violations.size(), Ms);
  for (size_t I = 0; I < std::min<size_t>(5, R.Violations.size()); ++I) {
    const FtViolation &V = R.Violations[I];
    std::printf("  %s: node %u selects %s\n", V.Scenario.str().c_str(),
                V.Node, V.routeStr().c_str());
  }

  if (!O.JsonPath.empty()) {
    std::ofstream Out(O.JsonPath);
    // Timing fields end in _ms so resume.sh's diff can strip exactly them;
    // replayed/retry counts are deliberately excluded — they describe how
    // the run was produced, not what it computed.
    Out << "[\n  {\n"
        << "    \"bench\": \"naive\",\n"
        << "    \"network\": \"" << jsonEscape(O.File) << "\",\n"
        << "    \"links\": " << O.Links << ",\n"
        << "    \"node_failure\": " << (O.NodeFailure ? 1 : 0) << ",\n"
        << "    \"scenarios\": " << R.ScenariosChecked << ",\n"
        << "    \"skipped\": " << R.ScenariosSkipped << ",\n"
        << "    \"violations\": " << R.Violations.size() << ",\n"
        << "    \"violations_hash\": \"" << VioHash << "\",\n"
        << "    \"outcome\": \"" << jsonEscape(R.Outcome.str()) << "\",\n"
        << "    \"elapsed_ms\": " << Ms << "\n"
        << "  }\n]\n";
  }

  if (!R.Outcome.ok()) {
    std::printf("first non-ok scenario outcome: %s\n", R.Outcome.str().c_str());
    if (int Code = exitCodeForOutcome(R.Outcome))
      return Code;
  }
  return R.Violations.empty() ? 0 : 1;
}

int cmdJournal(const std::string &Path) {
  JournalRead R = readJournal(Path);
  if (R.St == JournalRead::State::Corrupt) {
    std::fprintf(stderr, "nv: %s\n", R.Error.c_str());
    return 2;
  }
  if (R.St == JournalRead::State::NoFile) {
    std::fprintf(stderr, "nv: %s: no journal found\n", Path.c_str());
    return 2;
  }
  std::printf("journal: %s\nbinding:\n", Path.c_str());
  std::istringstream Header(R.Header);
  for (std::string Line; std::getline(Header, Line);)
    std::printf("  %s\n", Line.c_str());
  std::printf("entries: %zu%s\n", R.Entries.size(),
              R.TornTail ? " (+ one torn trailing entry, dropped)" : "");
  size_t Show = std::min<size_t>(R.Entries.size(), 10);
  for (size_t I = 0; I < Show; ++I) {
    UnitRecord Rec;
    if (UnitRecord::parse(R.Entries[I], Rec))
      std::printf("  %s\n", Rec.Key.c_str());
  }
  if (R.Entries.size() > Show)
    std::printf("  ... %zu more\n", R.Entries.size() - Show);
  // One greppable line for any journal flavor: unit count, a fingerprint
  // of the binding header, and whether a crash tore the tail.
  std::printf("summary: %zu unit(s), binding %s, torn tail: %s\n",
              R.Entries.size(), fnv1a64Hex(R.Header).c_str(),
              R.TornTail ? "dropped" : "clean");
  // Serve request-queue journals additionally get queue accounting: the
  // pending count is what a restarted daemon would replay.
  if (R.Header.find("tool=nv-serve") != std::string::npos) {
    std::vector<std::string> PendingIds;
    size_t Accepted = 0, Done = 0;
    for (const std::string &E : R.Entries) {
      UnitRecord Rec;
      if (!UnitRecord::parse(E, Rec))
        continue;
      const std::string *Event = Rec.get("event");
      if (!Event)
        continue;
      if (*Event == "accepted") {
        ++Accepted;
        PendingIds.push_back(Rec.Key);
      } else if (*Event == "done") {
        ++Done;
        auto It = std::find(PendingIds.begin(), PendingIds.end(), Rec.Key);
        if (It != PendingIds.end())
          PendingIds.erase(It);
      }
    }
    std::printf("serve queue: %zu accepted, %zu done, %zu pending",
                Accepted, Done, PendingIds.size());
    for (size_t I = 0; I < std::min<size_t>(5, PendingIds.size()); ++I)
      std::printf("%s%s", I ? " " : " (", PendingIds[I].c_str());
    if (!PendingIds.empty())
      std::printf(PendingIds.size() > 5 ? " ...)" : ")");
    std::printf("\n");
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// serve / req
//===----------------------------------------------------------------------===//

int runServeWorker(Server::Options Opts, uint64_t Generation) {
  Opts.Core.Generation = Generation;
  if (const char *E = std::getenv("NV_SERVE_LAST_EXIT"))
    Opts.Core.LastExit = E;
  Server::CreateResult Res = Server::create(Opts);
  if (!Res.Srv) {
    std::fprintf(stderr, "nv: %s\n", Res.Error.c_str());
    return Res.ExitCode;
  }
  if (size_t N = Res.Srv->core().replayedCount())
    std::fprintf(stderr, "nv-serve: replayed %zu journaled request(s)\n", N);
  std::fprintf(stderr, "nv-serve: listening on %s (%u threads)\n",
               Res.Srv->socketPath().c_str(),
               Res.Srv->core().pool().numThreads());
  // SIGINT/SIGTERM stop the accept loop; in-flight requests drain, the
  // socket is unlinked, and the exit code is 3 (canceled, not a verdict).
  // A client `shutdown` request exits 0.
  CancelToken Cancel;
  GracefulShutdown Shutdown(Cancel);
  return Res.Srv->run(&Cancel);
}

int cmdServe(int argc, char **argv) {
  Server::Options Opts;
  Opts.SocketPath = argv[2];
  bool Supervise = false;
  SupervisorOptions Sup;
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--threads") && I + 1 < argc)
      Opts.Core.Threads = static_cast<unsigned>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--journal") && I + 1 < argc)
      Opts.Core.JournalPath = argv[++I];
    else if (!std::strcmp(argv[I], "--max-sessions") && I + 1 < argc)
      Opts.Core.MaxSessions = static_cast<size_t>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--max-inflight") && I + 1 < argc)
      Opts.Core.MaxInflight = static_cast<size_t>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--queue-depth") && I + 1 < argc)
      Opts.Core.QueueDepth = static_cast<size_t>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--heap-budget-mb") && I + 1 < argc)
      Opts.Core.HeapBudgetBytes =
          static_cast<size_t>(atoi(argv[++I])) * 1024 * 1024;
    else if (!std::strcmp(argv[I], "--memo-cap") && I + 1 < argc)
      Opts.Core.MemoEntryCap = static_cast<size_t>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--idle-timeout-ms") && I + 1 < argc)
      Opts.IdleTimeoutMs = static_cast<unsigned>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--max-line-bytes") && I + 1 < argc)
      Opts.MaxLineBytes = static_cast<size_t>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--supervise"))
      Supervise = true;
    else if (!std::strcmp(argv[I], "--restart-backoff-ms") && I + 1 < argc)
      Sup.BackoffBaseMs = static_cast<unsigned>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--restart-cap-ms") && I + 1 < argc)
      Sup.BackoffCapMs = static_cast<unsigned>(atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--max-restarts") && I + 1 < argc)
      Sup.MaxRestarts = atoi(argv[++I]);
    else
      return usage();
  }
  if (Supervise)
    // Forks before any thread exists; each worker child builds its own
    // Server, replaying the journal, so kill -9 mid-request loses no
    // accepted work.
    return superviseLoop(
        [&Opts](uint64_t Gen) { return runServeWorker(Opts, Gen); }, Sup);
  // Under an external supervisor the generation arrives via environment.
  uint64_t Gen = 0;
  if (const char *G = std::getenv("NV_SERVE_RESTARTS"))
    Gen = std::strtoull(G, nullptr, 10);
  return runServeWorker(Opts, Gen);
}

int cmdReq(int argc, char **argv) {
  ClientOptions CO;
  RetryOptions RO;
  int First = 3;
  for (; First < argc; ++First) {
    if (!std::strcmp(argv[First], "--timeout-ms") && First + 1 < argc) {
      // One deadline for both phases: a script that says 2000 means "give
      // up after 2s", whether the time goes to connecting or waiting.
      CO.ReadTimeoutMs = static_cast<unsigned>(atoi(argv[++First]));
      CO.ConnectTimeoutMs = CO.ReadTimeoutMs;
    } else if (!std::strcmp(argv[First], "--retries") && First + 1 < argc) {
      RO.MaxAttempts = static_cast<unsigned>(atoi(argv[++First])) + 1;
    } else {
      break; // first JSON argument
    }
  }
  ResilientClient Client(argv[2], CO, RO);
  int Last = 0;
  bool Ok = true;
  auto One = [&](const std::string &Line) {
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      return true; // blank separator lines in scripts are fine
    std::string Resp, Error;
    if (!Client.request(Line, Resp, Error)) {
      std::fprintf(stderr, "nv: %s\n", Error.c_str());
      if (!Resp.empty()) // e.g. the final overloaded response when the
        std::printf("%s\n", Resp.c_str()); // retry budget ran out
      // Exit 3 for deadline expiry and exhausted-overloaded retries (the
      // resource code, and transient to callers like RetryPolicy); 2 for
      // a hard transport failure.
      Last = Client.timedOut() || !Resp.empty() ? 3 : 2;
      return false;
    }
    std::printf("%s\n", Resp.c_str());
    std::fflush(stdout);
    Json J;
    std::string JErr;
    Last = Json::parse(Resp, J, JErr) ? static_cast<int>(J.getNumber("code", 4))
                                      : 4;
    return true;
  };
  if (argc > First) {
    for (int I = First; I < argc && Ok; ++I)
      Ok = One(argv[I]);
  } else {
    for (std::string Line; std::getline(std::cin, Line) && Ok;)
      Ok = One(Line);
  }
  return Last;
}

int cmdFt(const Program &P, const CliOptions &O) {
  DiagnosticEngine Diags;
  FtOptions Opts = ftOptionsFromCli(O);
  Opts.Threads = O.Threads;
  std::unique_ptr<ResumeLog> Log;
  int Ec = 0;
  if (!openResume(O, printProgram(P), Log, Ec))
    return Ec;
  Opts.Resume = Log.get();

  FtRunResult R;
  if (O.Workers > 0) {
    // Fleet mode: transform + meta-simulation stay in-process (one
    // deterministic fixpoint — there is nothing to shard), then the
    // chunked assert check runs on the worker fleet. Workers return the
    // same chunk records the checkpointed in-process path journals, so
    // the aggregate is bit-identical to --workers 0.
    FtOptions CoordOpts = Opts;
    CoordOpts.Resume = nullptr; // check phase skipped; nothing to journal
    R = runFaultTolerance(P, CoordOpts, O.Native, Diags,
                          /*CheckAsserts=*/false);
    if (R.Outcome.ok() && R.Converged) {
      Stopwatch CW;
      auto Scenarios = enumerateScenarios(P, Opts);
      size_t ChunkSize = Opts.CheckChunkSize ? Opts.CheckChunkSize : 512;
      size_t NumChunks = (Scenarios.size() + ChunkSize - 1) / ChunkSize;
      std::vector<FleetJob> Jobs;
      size_t Replayed = 0;
      for (size_t C = 0; C < NumChunks; ++C) {
        size_t Begin = C * ChunkSize;
        size_t End = std::min(Begin + ChunkSize, Scenarios.size());
        if (Log && Log->isDone(FtChecker::chunkKey(C)))
          Replayed += End - Begin;
        else
          Jobs.push_back({FtChecker::chunkKey(C), ""});
      }
      FleetResult FR;
      if (int FleetEc = runUnitFleet(O, "ft", Log.get(), std::move(Jobs), FR))
        return FleetEc;
      if (!aggregateFtChunkRecords(Scenarios, ChunkSize,
                                   fleetLookup(FR, Log.get()), R.Check)) {
        std::fprintf(stderr,
                     "nv: fleet aggregate is missing chunk records\n");
        return 4;
      }
      R.Check.ScenariosReplayed = Replayed;
      R.CheckMs = CW.elapsedMs();
    }
  } else {
    R = runFaultTolerance(P, Opts, O.Native, Diags);
  }
  Diags.printToStderr();
  if (!R.Outcome.ok()) {
    std::printf("analysis stopped: %s\n", R.Outcome.str().c_str());
    return exitCodeForOutcome(R.Outcome);
  }
  if (!R.Converged) {
    std::printf("meta-simulation did not converge\n");
    return 1;
  }
  std::printf("transform %.1fms, simulate %.1fms, check %.1fms\n",
              R.TransformMs, R.SimulateMs, R.CheckMs);
  std::printf("%llu scenarios checked: ",
              static_cast<unsigned long long>(R.Check.ScenariosChecked));
  int Verdict = 1;
  if (R.Check.holds()) {
    std::printf("property holds under every failure scenario\n");
    Verdict = 0;
  } else {
    std::printf("%zu violations; first few:\n", R.Check.Violations.size());
    for (size_t I = 0; I < std::min<size_t>(5, R.Check.Violations.size());
         ++I) {
      const FtViolation &V = R.Check.Violations[I];
      std::printf("  %s: node %u selects %s\n", V.Scenario.str().c_str(),
                  V.Node, V.routeStr().c_str());
    }
  }

  if (!O.JsonPath.empty()) {
    std::ofstream Out(O.JsonPath);
    // Same shape and exclusions as naive's JSON: timing fields end in _ms
    // so CI diffs can strip exactly them, and replayed/retry counts are
    // excluded (provenance, not payload).
    Out << "[\n  {\n"
        << "    \"bench\": \"ft\",\n"
        << "    \"network\": \"" << jsonEscape(O.File) << "\",\n"
        << "    \"links\": " << O.Links << ",\n"
        << "    \"node_failure\": " << (O.NodeFailure ? 1 : 0) << ",\n"
        << "    \"scenarios\": " << R.Check.ScenariosChecked << ",\n"
        << "    \"skipped\": " << R.Check.ScenariosSkipped << ",\n"
        << "    \"violations\": " << R.Check.Violations.size() << ",\n"
        << "    \"violations_hash\": \"" << violationsHash(R.Check.Violations)
        << "\",\n"
        << "    \"outcome\": \"" << jsonEscape(R.Check.Outcome.str())
        << "\",\n"
        << "    \"transform_ms\": " << R.TransformMs << ",\n"
        << "    \"simulate_ms\": " << R.SimulateMs << ",\n"
        << "    \"check_ms\": " << R.CheckMs << "\n"
        << "  }\n]\n";
  }

  if (!R.Check.Outcome.ok()) {
    // Skipped scenarios (quarantined chunk, canceled check) mean the sweep
    // is incomplete: exit structurally, not with a holds/fails verdict.
    std::printf("first non-ok check outcome: %s\n",
                R.Check.Outcome.str().c_str());
    if (int Code = exitCodeForOutcome(R.Check.Outcome))
      return Code;
  }
  return Verdict;
}

} // namespace

int main(int argc, char **argv) {
  // serve/req take a socket path, not a FILE, so they bypass parseCli.
  if (argc >= 3 && !std::strcmp(argv[1], "serve"))
    return cmdServe(argc, argv);
  if (argc >= 3 && !std::strcmp(argv[1], "req"))
    return cmdReq(argc, argv);
  auto O = parseCli(argc, argv);
  if (!O)
    return usage();

  if (O->Command == "journal")
    return cmdJournal(O->File);

  auto Src = readFile(O->File);
  if (!Src) {
    std::fprintf(stderr, "cannot read %s\n", O->File.c_str());
    return 2;
  }
  DiagnosticEngine Diags;
  auto P = parseProgram(*Src, Diags, fileParseOptions(O->File));
  if (!P) {
    Diags.printToStderr();
    return 2;
  }
  if (!typeCheck(*P, Diags)) {
    Diags.printToStderr();
    return 2;
  }

  if (O->Command == "check") {
    std::printf("%s: %zu declarations, %u nodes, %zu links\n",
                O->File.c_str(), P->Decls.size(), P->numNodes(),
                P->links().size());
    if (P->AttrType)
      std::printf("attribute type: %s\n", typeToString(P->AttrType).c_str());
    return 0;
  }
  if (O->Command == "print") {
    std::printf("%s", printProgram(*P).c_str());
    return 0;
  }
  if (O->Command == "worker") {
    // Fleet worker: dispatched BEFORE the GracefulShutdown block below so
    // signal dispositions stay at their defaults — the coordinator owns
    // this process's lifecycle (SIGTERM on cancel, SIGKILL on liveness
    // timeout), and a worker must die when told to, not drain.
    try {
      return cmdWorker(*P, *O);
    } catch (const EngineError &E) {
      std::fprintf(stderr, "nv worker: %s\n", E.what());
      return exitCodeForOutcome(E.outcome());
    } catch (const std::exception &E) {
      std::fprintf(stderr, "nv worker: %s\n", E.what());
      return 4;
    }
  }
  try {
    // Signal-driven graceful shutdown for every engine command: the first
    // SIGINT/SIGTERM trips the shared CancelToken (threaded into each
    // engine's budget via applyBudget), jobs drain at safe points, and the
    // Canceled outcome exits with code 3. A second signal exits at once.
    CancelToken Cancel;
    GracefulShutdown Shutdown(Cancel);
    O->Cancel = &Cancel;
    if (O->Command == "sim")
      return cmdSim(*P, *O);
    if (O->Command == "verify")
      return cmdVerify(*P, *O);
    if (O->Command == "ft")
      return cmdFt(*P, *O);
    if (O->Command == "naive")
      return cmdNaive(*P, *O);
  } catch (const EngineError &E) {
    // An engine let a structured error escape its boundary (or a fault was
    // injected outside any engine's catch); still exit structurally.
    std::fprintf(stderr, "nv: %s\n", E.what());
    return exitCodeForOutcome(E.outcome());
  } catch (const std::exception &E) {
    std::fprintf(stderr, "nv: internal error: %s\n", E.what());
    return 4;
  }
  return usage();
}
