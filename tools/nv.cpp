//===- nv.cpp - The nv command-line driver ------------------------------------===//
//
// Part of nv-cpp. A command-line front end over the library:
//
//   nv check  FILE.nv                 parse + type check, print summary
//   nv print  FILE.nv                 pretty-print the parsed program
//   nv sim    FILE.nv [opts]          simulate to a stable state (Alg. 1)
//   nv verify FILE.nv [opts]          SMT-verify the assert over all
//                                     stable states / symbolic values
//   nv ft     FILE.nv [opts]          fault-tolerance meta-analysis (Fig. 5)
//
// Common options:
//   --native            use the closure-compiled evaluator (sim/ft)
//   --sym NAME=EXPR     bind a symbolic to a concrete NV expression (sim/ft)
//   --timeout SECS      SMT timeout (verify)
//   --baseline          MineSweeper-style encoder options (verify)
//   --links K           number of simultaneous link failures (ft, default 1)
//   --node              also fail one node per scenario (ft)
//   --deadline-ms MS    wall-clock budget for the run (sim/verify/ft)
//   --node-budget N     MTBDD live-node budget (sim/ft)
//   --max-steps N       simulator step (worklist-pop) budget (sim/ft)
//
// Exit codes:
//   0  success (property holds / command completed)
//   1  property falsified (failed assert, FT violations, counterexample)
//   2  user error (bad usage, parse/type/evaluation error, solver unknown)
//   3  resource exhausted (deadline, step/node budget, cancellation,
//      injected fault) — the run ended with a structured outcome, not a
//      verdict
//   4  internal error
//
//===----------------------------------------------------------------------===//

#include "analysis/FaultTolerance.h"
#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace nv;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nv <check|print|sim|verify|ft> FILE.nv [options]\n"
               "  --native  --sym NAME=EXPR  --timeout SECS  --baseline\n"
               "  --links K  --node\n"
               "  --deadline-ms MS  --node-budget N  --max-steps N\n");
  return 2;
}

struct CliOptions {
  std::string Command;
  std::string File;
  bool Native = false;
  bool Baseline = false;
  bool NodeFailure = false;
  unsigned Links = 1;
  unsigned TimeoutSec = 0;
  double DeadlineMs = 0;
  uint64_t MaxSteps = 0;
  uint64_t NodeBudget = 0;
  std::vector<std::pair<std::string, std::string>> Syms;

  /// Folds the governance flags into \p B (leaves unset knobs alone, so
  /// engine defaults like the simulator's step budget survive).
  void applyBudget(RunBudget &B) const {
    if (DeadlineMs > 0)
      B.DeadlineMs = DeadlineMs;
    if (MaxSteps > 0)
      B.MaxSteps = MaxSteps;
    if (NodeBudget > 0)
      B.MaxLiveNodes = static_cast<size_t>(NodeBudget);
  }
};

std::optional<CliOptions> parseCli(int argc, char **argv) {
  if (argc < 3)
    return std::nullopt;
  CliOptions O;
  O.Command = argv[1];
  O.File = argv[2];
  for (int I = 3; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--native")) {
      O.Native = true;
    } else if (!std::strcmp(argv[I], "--baseline")) {
      O.Baseline = true;
    } else if (!std::strcmp(argv[I], "--node")) {
      O.NodeFailure = true;
    } else if (!std::strcmp(argv[I], "--links") && I + 1 < argc) {
      O.Links = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--timeout") && I + 1 < argc) {
      O.TimeoutSec = static_cast<unsigned>(atoi(argv[++I]));
    } else if (!std::strcmp(argv[I], "--deadline-ms") && I + 1 < argc) {
      O.DeadlineMs = atof(argv[++I]);
    } else if (!std::strcmp(argv[I], "--max-steps") && I + 1 < argc) {
      O.MaxSteps = strtoull(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--node-budget") && I + 1 < argc) {
      O.NodeBudget = strtoull(argv[++I], nullptr, 10);
    } else if (!std::strcmp(argv[I], "--sym") && I + 1 < argc) {
      std::string Arg = argv[++I];
      size_t Eq = Arg.find('=');
      if (Eq == std::string::npos)
        return std::nullopt;
      O.Syms.emplace_back(Arg.substr(0, Eq), Arg.substr(Eq + 1));
    } else {
      return std::nullopt;
    }
  }
  return O;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// Resolves includes relative to the program's directory before falling
/// back to the built-in registry.
ParseOptions fileParseOptions(const std::string &Path) {
  std::string Dir = ".";
  size_t Slash = Path.rfind('/');
  if (Slash != std::string::npos)
    Dir = Path.substr(0, Slash);
  ParseOptions Opts;
  Opts.Resolver = [Dir](const std::string &Name) -> std::optional<std::string> {
    if (auto Src = readFile(Dir + "/" + Name + ".nv"))
      return Src;
    return std::nullopt;
  };
  return Opts;
}

SymbolicAssignment resolveSyms(NvContext &Ctx, const Program &P,
                               const CliOptions &O, bool &Ok) {
  SymbolicAssignment Out;
  Ok = true;
  InterpProgramEvaluator Boot(Ctx, P);
  for (const auto &[Name, Src] : O.Syms) {
    DiagnosticEngine Diags;
    ExprPtr E = parseExprString(Src, Diags);
    if (!E || !typeCheckExpr(E, Diags)) {
      std::fprintf(stderr, "bad --sym %s=%s:\n%s", Name.c_str(), Src.c_str(),
                   Diags.str().c_str());
      Ok = false;
      continue;
    }
    Out[Name] = Boot.evalUnderGlobals(E);
  }
  return Out;
}

int cmdSim(const Program &P, const CliOptions &O) {
  NvContext Ctx(P.numNodes());
  bool Ok = true;
  SymbolicAssignment Syms = resolveSyms(Ctx, P, O, Ok);
  if (!Ok)
    return 2;
  std::unique_ptr<ProtocolEvaluator> Eval;
  if (O.Native)
    Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, P, Syms);
  else
    Eval = std::make_unique<InterpProgramEvaluator>(Ctx, P, Syms);
  if (!Eval->requiresHold())
    std::printf("warning: a require clause fails under this symbolic "
                "assignment\n");
  SimOptions SO;
  O.applyBudget(SO.Budget);
  SimResult R = simulate(P, *Eval, SO);
  if (!R.Converged) {
    std::printf("simulation did not converge (%llu steps): %s\n",
                static_cast<unsigned long long>(R.Stats.Pops),
                R.Outcome.str().c_str());
    return exitCodeForOutcome(R.Outcome);
  }
  for (uint32_t U = 0; U < P.numNodes(); ++U)
    std::printf("node %u: %s\n", U, Ctx.printValue(R.Labels[U]).c_str());
  if (P.assertDecl()) {
    auto Failed = checkAsserts(*Eval, R);
    if (Failed.empty()) {
      std::printf("assertion holds at every node\n");
    } else {
      std::printf("assertion FAILS at %zu node(s):", Failed.size());
      for (uint32_t U : Failed)
        std::printf(" %u", U);
      std::printf("\n");
      return 1;
    }
  }
  return 0;
}

int cmdVerify(const Program &P, const CliOptions &O) {
  DiagnosticEngine Diags;
  VerifyOptions Opts;
  Opts.TimeoutMs = O.TimeoutSec * 1000;
  O.applyBudget(Opts.Budget);
  if (O.Baseline) {
    Opts.Smt.ConstantFold = false;
    Opts.Smt.NameIntermediates = true;
    Opts.UseTacticPipeline = false;
  }
  VerifyResult R = verifyProgram(P, Opts, Diags);
  Diags.printToStderr();
  switch (R.Status) {
  case VerifyStatus::Verified:
    std::printf("verified (encode %.1fms, solve %.1fms, %llu assertions)\n",
                R.EncodeMs, R.SolveMs,
                static_cast<unsigned long long>(R.NumAssertions));
    return 0;
  case VerifyStatus::Falsified:
    std::printf("FALSIFIED (solve %.1fms); counterexample:\n%s", R.SolveMs,
                R.Counterexample.c_str());
    return 1;
  case VerifyStatus::Unknown:
    std::printf("unknown (solver incompleteness)\n");
    return 2;
  case VerifyStatus::ResourceExhausted:
    std::printf("resource exhausted: %s\n", R.Outcome.str().c_str());
    return 3;
  case VerifyStatus::EncodingError:
    return exitCodeForOutcome(R.Outcome);
  }
  return 4;
}

int cmdFt(const Program &P, const CliOptions &O) {
  DiagnosticEngine Diags;
  FtOptions Opts;
  Opts.LinkFailures = O.Links;
  Opts.NodeFailure = O.NodeFailure;
  O.applyBudget(Opts.Budget);
  FtRunResult R = runFaultTolerance(P, Opts, O.Native, Diags);
  Diags.printToStderr();
  if (!R.Outcome.ok()) {
    std::printf("analysis stopped: %s\n", R.Outcome.str().c_str());
    return exitCodeForOutcome(R.Outcome);
  }
  if (!R.Converged) {
    std::printf("meta-simulation did not converge\n");
    return 1;
  }
  std::printf("transform %.1fms, simulate %.1fms, check %.1fms\n",
              R.TransformMs, R.SimulateMs, R.CheckMs);
  std::printf("%llu scenarios checked: ",
              static_cast<unsigned long long>(R.Check.ScenariosChecked));
  if (R.Check.holds()) {
    std::printf("property holds under every failure scenario\n");
    return 0;
  }
  std::printf("%zu violations; first few:\n", R.Check.Violations.size());
  for (size_t I = 0; I < std::min<size_t>(5, R.Check.Violations.size()); ++I) {
    const FtViolation &V = R.Check.Violations[I];
    std::printf("  %s: node %u selects %s\n", V.Scenario.str().c_str(),
                V.Node, V.Route->str().c_str());
  }
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  auto O = parseCli(argc, argv);
  if (!O)
    return usage();

  auto Src = readFile(O->File);
  if (!Src) {
    std::fprintf(stderr, "cannot read %s\n", O->File.c_str());
    return 2;
  }
  DiagnosticEngine Diags;
  auto P = parseProgram(*Src, Diags, fileParseOptions(O->File));
  if (!P) {
    Diags.printToStderr();
    return 2;
  }
  if (!typeCheck(*P, Diags)) {
    Diags.printToStderr();
    return 2;
  }

  if (O->Command == "check") {
    std::printf("%s: %zu declarations, %u nodes, %zu links\n",
                O->File.c_str(), P->Decls.size(), P->numNodes(),
                P->links().size());
    if (P->AttrType)
      std::printf("attribute type: %s\n", typeToString(P->AttrType).c_str());
    return 0;
  }
  if (O->Command == "print") {
    std::printf("%s", printProgram(*P).c_str());
    return 0;
  }
  try {
    if (O->Command == "sim")
      return cmdSim(*P, *O);
    if (O->Command == "verify")
      return cmdVerify(*P, *O);
    if (O->Command == "ft")
      return cmdFt(*P, *O);
  } catch (const EngineError &E) {
    // An engine let a structured error escape its boundary (or a fault was
    // injected outside any engine's catch); still exit structurally.
    std::fprintf(stderr, "nv: %s\n", E.what());
    return exitCodeForOutcome(E.outcome());
  } catch (const std::exception &E) {
    std::fprintf(stderr, "nv: internal error: %s\n", E.what());
    return 4;
  }
  return usage();
}
