#!/usr/bin/env bash
# chaos.sh — crash-chaos gate for the supervised `nv serve` daemon: kill
# the worker with SIGKILL twenty times, mid-request, and require that the
# supervisor restarts it every time, that the restarted worker replays
# the journal, that post-crash verdicts stay bit-identical to an
# uninterrupted reference run, and that the journal ends fully drained.
# A second stage arms each serve-layer NV_FAULT_INJECT site against a
# live daemon and asserts the structured fault response (exit 3) with
# the daemon surviving to answer the next request.
#
# Usage: tools/ci/chaos.sh [BUILD_DIR]
# Env:   JOBS (parallelism), CMAKE_EXTRA (extra configure flags).
# Supervisor stderr and responses land in chaos-artifacts/ for upload.
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}
KILLS=${KILLS:-20}

# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DNV_WERROR="${NV_WERROR:-OFF}" ${CMAKE_EXTRA:-}
cmake --build "$BUILD_DIR" -j"$JOBS" --target nv

NV="./$BUILD_DIR/tools/nv"
ART=chaos-artifacts
mkdir -p "$ART"

cat > "$ART/net.nv" <<'EOF'
let nodes = 4
let edges = {0n=1n;1n=2n;2n=3n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) = match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) = match x, y with | _, None -> x | None, _ -> y | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) = match x with | None -> false | Some d -> true
EOF
# Count-to-infinity: diverges until its deadline trips, giving every
# SIGKILL a wide in-flight window to land in.
cat > "$ART/div.nv" <<'EOF'
let nodes = 2
let edges = {0n=1n;1n=0n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) = match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) = match x, y with | _, None -> x | None, _ -> y | Some a, Some b -> if a <= b then y else x
EOF

# wait_sock SOCK: poll until a raw connect to the socket is accepted. A
# bare connect consumes no requests, so armed fault-injection countdowns
# and admission counters are untouched by readiness probing.
wait_sock() {
  local sock=$1
  for _ in $(seq 1 200); do
    if python3 -c '
import socket, sys
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.settimeout(0.2)
try:
    s.connect(sys.argv[1])
except OSError:
    sys.exit(1)
s.close()' "$sock" 2>/dev/null; then
      return 0
    fi
    sleep 0.05
  done
  echo "FAIL: socket $sock never came up" >&2
  return 1
}

# field <json> <key...>: prints the (possibly nested) field value.
field() {
  local json=$1
  shift
  echo "$json" | python3 -c '
import json, sys
v = json.loads(sys.stdin.read())
for k in sys.argv[1:]:
    v = v[k]
print(json.dumps(v) if isinstance(v, (dict, list)) else v)' "$@"
}

assert_eq() {
  if [ "$1" != "$2" ]; then
    echo "FAIL: $3: got '$1', want '$2'" >&2
    exit 1
  fi
}

#===----------------------------------------------------------------------===#
# Stage 0: uninterrupted reference run — the hash every post-crash
# verdict must reproduce bit-for-bit.
#===----------------------------------------------------------------------===#

echo "== reference run (no chaos)"
REF_SOCK=$(mktemp -u /tmp/nv-chaos-ref.XXXXXX.sock)
"$NV" serve "$REF_SOCK" --threads 2 2> "$ART/ref-daemon.log" &
REF_PID=$!
trap 'kill "$REF_PID" 2>/dev/null || true' EXIT
wait_sock "$REF_SOCK"
rc=0
"$NV" req "$REF_SOCK" \
  "{\"verb\":\"load\",\"session\":\"net\",\"path\":\"$ART/net.nv\"}" \
  > /dev/null || { echo "FAIL: reference load" >&2; exit 1; }
R=$("$NV" req "$REF_SOCK" '{"verb":"ft","session":"net"}') || rc=$?
assert_eq "$rc" 1 "reference ft exit (real violations)"
REF_HASH=$(field "$R" violations_hash)
"$NV" req "$REF_SOCK" '{"verb":"shutdown"}' > /dev/null
rc=0; wait "$REF_PID" || rc=$?
assert_eq "$rc" 0 "reference daemon exit"
trap - EXIT
echo "reference hash: $REF_HASH"

#===----------------------------------------------------------------------===#
# Stage 1: SIGKILL the supervised worker mid-request, $KILLS times.
#===----------------------------------------------------------------------===#

echo "== supervised chaos: $KILLS SIGKILLs mid-request"
SOCK=$(mktemp -u /tmp/nv-chaos.XXXXXX.sock)
JOURNAL="$ART/chaos.journal"
rm -f "$JOURNAL"
"$NV" serve "$SOCK" --threads 2 --journal "$JOURNAL" --supervise \
  --restart-backoff-ms 10 --restart-cap-ms 100 \
  2> "$ART/daemon.log" &
SUP_PID=$!
cleanup() {
  kill "$SUP_PID" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

for i in $(seq 1 "$KILLS"); do
  wait_sock "$SOCK"
  # Sessions are resident state, not journal state: each restarted worker
  # starts empty, so the client reloads. --retries rides out the races
  # around a restart (stale socket, connect refused, overload).
  "$NV" req "$SOCK" \
    --retries 8 "{\"verb\":\"load\",\"session\":\"div\",\"path\":\"$ART/div.nv\"}" > /dev/null \
    || { echo "FAIL: kill $i: div load" >&2; exit 1; }
  # A request that is still running when the SIGKILL lands: journaled as
  # accepted, so the restarted worker must replay and retire it.
  "$NV" req "$SOCK" \
    '{"verb":"sim","session":"div","deadline_ms":300}' \
    > "$ART/inflight.$i.json" 2>/dev/null &
  REQ_PID=$!
  sleep 0.08
  WORKER=$(sed -n 's/.*worker pid \([0-9]*\) .*/\1/p' "$ART/daemon.log" | tail -1)
  [ -n "$WORKER" ] || { echo "FAIL: kill $i: no worker pid in log" >&2; exit 1; }
  kill -9 "$WORKER" 2>/dev/null || true
  wait "$REQ_PID" || true # any exit is fine; the worker just died on it

  # The supervisor must bring a fresh worker up, and its verdicts must
  # be bit-identical to the uninterrupted reference.
  wait_sock "$SOCK"
  "$NV" req "$SOCK" \
    --retries 8 "{\"verb\":\"load\",\"session\":\"net\",\"path\":\"$ART/net.nv\"}" > /dev/null \
    || { echo "FAIL: kill $i: net load after restart" >&2; exit 1; }
  rc=0
  R=$("$NV" req "$SOCK" --retries 8 '{"verb":"ft","session":"net"}') || rc=$?
  assert_eq "$rc" 1 "kill $i: post-restart ft exit"
  assert_eq "$(field "$R" violations_hash)" "$REF_HASH" "kill $i: post-restart ft hash"
done

echo "== supervision did the restarts (generation advanced)"
R=$("$NV" req "$SOCK" --retries 8 '{"verb":"health"}')
GEN=$(field "$R" generation)
[ "$GEN" -ge "$KILLS" ] || {
  echo "FAIL: generation $GEN after $KILLS kills" >&2
  exit 1
}
assert_eq "$(field "$R" state)" ready "final health state"

echo "== graceful shutdown ends supervision"
"$NV" req "$SOCK" --retries 8 '{"verb":"shutdown"}' > /dev/null
rc=0; wait "$SUP_PID" || rc=$?
assert_eq "$rc" 0 "supervisor exit code"
trap - EXIT
rm -f "$SOCK"

echo "== journal drained: every accepted request was retired"
SUMMARY=$("$NV" journal "$JOURNAL")
echo "$SUMMARY"
echo "$SUMMARY" | grep -q "0 pending" || {
  echo "FAIL: journal still has pending requests after chaos" >&2
  exit 1
}

#===----------------------------------------------------------------------===#
# Stage 2: serve-layer fault injection against a live daemon. Each site
# yields a structured exit-3 fault response — never a crash — and the
# daemon answers the very next request normally.
#===----------------------------------------------------------------------===#

echo "== serve-layer fault injection"
for SITE in serve-accept serve-enqueue serve-respond; do
  FSOCK=$(mktemp -u /tmp/nv-chaos-fi.XXXXXX.sock)
  env NV_FAULT_INJECT="$SITE:1" \
    "$NV" serve "$FSOCK" --threads 2 2> "$ART/fi-$SITE.log" &
  FPID=$!
  trap 'kill "$FPID" 2>/dev/null || true' EXIT
  wait_sock "$FSOCK"
  # The first request through the socket consumes the countdown and gets
  # the structured fault outcome (exit 3, resource taxonomy).
  rc=0
  R=$("$NV" req "$FSOCK" \
    "{\"verb\":\"load\",\"session\":\"net\",\"path\":\"$ART/net.nv\"}") || rc=$?
  assert_eq "$rc" 3 "$SITE: faulted request exit"
  echo "$R" | grep -q "fault-injected@$SITE" || {
    echo "FAIL: $SITE: response lacks fault-injected@$SITE: $R" >&2
    exit 1
  }
  # The daemon survives: the retried load and a query work normally.
  "$NV" req "$FSOCK" \
    "{\"verb\":\"load\",\"session\":\"net\",\"path\":\"$ART/net.nv\"}" \
    > /dev/null || { echo "FAIL: $SITE: load after fault" >&2; exit 1; }
  rc=0
  R=$("$NV" req "$FSOCK" '{"verb":"ft","session":"net"}') || rc=$?
  assert_eq "$rc" 1 "$SITE: ft after fault exit"
  assert_eq "$(field "$R" violations_hash)" "$REF_HASH" "$SITE: ft after fault hash"
  "$NV" req "$FSOCK" '{"verb":"shutdown"}' > /dev/null
  rc=0; wait "$FPID" || rc=$?
  assert_eq "$rc" 0 "$SITE: daemon exit after fault"
  trap - EXIT
  rm -f "$FSOCK"
  echo "ok: $SITE"
done

echo "chaos gate: all checks passed"
