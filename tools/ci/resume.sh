#!/usr/bin/env bash
# resume.sh — crash-resilience smoke stage: starts a governed sharded
# naive-failures run on a generator-produced fat tree, SIGTERMs it
# mid-flight, resumes from the checkpoint journal at a different thread
# count, and diffs the final JSON against an uninterrupted reference —
# the resumed aggregate must be identical modulo the *_ms timing fields.
# Also proves the journal failure modes (torn tail tolerated, interior
# corruption and binding mismatch hard exit 2), retry semantics under
# NV_FAULT_INJECT, and that replaying tests/corpus twice under --resume
# shows no fingerprint drift.
#
# Usage: tools/ci/resume.sh [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}

# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release ${CMAKE_EXTRA:-}
cmake --build "$BUILD_DIR" -j"$JOBS" --target nv nv-fuzz

NV="./$BUILD_DIR/tools/nv"
NV_FUZZ="./$BUILD_DIR/tools/nv-fuzz"

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
NET="$WORK/net.nv"
# Seed-derived fat tree (deterministic): 528 two-failure scenarios, a few
# hundred ms of sharded work — enough runway to interrupt mid-flight.
"$NV_FUZZ" --emit 12 > "$NET"

strip_ms() { grep -v '_ms' "$1"; }

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

expect_code() {
  local want=$1 desc=$2
  shift 2
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  [ "$got" -eq "$want" ] || fail "$desc: expected exit $want, got $got: $*"
  echo "ok: $desc (exit $got)"
}

echo "== uninterrupted reference (4 threads) =="
REF_CODE=0
"$NV" naive "$NET" --links 2 --threads 4 --json "$WORK/ref.json" \
  > /dev/null || REF_CODE=$?
[ "$REF_CODE" -le 1 ] || fail "reference run died (exit $REF_CODE)"
echo "ok: reference (exit $REF_CODE)"

echo "== SIGTERM mid-flight =="
J="$WORK/naive.journal"
"$NV" naive "$NET" --links 2 --threads 4 --resume "$J" \
  --json "$WORK/int.json" > /dev/null 2> "$WORK/int.err" &
PID=$!
# Wait until a few units are durably journaled (the header alone is
# ~200 bytes), then interrupt.
for _ in $(seq 1 500); do
  SZ=$(stat -c %s "$J" 2>/dev/null || echo 0)
  [ "$SZ" -ge 600 ] && break
  sleep 0.01
done
kill -TERM "$PID" 2>/dev/null || true
GOT=0
wait "$PID" || GOT=$?
[ "$GOT" -eq 3 ] || {
  cat "$WORK/int.err" >&2
  fail "interrupted run: expected exit 3, got $GOT"
}
grep -q "draining in-flight jobs" "$WORK/int.err" \
  || fail "no graceful-shutdown message on SIGTERM"
echo "ok: SIGTERM drained at safe points (exit 3)"
"$NV" journal "$J" | head -3

echo "== resume at 1 thread =="
R1=0
"$NV" naive "$NET" --links 2 --threads 1 --resume "$J" \
  --json "$WORK/r1.json" > "$WORK/r1.out" || R1=$?
[ "$R1" -eq "$REF_CODE" ] || fail "resumed run exit $R1 != reference $REF_CODE"
grep -q "completed unit(s) replayed" "$WORK/r1.out" \
  || fail "resume replayed nothing"
diff <(strip_ms "$WORK/ref.json") <(strip_ms "$WORK/r1.json") \
  || fail "resumed (1 thread) JSON differs from uninterrupted reference"
echo "ok: resumed aggregate identical at 1 thread"

echo "== resume again at 4 threads (full replay) =="
R4=0
"$NV" naive "$NET" --links 2 --threads 4 --resume "$J" \
  --json "$WORK/r4.json" > /dev/null || R4=$?
[ "$R4" -eq "$REF_CODE" ] || fail "full-replay run exit $R4 != $REF_CODE"
diff <(strip_ms "$WORK/ref.json") <(strip_ms "$WORK/r4.json") \
  || fail "resumed (4 threads) JSON differs from uninterrupted reference"
echo "ok: resumed aggregate identical at 4 threads"

echo "== torn trailing entry tolerated =="
truncate -s -3 "$J"
RT=0
"$NV" naive "$NET" --links 2 --threads 4 --resume "$J" \
  --json "$WORK/rt.json" > /dev/null 2> "$WORK/rt.err" || RT=$?
[ "$RT" -eq "$REF_CODE" ] || fail "torn-tail resume exit $RT != $REF_CODE"
grep -qi "torn" "$WORK/rt.err" || fail "no torn-tail note"
diff <(strip_ms "$WORK/ref.json") <(strip_ms "$WORK/rt.json") \
  || fail "torn-tail resume JSON differs from reference"
echo "ok: torn tail dropped, unit re-ran, aggregate identical"

echo "== interior corruption is a hard error =="
printf '\xff' | dd of="$J" bs=1 seek=30 conv=notrunc status=none
expect_code 2 "corrupt journal rejected" \
  "$NV" naive "$NET" --links 2 --resume "$J"

echo "== binding mismatch is a hard error =="
rm -f "$J"
"$NV" naive "$NET" --links 1 --resume "$J" > /dev/null || true
expect_code 2 "journal bound to other inputs rejected" \
  "$NV" naive "$NET" --links 2 --resume "$J"

echo "== per-job retry under NV_FAULT_INJECT =="
# One-shot fault + --retry 2: the hit scenario fails its first attempt,
# succeeds on retry, and the verdict matches the fault-free reference.
RETRY=0
env NV_FAULT_INJECT=sim-pop:40 \
  "$NV" naive "$NET" --links 2 --retry 2 --json "$WORK/retry.json" \
  > /dev/null || RETRY=$?
[ "$RETRY" -eq "$REF_CODE" ] || fail "retry-then-succeed exit $RETRY"
diff <(strip_ms "$WORK/ref.json") <(strip_ms "$WORK/retry.json") \
  || fail "retry-then-succeed JSON differs from reference"
echo "ok: transient fault retried, verdict preserved"
# A persistent transient (one-step budget) burns its retries and degrades
# to the structured resource-exhausted exit, never an abort.
expect_code 3 "exhausted retries degrade structurally" \
  "$NV" naive "$NET" --links 2 --retry 2 --max-steps 1

echo "== corpus replay under --resume: no fingerprint drift =="
JC="$WORK/corpus.journal"
"$NV_FUZZ" --replay tests/corpus --resume "$JC" --json "$WORK/c1.json" \
  > /dev/null
"$NV_FUZZ" --replay tests/corpus --resume "$JC" --json "$WORK/c2.json" \
  > "$WORK/c2.out"
grep -q "(journal)" "$WORK/c2.out" || fail "second replay re-ran the corpus"
diff <(strip_ms "$WORK/c1.json") <(strip_ms "$WORK/c2.json") \
  || fail "journaled corpus replay drifted"
echo "ok: corpus verdicts stable across resume"

echo "resume smoke passed"
