#!/usr/bin/env bash
# asan.sh — ASan+UBSan build of the BDD, GC and parallel suites, to catch
# the memory errors a moving collector can introduce (stale Refs, table
# over-reads) that functional tests may survive by luck.
#
# Usage: tools/ci/asan.sh [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build-asan}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNV_WERROR="${NV_WERROR:-OFF}" \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build "$BUILD_DIR" -j"$JOBS" \
  --target bdd_tests gc_tests parallel_tests governor_tests serve_tests
"./$BUILD_DIR/tests/bdd_tests"
"./$BUILD_DIR/tests/gc_tests"
"./$BUILD_DIR/tests/parallel_tests"
"./$BUILD_DIR/tests/governor_tests"
"./$BUILD_DIR/tests/serve_tests"
