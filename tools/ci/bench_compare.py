#!/usr/bin/env python3
"""Compare a bench-smoke JSON report against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]

Matches records by (bench, network, failures) and compares every *_ms
timing field present in both. Records whose "outcome" field is present
and not "ok" (budget trip, cancellation, injected fault — the run was
truncated, so its timings are meaningless) are skipped on either side.
Regressions beyond the threshold print a warning; the exit code is
always 0 — shared CI runners are far too noisy to gate merges on
wall-clock numbers, so this is a trend signal, not a gate.
(BENCH_*.json trajectory files are the durable record.)
"""

import json
import sys

THRESHOLD = 0.25  # warn when current > baseline * (1 + THRESHOLD)

TIMING_FIELDS = ("simulate_ms", "nv_ms", "nv_native_ms", "batfish_ms")


def key(rec):
    return (rec.get("bench"), rec.get("network"), rec.get("failures"))


def is_ok(rec):
    """A record is comparable when its run completed; a missing "outcome"
    field (reports from before the run-governance layer) means ok."""
    return rec.get("outcome", "ok") == "ok"


def describe(rec):
    return "%s %s failures=%s (outcome=%s)" % (
        rec.get("bench"), rec.get("network"), rec.get("failures"),
        rec.get("outcome"))


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = {key(r): r for r in load(argv[1]) if is_ok(r)}
    current = []
    for path in argv[2:]:
        current.extend(load(path))

    compared = 0
    skipped = []
    regressions = []
    for rec in current:
        if not is_ok(rec):
            skipped.append(describe(rec))
            continue
        base = baseline.get(key(rec))
        if base is None:
            continue
        for field in TIMING_FIELDS:
            if field not in rec or field not in base:
                continue
            b, c = float(base[field]), float(rec[field])
            compared += 1
            if b > 0 and c > b * (1 + THRESHOLD):
                regressions.append(
                    "  %s %s failures=%s %s: %.1fms -> %.1fms (+%.0f%%)"
                    % (rec.get("bench"), rec.get("network"),
                       rec.get("failures"), field, b, c, 100 * (c / b - 1)))

    print("bench-smoke: compared %d timings against %s" % (compared, argv[1]))
    if skipped:
        # Name the degraded benchmarks so a truncated run is visible in
        # the CI log, not silently dropped from the comparison.
        print("skipped %d record(s) with a non-ok outcome:" % len(skipped))
        for name in skipped:
            print("  " + name)
    if not compared:
        print("warning: no overlapping records — baseline out of date?")
    if regressions:
        print("warning: %d timing(s) regressed more than %d%%:"
              % (len(regressions), int(100 * THRESHOLD)))
        print("\n".join(regressions))
        print("(not failing the job: smoke timings on shared runners are "
              "noisy; investigate if this persists across runs)")
    else:
        print("no regressions beyond %d%%" % int(100 * THRESHOLD))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
