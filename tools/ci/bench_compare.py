#!/usr/bin/env python3
"""Compare a bench-smoke JSON report against the committed baseline.

Usage: bench_compare.py BASELINE.json CURRENT.json [CURRENT2.json ...]
       bench_compare.py --self-test

Matches records by (bench, network, failures) and compares every *_ms
timing field present in both. Records whose "outcome" field is present
and not "ok" (budget trip, cancellation, injected fault — the run was
truncated, so its timings are meaningless) are skipped on either side.
Regressions beyond the threshold print a warning; the exit code is 0 —
shared CI runners are far too noisy to gate merges on wall-clock
numbers, so this is a trend signal, not a gate. (BENCH_*.json
trajectory files are the durable record.)

A missing, unreadable, or unparsable input file IS a hard failure
(exit 2): that means the baseline rotted or a benchmark wrote garbage,
which silently comparing nothing would hide. --self-test exercises
both behaviors and is run by tier1.sh.
"""

import json
import sys

THRESHOLD = 0.25  # warn when current > baseline * (1 + THRESHOLD)

TIMING_FIELDS = ("simulate_ms", "nv_ms", "nv_native_ms", "batfish_ms",
                 "warm_repeat_ms", "accepted_p99_ms", "inproc_ms",
                 "fleet_ms")

# Ratio fields compare by absolute difference, not relative growth: a
# shed rate moving from 0.02 to 0.04 doubled but is noise, while 0.2 to
# 0.5 on the same saturation workload means admission changed behavior.
RATIO_FIELDS = ("shed_rate",)
RATIO_THRESHOLD = 0.25  # warn when |current - baseline| exceeds this


def key(rec):
    return (rec.get("bench"), rec.get("network"), rec.get("failures"))


def is_ok(rec):
    """A record is comparable when its run completed; a missing "outcome"
    field (reports from before the run-governance layer) means ok."""
    return rec.get("outcome", "ok") == "ok"


def describe(rec):
    return "%s %s failures=%s (outcome=%s)" % (
        rec.get("bench"), rec.get("network"), rec.get("failures"),
        rec.get("outcome"))


class InputError(Exception):
    """A missing or malformed input file; main() maps this to exit 2."""


def load(path, what):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise InputError("cannot read %s %s: %s" % (what, path, e.strerror))
    except json.JSONDecodeError as e:
        raise InputError("%s %s is not valid JSON: %s" % (what, path, e))
    if not isinstance(data, list) or not all(
            isinstance(r, dict) for r in data):
        raise InputError(
            "%s %s must be a JSON array of objects" % (what, path))
    return data


def self_test():
    """Runs this script as a subprocess against synthetic inputs and
    checks the exit-code contract end to end."""
    import os
    import subprocess
    import tempfile

    me = os.path.abspath(__file__)

    def run(args):
        return subprocess.run([sys.executable, me] + args,
                              capture_output=True, text=True)

    ok_rec = {"bench": "b", "network": "n", "failures": 1,
              "simulate_ms": 10.0}
    slow_rec = dict(ok_rec, simulate_ms=100.0)
    tripped_rec = dict(slow_rec, outcome="deadline-exceeded@sim-pop")

    with tempfile.TemporaryDirectory() as d:
        def write(name, content):
            path = os.path.join(d, name)
            with open(path, "w") as f:
                f.write(content if isinstance(content, str)
                        else json.dumps(content))
            return path

        base = write("base.json", [ok_rec])
        good = write("good.json", [ok_rec])
        slow = write("slow.json", [slow_rec])
        tripped = write("tripped.json", [tripped_rec])
        garbage = write("garbage.json", "{not json")
        nonarray = write("nonarray.json", {"bench": "b"})
        missing = os.path.join(d, "does-not-exist.json")

        checks = [
            # (argv, expected exit, expected substring, stream)
            ([missing, good], 2, "cannot read baseline", "stderr"),
            ([garbage, good], 2, "not valid JSON", "stderr"),
            ([nonarray, good], 2, "array of objects", "stderr"),
            ([base, missing], 2, "cannot read report", "stderr"),
            ([base, garbage], 2, "not valid JSON", "stderr"),
            ([base, good], 0, "no regressions", "stdout"),
            ([base, slow], 0, "regressed", "stdout"),
            ([base, tripped], 0, "non-ok outcome", "stdout"),
        ]
        for argv, want_code, want_text, stream in checks:
            r = run(argv)
            out = r.stderr if stream == "stderr" else r.stdout
            if r.returncode != want_code or want_text not in out:
                print("self-test FAILED for %s:\n  exit %d (want %d)\n"
                      "  stdout: %s\n  stderr: %s"
                      % (argv, r.returncode, want_code, r.stdout, r.stderr),
                      file=sys.stderr)
                return 1
    print("bench-compare self-test: %d checks ok" % len(checks))
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    try:
        baseline = {key(r): r for r in load(argv[1], "baseline") if is_ok(r)}
        current = []
        for path in argv[2:]:
            current.extend(load(path, "report"))
    except InputError as e:
        print("bench-compare error: %s" % e, file=sys.stderr)
        return 2

    compared = 0
    skipped = []
    regressions = []
    for rec in current:
        if not is_ok(rec):
            skipped.append(describe(rec))
            continue
        base = baseline.get(key(rec))
        if base is None:
            continue
        for field in TIMING_FIELDS:
            if field not in rec or field not in base:
                continue
            b, c = float(base[field]), float(rec[field])
            compared += 1
            if b > 0 and c > b * (1 + THRESHOLD):
                regressions.append(
                    "  %s %s failures=%s %s: %.1fms -> %.1fms (+%.0f%%)"
                    % (rec.get("bench"), rec.get("network"),
                       rec.get("failures"), field, b, c, 100 * (c / b - 1)))
        for field in RATIO_FIELDS:
            if field not in rec or field not in base:
                continue
            b, c = float(base[field]), float(rec[field])
            compared += 1
            if abs(c - b) > RATIO_THRESHOLD:
                regressions.append(
                    "  %s %s failures=%s %s: %.2f -> %.2f"
                    % (rec.get("bench"), rec.get("network"),
                       rec.get("failures"), field, b, c))

    print("bench-smoke: compared %d timings against %s" % (compared, argv[1]))
    if skipped:
        # Name the degraded benchmarks so a truncated run is visible in
        # the CI log, not silently dropped from the comparison.
        print("skipped %d record(s) with a non-ok outcome:" % len(skipped))
        for name in skipped:
            print("  " + name)
    if not compared:
        print("warning: no overlapping records — baseline out of date?")
    if regressions:
        print("warning: %d timing(s) regressed more than %d%%:"
              % (len(regressions), int(100 * THRESHOLD)))
        print("\n".join(regressions))
        print("(not failing the job: smoke timings on shared runners are "
              "noisy; investigate if this persists across runs)")
    else:
        print("no regressions beyond %d%%" % int(100 * THRESHOLD))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
