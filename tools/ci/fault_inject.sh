#!/usr/bin/env bash
# fault_inject.sh — run-governance smoke stage: arms every NV_FAULT_INJECT
# safe-point site against the nv CLI on the example networks and asserts
# that each run terminates with the documented resource-exhausted exit
# code (3) — never an abort, never a crash — and that a clean budget-flag
# run degrades the same way. Finally replays the committed budget corpus
# seed through nv-fuzz: its FT legs hit the step budget and must reduce to
# the structured skip verdict (exit 0, no divergence).
#
# Usage: tools/ci/fault_inject.sh [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}

# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release ${CMAKE_EXTRA:-}
cmake --build "$BUILD_DIR" -j"$JOBS" --target nv nv-fuzz

NV="./$BUILD_DIR/tools/nv"
NV_FUZZ="./$BUILD_DIR/tools/nv-fuzz"

# expect_code CODE DESC CMD...: run CMD, require exit code CODE exactly.
# Signal deaths (abort = 134, segfault = 139) show up as wrong codes.
expect_code() {
  local want=$1 desc=$2
  shift 2
  local got=0
  "$@" > /dev/null 2>&1 || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: $desc: expected exit $want, got $got: $*" >&2
    exit 1
  fi
  echo "ok: $desc (exit $got)"
}

EXAMPLE=examples/nv/sp_diamond.nv

# Every injection site, against the engine most likely to reach it. A site
# a command never reaches simply leaves the countdown unfired, and the run
# must then succeed with its normal code — so pair each site with a
# command that does reach it.
expect_code 3 "inject sim-pop into sim" \
  env NV_FAULT_INJECT=sim-pop:1 "$NV" sim "$EXAMPLE"
expect_code 3 "inject alloc into sim" \
  env NV_FAULT_INJECT=alloc:1 "$NV" sim "$EXAMPLE"
expect_code 3 "inject apply-cache-miss into ft" \
  env NV_FAULT_INJECT=apply-cache-miss:1 "$NV" ft "$EXAMPLE"
expect_code 3 "inject smt-encode into verify" \
  env NV_FAULT_INJECT=smt-encode:1 "$NV" verify "$EXAMPLE"
expect_code 3 "inject solver-check into verify" \
  env NV_FAULT_INJECT=solver-check:1 "$NV" verify "$EXAMPLE"

# table-grow needs an MTBDD arena that actually outgrows its initial
# tables: a generator-produced fat tree under a 2-failure meta-simulation
# (seed-derived, so the run is deterministic).
BIG=$(mktemp --suffix=.nv)
trap 'rm -f "$BIG"' EXIT
"$NV_FUZZ" --emit 12 > "$BIG"
expect_code 3 "inject table-grow into 2-failure ft" \
  env NV_FAULT_INJECT=table-grow:1 "$NV" ft "$BIG" --links 2

# An armed site a run never reaches must leave the verdict untouched
# (sp_diamond's arena never grows; ft still reports its real violations).
expect_code 1 "armed-but-unreached table-grow keeps the verdict" \
  env NV_FAULT_INJECT=table-grow:1 "$NV" ft "$EXAMPLE"

# Late countdowns fire mid-run rather than at the first safe point.
expect_code 3 "inject sim-pop:3 mid-simulation" \
  env NV_FAULT_INJECT=sim-pop:3 "$NV" sim "$EXAMPLE"
expect_code 3 "inject alloc:100 mid-ft" \
  env NV_FAULT_INJECT=alloc:100 "$NV" ft "$EXAMPLE"

# Budget flags degrade the same way without injection.
expect_code 3 "50ms deadline on verify" \
  "$NV" verify "$EXAMPLE" --deadline-ms 0.0001
expect_code 3 "step budget on sim" \
  "$NV" sim "$EXAMPLE" --max-steps 1
expect_code 3 "node budget on ft" \
  "$NV" ft "$EXAMPLE" --node-budget 4

# Ungoverned runs keep their normal verdict codes (0 = holds; ft on the
# diamond reports real violations = 1).
expect_code 0 "ungoverned sim" "$NV" sim "$EXAMPLE"
expect_code 1 "ungoverned ft (violations)" "$NV" ft "$EXAMPLE"

# The committed budget corpus seed: its non-monotone FT meta-simulation
# hits the oracle's step budget and must reduce to the canonical skip
# verdict — a structured outcome, not a divergence or a hang.
"$NV_FUZZ" --replay tests/corpus/seed_ft_budget_record-bgp.nv

# Fault injection composed with the full differential oracle: a corpus
# replay with a mid-run fault must still agree (the hit leg skips).
NV_FAULT_INJECT=sim-pop:50 "$NV_FUZZ" --replay tests/corpus

echo "fault-injection smoke passed"
