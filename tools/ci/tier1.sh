#!/usr/bin/env bash
# tier1.sh — configure, build, and run the complete ctest suite.
#
# Usage: tools/ci/tier1.sh [BUILD_DIR] [BUILD_TYPE]
# Env:   JOBS (parallelism), NV_WERROR=ON to fail on warnings,
#        CMAKE_EXTRA (extra configure flags, word-split on purpose).
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
BUILD_TYPE=${2:-RelWithDebInfo}
JOBS=${JOBS:-$(nproc)}

# shellcheck disable=SC2086  # CMAKE_EXTRA is a flag list
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE="$BUILD_TYPE" \
  -DNV_WERROR="${NV_WERROR:-OFF}" \
  ${CMAKE_EXTRA:-}
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# The bench-compare gate's own contract (hard failure on a rotten
# baseline, warn-only on timings) is cheap to verify everywhere tier-1
# runs, and catches a python3 incompatibility before bench-smoke does.
python3 tools/ci/bench_compare.py --self-test
