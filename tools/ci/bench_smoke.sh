#!/usr/bin/env bash
# bench_smoke.sh — run the two tracked figure benchmarks in their smallest
# (--smoke) configuration and diff the timings against the committed
# BENCH_2.json baseline. Regressions print warnings but never fail the
# job (shared-runner noise); use the warnings as a trend signal.
#
# Usage: tools/ci/bench_smoke.sh [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}

cmake --build "$BUILD_DIR" -j"$JOBS" \
  --target fig13b_fault_scaling fig14_simulation serve_latency fleet_overhead

mkdir -p bench-artifacts
"./$BUILD_DIR/bench/fig13b_fault_scaling" --smoke --json bench-artifacts/fig13b.json
"./$BUILD_DIR/bench/fig14_simulation" --smoke --json bench-artifacts/fig14.json
# The saturation record tracks admission behavior (shed_rate by absolute
# drift, accepted_p99_ms like any timing) against the baseline.
"./$BUILD_DIR/bench/serve_latency" --smoke --saturate \
  --json bench-artifacts/serve_saturation.json
# Fleet dispatch tax: in-process vs 1-worker fleet wall time per job.
"./$BUILD_DIR/bench/fleet_overhead" --smoke \
  --json bench-artifacts/fleet_overhead.json

python3 tools/ci/bench_compare.py BENCH_2.json \
  bench-artifacts/fig13b.json bench-artifacts/fig14.json \
  bench-artifacts/serve_saturation.json bench-artifacts/fleet_overhead.json
