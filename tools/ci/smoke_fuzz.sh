#!/usr/bin/env bash
# smoke_fuzz.sh — short differential-fuzz pass for PR CI: replay the
# committed regression corpus, then a fixed-seed batch of fresh instances.
# Any divergence fails the job; the repro (if --minimize produced one)
# lands under the artifact dir for upload as an artifact.
#
# Usage: tools/ci/smoke_fuzz.sh [BUILD_DIR] [COUNT] [SEED]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
COUNT=${2:-200}
SEED=${3:-1}
FUZZ="./$BUILD_DIR/tools/nv-fuzz"

cmake --build "$BUILD_DIR" -j"${JOBS:-$(nproc)}" --target nv-fuzz

echo "== corpus replay =="
"$FUZZ" --replay tests/corpus

echo
echo "== smoke fuzz: $COUNT instances, seed $SEED =="
mkdir -p fuzz-artifacts
"$FUZZ" --seed "$SEED" --count "$COUNT" --minimize \
  --artifact-dir fuzz-artifacts --json fuzz-artifacts/summary.json
