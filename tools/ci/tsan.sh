#!/usr/bin/env bash
# tsan.sh — ThreadSanitizer build of the parallel determinism, thread-pool,
# run-governance and serve tests (concurrent requests, disconnect
# cancellation), to catch data races the functional tests cannot see.
#
# Usage: tools/ci/tsan.sh [BUILD_DIR]
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build-tsan}
JOBS=${JOBS:-$(nproc)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DNV_WERROR="${NV_WERROR:-OFF}" \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build "$BUILD_DIR" -j"$JOBS" \
  --target parallel_tests threadpool_tests governor_tests serve_tests
"./$BUILD_DIR/tests/threadpool_tests"
"./$BUILD_DIR/tests/parallel_tests"
"./$BUILD_DIR/tests/governor_tests"
"./$BUILD_DIR/tests/serve_tests"
