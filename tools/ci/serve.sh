#!/usr/bin/env bash
# serve.sh — end-to-end exercise of the `nv serve` daemon: start it on a
# Unix socket with a request journal, run a scripted session (load, warm
# and memoized repeat queries, concurrent queries, a budget-tripped
# request, health, stats, shutdown), and assert both the JSON response
# fields and the `nv req` exit codes against the CLI taxonomy (0 ok,
# 1 falsified, 2 user error, 3 resource, 4 internal). Ends with the
# serve_latency saturation smoke: admission control must shed with retry
# hints while every accepted request completes.
#
# Usage: tools/ci/serve.sh [BUILD_DIR]
# Env:   JOBS (parallelism), SANITIZE (e.g. "address,undefined" builds the
#        daemon under ASan+UBSan), CMAKE_EXTRA (extra configure flags).
# Daemon stderr and all responses land in serve-artifacts/ for upload.
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}

if [ -n "${SANITIZE:-}" ]; then
  # shellcheck disable=SC2086  # CMAKE_EXTRA is a flag list
  cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DNV_WERROR="${NV_WERROR:-OFF}" \
    -DCMAKE_CXX_FLAGS="-fsanitize=$SANITIZE -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=$SANITIZE" \
    ${CMAKE_EXTRA:-}
else
  # shellcheck disable=SC2086
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
    -DNV_WERROR="${NV_WERROR:-OFF}" ${CMAKE_EXTRA:-}
fi
cmake --build "$BUILD_DIR" -j"$JOBS" --target nv

NV="./$BUILD_DIR/tools/nv"
ART=serve-artifacts
mkdir -p "$ART"
# Socket paths are length-limited (sun_path), so keep it in /tmp.
SOCK=$(mktemp -u /tmp/nv-serve-ci.XXXXXX.sock)
JOURNAL="$ART/serve.journal"
rm -f "$JOURNAL"

cat > "$ART/net.nv" <<'EOF'
let nodes = 4
let edges = {0n=1n;1n=2n;2n=3n}
let init (u : node) = match u with | 0n -> Some 0 | _ -> None
let trans (e : edge) (x : option[int]) = match x with | None -> None | Some d -> Some (d + 1)
let merge (u : node) (x : option[int]) (y : option[int]) = match x, y with | _, None -> x | None, _ -> y | Some a, Some b -> if a <= b then x else y
let assert (u : node) (x : option[int]) = match x with | None -> false | Some d -> true
EOF

"$NV" serve "$SOCK" --threads 4 --journal "$JOURNAL" 2> "$ART/daemon.log" &
DAEMON=$!
cleanup() {
  kill "$DAEMON" 2>/dev/null || true
  rm -f "$SOCK"
}
trap cleanup EXIT

# Wait for the socket to come up.
for _ in $(seq 1 100); do
  if "$NV" req "$SOCK" '{"verb":"ping"}' >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON" 2>/dev/null; then
    echo "FAIL: daemon died during startup" >&2
    cat "$ART/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done

# req_expect <want-exit-code> <request-json>: runs `nv req`, asserts its
# exit code (which mirrors the response's "code"), echoes the response.
req_expect() {
  local want=$1 body=$2 resp rc=0
  resp=$("$NV" req "$SOCK" "$body" 2>>"$ART/req-errors.log") || rc=$?
  echo "$resp" >> "$ART/responses.jsonl"
  if [ "$rc" -ne "$want" ]; then
    echo "FAIL: exit $rc (want $want) for: $body" >&2
    echo "  response: $resp" >&2
    exit 1
  fi
  echo "$resp"
}

# field <json> <key...>: prints the (possibly nested) field value.
field() {
  local json=$1
  shift
  echo "$json" | python3 -c '
import json, sys
v = json.loads(sys.stdin.read())
for k in sys.argv[1:]:
    v = v[k]
print(json.dumps(v) if isinstance(v, (dict, list)) else v)' "$@"
}

# assert_eq <actual> <expected> <what>
assert_eq() {
  if [ "$1" != "$2" ]; then
    echo "FAIL: $3: got '$1', want '$2'" >&2
    exit 1
  fi
}

echo "== load"
R=$(req_expect 0 "{\"verb\":\"load\",\"session\":\"net\",\"path\":\"$ART/net.nv\"}")
assert_eq "$(field "$R" nodes)" 4 "load nodes"
assert_eq "$(field "$R" edges)" 3 "load edges"

echo "== protocol errors are code 2"
req_expect 2 'not json' >/dev/null
req_expect 2 '{"verb":"frobnicate"}' >/dev/null
req_expect 2 '{"verb":"sim","session":"ghost"}' >/dev/null

echo "== cold ft: the line network has real violations (exit 1)"
R=$(req_expect 1 '{"verb":"ft","session":"net"}')
assert_eq "$(field "$R" warm)" False "cold ft warm flag"
HASH=$(field "$R" violations_hash)

echo "== warm recompute (fresh) is bit-identical"
R=$(req_expect 1 '{"verb":"ft","session":"net","fresh":true}')
assert_eq "$(field "$R" warm)" True "fresh ft warm flag"
assert_eq "$(field "$R" violations_hash)" "$HASH" "fresh ft hash"

echo "== memoized repeat is bit-identical"
R=$(req_expect 1 '{"verb":"ft","session":"net"}')
assert_eq "$(field "$R" cached)" True "repeat ft cached flag"
assert_eq "$(field "$R" violations_hash)" "$HASH" "repeat ft hash"

echo "== sim converges (exit 0)"
R=$(req_expect 0 '{"verb":"sim","session":"net"}')
assert_eq "$(field "$R" converged)" True "sim converged"

echo "== concurrent queries from parallel clients"
PIDS=()
for i in 1 2 3 4; do
  "$NV" req "$SOCK" "{\"verb\":\"ft\",\"session\":\"net\",\"links\":1,\"fresh\":true}" \
    > "$ART/conc.$i.json" &
  PIDS+=($!)
done
for pid in "${PIDS[@]}"; do
  rc=0
  wait "$pid" || rc=$?
  assert_eq "$rc" 1 "concurrent ft exit code"
done
CONC_HASH=$(field "$(cat "$ART/conc.1.json")" violations_hash)
for i in 2 3 4; do
  assert_eq "$(field "$(cat "$ART/conc.$i.json")" violations_hash)" \
    "$CONC_HASH" "concurrent ft hash $i"
done

echo "== budget-tripped request is exit 3, session survives"
R=$(req_expect 3 '{"verb":"ft","session":"net","max_steps":1}')
assert_eq "$(field "$R" outcome_status)" step-budget-exceeded "trip status"
req_expect 0 '{"verb":"sim","session":"net"}' >/dev/null

echo "== health reports ready with the worker's generation"
R=$(req_expect 0 '{"verb":"health"}')
assert_eq "$(field "$R" state)" ready "health state"
assert_eq "$(field "$R" generation)" 0 "health generation (no restarts)"

echo "== stats"
R=$(req_expect 0 '{"verb":"stats"}')
assert_eq "$(field "$R" pool threads)" 4 "pool threads"
HITS=$(field "$R" result_cache hits)
[ "$HITS" -ge 1 ] || { echo "FAIL: result-cache hits $HITS < 1" >&2; exit 1; }
ACTIVE=$(field "$R" requests active)
COMPLETED=$(field "$R" requests completed)
[ "$COMPLETED" -ge 10 ] || { echo "FAIL: completed $COMPLETED < 10" >&2; exit 1; }
assert_eq "$ACTIVE" 1 "active requests (just the stats call)"

echo "== shutdown (daemon exits 0)"
req_expect 0 '{"verb":"shutdown"}' >/dev/null
rc=0
wait "$DAEMON" || rc=$?
assert_eq "$rc" 0 "daemon exit code"
trap - EXIT

echo "== journal inspect shows a drained queue"
SUMMARY=$("$NV" journal "$JOURNAL")
echo "$SUMMARY"
echo "$SUMMARY" | grep -q "serve queue:" || {
  echo "FAIL: journal summary lacks the serve queue line" >&2
  exit 1
}
echo "$SUMMARY" | grep -q "0 pending" || {
  echo "FAIL: request queue did not drain" >&2
  exit 1
}

echo "== saturation smoke: admission sheds with retry hints, accepted work completes"
cmake --build "$BUILD_DIR" -j"$JOBS" --target serve_latency
"./$BUILD_DIR/bench/serve_latency" --smoke --saturate \
  --json "$ART/serve_saturation.json"

echo "serve e2e: all checks passed"
