#!/usr/bin/env bash
# chaos_fleet.sh — crash-chaos gate for the --workers fleet: a killer
# loop SIGKILLs random workers mid-run and the final aggregate must stay
# bit-identical to the uninterrupted in-process reference; ft and fuzz
# fleets must match their in-process runs the same way; each fleet-layer
# NV_FAULT_INJECT site is armed and must degrade (requeue/respawn) to the
# reference verdict; and a planted always-crashing job must be
# quarantined — the run completes, prints the QUARANTINED line, exits
# with the documented resource code 3, and leaves a runnable repro
# script behind.
#
# Usage: tools/ci/chaos_fleet.sh [BUILD_DIR]
# Env:   JOBS (parallelism), KILLS (SIGKILL budget), CMAKE_EXTRA.
# Logs, JSON aggregates, and quarantine repros land in
# fleet-chaos-artifacts/ for upload.
set -euo pipefail
cd "$(dirname "$0")/../.."

BUILD_DIR=${1:-build}
JOBS=${JOBS:-$(nproc)}
KILLS=${KILLS:-12}

# shellcheck disable=SC2086
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release \
  -DNV_WERROR="${NV_WERROR:-OFF}" ${CMAKE_EXTRA:-}
cmake --build "$BUILD_DIR" -j"$JOBS" --target nv nv-fuzz

NV="./$BUILD_DIR/tools/nv"
NV_FUZZ="./$BUILD_DIR/tools/nv-fuzz"
ART=fleet-chaos-artifacts
mkdir -p "$ART"

NET="$ART/net.nv"
# Seed-derived fat tree (deterministic): 528 two-failure scenarios —
# enough sharded runway for a dozen SIGKILLs to land mid-job.
"$NV_FUZZ" --emit 12 > "$NET"

strip_ms() { grep -v '_ms' "$1"; }

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

#===----------------------------------------------------------------------===#
# Stage 0: uninterrupted in-process references — the aggregates every
# fleet run below must reproduce bit-for-bit (modulo *_ms timings).
#===----------------------------------------------------------------------===#

echo "== in-process references (--workers 0)"
REF_NAIVE=0
"$NV" naive "$NET" --links 2 --threads 4 --json "$ART/ref-naive.json" \
  > /dev/null || REF_NAIVE=$?
[ "$REF_NAIVE" -le 1 ] || fail "naive reference died (exit $REF_NAIVE)"
REF_FT=0
"$NV" ft "$NET" --links 2 --threads 4 --json "$ART/ref-ft.json" \
  > /dev/null || REF_FT=$?
[ "$REF_FT" -le 1 ] || fail "ft reference died (exit $REF_FT)"
echo "ok: references (naive exit $REF_NAIVE, ft exit $REF_FT)"

#===----------------------------------------------------------------------===#
# Stage 1: killer loop. SIGKILL every worker the coordinator announces
# (up to $KILLS), forcing requeue + respawn over and over; the merged
# aggregate must still equal the reference. The poison threshold is
# raised far above the kill budget so random murder never quarantines —
# quarantine is for jobs that kill workers, not workers that get killed.
#===----------------------------------------------------------------------===#

echo "== killer loop: SIGKILL up to $KILLS workers mid-run"
env NV_FLEET_POISON_THRESHOLD=1000 \
  NV_FLEET_BACKOFF_BASE_MS=10 NV_FLEET_BACKOFF_CAP_MS=80 \
  "$NV" naive "$NET" --links 2 --workers 3 --json "$ART/kill.json" \
  > "$ART/kill.out" 2> "$ART/kill.err" &
PID=$!
KILLED=0
declare -A SEEN
while kill -0 "$PID" 2>/dev/null; do
  if [ "$KILLED" -lt "$KILLS" ]; then
    # The coordinator logs "nv fleet: worker pid N slot S generation G"
    # for every spawn; kill each announced pid exactly once.
    for W in $(sed -n 's/.*worker pid \([0-9]*\) slot.*/\1/p' \
        "$ART/kill.err"); do
      [ -n "${SEEN[$W]:-}" ] && continue
      SEEN[$W]=1
      if kill -9 "$W" 2>/dev/null; then
        KILLED=$((KILLED + 1))
        [ "$KILLED" -ge "$KILLS" ] && break
      fi
    done
  fi
  sleep 0.05
done
GOT=0
wait "$PID" || GOT=$?
echo "killed $KILLED workers"
[ "$KILLED" -ge 2 ] || fail "killer loop landed only $KILLED kills"
[ "$GOT" -eq "$REF_NAIVE" ] || {
  cat "$ART/kill.err" >&2
  fail "chaos run exit $GOT != reference $REF_NAIVE"
}
DEATHS=$(sed -n 's/^fleet: .* \([0-9]*\) deaths.*/\1/p' "$ART/kill.out")
[ -n "$DEATHS" ] && [ "$DEATHS" -ge 1 ] \
  || fail "fleet stats report no worker deaths after $KILLED SIGKILLs"
diff <(strip_ms "$ART/ref-naive.json") <(strip_ms "$ART/kill.json") \
  || fail "post-chaos aggregate differs from in-process reference"
echo "ok: $KILLED SIGKILLs, $DEATHS deaths survived, aggregate identical"

#===----------------------------------------------------------------------===#
# Stage 2: ft chunk fleet matches the in-process checker.
#===----------------------------------------------------------------------===#

echo "== ft --workers 2 vs in-process"
GOT=0
"$NV" ft "$NET" --links 2 --workers 2 --chunk 64 --json "$ART/ft-w2.json" \
  > /dev/null || GOT=$?
[ "$GOT" -eq "$REF_FT" ] || fail "ft fleet exit $GOT != reference $REF_FT"
diff <(strip_ms "$ART/ref-ft.json") <(strip_ms "$ART/ft-w2.json") \
  || fail "ft fleet JSON differs from in-process reference"
echo "ok: ft fleet aggregate identical"

#===----------------------------------------------------------------------===#
# Stage 3: arm each fleet-layer fault site. fleet-spawn degrades to a
# backoff-retried spawn, fleet-dispatch kills a worker on job receipt
# (requeue + respawn with the injection stripped), fleet-result drops a
# landed result and requeues. All three must end at the reference
# verdict with an identical aggregate.
#===----------------------------------------------------------------------===#

echo "== fleet-layer fault injection"
for SITE in fleet-spawn fleet-dispatch fleet-result; do
  GOT=0
  env NV_FAULT_INJECT="$SITE:1" \
    "$NV" naive "$NET" --links 2 --workers 2 --json "$ART/fi-$SITE.json" \
    > "$ART/fi-$SITE.out" 2> "$ART/fi-$SITE.err" || GOT=$?
  [ "$GOT" -eq "$REF_NAIVE" ] \
    || fail "$SITE: exit $GOT != reference $REF_NAIVE"
  diff <(strip_ms "$ART/ref-naive.json") <(strip_ms "$ART/fi-$SITE.json") \
    || fail "$SITE: aggregate differs from reference"
  echo "ok: $SITE"
done

#===----------------------------------------------------------------------===#
# Stage 4: poison-job quarantine. A planted job that abort()s its worker
# on every dispatch must be quarantined after the threshold: the run
# COMPLETES (every other unit checked), reports the quarantined unit,
# exits with the documented resource code 3, and leaves an executable
# repro script that reproduces the crash outside the fleet.
#===----------------------------------------------------------------------===#

echo "== poison-job quarantine"
GOT=0
env NV_FLEET_POISON_KEY=s100 NV_FLEET_POISON_THRESHOLD=2 \
  NV_FLEET_QUARANTINE_DIR="$ART" \
  "$NV" naive "$NET" --links 2 --workers 2 --json "$ART/quar.json" \
  > "$ART/quar.out" 2> "$ART/quar.err" || GOT=$?
[ "$GOT" -eq 3 ] || {
  cat "$ART/quar.out" "$ART/quar.err" >&2
  fail "quarantine run: expected exit 3, got $GOT"
}
grep -q "QUARANTINED unit s100" "$ART/quar.out" \
  || fail "no QUARANTINED line for the planted poison job"
REPRO="$ART/nv-quarantine-s100.sh"
[ -x "$REPRO" ] || fail "quarantine repro script $REPRO missing/not executable"
RGOT=0
"$REPRO" > /dev/null 2>&1 || RGOT=$?
[ "$RGOT" -ne 0 ] || fail "repro script did not reproduce the crash"
# Exactly one unit lost: skipped=1, one fewer checked than the reference.
grep -q '"skipped": 1' "$ART/quar.json" \
  || fail "quarantine JSON does not report exactly one skipped scenario"
echo "ok: quarantined after 2 deaths, run completed, repro exits $RGOT"

#===----------------------------------------------------------------------===#
# Stage 5: fuzz-campaign fleet matches the in-process campaign (same
# seed, planted bug) — same tally, same divergence repros.
#===----------------------------------------------------------------------===#

echo "== nv-fuzz --workers 3 vs in-process campaign"
GOT0=0
"$NV_FUZZ" --count 16 --seed 7 --inject-bug-for-testing \
  --artifact-dir "$ART/fuzz" --json "$ART/fuzz-ref.json" \
  > /dev/null || GOT0=$?
GOTW=0
"$NV_FUZZ" --count 16 --seed 7 --inject-bug-for-testing --workers 3 \
  --artifact-dir "$ART/fuzz" --json "$ART/fuzz-w3.json" \
  > /dev/null || GOTW=$?
[ "$GOTW" -eq "$GOT0" ] || fail "fuzz fleet exit $GOTW != in-process $GOT0"
diff <(strip_ms "$ART/fuzz-ref.json") <(strip_ms "$ART/fuzz-w3.json") \
  || fail "fuzz fleet summary differs from in-process campaign"
echo "ok: fuzz fleet tally identical (exit $GOTW)"

echo "fleet chaos gate: all checks passed"
