//===- nv_fuzz.cpp - Differential fuzzing driver ------------------------------===//
//
// Part of nv-cpp. The command-line front end of the differential fuzzer:
//
//   nv-fuzz --seed S --count N        run N seed-derived instances through
//                                     the cross-engine oracle
//   nv-fuzz --time-budget SECS        run until the wall-clock budget is
//                                     spent (nightly CI mode)
//   nv-fuzz --replay PATH             replay a corpus file or directory
//   nv-fuzz --emit SEED               print the corpus-format rendering of
//                                     one instance (corpus seeding)
//
// Options:
//   --minimize           shrink each divergence and write a corpus repro
//   --corpus-dir DIR     where minimized repros are written (default
//                        tests/corpus)
//   --threads N          thread count for the N-thread oracle legs
//   --no-smt/--no-ft/--no-naive   disable oracle legs
//   --json PATH          machine-readable summary
//
// Determinism: instance i of a run is seed-derived via mixSeed(S, i) —
// the same --seed/--count always replays the same instances and reaches
// the same verdicts (--time-budget trades this for wall-clock coverage).
//
// Exit codes (shared scheme with the nv CLI):
//   0  all instances agree
//   1  divergence found
//   2  usage or I/O error
//   3  resource exhausted (an EngineError with a resource-limit outcome
//      escaped the oracle's per-leg catches, e.g. a fault injected before
//      any engine scope was armed)
//   4  internal error
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/InstanceGen.h"
#include "fuzz/Minimize.h"
#include "fuzz/Oracle.h"
#include "fuzz/Rng.h"
#include "support/Governor.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace nv;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nv-fuzz [--seed S] [--count N] [--start I] [--time-budget SECS]\n"
      "               [--minimize] [--corpus-dir DIR] [--threads N]\n"
      "               [--no-smt] [--no-ft] [--no-naive] [--json PATH]\n"
      "       nv-fuzz --replay PATH   (corpus file or directory)\n"
      "       nv-fuzz --emit SEED     (print one instance in corpus form)\n");
  return 2;
}

struct FuzzCli {
  uint64_t Seed = 1;
  uint64_t Count = 100;
  uint64_t Start = 0;
  unsigned TimeBudgetSec = 0;
  bool Minimize = false;
  std::string CorpusDir = "tests/corpus";
  std::string ReplayPath;
  std::string JsonPath;
  bool Emit = false;
  uint64_t EmitSeed = 0;
  OracleOptions Oracle;
};

std::optional<FuzzCli> parseCli(int argc, char **argv) {
  FuzzCli O;
  for (int I = 1; I < argc; ++I) {
    auto Arg = [&](const char *Name) { return !std::strcmp(argv[I], Name); };
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg("--seed")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Seed = std::strtoull(V, nullptr, 0);
    } else if (Arg("--count")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Count = std::strtoull(V, nullptr, 0);
    } else if (Arg("--start")) {
      // First instance index; lets nightly shards cover disjoint ranges
      // of the same base seed.
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Start = std::strtoull(V, nullptr, 0);
    } else if (Arg("--time-budget")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.TimeBudgetSec = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--threads")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Oracle.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--minimize")) {
      O.Minimize = true;
    } else if (Arg("--corpus-dir")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.CorpusDir = V;
    } else if (Arg("--replay")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.ReplayPath = V;
    } else if (Arg("--emit")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Emit = true;
      O.EmitSeed = std::strtoull(V, nullptr, 0);
    } else if (Arg("--json")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.JsonPath = V;
    } else if (Arg("--no-smt")) {
      O.Oracle.EnableSmt = false;
    } else if (Arg("--no-ft")) {
      O.Oracle.EnableFt = false;
    } else if (Arg("--no-naive")) {
      O.Oracle.EnableNaive = false;
    } else if (Arg("--inject-bug-for-testing")) {
      // Undocumented: plants the deliberate engine bug the self-tests use
      // to prove the oracle catches and the minimizer shrinks divergences.
      O.Oracle.InjectBugForTesting = true;
    } else {
      return std::nullopt;
    }
  }
  if (std::getenv("NV_FUZZ_INJECT_BUG"))
    O.Oracle.InjectBugForTesting = true;
  return O;
}

struct RunTally {
  uint64_t Instances = 0;
  uint64_t Divergences = 0;
  uint64_t LegRuns = 0;
  std::vector<std::string> ReproFiles;
};

/// Runs one instance; on divergence optionally minimizes and writes a
/// corpus repro. Returns false on divergence.
bool runOne(const FuzzInstance &Inst, const FuzzCli &Cli, RunTally &T) {
  DiagnosticEngine Diags;
  OracleVerdict V = runOracle(Inst, Cli.Oracle, Diags);
  ++T.Instances;
  T.LegRuns += V.Runs.size();
  if (V.Ok)
    return true;

  ++T.Divergences;
  std::printf("DIVERGENCE %s\n  %s\n", Inst.Name.c_str(),
              V.Mismatch.c_str());
  if (!Cli.Minimize)
    return false;

  MinimizeResult M = minimizeSpec(Inst.Spec, Cli.Oracle);
  std::printf("  minimized: n=%u e=%zu after %u oracle runs, %u moves\n",
              M.Final.NumNodes, M.Final.Edges.size(), M.OracleRuns,
              M.MovesApplied);
  std::error_code EC;
  std::filesystem::create_directories(Cli.CorpusDir, EC);
  char SeedHex[32];
  std::snprintf(SeedHex, sizeof(SeedHex), "%016llx",
                static_cast<unsigned long long>(Inst.Spec.Seed));
  std::string Path = Cli.CorpusDir + "/repro_" +
                     policyKindName(M.Final.Policy) + "_" + SeedHex + ".nv";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << corpusFileText(M.Instance, "minimized repro; diverged: " +
                                        M.Verdict.Mismatch.substr(0, 200));
  std::printf("  wrote %s\n", Path.c_str());
  T.ReproFiles.push_back(Path);
  return false;
}

bool writeJson(const std::string &Path, const RunTally &T, double Ms) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << "{\n  \"instances\": " << T.Instances
      << ",\n  \"divergences\": " << T.Divergences
      << ",\n  \"engine_runs\": " << T.LegRuns << ",\n  \"elapsed_ms\": "
      << static_cast<uint64_t>(Ms) << ",\n  \"repros\": [";
  for (size_t I = 0; I < T.ReproFiles.size(); ++I)
    Out << (I ? ", " : "") << '"' << T.ReproFiles[I] << '"';
  Out << "]\n}\n";
  return true;
}

int replay(const FuzzCli &Cli) {
  std::vector<std::string> Files;
  if (std::filesystem::is_directory(Cli.ReplayPath))
    Files = listCorpusFiles(Cli.ReplayPath);
  else
    Files.push_back(Cli.ReplayPath);
  if (Files.empty()) {
    std::fprintf(stderr, "no corpus files under %s\n",
                 Cli.ReplayPath.c_str());
    return 2;
  }
  RunTally T;
  Stopwatch W;
  bool AllOk = true;
  for (const std::string &F : Files) {
    auto Inst = loadCorpusFile(F);
    if (!Inst)
      return 2;
    bool Ok = runOne(*Inst, Cli, T);
    std::printf("%-60s %s\n", F.c_str(), Ok ? "ok" : "DIVERGED");
    AllOk = AllOk && Ok;
  }
  std::printf("replayed %llu corpus instances, %llu divergences\n",
              static_cast<unsigned long long>(T.Instances),
              static_cast<unsigned long long>(T.Divergences));
  if (!Cli.JsonPath.empty() && !writeJson(Cli.JsonPath, T, W.elapsedMs()))
    return 2;
  return AllOk ? 0 : 1;
}

int fuzzMain(int argc, char **argv) {
  auto Cli = parseCli(argc, argv);
  if (!Cli)
    return usage();

  if (Cli->Emit) {
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Cli->EmitSeed, Diags);
    if (Inst.NvSource.empty()) {
      std::fprintf(stderr, "generator failed:\n%s", Diags.str().c_str());
      return 2;
    }
    std::printf("%s", corpusFileText(
                          Inst, "generator-produced regression instance")
                          .c_str());
    return 0;
  }
  if (!Cli->ReplayPath.empty())
    return replay(*Cli);

  RunTally T;
  Stopwatch W;
  for (uint64_t I = Cli->Start;; ++I) {
    if (Cli->TimeBudgetSec) {
      if (W.elapsedMs() >= Cli->TimeBudgetSec * 1000.0)
        break;
    } else if (I >= Cli->Start + Cli->Count) {
      break;
    }
    uint64_t Seed = mixSeed(Cli->Seed, I);
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    if (Inst.NvSource.empty()) {
      std::printf("GENERATOR ERROR seed=0x%016llx:\n%s",
                  static_cast<unsigned long long>(Seed),
                  Diags.str().c_str());
      ++T.Divergences;
      continue;
    }
    runOne(Inst, *Cli, T);
    if ((I + 1) % 100 == 0)
      std::printf("[%llu] %llu instances, %llu divergences, %.1fs\n",
                  static_cast<unsigned long long>(I + 1),
                  static_cast<unsigned long long>(T.Instances),
                  static_cast<unsigned long long>(T.Divergences),
                  W.elapsedMs() / 1000.0);
  }
  std::printf("%llu instances, %llu engine runs, %llu divergences, %.1fs\n",
              static_cast<unsigned long long>(T.Instances),
              static_cast<unsigned long long>(T.LegRuns),
              static_cast<unsigned long long>(T.Divergences),
              W.elapsedMs() / 1000.0);
  if (!Cli->JsonPath.empty() && !writeJson(Cli->JsonPath, T, W.elapsedMs()))
    return 2;
  return T.Divergences ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return fuzzMain(argc, argv);
  } catch (const EngineError &E) {
    // The oracle catches per-leg EngineErrors; one escaping here means it
    // fired outside any engine (e.g. an injected fault during instance
    // generation). Exit structurally rather than aborting.
    std::fprintf(stderr, "nv-fuzz: %s\n", E.what());
    return exitCodeForOutcome(E.outcome());
  } catch (const std::exception &E) {
    std::fprintf(stderr, "nv-fuzz: internal error: %s\n", E.what());
    return 4;
  }
}
