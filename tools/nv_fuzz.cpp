//===- nv_fuzz.cpp - Differential fuzzing driver ------------------------------===//
//
// Part of nv-cpp. The command-line front end of the differential fuzzer:
//
//   nv-fuzz --seed S --count N        run N seed-derived instances through
//                                     the cross-engine oracle
//   nv-fuzz --time-budget SECS        run until the wall-clock budget is
//                                     spent (nightly CI mode)
//   nv-fuzz --replay PATH             replay a corpus file or directory
//   nv-fuzz --emit SEED               print the corpus-format rendering of
//                                     one instance (corpus seeding)
//
// Options:
//   --minimize           shrink each divergence and write a corpus repro
//   --artifact-dir DIR   where minimized repros (and other run artifacts)
//                        are written (default tests/corpus; --corpus-dir
//                        is the older spelling of the same knob)
//   --resume PATH        campaign checkpoint journal: completed instances
//                        are replayed (divergence tallies included) and
//                        each newly completed instance is recorded durably
//   --workers N          campaign mode only: run instances on N crash-
//                        isolated worker subprocesses (support/Fleet.h).
//                        A crashing instance requeues; one that kills
//                        several workers is quarantined (recorded as
//                        skipped, with a runnable repro script in the
//                        artifact dir) instead of ending the campaign the
//                        way an escaped EngineError does in-process
//   --retry N            attempts per instance when an EngineError with a
//                        transient outcome escapes the oracle's per-leg
//                        catches; exhausted retries record the instance as
//                        skipped instead of killing the campaign
//   --threads N          thread count for the N-thread oracle legs
//   --no-smt/--no-ft/--no-naive   disable oracle legs
//   --json PATH          machine-readable summary
//
// SIGINT/SIGTERM trigger graceful shutdown: the in-flight instance drains
// through its engines' safe points, the journal keeps every completed
// instance, and the campaign exits with code 3.
//
// Determinism: instance i of a run is seed-derived via mixSeed(S, i) —
// the same --seed/--count always replays the same instances and reaches
// the same verdicts (--time-budget trades this for wall-clock coverage).
//
// Exit codes (shared scheme with the nv CLI):
//   0  all instances agree
//   1  divergence found
//   2  usage or I/O error
//   3  resource exhausted (an EngineError with a resource-limit outcome
//      escaped the oracle's per-leg catches, e.g. a fault injected before
//      any engine scope was armed)
//   4  internal error
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"
#include "fuzz/InstanceGen.h"
#include "fuzz/Minimize.h"
#include "fuzz/Oracle.h"
#include "fuzz/Rng.h"
#include "support/Fleet.h"
#include "support/Governor.h"
#include "support/Resume.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

using namespace nv;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: nv-fuzz [--seed S] [--count N] [--start I] [--time-budget SECS]\n"
      "               [--minimize] [--artifact-dir DIR] [--threads N]\n"
      "               [--resume PATH] [--retry N] [--workers N]\n"
      "               [--no-smt] [--no-ft] [--no-naive] [--json PATH]\n"
      "       nv-fuzz --replay PATH   (corpus file or directory)\n"
      "       nv-fuzz --emit SEED     (print one instance in corpus form)\n");
  return 2;
}

struct FuzzCli {
  uint64_t Seed = 1;
  uint64_t Count = 100;
  uint64_t Start = 0;
  unsigned TimeBudgetSec = 0;
  bool Minimize = false;
  std::string ArtifactDir = "tests/corpus";
  std::string ReplayPath;
  std::string ResumePath;
  std::string JsonPath;
  unsigned Retry = 1;
  unsigned Workers = 0;    ///< Campaign fleet size (0 = in-process).
  bool FleetWorker = false; ///< Hidden: serve instances over fleet pipes.
  bool Emit = false;
  uint64_t EmitSeed = 0;
  OracleOptions Oracle;
};

std::optional<FuzzCli> parseCli(int argc, char **argv) {
  FuzzCli O;
  for (int I = 1; I < argc; ++I) {
    auto Arg = [&](const char *Name) { return !std::strcmp(argv[I], Name); };
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg("--seed")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Seed = std::strtoull(V, nullptr, 0);
    } else if (Arg("--count")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Count = std::strtoull(V, nullptr, 0);
    } else if (Arg("--start")) {
      // First instance index; lets nightly shards cover disjoint ranges
      // of the same base seed.
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Start = std::strtoull(V, nullptr, 0);
    } else if (Arg("--time-budget")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.TimeBudgetSec = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--threads")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Oracle.Threads = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--minimize")) {
      O.Minimize = true;
    } else if (Arg("--corpus-dir") || Arg("--artifact-dir")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.ArtifactDir = V;
    } else if (Arg("--resume")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.ResumePath = V;
    } else if (Arg("--retry")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Retry = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--workers")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Workers = static_cast<unsigned>(std::atoi(V));
    } else if (Arg("--fleet-worker")) {
      // Undocumented: the fleet coordinator re-execs this binary with the
      // flag to obtain workers (job pipe fd 3, result pipe fd 4).
      O.FleetWorker = true;
    } else if (Arg("--replay")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.ReplayPath = V;
    } else if (Arg("--emit")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.Emit = true;
      O.EmitSeed = std::strtoull(V, nullptr, 0);
    } else if (Arg("--json")) {
      const char *V = Next();
      if (!V)
        return std::nullopt;
      O.JsonPath = V;
    } else if (Arg("--no-smt")) {
      O.Oracle.EnableSmt = false;
    } else if (Arg("--no-ft")) {
      O.Oracle.EnableFt = false;
    } else if (Arg("--no-naive")) {
      O.Oracle.EnableNaive = false;
    } else if (Arg("--inject-bug-for-testing")) {
      // Undocumented: plants the deliberate engine bug the self-tests use
      // to prove the oracle catches and the minimizer shrinks divergences.
      O.Oracle.InjectBugForTesting = true;
    } else {
      return std::nullopt;
    }
  }
  if (std::getenv("NV_FUZZ_INJECT_BUG"))
    O.Oracle.InjectBugForTesting = true;
  return O;
}

struct RunTally {
  uint64_t Instances = 0;
  uint64_t Divergences = 0;
  uint64_t LegRuns = 0;
  uint64_t Skipped = 0;
  uint64_t Replayed = 0;
  uint64_t Retries = 0;
  std::vector<std::string> ReproFiles;
};

/// What one completed instance contributed — exactly the facts the
/// checkpoint journal needs to replay it without re-running any engine.
struct InstanceResult {
  bool Diverged = false;
  bool Skipped = false;
  uint64_t Legs = 0;
  unsigned Attempts = 1;
  std::string ReproFile;
};

/// The journal header: everything that determines per-instance verdicts.
/// Thread count and wall-clock budget are provenance — verdicts are
/// invariant under both, so an interrupted campaign may resume with
/// different parallelism.
RunBinding fuzzBinding(const FuzzCli &Cli, const char *Mode) {
  RunBinding B;
  B.set("tool", "nv-fuzz");
  B.set("mode", Mode);
  if (!std::strcmp(Mode, "campaign")) {
    B.setInt("seed", static_cast<long long>(Cli.Seed));
    B.setInt("start", static_cast<long long>(Cli.Start));
    if (Cli.TimeBudgetSec)
      B.set("count", "time-budget");
    else
      B.setInt("count", static_cast<long long>(Cli.Count));
  } else {
    B.set("replay-root", Cli.ReplayPath);
  }
  B.setInt("smt", Cli.Oracle.EnableSmt);
  B.setInt("ft", Cli.Oracle.EnableFt);
  B.setInt("naive", Cli.Oracle.EnableNaive);
  B.setInt("inject-bug", Cli.Oracle.InjectBugForTesting);
  B.setInt("retry", Cli.Retry);
  // Worker count is provenance, not binding: fleet and in-process
  // campaigns write identical instance records, so their journals are
  // interchangeable.
  B.setProvenance("workers", std::to_string(Cli.Workers));
  B.setProvenance("threads", std::to_string(Cli.Oracle.Threads));
  if (Cli.TimeBudgetSec)
    B.setProvenance("time-budget-sec", std::to_string(Cli.TimeBudgetSec));
  return B;
}

bool openFuzzResume(const FuzzCli &Cli, const char *Mode,
                    std::unique_ptr<ResumeLog> &Log, int &ExitCode) {
  if (Cli.ResumePath.empty())
    return true;
  ResumeLog::OpenResult R =
      ResumeLog::open(Cli.ResumePath, fuzzBinding(Cli, Mode));
  if (!R.Log) {
    std::fprintf(stderr, "nv-fuzz: %s\n", R.Error.c_str());
    ExitCode = 2;
    return false;
  }
  Log = std::move(R.Log);
  if (Log->tornTailDropped())
    std::fprintf(stderr,
                 "nv-fuzz: note: dropped a torn trailing journal entry "
                 "(interrupted mid-write); that instance will re-run\n");
  if (Log->replayedCount())
    std::printf("resuming from %s: %zu completed instance(s) replayed\n",
                Log->path().c_str(), Log->replayedCount());
  return true;
}

/// The canonical instance record — what the campaign journals and what a
/// fleet worker sends back over the result pipe (same shape, so fleet and
/// in-process journals are interchangeable).
UnitRecord makeInstanceRecord(const std::string &Key, const std::string &Name,
                              const InstanceResult &R) {
  UnitRecord Rec;
  Rec.Key = Key;
  Rec.add("name", Name);
  Rec.addInt("div", R.Diverged ? 1 : 0);
  Rec.addInt("skip", R.Skipped ? 1 : 0);
  Rec.addInt("legs", static_cast<long long>(R.Legs));
  Rec.addInt("attempts", R.Attempts);
  if (!R.ReproFile.empty())
    Rec.add("repro", R.ReproFile);
  return Rec;
}

void recordInstance(ResumeLog &Log, const std::string &Key,
                    const std::string &Name, const InstanceResult &R) {
  Log.recordDone(makeInstanceRecord(Key, Name, R));
}

/// Applies a journaled instance record to the tally as if the instance
/// had just run. Returns false if the record lacks the expected fields
/// (version drift) — the caller then re-runs the instance.
bool replayInstance(const UnitRecord &Rec, RunTally &T) {
  const std::string *Legs = Rec.get("legs");
  const std::string *Div = Rec.get("div");
  if (!Legs || !Div)
    return false;
  ++T.Instances;
  ++T.Replayed;
  T.LegRuns += std::strtoull(Legs->c_str(), nullptr, 10);
  if (const std::string *S = Rec.get("skip"); S && *S == "1")
    ++T.Skipped;
  if (*Div == "1") {
    ++T.Divergences;
    const std::string *Name = Rec.get("name");
    std::printf("DIVERGENCE %s (replayed from journal)\n",
                Name ? Name->c_str() : Rec.Key.c_str());
  }
  if (const std::string *Repro = Rec.get("repro"))
    T.ReproFiles.push_back(*Repro);
  return true;
}

/// Runs one instance through the oracle; on divergence optionally
/// minimizes and writes a corpus repro under the artifact directory.
/// An EngineError with a transient resource-limit outcome that escapes
/// the oracle's per-leg catches is retried up to --retry times; when the
/// retries are exhausted the instance is recorded as skipped (so a
/// persistently flaky unit cannot kill a long campaign). Returns false
/// on divergence.
bool runOne(const FuzzInstance &Inst, const FuzzCli &Cli, RunTally &T,
            InstanceResult &R) {
  DiagnosticEngine Diags;
  OracleVerdict V;
  unsigned MaxAttempts = Cli.Retry ? Cli.Retry : 1;
  for (unsigned Attempt = 1;; ++Attempt) {
    R.Attempts = Attempt;
    try {
      V = runOracle(Inst, Cli.Oracle, Diags);
      break;
    } catch (const EngineError &E) {
      if (!isTransientOutcome(E.outcome()))
        throw;
      if (Attempt < MaxAttempts) {
        ++T.Retries;
        continue;
      }
      if (MaxAttempts > 1) {
        // Retries exhausted on a transient failure: record durably as
        // skipped and let the campaign continue.
        R.Skipped = true;
        ++T.Instances;
        ++T.Skipped;
        std::printf("SKIP %s after %u attempt(s): %s\n", Inst.Name.c_str(),
                    Attempt, E.what());
        return true;
      }
      throw; // retry disabled: preserve the structural-exit behavior
    }
  }
  ++T.Instances;
  T.LegRuns += V.Runs.size();
  R.Legs = V.Runs.size();
  if (V.Ok)
    return true;

  ++T.Divergences;
  R.Diverged = true;
  std::printf("DIVERGENCE %s\n  %s\n", Inst.Name.c_str(),
              V.Mismatch.c_str());
  if (!Cli.Minimize)
    return false;

  MinimizeResult M = minimizeSpec(Inst.Spec, Cli.Oracle);
  std::printf("  minimized: n=%u e=%zu after %u oracle runs, %u moves\n",
              M.Final.NumNodes, M.Final.Edges.size(), M.OracleRuns,
              M.MovesApplied);
  std::error_code EC;
  std::filesystem::create_directories(Cli.ArtifactDir, EC);
  char SeedHex[32];
  std::snprintf(SeedHex, sizeof(SeedHex), "%016llx",
                static_cast<unsigned long long>(Inst.Spec.Seed));
  std::string Path = Cli.ArtifactDir + "/repro_" +
                     policyKindName(M.Final.Policy) + "_" + SeedHex + ".nv";
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  Out << corpusFileText(M.Instance, "minimized repro; diverged: " +
                                        M.Verdict.Mismatch.substr(0, 200));
  std::printf("  wrote %s\n", Path.c_str());
  T.ReproFiles.push_back(Path);
  R.ReproFile = Path;
  return false;
}

bool writeJson(const std::string &Path, const RunTally &T, double Ms) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return false;
  }
  // No "replayed"/"retries" fields: a resumed run's summary must be
  // byte-identical to an uninterrupted one (modulo the _ms timing field).
  Out << "{\n  \"instances\": " << T.Instances
      << ",\n  \"divergences\": " << T.Divergences
      << ",\n  \"engine_runs\": " << T.LegRuns
      << ",\n  \"skipped\": " << T.Skipped << ",\n  \"elapsed_ms\": "
      << static_cast<uint64_t>(Ms) << ",\n  \"repros\": [";
  for (size_t I = 0; I < T.ReproFiles.size(); ++I)
    Out << (I ? ", " : "") << '"' << T.ReproFiles[I] << '"';
  Out << "]\n}\n";
  return true;
}

//===----------------------------------------------------------------------===//
// Campaign worker fleet (--workers N / hidden --fleet-worker)
//===----------------------------------------------------------------------===//

/// The worker half: each job's spec is the instance seed in hex (keys stay
/// "i<I>", but the seed travels so the worker needs no --seed/--start
/// flags). Handler exceptions — an EngineError escaping the oracle's
/// per-leg catches — kill the worker on purpose: the coordinator requeues
/// the instance and, if it keeps killing workers, quarantines it with a
/// repro script instead of ending the campaign.
int fuzzFleetWorker(const FuzzCli &Cli) {
  return runFleetWorker([&](const FleetJob &J) -> UnitRecord {
    uint64_t Seed = std::strtoull(J.Spec.c_str(), nullptr, 16);
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    if (Inst.NvSource.empty()) {
      // Mirror the in-process campaign: print the generator error, count
      // it as a divergence at the coordinator, and do NOT journal it
      // (generation is deterministic, so a resumed run re-counts it).
      std::printf("GENERATOR ERROR seed=0x%016llx:\n%s",
                  static_cast<unsigned long long>(Seed), Diags.str().c_str());
      UnitRecord Rec;
      Rec.Key = J.Key;
      Rec.addInt("gen_error", 1);
      return Rec;
    }
    RunTally T; // worker-local; the coordinator tallies from the record
    InstanceResult R;
    runOne(Inst, Cli, T, R);
    return makeInstanceRecord(J.Key, Inst.Name, R);
  });
}

/// The coordinator half of a fleet campaign: jobs are generated lazily
/// (so --time-budget works — the source dries up when the clock runs
/// out), journal-replayed instances are skipped at generation time, and
/// results are tallied and journaled as they land. Worker stdout is
/// inherited, so DIVERGENCE/SKIP/minimizer lines print exactly as they
/// do in-process (interleaved across workers).
int campaignFleet(FuzzCli &Cli, ResumeLog *Log, CancelToken &Cancel,
                  RunTally &T, Stopwatch &W) {
  FleetOptions FO;
  FO.Workers = Cli.Workers;
  FO.WorkerArgv = {getExecutablePath(), "--fleet-worker"};
  if (Cli.Oracle.Threads != 1) {
    FO.WorkerArgv.push_back("--threads");
    FO.WorkerArgv.push_back(std::to_string(Cli.Oracle.Threads));
  }
  if (!Cli.Oracle.EnableSmt)
    FO.WorkerArgv.push_back("--no-smt");
  if (!Cli.Oracle.EnableFt)
    FO.WorkerArgv.push_back("--no-ft");
  if (!Cli.Oracle.EnableNaive)
    FO.WorkerArgv.push_back("--no-naive");
  if (Cli.Oracle.InjectBugForTesting)
    FO.WorkerArgv.push_back("--inject-bug-for-testing");
  if (Cli.Minimize)
    FO.WorkerArgv.push_back("--minimize");
  if (Cli.Retry != 1) {
    FO.WorkerArgv.push_back("--retry");
    FO.WorkerArgv.push_back(std::to_string(Cli.Retry));
  }
  FO.WorkerArgv.push_back("--artifact-dir");
  FO.WorkerArgv.push_back(Cli.ArtifactDir);
  FO.QuarantineDir = Cli.ArtifactDir; // repro scripts live with the corpus
  FO.Cancel = &Cancel;
  applyFleetEnvOverrides(FO);

  uint64_t I = Cli.Start;
  auto Next = [&](FleetJob &J) {
    for (;;) {
      if (Cli.TimeBudgetSec) {
        if (W.elapsedMs() >= Cli.TimeBudgetSec * 1000.0)
          return false;
      } else if (I >= Cli.Start + Cli.Count) {
        return false;
      }
      uint64_t Idx = I++;
      std::string Key = "i";
      Key += std::to_string(Idx);
      if (Log) {
        UnitRecord Rec;
        if (Log->replay(Key, Rec) && replayInstance(Rec, T))
          continue; // already done in a previous run
      }
      char Hex[32];
      std::snprintf(Hex, sizeof(Hex), "%016llx",
                    static_cast<unsigned long long>(mixSeed(Cli.Seed, Idx)));
      J = {Key, Hex};
      return true;
    }
  };

  FleetCallbacks CB;
  CB.OnResult = [&](const UnitRecord &Rec) {
    if (Rec.get("gen_error")) {
      ++T.Divergences; // counted, never journaled (see fuzzFleetWorker)
      return;
    }
    RunOutcome O;
    unsigned Attempts = 1;
    if (parseOutcome(Rec, O, Attempts) && !O.ok()) {
      // A quarantined instance: journal it as a durable skip (plus the
      // repro script path), so any resume — fleet or in-process — replays
      // it as skipped instead of re-running the crasher.
      ++T.Instances;
      ++T.Skipped;
      InstanceResult R;
      R.Skipped = true;
      R.Attempts = Attempts;
      if (const std::string *Repro = Rec.get("repro")) {
        R.ReproFile = *Repro;
        T.ReproFiles.push_back(*Repro);
      }
      std::printf("SKIP %s: %s\n", Rec.Key.c_str(), O.str().c_str());
      if (Log)
        recordInstance(*Log, Rec.Key, Rec.Key, R);
      return;
    }
    // A normal instance record: tally exactly what replayInstance would,
    // minus the replayed count (the worker already printed any
    // DIVERGENCE/SKIP lines to the shared stdout).
    ++T.Instances;
    if (const std::string *S = Rec.get("skip"); S && *S == "1")
      ++T.Skipped;
    if (const std::string *Legs = Rec.get("legs"))
      T.LegRuns += std::strtoull(Legs->c_str(), nullptr, 10);
    if (const std::string *Div = Rec.get("div"); Div && *Div == "1")
      ++T.Divergences;
    if (const std::string *Repro = Rec.get("repro"))
      T.ReproFiles.push_back(*Repro);
    if (const std::string *A = Rec.get("attempts"))
      if (unsigned N = unsigned(std::strtoul(A->c_str(), nullptr, 10)); N > 1)
        T.Retries += N - 1;
    if (Log)
      Log->recordDone(Rec);
  };

  FleetResult FR = runFleetDynamic(FO, Next, CB);
  if (!FR.Outcome.ok() && FR.Outcome.Status != RunStatus::Canceled) {
    std::fprintf(stderr, "nv-fuzz: fleet run failed: %s\n",
                 FR.Outcome.str().c_str());
    return exitCodeForOutcome(FR.Outcome);
  }
  std::printf("fleet: %s\n", FR.Stats.str().c_str());
  return 0; // fuzzMain prints the summary and derives the exit code
}

int replay(FuzzCli &Cli) {
  std::vector<std::string> Files;
  if (std::filesystem::is_directory(Cli.ReplayPath))
    Files = listCorpusFiles(Cli.ReplayPath);
  else
    Files.push_back(Cli.ReplayPath);
  if (Files.empty()) {
    std::fprintf(stderr, "no corpus files under %s\n",
                 Cli.ReplayPath.c_str());
    return 2;
  }

  std::unique_ptr<ResumeLog> Log;
  int Ec = 0;
  if (!openFuzzResume(Cli, "replay", Log, Ec))
    return Ec;

  CancelToken Cancel;
  GracefulShutdown Shutdown(Cancel);
  Cli.Oracle.Cancel = &Cancel;

  RunTally T;
  Stopwatch W;
  bool AllOk = true;
  for (const std::string &F : Files) {
    if (Cancel.isCanceled())
      break;
    if (Log) {
      // Journal key for replay mode is the corpus file path itself.
      UnitRecord Rec;
      if (Log->replay(F, Rec) && replayInstance(Rec, T)) {
        const std::string *Div = Rec.get("div");
        bool Ok = !Div || *Div != "1";
        std::printf("%-60s %s\n", F.c_str(),
                    Ok ? "ok (journal)" : "DIVERGED (journal)");
        AllOk = AllOk && Ok;
        continue;
      }
    }
    auto Inst = loadCorpusFile(F);
    if (!Inst)
      return 2;
    InstanceResult R;
    bool Ok = runOne(*Inst, Cli, T, R);
    if (Cancel.isCanceled())
      break; // legs drained via cancellation: not a completed unit
    if (Log)
      recordInstance(*Log, F, Inst->Name, R);
    std::printf("%-60s %s\n", F.c_str(), Ok ? "ok" : "DIVERGED");
    AllOk = AllOk && Ok;
  }
  std::printf("replayed %llu corpus instances, %llu divergences\n",
              static_cast<unsigned long long>(T.Instances),
              static_cast<unsigned long long>(T.Divergences));
  if (!Cli.JsonPath.empty() && !writeJson(Cli.JsonPath, T, W.elapsedMs()))
    return 2;
  if (Shutdown.triggered()) {
    std::fprintf(stderr,
                 "nv-fuzz: replay interrupted; %zu completed instance(s) "
                 "journaled\n",
                 Log ? Log->entryCount() : size_t(0));
    return 3;
  }
  return AllOk ? 0 : 1;
}

int fuzzMain(int argc, char **argv) {
  auto Cli = parseCli(argc, argv);
  if (!Cli)
    return usage();

  if (Cli->FleetWorker)
    // Before any signal plumbing: the coordinator owns this process's
    // lifecycle (SIGTERM/SIGKILL), so dispositions stay at their defaults.
    return fuzzFleetWorker(*Cli);

  if (Cli->Emit) {
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Cli->EmitSeed, Diags);
    if (Inst.NvSource.empty()) {
      std::fprintf(stderr, "generator failed:\n%s", Diags.str().c_str());
      return 2;
    }
    std::printf("%s", corpusFileText(
                          Inst, "generator-produced regression instance")
                          .c_str());
    return 0;
  }
  if (!Cli->ReplayPath.empty())
    return replay(*Cli);

  std::unique_ptr<ResumeLog> Log;
  int Ec = 0;
  if (!openFuzzResume(*Cli, "campaign", Log, Ec))
    return Ec;

  CancelToken Cancel;
  GracefulShutdown Shutdown(Cancel);
  Cli->Oracle.Cancel = &Cancel;

  RunTally T;
  Stopwatch W;
  if (Cli->Workers > 0) {
    if (int FleetEc = campaignFleet(*Cli, Log.get(), Cancel, T, W))
      return FleetEc;
  } else
  for (uint64_t I = Cli->Start;; ++I) {
    if (Cancel.isCanceled())
      break;
    if (Cli->TimeBudgetSec) {
      if (W.elapsedMs() >= Cli->TimeBudgetSec * 1000.0)
        break;
    } else if (I >= Cli->Start + Cli->Count) {
      break;
    }
    std::string Key = "i";
    Key += std::to_string(I);
    if (Log) {
      UnitRecord Rec;
      if (Log->replay(Key, Rec) && replayInstance(Rec, T))
        continue;
    }
    uint64_t Seed = mixSeed(Cli->Seed, I);
    DiagnosticEngine Diags;
    FuzzInstance Inst = instanceFromSeed(Seed, Diags);
    if (Inst.NvSource.empty()) {
      // Not journaled: generation is deterministic, so a resumed run
      // reproduces (and re-counts) the same generator error.
      std::printf("GENERATOR ERROR seed=0x%016llx:\n%s",
                  static_cast<unsigned long long>(Seed),
                  Diags.str().c_str());
      ++T.Divergences;
      continue;
    }
    InstanceResult R;
    runOne(Inst, *Cli, T, R);
    if (Cancel.isCanceled())
      break; // legs drained via cancellation: not a completed unit
    if (Log)
      recordInstance(*Log, Key, Inst.Name, R);
    if ((I + 1) % 100 == 0)
      std::printf("[%llu] %llu instances, %llu divergences, %.1fs\n",
                  static_cast<unsigned long long>(I + 1),
                  static_cast<unsigned long long>(T.Instances),
                  static_cast<unsigned long long>(T.Divergences),
                  W.elapsedMs() / 1000.0);
  }
  std::printf("%llu instances (%llu replayed, %llu skipped, %llu retries), "
              "%llu engine runs, %llu divergences, %.1fs\n",
              static_cast<unsigned long long>(T.Instances),
              static_cast<unsigned long long>(T.Replayed),
              static_cast<unsigned long long>(T.Skipped),
              static_cast<unsigned long long>(T.Retries),
              static_cast<unsigned long long>(T.LegRuns),
              static_cast<unsigned long long>(T.Divergences),
              W.elapsedMs() / 1000.0);
  if (!Cli->JsonPath.empty() && !writeJson(Cli->JsonPath, T, W.elapsedMs()))
    return 2;
  if (Shutdown.triggered()) {
    std::fprintf(stderr,
                 "nv-fuzz: campaign interrupted; %zu completed instance(s) "
                 "journaled\n",
                 Log ? Log->entryCount() : size_t(0));
    return 3;
  }
  return T.Divergences ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return fuzzMain(argc, argv);
  } catch (const EngineError &E) {
    // The oracle catches per-leg EngineErrors; one escaping here means it
    // fired outside any engine (e.g. an injected fault during instance
    // generation). Exit structurally rather than aborting.
    std::fprintf(stderr, "nv-fuzz: %s\n", E.what());
    return exitCodeForOutcome(E.outcome());
  } catch (const std::exception &E) {
    std::fprintf(stderr, "nv-fuzz: internal error: %s\n", E.what());
    return 4;
  }
}
