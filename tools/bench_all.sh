#!/usr/bin/env bash
# bench_all.sh — runs the committed benchmark set (fig13b fault-tolerance
# scaling and the fig14 simulator comparison) at the default sizes and
# writes one merged JSON array, including each process's peak RSS, for
# BENCH_*.json trajectory tracking.
#
# Usage: tools/bench_all.sh [OUT.json]   (from the repository root)
#   OUT.json defaults to BENCH.json. Extra knobs pass through the
#   environment: NV_THREADS, NV_GC_WATERMARK.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH.json}
JOBS=${JOBS:-$(nproc)}

cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" --target fig13b_fault_scaling fig14_simulation \
  >/dev/null

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# Runs "$@" (writing JSON to $TMP/$1.json) while sampling the process's
# peak RSS from /proc (the container lacks /usr/bin/time -v).
run_bench() {
  local name=$1; shift
  "$@" --json "$TMP/$name.json" &
  local pid=$!
  local peak=0
  while kill -0 "$pid" 2>/dev/null; do
    local rss
    rss=$(awk '/VmRSS/{print $2}' "/proc/$pid/status" 2>/dev/null || echo 0)
    [ "${rss:-0}" -gt "$peak" ] && peak=$rss
    sleep 0.05
  done
  wait "$pid"
  echo "$peak" > "$TMP/$name.rss"
}

echo "== fig13b: fault-tolerance scaling =="
run_bench fig13b ./build/bench/fig13b_fault_scaling
echo
echo "== fig14: simulator comparison =="
run_bench fig14 ./build/bench/fig14_simulation

# Merge the arrays and append one peak-RSS record per benchmark.
python3 - "$OUT" "$TMP" <<'EOF'
import json, sys
out, tmp = sys.argv[1], sys.argv[2]
records = []
for name in ("fig13b", "fig14"):
    records += json.load(open(f"{tmp}/{name}.json"))
    peak = int(open(f"{tmp}/{name}.rss").read().strip() or 0)
    records.append({"bench": name, "peak_rss_kb": peak})
json.dump(records, open(out, "w"), indent=1)
open(out, "a").write("\n")
EOF

echo
echo "Wrote $OUT"
