#!/usr/bin/env bash
# check.sh — full pre-merge verification:
#   1. tier-1: configure, build, and run the complete ctest suite;
#   2. a ThreadSanitizer build of the parallel determinism + thread-pool
#      tests, to catch data races the functional tests cannot see;
#   3. an ASan+UBSan build of the BDD, GC and parallel suites, to catch
#      the memory errors a moving collector can introduce (stale Refs,
#      table over-reads) that functional tests may survive by luck.
#
# Usage: tools/check.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}

echo "== tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
(cd build && ctest --output-on-failure -j"$JOBS")

echo
echo "== TSan: parallel determinism tests =="
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-tsan -j"$JOBS" --target parallel_tests threadpool_tests
./build-tsan/tests/threadpool_tests
./build-tsan/tests/parallel_tests

echo
echo "== ASan+UBSan: BDD + GC + parallel tests =="
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-asan -j"$JOBS" --target bdd_tests gc_tests parallel_tests
./build-asan/tests/bdd_tests
./build-asan/tests/gc_tests
./build-asan/tests/parallel_tests

echo
echo "All checks passed."
