#!/usr/bin/env bash
# check.sh — full pre-merge verification. Each stage lives in its own
# script under tools/ci/ so local runs and the GitHub Actions workflows
# execute exactly the same steps:
#   1. tier-1: configure, build, and run the complete ctest suite;
#   2. a ThreadSanitizer build of the parallel determinism + thread-pool
#      tests, to catch data races the functional tests cannot see;
#   3. an ASan+UBSan build of the BDD, GC and parallel suites, to catch
#      the memory errors a moving collector can introduce (stale Refs,
#      table over-reads) that functional tests may survive by luck;
#   4. differential smoke fuzz: replay the regression corpus, then a
#      fixed-seed batch of fresh instances through the cross-engine
#      oracle (interpreter vs native vs MTBDD analysis vs SMT).
#
# Usage: tools/check.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build + ctest =="
tools/ci/tier1.sh build

echo
echo "== TSan: parallel determinism tests =="
tools/ci/tsan.sh build-tsan

echo
echo "== ASan+UBSan: BDD + GC + parallel tests =="
tools/ci/asan.sh build-asan

echo
echo "== smoke fuzz: corpus replay + fresh instances =="
tools/ci/smoke_fuzz.sh build 200 1

echo
echo "All checks passed."
