//===- Fleet.h - Crash-isolated worker fleet for sharded analyses -*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator/worker execution layer: farms a sharded analysis' job
/// units (naive scenarios, FT check chunks, fuzz instances) out to a pool
/// of forked worker *subprocesses*, so a segfault, OOM kill, or runaway
/// job in any shard costs one worker — not the run. This is the substrate
/// fragment-parallel Kirigami verification is meant to run on (ROADMAP).
///
/// Protocol. Workers are re-execs of the owning CLI (a hidden verb) with
/// a job pipe on fd 3 and a result pipe on fd 4. Both directions carry
/// the journal's frame shape — u32le length, u32le FNV-1a32 checksum,
/// payload — with a leading type byte: 'J' job (key '\n' spec), 'R'
/// result (a rendered Resume UnitRecord), 'H' heartbeat (current job
/// key), 'W' hello, 'Q' shutdown. A worker's result payload is the
/// *same* UnitRecord the in-process resume path journals for that unit,
/// which is what makes fleet aggregates bit-identical to `--workers 0`:
/// the coordinator journals records as they land and the driver merges
/// them in deterministic unit order through the existing replay path.
///
/// Robustness policy:
///  - Liveness: workers heartbeat every HeartbeatMs; a worker silent for
///    LivenessTimeoutMs is SIGKILLed and treated as crashed.
///  - Crash recovery: a worker death with a job in flight requeues the
///    job (front of queue) and respawns the worker after a capped
///    exponential backoff (nextRestartDelayMs, shared with nv serve's
///    supervisor). Completing a job resets the slot's failure count.
///  - Poison quarantine: a job whose worker dies PoisonThreshold times is
///    quarantined instead of retried forever — the run completes, the
///    job's record carries RunStatus::Quarantined (exit 3 at the driver),
///    and a runnable repro script lands in QuarantineDir.
///  - Stragglers: once the queue is drained, a running job slower than
///    StragglerFactor x the median completed duration (and past
///    StragglerMinMs) is speculatively re-executed on an idle worker;
///    the first result wins, and if both land they are byte-compared
///    (a mismatch is counted — it would mean shard nondeterminism).
///
/// Fault sites (NV_FAULT_INJECT): "fleet-spawn" fires in the coordinator
/// before forking a worker (degrades to a backoff retry); "fleet-dispatch"
/// fires in the worker on job receipt and is deliberately uncaught — the
/// worker dies with exit 3, exercising the requeue/respawn path;
/// "fleet-result" fires in the coordinator on result receipt (degrades to
/// drop-result + kill + requeue). Respawned workers get NV_FAULT_INJECT
/// stripped from their environment so one armed countdown behaves like
/// one process-wide countdown does in-process, instead of re-arming in
/// every generation and crash-looping into quarantine.
///
/// Test hooks (environment, read by runFleetWorker):
///   NV_FLEET_POISON_KEY        job key that abort()s the worker on
///                              dispatch — a deterministic crasher.
///   NV_FLEET_WEDGE_KEY         job key that wedges the worker (stops
///                              heartbeats, hangs) ...
///   NV_FLEET_WEDGE_ONCE_FILE   ... but only for whichever worker
///                              creates this latch file first, so the
///                              requeued job completes after the respawn.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_FLEET_H
#define NV_SUPPORT_FLEET_H

#include "support/Governor.h"
#include "support/Resume.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

namespace nv {

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

/// One unit of work. Key is the unit's journal key ("s12", "c3", "i47");
/// Spec is an opaque payload for the worker (may be empty when the key
/// alone identifies the unit).
struct FleetJob {
  std::string Key;
  std::string Spec;
};

struct FleetOptions {
  unsigned Workers = 1;                ///< Pool size (subprocess count).
  std::vector<std::string> WorkerArgv; ///< Worker command; argv[0] = path.

  unsigned HeartbeatMs = 250;          ///< Worker beat period (exported to
                                       ///< workers as NV_FLEET_HEARTBEAT_MS).
  unsigned LivenessTimeoutMs = 10000;  ///< Silence that means "wedged".
  unsigned PoisonThreshold = 3;        ///< Worker deaths that quarantine a job.
  double StragglerFactor = 4.0;        ///< x median duration to speculate.
  unsigned StragglerMinMs = 2000;      ///< Floor before anything is a straggler.
  bool Speculate = true;               ///< Straggler re-execution on/off.
  unsigned BackoffBaseMs = 50;         ///< Respawn backoff base ...
  unsigned BackoffCapMs = 2000;        ///< ... and plateau.
  unsigned SpawnFailureCap = 100;      ///< Consecutive spawn failures with no
                                       ///< live worker before giving up.
  std::string QuarantineDir = ".";     ///< Where repro scripts land.
  CancelToken *Cancel = nullptr;       ///< Graceful-shutdown hookup.
  bool Verbose = true;                 ///< Lifecycle lines on stderr (chaos
                                       ///< CI greps "worker pid").
};

/// Applies NV_FLEET_* environment overrides (heartbeat/liveness/backoff/
/// poison-threshold/straggler knobs) on top of \p O. CLIs call this so
/// chaos scripts can tighten timings without new flags; tests configure
/// FleetOptions directly.
void applyFleetEnvOverrides(FleetOptions &O);

struct FleetStats {
  uint64_t JobsCompleted = 0;
  uint64_t JobsRequeued = 0;
  uint64_t WorkerDeaths = 0;        ///< Workers lost while the run was live.
  uint64_t Respawns = 0;
  uint64_t SpawnFailures = 0;
  uint64_t HeartbeatTimeouts = 0;   ///< Workers SIGKILLed for silence.
  uint64_t SpeculativeLaunches = 0;
  uint64_t SpeculativeWins = 0;     ///< Speculative copy finished first.
  uint64_t SpeculationMismatches = 0; ///< Duplicate results disagreed.
  uint64_t Quarantined = 0;
  std::string LastExit;             ///< describe() of the latest worker death.

  /// One-line operator summary ("12 jobs, 2 deaths, ...").
  std::string str() const;
};

struct FleetResult {
  /// Ok when every job produced a record (quarantined jobs included —
  /// their records carry RunStatus::Quarantined); Canceled on a cancel
  /// drain; InternalError when the fleet could not keep workers alive.
  RunOutcome Outcome;
  /// One record per job key, quarantined jobs included.
  std::map<std::string, UnitRecord> Results;
  std::vector<std::string> QuarantinedKeys;
  FleetStats Stats;
};

struct FleetCallbacks {
  /// Invoked exactly once per job key, as results land (coordinator
  /// thread). Drivers journal here so completions are durable the moment
  /// they exist.
  std::function<void(const UnitRecord &)> OnResult;
  /// Invoked after each worker spawn; tests use it to aim SIGKILLs.
  std::function<void(pid_t Pid, unsigned Slot)> OnSpawn;
};

/// Runs \p Jobs to completion on a fleet of Opts.Workers subprocesses.
FleetResult runFleet(const FleetOptions &Opts, const std::vector<FleetJob> &Jobs,
                     const FleetCallbacks &CB = {});

/// Pull-based variant for open-ended runs (time-budget fuzz campaigns):
/// \p Next fills the next job and returns true, or returns false when the
/// source is exhausted. Requeued jobs always take priority over new ones.
FleetResult runFleetDynamic(const FleetOptions &Opts,
                            const std::function<bool(FleetJob &)> &Next,
                            const FleetCallbacks &CB = {});

//===----------------------------------------------------------------------===//
// Worker
//===----------------------------------------------------------------------===//

struct FleetWorkerOptions {
  int InFd = 3;  ///< Job pipe (read).
  int OutFd = 4; ///< Result/heartbeat pipe (write).
};

/// The worker half: reads jobs off InFd, runs \p Handler on each, writes
/// the record back, heartbeating from a side thread throughout. Returns 0
/// on a clean shutdown (EOF or 'Q'), 2 on a protocol error. Handler
/// exceptions (EngineError included) propagate — a worker is *supposed*
/// to die loudly on them; per-unit degradations belong inside the handler
/// as recorded outcomes, exactly as in the in-process resume path.
///
/// When NV_FLEET_ONE_JOB is set (quarantine repro scripts), the handler
/// runs once on that key (spec from NV_FLEET_ONE_JOB_SPEC), the record
/// prints to stdout, and no pipes are touched.
int runFleetWorker(const std::function<UnitRecord(const FleetJob &)> &Handler,
                   const FleetWorkerOptions &Opts = {});

} // namespace nv

#endif // NV_SUPPORT_FLEET_H
