//===- Fatal.h - Internal error reporting -----------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers. nv-cpp is built without exceptions; internal
/// invariant violations print a message and abort, in the spirit of
/// llvm_unreachable / report_fatal_error.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_FATAL_H
#define NV_SUPPORT_FATAL_H

#include <string>

namespace nv {

/// Prints \p Msg to stderr and aborts. Use for broken invariants that are
/// bugs in nv-cpp itself, not for malformed user input.
[[noreturn]] void fatalError(const std::string &Msg);

/// Marks a point in the code that must never be reached.
[[noreturn]] void unreachableImpl(const char *Msg, const char *File, int Line);

} // namespace nv

#define nv_unreachable(MSG) ::nv::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // NV_SUPPORT_FATAL_H
