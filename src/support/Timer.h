//===- Timer.h - Wall-clock timing for benchmarks ---------------*- C++ -*-===//
//
// Part of nv-cpp. Simple wall-clock stopwatch used by the benchmark drivers
// to report per-phase times (encode vs solve, compile vs simulate).
//
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_TIMER_H
#define NV_SUPPORT_TIMER_H

#include <chrono>

namespace nv {

/// A restartable wall-clock stopwatch with millisecond reporting.
class Stopwatch {
public:
  Stopwatch() { restart(); }

  void restart() { Start = Clock::now(); }

  /// Milliseconds elapsed since construction or the last restart().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

  /// Seconds elapsed since construction or the last restart().
  double elapsedSec() const { return elapsedMs() / 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace nv

#endif // NV_SUPPORT_TIMER_H
