//===- Subprocess.cpp - Child-process spawn/wait/backoff helpers -------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <limits.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace nv;

std::string ChildExit::describe() const {
  return (Signaled ? "signal:" : "code:") +
         std::to_string(Signaled ? Signal : Code);
}

ChildExit nv::classifyExitStatus(int WaitStatus) {
  ChildExit E;
  if (WIFSIGNALED(WaitStatus)) {
    E.Signaled = true;
    E.Signal = WTERMSIG(WaitStatus);
  } else if (WIFEXITED(WaitStatus)) {
    E.Code = WEXITSTATUS(WaitStatus);
  }
  return E;
}

unsigned nv::nextRestartDelayMs(unsigned ConsecutiveFailures, unsigned BaseMs,
                                unsigned CapMs) {
  if (ConsecutiveFailures == 0)
    return 0;
  if (BaseMs == 0)
    BaseMs = 1;
  uint64_t Delay = BaseMs;
  // Doubling with an early cap check instead of a shift: 2^(N-1) for a
  // large N must saturate at Cap, not wrap.
  for (unsigned I = 1; I < ConsecutiveFailures && Delay < CapMs; ++I)
    Delay *= 2;
  return static_cast<unsigned>(Delay < CapMs ? Delay : CapMs);
}

std::string nv::getExecutablePath() {
  char Buf[PATH_MAX];
  ssize_t N = readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "";
  Buf[N] = '\0';
  return Buf;
}

pid_t nv::spawnProcess(const std::vector<std::string> &Argv,
                       const std::vector<std::pair<int, int>> &FdMap,
                       const std::vector<std::pair<std::string, std::string>> &SetEnv,
                       const std::vector<std::string> &UnsetEnv,
                       std::string &ErrorOut) {
  if (Argv.empty()) {
    ErrorOut = "spawnProcess: empty argv";
    return -1;
  }
  if (FdMap.size() > 8) {
    ErrorOut = "spawnProcess: fd map too large";
    return -1;
  }
  // execv wants mutable char*; build the table before forking so the
  // child only performs async-signal-safe operations.
  std::vector<char *> Cargv;
  Cargv.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Cargv.push_back(const_cast<char *>(A.c_str()));
  Cargv.push_back(nullptr);

  pid_t Pid = fork();
  if (Pid < 0) {
    ErrorOut = std::string("fork failed: ") + std::strerror(errno);
    return -1;
  }
  if (Pid == 0) {
    // Child. Undo any signal customization the parent carries: handlers
    // reset on exec anyway, but SIG_IGN dispositions and the blocked mask
    // survive it (GracefulShutdown blocks SIGINT/SIGTERM on the main
    // thread, and a worker that inherits that mask cannot be drained).
    signal(SIGINT, SIG_DFL);
    signal(SIGTERM, SIG_DFL);
    signal(SIGPIPE, SIG_DFL);
    sigset_t Empty;
    sigemptyset(&Empty);
    sigprocmask(SIG_SETMASK, &Empty, nullptr);
    for (const auto &[K, V] : SetEnv)
      setenv(K.c_str(), V.c_str(), 1);
    for (const std::string &K : UnsetEnv)
      unsetenv(K.c_str());
    // Two-phase remap: park every source above the target range first so
    // one mapping's target cannot clobber another's source (e.g. a pipe
    // end that happens to already sit on fd 3). F_DUPFD clears CLOEXEC,
    // which is also what makes the ParentFd == ChildFd case work.
    int Parked[8];
    size_t N = FdMap.size();
    for (size_t I = 0; I < N; ++I) {
      Parked[I] = fcntl(FdMap[I].second, F_DUPFD, 100);
      if (Parked[I] < 0)
        _exit(127);
    }
    for (size_t I = 0; I < N; ++I) {
      if (dup2(Parked[I], FdMap[I].first) < 0)
        _exit(127);
      close(Parked[I]);
    }
    execv(Cargv[0], Cargv.data());
    _exit(127);
  }
  return Pid;
}

int nv::waitForChild(pid_t Pid, bool Block, ChildExit &Out) {
  for (;;) {
    int Status = 0;
    pid_t W = waitpid(Pid, &Status, Block ? 0 : WNOHANG);
    if (W == Pid) {
      Out = classifyExitStatus(Status);
      return 1;
    }
    if (W == 0)
      return 0;
    if (errno == EINTR)
      continue;
    return -1;
  }
}
