//===- Resume.h - Checkpoint/resume, retry, graceful shutdown ---*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-resilience layer on top of the Journal format: long sharded
/// runs (naive/Batfish/FT scenario sweeps, nv-fuzz campaigns) checkpoint
/// one journal entry per completed unit of work, so a run killed by a
/// crash, an OOM, a deadline, or Ctrl-C resumes from where it stopped
/// instead of restarting from zero.
///
/// Four pieces:
///
///  - RunBinding: the key=value description of a run's inputs (program
///    hash, topology/policy spec, engine config, thread count). It is the
///    journal's header frame; ResumeLog::open refuses to resume a journal
///    whose binding differs — a stale or mismatched journal is rejected,
///    never silently reused.
///
///  - ResumeLog: the engine-facing journal handle. Engines ask isDone /
///    replay before running a unit, and recordDone (thread-safe) after
///    completing one. Replayed results make the resumed run's aggregate
///    output bit-identical to an uninterrupted run at any thread count:
///    recorded payloads carry everything the aggregate needs, and the
///    deterministic unit order of PR 1's sharding does the rest.
///
///  - RetryPolicy / runUnitWithRetry: a unit that fails with a transient
///    resource-limit outcome (deadline, step/node budget, injected fault
///    — not cancellation) is retried with an escalated budget before
///    being durably recorded as skipped.
///
///  - GracefulShutdown: SIGINT/SIGTERM → CancelToken. In-flight jobs
///    drain at their governor safe points, completed units stay durable
///    in the journal, and the driver exits with the documented
///    resource-exhausted code (3). A second signal exits immediately.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_RESUME_H
#define NV_SUPPORT_RESUME_H

#include "support/Governor.h"
#include "support/Journal.h"

#include <atomic>
#include <csignal>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace nv {

//===----------------------------------------------------------------------===//
// RunBinding
//===----------------------------------------------------------------------===//

/// The inputs a journal is bound to, as ordered key=value lines. Two runs
/// with equal bindings perform the same units in the same order, so their
/// journals are interchangeable; anything that changes the unit list or
/// unit semantics (program, failure spec, budgets, retry policy) belongs
/// here. Thread count is recorded for provenance but deliberately does
/// NOT bind: PR 1's determinism bar makes results thread-count-invariant,
/// and resuming a 16-thread run on 1 thread must work.
class RunBinding {
public:
  void set(const std::string &Key, const std::string &Value);
  void setInt(const std::string &Key, long long Value);

  /// The header-frame text: "key=value\n" lines in insertion order,
  /// "provenance-only" keys (thread count, hostname-ish info) prefixed
  /// with '#' so equality ignores them.
  void setProvenance(const std::string &Key, const std::string &Value);

  std::string render() const;

  /// Compares the binding lines of two rendered headers, ignoring
  /// provenance ('#') lines. On mismatch fills \p Why with the first
  /// differing line pair.
  static bool matches(const std::string &HeaderA, const std::string &HeaderB,
                      std::string &Why);

private:
  std::vector<std::pair<std::string, std::string>> Lines;
};

//===----------------------------------------------------------------------===//
// Unit records
//===----------------------------------------------------------------------===//

/// Journal entry payloads are line-based records: the first line is the
/// unit key, each following line "k=v". Values must be single-line;
/// multi-line data (route strings never are) would need escaping this
/// format does not provide.
struct UnitRecord {
  std::string Key;
  std::vector<std::pair<std::string, std::string>> Fields;

  void add(const std::string &K, const std::string &V);
  void addInt(const std::string &K, long long V);
  /// First value for \p K, or "" (repeated keys are allowed; use all() for
  /// list-shaped fields like per-violation lines).
  const std::string *get(const std::string &K) const;
  std::vector<std::string> all(const std::string &K) const;

  std::string render() const;
  static bool parse(const std::string &Payload, UnitRecord &Out);
};

/// Serializes a RunOutcome (+ attempt count) into \p R under the keys
/// "status"/"site"/"detail"/"attempts".
void addOutcome(UnitRecord &R, const RunOutcome &O, unsigned Attempts);
/// Restores an outcome recorded by addOutcome; Site maps back to the
/// static site-name string so replayed outcomes compare identical to
/// live ones. Returns false on an unknown status name.
bool parseOutcome(const UnitRecord &R, RunOutcome &O, unsigned &Attempts);

//===----------------------------------------------------------------------===//
// ResumeLog
//===----------------------------------------------------------------------===//

/// A journal opened for a run. open() decides between three cases:
///
///  - no file (or torn header): fresh journal, zero replayed units;
///  - valid journal, binding matches: completed units load for replay and
///    new completions append (any torn tail is truncated first);
///  - corrupt interior or binding mismatch: open fails with Hard=true —
///    drivers report the message and exit 2 rather than risk resuming
///    against the wrong inputs.
class ResumeLog {
public:
  struct OpenResult {
    std::unique_ptr<ResumeLog> Log;
    std::string Error; ///< Set when Log is null.
    bool Hard = false; ///< Corruption/mismatch: exit 2, do not retry.
  };
  static OpenResult open(const std::string &Path, const RunBinding &Binding);

  /// True when \p Key completed in a previous run; fills \p Out.
  bool replay(const std::string &Key, UnitRecord &Out) const;
  bool isDone(const std::string &Key) const;

  /// Durably records a completed unit. Thread-safe; one frame + fdatasync
  /// per call. Journal I/O failure disables further writes (stderr warning
  /// once) but never fails the run — the journal is a recovery aid, not a
  /// correctness dependency.
  void recordDone(const UnitRecord &R);

  /// Units loaded from the journal at open.
  size_t replayedCount() const { return Replayed.size(); }
  /// Units loaded + units recorded by this process (each key counted once).
  size_t entryCount() const;
  bool tornTailDropped() const { return TornTail; }
  const std::string &path() const { return Path; }

private:
  ResumeLog() = default;

  std::string Path;
  bool TornTail = false;
  std::map<std::string, UnitRecord> Replayed;
  mutable std::mutex M;
  size_t NewlyRecorded = 0; ///< Guarded by M.
  std::unique_ptr<JournalWriter> Writer; ///< Guarded by M.
  bool WarnedBroken = false;             ///< Guarded by M.
};

//===----------------------------------------------------------------------===//
// RetryPolicy
//===----------------------------------------------------------------------===//

/// Per-unit retry for transient failures. A unit outcome is *transient*
/// when it is a resource limit other than cancellation (deadline, step/
/// node/heap budget, injected fault): the same unit may well succeed with
/// a bigger budget or without the injected fault. Cancellation is the
/// whole run stopping — never retried, never durably recorded, so the
/// unit re-runs on resume. EvalError/InternalError are deterministic and
/// retrying them would just repeat the failure.
struct RetryPolicy {
  /// Total attempts per unit (1 = retry disabled, the default — existing
  /// single-shot semantics are unchanged unless a driver opts in).
  unsigned MaxAttempts = 1;
  /// Budget escalation per retry: attempt k runs with every finite limit
  /// of the unit budget multiplied by BudgetScale^(k-1).
  double BudgetScale = 2.0;

  bool enabled() const { return MaxAttempts > 1; }
};

/// True when \p O is worth retrying under the policy above.
bool isTransientOutcome(const RunOutcome &O);

/// \p Budget with every finite limit scaled by \p Scale^(Attempt-1); the
/// CancelToken pointer is preserved (escalation never un-cancels a run).
RunBudget escalateBudget(const RunBudget &Budget, double Scale,
                         unsigned Attempt);

/// Runs \p Unit (called with the attempt's budget; must return the unit's
/// RunOutcome and be re-runnable from scratch) up to Policy.MaxAttempts
/// times, escalating the budget between attempts, until the outcome is ok
/// or non-transient. Returns the final outcome and fills \p AttemptsOut.
RunOutcome runUnitWithRetry(const RunBudget &Budget, const RetryPolicy &Policy,
                            unsigned &AttemptsOut,
                            const std::function<RunOutcome(const RunBudget &)> &Unit);

//===----------------------------------------------------------------------===//
// GracefulShutdown
//===----------------------------------------------------------------------===//

/// Signal-driven cancellation for the CLI drivers. Construction blocks
/// SIGINT/SIGTERM in the calling thread (threads spawned later inherit
/// the mask) and starts a watcher thread that waits for them; the first
/// signal trips the CancelToken — in-flight jobs drain at their next
/// governor safe point and the driver exits through the normal
/// Canceled-outcome path (exit 3). A second signal hard-exits(3)
/// immediately for runs wedged outside any safe point.
///
/// requestCancel() runs interrupt hooks under a mutex and is not
/// async-signal-safe, which is exactly why this is a sigwait-style
/// watcher thread and not a signal handler.
class GracefulShutdown {
public:
  explicit GracefulShutdown(CancelToken &Token);
  ~GracefulShutdown();
  GracefulShutdown(const GracefulShutdown &) = delete;
  GracefulShutdown &operator=(const GracefulShutdown &) = delete;

  /// The delivered signal number, or 0.
  int signalNumber() const { return Sig.load(std::memory_order_relaxed); }
  bool triggered() const { return signalNumber() != 0; }

private:
  CancelToken &Token;
  std::atomic<int> Sig{0};
  std::atomic<bool> Stop{false};
  sigset_t WaitSet{};
  sigset_t OldMask{};
  std::thread Watcher;
};

} // namespace nv

#endif // NV_SUPPORT_RESUME_H
