//===- Journal.cpp - Append-only checksummed work journal -----------------===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Journal.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace nv {

static const char JournalMagic[8] = {'N', 'V', 'J', 'R', 'N', 'L', '1', '\n'};

uint32_t fnv1a32(const void *Data, size_t Size) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint32_t H = 2166136261u;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 16777619u;
  }
  return H;
}

std::string fnv1a64Hex(const std::string &Text) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)H);
  return Buf;
}

static void putU32le(std::string &Out, uint32_t V) {
  Out.push_back(char(V & 0xff));
  Out.push_back(char((V >> 8) & 0xff));
  Out.push_back(char((V >> 16) & 0xff));
  Out.push_back(char((V >> 24) & 0xff));
}

static uint32_t getU32le(const unsigned char *P) {
  return uint32_t(P[0]) | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16) |
         (uint32_t(P[3]) << 24);
}

/// Frames are length-prefixed; cap a single payload well below anything a
/// unit record produces so a corrupt length field cannot drive a huge
/// allocation before the checksum check rejects the frame.
static constexpr uint32_t MaxFramePayload = 64u << 20;

//===----------------------------------------------------------------------===//
// readJournal
//===----------------------------------------------------------------------===//

JournalRead readJournal(const std::string &Path) {
  JournalRead R;
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    if (errno == ENOENT) {
      R.St = JournalRead::State::NoFile;
    } else {
      R.St = JournalRead::State::Corrupt;
      R.Error = Path + ": open failed: " + std::strerror(errno);
    }
    return R;
  }

  std::string Data;
  char Buf[1 << 16];
  for (;;) {
    ssize_t N = ::read(Fd, Buf, sizeof(Buf));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      R.St = JournalRead::State::Corrupt;
      R.Error = Path + ": read failed: " + std::strerror(errno);
      return R;
    }
    if (N == 0)
      break;
    Data.append(Buf, size_t(N));
  }
  ::close(Fd);

  if (Data.size() < sizeof(JournalMagic) ||
      std::memcmp(Data.data(), JournalMagic, sizeof(JournalMagic)) != 0) {
    R.St = JournalRead::State::Corrupt;
    R.Error = Path + ": not an nv journal (bad magic)";
    return R;
  }

  const auto *Bytes = reinterpret_cast<const unsigned char *>(Data.data());
  size_t Off = sizeof(JournalMagic);
  size_t FrameIdx = 0;
  bool SawHeader = false;
  while (Off < Data.size()) {
    // A frame that does not fit is the torn tail only if it reaches EOF —
    // the remaining bytes are the partial frame. (The interior cannot be
    // short: Off only advances past fully verified frames.)
    if (Data.size() - Off < 8) {
      R.TornTail = true;
      break;
    }
    uint32_t Len = getU32le(Bytes + Off);
    uint32_t Sum = getU32le(Bytes + Off + 4);
    if (Len > MaxFramePayload) {
      R.St = JournalRead::State::Corrupt;
      R.Error = Path + ": frame " + std::to_string(FrameIdx) +
                " has implausible length " + std::to_string(Len) +
                " (corrupt length field)";
      return R;
    }
    if (Data.size() - Off - 8 < Len) {
      R.TornTail = true;
      break;
    }
    uint32_t Got = fnv1a32(Bytes + Off + 8, Len);
    if (Got != Sum) {
      // A complete frame with a bad checksum is interior corruption — torn
      // writes only ever shorten the file.
      R.St = JournalRead::State::Corrupt;
      R.Error = Path + ": checksum mismatch in frame " +
                std::to_string(FrameIdx) + " at byte offset " +
                std::to_string(Off) + " (journal is corrupt, not resumable)";
      return R;
    }
    std::string Payload(Data.data() + Off + 8, Len);
    if (!SawHeader) {
      R.Header = std::move(Payload);
      SawHeader = true;
    } else {
      R.Entries.push_back(std::move(Payload));
    }
    Off += 8 + size_t(Len);
    ++FrameIdx;
    R.ValidBytes = Off;
  }

  if (!SawHeader) {
    // Magic but no complete header frame: treat as a torn fresh file — the
    // caller recreates it from scratch.
    R.St = JournalRead::State::NoFile;
    R.TornTail = false;
    R.ValidBytes = 0;
    return R;
  }
  R.St = JournalRead::State::Ok;
  return R;
}

//===----------------------------------------------------------------------===//
// JournalWriter
//===----------------------------------------------------------------------===//

JournalWriter::~JournalWriter() {
  if (Fd >= 0)
    ::close(Fd);
}

static bool writeAll(int Fd, const char *P, size_t N, std::string &Err,
                     const std::string &Path) {
  while (N > 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = Path + ": write failed: " + std::strerror(errno);
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

/// Takes the journal's single-writer lock, non-blocking. Journals are one
/// coordinator's ledger: two writers — say, two `nv --resume` coordinators
/// pointed at the same path — would interleave frames into a file neither
/// can replay, so the second opener must fail fast instead. The lock lives
/// as long as the writer's fd (flock is per open-file description, so the
/// forked-then-exec'd fleet workers, which never inherit the fd thanks to
/// O_CLOEXEC, cannot hold it by accident).
static bool lockJournalFd(int Fd, const std::string &Path, std::string &Err) {
  while (::flock(Fd, LOCK_EX | LOCK_NB) != 0) {
    if (errno == EINTR)
      continue;
    if (errno == EWOULDBLOCK)
      Err = Path + ": journal is locked by another process (two coordinators "
                   "must not share one journal; pick a distinct --resume path)";
    else
      Err = Path + ": flock failed: " + std::strerror(errno);
    return false;
  }
  return true;
}

bool JournalWriter::append(const std::string &Payload) {
  if (!Err.empty())
    return false;
  std::string Frame;
  Frame.reserve(8 + Payload.size());
  putU32le(Frame, uint32_t(Payload.size()));
  putU32le(Frame, fnv1a32(Payload.data(), Payload.size()));
  Frame += Payload;
  if (!writeAll(Fd, Frame.data(), Frame.size(), Err, Path))
    return false;
  if (::fdatasync(Fd) != 0) {
    Err = Path + ": fdatasync failed: " + std::strerror(errno);
    return false;
  }
  return true;
}

std::unique_ptr<JournalWriter> createJournal(const std::string &Path,
                                             const std::string &HeaderText,
                                             std::string &Error) {
  // Open without O_TRUNC: truncating before holding the lock would let a
  // second coordinator wipe the first one's live journal just by racing
  // the open. Lock first, truncate once the file is provably ours.
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    Error = Path + ": open failed: " + std::strerror(errno);
    return nullptr;
  }
  if (!lockJournalFd(Fd, Path, Error)) {
    ::close(Fd);
    return nullptr;
  }
  if (::ftruncate(Fd, 0) != 0) {
    Error = Path + ": ftruncate failed: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  std::unique_ptr<JournalWriter> W(new JournalWriter(Fd, Path));
  if (!writeAll(Fd, JournalMagic, sizeof(JournalMagic), W->Err, Path)) {
    Error = W->Err;
    return nullptr;
  }
  if (!W->append(HeaderText)) {
    Error = W->lastError();
    return nullptr;
  }
  return W;
}

std::unique_ptr<JournalWriter> appendJournal(const std::string &Path,
                                             uint64_t ValidBytes,
                                             std::string &Error) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CLOEXEC);
  if (Fd < 0) {
    Error = Path + ": open failed: " + std::strerror(errno);
    return nullptr;
  }
  if (!lockJournalFd(Fd, Path, Error)) {
    ::close(Fd);
    return nullptr;
  }
  // Drop any torn tail before O_APPEND writes land after it. The append
  // flag goes on via fcntl rather than a close-and-reopen: reopening
  // would drop the flock between truncate and first append.
  if (::ftruncate(Fd, off_t(ValidBytes)) != 0) {
    Error = Path + ": ftruncate failed: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  if (::fdatasync(Fd) != 0) {
    Error = Path + ": fdatasync failed: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  int Flags = ::fcntl(Fd, F_GETFL);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_APPEND) != 0) {
    Error = Path + ": fcntl(O_APPEND) failed: " + std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(Fd, Path));
}

} // namespace nv
