//===- Resume.cpp - Checkpoint/resume, retry, graceful shutdown -----------===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "support/Resume.h"

#include <cstdio>
#include <ctime>

namespace nv {

//===----------------------------------------------------------------------===//
// RunBinding
//===----------------------------------------------------------------------===//

void RunBinding::set(const std::string &Key, const std::string &Value) {
  Lines.emplace_back(Key, Value);
}

void RunBinding::setInt(const std::string &Key, long long Value) {
  set(Key, std::to_string(Value));
}

void RunBinding::setProvenance(const std::string &Key,
                               const std::string &Value) {
  Lines.emplace_back("#" + Key, Value);
}

std::string RunBinding::render() const {
  std::string Out;
  for (const auto &[K, V] : Lines) {
    Out += K;
    Out += '=';
    Out += V;
    Out += '\n';
  }
  return Out;
}

static std::vector<std::string> bindingLines(const std::string &Header) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos < Header.size()) {
    size_t Nl = Header.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Header.size();
    std::string Line = Header.substr(Pos, Nl - Pos);
    if (!Line.empty() && Line[0] != '#')
      Out.push_back(std::move(Line));
    Pos = Nl + 1;
  }
  return Out;
}

bool RunBinding::matches(const std::string &HeaderA, const std::string &HeaderB,
                         std::string &Why) {
  std::vector<std::string> A = bindingLines(HeaderA);
  std::vector<std::string> B = bindingLines(HeaderB);
  size_t N = std::max(A.size(), B.size());
  for (size_t I = 0; I < N; ++I) {
    const std::string *LA = I < A.size() ? &A[I] : nullptr;
    const std::string *LB = I < B.size() ? &B[I] : nullptr;
    if (!LA || !LB || *LA != *LB) {
      Why = "journal binding '" + (LA ? *LA : std::string("<missing>")) +
            "' vs current run '" + (LB ? *LB : std::string("<missing>")) + "'";
      return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// UnitRecord
//===----------------------------------------------------------------------===//

void UnitRecord::add(const std::string &K, const std::string &V) {
  Fields.emplace_back(K, V);
}

void UnitRecord::addInt(const std::string &K, long long V) {
  add(K, std::to_string(V));
}

const std::string *UnitRecord::get(const std::string &K) const {
  for (const auto &[FK, FV] : Fields)
    if (FK == K)
      return &FV;
  return nullptr;
}

std::vector<std::string> UnitRecord::all(const std::string &K) const {
  std::vector<std::string> Out;
  for (const auto &[FK, FV] : Fields)
    if (FK == K)
      Out.push_back(FV);
  return Out;
}

std::string UnitRecord::render() const {
  std::string Out = Key;
  Out += '\n';
  for (const auto &[K, V] : Fields) {
    Out += K;
    Out += '=';
    Out += V;
    Out += '\n';
  }
  return Out;
}

bool UnitRecord::parse(const std::string &Payload, UnitRecord &Out) {
  Out.Key.clear();
  Out.Fields.clear();
  size_t Pos = 0;
  bool First = true;
  while (Pos < Payload.size()) {
    size_t Nl = Payload.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Payload.size();
    std::string Line = Payload.substr(Pos, Nl - Pos);
    Pos = Nl + 1;
    if (First) {
      if (Line.empty())
        return false;
      Out.Key = std::move(Line);
      First = false;
      continue;
    }
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos)
      return false;
    Out.Fields.emplace_back(Line.substr(0, Eq), Line.substr(Eq + 1));
  }
  return !First;
}

void addOutcome(UnitRecord &R, const RunOutcome &O, unsigned Attempts) {
  R.add("status", runStatusName(O.Status));
  if (O.Site && O.Site[0])
    R.add("site", O.Site);
  if (!O.Detail.empty())
    R.add("detail", O.Detail);
  R.addInt("attempts", Attempts);
}

bool parseOutcome(const UnitRecord &R, RunOutcome &O, unsigned &Attempts) {
  O = RunOutcome();
  Attempts = 1;
  const std::string *Status = R.get("status");
  if (!Status || !runStatusFromName(*Status, O.Status))
    return false;
  if (const std::string *Site = R.get("site")) {
    GovSite S;
    // Map the recorded name back to the static string so replayed
    // outcomes are pointer-stable like live ones.
    if (govSiteFromName(*Site, S))
      O.Site = govSiteName(S);
  }
  if (const std::string *Detail = R.get("detail"))
    O.Detail = *Detail;
  if (const std::string *A = R.get("attempts"))
    Attempts = unsigned(std::strtoul(A->c_str(), nullptr, 10));
  if (Attempts == 0)
    Attempts = 1;
  return true;
}

//===----------------------------------------------------------------------===//
// ResumeLog
//===----------------------------------------------------------------------===//

ResumeLog::OpenResult ResumeLog::open(const std::string &Path,
                                      const RunBinding &Binding) {
  OpenResult Res;
  std::string Header = Binding.render();
  JournalRead R = readJournal(Path);

  if (R.St == JournalRead::State::Corrupt) {
    Res.Error = R.Error;
    Res.Hard = true;
    return Res;
  }

  std::unique_ptr<ResumeLog> Log(new ResumeLog());
  Log->Path = Path;
  std::string Error;

  if (R.St == JournalRead::State::NoFile) {
    Log->Writer = createJournal(Path, Header, Error);
    if (!Log->Writer) {
      Res.Error = Error;
      return Res;
    }
    Res.Log = std::move(Log);
    return Res;
  }

  std::string Why;
  if (!RunBinding::matches(R.Header, Header, Why)) {
    Res.Error = Path + ": journal does not match this run's inputs (" + Why +
                "); delete it or pass a different --resume path";
    Res.Hard = true;
    return Res;
  }

  for (const std::string &Payload : R.Entries) {
    UnitRecord Rec;
    if (!UnitRecord::parse(Payload, Rec)) {
      Res.Error = Path + ": journal entry " +
                  std::to_string(Log->Replayed.size()) +
                  " is not a unit record (journal is corrupt, not resumable)";
      Res.Hard = true;
      return Res;
    }
    Log->Replayed[Rec.Key] = std::move(Rec);
  }

  Log->TornTail = R.TornTail;
  Log->Writer = appendJournal(Path, R.ValidBytes, Error);
  if (!Log->Writer) {
    Res.Error = Error;
    return Res;
  }
  Res.Log = std::move(Log);
  return Res;
}

bool ResumeLog::replay(const std::string &Key, UnitRecord &Out) const {
  auto It = Replayed.find(Key);
  if (It == Replayed.end())
    return false;
  Out = It->second;
  return true;
}

bool ResumeLog::isDone(const std::string &Key) const {
  return Replayed.count(Key) != 0;
}

void ResumeLog::recordDone(const UnitRecord &R) {
  std::string Payload = R.render();
  std::lock_guard<std::mutex> Lock(M);
  if (!Writer)
    return;
  if (!Writer->append(Payload)) {
    if (!WarnedBroken) {
      std::fprintf(stderr,
                   "nv: warning: journal write failed, checkpointing "
                   "disabled for the rest of this run: %s\n",
                   Writer->lastError().c_str());
      WarnedBroken = true;
    }
    Writer.reset();
    return;
  }
  ++NewlyRecorded;
}

size_t ResumeLog::entryCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Replayed.size() + NewlyRecorded;
}

//===----------------------------------------------------------------------===//
// RetryPolicy
//===----------------------------------------------------------------------===//

bool isTransientOutcome(const RunOutcome &O) {
  // Canceled means the whole run is stopping; Quarantined means the fleet
  // already exhausted its retry policy on the job — neither should be
  // retried by the per-unit policy.
  return O.resourceLimit() && O.Status != RunStatus::Canceled &&
         O.Status != RunStatus::Quarantined;
}

RunBudget escalateBudget(const RunBudget &Budget, double Scale,
                         unsigned Attempt) {
  RunBudget B = Budget;
  if (Attempt <= 1 || Scale <= 1.0)
    return B;
  double F = 1.0;
  for (unsigned I = 1; I < Attempt; ++I)
    F *= Scale;
  if (B.DeadlineMs > 0)
    B.DeadlineMs *= F;
  if (B.MaxSteps > 0)
    B.MaxSteps = uint64_t(double(B.MaxSteps) * F);
  if (B.MaxLiveNodes > 0)
    B.MaxLiveNodes = size_t(double(B.MaxLiveNodes) * F);
  if (B.MaxHeapBytes > 0)
    B.MaxHeapBytes = size_t(double(B.MaxHeapBytes) * F);
  return B;
}

RunOutcome
runUnitWithRetry(const RunBudget &Budget, const RetryPolicy &Policy,
                 unsigned &AttemptsOut,
                 const std::function<RunOutcome(const RunBudget &)> &Unit) {
  unsigned MaxAttempts = Policy.MaxAttempts ? Policy.MaxAttempts : 1;
  RunOutcome O;
  for (unsigned Attempt = 1;; ++Attempt) {
    O = Unit(escalateBudget(Budget, Policy.BudgetScale, Attempt));
    AttemptsOut = Attempt;
    if (O.ok() || !isTransientOutcome(O) || Attempt >= MaxAttempts)
      return O;
  }
}

//===----------------------------------------------------------------------===//
// GracefulShutdown
//===----------------------------------------------------------------------===//

GracefulShutdown::GracefulShutdown(CancelToken &Token) : Token(Token) {
  sigemptyset(&WaitSet);
  sigaddset(&WaitSet, SIGINT);
  sigaddset(&WaitSet, SIGTERM);
  // Block in this thread; threads created from here on (pool workers, the
  // watcher) inherit the mask, so delivery funnels to sigtimedwait below.
  pthread_sigmask(SIG_BLOCK, &WaitSet, &OldMask);
  Watcher = std::thread([this] {
    for (;;) {
      struct timespec Ts;
      Ts.tv_sec = 0;
      Ts.tv_nsec = 100 * 1000 * 1000; // 100ms stop-poll granularity
      int S = sigtimedwait(&WaitSet, nullptr, &Ts);
      if (S > 0) {
        int Expected = 0;
        if (Sig.compare_exchange_strong(Expected, S)) {
          std::fprintf(stderr,
                       "nv: received %s, draining in-flight jobs at safe "
                       "points (signal again to exit immediately)\n",
                       S == SIGINT ? "SIGINT" : "SIGTERM");
          this->Token.requestCancel();
        } else {
          // Second signal: the user insists. The journal is durable after
          // every recordDone, so nothing completed is lost.
          std::fprintf(stderr, "nv: second signal, exiting immediately\n");
          std::_Exit(3);
        }
      }
      if (Stop.load(std::memory_order_relaxed))
        return;
    }
  });
}

GracefulShutdown::~GracefulShutdown() {
  Stop.store(true, std::memory_order_relaxed);
  if (Watcher.joinable())
    Watcher.join();
  pthread_sigmask(SIG_SETMASK, &OldMask, nullptr);
}

} // namespace nv
