//===- Journal.h - Append-only checksummed work journal ---------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk format underneath checkpoint/resume (see Resume.h): an
/// append-only journal of self-delimiting, individually checksummed
/// frames, durable after every append.
///
/// Layout:
///
///   "NVJRNL1\n"                                    8-byte magic
///   frame*                                         header frame first
///
/// where each frame is
///
///   u32le payload length | u32le FNV-1a32 checksum | payload bytes
///
/// The first frame is the *header*: a text blob binding the journal to
/// the run's inputs (program hash, engine config, thread count — see
/// RunBinding). Every subsequent frame is one completed unit of work.
///
/// Read semantics distinguish the two ways a journal can be damaged:
///
///  - A *torn tail* — the file ends mid-frame because the process died
///    inside an append — is expected crash debris. The reader drops the
///    partial frame, reports the prefix length that survived, and the
///    writer truncates to that length before appending again. The unit
///    whose frame was torn simply re-runs.
///
///  - A *corrupt interior* — a checksum mismatch on a complete frame, a
///    bad magic, or a frame extending past other valid data — means the
///    file is not the journal we wrote (bit rot, concurrent writers,
///    hand editing). That is never repaired silently: the reader returns
///    Corrupt and callers surface a hard user error (exit 2).
///
/// Durability: each append is a single write(2) of the whole frame to an
/// O_APPEND descriptor followed by fdatasync(2), so a frame is either
/// fully durable or (at worst) a torn tail.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_JOURNAL_H
#define NV_SUPPORT_JOURNAL_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace nv {

/// FNV-1a 32-bit over \p Size bytes — the per-frame checksum.
uint32_t fnv1a32(const void *Data, size_t Size);

/// FNV-1a 64-bit rendered as 16 hex digits — used for input binding
/// hashes (program text, corpus files).
std::string fnv1a64Hex(const std::string &Text);

//===----------------------------------------------------------------------===//
// JournalReader
//===----------------------------------------------------------------------===//

/// The result of scanning a journal file.
struct JournalRead {
  enum class State : uint8_t {
    Ok,      ///< Header + zero or more entries decoded.
    NoFile,  ///< The file does not exist (fresh run).
    Corrupt, ///< Interior damage: bad magic, checksum mismatch, no header.
  };

  State St = State::NoFile;
  std::string Error;    ///< Set when Corrupt: what was wrong, and where.
  std::string Header;   ///< The header frame's payload (binding text).
  std::vector<std::string> Entries; ///< Completed-unit payloads, in order.
  bool TornTail = false; ///< A partial trailing frame was dropped.
  uint64_t ValidBytes = 0; ///< Length of the decodable prefix; a writer
                           ///< reopening the journal truncates to this.
};

/// Scans \p Path front to back, verifying every checksum.
JournalRead readJournal(const std::string &Path);

//===----------------------------------------------------------------------===//
// JournalWriter
//===----------------------------------------------------------------------===//

/// Appends frames durably. Both constructors take an exclusive
/// non-blocking flock on the file held for the writer's lifetime, so two
/// coordinators pointed at one journal fail fast with a clear error
/// instead of interleaving frames. Create one via createJournal (fresh
/// file, writes the header frame) or appendJournal (continue a journal whose
/// valid prefix a JournalRead established).
class JournalWriter {
public:
  ~JournalWriter();
  JournalWriter(const JournalWriter &) = delete;
  JournalWriter &operator=(const JournalWriter &) = delete;

  /// Appends one frame and fdatasyncs. Returns false on I/O failure (the
  /// error is sticky: subsequent appends fail fast and lastError() holds
  /// the first failure).
  bool append(const std::string &Payload);

  bool broken() const { return !Err.empty(); }
  const std::string &lastError() const { return Err; }
  const std::string &path() const { return Path; }

private:
  friend std::unique_ptr<JournalWriter>
  createJournal(const std::string &, const std::string &, std::string &);
  friend std::unique_ptr<JournalWriter>
  appendJournal(const std::string &, uint64_t, std::string &);
  JournalWriter(int Fd, std::string Path) : Fd(Fd), Path(std::move(Path)) {}

  int Fd = -1;
  std::string Path;
  std::string Err;
};

/// Creates (truncating any existing file) a journal at \p Path with
/// \p HeaderText as the header frame, durably. Null + \p Error on failure.
std::unique_ptr<JournalWriter> createJournal(const std::string &Path,
                                             const std::string &HeaderText,
                                             std::string &Error);

/// Reopens \p Path for appending after a JournalRead reported
/// \p ValidBytes of decodable prefix; truncates the torn tail (if any)
/// first so new frames never land after garbage.
std::unique_ptr<JournalWriter> appendJournal(const std::string &Path,
                                             uint64_t ValidBytes,
                                             std::string &Error);

} // namespace nv

#endif // NV_SUPPORT_JOURNAL_H
