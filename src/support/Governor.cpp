//===- Governor.cpp - Run governance: budgets, deadlines, cancellation ------===//

#include "support/Governor.h"

#include "support/Fatal.h"

#include <cstdio>
#include <cstdlib>

using namespace nv;

//===----------------------------------------------------------------------===//
// RunOutcome
//===----------------------------------------------------------------------===//

const char *nv::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Ok:
    return "ok";
  case RunStatus::DeadlineExceeded:
    return "deadline-exceeded";
  case RunStatus::StepBudgetExceeded:
    return "step-budget-exceeded";
  case RunStatus::NodeBudgetExceeded:
    return "node-budget-exceeded";
  case RunStatus::HeapBudgetExceeded:
    return "heap-budget-exceeded";
  case RunStatus::Canceled:
    return "canceled";
  case RunStatus::FaultInjected:
    return "fault-injected";
  case RunStatus::Overloaded:
    return "overloaded";
  case RunStatus::Quarantined:
    return "quarantined";
  case RunStatus::EvalError:
    return "eval-error";
  case RunStatus::InternalError:
    return "internal-error";
  }
  return "unknown";
}

bool nv::runStatusFromName(const std::string &Name, RunStatus &Out) {
  static constexpr RunStatus All[] = {
      RunStatus::Ok,           RunStatus::DeadlineExceeded,
      RunStatus::StepBudgetExceeded, RunStatus::NodeBudgetExceeded,
      RunStatus::HeapBudgetExceeded, RunStatus::Canceled,
      RunStatus::FaultInjected, RunStatus::Overloaded,
      RunStatus::Quarantined,   RunStatus::EvalError,
      RunStatus::InternalError};
  for (RunStatus S : All)
    if (Name == runStatusName(S)) {
      Out = S;
      return true;
    }
  return false;
}

bool nv::isResourceLimit(RunStatus S) {
  switch (S) {
  case RunStatus::DeadlineExceeded:
  case RunStatus::StepBudgetExceeded:
  case RunStatus::NodeBudgetExceeded:
  case RunStatus::HeapBudgetExceeded:
  case RunStatus::Canceled:
  case RunStatus::FaultInjected:
  case RunStatus::Overloaded:
  case RunStatus::Quarantined:
    return true;
  case RunStatus::Ok:
  case RunStatus::EvalError:
  case RunStatus::InternalError:
    return false;
  }
  return false;
}

std::string RunOutcome::str() const {
  if (ok())
    return "ok";
  std::string S = runStatusName(Status);
  if (Site && *Site)
    S += std::string("@") + Site;
  if (!Detail.empty())
    S += ": " + Detail;
  return S;
}

int nv::exitCodeForOutcome(const RunOutcome &O) {
  if (O.ok())
    return 0;
  if (O.resourceLimit())
    return 3;
  return O.Status == RunStatus::EvalError ? 2 : 4;
}

void nv::throwEngineError(RunStatus S, const char *Site, std::string Detail) {
  throw EngineError(RunOutcome{S, std::move(Detail), Site});
}

void nv::evalError(const std::string &Msg) {
  throwEngineError(RunStatus::EvalError, "", Msg);
}

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

void CancelToken::requestCancel() {
  Flag.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> Lock(HooksM);
  for (auto &[Id, Fn] : Hooks)
    Fn();
}

uint64_t CancelToken::addInterruptHook(std::function<void()> Fn) {
  std::lock_guard<std::mutex> Lock(HooksM);
  uint64_t Id = NextHookId++;
  Hooks.emplace_back(Id, std::move(Fn));
  // A token canceled before the hook was registered must still interrupt
  // the work the hook guards.
  if (Flag.load(std::memory_order_relaxed))
    Hooks.back().second();
  return Id;
}

void CancelToken::removeInterruptHook(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(HooksM);
  for (size_t I = 0; I < Hooks.size(); ++I)
    if (Hooks[I].first == Id) {
      Hooks.erase(Hooks.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
}

//===----------------------------------------------------------------------===//
// Safe-point sites
//===----------------------------------------------------------------------===//

static const char *const SiteNames[NumGovSites] = {
    "sim-pop",      "apply-cache-miss", "table-grow",
    "alloc",        "smt-encode",       "solver-check",
    "serve-accept", "serve-enqueue",    "serve-respond",
    "fleet-spawn",  "fleet-dispatch",   "fleet-result",
};

const char *nv::govSiteName(GovSite S) {
  return SiteNames[static_cast<unsigned>(S)];
}

bool nv::govSiteFromName(const std::string &Name, GovSite &Out) {
  for (unsigned I = 0; I < NumGovSites; ++I)
    if (Name == SiteNames[I]) {
      Out = static_cast<GovSite>(I);
      return true;
    }
  return false;
}

//===----------------------------------------------------------------------===//
// FaultInject
//===----------------------------------------------------------------------===//

std::atomic<bool> FaultInject::AnyArmed{false};
std::atomic<int64_t> FaultInject::Countdown[NumGovSites] = {};

void FaultInject::arm(GovSite Site, uint64_t N) {
  Countdown[static_cast<unsigned>(Site)].store(static_cast<int64_t>(N),
                                               std::memory_order_relaxed);
  AnyArmed.store(true, std::memory_order_relaxed);
}

void FaultInject::disarmAll() {
  for (auto &C : Countdown)
    C.store(0, std::memory_order_relaxed);
  AnyArmed.store(false, std::memory_order_relaxed);
}

bool FaultInject::armFromSpec(const std::string &Spec, std::string *ErrorOut) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Part = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() : Comma + 1;

    size_t Colon = Part.find(':');
    GovSite Site;
    char *End = nullptr;
    uint64_t N = Colon == std::string::npos
                     ? 0
                     : std::strtoull(Part.c_str() + Colon + 1, &End, 10);
    if (Colon == std::string::npos ||
        !govSiteFromName(Part.substr(0, Colon), Site) || N == 0 ||
        (End && *End != '\0')) {
      if (ErrorOut)
        *ErrorOut = "malformed NV_FAULT_INJECT entry '" + Part +
                    "' (expected <site>:<countdown> with site one of "
                    "sim-pop, apply-cache-miss, table-grow, alloc, "
                    "smt-encode, solver-check, serve-accept, "
                    "serve-enqueue, serve-respond, fleet-spawn, "
                    "fleet-dispatch, fleet-result)";
      return false;
    }
    arm(Site, N);
  }
  return true;
}

void FaultInject::armFromEnv() {
  const char *Spec = std::getenv("NV_FAULT_INJECT");
  if (!Spec || !*Spec)
    return;
  std::string Error;
  if (!armFromSpec(Spec, &Error))
    fatalError(Error);
}

void FaultInject::hit(GovSite Site) {
  auto &C = Countdown[static_cast<unsigned>(Site)];
  // Relaxed pre-check keeps disarmed sites cheap while another site is
  // armed; the fetch_sub makes exactly one hit observe the 1 -> 0 edge.
  if (C.load(std::memory_order_relaxed) <= 0)
    return;
  if (C.fetch_sub(1, std::memory_order_relaxed) == 1)
    throwEngineError(RunStatus::FaultInjected, govSiteName(Site),
                     "injected fault (NV_FAULT_INJECT)");
}

namespace {
/// Arms NV_FAULT_INJECT before main so every entry point — CLIs, tests,
/// bench drivers — honors the variable without per-tool plumbing.
const bool FaultInjectEnvArmed = (FaultInject::armFromEnv(), true);
} // namespace

//===----------------------------------------------------------------------===//
// Governor
//===----------------------------------------------------------------------===//

thread_local Governor *Governor::Head = nullptr;

Governor::Governor(const RunBudget &Budget) : B(Budget) {
  if (B.DeadlineMs > 0) {
    HasDeadline = true;
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(B.DeadlineMs));
    DeadlineCountdown = 1; // first hot-site poll reads the clock
  }
  Prev = Head;
  Head = this;
}

Governor::Scope::Scope(const RunBudget &Budget) {
  if (Budget.limited())
    G = new Governor(Budget);
}

Governor::Scope::~Scope() {
  if (G) {
    Head = G->Prev;
    delete G;
  }
}

double Governor::remainingMs() {
  double Best = -1;
  auto Now = std::chrono::steady_clock::now();
  for (Governor *G = Head; G; G = G->Prev) {
    if (!G->HasDeadline)
      continue;
    double Ms =
        std::chrono::duration<double, std::milli>(G->Deadline - Now).count();
    if (Ms < 0)
      Ms = 0;
    if (Best < 0 || Ms < Best)
      Best = Ms;
  }
  return Best;
}

void Governor::trip(RunStatus S, GovSite Site, std::string Detail) {
  throwEngineError(S, govSiteName(Site), std::move(Detail));
}

void Governor::checkOne(GovSite Site, size_t LiveNodes, size_t HeapBytes) {
  if (B.Cancel && B.Cancel->isCanceled())
    trip(RunStatus::Canceled, Site, "cancellation requested");
  if (Site == GovSite::SimPop && B.MaxSteps && ++Steps > B.MaxSteps)
    trip(RunStatus::StepBudgetExceeded, Site,
         "step budget of " + std::to_string(B.MaxSteps) + " exhausted");
  if (B.MaxLiveNodes && LiveNodes > B.MaxLiveNodes)
    trip(RunStatus::NodeBudgetExceeded, Site,
         std::to_string(LiveNodes) + " live MTBDD nodes exceed the budget of " +
             std::to_string(B.MaxLiveNodes));
  if (B.MaxHeapBytes && HeapBytes > B.MaxHeapBytes)
    trip(RunStatus::HeapBudgetExceeded, Site,
         std::to_string(HeapBytes) + " bytes exceed the watermark of " +
             std::to_string(B.MaxHeapBytes));
  if (HasDeadline) {
    // Hot sites amortize the clock read; everything else is infrequent
    // enough to check every time.
    bool Hot = Site == GovSite::ApplyCacheMiss || Site == GovSite::EvalAlloc;
    if (!Hot || --DeadlineCountdown == 0) {
      DeadlineCountdown = DeadlinePollEvery;
      if (std::chrono::steady_clock::now() >= Deadline)
        trip(RunStatus::DeadlineExceeded, Site,
             "deadline of " + std::to_string(B.DeadlineMs) + " ms exceeded");
    }
  }
}
