//===- Fleet.cpp - Crash-isolated worker fleet for sharded analyses ----------===//

#include "support/Fleet.h"

#include "support/Journal.h"
#include "support/Subprocess.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace nv;

//===----------------------------------------------------------------------===//
// Frame I/O
//
// Same shape as journal frames — u32le length, u32le FNV-1a32, payload —
// with the payload's first byte a message type. The checksum is not
// paranoia-theater: a worker dying mid-write leaves a torn frame on the
// pipe, and the coordinator must classify that as "worker died" rather
// than misparse half a record.
//===----------------------------------------------------------------------===//

namespace {

constexpr uint32_t MaxFleetFrame = 64u << 20;

void putU32le(std::string &Out, uint32_t V) {
  Out.push_back(char(V & 0xff));
  Out.push_back(char((V >> 8) & 0xff));
  Out.push_back(char((V >> 16) & 0xff));
  Out.push_back(char((V >> 24) & 0xff));
}

uint32_t getU32le(const unsigned char *P) {
  return uint32_t(P[0]) | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16) |
         (uint32_t(P[3]) << 24);
}

bool writeFrameFd(int Fd, char Type, const std::string &Payload) {
  std::string F;
  F.reserve(9 + Payload.size());
  std::string Body;
  Body.reserve(1 + Payload.size());
  Body.push_back(Type);
  Body += Payload;
  putU32le(F, uint32_t(Body.size()));
  putU32le(F, fnv1a32(Body.data(), Body.size()));
  F += Body;
  const char *P = F.data();
  size_t N = F.size();
  while (N > 0) {
    ssize_t W = ::write(Fd, P, N);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += W;
    N -= size_t(W);
  }
  return true;
}

bool readExact(int Fd, char *P, size_t N) {
  while (N > 0) {
    ssize_t R = ::read(Fd, P, N);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (R == 0)
      return false;
    P += R;
    N -= size_t(R);
  }
  return true;
}

/// Blocking frame read (worker side). 1 = frame, 0 = clean EOF at a frame
/// boundary, -1 = corrupt or error.
int readFrameBlocking(int Fd, char &Type, std::string &Payload) {
  unsigned char Hdr[8];
  // Detect EOF cleanly only at a boundary: the first byte decides.
  for (;;) {
    ssize_t R = ::read(Fd, Hdr, 1);
    if (R == 1)
      break;
    if (R == 0)
      return 0;
    if (errno != EINTR)
      return -1;
  }
  if (!readExact(Fd, reinterpret_cast<char *>(Hdr) + 1, 7))
    return -1;
  uint32_t Len = getU32le(Hdr);
  uint32_t Sum = getU32le(Hdr + 4);
  if (Len == 0 || Len > MaxFleetFrame)
    return -1;
  std::string Body(Len, '\0');
  if (!readExact(Fd, Body.data(), Len))
    return -1;
  if (fnv1a32(Body.data(), Body.size()) != Sum)
    return -1;
  Type = Body[0];
  Payload.assign(Body, 1, Body.size() - 1);
  return 1;
}

/// Extracts the next complete frame from a coordinator-side buffer.
/// 1 = frame, 0 = need more bytes, -1 = corrupt stream.
int popFrame(std::string &Buf, size_t &Off, char &Type, std::string &Payload) {
  if (Buf.size() - Off < 8)
    return 0;
  const auto *P = reinterpret_cast<const unsigned char *>(Buf.data()) + Off;
  uint32_t Len = getU32le(P);
  uint32_t Sum = getU32le(P + 4);
  if (Len == 0 || Len > MaxFleetFrame)
    return -1;
  if (Buf.size() - Off - 8 < Len)
    return 0;
  if (fnv1a32(Buf.data() + Off + 8, Len) != Sum)
    return -1;
  Type = Buf[Off + 8];
  Payload.assign(Buf, Off + 9, Len - 1);
  Off += 8 + size_t(Len);
  if (Off > (1u << 16) && Off * 2 > Buf.size()) {
    Buf.erase(0, Off);
    Off = 0;
  }
  return 1;
}

uint64_t nowMs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

} // namespace

//===----------------------------------------------------------------------===//
// Options / stats
//===----------------------------------------------------------------------===//

void nv::applyFleetEnvOverrides(FleetOptions &O) {
  auto U = [](const char *Name, unsigned &Out) {
    if (const char *V = std::getenv(Name); V && *V)
      Out = unsigned(std::strtoul(V, nullptr, 10));
  };
  U("NV_FLEET_HEARTBEAT_MS", O.HeartbeatMs);
  U("NV_FLEET_LIVENESS_TIMEOUT_MS", O.LivenessTimeoutMs);
  U("NV_FLEET_POISON_THRESHOLD", O.PoisonThreshold);
  U("NV_FLEET_BACKOFF_BASE_MS", O.BackoffBaseMs);
  U("NV_FLEET_BACKOFF_CAP_MS", O.BackoffCapMs);
  U("NV_FLEET_STRAGGLER_MIN_MS", O.StragglerMinMs);
  if (const char *V = std::getenv("NV_FLEET_STRAGGLER_FACTOR"); V && *V)
    O.StragglerFactor = std::strtod(V, nullptr);
  if (const char *V = std::getenv("NV_FLEET_SPECULATE"); V && *V)
    O.Speculate = *V != '0';
  if (const char *V = std::getenv("NV_FLEET_QUARANTINE_DIR"); V && *V)
    O.QuarantineDir = V;
}

std::string FleetStats::str() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%llu jobs, %llu requeued, %llu deaths, %llu respawns, "
                "%llu heartbeat timeouts, %llu speculative (%llu wins), "
                "%llu quarantined",
                (unsigned long long)JobsCompleted,
                (unsigned long long)JobsRequeued,
                (unsigned long long)WorkerDeaths, (unsigned long long)Respawns,
                (unsigned long long)HeartbeatTimeouts,
                (unsigned long long)SpeculativeLaunches,
                (unsigned long long)SpeculativeWins,
                (unsigned long long)Quarantined);
  std::string S = Buf;
  if (!LastExit.empty())
    S += ", last exit " + LastExit;
  return S;
}

//===----------------------------------------------------------------------===//
// Worker
//===----------------------------------------------------------------------===//

namespace {

/// NV_FLEET_POISON_KEY test hook: a deterministic crasher for quarantine
/// tests and chaos CI — the planted job dies like a real segfault would.
void maybePoison(const std::string &Key) {
  const char *P = std::getenv("NV_FLEET_POISON_KEY");
  if (P && Key == P) {
    std::fprintf(stderr,
                 "nv fleet worker %ld: poison job '%s' (test hook); aborting\n",
                 (long)getpid(), Key.c_str());
    std::abort();
  }
}

/// NV_FLEET_WEDGE_KEY test hook: stop heartbeating and hang, so the
/// coordinator's liveness timeout is exercised. With WEDGE_ONCE_FILE set,
/// only the worker that wins the latch wedges — the requeued job then
/// completes on the respawned worker.
void maybeWedge(const std::string &Key, std::atomic<bool> &PauseBeats) {
  const char *W = std::getenv("NV_FLEET_WEDGE_KEY");
  if (!W || Key != W)
    return;
  if (const char *Latch = std::getenv("NV_FLEET_WEDGE_ONCE_FILE")) {
    int Fd = ::open(Latch, O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
    if (Fd < 0)
      return; // latch already taken: run the job normally
    ::close(Fd);
  }
  PauseBeats.store(true, std::memory_order_relaxed);
  std::fprintf(stderr, "nv fleet worker %ld: wedging on job '%s' (test hook)\n",
               (long)getpid(), Key.c_str());
  for (;;)
    ::pause(); // the coordinator SIGKILLs us
}

} // namespace

int nv::runFleetWorker(const std::function<UnitRecord(const FleetJob &)> &Handler,
                       const FleetWorkerOptions &Opts) {
  // Quarantine-repro mode: one job, record to stdout, no pipes.
  if (const char *K = std::getenv("NV_FLEET_ONE_JOB")) {
    const char *S = std::getenv("NV_FLEET_ONE_JOB_SPEC");
    FleetJob J{K, S ? S : ""};
    maybePoison(J.Key);
    UnitRecord Rec = Handler(J);
    Rec.Key = J.Key;
    std::fputs(Rec.render().c_str(), stdout);
    return 0;
  }

  unsigned HeartbeatMs = 250;
  if (const char *V = std::getenv("NV_FLEET_HEARTBEAT_MS"); V && *V)
    HeartbeatMs = std::max(10u, unsigned(std::strtoul(V, nullptr, 10)));
  // A dying coordinator closes our pipes; surface that as EPIPE, not a
  // process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  std::mutex WriteM;            // OutFd is shared with the beater thread
  std::mutex CurM;
  std::string CurKey;           // guarded by CurM
  std::atomic<bool> StopBeats{false}, PauseBeats{false};

  std::thread Beater([&] {
    for (;;) {
      for (unsigned Slept = 0; Slept < HeartbeatMs; Slept += 20) {
        if (StopBeats.load(std::memory_order_relaxed))
          return;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (PauseBeats.load(std::memory_order_relaxed))
        continue;
      std::string Key;
      {
        std::lock_guard<std::mutex> L(CurM);
        Key = CurKey;
      }
      std::lock_guard<std::mutex> L(WriteM);
      if (!writeFrameFd(Opts.OutFd, 'H', Key))
        return; // coordinator is gone; the main loop will see EOF
    }
  });
  // Joins even when the handler throws: the worker then dies by the CLI's
  // structured exit path, not by std::terminate.
  struct BeaterJoin {
    std::atomic<bool> &Stop;
    std::thread &T;
    ~BeaterJoin() {
      Stop.store(true, std::memory_order_relaxed);
      T.join();
    }
  } Join{StopBeats, Beater};

  {
    std::lock_guard<std::mutex> L(WriteM);
    writeFrameFd(Opts.OutFd, 'W', std::to_string(getpid()));
  }

  for (;;) {
    char Type = 0;
    std::string Payload;
    int N = readFrameBlocking(Opts.InFd, Type, Payload);
    if (N == 0)
      return 0; // clean EOF: coordinator is done with us
    if (N < 0) {
      std::fprintf(stderr, "nv fleet worker %ld: corrupt job stream\n",
                   (long)getpid());
      return 2;
    }
    if (Type == 'Q')
      return 0;
    if (Type != 'J')
      continue;

    size_t Nl = Payload.find('\n');
    FleetJob J;
    J.Key = Payload.substr(0, Nl);
    if (Nl != std::string::npos)
      J.Spec = Payload.substr(Nl + 1);
    {
      std::lock_guard<std::mutex> L(CurM);
      CurKey = J.Key;
    }
    maybeWedge(J.Key, PauseBeats);
    // Deliberately outside any try: an injected fleet-dispatch fault (or
    // any handler exception) kills this worker loudly, which is exactly
    // the crash the coordinator's requeue/respawn machinery must absorb.
    Governor::pollSafePoint(GovSite::FleetDispatch);
    maybePoison(J.Key);
    UnitRecord Rec = Handler(J);
    Rec.Key = J.Key;
    {
      std::lock_guard<std::mutex> L(WriteM);
      if (!writeFrameFd(Opts.OutFd, 'R', Rec.render()))
        return 0; // coordinator gone
    }
    {
      std::lock_guard<std::mutex> L(CurM);
      CurKey.clear();
    }
  }
}

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

namespace {

struct Slot {
  pid_t Pid = -1;
  int JobFd = -1; ///< Write end: jobs to the worker.
  int ResFd = -1; ///< Read end: results/heartbeats (nonblocking).
  bool Live = false;
  bool Eof = false;    ///< Worker closed its result pipe; awaiting reap.
  bool Killed = false; ///< SIGKILL already sent (liveness/fault path).
  bool Idle = true;
  std::string JobKey; ///< "" when idle.
  uint64_t LastBeatMs = 0;
  uint64_t NextSpawnAtMs = 0;
  uint64_t Generation = 0; ///< Spawns of this slot (0 = never spawned).
  unsigned ConsecutiveFailures = 0;
  std::string Buf;
  size_t BufOff = 0;
};

struct JobState {
  FleetJob Job;
  bool Done = false;
  unsigned Deaths = 0;
  int PrimarySlot = -1;
  int SpecSlot = -1;
  uint64_t StartMs = 0;
  std::string WinnerRender; ///< First result, for duplicate comparison.
};

std::string shellQuote(const std::string &S) {
  std::string Q = "'";
  for (char C : S) {
    if (C == '\'')
      Q += "'\\''";
    else
      Q += C;
  }
  Q += "'";
  return Q;
}

/// Writes the runnable quarantine repro script and returns its path ("" on
/// failure). The script re-execs the worker command on just the poison job
/// via the NV_FLEET_ONE_JOB hook.
std::string writeQuarantineRepro(const FleetOptions &Opts, const JobState &JS,
                                 const std::string &LastExit) {
  std::string Name = "nv-quarantine-";
  for (char C : JS.Job.Key)
    Name += std::isalnum(static_cast<unsigned char>(C)) ? C : '_';
  Name += ".sh";
  std::string Path = Opts.QuarantineDir.empty()
                         ? Name
                         : Opts.QuarantineDir + "/" + Name;
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return "";
  std::fprintf(F, "#!/bin/sh\n");
  std::fprintf(F,
               "# nv fleet quarantine: job '%s' killed %u workers "
               "(last exit %s).\n",
               JS.Job.Key.c_str(), JS.Deaths, LastExit.c_str());
  std::fprintf(F, "# Re-runs the job in one isolated worker; expect it to "
                  "reproduce the failure.\n");
  std::string Env = "NV_FLEET_ONE_JOB=" + shellQuote(JS.Job.Key) +
                    " NV_FLEET_ONE_JOB_SPEC=" + shellQuote(JS.Job.Spec);
  // Preserve the synthetic-crasher hook so a planted poison job's repro
  // actually reproduces (a real crasher needs no help).
  if (const char *P = std::getenv("NV_FLEET_POISON_KEY"))
    Env += " NV_FLEET_POISON_KEY=" + shellQuote(P);
  std::fprintf(F, "exec env %s \\\n ", Env.c_str());
  for (const std::string &A : Opts.WorkerArgv)
    std::fprintf(F, " %s", shellQuote(A).c_str());
  std::fprintf(F, "\n");
  std::fclose(F);
  ::chmod(Path.c_str(), 0755);
  return Path;
}

class Coordinator {
public:
  Coordinator(const FleetOptions &Opts, const std::function<bool(FleetJob &)> &Next,
              const FleetCallbacks &CB)
      : Opts(Opts), Next(Next), CB(CB), Slots(std::max(1u, Opts.Workers)) {}

  FleetResult run();

private:
  bool haveWork() const {
    return !Exhausted || !Pending.empty() || DoneCount < IssuedCount;
  }
  bool pullOne();
  bool spawnSlot(unsigned I);
  void closeSlotFds(Slot &S);
  void handleDeath(unsigned I, const ChildExit &Exit);
  void killSlot(unsigned I);
  void reap(bool CountDeaths);
  void checkLiveness();
  void spawnWhereNeeded();
  void dispatch();
  void trySpeculate(unsigned IdleSlot);
  void pollAndRead();
  void handleFrame(unsigned I, char Type, const std::string &Payload);
  void completeJob(JobState &JS, const UnitRecord &Rec, int FromSlot);
  void quarantine(JobState &JS);
  void requeue(JobState &JS);
  void detachSlotFromJob(unsigned I, JobState &JS);
  uint64_t medianDurationMs() const;
  void drainWorkers();
  void logf(const char *Fmt, ...) __attribute__((format(printf, 2, 3)));

  const FleetOptions &Opts;
  const std::function<bool(FleetJob &)> &Next;
  const FleetCallbacks &CB;

  std::vector<Slot> Slots;
  std::unordered_map<std::string, JobState> Jobs;
  std::deque<std::string> Pending;
  std::vector<uint64_t> Durations;
  bool Exhausted = false;
  uint64_t IssuedCount = 0, DoneCount = 0;
  unsigned ConsecSpawnFailures = 0;
  FleetResult R;
};

void Coordinator::logf(const char *Fmt, ...) {
  if (!Opts.Verbose)
    return;
  va_list Ap;
  va_start(Ap, Fmt);
  std::vfprintf(stderr, Fmt, Ap);
  va_end(Ap);
}

bool Coordinator::pullOne() {
  if (Exhausted)
    return false;
  FleetJob J;
  if (!Next(J)) {
    Exhausted = true;
    return false;
  }
  auto [It, Fresh] = Jobs.emplace(J.Key, JobState{});
  if (!Fresh) {
    logf("nv fleet: duplicate job key '%s' ignored\n", J.Key.c_str());
    return pullOne();
  }
  It->second.Job = std::move(J);
  Pending.push_back(It->first);
  ++IssuedCount;
  return true;
}

void Coordinator::closeSlotFds(Slot &S) {
  if (S.JobFd >= 0)
    ::close(S.JobFd);
  if (S.ResFd >= 0)
    ::close(S.ResFd);
  S.JobFd = S.ResFd = -1;
}

bool Coordinator::spawnSlot(unsigned I) {
  Slot &S = Slots[I];
  auto Fail = [&](const std::string &Why) {
    ++R.Stats.SpawnFailures;
    ++ConsecSpawnFailures;
    ++S.ConsecutiveFailures;
    S.NextSpawnAtMs = nowMs() + nextRestartDelayMs(S.ConsecutiveFailures,
                                                   Opts.BackoffBaseMs,
                                                   Opts.BackoffCapMs);
    logf("nv fleet: spawn failed for slot %u: %s\n", I, Why.c_str());
    return false;
  };
  try {
    Governor::pollSafePoint(GovSite::FleetSpawn);
  } catch (const EngineError &E) {
    return Fail(E.outcome().str());
  }

  int JobP[2], ResP[2];
  if (::pipe2(JobP, O_CLOEXEC) != 0)
    return Fail(std::string("pipe failed: ") + std::strerror(errno));
  if (::pipe2(ResP, O_CLOEXEC) != 0) {
    ::close(JobP[0]);
    ::close(JobP[1]);
    return Fail(std::string("pipe failed: ") + std::strerror(errno));
  }

  std::vector<std::pair<std::string, std::string>> SetEnv = {
      {"NV_FLEET_HEARTBEAT_MS", std::to_string(Opts.HeartbeatMs)}};
  // One armed NV_FAULT_INJECT countdown should behave like one process-
  // wide countdown does in-process: first-generation workers inherit it,
  // respawns do not (otherwise every respawn re-arms and crash-loops
  // straight into quarantine).
  std::vector<std::string> UnsetEnv;
  if (S.Generation > 0)
    UnsetEnv.push_back("NV_FAULT_INJECT");

  std::string Err;
  pid_t Pid = spawnProcess(Opts.WorkerArgv, {{3, JobP[0]}, {4, ResP[1]}},
                           SetEnv, UnsetEnv, Err);
  ::close(JobP[0]);
  ::close(ResP[1]);
  if (Pid < 0) {
    ::close(JobP[1]);
    ::close(ResP[0]);
    return Fail(Err);
  }
  int Flags = ::fcntl(ResP[0], F_GETFL);
  ::fcntl(ResP[0], F_SETFL, Flags | O_NONBLOCK);

  S.Pid = Pid;
  S.JobFd = JobP[1];
  S.ResFd = ResP[0];
  S.Live = true;
  S.Eof = S.Killed = false;
  S.Idle = true;
  S.JobKey.clear();
  S.LastBeatMs = nowMs();
  S.Buf.clear();
  S.BufOff = 0;
  if (S.Generation > 0)
    ++R.Stats.Respawns;
  ++S.Generation;
  ConsecSpawnFailures = 0;
  // chaos_fleet.sh greps this line to aim its kill -9 at workers.
  logf("nv fleet: worker pid %ld slot %u generation %llu\n", (long)Pid, I,
       (unsigned long long)(S.Generation - 1));
  if (CB.OnSpawn)
    CB.OnSpawn(Pid, I);
  return true;
}

void Coordinator::detachSlotFromJob(unsigned I, JobState &JS) {
  if (JS.PrimarySlot == int(I))
    JS.PrimarySlot = -1;
  if (JS.SpecSlot == int(I))
    JS.SpecSlot = -1;
}

void Coordinator::requeue(JobState &JS) {
  Pending.push_front(JS.Job.Key);
  ++R.Stats.JobsRequeued;
  logf("nv fleet: requeue job '%s' (death %u)\n", JS.Job.Key.c_str(),
       JS.Deaths);
}

void Coordinator::quarantine(JobState &JS) {
  std::string Repro = writeQuarantineRepro(Opts, JS, R.Stats.LastExit);
  logf("nv fleet: job '%s' quarantined after %u worker deaths; repro: %s\n",
       JS.Job.Key.c_str(), JS.Deaths,
       Repro.empty() ? "(unwritable)" : Repro.c_str());
  UnitRecord Rec;
  Rec.Key = JS.Job.Key;
  RunOutcome O{RunStatus::Quarantined,
               "killed " + std::to_string(JS.Deaths) + " workers (last exit " +
                   R.Stats.LastExit + ")",
               ""};
  addOutcome(Rec, O, JS.Deaths);
  if (!Repro.empty())
    Rec.add("repro", Repro);
  JS.Done = true;
  JS.WinnerRender = Rec.render();
  ++DoneCount;
  ++R.Stats.Quarantined;
  R.QuarantinedKeys.push_back(JS.Job.Key);
  R.Results[JS.Job.Key] = Rec;
  if (CB.OnResult)
    CB.OnResult(Rec);
}

void Coordinator::handleDeath(unsigned I, const ChildExit &Exit) {
  Slot &S = Slots[I];
  R.Stats.LastExit = Exit.describe();
  ++R.Stats.WorkerDeaths;
  logf("nv fleet: worker pid %ld died (%s)%s%s\n", (long)S.Pid,
       R.Stats.LastExit.c_str(), S.JobKey.empty() ? "" : " on job ",
       S.JobKey.c_str());
  closeSlotFds(S);
  S.Live = false;
  S.Pid = -1;
  ++S.ConsecutiveFailures;
  S.NextSpawnAtMs = nowMs() + nextRestartDelayMs(S.ConsecutiveFailures,
                                                 Opts.BackoffBaseMs,
                                                 Opts.BackoffCapMs);
  if (S.JobKey.empty())
    return;
  auto It = Jobs.find(S.JobKey);
  S.JobKey.clear();
  S.Idle = true;
  if (It == Jobs.end())
    return;
  JobState &JS = It->second;
  detachSlotFromJob(I, JS);
  if (JS.Done)
    return; // a speculative loser died; the result already landed
  ++JS.Deaths;
  if (JS.PrimarySlot != -1 || JS.SpecSlot != -1)
    return; // the other copy is still running it
  if (JS.Deaths >= Opts.PoisonThreshold)
    quarantine(JS);
  else
    requeue(JS);
}

void Coordinator::killSlot(unsigned I) {
  Slot &S = Slots[I];
  if (S.Live && S.Pid > 0 && !S.Killed) {
    ::kill(S.Pid, SIGKILL);
    S.Killed = true;
  }
}

void Coordinator::reap(bool CountDeaths) {
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (!S.Live || S.Pid <= 0)
      continue;
    ChildExit Exit;
    int W = waitForChild(S.Pid, /*Block=*/false, Exit);
    if (W != 1)
      continue;
    if (CountDeaths) {
      handleDeath(I, Exit);
    } else {
      closeSlotFds(S);
      S.Live = false;
      S.Pid = -1;
    }
  }
}

void Coordinator::checkLiveness() {
  uint64_t Now = nowMs();
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (!S.Live || S.Killed)
      continue;
    if (Now - S.LastBeatMs > Opts.LivenessTimeoutMs) {
      ++R.Stats.HeartbeatTimeouts;
      logf("nv fleet: worker pid %ld silent for %llu ms; killing\n",
           (long)S.Pid, (unsigned long long)(Now - S.LastBeatMs));
      killSlot(I);
    }
  }
}

void Coordinator::spawnWhereNeeded() {
  if (!haveWork())
    return;
  uint64_t Now = nowMs();
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (S.Live || Now < S.NextSpawnAtMs)
      continue;
    spawnSlot(I);
  }
}

uint64_t Coordinator::medianDurationMs() const {
  if (Durations.empty())
    return 0;
  std::vector<uint64_t> D = Durations;
  size_t Mid = D.size() / 2;
  std::nth_element(D.begin(), D.begin() + ptrdiff_t(Mid), D.end());
  return D[Mid];
}

void Coordinator::trySpeculate(unsigned IdleSlot) {
  if (!Opts.Speculate || Durations.empty())
    return;
  uint64_t Median = medianDurationMs();
  uint64_t Threshold =
      std::max<uint64_t>(Opts.StragglerMinMs,
                         uint64_t(double(Median) * Opts.StragglerFactor));
  uint64_t Now = nowMs();
  for (auto &[Key, JS] : Jobs) {
    if (JS.Done || JS.PrimarySlot == -1 || JS.SpecSlot != -1)
      continue;
    if (Now - JS.StartMs <= Threshold)
      continue;
    Slot &S = Slots[IdleSlot];
    if (!writeFrameFd(S.JobFd, 'J', JS.Job.Key + "\n" + JS.Job.Spec)) {
      killSlot(IdleSlot);
      return;
    }
    S.Idle = false;
    S.JobKey = JS.Job.Key;
    JS.SpecSlot = int(IdleSlot);
    ++R.Stats.SpeculativeLaunches;
    logf("nv fleet: straggler '%s' (%llu ms > %llu ms); speculative "
         "re-execution on slot %u\n",
         Key.c_str(), (unsigned long long)(Now - JS.StartMs),
         (unsigned long long)Threshold, IdleSlot);
    return;
  }
}

void Coordinator::dispatch() {
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (!S.Live || !S.Idle || S.Killed || S.Eof)
      continue;
    if (Pending.empty())
      pullOne();
    if (Pending.empty()) {
      if (Exhausted && DoneCount < IssuedCount)
        trySpeculate(I);
      continue;
    }
    std::string Key = Pending.front();
    Pending.pop_front();
    JobState &JS = Jobs[Key];
    if (!writeFrameFd(S.JobFd, 'J', JS.Job.Key + "\n" + JS.Job.Spec)) {
      // Worker is dying under us: put the job back and let the reap path
      // do the bookkeeping.
      Pending.push_front(Key);
      killSlot(I);
      continue;
    }
    S.Idle = false;
    S.JobKey = Key;
    JS.PrimarySlot = int(I);
    JS.StartMs = nowMs();
  }
}

void Coordinator::completeJob(JobState &JS, const UnitRecord &Rec,
                              int FromSlot) {
  if (JS.Done) {
    // Duplicate (speculative) result: byte-compare against the winner. A
    // mismatch means the shard is nondeterministic — exactly the bug the
    // bit-identical-aggregate contract exists to catch.
    if (Rec.render() != JS.WinnerRender) {
      ++R.Stats.SpeculationMismatches;
      std::fprintf(stderr,
                   "nv fleet: WARNING: speculative results for '%s' differ "
                   "(shard nondeterminism?)\n",
                   JS.Job.Key.c_str());
    }
    return;
  }
  JS.Done = true;
  JS.WinnerRender = Rec.render();
  ++DoneCount;
  ++R.Stats.JobsCompleted;
  Durations.push_back(nowMs() - JS.StartMs);
  if (FromSlot == JS.SpecSlot && JS.SpecSlot != -1)
    ++R.Stats.SpeculativeWins;
  R.Results[JS.Job.Key] = Rec;
  if (CB.OnResult)
    CB.OnResult(Rec);
}

void Coordinator::handleFrame(unsigned I, char Type, const std::string &Payload) {
  Slot &S = Slots[I];
  if (Type != 'R')
    return; // 'H'/'W' only exist to refresh LastBeatMs, done by the caller
  try {
    Governor::pollSafePoint(GovSite::FleetResult);
  } catch (const EngineError &E) {
    // Degradation: drop the result, kill the worker, and let the death
    // path requeue its job — the injected fault costs one redundant
    // execution, never the run.
    logf("nv fleet: result handling faulted (%s); dropping result from "
         "pid %ld\n",
         E.outcome().str().c_str(), (long)S.Pid);
    killSlot(I);
    return;
  }
  UnitRecord Rec;
  if (!UnitRecord::parse(Payload, Rec) || Rec.Key != S.JobKey) {
    logf("nv fleet: malformed result from pid %ld; killing\n", (long)S.Pid);
    killSlot(I);
    return;
  }
  auto It = Jobs.find(Rec.Key);
  S.JobKey.clear();
  S.Idle = true;
  S.ConsecutiveFailures = 0; // completing work counts as healthy
  if (It == Jobs.end())
    return;
  detachSlotFromJob(I, It->second);
  completeJob(It->second, Rec, int(I));
}

void Coordinator::pollAndRead() {
  std::vector<struct pollfd> Pfds;
  std::vector<unsigned> PfdSlot;
  for (unsigned I = 0; I < Slots.size(); ++I) {
    Slot &S = Slots[I];
    if (!S.Live || S.Eof || S.ResFd < 0)
      continue;
    Pfds.push_back({S.ResFd, POLLIN, 0});
    PfdSlot.push_back(I);
  }
  if (Pfds.empty()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return;
  }
  int N = ::poll(Pfds.data(), Pfds.size(), 20);
  if (N <= 0)
    return;
  for (size_t P = 0; P < Pfds.size(); ++P) {
    if (!(Pfds[P].revents & (POLLIN | POLLHUP | POLLERR)))
      continue;
    unsigned I = PfdSlot[P];
    Slot &S = Slots[I];
    char Buf[1 << 14];
    for (;;) {
      ssize_t Rd = ::read(S.ResFd, Buf, sizeof(Buf));
      if (Rd > 0) {
        S.Buf.append(Buf, size_t(Rd));
        S.LastBeatMs = nowMs();
        continue;
      }
      if (Rd == 0) {
        S.Eof = true; // worker exiting; reap() finishes the story
        break;
      }
      if (errno == EINTR)
        continue;
      break; // EAGAIN
    }
    for (;;) {
      char Type = 0;
      std::string Payload;
      int F = popFrame(S.Buf, S.BufOff, Type, Payload);
      if (F == 0)
        break;
      if (F < 0) {
        logf("nv fleet: corrupt result stream from pid %ld; killing\n",
             (long)S.Pid);
        killSlot(I);
        break;
      }
      handleFrame(I, Type, Payload);
    }
  }
}

void Coordinator::drainWorkers() {
  for (Slot &S : Slots)
    if (S.Live && S.JobFd >= 0) {
      writeFrameFd(S.JobFd, 'Q', "");
      ::close(S.JobFd);
      S.JobFd = -1;
    }
  uint64_t Deadline = nowMs() + 2000;
  for (;;) {
    reap(/*CountDeaths=*/false);
    bool AnyLive = false;
    for (Slot &S : Slots)
      AnyLive |= S.Live;
    if (!AnyLive)
      return;
    if (nowMs() >= Deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (unsigned I = 0; I < Slots.size(); ++I)
    killSlot(I);
  for (Slot &S : Slots) {
    if (!S.Live || S.Pid <= 0)
      continue;
    ChildExit Exit;
    waitForChild(S.Pid, /*Block=*/true, Exit);
    closeSlotFds(S);
    S.Live = false;
  }
}

FleetResult Coordinator::run() {
  if (Opts.WorkerArgv.empty()) {
    R.Outcome = RunOutcome{RunStatus::InternalError, "fleet has no worker argv",
                           ""};
    return R;
  }
  // EPIPE over SIGPIPE for job-frame writes to dying workers.
  struct sigaction Ign, OldPipe;
  std::memset(&Ign, 0, sizeof(Ign));
  Ign.sa_handler = SIG_IGN;
  sigemptyset(&Ign.sa_mask);
  sigaction(SIGPIPE, &Ign, &OldPipe);

  pullOne(); // learn immediately whether there is any work at all
  while (haveWork()) {
    if (Opts.Cancel && Opts.Cancel->isCanceled()) {
      R.Outcome = RunOutcome{RunStatus::Canceled, "fleet canceled", ""};
      for (unsigned I = 0; I < Slots.size(); ++I)
        if (Slots[I].Live && Slots[I].Pid > 0)
          ::kill(Slots[I].Pid, SIGTERM);
      drainWorkers();
      sigaction(SIGPIPE, &OldPipe, nullptr);
      return R;
    }
    reap(/*CountDeaths=*/true);
    checkLiveness();
    spawnWhereNeeded();

    bool AnyLive = false;
    for (Slot &S : Slots)
      AnyLive |= S.Live;
    if (!AnyLive) {
      if (ConsecSpawnFailures > Opts.SpawnFailureCap) {
        R.Outcome = RunOutcome{RunStatus::InternalError,
                               "fleet cannot keep workers alive (" +
                                   std::to_string(ConsecSpawnFailures) +
                                   " consecutive spawn failures)",
                               ""};
        drainWorkers();
        sigaction(SIGPIPE, &OldPipe, nullptr);
        return R;
      }
      // Everything is in respawn backoff; wait it out.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }

    dispatch();
    pollAndRead();
  }
  drainWorkers();
  sigaction(SIGPIPE, &OldPipe, nullptr);
  R.Outcome = RunOutcome{}; // ok: every job has a record
  return R;
}

} // namespace

FleetResult nv::runFleetDynamic(const FleetOptions &Opts,
                                const std::function<bool(FleetJob &)> &Next,
                                const FleetCallbacks &CB) {
  Coordinator C(Opts, Next, CB);
  return C.run();
}

FleetResult nv::runFleet(const FleetOptions &Opts,
                         const std::vector<FleetJob> &Jobs,
                         const FleetCallbacks &CB) {
  size_t I = 0;
  return runFleetDynamic(
      Opts,
      [&](FleetJob &J) {
        if (I >= Jobs.size())
          return false;
        J = Jobs[I++];
        return true;
      },
      CB);
}
