//===- Fatal.cpp - Internal error reporting -------------------------------===//

#include "support/Fatal.h"

#include <cstdio>
#include <cstdlib>

void nv::fatalError(const std::string &Msg) {
  std::fprintf(stderr, "nv fatal error: %s\n", Msg.c_str());
  std::abort();
}

void nv::unreachableImpl(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "nv unreachable: %s at %s:%d\n", Msg, File, Line);
  std::abort();
}
