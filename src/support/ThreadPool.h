//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool with a blocking `parallelFor(N, Fn)` primitive
/// and a fire-and-forget `submit(Task)` queue. The analyses this repo
/// reproduces decompose into embarrassingly parallel shards (one fixpoint
/// per failure scenario, per destination prefix, per assert index); each
/// shard owns its NvContext/BddManager arena so hash-consing stays
/// lock-free and the pool only has to hand out indices. The serve layer
/// multiplexes independent verification requests over the same workers via
/// submit().
///
/// Determinism: parallelFor assigns each index exactly once and callers
/// collect results into index-addressed slots, so output is independent of
/// the worker interleaving and of the pool size. A pool of one thread (or
/// N <= 1) runs everything inline on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_THREADPOOL_H
#define NV_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace nv {

class ThreadPool {
public:
  /// Spawns \p NumThreads - 1 workers (the calling thread participates in
  /// every parallelFor). NumThreads == 0 means defaultThreadCount().
  explicit ThreadPool(unsigned NumThreadsIn = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumThreads; }

  /// Runs Fn(0) ... Fn(N-1), distributing indices over the pool, and
  /// blocks until all have finished. Indices are claimed atomically, so
  /// each runs exactly once; the order across workers is unspecified.
  /// The first exception thrown by any task is rethrown here after all
  /// claimed tasks finish. Not reentrant: do not call parallelFor from
  /// inside a task of the same pool.
  void parallelFor(size_t N, const std::function<void(size_t)> &Fn);

  /// Enqueues one independent task for asynchronous execution on a worker
  /// thread. Tasks must not throw (a task that lets an exception escape
  /// terminates the process — request executors catch at their boundary)
  /// and must not call parallelFor or submit-and-wait on this same pool
  /// from inside the task. With no workers (a pool of one thread) the task
  /// runs inline on the calling thread before submit returns, so a task is
  /// never silently dropped. Tasks still queued at destruction time run
  /// inline in the destructor for the same reason: anyone waiting on a
  /// task's side effects is guaranteed to see them.
  void submit(std::function<void()> Task);

  struct Stats {
    uint64_t TasksRun = 0;         ///< Total indices executed.
    uint64_t ParallelForCalls = 0; ///< parallelFor invocations.
    double WorkerIdleMs = 0;       ///< Worker time spent waiting for work.
    uint64_t AsyncSubmitted = 0;   ///< submit() calls.
    uint64_t AsyncCompleted = 0;   ///< Submitted tasks finished.
    size_t AsyncQueued = 0;        ///< Submitted tasks not yet started.
    size_t AsyncActive = 0;        ///< Submitted tasks currently running.
  };
  Stats stats() const;

  /// Lock-free backlog accounting for admission control: submitted tasks
  /// not yet started / currently running. One relaxed load each — callers
  /// that must decide whether to shed a request poll these on every
  /// submission, so they cannot take the pool mutex.
  size_t queuedTasks() const {
    return AsyncQueuedCount.load(std::memory_order_relaxed);
  }
  size_t activeTasks() const {
    return AsyncActive.load(std::memory_order_relaxed);
  }

  /// The NV_THREADS environment variable if set (clamped to >= 1), else
  /// std::thread::hardware_concurrency(), else 1.
  static unsigned defaultThreadCount();

private:
  /// One parallelFor invocation. Heap-allocated and shared with workers so
  /// a worker that races past the end of an old job can never claim
  /// indices of a newer one (each job has its own counters).
  struct Job {
    const std::function<void(size_t)> *Fn = nullptr;
    size_t N = 0;
    std::atomic<size_t> Next{0};    ///< Next unclaimed index.
    std::atomic<size_t> Pending{0}; ///< Tasks not yet finished.
    std::mutex ErrorM;
    std::exception_ptr FirstError;
  };

  void workerLoop();
  void drain(const std::shared_ptr<Job> &J);
  void runAsyncTask(std::function<void()> Task);

  unsigned NumThreads;
  std::vector<std::thread> Workers;

  mutable std::mutex M; ///< mutable: stats() reads AsyncQ.size() under it.
  std::condition_variable WorkCv; ///< Signals a new job/task (or shutdown).
  std::condition_variable DoneCv; ///< Signals a job's Pending reached zero.
  uint64_t Generation = 0;        ///< Bumped once per parallelFor.
  bool Stopping = false;
  std::shared_ptr<Job> Current;   ///< Guarded by M.
  std::deque<std::function<void()>> AsyncQ; ///< Guarded by M.

  std::atomic<uint64_t> TasksRun{0};
  std::atomic<uint64_t> ParallelForCalls{0};
  std::atomic<uint64_t> IdleMicros{0};
  std::atomic<uint64_t> AsyncSubmitted{0};
  std::atomic<uint64_t> AsyncCompleted{0};
  std::atomic<size_t> AsyncActive{0};
  std::atomic<size_t> AsyncQueuedCount{0}; ///< Mirrors AsyncQ.size().
};

} // namespace nv

#endif // NV_SUPPORT_THREADPOOL_H
