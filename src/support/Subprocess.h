//===- Subprocess.h - Child-process spawn/wait/backoff helpers --*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small POSIX process toolkit shared by everything in nv-cpp that
/// owns child processes: the `nv serve --supervise` supervisor
/// (serve/Supervisor.cpp) and the crash-isolated worker fleet
/// (support/Fleet.cpp). Three pieces:
///
///  - ChildExit / classifyExitStatus: one classification of a waitpid
///    status — deliberate exit code vs terminating signal — so restart
///    policies and operator-facing "last exit" strings agree everywhere.
///
///  - nextRestartDelayMs: the pure capped-exponential backoff schedule
///    (delay(N) = min(Base * 2^(N-1), Cap)) both restart loops use.
///
///  - spawnProcess / getExecutablePath: fork+exec with fd remapping and
///    signal-state hygiene. The child resets disposition AND mask before
///    exec — a coordinator thread typically runs with SIGINT/SIGTERM
///    blocked (Resume.h's GracefulShutdown), and a blocked mask survives
///    exec, which would make workers ignore a graceful SIGTERM drain.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_SUBPROCESS_H
#define NV_SUPPORT_SUBPROCESS_H

#include <string>
#include <sys/types.h>
#include <utility>
#include <vector>

namespace nv {

/// How a reaped child ended. Default-constructed = "never exited".
struct ChildExit {
  bool Signaled = false;
  int Code = 0;   ///< WEXITSTATUS when !Signaled.
  int Signal = 0; ///< WTERMSIG when Signaled.

  /// Compact operator-facing token: "code:N" or "signal:N". Surfaced in
  /// the serve `health` verb and fleet stats.
  std::string describe() const;
};

/// Folds a raw waitpid(2) status into a ChildExit.
ChildExit classifyExitStatus(int WaitStatus);

/// Pure backoff schedule (unit-tested): the delay before restart number
/// \p ConsecutiveFailures (1-based), exponential from \p BaseMs, capped
/// at \p CapMs. Overflow-safe for any failure count.
unsigned nextRestartDelayMs(unsigned ConsecutiveFailures, unsigned BaseMs,
                            unsigned CapMs);

/// Absolute path of the running executable (/proc/self/exe), or "" when
/// it cannot be resolved. Fleet coordinators re-exec themselves as
/// workers through this.
std::string getExecutablePath();

/// fork+execv of \p Argv (argv[0] is the path). \p FdMap entries are
/// (ChildFd, ParentFd) dup2'd in the child before exec (at most 8; a
/// ParentFd equal to its ChildFd just has CLOEXEC cleared), so pipe ends
/// can be pinned to well-known descriptors; parent-side descriptors the
/// child must not inherit should carry O_CLOEXEC. \p SetEnv /\p UnsetEnv
/// adjust the child's environment between fork and exec (the same
/// precedent Supervisor.cpp set with NV_SERVE_RESTARTS). The child
/// restores default signal dispositions and an empty signal mask.
/// Returns the child pid, or -1 with \p ErrorOut set. Exec failure
/// surfaces as the child exiting 127.
pid_t spawnProcess(const std::vector<std::string> &Argv,
                   const std::vector<std::pair<int, int>> &FdMap,
                   const std::vector<std::pair<std::string, std::string>> &SetEnv,
                   const std::vector<std::string> &UnsetEnv,
                   std::string &ErrorOut);

/// waitpid wrapper. Blocking mode retries EINTR; non-blocking uses
/// WNOHANG. Returns 1 with \p Out filled when the child was reaped, 0
/// when it is still running (non-blocking only), -1 on a wait error.
int waitForChild(pid_t Pid, bool Block, ChildExit &Out);

} // namespace nv

#endif // NV_SUPPORT_SUBPROCESS_H
