//===- Diagnostics.cpp - Source locations and diagnostics -----------------===//

#include "support/Diagnostics.h"

#include <cstdio>

using namespace nv;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  const char *Prefix = "error";
  if (Kind == DiagKind::Warning)
    Prefix = "warning";
  else if (Kind == DiagKind::Note)
    Prefix = "note";
  return Loc.str() + ": " + Prefix + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::printToStderr() const {
  std::fprintf(stderr, "%s", str().c_str());
}
