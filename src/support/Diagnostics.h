//===- Diagnostics.h - Source locations and diagnostics ---------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic engine shared by the lexer, parser,
/// type checker and frontend. Recoverable (user-input) errors are reported
/// here rather than via exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_DIAGNOSTICS_H
#define NV_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace nv {

/// A position in an NV source buffer (1-based line/column, 0 = unknown).
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

enum class DiagKind { Error, Warning, Note };

/// A single diagnostic message attached to a source location.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while processing one compilation unit.
///
/// The engine never aborts; callers check \c hasErrors() at phase
/// boundaries and stop the pipeline when user input was malformed.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Error, Loc, Msg});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Warning, Loc, Msg});
  }
  void note(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Note, Loc, Msg});
  }

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

  /// Writes all diagnostics to stderr.
  void printToStderr() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace nv

#endif // NV_SUPPORT_DIAGNOSTICS_H
