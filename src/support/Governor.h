//===- Governor.h - Run governance: budgets, deadlines, cancellation -*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run-governance layer. A production service cannot let one bad job
/// take the process down: non-terminating policies (paper footnote 2),
/// solver blow-ups, and MTBDD arena growth must all degrade into a
/// *structured, reportable* outcome instead of an abort or a hang.
///
/// Three pieces:
///
///  - RunBudget / Governor: a wall-clock deadline, a unified step budget
///    (subsuming the old ad-hoc SimOptions/FtOptions::MaxSteps pop
///    budgets), an MTBDD live-node budget, and an approximate heap
///    watermark, plus an optional shared CancelToken. Engines arm a
///    Governor::Scope at entry; cheap safe points — simulator worklist
///    pop, MTBDD apply-cache miss and table grow, evaluator allocation,
///    SMT encode loop, solver check — poll the thread-local governor
///    chain and throw EngineError when a budget trips. Safe points sit
///    only where engine state is consistent (before a mutation), so
///    unwinding leaves arenas and tables valid.
///
///  - EngineError / RunOutcome: the recoverable replacement for the old
///    user-triggerable fatalError aborts. Engines catch EngineError at
///    their boundary and surface a RunOutcome; sharded engines catch per
///    job, so one governed job's failure never poisons sibling shards.
///
///  - FaultInject: deterministic fault injection. NV_FAULT_INJECT=
///    "<site>:<countdown>[,<site>:<countdown>]" arms a countdown per safe-
///    point site; the countdown'th hit of that site throws EngineError
///    with RunStatus::FaultInjected. Tests and CI use it to prove every
///    degradation path recovers.
///
/// Threading: the governor chain is thread-local. A Scope governs the
/// arming thread only; sharded engines arm one Scope per job inside the
/// worker lambda (sharing the caller's CancelToken through the budget),
/// which is what confines a budget trip to the one governed job.
/// FaultInject countdowns are process-global atomics: the N'th hit
/// process-wide fires, whichever thread performs it.
///
//===----------------------------------------------------------------------===//

#ifndef NV_SUPPORT_GOVERNOR_H
#define NV_SUPPORT_GOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace nv {

//===----------------------------------------------------------------------===//
// RunOutcome
//===----------------------------------------------------------------------===//

/// How a governed engine run ended. Everything except Ok is a graceful
/// degradation: the engine returned a structured result instead of
/// aborting the process.
enum class RunStatus : uint8_t {
  Ok = 0,
  DeadlineExceeded,   ///< RunBudget::DeadlineMs elapsed.
  StepBudgetExceeded, ///< RunBudget::MaxSteps work units consumed.
  NodeBudgetExceeded, ///< MTBDD live nodes exceeded RunBudget::MaxLiveNodes.
  HeapBudgetExceeded, ///< Approximate heap use exceeded RunBudget::MaxHeapBytes.
  Canceled,           ///< The run's CancelToken was triggered.
  FaultInjected,      ///< A deterministic NV_FAULT_INJECT countdown fired.
  Overloaded,         ///< Shed by serve admission control: the request was
                      ///< never run. Carries retry_after_ms in the serve
                      ///< response; a resource-limit (exit 3) outcome.
  Quarantined,        ///< A fleet poison job: it killed PoisonThreshold
                      ///< workers and was pulled from the queue with a repro
                      ///< artifact instead of being retried forever. A
                      ///< resource-limit (exit 3) outcome; never transient.
  EvalError,          ///< User-program-triggerable semantic error (the old
                      ///< recoverable fatalError class: inexhaustive match,
                      ///< unencodable type, non-function application, ...).
  InternalError,      ///< An nv-cpp bug surfaced recoverably.
};

/// Stable lowercase-kebab name ("deadline-exceeded", ...).
const char *runStatusName(RunStatus S);
/// Parses a runStatusName back; returns false on unknown names. Used when
/// deserializing journaled outcomes (Resume.h).
bool runStatusFromName(const std::string &Name, RunStatus &Out);

/// True for the budget/cancellation/fault statuses: the engine was told to
/// stop, nothing is semantically wrong with the input or the code. These
/// outcomes reduce to one canonical "skip" fingerprint in the differential
/// oracle and map to process exit code 3.
bool isResourceLimit(RunStatus S);

/// The structured result of a governed run.
struct RunOutcome {
  RunStatus Status = RunStatus::Ok;
  std::string Detail;     ///< Human-readable explanation (may be empty).
  const char *Site = "";  ///< Safe-point site that tripped ("" = n/a).

  bool ok() const { return Status == RunStatus::Ok; }
  bool resourceLimit() const { return isResourceLimit(Status); }

  /// "ok", or "<status>@<site>: <detail>".
  std::string str() const;
};

/// Maps an outcome to the documented process exit codes: 0 ok, 2 user
/// error (EvalError), 3 resource-exhausted (budgets, cancellation,
/// injected faults), 4 internal bug. (1, property-falsified, is not an
/// outcome — drivers return it from their own verdict.)
int exitCodeForOutcome(const RunOutcome &O);

//===----------------------------------------------------------------------===//
// EngineError
//===----------------------------------------------------------------------===//

/// Thrown at safe points (budget trips, cancellation, injected faults) and
/// by evalError() on user-triggerable semantic errors. Engines catch it at
/// their boundary and return the carried RunOutcome; sharded engines catch
/// per job. Never deliberately thrown across a library API boundary — a
/// propagating EngineError means an engine forgot its catch, and the CLI
/// top-level handler still turns it into a structured exit.
class EngineError : public std::exception {
public:
  explicit EngineError(RunOutcome O) : O(std::move(O)) {
    Rendered = this->O.str();
  }
  const RunOutcome &outcome() const { return O; }
  const char *what() const noexcept override { return Rendered.c_str(); }

private:
  RunOutcome O;
  std::string Rendered;
};

/// Throws EngineError{S, Detail, Site}.
[[noreturn]] void throwEngineError(RunStatus S, const char *Site,
                                   std::string Detail);

/// Recoverable replacement for fatalError on user-triggerable evaluation/
/// encoding paths: throws EngineError with RunStatus::EvalError.
[[noreturn]] void evalError(const std::string &Msg);

//===----------------------------------------------------------------------===//
// CancelToken
//===----------------------------------------------------------------------===//

/// A shared cooperative-cancellation flag. Cheap to poll (one relaxed
/// atomic load); requestCancel() additionally runs registered interrupt
/// hooks so blocking work that cannot poll — a running z3::solver::check —
/// is interrupted too.
class CancelToken {
public:
  void requestCancel();
  bool isCanceled() const { return Flag.load(std::memory_order_relaxed); }
  /// Re-arms the token for a fresh run (hooks are kept).
  void reset() { Flag.store(false, std::memory_order_relaxed); }

  /// Registers \p Fn to run inside requestCancel(); returns an id for
  /// removeInterruptHook. Hooks must be safe to call from any thread and
  /// must not block (z3's context::interrupt qualifies). removeInterruptHook
  /// synchronizes with a concurrent requestCancel: after it returns the
  /// hook is guaranteed not to be running.
  uint64_t addInterruptHook(std::function<void()> Fn);
  void removeInterruptHook(uint64_t Id);

private:
  std::atomic<bool> Flag{false};
  std::mutex HooksM;
  std::vector<std::pair<uint64_t, std::function<void()>>> Hooks;
  uint64_t NextHookId = 1;
};

//===----------------------------------------------------------------------===//
// RunBudget
//===----------------------------------------------------------------------===//

/// Resource limits for one governed run (all 0 / null = unlimited).
struct RunBudget {
  /// Wall-clock deadline in milliseconds, measured from Scope arming.
  double DeadlineMs = 0;
  /// Unified step budget: one step per simulator worklist pop. Subsumes
  /// the old SimOptions::MaxSteps / FtOptions::MaxSteps pop budgets.
  uint64_t MaxSteps = 0;
  /// MTBDD live-node budget, checked at apply-cache-miss and table-grow
  /// safe points against the manager's node count.
  size_t MaxLiveNodes = 0;
  /// Approximate heap watermark in bytes (MTBDD nodes + tables + caches),
  /// checked at the same sites.
  size_t MaxHeapBytes = 0;
  /// Optional shared cancellation token, polled at every safe point.
  CancelToken *Cancel = nullptr;

  bool limited() const {
    return DeadlineMs > 0 || MaxSteps > 0 || MaxLiveNodes > 0 ||
           MaxHeapBytes > 0 || Cancel != nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Safe-point sites
//===----------------------------------------------------------------------===//

/// The safe-point inventory. Each site is a point where engine state is
/// consistent and an EngineError may be thrown; the same ids name
/// NV_FAULT_INJECT injection sites.
enum class GovSite : uint8_t {
  SimPop = 0,     ///< "sim-pop": simulator worklist pop (counts one step).
  ApplyCacheMiss, ///< "apply-cache-miss": MTBDD op-cache miss, pre-recursion.
  TableGrow,      ///< "table-grow": MTBDD unique/leaf table growth, pre-rebuild.
  EvalAlloc,      ///< "alloc": value-arena interning of a new value.
  SmtEncode,      ///< "smt-encode": SMT per-node encode loop.
  SolverCheck,    ///< "solver-check": immediately before z3 solver.check().
  // Serve request-lifecycle sites (hit only by the nv serve daemon; no
  // engine state to keep consistent, they exist so chaos/fault CI can
  // fail each stage of the request path deterministically).
  ServeAccept,    ///< "serve-accept": request admission, before journaling.
  ServeEnqueue,   ///< "serve-enqueue": request dispatch onto the pool.
  ServeRespond,   ///< "serve-respond": response finalization, pre-journal-done.
  // Fleet job-lifecycle sites (hit by the coordinator/worker layer in
  // Fleet.cpp; they let chaos CI fail spawn, dispatch, and result
  // handling deterministically).
  FleetSpawn,     ///< "fleet-spawn": coordinator, before forking a worker.
  FleetDispatch,  ///< "fleet-dispatch": worker, on receiving a job, before
                  ///< running it (uncaught by design — firing it crashes
                  ///< the worker process, exercising requeue-and-respawn).
  FleetResult,    ///< "fleet-result": coordinator, on receiving a result
                  ///< frame, before recording it.
};
constexpr unsigned NumGovSites = 12;

const char *govSiteName(GovSite S);
/// Parses a site name; returns false on unknown names.
bool govSiteFromName(const std::string &Name, GovSite &Out);

//===----------------------------------------------------------------------===//
// FaultInject
//===----------------------------------------------------------------------===//

/// Deterministic fault injection: per-site atomic countdowns, armed from
/// the NV_FAULT_INJECT environment variable at process start (or
/// programmatically by tests). The N'th process-wide hit of an armed site
/// throws EngineError{FaultInjected}.
class FaultInject {
public:
  /// Arms \p Site to fire on its \p Countdown'th hit (1 = next hit).
  static void arm(GovSite Site, uint64_t Countdown);
  /// Disarms every site.
  static void disarmAll();
  /// Parses "<site>:<countdown>[,<site>:<countdown>]*" and arms the sites;
  /// returns false (arming nothing further) on a malformed spec.
  static bool armFromSpec(const std::string &Spec, std::string *ErrorOut);
  /// Reads NV_FAULT_INJECT; malformed specs abort (a mistyped injection
  /// spec silently injecting nothing would defeat the CI matrix).
  static void armFromEnv();

  /// True when any site is armed. One relaxed load — this is the only cost
  /// ungoverned runs pay on hot paths.
  static bool armed() { return AnyArmed.load(std::memory_order_relaxed); }

  /// Registers a hit of \p Site; throws when its countdown fires. Called
  /// through Governor::pollSafePoint, behind armed().
  static void hit(GovSite Site);

private:
  static std::atomic<bool> AnyArmed;
  static std::atomic<int64_t> Countdown[NumGovSites];
};

//===----------------------------------------------------------------------===//
// Governor
//===----------------------------------------------------------------------===//

/// Enforces one RunBudget over the current thread. Armed via Governor::
/// Scope; nested scopes form a chain and every safe point checks the whole
/// chain (innermost first), so an engine's own budget and an outer
/// driver's deadline compose.
class Governor {
public:
  /// RAII arming. A Scope with an unlimited budget arms nothing and costs
  /// nothing at safe points.
  class Scope {
  public:
    explicit Scope(const RunBudget &B);
    ~Scope();
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Governor *G = nullptr;
  };

  /// The innermost governor armed on this thread, or null.
  static Governor *current() { return Head; }

  /// True when any safe-point work is needed on this thread (a governor is
  /// armed or fault injection is active). Hot paths branch on this before
  /// computing poll arguments.
  static bool active() { return Head != nullptr || FaultInject::armed(); }

  /// The safe-point check: fault injection first, then every governor in
  /// the chain. \p LiveNodes / \p HeapBytes carry the MTBDD manager's
  /// occupancy at MTBDD sites (0 elsewhere). Throws EngineError when a
  /// countdown or budget trips.
  static void pollSafePoint(GovSite Site, size_t LiveNodes = 0,
                            size_t HeapBytes = 0) {
    if (FaultInject::armed())
      FaultInject::hit(Site);
    for (Governor *G = Head; G; G = G->Prev)
      G->checkOne(Site, LiveNodes, HeapBytes);
  }

  /// Milliseconds until the tightest deadline in this thread's chain, or
  /// a negative value when no deadline is armed. Used to derive solver
  /// timeouts so z3 respects the run's deadline.
  static double remainingMs();

  const RunBudget &budget() const { return B; }
  uint64_t stepsTaken() const { return Steps; }

private:
  friend class Scope;
  explicit Governor(const RunBudget &Budget);

  void checkOne(GovSite Site, size_t LiveNodes, size_t HeapBytes);
  [[noreturn]] void trip(RunStatus S, GovSite Site, std::string Detail);

  RunBudget B;
  Governor *Prev = nullptr;
  std::chrono::steady_clock::time_point Deadline{};
  bool HasDeadline = false;
  uint64_t Steps = 0;
  /// Amortizes clock reads on the hot sites (apply-cache-miss, alloc);
  /// cold sites check the deadline on every poll.
  uint32_t DeadlineCountdown = 0;
  static constexpr uint32_t DeadlinePollEvery = 64;

  static thread_local Governor *Head;
};

} // namespace nv

#endif // NV_SUPPORT_GOVERNOR_H
