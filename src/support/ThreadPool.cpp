//===- ThreadPool.cpp - Fixed-size worker pool --------------------------------===//

#include "support/ThreadPool.h"

#include <chrono>
#include <cstdlib>

using namespace nv;

unsigned ThreadPool::defaultThreadCount() {
  if (const char *Env = std::getenv("NV_THREADS")) {
    int N = std::atoi(Env);
    if (N >= 1)
      return static_cast<unsigned>(N);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw ? Hw : 1;
}

ThreadPool::ThreadPool(unsigned NumThreadsIn)
    : NumThreads(NumThreadsIn ? NumThreadsIn : defaultThreadCount()) {
  Workers.reserve(NumThreads - 1);
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(M);
    Stopping = true;
  }
  WorkCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  // Workers exit without draining the async queue; run whatever is left
  // inline so a task's observable side effects (a completion flag another
  // thread waits on) are never lost.
  std::deque<std::function<void()>> Leftover;
  {
    std::lock_guard<std::mutex> L(M);
    Leftover.swap(AsyncQ);
    AsyncQueuedCount.store(0, std::memory_order_relaxed);
  }
  for (auto &T : Leftover)
    runAsyncTask(std::move(T));
}

void ThreadPool::runAsyncTask(std::function<void()> Task) {
  AsyncActive.fetch_add(1, std::memory_order_relaxed);
  Task();
  AsyncActive.fetch_sub(1, std::memory_order_relaxed);
  AsyncCompleted.fetch_add(1, std::memory_order_relaxed);
  TasksRun.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::submit(std::function<void()> Task) {
  AsyncSubmitted.fetch_add(1, std::memory_order_relaxed);
  if (Workers.empty()) {
    // A pool of one thread has nobody to hand the task to: run it inline
    // now, preserving the "never dropped" guarantee.
    runAsyncTask(std::move(Task));
    return;
  }
  {
    std::lock_guard<std::mutex> L(M);
    AsyncQ.push_back(std::move(Task));
    AsyncQueuedCount.store(AsyncQ.size(), std::memory_order_relaxed);
  }
  WorkCv.notify_one();
}

void ThreadPool::drain(const std::shared_ptr<Job> &J) {
  size_t I;
  while ((I = J->Next.fetch_add(1, std::memory_order_relaxed)) < J->N) {
    try {
      (*J->Fn)(I);
    } catch (...) {
      std::lock_guard<std::mutex> L(J->ErrorM);
      if (!J->FirstError)
        J->FirstError = std::current_exception();
    }
    TasksRun.fetch_add(1, std::memory_order_relaxed);
    if (J->Pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> L(M);
      DoneCv.notify_all();
    }
  }
}

void ThreadPool::workerLoop() {
  uint64_t SeenGeneration = 0;
  for (;;) {
    std::shared_ptr<Job> J;
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> L(M);
      auto IdleStart = std::chrono::steady_clock::now();
      WorkCv.wait(L, [&] {
        return Stopping || Generation != SeenGeneration || !AsyncQ.empty();
      });
      IdleMicros.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - IdleStart)
              .count(),
          std::memory_order_relaxed);
      if (Stopping)
        return;
      if (Generation != SeenGeneration) {
        // parallelFor jobs take priority: every worker participates so the
        // blocking caller finishes as fast as possible.
        SeenGeneration = Generation;
        J = Current;
      } else if (!AsyncQ.empty()) {
        Task = std::move(AsyncQ.front());
        AsyncQ.pop_front();
        AsyncQueuedCount.store(AsyncQ.size(), std::memory_order_relaxed);
      }
    }
    if (J)
      drain(J);
    else if (Task)
      runAsyncTask(std::move(Task));
  }
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Fn) {
  ParallelForCalls.fetch_add(1, std::memory_order_relaxed);
  if (N == 0)
    return;
  if (NumThreads == 1 || N == 1) {
    // Inline: no handoff overhead, trivially deterministic.
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    TasksRun.fetch_add(N, std::memory_order_relaxed);
    return;
  }
  // Each job gets its own counters so a worker that raced past the end of
  // an old job can never claim indices of a new one.
  auto J = std::make_shared<Job>();
  J->Fn = &Fn;
  J->N = N;
  J->Pending.store(N, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(M);
    Current = J;
    ++Generation;
  }
  WorkCv.notify_all();
  drain(J); // The calling thread works too.
  {
    std::unique_lock<std::mutex> L(M);
    DoneCv.wait(L,
                [&] { return J->Pending.load(std::memory_order_acquire) == 0; });
    if (Current == J)
      Current.reset();
  }
  if (J->FirstError)
    std::rethrow_exception(J->FirstError);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats S;
  S.TasksRun = TasksRun.load(std::memory_order_relaxed);
  S.ParallelForCalls = ParallelForCalls.load(std::memory_order_relaxed);
  S.WorkerIdleMs =
      static_cast<double>(IdleMicros.load(std::memory_order_relaxed)) / 1000.0;
  S.AsyncSubmitted = AsyncSubmitted.load(std::memory_order_relaxed);
  S.AsyncCompleted = AsyncCompleted.load(std::memory_order_relaxed);
  S.AsyncActive = AsyncActive.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(M);
    S.AsyncQueued = AsyncQ.size();
  }
  return S;
}
