//===- Compile.h - Closure compilation ("native" mode) ----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native-execution substitute for the paper's NV-to-OCaml compiler
/// (Sec. 5.1). NV expressions are compiled once into a tree of C++
/// closures: variables become frame-slot indices resolved at compile time,
/// record labels become precomputed field offsets, and patterns become
/// pre-compiled matchers. The simulator then executes compiled code with
/// no name lookups, no environment allocation and no AST dispatch —
/// amortizing the one-time compilation cost across simulator iterations,
/// exactly the axis Fig. 13c/14 measure. Map leaves still cross between
/// interned values and the compiled representation, reproducing the
/// embed/unembed overhead the paper discusses.
///
//===----------------------------------------------------------------------===//

#ifndef NV_EVAL_COMPILE_H
#define NV_EVAL_COMPILE_H

#include "core/Ast.h"
#include "eval/ProgramEvaluator.h"

namespace nv {

/// Runtime frame: slot-indexed values (globals prefix + locals).
using Frame = std::vector<const Value *>;
/// A compiled expression: evaluates against a frame, leaving its size
/// unchanged.
using CExpr = std::function<const Value *(Frame &)>;

/// Compiles expressions against a lexical scope of named slots.
class Compiler {
public:
  explicit Compiler(NvContext &Ctx) : Ctx(Ctx) {}

  /// Compiles \p E against the current scope. Expressions must be
  /// type-checked.
  CExpr compile(const ExprPtr &E);

  /// Appends a named slot to the scope (top-level declarations).
  void pushGlobal(const std::string &Name) { Scope.push_back(Name); }

  size_t scopeSize() const { return Scope.size(); }

private:
  NvContext &Ctx;
  std::vector<std::string> Scope;

  int slotOf(const std::string &Name) const;
  CExpr compileOper(const ExprPtr &E);
  /// Compiles a pattern match attempt: pushes bindings onto the frame on
  /// success (caller resets the frame on failure). Extends Scope with the
  /// pattern's bound variables.
  std::function<bool(const Value *, Frame &)>
  compilePattern(const PatternPtr &P, const TypePtr &Ty);
};

/// Closure-compiled program evaluator (the "NV-native" series of Fig. 13c
/// and Fig. 14). Compilation happens in the constructor; construction time
/// is the analog of the paper's OCaml compile time.
class CompiledProgramEvaluator : public ProtocolEvaluator {
public:
  CompiledProgramEvaluator(NvContext &Ctx, const Program &P,
                           const SymbolicAssignment &Sym = {});
  ~CompiledProgramEvaluator() override;

  NvContext &ctx() override { return Ctx; }
  const Value *init(uint32_t U) override;
  const Value *trans(uint32_t U, uint32_t V, const Value *A) override;
  const Value *merge(uint32_t U, const Value *A, const Value *B) override;
  bool hasAssert() const override { return AssertClo != nullptr; }
  bool assertAt(uint32_t U, const Value *A) override;
  bool requiresHold() const override { return RequiresOk; }

private:
  NvContext &Ctx;
  Frame Globals;
  const Value *InitClo = nullptr;
  const Value *TransClo = nullptr;
  const Value *MergeClo = nullptr;
  const Value *AssertClo = nullptr;
  bool RequiresOk = true;

  std::map<std::pair<uint32_t, uint32_t>, const Value *> TransPartial;
  std::map<uint32_t, const Value *> MergePartial;
  std::map<uint32_t, const Value *> AssertPartial;

  // GC root discipline: the globals frame and cached partial applications
  // are pinned for the evaluator's lifetime (compiled closures capture
  // interned constants only through these).
  std::vector<const Value *> Pinned;
  const Value *pinned(const Value *V) {
    Ctx.pinValue(V);
    Pinned.push_back(V);
    return V;
  }
};

} // namespace nv

#endif // NV_EVAL_COMPILE_H
