//===- Interp.h - Tree-walking NV interpreter -------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The environment-based interpreter for NV's functional core — the
/// "interpreted" execution mode of Sec. 5.1. Map operations are delegated
/// to the MTBDD runtime in NvContext. The closure-compiled mode lives in
/// Compile.h.
///
//===----------------------------------------------------------------------===//

#ifndef NV_EVAL_INTERP_H
#define NV_EVAL_INTERP_H

#include "core/Ast.h"
#include "eval/NvContext.h"

namespace nv {

/// Immutable environments as shared cons cells.
struct EnvNode {
  std::shared_ptr<const EnvNode> Parent;
  std::string Name;
  const Value *V;
};
using EnvPtr = std::shared_ptr<const EnvNode>;

EnvPtr envBind(EnvPtr Env, std::string Name, const Value *V);
/// Innermost binding of \p Name, or null.
const Value *envLookup(const EnvNode *Env, const std::string &Name);

/// Tree-walking evaluator over type-checked expressions. Expressions must
/// have been produced by typeCheck (record/field evaluation relies on the
/// resolved types stored in Expr::Ty).
class Interp {
public:
  explicit Interp(NvContext &Ctx) : Ctx(Ctx) {}

  NvContext &ctx() { return Ctx; }

  /// Evaluates \p E under \p Env. Fatal on internal errors (ill-typed
  /// trees, inexhaustive matches): user input was validated upstream.
  const Value *eval(const Expr *E, const EnvPtr &Env);

  /// Attempts to match \p V (of type \p Ty) against \p P, extending
  /// \p Env with the pattern's bindings on success.
  bool matchPattern(const Pattern *P, const Value *V, const TypePtr &Ty,
                    EnvPtr &Env);

private:
  NvContext &Ctx;

  const Value *evalOper(const Expr *E, const EnvPtr &Env);
};

/// An interpreter closure: a Fun expression plus its defining environment.
class InterpClosure : public ClosureData {
public:
  InterpClosure(Interp &I, const Expr *Fn, EnvPtr Env)
      : I(I), Fn(Fn), Env(std::move(Env)) {}

  const Value *call(const Value *Arg) const override;
  uint64_t cacheKey() const override;
  const Expr *sourceExpr() const override { return Fn; }
  const Value *lookupFree(const std::string &Name) const override {
    return envLookup(Env.get(), Name);
  }

private:
  Interp &I;
  const Expr *Fn;
  EnvPtr Env;
  mutable uint64_t Key = 0; ///< Lazily computed canonical id.
};

} // namespace nv

#endif // NV_EVAL_INTERP_H
