//===- Compile.cpp - Closure compilation ("native" mode) --------------------===//

#include "eval/Compile.h"

#include "support/Fatal.h"
#include "support/Governor.h"

#include <cassert>

using namespace nv;

namespace {

/// A compiled closure: pre-compiled body plus a snapshot of the captured
/// free-variable values. Calling copies the capture into a fresh frame and
/// pushes the argument — no environment search at runtime.
class CompiledClosure : public ClosureData {
public:
  CompiledClosure(NvContext &Ctx, const Expr *Src,
                  std::shared_ptr<const std::vector<std::string>> FreeNames,
                  std::shared_ptr<const CExpr> Body,
                  std::vector<const Value *> Captured)
      : Ctx(Ctx), Src(Src), FreeNames(std::move(FreeNames)),
        Body(std::move(Body)), Captured(std::move(Captured)) {}

  const Value *call(const Value *Arg) const override {
    Frame F;
    F.reserve(Captured.size() + 8);
    F = Captured;
    F.push_back(Arg);
    return (*Body)(F);
  }

  uint64_t cacheKey() const override {
    if (!Key)
      Key = Ctx.closureId(Src, Captured);
    return Key;
  }

  const Expr *sourceExpr() const override { return Src; }

  const Value *lookupFree(const std::string &Name) const override {
    for (size_t I = 0; I < FreeNames->size(); ++I)
      if ((*FreeNames)[I] == Name)
        return Captured[I];
    return nullptr;
  }

private:
  NvContext &Ctx;
  const Expr *Src;
  std::shared_ptr<const std::vector<std::string>> FreeNames;
  std::shared_ptr<const CExpr> Body;
  std::vector<const Value *> Captured;
  mutable uint64_t Key = 0;
};

} // namespace

int Compiler::slotOf(const std::string &Name) const {
  for (size_t I = Scope.size(); I-- > 0;)
    if (Scope[I] == Name)
      return static_cast<int>(I);
  return -1;
}

std::function<bool(const Value *, Frame &)>
Compiler::compilePattern(const PatternPtr &P, const TypePtr &RawTy) {
  TypePtr Ty = resolve(RawTy);
  switch (P->Kind) {
  case PatternKind::Wild:
    return [](const Value *, Frame &) { return true; };
  case PatternKind::Var: {
    Scope.push_back(P->Name);
    return [](const Value *V, Frame &F) {
      F.push_back(V);
      return true;
    };
  }
  case PatternKind::Lit: {
    const Value *L = Ctx.valueOfLiteral(P->Lit);
    return [L](const Value *V, Frame &) { return V == L; };
  }
  case PatternKind::None:
    return [](const Value *V, Frame &) { return V->isNone(); };
  case PatternKind::Some: {
    auto Inner = compilePattern(P->Elems[0], Ty->Elems[0]);
    return [Inner](const Value *V, Frame &F) {
      return V->isSome() && Inner(V->Inner, F);
    };
  }
  case PatternKind::Tuple: {
    if (Ty->Kind == TypeKind::Edge) {
      assert(P->Elems.size() == 2 && "edge patterns are pairs");
      auto P1 = compilePattern(P->Elems[0], Type::nodeTy());
      auto P2 = compilePattern(P->Elems[1], Type::nodeTy());
      NvContext *C = &Ctx;
      return [P1, P2, C](const Value *V, Frame &F) {
        return P1(C->nodeV(V->N), F) && P2(C->nodeV(V->N2), F);
      };
    }
    std::vector<std::function<bool(const Value *, Frame &)>> Subs;
    for (size_t I = 0; I < P->Elems.size(); ++I)
      Subs.push_back(compilePattern(P->Elems[I], Ty->Elems[I]));
    return [Subs](const Value *V, Frame &F) {
      for (size_t I = 0; I < Subs.size(); ++I)
        if (!Subs[I](V->Elems[I], F))
          return false;
      return true;
    };
  }
  case PatternKind::Record: {
    assert(Ty->Kind == TypeKind::Record && "record pattern type");
    std::vector<std::pair<int, std::function<bool(const Value *, Frame &)>>>
        Subs;
    for (size_t I = 0; I < P->Labels.size(); ++I) {
      int Idx = Ty->labelIndex(P->Labels[I]);
      assert(Idx >= 0 && "label checked by the type checker");
      Subs.emplace_back(Idx, compilePattern(P->Elems[I], Ty->Elems[Idx]));
    }
    return [Subs](const Value *V, Frame &F) {
      for (const auto &[Idx, Sub] : Subs)
        if (!Sub(V->Elems[Idx], F))
          return false;
      return true;
    };
  }
  }
  nv_unreachable("covered switch");
}

CExpr Compiler::compile(const ExprPtr &E) {
  switch (E->Kind) {
  case ExprKind::Const: {
    const Value *V = Ctx.valueOfLiteral(E->Lit);
    return [V](Frame &) { return V; };
  }
  case ExprKind::Var: {
    int Slot = slotOf(E->Name);
    if (Slot < 0)
      evalError("compile: unbound variable " + E->Name);
    return [Slot](Frame &F) { return F[Slot]; };
  }
  case ExprKind::Let: {
    CExpr Init = compile(E->Args[0]);
    Scope.push_back(E->Name);
    CExpr Body = compile(E->Args[1]);
    Scope.pop_back();
    return [Init, Body](Frame &F) {
      F.push_back(Init(F));
      const Value *V = Body(F);
      F.pop_back();
      return V;
    };
  }
  case ExprKind::Fun: {
    // Compile the body once against [free vars..., param]; each runtime
    // closure creation snapshots the free values from the current frame.
    auto FreeNames = std::make_shared<const std::vector<std::string>>(
        freeVarsOf(E.get()));
    std::vector<int> FreeSlots;
    for (const std::string &Name : *FreeNames) {
      int Slot = slotOf(Name);
      if (Slot < 0)
        evalError("compile: unbound free variable " + Name);
      FreeSlots.push_back(Slot);
    }
    std::vector<std::string> Saved = std::move(Scope);
    Scope = *FreeNames;
    Scope.push_back(E->Name);
    auto Body = std::make_shared<const CExpr>(compile(E->Args[0]));
    Scope = std::move(Saved);

    NvContext *C = &Ctx;
    const Expr *Src = E.get();
    return [C, Src, FreeNames, FreeSlots, Body](Frame &F) {
      std::vector<const Value *> Captured;
      Captured.reserve(FreeSlots.size());
      for (int Slot : FreeSlots)
        Captured.push_back(F[Slot]);
      return C->closureV(std::make_shared<CompiledClosure>(
          *C, Src, FreeNames, Body, std::move(Captured)));
    };
  }
  case ExprKind::App: {
    CExpr Fn = compile(E->Args[0]);
    CExpr Arg = compile(E->Args[1]);
    NvContext *C = &Ctx;
    return [C, Fn, Arg](Frame &F) { return C->applyClosure(Fn(F), Arg(F)); };
  }
  case ExprKind::If: {
    CExpr Cond = compile(E->Args[0]);
    CExpr Then = compile(E->Args[1]);
    CExpr Else = compile(E->Args[2]);
    return [Cond, Then, Else](Frame &F) {
      return Cond(F)->B ? Then(F) : Else(F);
    };
  }
  case ExprKind::Match: {
    CExpr Scrut = compile(E->Args[0]);
    TypePtr ScrutTy = E->Args[0]->Ty;
    struct Case {
      std::function<bool(const Value *, Frame &)> Match;
      CExpr Body;
    };
    auto Cases = std::make_shared<std::vector<Case>>();
    for (const MatchCase &C : E->Cases) {
      size_t Mark = Scope.size();
      auto M = compilePattern(C.Pat, ScrutTy);
      CExpr B = compile(C.Body);
      Scope.resize(Mark);
      Cases->push_back({std::move(M), std::move(B)});
    }
    return [Scrut, Cases](Frame &F) -> const Value * {
      const Value *V = Scrut(F);
      size_t Mark = F.size();
      for (const Case &C : *Cases) {
        if (C.Match(V, F)) {
          const Value *R = C.Body(F);
          F.resize(Mark);
          return R;
        }
        F.resize(Mark);
      }
      evalError("inexhaustive match at runtime (compiled)");
    };
  }
  case ExprKind::Oper:
    return compileOper(E);
  case ExprKind::Tuple:
  case ExprKind::Record: {
    auto Subs = std::make_shared<std::vector<CExpr>>();
    for (const ExprPtr &A : E->Args)
      Subs->push_back(compile(A));
    NvContext *C = &Ctx;
    return [C, Subs](Frame &F) {
      std::vector<const Value *> Elems;
      Elems.reserve(Subs->size());
      for (const CExpr &S : *Subs)
        Elems.push_back(S(F));
      return C->tupleV(std::move(Elems));
    };
  }
  case ExprKind::Proj: {
    CExpr Sub = compile(E->Args[0]);
    unsigned Idx = E->Index;
    return [Sub, Idx](Frame &F) { return Sub(F)->Elems[Idx]; };
  }
  case ExprKind::RecordUpdate: {
    CExpr Base = compile(E->Args[0]);
    TypePtr BaseTy = resolve(E->Args[0]->Ty);
    auto Updates = std::make_shared<std::vector<std::pair<int, CExpr>>>();
    for (size_t I = 0; I < E->Labels.size(); ++I) {
      int Idx = BaseTy->labelIndex(E->Labels[I]);
      assert(Idx >= 0 && "label checked by the type checker");
      Updates->emplace_back(Idx, compile(E->Args[I + 1]));
    }
    NvContext *C = &Ctx;
    return [C, Base, Updates](Frame &F) {
      std::vector<const Value *> Elems = Base(F)->Elems;
      for (const auto &[Idx, Sub] : *Updates)
        Elems[Idx] = Sub(F);
      return C->tupleV(std::move(Elems));
    };
  }
  case ExprKind::Field: {
    CExpr Sub = compile(E->Args[0]);
    TypePtr Ty = resolve(E->Args[0]->Ty);
    int Idx = Ty->labelIndex(E->Name);
    assert(Idx >= 0 && "label checked by the type checker");
    return [Sub, Idx](Frame &F) { return Sub(F)->Elems[Idx]; };
  }
  case ExprKind::Some: {
    CExpr Sub = compile(E->Args[0]);
    NvContext *C = &Ctx;
    return [C, Sub](Frame &F) { return C->someV(Sub(F)); };
  }
  case ExprKind::None: {
    const Value *N = Ctx.noneV();
    return [N](Frame &) { return N; };
  }
  }
  nv_unreachable("covered switch");
}

CExpr Compiler::compileOper(const ExprPtr &E) {
  NvContext *C = &Ctx;
  std::vector<CExpr> A;
  for (const ExprPtr &Arg : E->Args)
    A.push_back(compile(Arg));
  switch (E->OpCode) {
  case Op::And:
    return [C, A](Frame &F) {
      return A[0](F)->B ? A[1](F) : C->FalseV;
    };
  case Op::Or:
    return [C, A](Frame &F) { return A[0](F)->B ? C->TrueV : A[1](F); };
  case Op::Not:
    return [C, A](Frame &F) { return C->boolV(!A[0](F)->B); };
  case Op::Eq:
    return [C, A](Frame &F) { return C->boolV(A[0](F) == A[1](F)); };
  case Op::Neq:
    return [C, A](Frame &F) { return C->boolV(A[0](F) != A[1](F)); };
  case Op::Add:
    return [C, A](Frame &F) {
      const Value *L = A[0](F), *R = A[1](F);
      return C->intV(L->I + R->I, L->Width);
    };
  case Op::Sub:
    return [C, A](Frame &F) {
      const Value *L = A[0](F), *R = A[1](F);
      return C->intV(L->I - R->I, L->Width);
    };
  case Op::Lt:
    return [C, A](Frame &F) { return C->boolV(A[0](F)->I < A[1](F)->I); };
  case Op::Le:
    return [C, A](Frame &F) { return C->boolV(A[0](F)->I <= A[1](F)->I); };
  case Op::Gt:
    return [C, A](Frame &F) { return C->boolV(A[0](F)->I > A[1](F)->I); };
  case Op::Ge:
    return [C, A](Frame &F) { return C->boolV(A[0](F)->I >= A[1](F)->I); };
  case Op::MCreate: {
    TypePtr DictTy = resolve(E->Ty);
    assert(DictTy->Kind == TypeKind::Dict && "createDict type");
    if (!isFiniteType(DictTy->Elems[0]))
      evalError("createDict key type " + typeToString(DictTy->Elems[0]) +
                " is not finite; annotate the map's key type");
    TypePtr KeyTy = DictTy->Elems[0];
    return [C, A, KeyTy](Frame &F) { return C->mapCreate(KeyTy, A[0](F)); };
  }
  case Op::MGet:
    return [C, A](Frame &F) { return C->mapGet(A[0](F), A[1](F)); };
  case Op::MSet:
    return [C, A](Frame &F) { return C->mapSet(A[0](F), A[1](F), A[2](F)); };
  case Op::MMap:
    return [C, A](Frame &F) { return C->mapMap(A[0](F), A[1](F)); };
  case Op::MMapIte:
    return [C, A](Frame &F) {
      return C->mapIte(A[0](F), A[1](F), A[2](F), A[3](F));
    };
  case Op::MCombine:
    return [C, A](Frame &F) {
      return C->mapCombine(A[0](F), A[1](F), A[2](F));
    };
  }
  nv_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// CompiledProgramEvaluator
//===----------------------------------------------------------------------===//

CompiledProgramEvaluator::CompiledProgramEvaluator(NvContext &Ctx,
                                                   const Program &P,
                                                   const SymbolicAssignment &Sym)
    : Ctx(Ctx) {
  Compiler C(Ctx);
  std::vector<std::string> Names;
  for (const DeclPtr &D : P.Decls) {
    switch (D->Kind) {
    case DeclKind::Let: {
      CExpr Body = C.compile(D->Body);
      Globals.push_back(Body(Globals));
      C.pushGlobal(D->Name);
      Names.push_back(D->Name);
      break;
    }
    case DeclKind::Symbolic: {
      const Value *V = nullptr;
      auto It = Sym.find(D->Name);
      if (It != Sym.end()) {
        V = It->second;
      } else if (D->Body) {
        CExpr Body = C.compile(D->Body);
        V = Body(Globals);
      } else {
        V = Ctx.defaultValue(D->Ty);
      }
      Globals.push_back(V);
      C.pushGlobal(D->Name);
      Names.push_back(D->Name);
      break;
    }
    case DeclKind::Require: {
      CExpr Body = C.compile(D->Body);
      RequiresOk &= Body(Globals)->isTrue();
      break;
    }
    case DeclKind::TypeAlias:
    case DeclKind::Nodes:
    case DeclKind::Edges:
      break;
    }
  }

  auto Find = [&](const char *Name) -> const Value * {
    for (size_t I = Names.size(); I-- > 0;)
      if (Names[I] == Name)
        return Globals[I];
    return nullptr;
  };
  InitClo = Find("init");
  TransClo = Find("trans");
  MergeClo = Find("merge");
  AssertClo = Find("assert");
  if (!InitClo || !TransClo || !MergeClo)
    evalError("program is missing init/trans/merge declarations");
  // Root the globals frame: compiled closures capture interned constants
  // only through these slots (scalar literals aside), so pinning the frame
  // keeps every diagram a scenario can reach alive across collections.
  for (const Value *V : Globals)
    pinned(V);
}

CompiledProgramEvaluator::~CompiledProgramEvaluator() {
  for (const Value *V : Pinned)
    Ctx.unpinValue(V);
}

const Value *CompiledProgramEvaluator::init(uint32_t U) {
  return Ctx.applyClosure(InitClo, Ctx.nodeV(U));
}

const Value *CompiledProgramEvaluator::trans(uint32_t U, uint32_t V,
                                             const Value *A) {
  auto Key = std::make_pair(U, V);
  auto It = TransPartial.find(Key);
  const Value *Partial;
  if (It != TransPartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(TransClo, Ctx.edgeV(U, V)));
    TransPartial.emplace(Key, Partial);
  }
  return Ctx.applyClosure(Partial, A);
}

const Value *CompiledProgramEvaluator::merge(uint32_t U, const Value *A,
                                             const Value *B) {
  auto It = MergePartial.find(U);
  const Value *Partial;
  if (It != MergePartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(MergeClo, Ctx.nodeV(U)));
    MergePartial.emplace(U, Partial);
  }
  return Ctx.applyClosure(Ctx.applyClosure(Partial, A), B);
}

bool CompiledProgramEvaluator::assertAt(uint32_t U, const Value *A) {
  if (!AssertClo)
    return true;
  auto It = AssertPartial.find(U);
  const Value *Partial;
  if (It != AssertPartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(AssertClo, Ctx.nodeV(U)));
    AssertPartial.emplace(U, Partial);
  }
  return Ctx.applyClosure(Partial, A)->isTrue();
}
