//===- Interp.cpp - Tree-walking NV interpreter ------------------------------===//

#include <cassert>
#include "eval/Interp.h"

#include "core/Printer.h"
#include "support/Fatal.h"
#include "support/Governor.h"

using namespace nv;

EnvPtr nv::envBind(EnvPtr Env, std::string Name, const Value *V) {
  auto N = std::make_shared<EnvNode>();
  N->Parent = std::move(Env);
  N->Name = std::move(Name);
  N->V = V;
  return N;
}

const Value *nv::envLookup(const EnvNode *Env, const std::string &Name) {
  for (const EnvNode *N = Env; N; N = N->Parent.get())
    if (N->Name == Name)
      return N->V;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// InterpClosure
//===----------------------------------------------------------------------===//

const Value *InterpClosure::call(const Value *Arg) const {
  return I.eval(Fn->Args[0].get(), envBind(Env, Fn->Name, Arg));
}

uint64_t InterpClosure::cacheKey() const {
  if (Key)
    return Key;
  std::vector<const Value *> Captured;
  for (const std::string &Name : freeVarsOf(Fn)) {
    const Value *V = envLookup(Env.get(), Name);
    Captured.push_back(V); // null for globals resolved elsewhere is fine
  }
  Key = I.ctx().closureId(Fn, Captured);
  return Key;
}

//===----------------------------------------------------------------------===//
// Pattern matching
//===----------------------------------------------------------------------===//

bool Interp::matchPattern(const Pattern *P, const Value *V, const TypePtr &RawTy,
                          EnvPtr &Env) {
  TypePtr Ty = resolve(RawTy);
  switch (P->Kind) {
  case PatternKind::Wild:
    return true;
  case PatternKind::Var:
    Env = envBind(Env, P->Name, V);
    return true;
  case PatternKind::Lit:
    return V == Ctx.valueOfLiteral(P->Lit);
  case PatternKind::None:
    return V->isNone();
  case PatternKind::Some:
    if (!V->isSome())
      return false;
    return matchPattern(P->Elems[0].get(), V->Inner, Ty->Elems[0], Env);
  case PatternKind::Tuple: {
    if (V->K == Value::Kind::Edge) {
      assert(P->Elems.size() == 2 && "edge patterns are pairs");
      return matchPattern(P->Elems[0].get(), Ctx.nodeV(V->N), Type::nodeTy(),
                          Env) &&
             matchPattern(P->Elems[1].get(), Ctx.nodeV(V->N2), Type::nodeTy(),
                          Env);
    }
    assert(V->K == Value::Kind::Tuple && "tuple pattern on non-tuple");
    if (P->Elems.size() != V->Elems.size())
      evalError("tuple pattern arity mismatch");
    for (size_t I = 0; I < P->Elems.size(); ++I)
      if (!matchPattern(P->Elems[I].get(), V->Elems[I], Ty->Elems[I], Env))
        return false;
    return true;
  }
  case PatternKind::Record: {
    assert(Ty->Kind == TypeKind::Record && "record pattern needs record type");
    for (size_t I = 0; I < P->Labels.size(); ++I) {
      int Idx = Ty->labelIndex(P->Labels[I]);
      assert(Idx >= 0 && "label checked by the type checker");
      if (!matchPattern(P->Elems[I].get(), V->Elems[Idx], Ty->Elems[Idx], Env))
        return false;
    }
    return true;
  }
  }
  nv_unreachable("covered switch");
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

const Value *Interp::eval(const Expr *E, const EnvPtr &Env) {
  switch (E->Kind) {
  case ExprKind::Const:
    return Ctx.valueOfLiteral(E->Lit);
  case ExprKind::Var: {
    const Value *V = envLookup(Env.get(), E->Name);
    if (!V)
      evalError("unbound variable at runtime: " + E->Name);
    return V;
  }
  case ExprKind::Let: {
    const Value *Init = eval(E->Args[0].get(), Env);
    return eval(E->Args[1].get(), envBind(Env, E->Name, Init));
  }
  case ExprKind::Fun:
    return Ctx.closureV(std::make_shared<InterpClosure>(*this, E, Env));
  case ExprKind::App: {
    const Value *Fn = eval(E->Args[0].get(), Env);
    const Value *Arg = eval(E->Args[1].get(), Env);
    return Ctx.applyClosure(Fn, Arg);
  }
  case ExprKind::If: {
    const Value *C = eval(E->Args[0].get(), Env);
    return eval(E->Args[C->B ? 1 : 2].get(), Env);
  }
  case ExprKind::Match: {
    const Value *Scrut = eval(E->Args[0].get(), Env);
    const TypePtr &ScrutTy = E->Args[0]->Ty;
    for (const MatchCase &C : E->Cases) {
      EnvPtr CaseEnv = Env;
      if (matchPattern(C.Pat.get(), Scrut, ScrutTy, CaseEnv))
        return eval(C.Body.get(), CaseEnv);
    }
    evalError("inexhaustive match on " + Scrut->str() + " in " +
              printExpr(std::make_shared<Expr>(*E)));
  }
  case ExprKind::Oper:
    return evalOper(E, Env);
  case ExprKind::Tuple: {
    std::vector<const Value *> Elems;
    Elems.reserve(E->Args.size());
    for (const ExprPtr &A : E->Args)
      Elems.push_back(eval(A.get(), Env));
    return Ctx.tupleV(std::move(Elems));
  }
  case ExprKind::Proj: {
    const Value *V = eval(E->Args[0].get(), Env);
    assert(E->Index < V->Elems.size() && "projection out of range");
    return V->Elems[E->Index];
  }
  case ExprKind::Record: {
    // Parser stores fields in sorted-label order, matching the type.
    std::vector<const Value *> Elems;
    Elems.reserve(E->Args.size());
    for (const ExprPtr &A : E->Args)
      Elems.push_back(eval(A.get(), Env));
    return Ctx.tupleV(std::move(Elems));
  }
  case ExprKind::RecordUpdate: {
    const Value *Base = eval(E->Args[0].get(), Env);
    TypePtr BaseTy = resolve(E->Args[0]->Ty);
    assert(BaseTy->Kind == TypeKind::Record && "update on non-record");
    std::vector<const Value *> Elems = Base->Elems;
    for (size_t I = 0; I < E->Labels.size(); ++I) {
      int Idx = BaseTy->labelIndex(E->Labels[I]);
      assert(Idx >= 0 && "label checked by the type checker");
      Elems[Idx] = eval(E->Args[I + 1].get(), Env);
    }
    return Ctx.tupleV(std::move(Elems));
  }
  case ExprKind::Field: {
    const Value *V = eval(E->Args[0].get(), Env);
    TypePtr Ty = resolve(E->Args[0]->Ty);
    assert(Ty->Kind == TypeKind::Record && "field access on non-record");
    int Idx = Ty->labelIndex(E->Name);
    assert(Idx >= 0 && "label checked by the type checker");
    return V->Elems[Idx];
  }
  case ExprKind::Some:
    return Ctx.someV(eval(E->Args[0].get(), Env));
  case ExprKind::None:
    return Ctx.noneV();
  }
  nv_unreachable("covered switch");
}

const Value *Interp::evalOper(const Expr *E, const EnvPtr &Env) {
  Op O = E->OpCode;
  switch (O) {
  case Op::And: {
    const Value *L = eval(E->Args[0].get(), Env);
    if (!L->B)
      return Ctx.FalseV;
    return eval(E->Args[1].get(), Env);
  }
  case Op::Or: {
    const Value *L = eval(E->Args[0].get(), Env);
    if (L->B)
      return Ctx.TrueV;
    return eval(E->Args[1].get(), Env);
  }
  case Op::Not:
    return Ctx.boolV(!eval(E->Args[0].get(), Env)->B);
  case Op::Eq:
    // Interned values: structural equality is pointer equality.
    return Ctx.boolV(eval(E->Args[0].get(), Env) ==
                     eval(E->Args[1].get(), Env));
  case Op::Neq:
    return Ctx.boolV(eval(E->Args[0].get(), Env) !=
                     eval(E->Args[1].get(), Env));
  case Op::Add:
  case Op::Sub: {
    const Value *L = eval(E->Args[0].get(), Env);
    const Value *R = eval(E->Args[1].get(), Env);
    uint64_t Raw = O == Op::Add ? L->I + R->I : L->I - R->I;
    return Ctx.intV(Raw, L->Width);
  }
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge: {
    const Value *L = eval(E->Args[0].get(), Env);
    const Value *R = eval(E->Args[1].get(), Env);
    bool Result = O == Op::Lt   ? L->I < R->I
                  : O == Op::Le ? L->I <= R->I
                  : O == Op::Gt ? L->I > R->I
                                : L->I >= R->I;
    return Ctx.boolV(Result);
  }
  case Op::MCreate: {
    TypePtr DictTy = resolve(E->Ty);
    assert(DictTy->Kind == TypeKind::Dict && "createDict type");
    if (!isFiniteType(DictTy->Elems[0]))
      evalError("createDict key type " + typeToString(DictTy->Elems[0]) +
                " is not finite; annotate the map's key type");
    return Ctx.mapCreate(DictTy->Elems[0], eval(E->Args[0].get(), Env));
  }
  case Op::MGet:
    return Ctx.mapGet(eval(E->Args[0].get(), Env),
                      eval(E->Args[1].get(), Env));
  case Op::MSet:
    return Ctx.mapSet(eval(E->Args[0].get(), Env),
                      eval(E->Args[1].get(), Env),
                      eval(E->Args[2].get(), Env));
  case Op::MMap:
    return Ctx.mapMap(eval(E->Args[0].get(), Env),
                      eval(E->Args[1].get(), Env));
  case Op::MMapIte:
    return Ctx.mapIte(eval(E->Args[0].get(), Env),
                      eval(E->Args[1].get(), Env),
                      eval(E->Args[2].get(), Env),
                      eval(E->Args[3].get(), Env));
  case Op::MCombine:
    return Ctx.mapCombine(eval(E->Args[0].get(), Env),
                          eval(E->Args[1].get(), Env),
                          eval(E->Args[2].get(), Env));
  }
  nv_unreachable("covered switch");
}
