//===- ProgramEvaluator.h - Protocol semantics interface --------*- C++ -*-===//
//
// Part of nv-cpp. The simulator (Algorithm 1) consumes the init/trans/
// merge/assert functions of a program through this interface; it is
// implemented by the tree-walking interpreter here and by the closure
// compiler in Compile.h (the "native" mode of Sec. 5.1).
//
//===----------------------------------------------------------------------===//

#ifndef NV_EVAL_PROGRAMEVALUATOR_H
#define NV_EVAL_PROGRAMEVALUATOR_H

#include "core/Ast.h"
#include "eval/Interp.h"
#include "eval/NvContext.h"

#include <map>

namespace nv {

/// Concrete values substituted for symbolic declarations before running a
/// normalization-based analysis (Sec. 3: "prior to execution, symbolic
/// values are fixed to concrete ones").
using SymbolicAssignment = std::map<std::string, const Value *>;

/// The routing semantics of one NV program, as evaluated functions.
class ProtocolEvaluator {
public:
  virtual ~ProtocolEvaluator();

  virtual NvContext &ctx() = 0;
  virtual const Value *init(uint32_t U) = 0;
  virtual const Value *trans(uint32_t U, uint32_t V, const Value *A) = 0;
  virtual const Value *merge(uint32_t U, const Value *A, const Value *B) = 0;
  virtual bool hasAssert() const = 0;
  /// Evaluates the assert declaration at node \p U (true when absent).
  virtual bool assertAt(uint32_t U, const Value *A) = 0;

  /// True when every require clause held under the symbolic assignment.
  virtual bool requiresHold() const = 0;
};

/// Interpreter-backed evaluator (the paper's interpreted simulation mode).
class InterpProgramEvaluator : public ProtocolEvaluator {
public:
  /// Builds the global environment by evaluating every top-level let in
  /// order, with symbolics bound from \p Sym (falling back to the
  /// declaration's default expression, then to the type's default value).
  InterpProgramEvaluator(NvContext &Ctx, const Program &P,
                         const SymbolicAssignment &Sym = {});
  ~InterpProgramEvaluator() override;

  NvContext &ctx() override { return Ctx; }
  const Value *init(uint32_t U) override;
  const Value *trans(uint32_t U, uint32_t V, const Value *A) override;
  const Value *merge(uint32_t U, const Value *A, const Value *B) override;
  bool hasAssert() const override { return AssertClo != nullptr; }
  bool assertAt(uint32_t U, const Value *A) override;
  bool requiresHold() const override { return RequiresOk; }

  /// The global environment (testing convenience).
  const EnvPtr &globals() const { return Globals; }
  /// Evaluates an expression under the globals (testing convenience).
  const Value *evalUnderGlobals(const ExprPtr &E);

private:
  NvContext &Ctx;
  Interp I;
  EnvPtr Globals;
  const Value *InitClo = nullptr;
  const Value *TransClo = nullptr;
  const Value *MergeClo = nullptr;
  const Value *AssertClo = nullptr;
  bool RequiresOk = true;

  // Partial applications cached per edge/node: trans and merge are applied
  // to the same edge/node every simulator round.
  std::map<std::pair<uint32_t, uint32_t>, const Value *> TransPartial;
  std::map<uint32_t, const Value *> MergePartial;
  std::map<uint32_t, const Value *> AssertPartial;

  // GC root discipline: globals and cached partial applications outlive
  // any single safe point, so they are pinned for the evaluator's
  // lifetime and released in the destructor.
  std::vector<const Value *> Pinned;
  const Value *pinned(const Value *V) {
    Ctx.pinValue(V);
    Pinned.push_back(V);
    return V;
  }
};

} // namespace nv

#endif // NV_EVAL_PROGRAMEVALUATOR_H
