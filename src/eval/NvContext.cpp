//===- NvContext.cpp - Shared evaluation context ----------------------------===//

#include <cassert>
#include "eval/NvContext.h"

#include "support/Fatal.h"
#include "support/Governor.h"

#include <algorithm>
#include <set>

using namespace nv;

namespace {
enum TagKind : uint64_t {
  TagKindMap = 1,
  TagKindCombine = 2,
  TagKindIte = 3,
};
} // namespace

NvContext::NvContext(uint32_t NumNodes) : Layout(NumNodes) {
  Value T;
  T.K = Value::Kind::Bool;
  T.B = true;
  TrueV = Arena.intern(std::move(T));
  Value F;
  F.K = Value::Kind::Bool;
  F.B = false;
  FalseV = Arena.intern(std::move(F));
  Value N;
  N.K = Value::Kind::Option;
  N.Inner = nullptr;
  NoneV = Arena.intern(std::move(N));
  Mgr.setBoolPayloads(TrueV, FalseV);
  // Registered first so gcBegin clears the shared visited set before any
  // other provider (e.g. the simulator's label roots) walks values.
  Mgr.addRootProvider(this);
  Mgr.setPayloadTracer(&NvContext::tracePayload, this);
}

NvContext::~NvContext() { Mgr.removeRootProvider(this); }

//===----------------------------------------------------------------------===//
// Memory management
//===----------------------------------------------------------------------===//

void NvContext::pinValue(const Value *V) { ++PinnedValues[V]; }

void NvContext::unpinValue(const Value *V) {
  auto It = PinnedValues.find(V);
  assert(It != PinnedValues.end() && "unpinValue without a matching pin");
  if (--It->second == 0)
    PinnedValues.erase(It);
}

void NvContext::collectValueRoots(const Value *V,
                                  std::vector<BddManager::Ref> &Out) {
  if (!V || !GcSeen.insert(V).second)
    return;
  switch (V->K) {
  case Value::Kind::Map:
    // Inner diagrams buried in this map's *leaves* (dict-of-dict) are
    // surfaced by the payload tracer while the marker walks the diagram.
    if (V->MapRoot != BddManager::InvalidRef)
      Out.push_back(V->MapRoot);
    return;
  case Value::Kind::Tuple:
    for (const Value *E : V->Elems)
      collectValueRoots(E, Out);
    return;
  case Value::Kind::Option:
    collectValueRoots(V->Inner, Out);
    return;
  case Value::Kind::Closure: {
    // A closure keeps alive whatever it captured: walk the free variables
    // of its source expression through the capture environment.
    const Expr *Src = V->Closure->sourceExpr();
    if (!Src)
      return;
    for (const std::string &Name : freeVarsOf(Src))
      collectValueRoots(V->Closure->lookupFree(Name), Out);
    return;
  }
  case Value::Kind::Bool:
  case Value::Kind::Int:
  case Value::Kind::Node:
  case Value::Kind::Edge:
    return;
  }
}

void NvContext::gcBegin() { GcSeen.clear(); }

void NvContext::appendRoots(std::vector<BddManager::Ref> &Out) {
  for (const auto &[Key, R] : PredCache)
    Out.push_back(R);
  for (const auto &[V, Count] : PinnedValues)
    collectValueRoots(V, Out);
}

void NvContext::notifyRemap(const std::vector<BddManager::Ref> &Remap) {
  for (auto &[Key, R] : PredCache) {
    R = Remap[R];
    assert(R != BddManager::InvalidRef && "predicate cache entry collected");
  }
  Arena.remapMapRoots(Remap);
}

void NvContext::tracePayload(void *Cookie, const void *Payload,
                             std::vector<BddManager::Ref> &Out) {
  static_cast<NvContext *>(Cookie)->collectValueRoots(
      static_cast<const Value *>(Payload), Out);
}

void NvContext::resetBetweenRuns() { Mgr.reset(); }

//===----------------------------------------------------------------------===//
// Factories
//===----------------------------------------------------------------------===//

const Value *NvContext::intV(uint64_t I, unsigned Width) {
  Value V;
  V.K = Value::Kind::Int;
  V.Width = Width;
  V.I = Width >= 64 ? I : (I & ((uint64_t(1) << Width) - 1));
  return Arena.intern(std::move(V));
}

const Value *NvContext::nodeV(uint32_t N) {
  Value V;
  V.K = Value::Kind::Node;
  V.N = N;
  return Arena.intern(std::move(V));
}

const Value *NvContext::edgeV(uint32_t U, uint32_t W) {
  Value V;
  V.K = Value::Kind::Edge;
  V.N = U;
  V.N2 = W;
  return Arena.intern(std::move(V));
}

const Value *NvContext::tupleV(std::vector<const Value *> Elems) {
  Value V;
  V.K = Value::Kind::Tuple;
  V.Elems = std::move(Elems);
  return Arena.intern(std::move(V));
}

const Value *NvContext::someV(const Value *Inner) {
  Value V;
  V.K = Value::Kind::Option;
  V.Inner = Inner;
  return Arena.intern(std::move(V));
}

const Value *NvContext::mapV(BddManager::Ref Root, TypePtr KeyType) {
  Value V;
  V.K = Value::Kind::Map;
  V.MapRoot = Root;
  V.KeyType = KeyType;
  V.KeyBits = Layout.widthOf(KeyType);
  return Arena.intern(std::move(V));
}

const Value *NvContext::closureV(std::shared_ptr<ClosureData> C) {
  Value V;
  V.K = Value::Kind::Closure;
  V.Closure = std::move(C);
  return Arena.intern(std::move(V));
}

const Value *NvContext::valueOfLiteral(const Literal &L) {
  switch (L.Kind) {
  case LiteralKind::Bool:
    return boolV(L.BoolVal);
  case LiteralKind::Int:
    return intV(L.IntVal, L.Width);
  case LiteralKind::Node:
    return nodeV(L.NodeVal);
  case LiteralKind::Edge:
    return edgeV(L.NodeVal, L.NodeVal2);
  }
  nv_unreachable("covered switch");
}

const Value *NvContext::applyClosure(const Value *Fn, const Value *Arg) {
  if (Fn->K != Value::Kind::Closure)
    evalError("applied a non-function value: " + Fn->str());
  return Fn->Closure->call(Arg);
}

//===----------------------------------------------------------------------===//
// Bit encoding
//===----------------------------------------------------------------------===//

void NvContext::encodeValue(const Value *V, const TypePtr &RawTy,
                            std::vector<bool> &Out) {
  TypePtr Ty = resolve(RawTy);
  switch (Ty->Kind) {
  case TypeKind::Bool:
    Out.push_back(V->B);
    return;
  case TypeKind::Int:
    for (unsigned I = 0; I < Ty->Width; ++I)
      Out.push_back((V->I >> (Ty->Width - 1 - I)) & 1);
    return;
  case TypeKind::Node: {
    unsigned NB = Layout.nodeBits();
    for (unsigned I = 0; I < NB; ++I)
      Out.push_back((V->N >> (NB - 1 - I)) & 1);
    return;
  }
  case TypeKind::Edge: {
    unsigned NB = Layout.nodeBits();
    for (unsigned I = 0; I < NB; ++I)
      Out.push_back((V->N >> (NB - 1 - I)) & 1);
    for (unsigned I = 0; I < NB; ++I)
      Out.push_back((V->N2 >> (NB - 1 - I)) & 1);
    return;
  }
  case TypeKind::Option: {
    Out.push_back(V->Inner != nullptr);
    if (V->Inner) {
      encodeValue(V->Inner, Ty->Elems[0], Out);
    } else {
      unsigned W = Layout.widthOf(Ty->Elems[0]);
      Out.insert(Out.end(), W, false);
    }
    return;
  }
  case TypeKind::Tuple:
  case TypeKind::Record: {
    assert(V->Elems.size() == Ty->Elems.size() && "value/type arity mismatch");
    for (size_t I = 0; I < Ty->Elems.size(); ++I)
      encodeValue(V->Elems[I], Ty->Elems[I], Out);
    return;
  }
  case TypeKind::Dict:
  case TypeKind::Arrow:
  case TypeKind::Var:
    break;
  }
  evalError("cannot bit-encode a value of type " + typeToString(Ty));
}

const Value *NvContext::decodeValue(const std::vector<bool> &Bits, size_t &Pos,
                                    const TypePtr &RawTy) {
  TypePtr Ty = resolve(RawTy);
  switch (Ty->Kind) {
  case TypeKind::Bool:
    return boolV(Bits[Pos++]);
  case TypeKind::Int: {
    uint64_t I = 0;
    for (unsigned B = 0; B < Ty->Width; ++B)
      I = (I << 1) | (Bits[Pos++] ? 1 : 0);
    return intV(I, Ty->Width);
  }
  case TypeKind::Node: {
    uint32_t N = 0;
    for (unsigned B = 0; B < Layout.nodeBits(); ++B)
      N = (N << 1) | (Bits[Pos++] ? 1 : 0);
    return nodeV(N);
  }
  case TypeKind::Edge: {
    uint32_t U = 0, W = 0;
    for (unsigned B = 0; B < Layout.nodeBits(); ++B)
      U = (U << 1) | (Bits[Pos++] ? 1 : 0);
    for (unsigned B = 0; B < Layout.nodeBits(); ++B)
      W = (W << 1) | (Bits[Pos++] ? 1 : 0);
    return edgeV(U, W);
  }
  case TypeKind::Option: {
    bool Tag = Bits[Pos++];
    if (!Tag) {
      Pos += Layout.widthOf(Ty->Elems[0]);
      return NoneV;
    }
    return someV(decodeValue(Bits, Pos, Ty->Elems[0]));
  }
  case TypeKind::Tuple:
  case TypeKind::Record: {
    std::vector<const Value *> Elems;
    Elems.reserve(Ty->Elems.size());
    for (const TypePtr &E : Ty->Elems)
      Elems.push_back(decodeValue(Bits, Pos, E));
    return tupleV(std::move(Elems));
  }
  case TypeKind::Dict:
  case TypeKind::Arrow:
  case TypeKind::Var:
    break;
  }
  evalError("cannot decode a value of type " + typeToString(Ty));
}

const Value *NvContext::defaultValue(const TypePtr &RawTy) {
  TypePtr Ty = resolve(RawTy);
  switch (Ty->Kind) {
  case TypeKind::Bool:
    return FalseV;
  case TypeKind::Int:
    return intV(0, Ty->Width);
  case TypeKind::Node:
    return nodeV(0);
  case TypeKind::Edge:
    return edgeV(0, 0);
  case TypeKind::Option:
    return NoneV;
  case TypeKind::Tuple:
  case TypeKind::Record: {
    std::vector<const Value *> Elems;
    for (const TypePtr &E : Ty->Elems)
      Elems.push_back(defaultValue(E));
    return tupleV(std::move(Elems));
  }
  case TypeKind::Dict:
    return mapCreate(Ty->Elems[0], defaultValue(Ty->Elems[1]));
  case TypeKind::Arrow:
  case TypeKind::Var:
    break;
  }
  evalError("type " + typeToString(Ty) + " has no default value");
}

std::vector<const Value *> NvContext::enumerateType(const TypePtr &RawTy) {
  TypePtr Ty = resolve(RawTy);
  unsigned W = Layout.widthOf(Ty);
  if (W > 22)
    evalError("enumerateType over " + std::to_string(W) +
              " bits is too large");
  std::vector<const Value *> Out;
  std::vector<bool> Bits(W, false);
  for (uint64_t K = 0; K < (uint64_t(1) << W); ++K) {
    for (unsigned I = 0; I < W; ++I)
      Bits[I] = (K >> (W - 1 - I)) & 1;
    size_t Pos = 0;
    const Value *V = decodeValue(Bits, Pos, Ty);
    // Bit patterns are not always injective (None payload bits, node ids
    // above the topology size): deduplicate and drop phantoms.
    if (Ty->Kind == TypeKind::Node && V->N >= Layout.numNodes())
      continue;
    if (Ty->Kind == TypeKind::Edge &&
        (V->N >= Layout.numNodes() || V->N2 >= Layout.numNodes()))
      continue;
    if (std::find(Out.begin(), Out.end(), V) == Out.end())
      Out.push_back(V);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Map runtime
//===----------------------------------------------------------------------===//

const Value *NvContext::mapCreate(const TypePtr &KeyTy, const Value *Default) {
  return mapV(Mgr.leaf(Default), resolve(KeyTy));
}

const Value *NvContext::mapGet(const Value *M, const Value *Key) {
  assert(M->K == Value::Kind::Map && "get on a non-map");
  std::vector<bool> Bits;
  encodeValue(Key, M->KeyType, Bits);
  return static_cast<const Value *>(Mgr.get(M->MapRoot, Bits));
}

const Value *NvContext::mapSet(const Value *M, const Value *Key,
                               const Value *V) {
  assert(M->K == Value::Kind::Map && "set on a non-map");
  std::vector<bool> Bits;
  encodeValue(Key, M->KeyType, Bits);
  return mapV(Mgr.set(M->MapRoot, Bits, V), M->KeyType);
}

const Value *NvContext::mapMap(const Value *Fn, const Value *M) {
  assert(M->K == Value::Kind::Map && "map on a non-map");
  uint64_t Tag = opTag(TagKindMap, Fn->Closure->cacheKey());
  BddManager::Ref R = Mgr.map1(
      M->MapRoot,
      [&](const void *Leaf) {
        return applyClosure(Fn, static_cast<const Value *>(Leaf));
      },
      Tag);
  return mapV(R, M->KeyType);
}

const Value *NvContext::mapCombine(const Value *Fn, const Value *A,
                                   const Value *B) {
  assert(A->K == Value::Kind::Map && B->K == Value::Kind::Map &&
         "combine on non-maps");
  assert(A->KeyBits == B->KeyBits && "combine over mismatched key types");
  uint64_t Tag = opTag(TagKindCombine, Fn->Closure->cacheKey());
  BddManager::Ref R = Mgr.apply2(
      A->MapRoot, B->MapRoot,
      [&](const void *X, const void *Y) {
        const Value *F1 =
            applyClosure(Fn, static_cast<const Value *>(X));
        return applyClosure(F1, static_cast<const Value *>(Y));
      },
      Tag);
  return mapV(R, A->KeyType);
}

const Value *NvContext::mapIte(const Value *Pred, const Value *FnThen,
                               const Value *FnElse, const Value *M) {
  assert(M->K == Value::Kind::Map && "mapIte on a non-map");
  BddManager::Ref PredBdd = predToBdd(Pred, M->KeyType);
  uint64_t Tag = opTag(TagKindIte, FnThen->Closure->cacheKey(),
                       FnElse->Closure->cacheKey());
  BddManager::Ref R = Mgr.apply2(
      PredBdd, M->MapRoot,
      [&](const void *P, const void *Leaf) {
        const Value *Fn = (P == TrueV) ? FnThen : FnElse;
        return applyClosure(Fn, static_cast<const Value *>(Leaf));
      },
      Tag);
  return mapV(R, M->KeyType);
}

std::string NvContext::printValue(const Value *V) {
  switch (V->K) {
  case Value::Kind::Map: {
    std::string S = "[";
    bool First = true;
    Mgr.forEachCube(V->MapRoot, V->KeyBits,
                    [&](const std::vector<int8_t> &Cube, const void *Leaf) {
                      if (!First)
                        S += "; ";
                      First = false;
                      for (int8_t B : Cube)
                        S += B < 0 ? '*' : static_cast<char>('0' + B);
                      S += " := ";
                      S += printValue(static_cast<const Value *>(Leaf));
                    });
    return S + "]";
  }
  case Value::Kind::Tuple: {
    std::string S = "(";
    for (size_t I = 0; I < V->Elems.size(); ++I) {
      if (I)
        S += ", ";
      S += printValue(V->Elems[I]);
    }
    return S + ")";
  }
  case Value::Kind::Option:
    return V->Inner ? "Some " + printValue(V->Inner) : "None";
  default:
    return V->str();
  }
}

//===----------------------------------------------------------------------===//
// Closure identity and operation tags
//===----------------------------------------------------------------------===//

uint64_t NvContext::closureId(const Expr *Src,
                              const std::vector<const Value *> &Captured) {
  ClosureKey Key{Src, Captured};
  auto It = ClosureIds.find(Key);
  if (It != ClosureIds.end())
    return It->second;
  uint64_t Id = NextClosureId++;
  ClosureIds.emplace(std::move(Key), Id);
  return Id;
}

uint64_t NvContext::opTag(uint64_t Kind, uint64_t K1, uint64_t K2) {
  OpTagKey Key{Kind, K1, K2};
  auto It = OpTags.find(Key);
  if (It != OpTags.end())
    return It->second;
  uint64_t Tag = Mgr.freshOpTag();
  OpTags.emplace(Key, Tag);
  return Tag;
}

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

namespace {

void freeVarsRec(const Expr *E, std::set<std::string> &Bound,
                 std::set<std::string> &Out) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::Var:
    if (!Bound.count(E->Name))
      Out.insert(E->Name);
    return;
  case ExprKind::Let: {
    freeVarsRec(E->Args[0].get(), Bound, Out);
    bool Inserted = Bound.insert(E->Name).second;
    freeVarsRec(E->Args[1].get(), Bound, Out);
    if (Inserted)
      Bound.erase(E->Name);
    return;
  }
  case ExprKind::Fun: {
    bool Inserted = Bound.insert(E->Name).second;
    freeVarsRec(E->Args[0].get(), Bound, Out);
    if (Inserted)
      Bound.erase(E->Name);
    return;
  }
  case ExprKind::Match: {
    freeVarsRec(E->Args[0].get(), Bound, Out);
    for (const MatchCase &C : E->Cases) {
      std::vector<std::string> Vars;
      C.Pat->boundVars(Vars);
      std::vector<std::string> Inserted;
      for (const std::string &V : Vars)
        if (Bound.insert(V).second)
          Inserted.push_back(V);
      freeVarsRec(C.Body.get(), Bound, Out);
      for (const std::string &V : Inserted)
        Bound.erase(V);
    }
    return;
  }
  default:
    for (const ExprPtr &A : E->Args)
      freeVarsRec(A.get(), Bound, Out);
    return;
  }
}

} // namespace

const std::vector<std::string> &nv::freeVarsOf(const Expr *E) {
  if (!E->CachedFreeVars) {
    std::set<std::string> Bound, Out;
    freeVarsRec(E, Bound, Out);
    E->CachedFreeVars = std::make_shared<const std::vector<std::string>>(
        Out.begin(), Out.end());
  }
  return *E->CachedFreeVars;
}
