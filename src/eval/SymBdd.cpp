//===- SymBdd.cpp - Symbolic evaluation of predicates into BDDs ------------===//
//
// Implements NvContext::predToBdd: evaluates an NV function symbolically
// over the bit encoding of its key-typed parameter, producing a boolean
// decision diagram (the predicate argument of mapIte, Fig. 11b). This is
// the analogue of real NV's BddFunc module.
//
// Every finite-typed intermediate is a vector of boolean BDDs (MSB first).
// NV's totality (no recursion) guarantees termination: both branches of a
// symbolic conditional can always be evaluated and merged per bit.
//
//===----------------------------------------------------------------------===//

#include "core/Printer.h"
#include "eval/NvContext.h"
#include "support/Fatal.h"
#include "support/Governor.h"

using namespace nv;

namespace {

using Ref = BddManager::Ref;

/// A symbolic value: either a bit vector of BDDs (finite types) or a
/// function (concrete closure, or a syntactic closure over symbolic
/// locals).
struct SymVal {
  TypePtr Ty;
  std::vector<Ref> Bits;
  // Function representations (mutually exclusive with Bits):
  const Value *Fn = nullptr;     ///< A concrete NV closure.
  const Expr *FnExpr = nullptr;  ///< A Fun evaluated symbolically...
  std::shared_ptr<std::vector<std::pair<std::string, SymVal>>> FnLocals;
  const ClosureData *FnFree = nullptr; ///< ...with these captured frames.

  bool isFun() const { return Fn || FnExpr; }
};

using Locals = std::vector<std::pair<std::string, SymVal>>;

class SymEval {
public:
  explicit SymEval(NvContext &Ctx) : Ctx(Ctx), Mgr(Ctx.Mgr) {}

  /// Evaluates the closure applied to a fully-symbolic key parameter.
  Ref run(const ClosureData *Clo, const TypePtr &KeyTy) {
    const Expr *Fn = Clo->sourceExpr();
    if (!Fn || Fn->Kind != ExprKind::Fun)
      evalError("mapIte predicate has no NV source to evaluate symbolically");
    unsigned W = Ctx.Layout.widthOf(KeyTy);
    SymVal Key;
    Key.Ty = resolve(KeyTy);
    for (unsigned I = 0; I < W; ++I)
      Key.Bits.push_back(Mgr.bitVar(I));
    Locals Frame;
    Frame.emplace_back(Fn->Name, std::move(Key));
    SymVal R = eval(Fn->Args[0].get(), Frame, Clo);
    if (R.Bits.size() != 1)
      evalError("mapIte predicate did not evaluate to a boolean");
    return R.Bits[0];
  }

private:
  NvContext &Ctx;
  BddManager &Mgr;

  Ref constBit(bool B) { return B ? Mgr.trueBdd() : Mgr.falseBdd(); }

  /// Lifts a concrete finite value to a constant bit vector.
  SymVal lift(const Value *V, const TypePtr &Ty) {
    if (V->K == Value::Kind::Closure) {
      SymVal S;
      S.Ty = resolve(Ty);
      S.Fn = V;
      return S;
    }
    std::vector<bool> Bits;
    Ctx.encodeValue(V, Ty, Bits);
    SymVal S;
    S.Ty = resolve(Ty);
    for (bool B : Bits)
      S.Bits.push_back(constBit(B));
    return S;
  }

  SymVal boolSym(Ref R) {
    SymVal S;
    S.Ty = Type::boolTy();
    S.Bits = {R};
    return S;
  }

  /// Width of element I of a tuple/record symbolic value, plus its offset.
  std::pair<unsigned, unsigned> fieldRange(const TypePtr &Ty, size_t Idx) {
    unsigned Off = 0;
    for (size_t I = 0; I < Idx; ++I)
      Off += Ctx.Layout.widthOf(Ty->Elems[I]);
    return {Off, Ctx.Layout.widthOf(Ty->Elems[Idx])};
  }

  SymVal slice(const SymVal &V, unsigned Off, unsigned W, TypePtr Ty) {
    SymVal S;
    S.Ty = resolve(std::move(Ty));
    S.Bits.assign(V.Bits.begin() + Off, V.Bits.begin() + Off + W);
    return S;
  }

  Ref eqBits(const SymVal &A, const SymVal &B) {
    if (A.Bits.size() != B.Bits.size())
      evalError("symbolic equality over mismatched widths");
    Ref R = Mgr.trueBdd();
    for (size_t I = 0; I < A.Bits.size(); ++I)
      R = Mgr.bddAnd(R, Mgr.bddXnor(A.Bits[I], B.Bits[I]));
    return R;
  }

  /// Unsigned comparison over MSB-first bits: returns (lt, eq).
  std::pair<Ref, Ref> compareBits(const SymVal &A, const SymVal &B) {
    Ref Lt = Mgr.falseBdd();
    Ref Eq = Mgr.trueBdd();
    for (size_t I = 0; I < A.Bits.size(); ++I) {
      Ref Ai = A.Bits[I], Bi = B.Bits[I];
      Lt = Mgr.bddOr(Lt, Mgr.bddAnd(Eq, Mgr.bddAnd(Mgr.bddNot(Ai), Bi)));
      Eq = Mgr.bddAnd(Eq, Mgr.bddXnor(Ai, Bi));
    }
    return {Lt, Eq};
  }

  /// Ripple add/sub over MSB-first bit vectors (wrap-around).
  SymVal addSub(const SymVal &A, const SymVal &B, bool Subtract) {
    SymVal Out;
    Out.Ty = A.Ty;
    Out.Bits.resize(A.Bits.size());
    Ref Carry = Subtract ? Mgr.trueBdd() : Mgr.falseBdd();
    for (size_t I = A.Bits.size(); I-- > 0;) {
      Ref Ai = A.Bits[I];
      Ref Bi = Subtract ? Mgr.bddNot(B.Bits[I]) : B.Bits[I];
      Ref AxB = Mgr.bddXor(Ai, Bi);
      Out.Bits[I] = Mgr.bddXor(AxB, Carry);
      Carry = Mgr.bddOr(Mgr.bddAnd(Ai, Bi), Mgr.bddAnd(Carry, AxB));
    }
    return Out;
  }

  SymVal mergeIte(Ref Cond, const SymVal &T, const SymVal &E) {
    if (T.isFun() || E.isFun())
      evalError("cannot merge function values under a symbolic condition");
    if (T.Bits.size() != E.Bits.size())
      evalError("symbolic ite over mismatched widths");
    SymVal Out;
    Out.Ty = T.Ty;
    Out.Bits.resize(T.Bits.size());
    for (size_t I = 0; I < T.Bits.size(); ++I)
      Out.Bits[I] = Mgr.bddIte(Cond, T.Bits[I], E.Bits[I]);
    return Out;
  }

  const SymVal *lookupLocal(const Locals &Frame, const std::string &Name) {
    for (auto It = Frame.rbegin(); It != Frame.rend(); ++It)
      if (It->first == Name)
        return &It->second;
    return nullptr;
  }

  /// Pattern match against a symbolic scrutinee: returns the match
  /// condition and pushes bindings onto \p Frame.
  Ref matchSym(const Pattern *P, const SymVal &Scrut, Locals &Frame) {
    switch (P->Kind) {
    case PatternKind::Wild:
      return Mgr.trueBdd();
    case PatternKind::Var:
      Frame.emplace_back(P->Name, Scrut);
      return Mgr.trueBdd();
    case PatternKind::Lit:
      return eqBits(Scrut, lift(Ctx.valueOfLiteral(P->Lit), P->Lit.type()));
    case PatternKind::None:
      return Mgr.bddNot(Scrut.Bits[0]);
    case PatternKind::Some: {
      TypePtr Inner = resolve(Scrut.Ty)->Elems[0];
      SymVal Payload = slice(Scrut, 1, Ctx.Layout.widthOf(Inner), Inner);
      Ref Tag = Scrut.Bits[0];
      return Mgr.bddAnd(Tag, matchSym(P->Elems[0].get(), Payload, Frame));
    }
    case PatternKind::Tuple: {
      TypePtr Ty = resolve(Scrut.Ty);
      if (Ty->Kind == TypeKind::Edge) {
        unsigned NB = Ctx.Layout.nodeBits();
        Ref C1 = matchSym(P->Elems[0].get(),
                          slice(Scrut, 0, NB, Type::nodeTy()), Frame);
        Ref C2 = matchSym(P->Elems[1].get(),
                          slice(Scrut, NB, NB, Type::nodeTy()), Frame);
        return Mgr.bddAnd(C1, C2);
      }
      Ref C = Mgr.trueBdd();
      for (size_t I = 0; I < P->Elems.size(); ++I) {
        auto [Off, W] = fieldRange(Ty, I);
        C = Mgr.bddAnd(C, matchSym(P->Elems[I].get(),
                                   slice(Scrut, Off, W, Ty->Elems[I]), Frame));
      }
      return C;
    }
    case PatternKind::Record: {
      TypePtr Ty = resolve(Scrut.Ty);
      Ref C = Mgr.trueBdd();
      for (size_t I = 0; I < P->Labels.size(); ++I) {
        int Idx = Ty->labelIndex(P->Labels[I]);
        auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
        C = Mgr.bddAnd(C,
                       matchSym(P->Elems[I].get(),
                                slice(Scrut, Off, W, Ty->Elems[Idx]), Frame));
      }
      return C;
    }
    }
    nv_unreachable("covered switch");
  }

  SymVal eval(const Expr *E, Locals &Frame, const ClosureData *Free) {
    switch (E->Kind) {
    case ExprKind::Const:
      return lift(Ctx.valueOfLiteral(E->Lit), E->Lit.type());
    case ExprKind::Var: {
      if (const SymVal *S = lookupLocal(Frame, E->Name))
        return *S;
      const Value *V = Free ? Free->lookupFree(E->Name) : nullptr;
      if (!V)
        evalError("unbound variable in symbolic evaluation: " + E->Name);
      return lift(V, E->Ty);
    }
    case ExprKind::Let: {
      SymVal Init = eval(E->Args[0].get(), Frame, Free);
      Frame.emplace_back(E->Name, std::move(Init));
      SymVal R = eval(E->Args[1].get(), Frame, Free);
      Frame.pop_back();
      return R;
    }
    case ExprKind::Fun: {
      SymVal S;
      S.Ty = resolve(E->Ty);
      S.FnExpr = E;
      S.FnLocals = std::make_shared<Locals>(Frame);
      S.FnFree = Free;
      return S;
    }
    case ExprKind::App: {
      SymVal FnV = eval(E->Args[0].get(), Frame, Free);
      SymVal Arg = eval(E->Args[1].get(), Frame, Free);
      return applySym(FnV, std::move(Arg));
    }
    case ExprKind::If: {
      SymVal C = eval(E->Args[0].get(), Frame, Free);
      Ref Cond = C.Bits[0];
      if (Cond == Mgr.trueBdd())
        return eval(E->Args[1].get(), Frame, Free);
      if (Cond == Mgr.falseBdd())
        return eval(E->Args[2].get(), Frame, Free);
      SymVal T = eval(E->Args[1].get(), Frame, Free);
      SymVal El = eval(E->Args[2].get(), Frame, Free);
      return mergeIte(Cond, T, El);
    }
    case ExprKind::Match: {
      SymVal Scrut = eval(E->Args[0].get(), Frame, Free);
      // Evaluate each case body under its bindings; fold so the first
      // matching case wins and the final case is the default.
      std::vector<Ref> Conds;
      std::vector<SymVal> Bodies;
      for (const MatchCase &C : E->Cases) {
        size_t Mark = Frame.size();
        Ref Cond = matchSym(C.Pat.get(), Scrut, Frame);
        if (Cond == Mgr.falseBdd()) {
          Frame.resize(Mark);
          continue;
        }
        Conds.push_back(Cond);
        Bodies.push_back(eval(C.Body.get(), Frame, Free));
        Frame.resize(Mark);
        if (Cond == Mgr.trueBdd())
          break;
      }
      if (Bodies.empty())
        evalError("symbolic match with no reachable cases");
      SymVal R = Bodies.back();
      for (size_t I = Bodies.size() - 1; I-- > 0;)
        R = mergeIte(Conds[I], Bodies[I], R);
      return R;
    }
    case ExprKind::Oper:
      return evalOper(E, Frame, Free);
    case ExprKind::Tuple:
    case ExprKind::Record: {
      SymVal Out;
      Out.Ty = resolve(E->Ty);
      for (const ExprPtr &A : E->Args) {
        SymVal S = eval(A.get(), Frame, Free);
        Out.Bits.insert(Out.Bits.end(), S.Bits.begin(), S.Bits.end());
      }
      return Out;
    }
    case ExprKind::Proj: {
      SymVal V = eval(E->Args[0].get(), Frame, Free);
      TypePtr Ty = resolve(V.Ty);
      auto [Off, W] = fieldRange(Ty, E->Index);
      return slice(V, Off, W, Ty->Elems[E->Index]);
    }
    case ExprKind::RecordUpdate: {
      SymVal Base = eval(E->Args[0].get(), Frame, Free);
      TypePtr Ty = resolve(Base.Ty);
      SymVal Out = Base;
      for (size_t I = 0; I < E->Labels.size(); ++I) {
        int Idx = Ty->labelIndex(E->Labels[I]);
        auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
        SymVal V = eval(E->Args[I + 1].get(), Frame, Free);
        for (unsigned B = 0; B < W; ++B)
          Out.Bits[Off + B] = V.Bits[B];
      }
      return Out;
    }
    case ExprKind::Field: {
      SymVal V = eval(E->Args[0].get(), Frame, Free);
      TypePtr Ty = resolve(V.Ty);
      int Idx = Ty->labelIndex(E->Name);
      auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
      return slice(V, Off, W, Ty->Elems[Idx]);
    }
    case ExprKind::Some: {
      SymVal Inner = eval(E->Args[0].get(), Frame, Free);
      SymVal Out;
      Out.Ty = resolve(E->Ty);
      Out.Bits.push_back(Mgr.trueBdd());
      Out.Bits.insert(Out.Bits.end(), Inner.Bits.begin(), Inner.Bits.end());
      return Out;
    }
    case ExprKind::None: {
      TypePtr Ty = resolve(E->Ty);
      SymVal Out;
      Out.Ty = Ty;
      Out.Bits.push_back(Mgr.falseBdd());
      unsigned W = Ctx.Layout.widthOf(Ty->Elems[0]);
      Out.Bits.insert(Out.Bits.end(), W, Mgr.falseBdd());
      return Out;
    }
    }
    nv_unreachable("covered switch");
  }

  SymVal applySym(const SymVal &FnV, SymVal Arg) {
    if (FnV.Fn) {
      const ClosureData *Clo = FnV.Fn->Closure.get();
      const Expr *Fn = Clo->sourceExpr();
      if (!Fn || Fn->Kind != ExprKind::Fun)
        evalError("cannot symbolically apply an opaque closure");
      Locals Frame;
      Frame.emplace_back(Fn->Name, std::move(Arg));
      return eval(Fn->Args[0].get(), Frame, Clo);
    }
    if (FnV.FnExpr) {
      Locals Frame = *FnV.FnLocals;
      Frame.emplace_back(FnV.FnExpr->Name, std::move(Arg));
      return eval(FnV.FnExpr->Args[0].get(), Frame, FnV.FnFree);
    }
    evalError("symbolic application of a non-function");
  }

  SymVal evalOper(const Expr *E, Locals &Frame, const ClosureData *Free) {
    Op O = E->OpCode;
    if (isMapOp(O))
      evalError("map operation '" + opToString(O) +
                "' cannot appear inside a mapIte key predicate");
    switch (O) {
    case Op::And:
      return boolSym(Mgr.bddAnd(eval(E->Args[0].get(), Frame, Free).Bits[0],
                                eval(E->Args[1].get(), Frame, Free).Bits[0]));
    case Op::Or:
      return boolSym(Mgr.bddOr(eval(E->Args[0].get(), Frame, Free).Bits[0],
                               eval(E->Args[1].get(), Frame, Free).Bits[0]));
    case Op::Not:
      return boolSym(Mgr.bddNot(eval(E->Args[0].get(), Frame, Free).Bits[0]));
    case Op::Eq:
    case Op::Neq: {
      Ref R = eqBits(eval(E->Args[0].get(), Frame, Free),
                     eval(E->Args[1].get(), Frame, Free));
      return boolSym(O == Op::Eq ? R : Mgr.bddNot(R));
    }
    case Op::Add:
    case Op::Sub:
      return addSub(eval(E->Args[0].get(), Frame, Free),
                    eval(E->Args[1].get(), Frame, Free), O == Op::Sub);
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      SymVal A = eval(E->Args[0].get(), Frame, Free);
      SymVal B = eval(E->Args[1].get(), Frame, Free);
      auto [Lt, Eq] = compareBits(A, B);
      switch (O) {
      case Op::Lt:
        return boolSym(Lt);
      case Op::Le:
        return boolSym(Mgr.bddOr(Lt, Eq));
      case Op::Gt:
        return boolSym(Mgr.bddNot(Mgr.bddOr(Lt, Eq)));
      default:
        return boolSym(Mgr.bddNot(Lt));
      }
    }
    default:
      break;
    }
    nv_unreachable("handled all non-map operators");
  }
};

} // namespace

BddManager::Ref NvContext::predToBdd(const Value *Pred, const TypePtr &KeyTy) {
  uint64_t Key = Pred->Closure->cacheKey();
  auto It = PredCache.find(Key);
  if (It != PredCache.end())
    return It->second;
  BddManager::Ref R = SymEval(*this).run(Pred->Closure.get(), KeyTy);
  PredCache.emplace(Key, R);
  return R;
}
