//===- Value.cpp - NV runtime values ---------------------------------------===//

#include "eval/Value.h"

#include "support/Fatal.h"
#include "support/Governor.h"

#include <cassert>

using namespace nv;

ClosureData::~ClosureData() = default;

static uint64_t hashCombine(uint64_t H, uint64_t V) {
  return (H ^ V) * 0x9E3779B97F4A7C15ull;
}

uint64_t Value::hash() const {
  uint64_t H = hashCombine(0x243F6A8885A308D3ull, static_cast<uint64_t>(K));
  switch (K) {
  case Kind::Bool:
    return hashCombine(H, B ? 1 : 0);
  case Kind::Int:
    return hashCombine(hashCombine(H, I), Width);
  case Kind::Node:
    return hashCombine(H, N);
  case Kind::Edge:
    return hashCombine(hashCombine(H, N), N2);
  case Kind::Tuple:
    for (const Value *E : Elems)
      H = hashCombine(H, reinterpret_cast<uint64_t>(E));
    return H;
  case Kind::Option:
    return hashCombine(H, reinterpret_cast<uint64_t>(Inner));
  case Kind::Map:
    return hashCombine(hashCombine(H, MapRoot), KeyBits);
  case Kind::Closure:
    return hashCombine(H, reinterpret_cast<uint64_t>(Closure.get()));
  }
  nv_unreachable("covered switch");
}

bool Value::equals(const Value &O) const {
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Bool:
    return B == O.B;
  case Kind::Int:
    return I == O.I && Width == O.Width;
  case Kind::Node:
    return N == O.N;
  case Kind::Edge:
    return N == O.N && N2 == O.N2;
  case Kind::Tuple:
    // Components are themselves interned: pointer comparison suffices.
    return Elems == O.Elems;
  case Kind::Option:
    return Inner == O.Inner;
  case Kind::Map:
    return MapRoot == O.MapRoot && KeyBits == O.KeyBits;
  case Kind::Closure:
    return Closure.get() == O.Closure.get();
  }
  nv_unreachable("covered switch");
}

std::string Value::str() const {
  switch (K) {
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Int:
    if (Width == 32)
      return std::to_string(I);
    return std::to_string(I) + "u" + std::to_string(Width);
  case Kind::Node:
    return std::to_string(N) + "n";
  case Kind::Edge:
    return std::to_string(N) + "n~" + std::to_string(N2) + "n";
  case Kind::Tuple: {
    std::string S = "(";
    for (size_t I2 = 0; I2 < Elems.size(); ++I2) {
      if (I2)
        S += ", ";
      S += Elems[I2]->str();
    }
    return S + ")";
  }
  case Kind::Option:
    return Inner ? "Some " + Inner->str() : "None";
  case Kind::Map:
    return "<map:" + std::to_string(KeyBits) + " key bits>";
  case Kind::Closure:
    return "<closure>";
  }
  nv_unreachable("covered switch");
}

void ValueArena::remapMapRoots(const std::vector<BddManager::Ref> &Remap) {
  // Map values hash by (MapRoot, KeyBits), so every affected entry must
  // leave the table before any mutation and re-enter afterwards — doing it
  // entry-by-entry could transiently alias a survivor with a dead value
  // whose stale root happens to equal the survivor's new one.
  std::vector<Value *> Maps;
  for (Value &V : Storage) {
    if (V.K != Value::Kind::Map || V.MapRoot == BddManager::InvalidRef)
      continue;
    Table.erase(&V);
    Maps.push_back(&V);
  }
  for (Value *V : Maps) {
    assert(V->MapRoot < Remap.size() && "map root past the remap table");
    V->MapRoot = Remap[V->MapRoot];
    if (V->MapRoot != BddManager::InvalidRef)
      Table.insert(V);
  }
}

const Value *ValueArena::intern(Value &&V) {
  // Probe with a stack copy first to avoid growing storage on hits.
  auto It = Table.find(&V);
  if (It != Table.end())
    return *It;
  // Safe point before the arena grows: hits stay free, and a throw here
  // leaves the arena and table untouched.
  if (Governor::active())
    Governor::pollSafePoint(GovSite::EvalAlloc);
  Storage.push_back(std::move(V));
  const Value *P = &Storage.back();
  Table.insert(P);
  return P;
}
