//===- Value.h - NV runtime values ------------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immutable, interned runtime values. Interning makes structural equality
/// pointer equality, which is what lets MTBDD leaves (Sec. 5.1) share and
/// compare in O(1). Map values embed the canonical MTBDD root; closure
/// values carry an abstract callable plus enough source information to
/// evaluate them symbolically over key bits (the mapIte predicate path).
///
//===----------------------------------------------------------------------===//

#ifndef NV_EVAL_VALUE_H
#define NV_EVAL_VALUE_H

#include "bdd/Mtbdd.h"
#include "core/Type.h"

#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

namespace nv {

class Value;
struct Expr;

/// An abstract NV function value. Implemented by the tree-walking
/// interpreter and by the closure compiler; the map runtime and simulator
/// only see this interface.
class ClosureData {
public:
  virtual ~ClosureData();

  /// Applies the closure to one argument.
  virtual const Value *call(const Value *Arg) const = 0;

  /// A stable identity for MTBDD operation caching: two closures with the
  /// same key must denote the same function. Computed from the source
  /// expression identity and the captured environment values.
  virtual uint64_t cacheKey() const = 0;

  /// The Fun expression this closure was built from (for symbolic
  /// evaluation of predicates over map keys).
  virtual const Expr *sourceExpr() const = 0;

  /// Looks up a captured (free) variable by name; null when absent.
  virtual const Value *lookupFree(const std::string &Name) const = 0;

protected:
  ClosureData() = default;
};

/// An immutable NV value. Construct only through ValueArena (or the
/// NvContext convenience factories) so pointers are canonical.
class Value {
public:
  enum class Kind : uint8_t {
    Bool,
    Int,
    Node,
    Edge,
    Tuple, ///< Also used for record values (fields in sorted-label order).
    Option,
    Map,
    Closure,
  };

  Kind K = Kind::Bool;
  bool B = false;
  uint64_t I = 0;      ///< Int payload (truncated to Width bits).
  unsigned Width = 32; ///< Int width.
  uint32_t N = 0;      ///< Node id; Edge source.
  uint32_t N2 = 0;     ///< Edge target.
  std::vector<const Value *> Elems; ///< Tuple components.
  const Value *Inner = nullptr;     ///< Option payload (null = None).
  BddManager::Ref MapRoot = 0;      ///< Map: canonical MTBDD root.
  unsigned KeyBits = 0;             ///< Map: key bit width.
  TypePtr KeyType;                  ///< Map: key type (for printing/get).
  std::shared_ptr<ClosureData> Closure;

  bool isBool() const { return K == Kind::Bool; }
  bool isTrue() const { return K == Kind::Bool && B; }
  bool isNone() const { return K == Kind::Option && !Inner; }
  bool isSome() const { return K == Kind::Option && Inner; }

  /// Structural hash; maps hash by canonical root, closures by identity.
  uint64_t hash() const;
  /// Structural equality consistent with hash().
  bool equals(const Value &O) const;

  /// Renders the value (maps print as "<map:N leaves>" without a context;
  /// NvContext::printValue gives full map contents).
  std::string str() const;
};

/// Hash-consing arena for values. Pointers returned by intern() are
/// canonical: equal values get equal pointers.
class ValueArena {
public:
  const Value *intern(Value &&V);
  size_t size() const { return Storage.size(); }

  /// GC support: rewrites every map value's MapRoot through \p Remap
  /// (Remap[old] == BddManager::InvalidRef marks a collected root). Live
  /// map values are re-hashed under their new root; dead ones are evicted
  /// from the intern table and marked with an InvalidRef root. Evicted
  /// values keep their storage (outstanding pointers stay valid) but are
  /// never returned by intern() again, so a later map that reuses the same
  /// Ref index gets a fresh canonical value instead of aliasing a corpse.
  void remapMapRoots(const std::vector<BddManager::Ref> &Remap);

private:
  struct PtrHash {
    size_t operator()(const Value *V) const {
      return static_cast<size_t>(V->hash());
    }
  };
  struct PtrEq {
    bool operator()(const Value *A, const Value *B) const {
      return A->equals(*B);
    }
  };
  std::deque<Value> Storage;
  std::unordered_set<const Value *, PtrHash, PtrEq> Table;
};

} // namespace nv

#endif // NV_EVAL_VALUE_H
