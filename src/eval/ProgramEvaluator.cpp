//===- ProgramEvaluator.cpp - Protocol semantics interface -----------------===//

#include "eval/ProgramEvaluator.h"

#include "support/Governor.h"

using namespace nv;

ProtocolEvaluator::~ProtocolEvaluator() = default;

InterpProgramEvaluator::InterpProgramEvaluator(NvContext &Ctx,
                                               const Program &P,
                                               const SymbolicAssignment &Sym)
    : Ctx(Ctx), I(Ctx) {
  for (const DeclPtr &D : P.Decls) {
    switch (D->Kind) {
    case DeclKind::Let:
      Globals = envBind(Globals, D->Name, I.eval(D->Body.get(), Globals));
      break;
    case DeclKind::Symbolic: {
      const Value *V = nullptr;
      auto It = Sym.find(D->Name);
      if (It != Sym.end())
        V = It->second;
      else if (D->Body)
        V = I.eval(D->Body.get(), Globals);
      else
        V = Ctx.defaultValue(D->Ty);
      Globals = envBind(Globals, D->Name, V);
      break;
    }
    case DeclKind::Require: {
      const Value *V = I.eval(D->Body.get(), Globals);
      RequiresOk &= V->isTrue();
      break;
    }
    case DeclKind::TypeAlias:
    case DeclKind::Nodes:
    case DeclKind::Edges:
      break;
    }
  }
  InitClo = envLookup(Globals.get(), "init");
  TransClo = envLookup(Globals.get(), "trans");
  MergeClo = envLookup(Globals.get(), "merge");
  AssertClo = envLookup(Globals.get(), "assert");
  if (!InitClo || !TransClo || !MergeClo)
    evalError("program is missing init/trans/merge declarations");
  // Root the whole global environment: anything a later scenario can
  // reach through init/trans/merge/assert must survive collections.
  for (const EnvNode *N = Globals.get(); N; N = N->Parent.get())
    pinned(N->V);
}

InterpProgramEvaluator::~InterpProgramEvaluator() {
  for (const Value *V : Pinned)
    Ctx.unpinValue(V);
}

const Value *InterpProgramEvaluator::init(uint32_t U) {
  return Ctx.applyClosure(InitClo, Ctx.nodeV(U));
}

const Value *InterpProgramEvaluator::trans(uint32_t U, uint32_t V,
                                           const Value *A) {
  auto Key = std::make_pair(U, V);
  auto It = TransPartial.find(Key);
  const Value *Partial;
  if (It != TransPartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(TransClo, Ctx.edgeV(U, V)));
    TransPartial.emplace(Key, Partial);
  }
  return Ctx.applyClosure(Partial, A);
}

const Value *InterpProgramEvaluator::merge(uint32_t U, const Value *A,
                                           const Value *B) {
  auto It = MergePartial.find(U);
  const Value *Partial;
  if (It != MergePartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(MergeClo, Ctx.nodeV(U)));
    MergePartial.emplace(U, Partial);
  }
  return Ctx.applyClosure(Ctx.applyClosure(Partial, A), B);
}

bool InterpProgramEvaluator::assertAt(uint32_t U, const Value *A) {
  if (!AssertClo)
    return true;
  auto It = AssertPartial.find(U);
  const Value *Partial;
  if (It != AssertPartial.end()) {
    Partial = It->second;
  } else {
    Partial = pinned(Ctx.applyClosure(AssertClo, Ctx.nodeV(U)));
    AssertPartial.emplace(U, Partial);
  }
  return Ctx.applyClosure(Partial, A)->isTrue();
}

const Value *InterpProgramEvaluator::evalUnderGlobals(const ExprPtr &E) {
  return I.eval(E.get(), Globals);
}
