//===- NvContext.h - Shared evaluation context ------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared state of one analysis run: the MTBDD manager, the value
/// interning arena, the bit layout for the concrete topology, the closure
/// identity registry used to memoize MTBDD operations across simulator
/// iterations, and the map runtime implementing Fig. 7's operations over
/// MTBDDs (Sec. 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef NV_EVAL_NVCONTEXT_H
#define NV_EVAL_NVCONTEXT_H

#include "bdd/BitLayout.h"
#include "bdd/Mtbdd.h"
#include "core/Ast.h"
#include "eval/Value.h"

#include <unordered_map>
#include <unordered_set>

namespace nv {

/// Shared evaluation state. One NvContext per analysis — or, since the
/// MTBDD memory overhaul, one per analysis *shard*, reused across
/// scenarios: resetBetweenRuns() garbage-collects the diagram store back
/// to the pinned baseline (predicate cache, pinned globals) instead of
/// forcing callers to re-parse the program to get a fresh arena.
///
/// The context is the manager's primary GcRootProvider: it reports the
/// predicate-BDD cache and every pinned value (pinValue/unpinValue walk
/// tuples, options, closures' captured environments, and map roots), and
/// it serves as the payload tracer that surfaces diagram roots buried in
/// dict-of-dict leaf values during marking. After a sweep it remaps the
/// predicate cache and the value arena's map roots.
class NvContext : public BddManager::GcRootProvider {
public:
  explicit NvContext(uint32_t NumNodes);
  ~NvContext() override;

  BddManager Mgr;
  BitLayout Layout;
  ValueArena Arena;

  const Value *TrueV = nullptr;
  const Value *FalseV = nullptr;
  const Value *NoneV = nullptr;

  //===--------------------------------------------------------------------===//
  // Value factories (canonical pointers)
  //===--------------------------------------------------------------------===//

  const Value *boolV(bool B) { return B ? TrueV : FalseV; }
  const Value *intV(uint64_t I, unsigned Width = 32);
  const Value *nodeV(uint32_t N);
  const Value *edgeV(uint32_t U, uint32_t V);
  const Value *tupleV(std::vector<const Value *> Elems);
  const Value *someV(const Value *Inner);
  const Value *noneV() { return NoneV; }
  const Value *mapV(BddManager::Ref Root, TypePtr KeyType);
  const Value *closureV(std::shared_ptr<ClosureData> C);
  const Value *valueOfLiteral(const Literal &L);

  /// Applies an NV function value to an argument.
  const Value *applyClosure(const Value *Fn, const Value *Arg);

  //===--------------------------------------------------------------------===//
  // Bit encoding of finite values (Sec. 5.1)
  //===--------------------------------------------------------------------===//

  /// Appends the MSB-first bit encoding of \p V (of finite type \p Ty).
  void encodeValue(const Value *V, const TypePtr &Ty, std::vector<bool> &Out);

  /// Decodes a value of type \p Ty starting at \p Pos (advanced past it).
  const Value *decodeValue(const std::vector<bool> &Bits, size_t &Pos,
                           const TypePtr &Ty);

  /// The canonical default value of a concrete type: false / 0 / 0n /
  /// (0n,0n) / None / tuple of defaults / constant map of defaults.
  const Value *defaultValue(const TypePtr &Ty);

  /// Enumerates every value of a small finite type (tests, frontends).
  std::vector<const Value *> enumerateType(const TypePtr &Ty);

  //===--------------------------------------------------------------------===//
  // Map runtime (Fig. 7 over MTBDDs)
  //===--------------------------------------------------------------------===//

  const Value *mapCreate(const TypePtr &KeyTy, const Value *Default);
  const Value *mapGet(const Value *M, const Value *Key);
  const Value *mapSet(const Value *M, const Value *Key, const Value *V);
  const Value *mapMap(const Value *Fn, const Value *M);
  const Value *mapCombine(const Value *Fn, const Value *A, const Value *B);
  const Value *mapIte(const Value *Pred, const Value *FnThen,
                      const Value *FnElse, const Value *M);

  /// Renders a map's contents as cubes (testing/debugging).
  std::string printValue(const Value *V);

  //===--------------------------------------------------------------------===//
  // Closure identity and operation tags
  //===--------------------------------------------------------------------===//

  /// Canonical id for a closure built from \p Src with the given captured
  /// values: identical (Src, Captured) pairs get identical ids, which makes
  /// MTBDD operation caching effective across simulator iterations.
  uint64_t closureId(const Expr *Src,
                     const std::vector<const Value *> &Captured);

  /// A stable MTBDD operation tag for the semantic operation identified by
  /// (Kind, K1, K2): same inputs, same tag.
  uint64_t opTag(uint64_t Kind, uint64_t K1, uint64_t K2 = 0);

  /// Builds (and caches) the predicate BDD of an NV function over the bit
  /// encoding of its key-typed parameter, by symbolic evaluation of the
  /// closure body (implemented in SymBdd.cpp).
  BddManager::Ref predToBdd(const Value *Pred, const TypePtr &KeyTy);

  //===--------------------------------------------------------------------===//
  // Memory management (GC roots and scenario reuse)
  //===--------------------------------------------------------------------===//

  /// Pins \p V (reference-counted): every diagram reachable from it —
  /// through tuples, options, closure captures, and map roots — survives
  /// garbage collection. Evaluators pin their globals and partial
  /// applications; analyses pin values they retain across scenarios.
  void pinValue(const Value *V);
  void unpinValue(const Value *V);

  /// Appends the diagram roots reachable from \p V to \p Out, deduplicated
  /// against the per-collection visited set (cleared in gcBegin).
  void collectValueRoots(const Value *V, std::vector<BddManager::Ref> &Out);

  /// Safe point between scenarios: garbage-collects the diagram store back
  /// to the pinned baseline (predicate cache, pinned values). The program,
  /// layout, interned scalars, closure ids and op tags all persist, so the
  /// next scenario skips parsing/typechecking/compilation entirely.
  void resetBetweenRuns();

  // BddManager::GcRootProvider:
  void gcBegin() override;
  void appendRoots(std::vector<BddManager::Ref> &Out) override;
  void notifyRemap(const std::vector<BddManager::Ref> &Remap) override;

private:
  struct ClosureKey {
    const Expr *Src;
    std::vector<const Value *> Captured;
    bool operator==(const ClosureKey &O) const {
      return Src == O.Src && Captured == O.Captured;
    }
  };
  struct ClosureKeyHash {
    size_t operator()(const ClosureKey &K) const {
      uint64_t H = reinterpret_cast<uint64_t>(K.Src);
      for (const Value *V : K.Captured)
        H = (H ^ reinterpret_cast<uint64_t>(V)) * 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };
  struct OpTagKey {
    uint64_t Kind, K1, K2;
    bool operator==(const OpTagKey &O) const {
      return Kind == O.Kind && K1 == O.K1 && K2 == O.K2;
    }
  };
  struct OpTagKeyHash {
    size_t operator()(const OpTagKey &K) const {
      uint64_t H = K.Kind;
      H = (H ^ K.K1) * 0x9E3779B97F4A7C15ull;
      H = (H ^ K.K2) * 0x9E3779B97F4A7C15ull;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  std::unordered_map<ClosureKey, uint64_t, ClosureKeyHash> ClosureIds;
  std::unordered_map<OpTagKey, uint64_t, OpTagKeyHash> OpTags;
  std::unordered_map<uint64_t, BddManager::Ref> PredCache;
  uint64_t NextClosureId = 1;

  std::unordered_map<const Value *, uint32_t> PinnedValues;
  /// Values already walked during the current collection (root gathering
  /// and leaf-payload tracing share it; cleared in gcBegin).
  std::unordered_set<const Value *> GcSeen;

  static void tracePayload(void *Cookie, const void *Payload,
                           std::vector<BddManager::Ref> &Out);
};

/// Free variables of an expression (memoized per Expr node identity),
/// sorted and deduplicated. Used to compute closure capture sets.
const std::vector<std::string> &freeVarsOf(const Expr *E);

} // namespace nv

#endif // NV_EVAL_NVCONTEXT_H
