//===- Generators.cpp - NV benchmark program generators ----------------------===//

#include "net/Generators.h"

#include "core/Parser.h"
#include "core/TypeChecker.h"

using namespace nv;

namespace {

/// `let layerOf (u : node) = match u with | ... ` over a fat tree.
std::string layerFn(const FatTree &FT) {
  std::string S = "let layerOf (u : node) =\n  match u with\n";
  for (uint32_t U = 0; U < FT.numNodes(); ++U)
    S += "  | " + std::to_string(U) + "n -> " +
         std::to_string(static_cast<int>(FT.layerOf(U))) + "\n";
  // The match is total over declared nodes; the wildcard keeps the
  // type checker's exhaustiveness trivially satisfied.
  S += "  | _ -> 0\n";
  return S;
}

std::string bgpInit(uint32_t Dest) {
  std::string D = std::to_string(Dest) + "n";
  return "let init (u : node) =\n"
         "  match u with\n"
         "  | " + D + " -> Some {length = 0; lp = 100; med = 80; "
         "comms = {}; origin = " + D + "}\n"
         "  | _ -> None\n";
}

/// Fig. 12's property: "every node has a route to the prefix announced by
/// the destination" — reachability, with no constraint on the route.
std::string bgpAssertAll(uint32_t) {
  return "let assert (u : node) (x : attribute) =\n"
         "  match x with\n"
         "  | None -> false\n"
         "  | Some b -> true\n";
}

/// Under the valley-free policy only top-of-rack reachability is
/// guaranteed across failures (aggregation/core switches in the
/// destination plane legitimately lose the route): assert at ToRs only.
std::string bgpAssertTors(uint32_t) {
  return "let assert (u : node) (x : attribute) =\n"
         "  if layerOf u = 0 then\n"
         "    (match x with\n"
         "     | None -> false\n"
         "     | Some b -> true)\n"
         "  else true\n";
}

std::string bgpInitAssert(uint32_t Dest) {
  return bgpInit(Dest) + bgpAssertAll(Dest);
}

} // namespace

std::string nv::generateSpSingle(unsigned K, unsigned DestLeaf) {
  FatTree FT(K);
  uint32_t Dest = FT.leaves()[DestLeaf % FT.leaves().size()];
  std::string S = "include bgp\n" + FT.topology().toNvDecls();
  S += "let trans e x = transBgp e x\n";
  S += "let merge u x y = mergeBgp u x y\n";
  S += bgpInitAssert(Dest);
  return S;
}

std::string nv::generateFatSingle(unsigned K, unsigned DestLeaf,
                                  bool AssertTorsOnly) {
  FatTree FT(K);
  uint32_t Dest = FT.leaves()[DestLeaf % FT.leaves().size()];
  std::string S = "include bgp\n" + FT.topology().toNvDecls();
  S += layerFn(FT);
  // Valley-free policy: tag on the way down, filter tagged routes going
  // back up (community 1 plays the "went down" role).
  S += "let trans (e : edge) (x : attribute) =\n"
       "  let (u, v) = e in\n"
       "  let lu = layerOf u in\n"
       "  let lv = layerOf v in\n"
       "  match transBgp e x with\n"
       "  | None -> None\n"
       "  | Some b ->\n"
       "    if lv < lu then Some {b with comms = b.comms[1 := true]}\n"
       "    else if b.comms[1] then None\n"
       "    else Some b\n";
  S += "let merge u x y = mergeBgp u x y\n";
  S += bgpInit(Dest) +
       (AssertTorsOnly ? bgpAssertTors(Dest) : bgpAssertAll(Dest));
  return S;
}

namespace {

/// init/assert parameterized by a symbolic destination node.
const char *ParamInit =
    "symbolic dest : node\n"
    "let init (u : node) =\n"
    "  if u = dest then Some {length = 0; lp = 100; med = 80; comms = {}; "
    "origin = dest}\n"
    "  else None\n";
const char *ParamAssertAll =
    "let assert (u : node) (x : attribute) =\n"
    "  match x with\n"
    "  | None -> false\n"
    "  | Some b -> b.origin = dest\n";
const char *ParamAssertTors =
    "let assert (u : node) (x : attribute) =\n"
    "  if layerOf u = 0 then\n"
    "    (match x with\n"
    "     | None -> false\n"
    "     | Some b -> b.origin = dest)\n"
    "  else true\n";

} // namespace

std::string nv::generateSpSingleParam(unsigned K) {
  FatTree FT(K);
  std::string S = "include bgp\n" + FT.topology().toNvDecls();
  S += "let trans e x = transBgp e x\n";
  S += "let merge u x y = mergeBgp u x y\n";
  S += ParamInit;
  S += ParamAssertAll;
  return S;
}

std::string nv::generateFatSingleParam(unsigned K) {
  FatTree FT(K);
  std::string S = "include bgp\n" + FT.topology().toNvDecls();
  S += layerFn(FT);
  S += "let trans (e : edge) (x : attribute) =\n"
       "  let (u, v) = e in\n"
       "  let lu = layerOf u in\n"
       "  let lv = layerOf v in\n"
       "  match transBgp e x with\n"
       "  | None -> None\n"
       "  | Some b ->\n"
       "    if lv < lu then Some {b with comms = b.comms[1 := true]}\n"
       "    else if b.comms[1] then None\n"
       "    else Some b\n";
  S += "let merge u x y = mergeBgp u x y\n";
  S += ParamInit;
  S += ParamAssertTors;
  return S;
}

std::string nv::generateSpAllPrefixes(unsigned K) {
  FatTree FT(K);
  std::string S = FT.topology().toNvDecls();
  S += "type attribute = dict[int16, option[int16]]\n";
  S += "let init (u : node) =\n"
       "  let base : attribute = createDict None in\n"
       "  match u with\n";
  auto Leaves = FT.leaves();
  for (size_t I = 0; I < Leaves.size(); ++I)
    S += "  | " + std::to_string(Leaves[I]) + "n -> base[" +
         std::to_string(I) + "u16 := Some 0u16]\n";
  S += "  | _ -> base\n";
  S += "let trans (e : edge) (x : attribute) =\n"
       "  map (fun w -> match w with | None -> None "
       "| Some d -> Some (d + 1u16)) x\n";
  S += "let merge (u : node) (x : attribute) (y : attribute) =\n"
       "  combine (fun a b ->\n"
       "    match a, b with\n"
       "    | _, None -> a\n"
       "    | None, _ -> b\n"
       "    | Some d1, Some d2 -> if d1 <= d2 then a else b) x y\n";
  return S;
}

std::string nv::generateFatAllPrefixes(unsigned K) {
  FatTree FT(K);
  std::string S = FT.topology().toNvDecls();
  S += "type rt = {len : int16; dn : bool}\n";
  S += "type attribute = dict[int16, option[rt]]\n";
  S += layerFn(FT);
  S += "let init (u : node) =\n"
       "  let base : attribute = createDict None in\n"
       "  match u with\n";
  auto Leaves = FT.leaves();
  for (size_t I = 0; I < Leaves.size(); ++I)
    S += "  | " + std::to_string(Leaves[I]) + "n -> base[" +
         std::to_string(I) + "u16 := Some {len = 0u16; dn = false}]\n";
  S += "  | _ -> base\n";
  S += "let trans (e : edge) (x : attribute) =\n"
       "  let (u, v) = e in\n"
       "  let down = layerOf v < layerOf u in\n"
       "  map (fun (w : option[rt]) ->\n"
       "    match w with\n"
       "    | None -> None\n"
       "    | Some r ->\n"
       "      if down then Some {len = r.len + 1u16; dn = true}\n"
       "      else if r.dn then None\n"
       "      else Some {len = r.len + 1u16; dn = false}) x\n";
  S += "let merge (u : node) (x : attribute) (y : attribute) =\n"
       "  combine (fun (a : option[rt]) (b : option[rt]) ->\n"
       "    match a, b with\n"
       "    | _, None -> a\n"
       "    | None, _ -> b\n"
       "    | Some r1, Some r2 -> if r1.len <= r2.len then a else b) x y\n";
  return S;
}

std::string nv::generateUsCarrier(uint32_t Seed) {
  Topology T = usCarrierTopology(Seed);
  std::string S = "include bgp\n" + T.toNvDecls();

  // Seeded per-node multi-exit discriminators (consistent tie-breaking
  // keeps the policy convergent) and a set of tagging hubs.
  uint64_t State = Seed ^ 0x9E3779B97F4A7C15ull;
  auto NextRand = [&]() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(State >> 33);
  };
  S += "let medOf (u : node) =\n  match u with\n";
  for (uint32_t U = 0; U < T.NumNodes; ++U)
    S += "  | " + std::to_string(U) + "n -> " +
         std::to_string(10 + NextRand() % 90) + "\n";
  S += "  | _ -> 0\n";
  S += "let isHub (u : node) =\n  match u with\n";
  for (uint32_t U = 0; U < T.NumNodes; ++U)
    if (NextRand() % 10 == 0)
      S += "  | " + std::to_string(U) + "n -> true\n";
  S += "  | _ -> false\n";

  S += "let trans (e : edge) (x : attribute) =\n"
       "  let (u, v) = e in\n"
       "  match transBgp e x with\n"
       "  | None -> None\n"
       "  | Some b ->\n"
       "    let tagged = if isHub u then {b with comms = b.comms[7 := true]}"
       " else b in\n"
       "    Some {tagged with med = medOf v}\n";
  S += "let merge u x y = mergeBgp u x y\n";
  S += bgpInitAssert(0);
  return S;
}

std::optional<Program> nv::loadGenerated(const std::string &Source,
                                         DiagnosticEngine &Diags) {
  auto P = parseProgram(Source, Diags);
  if (!P)
    return std::nullopt;
  if (!typeCheck(*P, Diags))
    return std::nullopt;
  return P;
}
