//===- Topology.cpp - Benchmark topologies -----------------------------------===//

#include "net/Topology.h"

#include "support/Fatal.h"

#include <algorithm>
#include <set>

using namespace nv;

std::string Topology::toNvDecls() const {
  std::string S = "let nodes = " + std::to_string(NumNodes) + "\n";
  S += "let edges = {";
  for (size_t I = 0; I < Links.size(); ++I) {
    if (I)
      S += ";";
    S += std::to_string(Links[I].first) + "n=" +
         std::to_string(Links[I].second) + "n";
  }
  S += "}\n";
  return S;
}

FatTree::FatTree(unsigned K) : K(K) {
  if (K < 2 || K % 2 != 0)
    fatalError("fat-tree parameter k must be even and >= 2");
}

Topology FatTree::topology() const {
  Topology T;
  T.NumNodes = numNodes();
  unsigned Half = K / 2;
  for (unsigned P = 0; P < K; ++P) {
    for (unsigned I = 0; I < Half; ++I)
      for (unsigned J = 0; J < Half; ++J)
        T.Links.emplace_back(P * K + I, P * K + Half + J);
    for (unsigned J = 0; J < Half; ++J)
      for (unsigned C = 0; C < Half; ++C)
        T.Links.emplace_back(P * K + Half + J, K * K + J * Half + C);
  }
  return T;
}

FatTree::Layer FatTree::layerOf(uint32_t U) const {
  if (U >= K * K)
    return Layer::Core;
  return (U % K) < K / 2 ? Layer::Tor : Layer::Agg;
}

std::vector<uint32_t> FatTree::leaves() const {
  std::vector<uint32_t> Out;
  for (unsigned P = 0; P < K; ++P)
    for (unsigned I = 0; I < K / 2; ++I)
      Out.push_back(P * K + I);
  return Out;
}

Topology nv::usCarrierTopology(uint32_t Seed) {
  const uint32_t N = 174;
  const size_t TargetLinks = 410;
  Topology T;
  T.NumNodes = N;

  std::set<std::pair<uint32_t, uint32_t>> Seen;
  auto AddLink = [&](uint32_t A, uint32_t B) {
    if (A == B)
      return false;
    if (A > B)
      std::swap(A, B);
    if (!Seen.insert({A, B}).second)
      return false;
    T.Links.emplace_back(A, B);
    return true;
  };

  // Backbone ring.
  for (uint32_t I = 0; I < N; ++I)
    AddLink(I, (I + 1) % N);

  // Seeded chords with skewed (mostly short) span: sparse local meshes
  // with occasional long-haul links, like a geographic carrier network.
  uint64_t State = Seed;
  auto NextRand = [&]() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(State >> 33);
  };
  while (T.Links.size() < TargetLinks) {
    uint32_t A = NextRand() % N;
    uint32_t R = NextRand() % 100;
    uint32_t Span = R < 70 ? 2 + NextRand() % 6
                  : R < 95 ? 8 + NextRand() % 16
                           : 30 + NextRand() % 60;
    AddLink(A, (A + Span) % N);
  }
  return T;
}
