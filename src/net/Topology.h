//===- Topology.h - Benchmark topologies ------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The topologies of Sec. 6.1: k-ary FatTrees (SP(k)/FAT(k) have 5k²/4
/// nodes and k³/2 undirected links) and a synthetic stand-in for Topology
/// Zoo's USCarrier (174 nodes, 410 links, asymmetric ring-and-chord
/// structure; the real data set is not redistributable, see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef NV_NET_TOPOLOGY_H
#define NV_NET_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nv {

struct Topology {
  uint32_t NumNodes = 0;
  std::vector<std::pair<uint32_t, uint32_t>> Links;

  /// NV `let nodes / let edges` declarations for this topology.
  std::string toNvDecls() const;
};

/// Node numbering inside fatTreeTopology(K):
///   pod p in [0,K): ToR i   -> p*K + i          (i < K/2)
///                   agg j   -> p*K + K/2 + j    (j < K/2)
///   core (j,c)              -> K*K + j*(K/2)+c  (j,c < K/2)
/// Aggregation switch j of every pod connects to cores (j, *).
class FatTree {
public:
  explicit FatTree(unsigned K);

  unsigned k() const { return K; }
  uint32_t numNodes() const { return 5 * K * K / 4; }

  Topology topology() const;

  enum class Layer { Tor = 0, Agg = 1, Core = 2 };
  Layer layerOf(uint32_t U) const;

  /// All top-of-rack switches (the prefix-announcing leaves).
  std::vector<uint32_t> leaves() const;

  /// Pod of a non-core node.
  uint32_t podOf(uint32_t U) const { return U / K; }

private:
  unsigned K;
};

/// Deterministic synthetic WAN with USCarrier's published shape: 174
/// nodes, 410 links, a backbone ring plus seeded chords of skewed span
/// (low symmetry, little redundancy).
Topology usCarrierTopology(uint32_t Seed = 2020);

} // namespace nv

#endif // NV_NET_TOPOLOGY_H
