//===- Generators.h - NV benchmark program generators -----------*- C++ -*-===//
//
// Part of nv-cpp. Emits the NV programs of the evaluation (Sec. 6.1):
// FatTrees running plain shortest-path eBGP (SP(k)), the valley-free
// tag-and-filter policy (FAT(k)), their all-prefixes variants, and the
// USCarrier-style WAN with a NetComplete-flavoured policy. Programs are
// generated as NV source text and parsed, exercising the full front half
// of the pipeline on benchmark-scale inputs.
//
//===----------------------------------------------------------------------===//

#ifndef NV_NET_GENERATORS_H
#define NV_NET_GENERATORS_H

#include "core/Ast.h"
#include "net/Topology.h"
#include "support/Diagnostics.h"

#include <optional>
#include <string>

namespace nv {

/// SP(k): single destination prefix announced by ToR \p Dest (index into
/// FatTree::leaves()), pure shortest-path BGP, all-nodes-reachable assert.
std::string generateSpSingle(unsigned K, unsigned DestLeaf = 0);

/// FAT(k): SP(k) plus the valley-free policy — routes propagated downward
/// are tagged with community 1; tagged routes are dropped when sent back
/// up (Sec. 6.1's "disallow valley routing"). With \p AssertTorsOnly the
/// assert covers only top-of-rack switches — the property that is
/// fault-tolerant under this policy (aggregation switches in the
/// destination plane legitimately lose routes when links fail).
std::string generateFatSingle(unsigned K, unsigned DestLeaf = 0,
                              bool AssertTorsOnly = true);

/// SP(k)/FAT(k) with a `symbolic dest : node` destination instead of a
/// baked-in one: parse/compile once, then instantiate dest per prefix
/// (the single-prefix mode of Fig. 13c, and the per-prefix baseline).
std::string generateSpSingleParam(unsigned K);
std::string generateFatSingleParam(unsigned K);

/// All-prefixes SP(k): the attribute is a dict from prefix (int16) to an
/// optional hop count; every ToR announces its own prefix (Fig. 14's
/// workload). No assert (the figure measures simulation).
std::string generateSpAllPrefixes(unsigned K);

/// All-prefixes FAT(k): per-prefix routes carry a went-down flag; the
/// valley-free filter applies pointwise via map (Fig. 13c's workload).
std::string generateFatAllPrefixes(unsigned K);

/// USCarrier-style WAN, single prefix at node 0: BGP with seeded per-node
/// med tie-breaking and community tagging at hub nodes (a NetComplete-
/// flavoured policy that stays convergent).
std::string generateUsCarrier(uint32_t Seed = 2020);

/// Parses + type-checks generated source; null on failure (internal bug).
std::optional<Program> loadGenerated(const std::string &Source,
                                     DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_NET_GENERATORS_H
