//===- SmtEncoder.cpp - NV-to-SMT encoding -----------------------------------===//

#include "smt/SmtEncoder.h"

#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/Interp.h"
#include "support/Governor.h"

#include <algorithm>
#include <cassert>

using namespace nv;

//===----------------------------------------------------------------------===//
// UnrollInfo
//===----------------------------------------------------------------------===//

int UnrollInfo::constIndex(const Value *K) const {
  for (size_t I = 0; I < ConstKeys.size(); ++I)
    if (ConstKeys[I] == K)
      return static_cast<int>(I);
  return -1;
}

int UnrollInfo::symIndex(const std::string &Name) const {
  for (size_t I = 0; I < SymKeys.size(); ++I)
    if (SymKeys[I] == Name)
      return static_cast<int>(I);
  return -1;
}

//===----------------------------------------------------------------------===//
// SmtEncoder basics
//===----------------------------------------------------------------------===//

SmtEncoder::SmtEncoder(z3::context &Z, z3::solver &Solver, NvContext &Ctx,
                       const Program &P, const SmtOptions &Opts,
                       DiagnosticEngine &Diags)
    : Z(Z), Solver(Solver), Ctx(Ctx), P(P), Opts(Opts), Diags(Diags) {}

void SmtEncoder::scalarTypes(const TypePtr &RawTy, std::vector<TypePtr> &Out) {
  TypePtr Ty = resolve(RawTy);
  switch (Ty->Kind) {
  case TypeKind::Bool:
  case TypeKind::Int:
  case TypeKind::Node:
    Out.push_back(Ty);
    return;
  case TypeKind::Edge:
    Out.push_back(Type::nodeTy());
    Out.push_back(Type::nodeTy());
    return;
  case TypeKind::Option:
    Out.push_back(Type::boolTy());
    scalarTypes(Ty->Elems[0], Out);
    return;
  case TypeKind::Tuple:
  case TypeKind::Record:
    for (const TypePtr &E : Ty->Elems)
      scalarTypes(E, Out);
    return;
  case TypeKind::Dict: {
    const UnrollInfo &U = unrollFor(Ty->Elems[0]);
    for (size_t I = 0; I < U.slots(); ++I)
      scalarTypes(Ty->Elems[1], Out);
    return;
  }
  case TypeKind::Arrow:
  case TypeKind::Var:
    break;
  }
  evalError("type " + typeToString(Ty) + " has no SMT shape");
}

unsigned SmtEncoder::shapeWidth(const TypePtr &Ty) {
  std::vector<TypePtr> Ts;
  scalarTypes(Ty, Ts);
  return static_cast<unsigned>(Ts.size());
}

z3::expr SmtEncoder::leafExpr(const SmtLeaf &L, const TypePtr &RawTy) {
  if (L.E)
    return *L.E;
  TypePtr Ty = resolve(RawTy);
  assert(L.C && "leaf has neither term nor constant");
  bool Lia = Opts.Ints == SmtOptions::IntMode::LIA;
  switch (Ty->Kind) {
  case TypeKind::Bool:
    return Z.bool_val(L.C->B);
  case TypeKind::Int:
    return Lia ? Z.int_val(static_cast<uint64_t>(L.C->I))
               : Z.bv_val(static_cast<uint64_t>(L.C->I), Ty->Width);
  case TypeKind::Node:
    return Lia ? Z.int_val(static_cast<uint64_t>(L.C->N))
               : Z.bv_val(static_cast<uint64_t>(L.C->N), 32);
  default:
    break;
  }
  evalError("non-scalar leaf type " + typeToString(Ty));
}

SmtLeaf SmtEncoder::maybeName(SmtLeaf L, const TypePtr &ScalarTy) {
  if (!Opts.NameIntermediates)
    return L;
  z3::expr E = leafExpr(L, ScalarTy);
  std::string Name = "__t" + std::to_string(FreshCounter++);
  z3::expr C = Z.constant(Name.c_str(), E.get_sort());
  Solver.add(C == E);
  ++NamedCount;
  SmtLeaf Out;
  Out.E = C;
  return Out;
}

SmtVal SmtEncoder::freshConsts(const std::string &Prefix, const TypePtr &Ty) {
  std::vector<TypePtr> Ts;
  scalarTypes(Ty, Ts);
  SmtVal V;
  V.Ty = resolve(Ty);
  bool Lia = Opts.Ints == SmtOptions::IntMode::LIA;
  for (size_t I = 0; I < Ts.size(); ++I) {
    TypePtr S = resolve(Ts[I]);
    std::string Name = Prefix + "_" + std::to_string(I);
    SmtLeaf L;
    if (S->Kind == TypeKind::Bool) {
      L.E = Z.constant(Name.c_str(), Z.bool_sort());
    } else if (Lia) {
      // LIA: unbounded integer constants with finiteness bounds (ints to
      // their width range, nodes to the topology size).
      z3::expr C = Z.constant(Name.c_str(), Z.int_sort());
      L.E = C;
      if (S->Kind == TypeKind::Node) {
        Solver.add(0 <= C && C < Z.int_val(uint64_t(Ctx.Layout.numNodes())));
      } else if (S->Width >= 63) {
        Solver.add(0 <= C);
      } else {
        Solver.add(0 <= C &&
                   C < Z.int_val(uint64_t(1) << S->Width));
      }
    } else {
      L.E = Z.constant(Name.c_str(),
                       S->Kind == TypeKind::Int ? Z.bv_sort(S->Width)
                                                : Z.bv_sort(32));
    }
    V.Leaves.push_back(L);
  }
  return V;
}

SmtVal SmtEncoder::lift(const Value *V, const TypePtr &RawTy) {
  TypePtr Ty = resolve(RawTy);
  SmtVal Out;
  Out.Ty = Ty;

  std::function<void(const Value *, const TypePtr &)> Rec =
      [&](const Value *W, const TypePtr &RawT) {
        TypePtr T = resolve(RawT);
        auto Push = [&](const Value *C, const TypePtr &ScalarTy) {
          SmtLeaf L;
          L.C = C;
          if (!Opts.ConstantFold)
            L.E = leafExpr(L, ScalarTy); // baseline: no concrete leaves
          Out.Leaves.push_back(L);
        };
        switch (T->Kind) {
        case TypeKind::Bool:
        case TypeKind::Int:
        case TypeKind::Node:
          Push(W, T);
          return;
        case TypeKind::Edge:
          Push(Ctx.nodeV(W->N), Type::nodeTy());
          Push(Ctx.nodeV(W->N2), Type::nodeTy());
          return;
        case TypeKind::Option: {
          Push(Ctx.boolV(W->Inner != nullptr), Type::boolTy());
          if (W->Inner)
            Rec(W->Inner, T->Elems[0]);
          else
            Rec(Ctx.defaultValue(T->Elems[0]), T->Elems[0]);
          return;
        }
        case TypeKind::Tuple:
        case TypeKind::Record:
          for (size_t I = 0; I < T->Elems.size(); ++I)
            Rec(W->Elems[I], T->Elems[I]);
          return;
        case TypeKind::Dict: {
          // A concrete map value: read each unrolled key out of the MTBDD.
          const UnrollInfo &U = unrollFor(T->Elems[0]);
          for (const Value *K : U.ConstKeys)
            Rec(Ctx.mapGet(W, K), T->Elems[1]);
          // Symbolic-key slots alias some constant or each other; seed them
          // with the map's default (any get through a symbolic key resolves
          // via the if-chain against constant slots first).
          for (size_t I = 0; I < U.SymKeys.size(); ++I)
            Rec(Ctx.mapGet(W, U.ConstKeys.empty()
                                  ? Ctx.defaultValue(T->Elems[0])
                                  : U.ConstKeys[0]),
                T->Elems[1]);
          return;
        }
        case TypeKind::Arrow:
        case TypeKind::Var:
          break;
        }
        evalError("cannot lift value of type " + typeToString(T));
      };
  Rec(V, Ty);
  return Out;
}

const SmtVal *SmtEncoder::global(const std::string &Name) const {
  for (auto It = Globals.rbegin(); It != Globals.rend(); ++It)
    if (It->first == Name)
      return &It->second;
  return nullptr;
}

z3::expr SmtEncoder::valEquals(const SmtVal &A, const SmtVal &B) {
  assert(A.Leaves.size() == B.Leaves.size() && "shape mismatch in equality");
  std::vector<TypePtr> Ts;
  scalarTypes(A.Ty, Ts);
  z3::expr Acc = Z.bool_val(true);
  for (size_t I = 0; I < A.Leaves.size(); ++I) {
    const SmtLeaf &LA = A.Leaves[I], &LB = B.Leaves[I];
    if (LA.isConcrete() && LB.isConcrete()) {
      if (LA.C != LB.C)
        return Z.bool_val(false);
      continue;
    }
    Acc = Acc && (leafExpr(LA, Ts[I]) == leafExpr(LB, Ts[I]));
  }
  return Acc.simplify();
}

void SmtEncoder::addEquality(const SmtVal &A, const SmtVal &B) {
  std::vector<TypePtr> Ts;
  scalarTypes(A.Ty, Ts);
  assert(A.Leaves.size() == B.Leaves.size() && "shape mismatch");
  for (size_t I = 0; I < A.Leaves.size(); ++I) {
    const SmtLeaf &LA = A.Leaves[I], &LB = B.Leaves[I];
    if (LA.isConcrete() && LB.isConcrete()) {
      if (LA.C != LB.C)
        Solver.add(Z.bool_val(false));
      continue;
    }
    Solver.add(leafExpr(LA, Ts[I]) == leafExpr(LB, Ts[I]));
  }
}

z3::expr SmtEncoder::boolExpr(const SmtVal &V) {
  assert(V.Leaves.size() == 1 && "boolean values have one leaf");
  return leafExpr(V.Leaves[0], Type::boolTy());
}

const Value *SmtEncoder::decodeFromModel(const z3::model &M, const SmtVal &V) {
  size_t Pos = 0;
  std::function<const Value *(const TypePtr &)> Rec =
      [&](const TypePtr &RawT) -> const Value * {
    TypePtr T = resolve(RawT);
    auto Scalar = [&](const TypePtr &ScalarTy) -> const Value * {
      const SmtLeaf &L = V.Leaves[Pos++];
      if (L.isConcrete())
        return L.C;
      z3::expr E = M.eval(*L.E, true);
      TypePtr S = resolve(ScalarTy);
      if (S->Kind == TypeKind::Bool)
        return Ctx.boolV(E.is_true());
      uint64_t Num = E.get_numeral_uint64();
      if (S->Kind == TypeKind::Int)
        return Ctx.intV(Num, S->Width);
      return Ctx.nodeV(static_cast<uint32_t>(Num));
    };
    switch (T->Kind) {
    case TypeKind::Bool:
    case TypeKind::Int:
    case TypeKind::Node:
      return Scalar(T);
    case TypeKind::Edge: {
      const Value *U = Scalar(Type::nodeTy());
      const Value *W = Scalar(Type::nodeTy());
      return Ctx.edgeV(U->N, W->N);
    }
    case TypeKind::Option: {
      const Value *Tag = Scalar(Type::boolTy());
      const Value *Payload = Rec(T->Elems[0]);
      return Tag->B ? Ctx.someV(Payload) : Ctx.noneV();
    }
    case TypeKind::Tuple:
    case TypeKind::Record: {
      std::vector<const Value *> Elems;
      for (const TypePtr &E : T->Elems)
        Elems.push_back(Rec(E));
      return Ctx.tupleV(std::move(Elems));
    }
    case TypeKind::Dict: {
      const UnrollInfo &U = unrollFor(T->Elems[0]);
      const Value *Map = Ctx.mapCreate(T->Elems[0],
                                       Ctx.defaultValue(T->Elems[1]));
      for (const Value *K : U.ConstKeys)
        Map = Ctx.mapSet(Map, K, Rec(T->Elems[1]));
      for (size_t I = 0; I < U.SymKeys.size(); ++I)
        Rec(T->Elems[1]); // skip symbolic slots in the reconstruction
      return Map;
    }
    case TypeKind::Arrow:
    case TypeKind::Var:
      break;
    }
    evalError("cannot decode type " + typeToString(T));
  };
  return Rec(V.Ty);
}

//===----------------------------------------------------------------------===//
// Unroll table
//===----------------------------------------------------------------------===//

const UnrollInfo &SmtEncoder::unrollFor(const TypePtr &KeyTy) {
  std::string Name = typeToString(zonk(KeyTy));
  auto It = Unroll.find(Name);
  if (It != Unroll.end())
    return It->second;
  UnrollInfo Info;
  Info.KeyTy = zonk(KeyTy);
  return Unroll.emplace(Name, std::move(Info)).first->second;
}

bool SmtEncoder::buildUnrollTable() {
  // Constant global definitions usable inside key expressions.
  Interp I(Ctx);
  EnvPtr ConstGlobals;
  std::vector<std::string> SymbolicNames;
  for (const DeclPtr &D : P.Decls)
    if (D->Kind == DeclKind::Symbolic)
      SymbolicNames.push_back(D->Name);

  auto IsSymbolic = [&](const std::string &N) {
    return std::find(SymbolicNames.begin(), SymbolicNames.end(), N) !=
           SymbolicNames.end();
  };

  bool Ok = true;
  auto ScanKey = [&](const ExprPtr &KeyE) {
    TypePtr KeyTy = zonk(KeyE->Ty);
    std::string TyName = typeToString(KeyTy);
    auto &Info = Unroll[TyName];
    if (!Info.KeyTy)
      Info.KeyTy = KeyTy;
    // Symbolic variable key.
    if (KeyE->Kind == ExprKind::Var && IsSymbolic(KeyE->Name)) {
      if (Info.symIndex(KeyE->Name) < 0)
        Info.SymKeys.push_back(KeyE->Name);
      return;
    }
    // Constant key: closed under the constant globals.
    bool Closed = true;
    for (const std::string &FV : freeVarsOf(KeyE.get()))
      if (!envLookup(ConstGlobals.get(), FV))
        Closed = false;
    if (!Closed) {
      Diags.error(KeyE->Loc,
                  "map keys must be constants or symbolic values "
                  "(Sec. 3.1); cannot encode key '" +
                      printExpr(KeyE) + "'");
      Ok = false;
      return;
    }
    const Value *K = I.eval(KeyE.get(), ConstGlobals);
    if (Info.constIndex(K) < 0)
      Info.ConstKeys.push_back(K);
  };

  for (const DeclPtr &D : P.Decls) {
    if (D->Kind == DeclKind::Let && D->Body) {
      // Track which globals are concrete constants (no symbolics, no
      // functions needed): try only scalar-ish closed bodies.
      bool Closed = true;
      for (const std::string &FV : freeVarsOf(D->Body.get()))
        if (!envLookup(ConstGlobals.get(), FV))
          Closed = false;
      if (Closed && D->Body->Kind != ExprKind::Fun)
        ConstGlobals = envBind(ConstGlobals, D->Name,
                               I.eval(D->Body.get(), ConstGlobals));
    }
    if (!D->Body)
      continue;
    forEachExpr(D->Body, [&](const ExprPtr &E) {
      if (E->Kind != ExprKind::Oper)
        return;
      if (E->OpCode == Op::MGet || E->OpCode == Op::MSet)
        ScanKey(E->Args[1]);
    });
  }

  // Deterministic slot order: sort constant keys by their rendering.
  for (auto &[_, Info] : Unroll)
    std::sort(Info.ConstKeys.begin(), Info.ConstKeys.end(),
              [](const Value *A, const Value *B) { return A->str() < B->str(); });
  return Ok;
}
