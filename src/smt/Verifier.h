//===- Verifier.h - SMT-based stable-state verification ---------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SMT verifier of Sec. 5.2: encodes the stable states N of a network
/// as constraints — per node u, L(u) = merge(u, init(u), trans(e, L(v))
/// over in-edges — plus symbolic declarations and require clauses, and
/// checks N ∧ ¬P for the program's assert P. UNSAT means the property
/// holds in every stable state for every symbolic assignment; SAT yields a
/// counterexample model (symbolic values plus the per-node routes).
///
//===----------------------------------------------------------------------===//

#ifndef NV_SMT_VERIFIER_H
#define NV_SMT_VERIFIER_H

#include "core/Ast.h"
#include "smt/SmtEncoder.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"

namespace nv {

struct VerifyOptions {
  SmtOptions Smt;
  unsigned TimeoutMs = 0; ///< Z3 timeout; 0 = none.
  /// Preprocess with simplify/solve-eqs/bit-blast tactics before solving.
  /// Essential for the exact bit-vector mode (IntMode::BV); the default
  /// LIA encoding solves fastest on Z3's default solver.
  bool UseTacticPipeline = false;
  /// Resource limits, enforced at the smt-encode and solver-check safe
  /// points. A deadline also bounds the solver itself (the z3 timeout is
  /// clamped to the remaining wall-clock budget), and the budget's
  /// CancelToken interrupts a blocking solver.check() via z3's interrupt.
  RunBudget Budget;
};

enum class VerifyStatus {
  Verified,          ///< N ∧ ¬P unsatisfiable.
  Falsified,         ///< Counterexample found.
  Unknown,           ///< Solver incompleteness (genuine "don't know").
  EncodingError,     ///< Program violates the encodable fragment.
  ResourceExhausted, ///< Budget trip, cancellation, solver timeout, or an
                     ///< injected fault; details in VerifyResult::Outcome.
};

struct VerifyResult {
  VerifyStatus Status = VerifyStatus::EncodingError;
  double EncodeMs = 0;
  double SolveMs = 0;
  uint64_t NumAssertions = 0;      ///< Solver assertion count (size metric).
  uint64_t NamedIntermediates = 0; ///< Baseline-mode fresh constants.
  std::string Counterexample;      ///< Human-readable model (Falsified).
  /// Structured cause for ResourceExhausted / EncodingError endings (also
  /// drives the CLI exit code).
  RunOutcome Outcome;
};

/// Verifies a type-checked program's assert declaration over its stable
/// states. A program without an assert is trivially Verified (after
/// checking the constraints are satisfiable, which guards against
/// vacuously unsatisfiable requires).
VerifyResult verifyProgram(const Program &P, const VerifyOptions &Opts,
                           DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_SMT_VERIFIER_H
