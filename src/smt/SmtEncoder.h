//===- SmtEncoder.h - NV-to-SMT encoding ------------------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizing pipeline to SMT of Sec. 5.2, realized as a symbolic
/// evaluator from typed NV into Z3 terms. The pipeline stages the paper
/// lists appear as follows:
///
///   Map unrolling     — dict[K, V] values are represented as one block of
///                       V-leaves per key in the program's key table
///                       (constant keys + symbolic keys, with the paper's
///                       if-chain encoding for symbolic get/set).
///   Option unboxing   — option[T] is a boolean tag leaf plus T's leaves.
///   Tuple flattening  — every value is a flat vector of scalar leaves
///                       (Bool or bit-vector), so only QF_BV remains.
///   Inlining          — applications are beta-expanded during evaluation
///                       (NV functions are non-recursive and total).
///   Partial evaluation— leaves carry concrete scalars until an operation
///                       actually mixes them with symbolic terms; concrete
///                       computation happens in C++, never in Z3.
///
/// The SmtOptions knobs degrade the encoder into the MineSweeper-style
/// baseline of Sec. 6.2: ConstantFold=false disables partial evaluation
/// (everything becomes a Z3 term), and NameIntermediates=true introduces a
/// fresh equated constant per intermediate result (the ad hoc one-pass
/// encoding's variable blowup).
///
//===----------------------------------------------------------------------===//

#ifndef NV_SMT_SMTENCODER_H
#define NV_SMT_SMTENCODER_H

#include "core/Ast.h"
#include "eval/Interp.h"
#include "eval/NvContext.h"
#include "support/Diagnostics.h"

#include <z3++.h>

#include <map>
#include <optional>
#include <set>

namespace nv {

struct SmtOptions {
  /// Compute operations over concrete leaves in C++ (the paper's partial
  /// evaluation). Off = every leaf becomes a Z3 term immediately.
  bool ConstantFold = true;
  /// Introduce a named constant per intermediate application/let result
  /// (MineSweeper-style naming). Off = structural terms.
  bool NameIntermediates = false;
  /// Integer theory (Sec. 5.2 mentions both): LIA encodes NV ints as
  /// unbounded integers with 0 <= x bounds (like MineSweeper; wrap-around
  /// is not modeled) and solves far faster on routing instances; BV is
  /// exact wrap-around bit-vector arithmetic.
  enum class IntMode { LIA, BV };
  IntMode Ints = IntMode::LIA;
};

/// One scalar slot of a flattened value: either a concrete interned scalar
/// or a Z3 term (Bool or bit-vector).
struct SmtLeaf {
  const Value *C = nullptr;
  std::optional<z3::expr> E;

  bool isConcrete() const { return C != nullptr; }
};

/// A flattened symbolic value: scalar leaves for finite types (with dicts
/// unrolled), or a function (an NV closure over symbolic locals).
struct SmtVal {
  TypePtr Ty;
  std::vector<SmtLeaf> Leaves;

  // Function representation.
  const Expr *FnExpr = nullptr;
  std::shared_ptr<std::vector<std::pair<std::string, SmtVal>>> FnLocals;

  bool isFun() const { return FnExpr != nullptr; }
};

/// Per-key-type unrolling info (Sec. 5.2 "Map Unrolling").
struct UnrollInfo {
  TypePtr KeyTy;
  std::vector<const Value *> ConstKeys;  ///< Sorted canonical constants.
  std::vector<std::string> SymKeys;      ///< Symbolic declarations used as keys.

  size_t slots() const { return ConstKeys.size() + SymKeys.size(); }
  int constIndex(const Value *K) const;
  int symIndex(const std::string &Name) const;
};

/// Symbolically evaluates a type-checked NV program into Z3 terms.
class SmtEncoder {
public:
  SmtEncoder(z3::context &Z, z3::solver &Solver, NvContext &Ctx,
             const Program &P, const SmtOptions &Opts,
             DiagnosticEngine &Diags);

  /// Builds the key table and the global environment (evaluating every
  /// top-level let, declaring symbolics, asserting requires).
  /// \returns false when the program violates the encoding restrictions
  /// (e.g. a computed map key).
  bool initialize();

  /// Number of scalar leaves of a (dict-unrolled) type.
  unsigned shapeWidth(const TypePtr &Ty);

  /// Declares fresh Z3 constants shaped like \p Ty.
  SmtVal freshConsts(const std::string &Prefix, const TypePtr &Ty);

  /// Lifts a concrete finite value (no dicts) to constant leaves.
  SmtVal lift(const Value *V, const TypePtr &Ty);

  /// Looks up a global (let or symbolic) by name; null if absent.
  const SmtVal *global(const std::string &Name) const;

  /// Applies a function value to arguments (beta expansion).
  SmtVal apply(const SmtVal &Fn, std::vector<SmtVal> Args);

  /// Leaf-wise equality as a single Z3 boolean.
  z3::expr valEquals(const SmtVal &A, const SmtVal &B);

  /// Asserts leaf-wise equality (used to tie label constants to their
  /// merge expressions).
  void addEquality(const SmtVal &A, const SmtVal &B);

  /// Converts a boolean SmtVal to a Z3 expression.
  z3::expr boolExpr(const SmtVal &V);

  /// Reads a concrete Value back out of a model (counterexamples). Dict
  /// slots are reported per-key through \p OnDictEntry when non-null.
  const Value *decodeFromModel(const z3::model &M, const SmtVal &V);

  /// The symbolic declarations' encodings, for model reporting.
  const std::vector<std::pair<std::string, SmtVal>> &symbolicVals() const {
    return Symbolics;
  }

  /// Metrics for the evaluation section: number of named intermediates and
  /// solver assertions issued through this encoder.
  uint64_t namedIntermediates() const { return NamedCount; }

  z3::context &z3ctx() { return Z; }

private:
  friend class SmtEval;

  z3::context &Z;
  z3::solver &Solver;
  NvContext &Ctx;
  const Program &P;
  SmtOptions Opts;
  DiagnosticEngine &Diags;

  std::map<std::string, UnrollInfo> Unroll; ///< By canonical key-type name.
  std::vector<std::pair<std::string, SmtVal>> Globals;
  std::vector<std::pair<std::string, SmtVal>> Symbolics;
  EnvPtr KeyGlobals;                  ///< Concrete globals usable in keys.
  std::set<std::string> SymbolicNameSet;
  uint64_t NamedCount = 0;
  uint64_t FreshCounter = 0;

  bool buildUnrollTable();
  const UnrollInfo &unrollFor(const TypePtr &KeyTy);

  z3::expr leafExpr(const SmtLeaf &L, const TypePtr &ScalarTy);
  SmtLeaf maybeName(SmtLeaf L, const TypePtr &ScalarTy);

  /// Scalar leaf types of \p Ty in order (for fresh consts / decoding).
  void scalarTypes(const TypePtr &Ty, std::vector<TypePtr> &Out);
};

} // namespace nv

#endif // NV_SMT_SMTENCODER_H
