//===- SmtEval.cpp - Symbolic evaluation of NV into Z3 terms ----------------===//
//
// The expression-level half of the SMT encoder: evaluates typed NV
// expressions to flattened SmtVals, folding concrete leaves in C++ when
// SmtOptions::ConstantFold is on (the paper's partial evaluation), and
// unrolling dictionary operations against the encoder's key table.
//
//===----------------------------------------------------------------------===//

#include "core/Printer.h"
#include "smt/SmtEncoder.h"
#include "support/Fatal.h"
#include "support/Governor.h"

#include <cassert>

using namespace nv;

namespace nv {

using Locals = std::vector<std::pair<std::string, SmtVal>>;

class SmtEval {
public:
  explicit SmtEval(SmtEncoder &Enc)
      : Enc(Enc), Z(Enc.Z), Ctx(Enc.Ctx), Fold(Enc.Opts.ConstantFold) {}

  SmtVal eval(const Expr *E, Locals &Frame);

  SmtVal applyFn(const SmtVal &Fn, SmtVal Arg) {
    if (!Fn.isFun())
      evalError("SMT evaluation applied a non-function");
    Locals Frame = Fn.FnLocals ? *Fn.FnLocals : Locals{};
    Frame.emplace_back(Fn.FnExpr->Name, std::move(Arg));
    SmtVal R = eval(Fn.FnExpr->Args[0].get(), Frame);
    // Baseline mode: name every (non-function) application result, the ad
    // hoc one-pass encoding's variable-per-intermediate blowup.
    if (Enc.Opts.NameIntermediates && !R.isFun()) {
      std::vector<TypePtr> Ts;
      Enc.scalarTypes(R.Ty, Ts);
      for (size_t I = 0; I < R.Leaves.size(); ++I)
        R.Leaves[I] = Enc.maybeName(R.Leaves[I], Ts[I]);
    }
    return R;
  }

private:
  SmtEncoder &Enc;
  z3::context &Z;
  NvContext &Ctx;
  bool Fold;

  //===--------------------------------------------------------------------===//
  // Leaf helpers
  //===--------------------------------------------------------------------===//

  SmtLeaf boolLeaf(bool B) {
    SmtLeaf L;
    L.C = Ctx.boolV(B);
    if (!Fold)
      L.E = Z.bool_val(B);
    return L;
  }

  bool isConcrete(const SmtLeaf &L) { return Fold && L.isConcrete(); }

  z3::expr asBool(const SmtLeaf &L) {
    return Enc.leafExpr(L, Type::boolTy());
  }

  SmtLeaf notL(const SmtLeaf &A) {
    if (isConcrete(A))
      return boolLeaf(!A.C->B);
    SmtLeaf L;
    L.E = !asBool(A);
    return L;
  }
  SmtLeaf andL(const SmtLeaf &A, const SmtLeaf &B) {
    if (isConcrete(A))
      return A.C->B ? B : boolLeaf(false);
    if (isConcrete(B))
      return B.C->B ? A : boolLeaf(false);
    SmtLeaf L;
    L.E = asBool(A) && asBool(B);
    return L;
  }
  SmtLeaf orL(const SmtLeaf &A, const SmtLeaf &B) {
    if (isConcrete(A))
      return A.C->B ? boolLeaf(true) : B;
    if (isConcrete(B))
      return B.C->B ? boolLeaf(true) : A;
    SmtLeaf L;
    L.E = asBool(A) || asBool(B);
    return L;
  }

  SmtVal boolVal(SmtLeaf L) {
    SmtVal V;
    V.Ty = Type::boolTy();
    V.Leaves.push_back(std::move(L));
    return V;
  }

  /// Leaf-wise equality with folding.
  SmtLeaf eqLeafwise(const SmtVal &A, const SmtVal &B) {
    if (A.Leaves.size() != B.Leaves.size())
      evalError("SMT equality over mismatched shapes: " +
                typeToString(A.Ty) + " vs " + typeToString(B.Ty));
    std::vector<TypePtr> Ts;
    Enc.scalarTypes(A.Ty, Ts);
    SmtLeaf Acc = boolLeaf(true);
    for (size_t I = 0; I < A.Leaves.size(); ++I) {
      const SmtLeaf &LA = A.Leaves[I], &LB = B.Leaves[I];
      if (isConcrete(LA) && isConcrete(LB)) {
        if (LA.C != LB.C)
          return boolLeaf(false);
        continue;
      }
      SmtLeaf Cmp;
      Cmp.E = Enc.leafExpr(LA, Ts[I]) == Enc.leafExpr(LB, Ts[I]);
      Acc = andL(Acc, Cmp);
    }
    return Acc;
  }

  /// Leaf-wise merge under a (possibly symbolic) boolean condition.
  SmtVal mergeIte(const SmtLeaf &Cond, const SmtVal &T, const SmtVal &E) {
    if (isConcrete(Cond))
      return Cond.C->B ? T : E;
    if (T.isFun() || E.isFun())
      evalError("cannot merge function values under a symbolic condition");
    if (T.Leaves.size() != E.Leaves.size())
      evalError("SMT ite over mismatched shapes");
    std::vector<TypePtr> Ts;
    Enc.scalarTypes(T.Ty, Ts);
    SmtVal Out;
    Out.Ty = T.Ty;
    z3::expr C = asBool(Cond);
    for (size_t I = 0; I < T.Leaves.size(); ++I) {
      const SmtLeaf &LT = T.Leaves[I], &LE = E.Leaves[I];
      if (isConcrete(LT) && isConcrete(LE) && LT.C == LE.C) {
        Out.Leaves.push_back(LT);
        continue;
      }
      SmtLeaf L;
      L.E = z3::ite(C, Enc.leafExpr(LT, Ts[I]), Enc.leafExpr(LE, Ts[I]));
      Out.Leaves.push_back(L);
    }
    return Out;
  }

  std::pair<unsigned, unsigned> fieldRange(const TypePtr &Ty, size_t Idx) {
    unsigned Off = 0;
    for (size_t I = 0; I < Idx; ++I)
      Off += Enc.shapeWidth(Ty->Elems[I]);
    return {Off, Enc.shapeWidth(Ty->Elems[Idx])};
  }

  SmtVal slice(const SmtVal &V, unsigned Off, unsigned W, TypePtr Ty) {
    SmtVal S;
    S.Ty = resolve(std::move(Ty));
    S.Leaves.assign(V.Leaves.begin() + Off, V.Leaves.begin() + Off + W);
    return S;
  }

  const SmtVal *lookupLocal(const Locals &Frame, const std::string &Name) {
    for (auto It = Frame.rbegin(); It != Frame.rend(); ++It)
      if (It->first == Name)
        return &It->second;
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Pattern matching
  //===--------------------------------------------------------------------===//

  SmtLeaf matchSmt(const Pattern *P, const SmtVal &Scrut, Locals &Frame) {
    switch (P->Kind) {
    case PatternKind::Wild:
      return boolLeaf(true);
    case PatternKind::Var:
      Frame.emplace_back(P->Name, Scrut);
      return boolLeaf(true);
    case PatternKind::Lit:
      return eqLeafwise(Scrut,
                        Enc.lift(Ctx.valueOfLiteral(P->Lit), P->Lit.type()));
    case PatternKind::None:
      return notL(Scrut.Leaves[0]);
    case PatternKind::Some: {
      TypePtr Inner = resolve(Scrut.Ty)->Elems[0];
      SmtVal Payload = slice(Scrut, 1, Enc.shapeWidth(Inner), Inner);
      SmtLeaf Tag = Scrut.Leaves[0];
      return andL(Tag, matchSmt(P->Elems[0].get(), Payload, Frame));
    }
    case PatternKind::Tuple: {
      TypePtr Ty = resolve(Scrut.Ty);
      if (Ty->Kind == TypeKind::Edge) {
        SmtLeaf C1 = matchSmt(P->Elems[0].get(),
                              slice(Scrut, 0, 1, Type::nodeTy()), Frame);
        SmtLeaf C2 = matchSmt(P->Elems[1].get(),
                              slice(Scrut, 1, 1, Type::nodeTy()), Frame);
        return andL(C1, C2);
      }
      SmtLeaf C = boolLeaf(true);
      for (size_t I = 0; I < P->Elems.size(); ++I) {
        auto [Off, W] = fieldRange(Ty, I);
        C = andL(C, matchSmt(P->Elems[I].get(),
                             slice(Scrut, Off, W, Ty->Elems[I]), Frame));
      }
      return C;
    }
    case PatternKind::Record: {
      TypePtr Ty = resolve(Scrut.Ty);
      SmtLeaf C = boolLeaf(true);
      for (size_t I = 0; I < P->Labels.size(); ++I) {
        int Idx = Ty->labelIndex(P->Labels[I]);
        auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
        C = andL(C, matchSmt(P->Elems[I].get(),
                             slice(Scrut, Off, W, Ty->Elems[Idx]), Frame));
      }
      return C;
    }
    }
    nv_unreachable("covered switch");
  }

  //===--------------------------------------------------------------------===//
  // Map operations (Sec. 5.2 unrolled encoding)
  //===--------------------------------------------------------------------===//

  /// Classifies a map-access key: symbolic (returns its SmtVal and slot
  /// name) or constant (returns the interned key value).
  struct KeyClass {
    bool Symbolic = false;
    std::string SymName;
    const Value *ConstKey = nullptr;
  };

  KeyClass classifyKey(const Expr *KeyE) {
    KeyClass K;
    if (KeyE->Kind == ExprKind::Var && Enc.SymbolicNameSet.count(KeyE->Name)) {
      K.Symbolic = true;
      K.SymName = KeyE->Name;
      return K;
    }
    Interp I(Ctx);
    K.ConstKey = I.eval(KeyE, Enc.KeyGlobals);
    return K;
  }

  SmtVal dictSlot(const SmtVal &M, const TypePtr &ValTy, size_t Slot) {
    unsigned W = Enc.shapeWidth(ValTy);
    return slice(M, Slot * W, W, ValTy);
  }

  SmtVal evalMapOp(const Expr *E, Locals &Frame) {
    TypePtr DictTy = resolve(E->OpCode == Op::MGet ? E->Args[0]->Ty : E->Ty);
    // For MGet the dict type is the first argument's; for the rest the
    // result type is itself a dict of the same key type.
    assert(DictTy->Kind == TypeKind::Dict && "map op without dict type");
    TypePtr KeyTy = DictTy->Elems[0];
    TypePtr ValTy = DictTy->Elems[1];
    const UnrollInfo &U = Enc.unrollFor(KeyTy);

    switch (E->OpCode) {
    case Op::MCreate: {
      SmtVal D = eval(E->Args[0].get(), Frame);
      SmtVal Out;
      Out.Ty = DictTy;
      for (size_t S = 0; S < U.slots(); ++S)
        Out.Leaves.insert(Out.Leaves.end(), D.Leaves.begin(), D.Leaves.end());
      return Out;
    }
    case Op::MGet: {
      SmtVal M = eval(E->Args[0].get(), Frame);
      KeyClass K = classifyKey(E->Args[1].get());
      if (!K.Symbolic) {
        int Idx = U.constIndex(K.ConstKey);
        if (Idx < 0)
          evalError("key " + K.ConstKey->str() +
                    " missing from the unroll table");
        return dictSlot(M, ValTy, static_cast<size_t>(Idx));
      }
      // Symbolic key: the paper's if-chain over constant keys, then
      // earlier symbolic keys, falling through to the key's own slot.
      int J = U.symIndex(K.SymName);
      assert(J >= 0 && "symbolic key missing from the unroll table");
      const SmtVal *SymV = Enc.global(K.SymName);
      SmtVal Res = dictSlot(M, ValTy, U.ConstKeys.size() + J);
      for (int S = J - 1; S >= 0; --S) {
        const SmtVal *Other = Enc.global(U.SymKeys[S]);
        SmtLeaf Cond = eqLeafwise(*SymV, *Other);
        Res = mergeIte(Cond, dictSlot(M, ValTy, U.ConstKeys.size() + S), Res);
      }
      for (int I = static_cast<int>(U.ConstKeys.size()) - 1; I >= 0; --I) {
        SmtLeaf Cond = eqLeafwise(*SymV, Enc.lift(U.ConstKeys[I], KeyTy));
        Res = mergeIte(Cond, dictSlot(M, ValTy, static_cast<size_t>(I)), Res);
      }
      return Res;
    }
    case Op::MSet: {
      SmtVal M = eval(E->Args[0].get(), Frame);
      SmtVal V = eval(E->Args[2].get(), Frame);
      KeyClass K = classifyKey(E->Args[1].get());
      unsigned W = Enc.shapeWidth(ValTy);
      SmtVal Out = M;
      Out.Ty = DictTy;
      if (!K.Symbolic) {
        int Idx = U.constIndex(K.ConstKey);
        if (Idx < 0)
          evalError("key " + K.ConstKey->str() +
                    " missing from the unroll table");
        for (unsigned B = 0; B < W; ++B)
          Out.Leaves[Idx * W + B] = V.Leaves[B];
        return Out;
      }
      int J = U.symIndex(K.SymName);
      const SmtVal *SymV = Enc.global(K.SymName);
      for (size_t S = 0; S < U.slots(); ++S) {
        SmtLeaf Cond;
        if (S < U.ConstKeys.size())
          Cond = eqLeafwise(*SymV, Enc.lift(U.ConstKeys[S], KeyTy));
        else if (static_cast<int>(S - U.ConstKeys.size()) == J)
          Cond = boolLeaf(true);
        else
          Cond = eqLeafwise(*SymV, *Enc.global(U.SymKeys[S - U.ConstKeys.size()]));
        SmtVal Updated = mergeIte(Cond, V, dictSlot(M, ValTy, S));
        for (unsigned B = 0; B < W; ++B)
          Out.Leaves[S * W + B] = Updated.Leaves[B];
      }
      return Out;
    }
    case Op::MMap: {
      SmtVal Fn = eval(E->Args[0].get(), Frame);
      SmtVal M = eval(E->Args[1].get(), Frame);
      SmtVal Out;
      Out.Ty = DictTy;
      TypePtr InValTy = resolve(E->Args[1]->Ty)->Elems[1];
      for (size_t S = 0; S < U.slots(); ++S) {
        SmtVal R = applyFn(Fn, dictSlot(M, InValTy, S));
        Out.Leaves.insert(Out.Leaves.end(), R.Leaves.begin(), R.Leaves.end());
      }
      return Out;
    }
    case Op::MCombine: {
      SmtVal Fn = eval(E->Args[0].get(), Frame);
      SmtVal A = eval(E->Args[1].get(), Frame);
      SmtVal B = eval(E->Args[2].get(), Frame);
      TypePtr ATy = resolve(E->Args[1]->Ty)->Elems[1];
      TypePtr BTy = resolve(E->Args[2]->Ty)->Elems[1];
      SmtVal Out;
      Out.Ty = DictTy;
      for (size_t S = 0; S < U.slots(); ++S) {
        SmtVal R = applyFn(applyFn2(Fn, dictSlot(A, ATy, S)),
                           dictSlot(B, BTy, S));
        Out.Leaves.insert(Out.Leaves.end(), R.Leaves.begin(), R.Leaves.end());
      }
      return Out;
    }
    case Op::MMapIte: {
      SmtVal Pred = eval(E->Args[0].get(), Frame);
      SmtVal FnT = eval(E->Args[1].get(), Frame);
      SmtVal FnE = eval(E->Args[2].get(), Frame);
      SmtVal M = eval(E->Args[3].get(), Frame);
      TypePtr InValTy = resolve(E->Args[3]->Ty)->Elems[1];
      SmtVal Out;
      Out.Ty = DictTy;
      for (size_t S = 0; S < U.slots(); ++S) {
        SmtVal KeyV = S < U.ConstKeys.size()
                          ? Enc.lift(U.ConstKeys[S], KeyTy)
                          : *Enc.global(U.SymKeys[S - U.ConstKeys.size()]);
        SmtVal CondV = applyFn(Pred, KeyV);
        SmtVal In = dictSlot(M, InValTy, S);
        SmtVal R = mergeIte(CondV.Leaves[0], applyFn(FnT, In),
                            applyFn(FnE, In));
        Out.Leaves.insert(Out.Leaves.end(), R.Leaves.begin(), R.Leaves.end());
      }
      return Out;
    }
    default:
      break;
    }
    nv_unreachable("handled all map ops");
  }

  /// Partial application helper for curried two-argument closures.
  SmtVal applyFn2(const SmtVal &Fn, SmtVal Arg) { return applyFn(Fn, Arg); }

  //===--------------------------------------------------------------------===//
  // Operators
  //===--------------------------------------------------------------------===//

  SmtVal evalOper(const Expr *E, Locals &Frame) {
    Op O = E->OpCode;
    if (isMapOp(O))
      return evalMapOp(E, Frame);
    switch (O) {
    case Op::And: {
      SmtVal A = eval(E->Args[0].get(), Frame);
      if (isConcrete(A.Leaves[0]) && !A.Leaves[0].C->B)
        return boolVal(boolLeaf(false));
      SmtVal B = eval(E->Args[1].get(), Frame);
      return boolVal(andL(A.Leaves[0], B.Leaves[0]));
    }
    case Op::Or: {
      SmtVal A = eval(E->Args[0].get(), Frame);
      if (isConcrete(A.Leaves[0]) && A.Leaves[0].C->B)
        return boolVal(boolLeaf(true));
      SmtVal B = eval(E->Args[1].get(), Frame);
      return boolVal(orL(A.Leaves[0], B.Leaves[0]));
    }
    case Op::Not:
      return boolVal(notL(eval(E->Args[0].get(), Frame).Leaves[0]));
    case Op::Eq:
    case Op::Neq: {
      SmtLeaf R = eqLeafwise(eval(E->Args[0].get(), Frame),
                             eval(E->Args[1].get(), Frame));
      return boolVal(O == Op::Eq ? R : notL(R));
    }
    case Op::Add:
    case Op::Sub: {
      SmtVal A = eval(E->Args[0].get(), Frame);
      SmtVal B = eval(E->Args[1].get(), Frame);
      TypePtr Ty = resolve(A.Ty);
      const SmtLeaf &LA = A.Leaves[0], &LB = B.Leaves[0];
      SmtVal Out;
      Out.Ty = Ty;
      if (isConcrete(LA) && isConcrete(LB)) {
        uint64_t R = O == Op::Add ? LA.C->I + LB.C->I : LA.C->I - LB.C->I;
        SmtLeaf L;
        L.C = Ctx.intV(R, Ty->Width);
        Out.Leaves.push_back(L);
        return Out;
      }
      z3::expr EA = Enc.leafExpr(LA, Ty), EB = Enc.leafExpr(LB, Ty);
      SmtLeaf L;
      L.E = O == Op::Add ? (EA + EB) : (EA - EB);
      Out.Leaves.push_back(L);
      return Out;
    }
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      SmtVal A = eval(E->Args[0].get(), Frame);
      SmtVal B = eval(E->Args[1].get(), Frame);
      TypePtr Ty = resolve(A.Ty);
      const SmtLeaf &LA = A.Leaves[0], &LB = B.Leaves[0];
      if (isConcrete(LA) && isConcrete(LB)) {
        uint64_t L = LA.C->I, R = LB.C->I;
        bool V = O == Op::Lt ? L < R : O == Op::Le ? L <= R : O == Op::Gt
                                                        ? L > R
                                                        : L >= R;
        return boolVal(boolLeaf(V));
      }
      z3::expr EA = Enc.leafExpr(LA, Ty), EB = Enc.leafExpr(LB, Ty);
      bool Lia = Enc.Opts.Ints == SmtOptions::IntMode::LIA;
      SmtLeaf L;
      switch (O) {
      case Op::Lt:
        L.E = Lia ? (EA < EB) : z3::ult(EA, EB);
        break;
      case Op::Le:
        L.E = Lia ? (EA <= EB) : z3::ule(EA, EB);
        break;
      case Op::Gt:
        L.E = Lia ? (EA > EB) : z3::ugt(EA, EB);
        break;
      default:
        L.E = Lia ? (EA >= EB) : z3::uge(EA, EB);
        break;
      }
      return boolVal(L);
    }
    default:
      break;
    }
    nv_unreachable("covered all operators");
  }

public:
  //===--------------------------------------------------------------------===//
  // Expression dispatch
  //===--------------------------------------------------------------------===//

  SmtVal evalImpl(const Expr *E, Locals &Frame) {
    switch (E->Kind) {
    case ExprKind::Const:
      return Enc.lift(Ctx.valueOfLiteral(E->Lit), E->Lit.type());
    case ExprKind::Var: {
      if (const SmtVal *L = lookupLocal(Frame, E->Name))
        return *L;
      if (const SmtVal *G = Enc.global(E->Name))
        return *G;
      evalError("SMT evaluation: unbound variable " + E->Name);
    }
    case ExprKind::Let: {
      SmtVal Init = eval(E->Args[0].get(), Frame);
      if (Enc.Opts.NameIntermediates && !Init.isFun()) {
        std::vector<TypePtr> Ts;
        Enc.scalarTypes(Init.Ty, Ts);
        for (size_t I = 0; I < Init.Leaves.size(); ++I)
          Init.Leaves[I] = Enc.maybeName(Init.Leaves[I], Ts[I]);
      }
      Frame.emplace_back(E->Name, std::move(Init));
      SmtVal R = eval(E->Args[1].get(), Frame);
      Frame.pop_back();
      return R;
    }
    case ExprKind::Fun: {
      SmtVal V;
      V.Ty = resolve(E->Ty);
      V.FnExpr = E;
      V.FnLocals = std::make_shared<Locals>(Frame);
      return V;
    }
    case ExprKind::App: {
      SmtVal Fn = eval(E->Args[0].get(), Frame);
      SmtVal Arg = eval(E->Args[1].get(), Frame);
      return applyFn(Fn, std::move(Arg));
    }
    case ExprKind::If: {
      SmtVal C = eval(E->Args[0].get(), Frame);
      if (isConcrete(C.Leaves[0]))
        return eval(E->Args[C.Leaves[0].C->B ? 1 : 2].get(), Frame);
      SmtVal T = eval(E->Args[1].get(), Frame);
      SmtVal El = eval(E->Args[2].get(), Frame);
      return mergeIte(C.Leaves[0], T, El);
    }
    case ExprKind::Match: {
      SmtVal Scrut = eval(E->Args[0].get(), Frame);
      std::vector<SmtLeaf> Conds;
      std::vector<SmtVal> Bodies;
      for (const MatchCase &C : E->Cases) {
        size_t Mark = Frame.size();
        SmtLeaf Cond = matchSmt(C.Pat.get(), Scrut, Frame);
        if (isConcrete(Cond) && !Cond.C->B) {
          Frame.resize(Mark);
          continue;
        }
        Conds.push_back(Cond);
        Bodies.push_back(eval(C.Body.get(), Frame));
        Frame.resize(Mark);
        if (isConcrete(Cond) && Cond.C->B)
          break;
      }
      if (Bodies.empty())
        evalError("SMT evaluation: match with no reachable cases in " +
                  printExpr(std::make_shared<Expr>(*E)));
      SmtVal R = Bodies.back();
      for (size_t I = Bodies.size() - 1; I-- > 0;)
        R = mergeIte(Conds[I], Bodies[I], R);
      return R;
    }
    case ExprKind::Oper:
      return evalOper(E, Frame);
    case ExprKind::Tuple:
    case ExprKind::Record: {
      SmtVal Out;
      Out.Ty = resolve(E->Ty);
      for (const ExprPtr &A : E->Args) {
        SmtVal S = eval(A.get(), Frame);
        Out.Leaves.insert(Out.Leaves.end(), S.Leaves.begin(), S.Leaves.end());
      }
      return Out;
    }
    case ExprKind::Proj: {
      SmtVal V = eval(E->Args[0].get(), Frame);
      TypePtr Ty = resolve(V.Ty);
      auto [Off, W] = fieldRange(Ty, E->Index);
      return slice(V, Off, W, Ty->Elems[E->Index]);
    }
    case ExprKind::RecordUpdate: {
      SmtVal Base = eval(E->Args[0].get(), Frame);
      TypePtr Ty = resolve(Base.Ty);
      SmtVal Out = Base;
      for (size_t I = 0; I < E->Labels.size(); ++I) {
        int Idx = Ty->labelIndex(E->Labels[I]);
        auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
        SmtVal V = eval(E->Args[I + 1].get(), Frame);
        for (unsigned B = 0; B < W; ++B)
          Out.Leaves[Off + B] = V.Leaves[B];
      }
      return Out;
    }
    case ExprKind::Field: {
      SmtVal V = eval(E->Args[0].get(), Frame);
      TypePtr Ty = resolve(V.Ty);
      int Idx = Ty->labelIndex(E->Name);
      auto [Off, W] = fieldRange(Ty, static_cast<size_t>(Idx));
      return slice(V, Off, W, Ty->Elems[Idx]);
    }
    case ExprKind::Some: {
      SmtVal Inner = eval(E->Args[0].get(), Frame);
      SmtVal Out;
      Out.Ty = resolve(E->Ty);
      Out.Leaves.push_back(boolLeaf(true));
      Out.Leaves.insert(Out.Leaves.end(), Inner.Leaves.begin(),
                        Inner.Leaves.end());
      return Out;
    }
    case ExprKind::None: {
      TypePtr Ty = resolve(E->Ty);
      SmtVal Out;
      Out.Ty = Ty;
      Out.Leaves.push_back(boolLeaf(false));
      SmtVal Payload = Enc.lift(Ctx.defaultValue(Ty->Elems[0]), Ty->Elems[0]);
      Out.Leaves.insert(Out.Leaves.end(), Payload.Leaves.begin(),
                        Payload.Leaves.end());
      return Out;
    }
    }
    nv_unreachable("covered switch");
  }
};

SmtVal SmtEval::eval(const Expr *E, Locals &Frame) {
  return evalImpl(E, Frame);
}

} // namespace nv

//===----------------------------------------------------------------------===//
// Encoder entry points built on the evaluator
//===----------------------------------------------------------------------===//

bool SmtEncoder::initialize() {
  for (const DeclPtr &D : P.Decls)
    if (D->Kind == DeclKind::Symbolic)
      SymbolicNameSet.insert(D->Name);

  if (!buildUnrollTable())
    return false;

  // Rebuild the constant-global environment for key evaluation at encode
  // time (mirrors buildUnrollTable).
  {
    Interp I(Ctx);
    EnvPtr Env;
    for (const DeclPtr &D : P.Decls) {
      if (D->Kind != DeclKind::Let || !D->Body)
        continue;
      bool Closed = true;
      for (const std::string &FV : freeVarsOf(D->Body.get()))
        if (!envLookup(Env.get(), FV))
          Closed = false;
      if (Closed && D->Body->Kind != ExprKind::Fun)
        Env = envBind(Env, D->Name, I.eval(D->Body.get(), Env));
    }
    KeyGlobals = Env;
  }

  SmtEval Eval(*this);
  for (const DeclPtr &D : P.Decls) {
    switch (D->Kind) {
    case DeclKind::Let: {
      Locals Frame;
      Globals.emplace_back(D->Name, Eval.eval(D->Body.get(), Frame));
      break;
    }
    case DeclKind::Symbolic: {
      SmtVal V = freshConsts("sym_" + D->Name, D->Ty);
      Globals.emplace_back(D->Name, V);
      Symbolics.emplace_back(D->Name, V);
      break;
    }
    case DeclKind::Require: {
      Locals Frame;
      SmtVal V = Eval.eval(D->Body.get(), Frame);
      Solver.add(boolExpr(V));
      break;
    }
    case DeclKind::TypeAlias:
    case DeclKind::Nodes:
    case DeclKind::Edges:
      break;
    }
  }
  return !Diags.hasErrors();
}

SmtVal SmtEncoder::apply(const SmtVal &Fn, std::vector<SmtVal> Args) {
  SmtEval Eval(*this);
  SmtVal Cur = Fn;
  for (SmtVal &A : Args)
    Cur = Eval.applyFn(Cur, std::move(A));
  return Cur;
}
