//===- Verifier.cpp - SMT-based stable-state verification --------------------===//

#include "smt/Verifier.h"

#include "support/Timer.h"

#include <algorithm>

using namespace nv;

namespace {

/// Wires the run's CancelToken to z3's cooperative interrupt for the
/// duration of a verification: requestCancel() from any thread stops a
/// blocking solver.check(), which then returns unknown ("canceled").
class Z3InterruptGuard {
public:
  Z3InterruptGuard(CancelToken *Tok, z3::context &Z) : Tok(Tok) {
    if (Tok)
      Id = Tok->addInterruptHook([&Z] { Z.interrupt(); });
  }
  ~Z3InterruptGuard() {
    if (Tok)
      Tok->removeInterruptHook(Id);
  }
  Z3InterruptGuard(const Z3InterruptGuard &) = delete;
  Z3InterruptGuard &operator=(const Z3InterruptGuard &) = delete;

private:
  CancelToken *Tok;
  uint64_t Id = 0;
};

/// True when z3's reason_unknown names an imposed limit rather than
/// genuine incompleteness. Z3 reports "timeout", "canceled", or
/// "interrupted..." depending on version and path.
bool reasonIsLimit(const std::string &Reason) {
  return Reason.find("timeout") != std::string::npos ||
         Reason.find("cancel") != std::string::npos ||
         Reason.find("interrupt") != std::string::npos ||
         Reason.find("resource") != std::string::npos;
}

} // namespace

VerifyResult nv::verifyProgram(const Program &P, const VerifyOptions &Opts,
                               DiagnosticEngine &Diags) {
  VerifyResult R;
  if (!P.AttrType) {
    R.Outcome = {RunStatus::EvalError, "verifier requires a type-checked program", ""};
    Diags.error({}, R.Outcome.Detail);
    return R;
  }
  uint32_t N = P.numNodes();
  if (N == 0) {
    R.Outcome = {RunStatus::EvalError, "verifier requires a topology", ""};
    Diags.error({}, R.Outcome.Detail);
    return R;
  }

  // Arm this run's budget; encode-loop and solver-check safe points below
  // poll it (plus any outer governor, e.g. a CLI-wide deadline).
  Governor::Scope Guard(Opts.Budget);
  Stopwatch W;
  z3::context Z;
  Z3InterruptGuard Interrupt(Opts.Budget.Cancel, Z);
  try {
    // The encoding has one defining equation per label leaf; eliminating
    // those equations first (and bit-blasting in BV mode) is far faster
    // than the default solver on these instances.
    z3::solver Solver =
        Opts.UseTacticPipeline
            ? (z3::tactic(Z, "simplify") & z3::tactic(Z, "solve-eqs") &
               z3::tactic(Z, "bit-blast") & z3::tactic(Z, "smt"))
                  .mk_solver()
            : z3::solver(Z);

    NvContext Ctx(N);
    SmtEncoder Enc(Z, Solver, Ctx, P, Opts.Smt, Diags);
    if (!Enc.initialize()) {
      R.Outcome = {RunStatus::EvalError, "SMT encoding failed", ""};
      return R;
    }

    const SmtVal *InitFn = Enc.global("init");
    const SmtVal *TransFn = Enc.global("trans");
    const SmtVal *MergeFn = Enc.global("merge");
    const SmtVal *AssertFn = Enc.global("assert");
    if (!InitFn || !TransFn || !MergeFn) {
      R.Outcome = {RunStatus::EvalError,
                   "program is missing init/trans/merge declarations", ""};
      Diags.error({}, R.Outcome.Detail);
      return R;
    }

    // In-edges per node.
    std::vector<std::vector<uint32_t>> InNeighbors(N);
    for (const auto &[U, V] : P.directedEdges())
      InNeighbors[V].push_back(U);

    // Declare the per-node stable-state labels and tie them to their merge
    // expressions (Sec. 2.5's fixpoint equations).
    std::vector<SmtVal> Labels;
    Labels.reserve(N);
    for (uint32_t U = 0; U < N; ++U) {
      std::string LName = "L";
      LName += std::to_string(U);
      Labels.push_back(Enc.freshConsts(LName, P.AttrType));
    }

    for (uint32_t U = 0; U < N; ++U) {
      // Safe point once per node: the dominant encode cost is the chain of
      // merge applications built here.
      Governor::pollSafePoint(GovSite::SmtEncode);
      SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
      SmtVal Acc = Enc.apply(*InitFn, {NodeV});
      for (uint32_t V : InNeighbors[U]) {
        SmtVal EdgeV = Enc.lift(Ctx.edgeV(V, U), Type::edgeTy());
        SmtVal Transferred = Enc.apply(*TransFn, {EdgeV, Labels[V]});
        Acc = Enc.apply(*MergeFn, {NodeV, Acc, Transferred});
      }
      Enc.addEquality(Labels[U], Acc);
    }

    // Property: every node's assertion holds; check N ∧ ¬P.
    if (AssertFn) {
      z3::expr Prop = Z.bool_val(true);
      for (uint32_t U = 0; U < N; ++U) {
        Governor::pollSafePoint(GovSite::SmtEncode);
        SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
        Prop = Prop && Enc.boolExpr(Enc.apply(*AssertFn, {NodeV, Labels[U]}));
      }
      Solver.add(!Prop);
    }

    R.EncodeMs = W.elapsedMs();
    R.NumAssertions = Solver.assertions().size();
    R.NamedIntermediates = Enc.namedIntermediates();

    // Last poll before handing control to z3, then clamp the solver's own
    // timeout to the tightest governed deadline so a blocking check()
    // cannot outlive the run's wall-clock budget.
    Governor::pollSafePoint(GovSite::SolverCheck);
    uint64_t TimeoutMs = Opts.TimeoutMs;
    double Remaining = Governor::remainingMs();
    if (Remaining >= 0) {
      uint64_t Budgeted = std::max<uint64_t>(
          1, static_cast<uint64_t>(Remaining));
      TimeoutMs = TimeoutMs ? std::min<uint64_t>(TimeoutMs, Budgeted) : Budgeted;
    }
    if (TimeoutMs) {
      z3::params Params(Z);
      Params.set("timeout", static_cast<unsigned>(TimeoutMs));
      Solver.set(Params);
    }

    W.restart();
    z3::check_result CR = Solver.check();
    R.SolveMs = W.elapsedMs();

    if (CR == z3::unsat) {
      // With an assert: no stable state violates it. Without: the
      // constraints themselves are inconsistent, which we surface as
      // Unknown so callers notice vacuity.
      R.Status = AssertFn ? VerifyStatus::Verified : VerifyStatus::Unknown;
      return R;
    }
    if (CR == z3::unknown) {
      std::string Reason = Solver.reason_unknown();
      if (reasonIsLimit(Reason)) {
        // The solver stopped because we told it to: a canceled token, a
        // governed deadline, or the plain --smt-timeout. All of these are
        // resource exhaustion, not a verdict.
        R.Status = VerifyStatus::ResourceExhausted;
        bool Canceled = Opts.Budget.Cancel && Opts.Budget.Cancel->isCanceled();
        R.Outcome = {Canceled ? RunStatus::Canceled
                              : RunStatus::DeadlineExceeded,
                     "solver gave up after " + std::to_string(TimeoutMs) +
                         " ms (" + Reason + ")",
                     govSiteName(GovSite::SolverCheck)};
      } else {
        R.Status = VerifyStatus::Unknown;
      }
      return R;
    }

    if (!AssertFn) {
      R.Status = VerifyStatus::Verified; // consistent constraints, no property
      return R;
    }

    R.Status = VerifyStatus::Falsified;
    z3::model M = Solver.get_model();
    std::string Text;
    for (const auto &[Name, V] : Enc.symbolicVals())
      Text += "symbolic " + Name + " = " +
              Ctx.printValue(Enc.decodeFromModel(M, V)) + "\n";
    for (uint32_t U = 0; U < N; ++U) {
      const Value *L = Enc.decodeFromModel(M, Labels[U]);
      SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
      bool Holds =
          M.eval(Enc.boolExpr(Enc.apply(*AssertFn, {NodeV, Labels[U]})), true)
              .is_true();
      Text += "node " + std::to_string(U) + (Holds ? "    " : " [!] ") +
              Ctx.printValue(L) + "\n";
    }
    R.Counterexample = std::move(Text);
    return R;
  } catch (const EngineError &E) {
    // A safe point tripped (budget, cancellation, injected fault) or the
    // encoder hit a user-triggerable semantic error.
    R.Outcome = E.outcome();
    R.Status = R.Outcome.Status == RunStatus::EvalError
                   ? VerifyStatus::EncodingError
                   : VerifyStatus::ResourceExhausted;
    Diags.error({}, "verification stopped: " + R.Outcome.str());
    return R;
  } catch (const z3::exception &E) {
    // z3 raises on interrupt in some code paths; fold that into the
    // cancellation outcome rather than reporting a solver bug.
    bool Canceled = Opts.Budget.Cancel && Opts.Budget.Cancel->isCanceled();
    if (Canceled) {
      R.Status = VerifyStatus::ResourceExhausted;
      R.Outcome = {RunStatus::Canceled, E.msg(),
                   govSiteName(GovSite::SolverCheck)};
    } else {
      R.Status = VerifyStatus::EncodingError;
      R.Outcome = {RunStatus::InternalError,
                   std::string("z3 error: ") + E.msg(), ""};
      Diags.error({}, R.Outcome.Detail);
    }
    return R;
  }
}
