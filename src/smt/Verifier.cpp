//===- Verifier.cpp - SMT-based stable-state verification --------------------===//

#include "smt/Verifier.h"

#include "support/Timer.h"

using namespace nv;

VerifyResult nv::verifyProgram(const Program &P, const VerifyOptions &Opts,
                               DiagnosticEngine &Diags) {
  VerifyResult R;
  if (!P.AttrType) {
    Diags.error({}, "verifier requires a type-checked program");
    return R;
  }
  uint32_t N = P.numNodes();
  if (N == 0) {
    Diags.error({}, "verifier requires a topology");
    return R;
  }

  Stopwatch W;
  z3::context Z;
  // The encoding has one defining equation per label leaf; eliminating
  // those equations first (and bit-blasting in BV mode) is far faster
  // than the default solver on these instances.
  z3::solver Solver =
      Opts.UseTacticPipeline
          ? (z3::tactic(Z, "simplify") & z3::tactic(Z, "solve-eqs") &
             z3::tactic(Z, "bit-blast") & z3::tactic(Z, "smt"))
                .mk_solver()
          : z3::solver(Z);
  if (Opts.TimeoutMs) {
    z3::params Params(Z);
    Params.set("timeout", Opts.TimeoutMs);
    Solver.set(Params);
  }

  NvContext Ctx(N);
  SmtEncoder Enc(Z, Solver, Ctx, P, Opts.Smt, Diags);
  if (!Enc.initialize())
    return R;

  const SmtVal *InitFn = Enc.global("init");
  const SmtVal *TransFn = Enc.global("trans");
  const SmtVal *MergeFn = Enc.global("merge");
  const SmtVal *AssertFn = Enc.global("assert");
  if (!InitFn || !TransFn || !MergeFn) {
    Diags.error({}, "program is missing init/trans/merge declarations");
    return R;
  }

  // In-edges per node.
  std::vector<std::vector<uint32_t>> InNeighbors(N);
  for (const auto &[U, V] : P.directedEdges())
    InNeighbors[V].push_back(U);

  // Declare the per-node stable-state labels and tie them to their merge
  // expressions (Sec. 2.5's fixpoint equations).
  std::vector<SmtVal> Labels;
  Labels.reserve(N);
  for (uint32_t U = 0; U < N; ++U)
    Labels.push_back(Enc.freshConsts("L" + std::to_string(U), P.AttrType));

  for (uint32_t U = 0; U < N; ++U) {
    SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
    SmtVal Acc = Enc.apply(*InitFn, {NodeV});
    for (uint32_t V : InNeighbors[U]) {
      SmtVal EdgeV = Enc.lift(Ctx.edgeV(V, U), Type::edgeTy());
      SmtVal Transferred = Enc.apply(*TransFn, {EdgeV, Labels[V]});
      Acc = Enc.apply(*MergeFn, {NodeV, Acc, Transferred});
    }
    Enc.addEquality(Labels[U], Acc);
  }

  // Property: every node's assertion holds; check N ∧ ¬P.
  if (AssertFn) {
    z3::expr Prop = Z.bool_val(true);
    for (uint32_t U = 0; U < N; ++U) {
      SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
      Prop = Prop && Enc.boolExpr(Enc.apply(*AssertFn, {NodeV, Labels[U]}));
    }
    Solver.add(!Prop);
  }

  R.EncodeMs = W.elapsedMs();
  R.NumAssertions = Solver.assertions().size();
  R.NamedIntermediates = Enc.namedIntermediates();

  W.restart();
  z3::check_result CR = Solver.check();
  R.SolveMs = W.elapsedMs();

  if (CR == z3::unsat) {
    // With an assert: no stable state violates it. Without: the
    // constraints themselves are inconsistent, which we surface as
    // Unknown so callers notice vacuity.
    R.Status = AssertFn ? VerifyStatus::Verified : VerifyStatus::Unknown;
    return R;
  }
  if (CR == z3::unknown) {
    R.Status = VerifyStatus::Unknown;
    return R;
  }

  if (!AssertFn) {
    R.Status = VerifyStatus::Verified; // consistent constraints, no property
    return R;
  }

  R.Status = VerifyStatus::Falsified;
  z3::model M = Solver.get_model();
  std::string Text;
  for (const auto &[Name, V] : Enc.symbolicVals())
    Text += "symbolic " + Name + " = " +
            Ctx.printValue(Enc.decodeFromModel(M, V)) + "\n";
  for (uint32_t U = 0; U < N; ++U) {
    const Value *L = Enc.decodeFromModel(M, Labels[U]);
    SmtVal NodeV = Enc.lift(Ctx.nodeV(U), Type::nodeTy());
    bool Holds = M.eval(Enc.boolExpr(Enc.apply(*AssertFn, {NodeV, Labels[U]})),
                        true)
                     .is_true();
    Text += "node " + std::to_string(U) + (Holds ? "    " : " [!] ") +
            Ctx.printValue(L) + "\n";
  }
  R.Counterexample = std::move(Text);
  return R;
}
