//===- Minimize.h - Greedy divergence minimizer -----------------*- C++ -*-===//
//
// Part of nv-cpp. Shrinks a diverging fuzz instance to a minimal repro.
// The shrinker works on the FuzzSpec, not the rendered text: candidate
// moves delete one edge, drop the highest-numbered node, or switch off
// one policy feature (hop caps, assert bounds, edge costs, hubs/filters,
// route-map clauses), then re-render and re-run the oracle. A move is
// kept iff the divergence persists; the loop runs to a fixed point, so
// the result is 1-minimal with respect to the move set.
//
//===----------------------------------------------------------------------===//

#ifndef NV_FUZZ_MINIMIZE_H
#define NV_FUZZ_MINIMIZE_H

#include "fuzz/Oracle.h"

namespace nv {

struct MinimizeResult {
  FuzzSpec Final;            ///< The shrunk spec (== input if no move held).
  FuzzInstance Instance;     ///< Rendered final instance.
  OracleVerdict Verdict;     ///< Oracle verdict of the final instance.
  unsigned OracleRuns = 0;   ///< Oracle invocations spent shrinking.
  unsigned MovesApplied = 0; ///< Accepted shrink steps.
};

/// All single-step shrink candidates of \p S, in deterministic order.
std::vector<FuzzSpec> shrinkCandidates(const FuzzSpec &S);

/// Greedily minimizes a spec whose oracle verdict diverges under \p Opts.
/// If the input does not diverge, returns it unchanged (OracleRuns = 1).
MinimizeResult minimizeSpec(const FuzzSpec &Failing,
                            const OracleOptions &Opts);

} // namespace nv

#endif // NV_FUZZ_MINIMIZE_H
