//===- InstanceGen.cpp - Random NV instance generator -------------------------===//

#include "fuzz/InstanceGen.h"

#include "frontend/Config.h"
#include "frontend/Translate.h"
#include "fuzz/Rng.h"
#include "net/Topology.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace nv;

const char *nv::topoKindName(TopoKind K) {
  switch (K) {
  case TopoKind::FatTree:
    return "fattree";
  case TopoKind::Wan:
    return "wan";
  case TopoKind::Ring:
    return "ring";
  case TopoKind::Chord:
    return "chord";
  }
  return "?";
}

const char *nv::policyKindName(PolicyKind K) {
  switch (K) {
  case PolicyKind::SpOption:
    return "sp-option";
  case PolicyKind::SpWeights:
    return "sp-weights";
  case PolicyKind::TupleLex:
    return "tuple-lex";
  case PolicyKind::RecordBgp:
    return "record-bgp";
  case PolicyKind::DictReach:
    return "dict-reach";
  case PolicyKind::RouteMapCfg:
    return "route-map-cfg";
  }
  return "?";
}

namespace {

using EdgeList = std::vector<std::pair<uint32_t, uint32_t>>;

EdgeList normalized(EdgeList E) {
  for (auto &[A, B] : E)
    if (A > B)
      std::swap(A, B);
  std::sort(E.begin(), E.end());
  E.erase(std::unique(E.begin(), E.end()), E.end());
  E.erase(std::remove_if(E.begin(), E.end(),
                         [](const auto &L) { return L.first == L.second; }),
          E.end());
  return E;
}

//===----------------------------------------------------------------------===//
// Topology builders
//===----------------------------------------------------------------------===//

EdgeList wanEdges(FuzzRng &R, uint32_t N) {
  EdgeList E;
  // Usually a random spanning tree plus extras (connected); sometimes a
  // pure G(n,m) draw that may leave nodes unreachable — verdict-relevant
  // asserts must still agree across engines on disconnected inputs.
  if (R.chance(75)) {
    for (uint32_t U = 1; U < N; ++U)
      E.push_back({static_cast<uint32_t>(R.below(U)), U});
  }
  uint32_t Extra = static_cast<uint32_t>(R.range(1, N / 2 + 2));
  for (uint32_t I = 0; I < Extra; ++I) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t B = static_cast<uint32_t>(R.below(N));
    if (A != B)
      E.push_back({A, B});
  }
  return E;
}

EdgeList ringEdges(uint32_t N) {
  EdgeList E;
  for (uint32_t U = 0; U < N; ++U)
    E.push_back({U, (U + 1) % N});
  return E;
}

EdgeList chordEdges(FuzzRng &R, uint32_t N) {
  EdgeList E = ringEdges(N);
  uint32_t Chords = N / 3;
  for (uint32_t I = 0; I < Chords; ++I) {
    uint32_t A = static_cast<uint32_t>(R.below(N));
    uint32_t Span = static_cast<uint32_t>(R.range(2, N - 2));
    E.push_back({A, (A + Span) % N});
  }
  return E;
}

std::string nodeLit(uint32_t U) { return std::to_string(U) + "n"; }

std::string topoDecls(const FuzzSpec &S) {
  Topology T;
  T.NumNodes = S.NumNodes;
  T.Links = S.Edges;
  return T.toNvDecls();
}

//===----------------------------------------------------------------------===//
// Policy renderers
//===----------------------------------------------------------------------===//

std::string optionIntMerge(const char *Ty) {
  return std::string("let merge (u : node) (x : ") + Ty + ") (y : " + Ty +
         ") =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some a, Some b -> if a <= b then x else y\n";
}

std::string spAssert(const FuzzSpec &S) {
  std::string Body = S.AssertBound
                         ? "Some d -> d <= " + std::to_string(S.AssertBound)
                         : "Some d -> true";
  return "let assert (u : node) (x : option[int]) =\n"
         "  match x with | None -> false | " + Body + "\n";
}

std::string renderSpOption(const FuzzSpec &S) {
  std::string Step =
      S.HopCap ? "if d + 1 > " + std::to_string(S.HopCap) +
                     " then None else Some (d + 1)"
               : "Some (d + 1)";
  return topoDecls(S) +
         "let init (u : node) = match u with | " + nodeLit(S.Dest) +
         " -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  match x with | None -> None | Some d -> " + Step + "\n" +
         optionIntMerge("option[int]") + spAssert(S);
}

std::string renderSpWeights(const FuzzSpec &S) {
  std::string Cost = "let costOf (u : node) (v : node) =\n  match u, v with\n";
  for (size_t I = 0; I < S.Edges.size(); ++I) {
    auto [A, B] = S.Edges[I];
    std::string C = std::to_string(S.EdgeCosts[I]);
    Cost += "  | " + nodeLit(A) + ", " + nodeLit(B) + " -> " + C + "\n";
    Cost += "  | " + nodeLit(B) + ", " + nodeLit(A) + " -> " + C + "\n";
  }
  Cost += "  | _, _ -> 1\n";
  return topoDecls(S) + Cost +
         "let init (u : node) = match u with | " + nodeLit(S.Dest) +
         " -> Some 0 | _ -> None\n"
         "let trans (e : edge) (x : option[int]) =\n"
         "  let (u, v) = e in\n"
         "  match x with | None -> None | Some d -> Some (d + costOf u v)\n" +
         optionIntMerge("option[int]") + spAssert(S);
}

std::string renderTupleLex(const FuzzSpec &S) {
  std::string Bound =
      S.AssertBound ? "Some p -> (let (a, b) = p in a <= " +
                          std::to_string(S.AssertBound) + ")"
                    : "Some p -> true";
  return topoDecls(S) +
         "let init (u : node) = match u with | " + nodeLit(S.Dest) +
         " -> Some (0, 0) | _ -> None\n"
         "let trans (e : edge) (x : option[(int, int)]) =\n"
         "  match x with\n"
         "  | None -> None\n"
         "  | Some p -> let (a, b) = p in Some (a + " +
         std::to_string(S.StrideA) + ", b + " + std::to_string(S.StrideB) +
         ")\n"
         "let merge (u : node) (x : option[(int, int)]) "
         "(y : option[(int, int)]) =\n"
         "  match x, y with\n"
         "  | _, None -> x\n"
         "  | None, _ -> y\n"
         "  | Some p1, Some p2 ->\n"
         "    let (a1, b1) = p1 in\n"
         "    let (a2, b2) = p2 in\n"
         "    if a1 < a2 then x\n"
         "    else if a2 < a1 then y\n"
         "    else if b1 <= b2 then x else y\n"
         "let assert (u : node) (x : option[(int, int)]) =\n"
         "  match x with | None -> false | " + Bound + "\n";
}

/// Per-node table function `let NAME (u : node) = match u with ...`.
std::string nodeTable(const std::string &Name,
                      const std::vector<uint32_t> &Vals,
                      const std::string &Default) {
  std::string S = "let " + Name + " (u : node) =\n  match u with\n";
  for (uint32_t U = 0; U < Vals.size(); ++U)
    S += "  | " + nodeLit(U) + " -> " + std::to_string(Vals[U]) + "\n";
  return S + "  | _ -> " + Default + "\n";
}

std::string nodeFlags(const std::string &Name,
                      const std::vector<uint8_t> &Flags) {
  std::string S = "let " + Name + " (u : node) =\n  match u with\n";
  for (uint32_t U = 0; U < Flags.size(); ++U)
    if (Flags[U])
      S += "  | " + nodeLit(U) + " -> true\n";
  return S + "  | _ -> false\n";
}

std::string renderRecordBgp(const FuzzSpec &S) {
  std::string D = nodeLit(S.Dest);
  return "include bgp\n" + topoDecls(S) +
         nodeTable("medOf", S.Meds, "0") + nodeFlags("isHubN", S.Hubs) +
         nodeFlags("isFilterN", S.FilterNodes) +
         "let trans (e : edge) (x : attribute) =\n"
         "  let (u, v) = e in\n"
         "  match transBgp e x with\n"
         "  | None -> None\n"
         "  | Some b ->\n"
         "    if isFilterN v && b.comms[7] then None\n"
         "    else\n"
         "      let t = if isHubN u then {b with comms = b.comms[7 := true]} "
         "else b in\n"
         "      Some {t with med = medOf v}\n"
         "let merge u x y = mergeBgp u x y\n"
         "let init (u : node) =\n"
         "  match u with\n"
         "  | " + D + " -> Some {length = 0; lp = 100; med = 0; comms = {}; "
         "origin = " + D + "}\n"
         "  | _ -> None\n"
         "let assert (u : node) (x : attribute) =\n"
         "  match x with | None -> false | Some b -> true\n";
}

std::string renderDictReach(const FuzzSpec &S) {
  std::string Src = topoDecls(S);
  Src += "type attribute = dict[int16, option[int16]]\n";
  Src += "let init (u : node) =\n"
         "  let base : attribute = createDict None in\n"
         "  match u with\n";
  for (size_t I = 0; I < S.Announcers.size(); ++I)
    Src += "  | " + nodeLit(S.Announcers[I]) + " -> base[" +
           std::to_string(I) + "u16 := Some 0u16]\n";
  Src += "  | _ -> base\n";
  Src += "let trans (e : edge) (x : attribute) =\n"
         "  map (fun w -> match w with | None -> None "
         "| Some d -> Some (d + 1u16)) x\n"
         "let merge (u : node) (x : attribute) (y : attribute) =\n"
         "  combine (fun a b ->\n"
         "    match a, b with\n"
         "    | _, None -> a\n"
         "    | None, _ -> b\n"
         "    | Some d1, Some d2 -> if d1 <= d2 then a else b) x y\n"
         "let assert (u : node) (x : attribute) =\n"
         "  match x[0u16] with | None -> false | Some d -> true\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// RouteMapCfg: vendor configuration text + frontend translation
//===----------------------------------------------------------------------===//

std::string routerName(uint32_t U) {
  std::string S = "R";
  S += std::to_string(U);
  return S;
}

Prefix destPrefix(const FuzzSpec &S) {
  Prefix P;
  P.Addr = (10u << 24) | ((S.Dest & 0xFF) << 8);
  P.Len = 24;
  return P;
}

std::string prefixText(uint32_t Router) {
  return "10.0." + std::to_string(Router & 0xFF) + ".0/24";
}

std::string renderConfigText(const FuzzSpec &S) {
  // Interface-neighbor lists per router (symmetric, sorted by the
  // normalized edge order, so the text is a pure function of the spec).
  std::vector<std::vector<uint32_t>> Nbrs(S.NumNodes);
  for (auto [A, B] : S.Edges) {
    Nbrs[A].push_back(B);
    Nbrs[B].push_back(A);
  }
  for (auto &V : Nbrs) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }

  static const uint32_t CommVals[] = {55, 77};

  std::string Cfg;
  for (uint32_t U = 0; U < S.NumNodes; ++U) {
    Cfg += "router " + routerName(U) + "\n";
    for (uint32_t V : Nbrs[U])
      Cfg += "interface neighbor " + routerName(V) + "\n";
    if (U == S.Dest || (U > 0 && U <= S.ExtraOrigins && U != S.Dest))
      Cfg += "ip route " + prefixText(U) + "\n";

    // Route-map attachments of this router, with the lists they match on.
    std::string Maps, Lists, BgpNbrs;
    std::set<std::string> Declared;
    unsigned MapIdx = 0;
    for (const RmSpec &RM : S.RouteMaps) {
      if (RM.Router != U || Nbrs[U].empty())
        continue;
      uint32_t Peer = Nbrs[U][RM.NeighborIdx % Nbrs[U].size()];
      std::string MapName = "RM" + std::to_string(U) + "_" +
                            std::to_string(MapIdx++);
      BgpNbrs += "neighbor " + routerName(Peer) + " route-map " + MapName +
                 (RM.In ? " in\n" : " out\n");
      int Seq = 10;
      for (const RmClauseSpec &C : RM.Clauses) {
        Maps += "route-map " + MapName + (C.Permit ? " permit " : " deny ") +
                std::to_string(Seq) + "\n";
        Seq += 10;
        if (C.MatchComm) {
          std::string L = "cl" + std::to_string(C.MatchComm);
          if (Declared.insert(L).second)
            Lists += "ip community-list " + L + " permit " +
                     std::to_string(CommVals[(C.MatchComm - 1) % 2]) + "\n";
          Maps += "match community " + L + "\n";
        }
        if (C.MatchPfx) {
          std::string L = "pl" + std::to_string(C.MatchPfx);
          if (Declared.insert(L).second)
            Lists += "ip prefix-list " + L + " permit " +
                     prefixText(C.MatchPfx == 1 ? S.Dest : 0) + "\n";
          Maps += "match ip address prefix-list " + L + "\n";
        }
        if (C.SetComm)
          Maps += "set community " +
                  std::to_string(CommVals[(C.SetComm - 1) % 2]) + "\n";
        if (C.SetMetric)
          Maps += "set metric " + std::to_string(C.SetMetric) + "\n";
      }
    }
    if (!BgpNbrs.empty())
      Cfg += "router bgp " + std::to_string(U + 1) + "\n" + BgpNbrs;
    Cfg += Lists + Maps;
  }
  return Cfg;
}

std::string renderRouteMapCfg(const FuzzSpec &S, DiagnosticEngine &Diags,
                              std::string &ConfigOut) {
  ConfigOut = renderConfigText(S);
  auto Net = parseConfigs(ConfigOut, Diags);
  if (!Net)
    return "";
  auto T = translateConfigs(*Net, Diags);
  if (!T)
    return "";
  return T->NvSource + nvAssertReachable(destPrefix(S));
}

} // namespace

//===----------------------------------------------------------------------===//
// Seed expansion
//===----------------------------------------------------------------------===//

FuzzSpec nv::specFromSeed(uint64_t Seed) {
  FuzzRng R(Seed);
  FuzzSpec S;
  S.Seed = Seed;

  uint64_t P = R.below(100);
  S.Policy = P < 25   ? PolicyKind::SpOption
             : P < 40 ? PolicyKind::SpWeights
             : P < 55 ? PolicyKind::TupleLex
             : P < 70 ? PolicyKind::RecordBgp
             : P < 85 ? PolicyKind::DictReach
                      : PolicyKind::RouteMapCfg;

  // RouteMapCfg stays off FatTree (20-router configs translate to large
  // RIB programs; WAN/ring/chord keep the frontend leg fast).
  bool AllowFat = S.Policy != PolicyKind::RouteMapCfg && R.chance(15);
  if (AllowFat) {
    S.Topo = TopoKind::FatTree;
    FatTree FT(4);
    S.NumNodes = FT.numNodes();
    S.Edges = normalized(FT.topology().Links);
  } else {
    uint64_t T = R.below(3);
    if (T == 0) {
      S.Topo = TopoKind::Wan;
      S.NumNodes = static_cast<uint32_t>(R.range(4, 12));
      S.Edges = normalized(wanEdges(R, S.NumNodes));
    } else if (T == 1) {
      S.Topo = TopoKind::Ring;
      S.NumNodes = static_cast<uint32_t>(R.range(3, 10));
      S.Edges = normalized(ringEdges(S.NumNodes));
    } else {
      S.Topo = TopoKind::Chord;
      S.NumNodes = static_cast<uint32_t>(R.range(6, 12));
      S.Edges = normalized(chordEdges(R, S.NumNodes));
    }
  }
  if (S.Edges.empty())
    S.Edges.push_back({0, 1 % std::max<uint32_t>(S.NumNodes, 2)});
  if (S.NumNodes < 2)
    S.NumNodes = 2;
  S.Dest = static_cast<uint32_t>(R.below(S.NumNodes));

  switch (S.Policy) {
  case PolicyKind::SpOption:
    if (R.chance(40))
      S.HopCap = static_cast<uint32_t>(R.range(1, S.NumNodes));
    if (R.chance(50))
      S.AssertBound = static_cast<uint32_t>(R.range(1, S.NumNodes + 2));
    break;
  case PolicyKind::SpWeights:
    for (size_t I = 0; I < S.Edges.size(); ++I)
      S.EdgeCosts.push_back(static_cast<uint32_t>(R.range(1, 9)));
    if (R.chance(40))
      S.AssertBound = static_cast<uint32_t>(R.range(1, 4 * S.NumNodes));
    break;
  case PolicyKind::TupleLex:
    S.StrideA = static_cast<uint32_t>(R.range(1, 3));
    S.StrideB = static_cast<uint32_t>(R.range(0, 4));
    if (R.chance(50))
      S.AssertBound = static_cast<uint32_t>(R.range(1, 3 * S.NumNodes));
    break;
  case PolicyKind::RecordBgp:
    for (uint32_t U = 0; U < S.NumNodes; ++U) {
      S.Meds.push_back(static_cast<uint32_t>(R.range(10, 99)));
      S.Hubs.push_back(R.chance(20) ? 1 : 0);
      S.FilterNodes.push_back(R.chance(15) ? 1 : 0);
    }
    break;
  case PolicyKind::DictReach: {
    uint32_t N = static_cast<uint32_t>(R.range(1, 4));
    std::set<uint32_t> Seen;
    S.Announcers.push_back(S.Dest); // prefix 0: the assert's target
    Seen.insert(S.Dest);
    for (uint32_t I = 1; I < N; ++I) {
      uint32_t A = static_cast<uint32_t>(R.below(S.NumNodes));
      if (Seen.insert(A).second)
        S.Announcers.push_back(A);
    }
    break;
  }
  case PolicyKind::RouteMapCfg: {
    S.ExtraOrigins = static_cast<uint32_t>(R.below(2));
    uint32_t NumMaps = static_cast<uint32_t>(R.range(0, 3));
    for (uint32_t I = 0; I < NumMaps; ++I) {
      RmSpec RM;
      RM.Router = static_cast<uint32_t>(R.below(S.NumNodes));
      RM.NeighborIdx = static_cast<uint32_t>(R.below(4));
      RM.In = R.chance(50);
      uint32_t NumClauses = static_cast<uint32_t>(R.range(1, 3));
      for (uint32_t C = 0; C < NumClauses; ++C) {
        RmClauseSpec Cl;
        Cl.Permit = !R.chance(25);
        if (R.chance(50))
          Cl.MatchComm = static_cast<uint8_t>(R.range(1, 2));
        if (R.chance(30))
          Cl.MatchPfx = static_cast<uint8_t>(R.range(1, 2));
        if (R.chance(40))
          Cl.SetComm = static_cast<uint8_t>(R.range(1, 2));
        if (R.chance(40))
          Cl.SetMetric = static_cast<uint8_t>(R.range(1, 50));
        RM.Clauses.push_back(Cl);
      }
      S.RouteMaps.push_back(RM);
    }
    break;
  }
  }
  return S;
}

FuzzInstance nv::renderSpec(const FuzzSpec &Spec, DiagnosticEngine &Diags) {
  FuzzInstance I;
  I.Spec = Spec;

  char SeedHex[32];
  std::snprintf(SeedHex, sizeof(SeedHex), "0x%016llx",
                static_cast<unsigned long long>(Spec.Seed));
  I.Name = std::string(policyKindName(Spec.Policy)) + "/" +
           topoKindName(Spec.Topo) + " n=" + std::to_string(Spec.NumNodes) +
           " e=" + std::to_string(Spec.Edges.size()) + " seed=" + SeedHex;

  switch (Spec.Policy) {
  case PolicyKind::SpOption:
    I.NvSource = renderSpOption(Spec);
    break;
  case PolicyKind::SpWeights:
    I.NvSource = renderSpWeights(Spec);
    break;
  case PolicyKind::TupleLex:
    I.NvSource = renderTupleLex(Spec);
    break;
  case PolicyKind::RecordBgp:
    I.NvSource = renderRecordBgp(Spec);
    break;
  case PolicyKind::DictReach:
    I.NvSource = renderDictReach(Spec);
    break;
  case PolicyKind::RouteMapCfg:
    I.NvSource = renderRouteMapCfg(Spec, Diags, I.ConfigText);
    break;
  }

  // Strictly monotone + selective policies have a unique stable state, so
  // the simulator's verdict and the SMT verifier's must coincide. The
  // others either use MTBDD dict attributes (outside the encodable
  // fragment) or lack a uniqueness argument (med tie-breaking).
  I.SmtComparable = Spec.Policy == PolicyKind::SpOption ||
                    Spec.Policy == PolicyKind::SpWeights ||
                    Spec.Policy == PolicyKind::TupleLex;
  // Fig. 5's transform needs an option attribute for the None drop value.
  I.FtComparable = Spec.Policy == PolicyKind::SpOption ||
                   Spec.Policy == PolicyKind::SpWeights ||
                   Spec.Policy == PolicyKind::TupleLex ||
                   Spec.Policy == PolicyKind::RecordBgp;
  return I;
}

FuzzInstance nv::instanceFromSeed(uint64_t Seed, DiagnosticEngine &Diags) {
  return renderSpec(specFromSeed(Seed), Diags);
}
