//===- Minimize.cpp - Greedy divergence minimizer ------------------------------===//

#include "fuzz/Minimize.h"

#include <algorithm>

using namespace nv;

namespace {

/// Drops Edges[I] (and its parallel per-edge parameters).
FuzzSpec withoutEdge(const FuzzSpec &S, size_t I) {
  FuzzSpec C = S;
  C.Edges.erase(C.Edges.begin() + I);
  if (I < C.EdgeCosts.size())
    C.EdgeCosts.erase(C.EdgeCosts.begin() + I);
  return C;
}

/// Drops the highest-numbered node with its incident edges and per-node
/// parameters; null move when the node is load-bearing (destination or
/// sole announcer) or the graph would lose its last edge.
bool dropLastNode(const FuzzSpec &S, FuzzSpec &Out) {
  if (S.NumNodes <= 2)
    return false;
  uint32_t Last = S.NumNodes - 1;
  if (S.Dest == Last)
    return false;
  FuzzSpec C = S;
  C.NumNodes = Last;
  for (size_t I = C.Edges.size(); I-- > 0;)
    if (C.Edges[I].first == Last || C.Edges[I].second == Last) {
      C.Edges.erase(C.Edges.begin() + I);
      if (I < C.EdgeCosts.size())
        C.EdgeCosts.erase(C.EdgeCosts.begin() + I);
    }
  if (C.Edges.empty())
    return false;
  if (C.Meds.size() > Last)
    C.Meds.resize(Last);
  if (C.Hubs.size() > Last)
    C.Hubs.resize(Last);
  if (C.FilterNodes.size() > Last)
    C.FilterNodes.resize(Last);
  C.Announcers.erase(
      std::remove(C.Announcers.begin(), C.Announcers.end(), Last),
      C.Announcers.end());
  if (S.Policy == PolicyKind::DictReach && C.Announcers.empty())
    return false;
  C.RouteMaps.erase(std::remove_if(C.RouteMaps.begin(), C.RouteMaps.end(),
                                   [&](const RmSpec &R) {
                                     return R.Router >= Last;
                                   }),
                    C.RouteMaps.end());
  Out = std::move(C);
  return true;
}

} // namespace

std::vector<FuzzSpec> nv::shrinkCandidates(const FuzzSpec &S) {
  std::vector<FuzzSpec> Out;

  // 1. Structural: single-edge deletions, then the top node.
  if (S.Edges.size() > 1)
    for (size_t I = 0; I < S.Edges.size(); ++I)
      Out.push_back(withoutEdge(S, I));
  FuzzSpec NodeDrop;
  if (dropLastNode(S, NodeDrop))
    Out.push_back(std::move(NodeDrop));

  // 2. Policy features, one at a time.
  auto Push = [&](auto Mutate) {
    FuzzSpec C = S;
    Mutate(C);
    if (!(C == S))
      Out.push_back(std::move(C));
  };
  Push([](FuzzSpec &C) { C.HopCap = 0; });
  Push([](FuzzSpec &C) { C.AssertBound = 0; });
  Push([](FuzzSpec &C) {
    std::fill(C.EdgeCosts.begin(), C.EdgeCosts.end(), 1u);
  });
  Push([](FuzzSpec &C) { C.StrideA = 1; });
  Push([](FuzzSpec &C) { C.StrideB = 0; });
  Push([](FuzzSpec &C) { std::fill(C.Meds.begin(), C.Meds.end(), 0u); });
  Push([](FuzzSpec &C) {
    std::fill(C.Hubs.begin(), C.Hubs.end(), uint8_t(0));
  });
  Push([](FuzzSpec &C) {
    std::fill(C.FilterNodes.begin(), C.FilterNodes.end(), uint8_t(0));
  });
  Push([](FuzzSpec &C) {
    if (C.Announcers.size() > 1)
      C.Announcers.erase(C.Announcers.begin() + 1, C.Announcers.end());
  });
  Push([](FuzzSpec &C) { C.ExtraOrigins = 0; });
  if (!S.RouteMaps.empty()) {
    Push([](FuzzSpec &C) { C.RouteMaps.pop_back(); });
    Push([](FuzzSpec &C) {
      if (C.RouteMaps.back().Clauses.size() > 1)
        C.RouteMaps.back().Clauses.pop_back();
    });
  }
  return Out;
}

MinimizeResult nv::minimizeSpec(const FuzzSpec &Failing,
                                const OracleOptions &Opts) {
  MinimizeResult R;
  auto Diverges = [&](const FuzzSpec &S, FuzzInstance &InstOut,
                      OracleVerdict &VOut) {
    DiagnosticEngine Diags;
    InstOut = renderSpec(S, Diags);
    ++R.OracleRuns;
    if (InstOut.NvSource.empty())
      return false; // A shrink that breaks rendering is not a repro.
    DiagnosticEngine OracleDiags;
    VOut = runOracle(InstOut, Opts, OracleDiags);
    return !VOut.Ok;
  };

  FuzzSpec Cur = Failing;
  if (!Diverges(Cur, R.Instance, R.Verdict)) {
    R.Final = Cur;
    return R;
  }

  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (const FuzzSpec &Cand : shrinkCandidates(Cur)) {
      FuzzInstance Inst;
      OracleVerdict V;
      if (Diverges(Cand, Inst, V)) {
        Cur = Cand;
        R.Instance = std::move(Inst);
        R.Verdict = std::move(V);
        ++R.MovesApplied;
        Progress = true;
        break; // Restart from the shrunk spec's candidate list.
      }
    }
  }
  R.Final = Cur;
  return R;
}
