//===- InstanceGen.h - Random NV instance generator -------------*- C++ -*-===//
//
// Part of nv-cpp. The seed-driven instance generator of the differential
// fuzzer: a 64-bit seed deterministically expands into a FuzzSpec — an
// explicit topology (FatTree, random WAN, ring, chord) plus a well-typed
// policy drawn from one of six families spanning the attribute grammar
// (ints, options, tuples, records, dicts, and route-map DAG configs
// through the Cisco frontend) — and the spec renders to NV source text.
//
// The spec is the unit of minimization: every parameter the renderer
// consumes is stored explicitly (edge lists are materialized even for
// structured topologies), so the shrinker can delete edges, nodes, and
// policy features one at a time and re-render deterministically.
//
//===----------------------------------------------------------------------===//

#ifndef NV_FUZZ_INSTANCEGEN_H
#define NV_FUZZ_INSTANCEGEN_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nv {

enum class TopoKind { FatTree, Wan, Ring, Chord };
enum class PolicyKind {
  SpOption,    ///< option[int] shortest path, optional hop cap + distance
               ///< bound in the assert. Monotone: SMT/FT/naive comparable.
  SpWeights,   ///< option[int] with per-edge costs (if-chain cost map).
  TupleLex,    ///< option[(int, int)] lexicographic; strictly monotone.
  RecordBgp,   ///< include bgp: hub tagging + per-node filters + meds.
  DictReach,   ///< dict[int16, option[int16]] multi-announcer reachability.
  RouteMapCfg, ///< Cisco config through the frontend (route-map DAGs).
};

const char *topoKindName(TopoKind K);
const char *policyKindName(PolicyKind K);

/// One generated route-map clause (RouteMapCfg family). Index fields are
/// 0 = absent, else 1-based into the instance's list palette.
struct RmClauseSpec {
  bool Permit = true;
  uint8_t MatchComm = 0;  ///< 1-based community-list index, 0 = none.
  uint8_t MatchPfx = 0;   ///< 1-based prefix-list index, 0 = none.
  uint8_t SetComm = 0;    ///< 1-based community value index, 0 = none.
  uint8_t SetMetric = 0;  ///< Metric value (0 = none).

  bool operator==(const RmClauseSpec &) const = default;
};

/// One generated route-map attachment: router R applies the clauses to
/// the session with its NeighborIdx-th interface neighbor.
struct RmSpec {
  uint32_t Router = 0;
  uint32_t NeighborIdx = 0;
  bool In = true; ///< "in" vs "out" direction.
  std::vector<RmClauseSpec> Clauses;

  bool operator==(const RmSpec &) const = default;
};

/// The complete, explicit description of one fuzz instance.
struct FuzzSpec {
  uint64_t Seed = 0;
  TopoKind Topo = TopoKind::Wan;
  PolicyKind Policy = PolicyKind::SpOption;

  uint32_t NumNodes = 0;
  /// Undirected links, normalized A < B, sorted, deduplicated; never
  /// empty (the NV grammar requires at least one edge).
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
  uint32_t Dest = 0; ///< Announcing / destination node.

  // SpOption / SpWeights / TupleLex.
  uint32_t HopCap = 0;      ///< Drop routes longer than this (0 = off).
  uint32_t AssertBound = 0; ///< assert d <= bound (0 = reachability only).
  std::vector<uint32_t> EdgeCosts; ///< SpWeights: per-Edges[] cost, >= 1.
  uint32_t StrideA = 1, StrideB = 0; ///< TupleLex per-hop increments.

  // RecordBgp.
  std::vector<uint32_t> Meds;        ///< Per-node med (tie-break).
  std::vector<uint8_t> Hubs;         ///< Per-node: tags community 7.
  std::vector<uint8_t> FilterNodes;  ///< Per-node: drops tagged routes.

  // DictReach.
  std::vector<uint32_t> Announcers;  ///< Prefix i is announced by [i].

  // RouteMapCfg.
  std::vector<RmSpec> RouteMaps;
  uint32_t ExtraOrigins = 0; ///< Additional routers with static routes.

  bool operator==(const FuzzSpec &) const = default;
};

/// A rendered instance: the NV program (always) plus the vendor config it
/// was translated from (RouteMapCfg only) and the oracle legs that apply.
struct FuzzInstance {
  FuzzSpec Spec;
  std::string Name;       ///< e.g. "sp-option/wan n=9 e=13 seed=0x..".
  std::string NvSource;
  std::string ConfigText; ///< RouteMapCfg: the Cisco-style input blob.
  bool SmtComparable = false;   ///< Unique stable state; SMT leg valid.
  bool FtComparable = false;    ///< option attribute; FT/naive legs valid.
};

/// Expands a seed into a spec. Total: every 64-bit seed yields a valid
/// spec, and equal seeds yield equal specs.
FuzzSpec specFromSeed(uint64_t Seed);

/// Renders a spec to NV source (through the Cisco frontend for
/// RouteMapCfg). Rendering is a pure function of the spec. Renders that
/// fail internal translation (a generator bug) report to \p Diags and
/// return an instance with empty NvSource.
FuzzInstance renderSpec(const FuzzSpec &Spec, DiagnosticEngine &Diags);

/// specFromSeed + renderSpec.
FuzzInstance instanceFromSeed(uint64_t Seed, DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_FUZZ_INSTANCEGEN_H
