//===- Corpus.h - Regression corpus reader/writer ---------------*- C++ -*-===//
//
// Part of nv-cpp. Corpus files under tests/corpus/ are standalone .nv
// programs (directly runnable with `nv sim`) whose leading NV comment
// carries the fuzzing metadata the replayer needs:
//
//   (* nv-fuzz corpus v1
//      seed: 0x0000000000000007
//      family: sp-option
//      topo: wan n=9 e=13
//      oracle: sim ft naive smt
//      note: generator-produced regression instance
//   *)
//   let nodes = 9
//   ...
//
// The `oracle:` tokens select the engine legs the replayer compares
// (`sim` is always on; `ft`/`naive`/`smt` map to the comparability flags
// the generator derived from the policy family).
//
//===----------------------------------------------------------------------===//

#ifndef NV_FUZZ_CORPUS_H
#define NV_FUZZ_CORPUS_H

#include "fuzz/Oracle.h"

#include <optional>
#include <string>
#include <vector>

namespace nv {

/// Renders a corpus file for an instance (with its oracle legs and an
/// optional note, e.g. the divergence that produced a minimized repro).
std::string corpusFileText(const FuzzInstance &Inst,
                           const std::string &Note = {});

/// Parses a corpus file's text back into a replayable instance. The whole
/// text (header comment included) becomes NvSource — the NV lexer skips
/// comments — and the oracle flags come from the `oracle:` line. Null
/// when the header is missing or malformed.
std::optional<FuzzInstance> parseCorpusText(const std::string &Text);

/// Reads one corpus file; null with a message to stderr on failure.
std::optional<FuzzInstance> loadCorpusFile(const std::string &Path);

/// All .nv corpus files under \p Dir, sorted by path for determinism.
std::vector<std::string> listCorpusFiles(const std::string &Dir);

} // namespace nv

#endif // NV_FUZZ_CORPUS_H
