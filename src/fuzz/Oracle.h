//===- Oracle.h - Cross-engine differential oracle --------------*- C++ -*-===//
//
// Part of nv-cpp. The equivalence oracle of the differential fuzzer: one
// instance is run through every applicable analysis engine and all
// results are reduced to canonical string fingerprints that must agree.
//
// Engine matrix (Sec. 5.1's interchangeable analyses):
//   sim legs   interpreted and closure-compiled evaluators, each at MTBDD
//              GC watermark 0 (collector off) and 1 (collect at every
//              safe point — maximal stress for the moving GC);
//   ft legs    the Fig. 5 MTBDD meta-simulation, {interpreted, compiled}
//              x {1, N check threads} x {watermark 0, 1};
//   naive      the per-scenario failure enumerator (small instances);
//   smt        the Z3 stable-state verifier (small instances whose policy
//              family guarantees a unique stable state).
//
// Values are interned per NvContext, so cross-engine comparison goes
// through NvContext::printValue — diagrams are canonical (reduced,
// ordered, shared), making the printed form independent of allocation
// history, GC schedule, and thread count.
//
//===----------------------------------------------------------------------===//

#ifndef NV_FUZZ_ORACLE_H
#define NV_FUZZ_ORACLE_H

#include "fuzz/InstanceGen.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nv {

struct OracleOptions {
  /// Worker threads for the N-thread FT legs (0 = NV_THREADS / hardware).
  unsigned Threads = 0;

  /// Optional shared cancellation token, threaded into every leg's budget.
  /// Canceled legs fingerprint as the canonical skip (never a divergence),
  /// so a campaign's graceful shutdown drains the in-flight instance
  /// through its safe points instead of waiting out the engine matrix.
  CancelToken *Cancel = nullptr;

  bool EnableFt = true;
  bool EnableNaive = true;
  bool EnableSmt = true;

  // Size gates: the expensive legs only run on instances below these.
  uint32_t FtMaxNodes = 24, FtMaxLinks = 40;
  uint32_t NaiveMaxNodes = 16, NaiveMaxLinks = 26;
  uint32_t SmtMaxNodes = 10, SmtMaxLinks = 16;

  unsigned SmtTimeoutMs = 30000;
  uint64_t MaxSteps = 2'000'000;
  /// Pop budget for the FT meta-simulation legs. Well-behaved instances
  /// under the size gates converge in well under a thousand pops; a
  /// non-monotone policy oscillating under some failure scenario would
  /// otherwise grow MTBDD leaves without bound. Hitting the budget — like
  /// any other resource-limit outcome (deadline, cancellation, injected
  /// fault) — turns the leg into the one canonical "skip:resource-limit"
  /// fingerprint, which is excluded from cross-engine comparison (and
  /// gates the naive leg), so a truncated run is a skip, never a
  /// divergence. Keep this small: the watermark-1 legs collect at every
  /// safe point, so an oscillating arena makes each further pop ever more
  /// expensive.
  uint64_t FtMaxSteps = 2'000;

  /// Hidden testing hook (--inject-bug-for-testing / NV_FUZZ_INJECT_BUG):
  /// plants a deliberate wrong-verdict bug in the compiled-evaluator
  /// watermark-1 leg for sp-option instances with >= 6 edges, simulating
  /// a silent miscompilation the oracle must catch and the minimizer must
  /// shrink (to exactly 6 edges).
  bool InjectBugForTesting = false;
};

struct EngineRun {
  std::string Engine;      ///< e.g. "native-wm1", "ft-interp-tN-wm1".
  std::string Fingerprint; ///< Canonical result string.
};

struct OracleVerdict {
  bool Ok = false;
  std::string Mismatch; ///< First divergence (empty when Ok).
  std::vector<EngineRun> Runs;

  /// The two engines of the first divergence ("a|b"; diagnostics only).
  std::string divergingEngines() const;
};

/// Runs the full engine matrix on one instance. Deterministic: equal
/// instances and options yield equal verdicts (including Runs order).
OracleVerdict runOracle(const FuzzInstance &Inst, const OracleOptions &Opts,
                        DiagnosticEngine &Diags);

} // namespace nv

#endif // NV_FUZZ_ORACLE_H
