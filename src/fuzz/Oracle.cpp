//===- Oracle.cpp - Cross-engine differential oracle ---------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/FaultTolerance.h"
#include "baselines/NaiveFailures.h"
#include "core/Parser.h"
#include "core/TypeChecker.h"
#include "eval/Compile.h"
#include "sim/Simulator.h"
#include "smt/Verifier.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace nv;

std::string OracleVerdict::divergingEngines() const {
  size_t Bar = Mismatch.find(" vs ");
  return Bar == std::string::npos ? "" : Mismatch;
}

namespace {

/// The one canonical fingerprint for every resource-limit ending. A budget
/// trip, deadline, cancellation, or injected fault is a scheduling
/// accident, not a semantic result — different legs can trip at different
/// points (a process-global fault countdown fires in exactly one leg), so
/// these runs are excluded from cross-engine comparison wholesale rather
/// than compared against each other.
constexpr const char *SkipFingerprint = "skip:resource-limit";

/// Fingerprint of a run that ended early. Resource limits collapse to the
/// canonical skip fingerprint; semantic errors keep their status name (and
/// only the status name — detail strings may mention leg-specific state):
/// they are deterministic, so engines must agree on them.
std::string outcomeFingerprint(const RunOutcome &O) {
  if (O.resourceLimit())
    return SkipFingerprint;
  return std::string("error:") + runStatusName(O.Status);
}

bool isSkipFingerprint(const std::string &FP) {
  return FP.rfind("skip:", 0) == 0;
}

/// One simulator run under a chosen evaluator and GC watermark, reduced
/// to a canonical fingerprint: convergence, every node's label (printed
/// from the canonical diagram), and the assert verdict.
std::string simFingerprint(const Program &P, bool UseCompiled,
                           size_t Watermark, const OracleOptions &Opts) {
  try {
    NvContext Ctx(P.numNodes());
    Ctx.Mgr.setGcWatermark(Watermark);
    std::unique_ptr<ProtocolEvaluator> Eval;
    if (UseCompiled)
      Eval = std::make_unique<CompiledProgramEvaluator>(Ctx, P);
    else
      Eval = std::make_unique<InterpProgramEvaluator>(Ctx, P);

    SimOptions SO;
    SO.Budget.MaxSteps = Opts.MaxSteps;
    SO.Budget.Cancel = Opts.Cancel;
    SimResult R = simulate(P, *Eval, SO);
    if (!R.Converged)
      return outcomeFingerprint(R.Outcome);

    std::string FP = "conv=1";
    for (uint32_t U = 0; U < P.numNodes(); ++U) {
      FP += ';';
      FP += Ctx.printValue(R.Labels[U]);
    }
    if (Eval->hasAssert()) {
      auto Failed = checkAsserts(*Eval, R);
      FP += ";assert=";
      if (Failed.empty())
        FP += "ok";
      else
        for (size_t I = 0; I < Failed.size(); ++I) {
          if (I)
            FP += ',';
          FP += std::to_string(Failed[I]);
        }
    } else {
      FP += ";assert=none";
    }
    return FP;
  } catch (const EngineError &E) {
    // Evaluator construction or assert evaluation tripped outside the
    // simulator's own catch (e.g. an injected allocation fault).
    return outcomeFingerprint(E.outcome());
  }
}

/// Canonical fingerprint of a fault-tolerance check result: scenario
/// count plus the sorted violation set (scenario, node, selected route).
/// A non-Ok run outcome reduces to its outcome fingerprint instead.
std::string ftFingerprint(const FtCheckResult &Check,
                          const RunOutcome &Outcome) {
  if (!Outcome.ok())
    return outcomeFingerprint(Outcome);
  std::vector<std::string> Lines;
  for (const FtViolation &V : Check.Violations)
    Lines.push_back(V.Scenario.str() + "@" + std::to_string(V.Node) + "=" +
                    V.routeStr());
  std::sort(Lines.begin(), Lines.end());
  std::string FP = "conv=1;scenarios=" + std::to_string(Check.ScenariosChecked);
  for (const std::string &L : Lines)
    FP += ";" + L;
  return FP;
}

/// Extracts the assert verdict portion of a sim fingerprint.
bool simAssertHolds(const std::string &FP) {
  return FP.find(";assert=ok") != std::string::npos ||
         FP.find(";assert=none") != std::string::npos;
}

} // namespace

OracleVerdict nv::runOracle(const FuzzInstance &Inst,
                            const OracleOptions &Opts,
                            DiagnosticEngine &Diags) {
  OracleVerdict V;
  if (Inst.NvSource.empty()) {
    V.Mismatch = "generator produced no source (internal bug)";
    return V;
  }

  auto P = parseProgram(Inst.NvSource, Diags);
  if (!P || !typeCheck(*P, Diags)) {
    V.Mismatch = "generated program failed to parse/typecheck: " + Diags.str();
    return V;
  }

  uint32_t Nodes = P->numNodes();
  uint32_t Links = static_cast<uint32_t>(P->links().size());
  unsigned NThreads = Opts.Threads ? Opts.Threads
                                   : ThreadPool::defaultThreadCount();
  if (NThreads < 2)
    NThreads = 2;

  // -- Simulation legs ------------------------------------------------------
  struct SimLeg {
    const char *Name;
    bool Compiled;
    size_t Watermark;
  };
  const SimLeg SimLegs[] = {
      {"interp-wm0", false, 0},
      {"interp-wm1", false, 1},
      {"native-wm0", true, 0},
      {"native-wm1", true, 1},
  };
  for (const SimLeg &L : SimLegs) {
    std::string FP = simFingerprint(*P, L.Compiled, L.Watermark, Opts);
    // The planted bug: the compiled evaluator at watermark 1 silently
    // reports the opposite assert verdict on sp-option instances with at
    // least 6 edges. Exists solely so tests can prove the oracle catches
    // a divergence and the minimizer shrinks it to the 6-edge floor.
    // Corpus-loaded instances carry only the seed and family in Spec, so
    // fall back to the parsed program's link count for the edge floor.
    size_t EdgeCount = Inst.Spec.Edges.empty() ? Links : Inst.Spec.Edges.size();
    if (Opts.InjectBugForTesting && L.Compiled && L.Watermark == 1 &&
        Inst.Spec.Policy == PolicyKind::SpOption && EdgeCount >= 6) {
      size_t A = FP.find(";assert=");
      if (A != std::string::npos)
        FP = FP.substr(0, A) + (simAssertHolds(FP) ? ";assert=999"
                                                   : ";assert=ok");
    }
    V.Runs.push_back({L.Name, FP});
  }
  // Reference = the first non-skip sim leg; skip legs (resource trips,
  // injected faults) are excluded from comparison entirely. Copy, not
  // reference: later push_backs reallocate V.Runs.
  std::string SimFP;
  std::string SimRefEngine;
  for (size_t I = 0; I < V.Runs.size(); ++I) {
    const EngineRun &R = V.Runs[I];
    if (isSkipFingerprint(R.Fingerprint))
      continue;
    if (SimRefEngine.empty()) {
      SimRefEngine = R.Engine;
      SimFP = R.Fingerprint;
    } else if (R.Fingerprint != SimFP && V.Mismatch.empty()) {
      V.Mismatch = SimRefEngine + " vs " + R.Engine + ": " + SimFP +
                   " != " + R.Fingerprint;
    }
  }

  bool HasAssert = P->assertDecl() != nullptr;

  // -- Fault-tolerance MTBDD legs -------------------------------------------
  std::string FtFP;
  std::string FtRefEngine;
  if (Opts.EnableFt && Inst.FtComparable && HasAssert &&
      Nodes <= Opts.FtMaxNodes && Links <= Opts.FtMaxLinks) {
    struct FtLeg {
      const char *Name;
      bool Compiled;
      unsigned Threads;
      size_t Watermark;
    };
    const FtLeg FtLegs[] = {
        {"ft-interp-t1-wm0", false, 1, 0},
        {"ft-interp-tN-wm1", false, NThreads, 1},
        {"ft-native-t1-wm1", true, 1, 1},
        {"ft-native-tN-wm0", true, NThreads, 0},
    };
    for (const FtLeg &L : FtLegs) {
      std::string FP;
      try {
        FtOptions FO;
        FO.LinkFailures = 1;
        FO.Threads = L.Threads;
        FO.Budget.MaxSteps = Opts.FtMaxSteps;
        FO.Budget.Cancel = Opts.Cancel;
        NvContext Ctx(P->numNodes());
        Ctx.Mgr.setGcWatermark(L.Watermark);
        FtRunResult R = runFaultTolerance(*P, FO, L.Compiled, Diags,
                                          /*CheckAsserts=*/true, &Ctx);
        FP = ftFingerprint(R.Check, R.Outcome);
      } catch (const EngineError &E) {
        FP = outcomeFingerprint(E.outcome()); // e.g. injected context-setup fault
      }
      V.Runs.push_back({L.Name, FP});
      if (isSkipFingerprint(FP))
        continue;
      if (FtRefEngine.empty()) {
        FtRefEngine = L.Name;
        FtFP = FP;
      } else if (FP != FtFP && V.Mismatch.empty()) {
        V.Mismatch = FtRefEngine + " vs " + L.Name + ": " + FtFP + " != " + FP;
      }
    }
  }

  // -- Naive per-scenario enumerator ----------------------------------------
  // Gated on a non-skip FT reference: when every FT leg hit a resource
  // limit (step budget, deadline, injected fault) there is nothing
  // trustworthy to compare the enumerator against — and on a
  // budget-limited instance the enumerator would be the hang the budget
  // existed to prevent.
  if (Opts.EnableNaive && !FtRefEngine.empty() &&
      Nodes <= Opts.NaiveMaxNodes && Links <= Opts.NaiveMaxLinks) {
    std::string FP;
    try {
      FtOptions FO;
      FO.LinkFailures = 1;
      FO.Budget.Cancel = Opts.Cancel;
      NvContext Ctx(P->numNodes());
      InterpProgramEvaluator Eval(Ctx, *P);
      FtCheckResult NR = naiveFaultTolerance(*P, Eval, FO, Ctx.noneV());
      FP = ftFingerprint(NR, NR.Outcome);
    } catch (const EngineError &E) {
      FP = outcomeFingerprint(E.outcome());
    }
    V.Runs.push_back({"naive", FP});
    if (!isSkipFingerprint(FP) && FP != FtFP && V.Mismatch.empty())
      V.Mismatch = FtRefEngine + " vs naive: " + FtFP + " != " + FP;
  }

  // -- SMT stable-state verifier --------------------------------------------
  if (Opts.EnableSmt && Inst.SmtComparable && HasAssert &&
      Nodes <= Opts.SmtMaxNodes && Links <= Opts.SmtMaxLinks) {
    VerifyOptions VO;
    VO.TimeoutMs = Opts.SmtTimeoutMs;
    VO.Budget.Cancel = Opts.Cancel;
    DiagnosticEngine SmtDiags;
    VerifyResult R = verifyProgram(*P, VO, SmtDiags);
    if (R.Status == VerifyStatus::ResourceExhausted) {
      // Solver timeout / cancellation / injected fault: a skip, never a
      // divergence (generalizes the old special-cased timeout handling).
      V.Runs.push_back({"smt", SkipFingerprint});
    } else {
      const char *Verdict = R.Status == VerifyStatus::Verified    ? "holds"
                            : R.Status == VerifyStatus::Falsified ? "fails"
                            : R.Status == VerifyStatus::Unknown   ? "unknown"
                                                                  : "error";
      V.Runs.push_back({"smt", std::string("assert=") + Verdict});
      if (R.Status == VerifyStatus::EncodingError && V.Mismatch.empty())
        V.Mismatch = "smt: encoding error on an SMT-comparable instance: " +
                     SmtDiags.str();
      // These families are strictly monotone with selective merges, so the
      // stable state is unique and the two verdicts must coincide. Unknown
      // (genuine incompleteness) is recorded but not a divergence; the
      // comparison also needs a non-skip sim reference to compare against.
      if ((R.Status == VerifyStatus::Verified ||
           R.Status == VerifyStatus::Falsified) &&
          !SimRefEngine.empty()) {
        bool SmtHolds = R.Status == VerifyStatus::Verified;
        if (SmtHolds != simAssertHolds(SimFP) && V.Mismatch.empty())
          V.Mismatch = SimRefEngine + " vs smt: sim assert " +
                       (simAssertHolds(SimFP) ? "ok" : "fail") + " != smt " +
                       Verdict;
      }
    }
  }

  V.Ok = V.Mismatch.empty();
  return V;
}
