//===- Rng.h - Deterministic fuzzing PRNG -----------------------*- C++ -*-===//
//
// Part of nv-cpp. A SplitMix64 generator for the differential fuzzer.
// std::mt19937 is fully specified, but the standard distributions are
// not, so instance generation uses this self-contained generator with
// explicit bounded sampling: the same 64-bit seed yields the same
// instance on every platform and toolchain.
//
//===----------------------------------------------------------------------===//

#ifndef NV_FUZZ_RNG_H
#define NV_FUZZ_RNG_H

#include <cstdint>

namespace nv {

class FuzzRng {
public:
  explicit FuzzRng(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9E3779B97F4A7C15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, N); 0 when N is 0. Modulo bias is irrelevant for
  /// instance generation (N is tiny against 2^64).
  uint64_t below(uint64_t N) { return N ? next() % N : 0; }

  /// Uniform in [Lo, Hi] inclusive.
  uint64_t range(uint64_t Lo, uint64_t Hi) {
    return Lo + below(Hi - Lo + 1);
  }

  /// True with probability Pct/100.
  bool chance(unsigned Pct) { return below(100) < Pct; }

private:
  uint64_t State;
};

/// Derives the per-instance seed from a base seed and an instance index.
/// The mix keeps consecutive indices decorrelated so every instance field
/// draws from an independent-looking stream.
inline uint64_t mixSeed(uint64_t Base, uint64_t Index) {
  uint64_t Z = Base ^ (Index * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull);
  Z = (Z ^ (Z >> 32)) * 0xD6E8FEB86659FD93ull;
  Z = (Z ^ (Z >> 32)) * 0xD6E8FEB86659FD93ull;
  return Z ^ (Z >> 32);
}

} // namespace nv

#endif // NV_FUZZ_RNG_H
