//===- Corpus.cpp - Regression corpus reader/writer ----------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace nv;

std::string nv::corpusFileText(const FuzzInstance &Inst,
                               const std::string &Note) {
  char SeedHex[32];
  std::snprintf(SeedHex, sizeof(SeedHex), "0x%016llx",
                static_cast<unsigned long long>(Inst.Spec.Seed));
  std::string Oracle = "sim";
  if (Inst.FtComparable)
    Oracle += " ft naive";
  if (Inst.SmtComparable)
    Oracle += " smt";
  std::string S = "(* nv-fuzz corpus v1\n";
  S += "   seed: " + std::string(SeedHex) + "\n";
  S += "   family: " + std::string(policyKindName(Inst.Spec.Policy)) + "\n";
  S += "   topo: " + std::string(topoKindName(Inst.Spec.Topo)) +
       " n=" + std::to_string(Inst.Spec.NumNodes) +
       " e=" + std::to_string(Inst.Spec.Edges.size()) + "\n";
  S += "   oracle: " + Oracle + "\n";
  if (!Note.empty())
    S += "   note: " + Note + "\n";
  S += "*)\n" + Inst.NvSource;
  return S;
}

std::optional<FuzzInstance> nv::parseCorpusText(const std::string &Text) {
  if (Text.rfind("(* nv-fuzz corpus", 0) != 0)
    return std::nullopt;

  FuzzInstance I;
  I.NvSource = Text;

  std::istringstream In(Text);
  std::string Line;
  std::string Family, Oracle;
  while (std::getline(In, Line) && Line.find("*)") == std::string::npos) {
    auto Value = [&](const char *Key) -> std::optional<std::string> {
      size_t At = Line.find(Key);
      if (At == std::string::npos)
        return std::nullopt;
      std::string V = Line.substr(At + std::strlen(Key));
      while (!V.empty() && (V.front() == ' ' || V.front() == '\t'))
        V.erase(V.begin());
      while (!V.empty() && (V.back() == '\r' || V.back() == ' '))
        V.pop_back();
      return V;
    };
    if (auto V = Value("seed:"))
      I.Spec.Seed = std::strtoull(V->c_str(), nullptr, 0);
    else if (auto V = Value("family:"))
      Family = *V;
    else if (auto V = Value("oracle:"))
      Oracle = *V;
  }

  static const std::pair<const char *, PolicyKind> Families[] = {
      {"sp-option", PolicyKind::SpOption},
      {"sp-weights", PolicyKind::SpWeights},
      {"tuple-lex", PolicyKind::TupleLex},
      {"record-bgp", PolicyKind::RecordBgp},
      {"dict-reach", PolicyKind::DictReach},
      {"route-map-cfg", PolicyKind::RouteMapCfg},
  };
  for (const auto &[Name, Kind] : Families)
    if (Family == Name)
      I.Spec.Policy = Kind;

  I.Name = "corpus " + Family + " seed=" + std::to_string(I.Spec.Seed);
  I.FtComparable = Oracle.find("ft") != std::string::npos;
  I.SmtComparable = Oracle.find("smt") != std::string::npos;
  return I;
}

std::optional<FuzzInstance> nv::loadCorpusFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot read corpus file %s\n", Path.c_str());
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  auto I = parseCorpusText(Buf.str());
  if (!I)
    std::fprintf(stderr, "%s: missing nv-fuzz corpus header\n", Path.c_str());
  else
    I->Name += " (" + Path + ")";
  return I;
}

std::vector<std::string> nv::listCorpusFiles(const std::string &Dir) {
  std::vector<std::string> Out;
  std::error_code EC;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, EC))
    if (Entry.is_regular_file() && Entry.path().extension() == ".nv")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}
