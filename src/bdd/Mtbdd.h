//===- Mtbdd.h - Hash-consed multi-terminal BDDs ----------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch multi-terminal BDD package (the paper used CUDD). NV
/// total maps are represented as MTBDDs over the bit-encoding of the key
/// type (Sec. 5.1, Fig. 11): leaves hold interned values (opaque pointers
/// here), internal nodes test one key bit. Nodes are hash-consed, so
/// structural equality is pointer (Ref) equality, and apply/map results are
/// memoized so each operation runs once per *distinct* leaf (or leaf pair).
///
/// Variable order: bit 0 is the most significant key bit and sits at the
/// top of the diagram, matching Fig. 11.
///
/// Hot-path representation choices (this file is the kernel every analysis
/// shard runs):
///  - map1/apply2 are templates dispatched on the callback's static type,
///    so per-node visits cost a direct (usually inlined) call instead of a
///    std::function virtual dispatch;
///  - the operation cache is a CUDD-style fixed-size direct-mapped array:
///    lookups are one probe, inserts overwrite (lossy). Losing an entry
///    only costs a recomputation, never correctness.
///
/// A BddManager is single-threaded by design: parallel analyses give each
/// worker its own manager arena (see support/ThreadPool.h) so hash-consing
/// needs no locks. Concurrent *reads* (get, forEachCube) of a manager that
/// no thread is mutating are safe.
///
//===----------------------------------------------------------------------===//

#ifndef NV_BDD_MTBDD_H
#define NV_BDD_MTBDD_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace nv {

/// Owns all MTBDD nodes, the unique (hash-consing) tables and the
/// operation caches. Leaves carry opaque `const void *` payloads; callers
/// must intern payloads so that payload equality is pointer equality.
///
/// There is no garbage collection: nodes live as long as the manager. The
/// simulator allocates one manager per analysis run.
class BddManager {
public:
  using Ref = uint32_t;
  static constexpr uint32_t LeafVar = 0xFFFFFFFFu;

  /// Default number of direct-mapped operation-cache slots (rounded up to
  /// a power of two). 2^17 entries * 24 bytes = 3 MiB per manager arena.
  static constexpr size_t DefaultOpCacheSlots = size_t(1) << 17;

  struct Node {
    uint32_t Var;          ///< Bit index tested, or LeafVar for leaves.
    Ref Lo = 0;            ///< Subtree when the bit is 0 (dashed edge).
    Ref Hi = 0;            ///< Subtree when the bit is 1 (solid edge).
    const void *Leaf = nullptr; ///< Leaf payload (LeafVar nodes only).
  };

  /// \p OpCacheSlots sizes the direct-mapped operation cache (rounded up
  /// to a power of two; tiny values are useful to stress eviction in
  /// tests).
  explicit BddManager(size_t OpCacheSlots = DefaultOpCacheSlots);

  /// Returns the canonical leaf holding \p Payload.
  Ref leaf(const void *Payload);

  /// Returns the canonical internal node (Var, Lo, Hi), applying the
  /// standard reduction Lo == Hi ==> Lo.
  Ref mkNode(uint32_t Var, Ref Lo, Ref Hi);

  bool isLeaf(Ref R) const { return Nodes[R].Var == LeafVar; }
  const void *leafPayload(Ref R) const { return Nodes[R].Leaf; }
  const Node &node(Ref R) const { return Nodes[R]; }

  /// Total number of live nodes in the manager.
  size_t numNodes() const { return Nodes.size(); }

  /// Allocates a fresh tag for memoizing a semantic operation. Operations
  /// keyed by the same tag must be the same mathematical function.
  uint64_t freshOpTag() { return NextOpTag++; }

  /// Applies \p Fn (any callable `const void *(const void *)`) to every
  /// leaf. \p Tag memoizes across calls (pass the same tag for the same
  /// Fn to share work between invocations). Template dispatch: the
  /// callback is invoked directly per distinct node, with no
  /// std::function indirection.
  template <typename UnaryFn> Ref map1(Ref A, UnaryFn &&Fn, uint64_t Tag) {
    return map1Rec(A, Fn, Tag);
  }

  /// Shannon-aligned binary apply: recurses over both diagrams and calls
  /// \p Fn (any callable `const void *(const void *, const void *)`) once
  /// per distinct pair of leaves. This single primitive implements NV's
  /// combine (Fn = merge) and mapIte (A = predicate diagram with boolean
  /// payloads, Fn dispatches on the predicate leaf).
  template <typename BinaryFn>
  Ref apply2(Ref A, Ref B, BinaryFn &&Fn, uint64_t Tag) {
    return apply2Rec(A, B, Fn, Tag);
  }

  /// Follows the path \p KeyBits (KeyBits[i] = value of bit i) to a leaf.
  /// Bits beyond the diagram's depth are ignored (the diagram is total).
  const void *get(Ref M, const std::vector<bool> &KeyBits) const;

  /// Returns the diagram equal to \p M except that the single key at
  /// \p KeyBits maps to \p Payload. \p NumBits is the key type's width
  /// (KeyBits.size() == NumBits).
  Ref set(Ref M, const std::vector<bool> &KeyBits, const void *Payload);

  //===--------------------------------------------------------------------===//
  // Boolean diagrams (predicates over keys)
  //===--------------------------------------------------------------------===//
  //
  // Predicates are ordinary MTBDDs whose payloads are the two canonical
  // pointers passed to setBoolPayloads (typically interned true/false
  // values). The boolean operations below are memoized internally.

  /// Registers the canonical payloads used by boolean diagrams.
  void setBoolPayloads(const void *TruePayload, const void *FalsePayload);

  Ref trueBdd() const { return TrueRef; }
  Ref falseBdd() const { return FalseRef; }
  bool isTrueLeaf(Ref R) const {
    return isLeaf(R) && leafPayload(R) == TruePayload;
  }

  /// Diagram testing a single bit: bit ? true : false.
  Ref bitVar(uint32_t Var);

  Ref bddNot(Ref A);
  Ref bddAnd(Ref A, Ref B);
  Ref bddOr(Ref A, Ref B);
  Ref bddXor(Ref A, Ref B);
  Ref bddXnor(Ref A, Ref B) { return bddNot(bddXor(A, B)); }
  /// if C then T else E, all boolean diagrams.
  Ref bddIte(Ref C, Ref T, Ref E);

  /// Per-bit merge of arbitrary MTBDDs: picks T's leaf where C holds and
  /// E's leaf elsewhere. C must be a boolean diagram.
  Ref mtbddIte(Ref C, Ref T, Ref E);

  /// True when the boolean diagram is satisfiable (not constant-false).
  bool satisfiable(Ref A) const { return A != FalseRef; }

  //===--------------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------------===//

  /// Number of distinct leaves reachable from \p R.
  size_t numDistinctLeaves(Ref R) const;

  /// Number of nodes (internal + leaf) reachable from \p R.
  size_t numReachableNodes(Ref R) const;

  /// Enumerates all complete key assignments over \p NumBits bits together
  /// with their leaf payloads. Exponential in NumBits; testing/debugging
  /// only.
  void forEachKey(Ref R, unsigned NumBits,
                  const std::function<void(const std::vector<bool> &,
                                           const void *)> &Fn) const;

  /// Visits each maximal uniform cube as (bit assignment template, leaf):
  /// entries of the template are 0, 1 or -1 (don't care). Linear in the
  /// diagram size.
  void forEachCube(Ref R, unsigned NumBits,
                   const std::function<void(const std::vector<int8_t> &,
                                            const void *)> &Fn) const;

  /// Drops all operation caches (unique tables are kept).
  void clearCaches();

  /// Approximate bytes used by nodes and tables.
  size_t memoryBytes() const;

  /// Cache statistics (for the cache ablation bench).
  uint64_t cacheHits() const { return CacheHits; }
  uint64_t cacheMisses() const { return CacheMisses; }

  /// Number of direct-mapped operation-cache slots.
  size_t opCacheSlots() const { return OpCache.size(); }

  /// Disables operation caching (for the cache ablation bench).
  void setCachingEnabled(bool On) { CachingEnabled = On; }

private:
  struct NodeKey {
    uint32_t Var;
    Ref Lo, Hi;
    bool operator==(const NodeKey &O) const {
      return Var == O.Var && Lo == O.Lo && Hi == O.Hi;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      uint64_t H = K.Var;
      H = H * 0x9E3779B97F4A7C15ull + K.Lo;
      H = H * 0x9E3779B97F4A7C15ull + K.Hi;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  /// One direct-mapped operation-cache slot. Tag == 0 marks an empty slot
  /// (real tags start at 1; the reserved boolean tags are huge).
  struct OpEntry {
    uint64_t Tag = 0;
    Ref A = 0, B = 0;
    Ref Result = 0;
  };

  std::vector<Node> Nodes;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> Unique;
  std::unordered_map<const void *, Ref> LeafTable;
  std::vector<OpEntry> OpCache; ///< Power-of-two sized, lossy.
  size_t OpCacheMask = 0;

  const void *TruePayload = nullptr;
  const void *FalsePayload = nullptr;
  Ref TrueRef = 0;
  Ref FalseRef = 0;
  uint64_t NextOpTag = 1;

  // Reserved internal tags for boolean operations.
  enum : uint64_t {
    TagNot = 0xF000000000000001ull,
    TagAnd = 0xF000000000000002ull,
    TagOr = 0xF000000000000003ull,
    TagXor = 0xF000000000000004ull,
    TagIte = 0xF000000000000005ull, // combined pairwise
  };

  bool CachingEnabled = true;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;

  static size_t opHash(uint64_t Tag, Ref A, Ref B) {
    uint64_t H = Tag;
    H = H * 0x9E3779B97F4A7C15ull + A;
    H = H * 0x9E3779B97F4A7C15ull + B;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  bool cacheLookup(uint64_t Tag, Ref A, Ref B, Ref &Out) {
    if (!CachingEnabled) {
      ++CacheMisses;
      return false;
    }
    const OpEntry &E = OpCache[opHash(Tag, A, B) & OpCacheMask];
    if (E.Tag == Tag && E.A == A && E.B == B) {
      ++CacheHits;
      Out = E.Result;
      return true;
    }
    ++CacheMisses;
    return false;
  }

  void cacheInsert(uint64_t Tag, Ref A, Ref B, Ref Result) {
    if (CachingEnabled)
      OpCache[opHash(Tag, A, B) & OpCacheMask] = OpEntry{Tag, A, B, Result};
  }

  template <typename UnaryFn> Ref map1Rec(Ref A, UnaryFn &Fn, uint64_t Tag) {
    Ref Cached;
    if (cacheLookup(Tag, A, LeafVar, Cached))
      return Cached;
    Ref Result;
    if (isLeaf(A)) {
      Result = leaf(Fn(leafPayload(A)));
    } else {
      const Node N = Nodes[A];
      Ref Lo = map1Rec(N.Lo, Fn, Tag);
      Ref Hi = map1Rec(N.Hi, Fn, Tag);
      Result = mkNode(N.Var, Lo, Hi);
    }
    cacheInsert(Tag, A, LeafVar, Result);
    return Result;
  }

  template <typename BinaryFn>
  Ref apply2Rec(Ref A, Ref B, BinaryFn &Fn, uint64_t Tag) {
    Ref Cached;
    if (cacheLookup(Tag, A, B, Cached))
      return Cached;
    Ref Result;
    if (isLeaf(A) && isLeaf(B)) {
      Result = leaf(Fn(leafPayload(A), leafPayload(B)));
    } else {
      // Recurse on the topmost variable of either operand.
      uint32_t VarA = Nodes[A].Var; // LeafVar sorts below every real var
      uint32_t VarB = Nodes[B].Var;
      uint32_t Var = VarA < VarB ? VarA : VarB;
      Ref ALo = A, AHi = A, BLo = B, BHi = B;
      if (VarA == Var) {
        ALo = Nodes[A].Lo;
        AHi = Nodes[A].Hi;
      }
      if (VarB == Var) {
        BLo = Nodes[B].Lo;
        BHi = Nodes[B].Hi;
      }
      Ref Lo = apply2Rec(ALo, BLo, Fn, Tag);
      Ref Hi = apply2Rec(AHi, BHi, Fn, Tag);
      Result = mkNode(Var, Lo, Hi);
    }
    cacheInsert(Tag, A, B, Result);
    return Result;
  }

  Ref setRec(Ref M, const std::vector<bool> &KeyBits, unsigned Depth,
             const void *Payload);
  Ref iteRec(Ref C, Ref T, Ref E, uint64_t Tag);
};

} // namespace nv

#endif // NV_BDD_MTBDD_H
