//===- Mtbdd.h - Hash-consed multi-terminal BDDs ----------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch multi-terminal BDD package (the paper used CUDD). NV
/// total maps are represented as MTBDDs over the bit-encoding of the key
/// type (Sec. 5.1, Fig. 11): leaves hold interned values (opaque pointers
/// here), internal nodes test one key bit. Nodes are hash-consed, so
/// structural equality is pointer (Ref) equality, and apply/map results are
/// memoized so each operation runs once per *distinct* leaf (or leaf pair).
///
/// Variable order: bit 0 is the most significant key bit and sits at the
/// top of the diagram, matching Fig. 11.
///
/// Hot-path representation choices (this file is the kernel every analysis
/// shard runs):
///  - map1/apply2 are templates dispatched on the callback's static type,
///    so per-node visits cost a direct (usually inlined) call instead of a
///    std::function virtual dispatch;
///  - the operation cache is a CUDD-style fixed-size direct-mapped array:
///    lookups are one probe, inserts overwrite (lossy). Losing an entry
///    only costs a recomputation, never correctness;
///  - the unique (hash-consing) tables are open-addressed, power-of-two
///    sized, linear-probe arrays of Refs: the key (Var, Lo, Hi) or leaf
///    payload is read back from the node store, so a probe touches one
///    cache line of slots plus the candidate node — no bucket chains. The
///    tables never hold tombstones: growth and garbage collection rebuild
///    them wholesale.
///
/// Memory management: nodes are reclaimed by an explicit mark-and-sweep
/// collector. Roots are (a) pinned Refs (`pin`/`unpin`, or a scoped
/// `RootSet`), (b) the canonical true/false leaves, and (c) whatever
/// registered `GcRootProvider`s report (the evaluation context reports its
/// predicate cache and pinned values; the simulator reports its label and
/// received-route tables). Leaf payloads may themselves reference diagrams
/// (dict-of-dict values); a registered payload tracer surfaces those inner
/// roots during marking. The sweep compacts the node store in place
/// preserving relative Ref order, rebuilds the unique tables, and hands
/// every provider the old-Ref -> new-Ref remap table.
///
/// Collections run only at explicit safe points — `collectGarbage()`,
/// `reset()`, or `maybeCollectAtSafePoint()` (which triggers once node
/// growth since the last collection exceeds the watermark). map1/apply2
/// never collect internally, so callers may hold raw Refs across any
/// sequence of operations between safe points.
///
/// A BddManager is single-threaded by design: parallel analyses give each
/// worker its own manager arena (see support/ThreadPool.h) so hash-consing
/// needs no locks. Concurrent *reads* (get, forEachCube) of a manager that
/// no thread is mutating are safe.
///
//===----------------------------------------------------------------------===//

#ifndef NV_BDD_MTBDD_H
#define NV_BDD_MTBDD_H

#include "support/Governor.h"

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace nv {

/// Owns all MTBDD nodes, the unique (hash-consing) tables and the
/// operation caches. Leaves carry opaque `const void *` payloads; callers
/// must intern payloads so that payload equality is pointer equality.
class BddManager {
public:
  using Ref = uint32_t;
  static constexpr uint32_t LeafVar = 0xFFFFFFFFu;
  /// Sentinel for "no node": empty unique-table slots, remap entries of
  /// collected nodes. Never a valid node index.
  static constexpr Ref InvalidRef = 0xFFFFFFFFu;

  /// Default number of direct-mapped operation-cache slots (rounded up to
  /// a power of two). 2^17 entries * 24 bytes = 3 MiB per manager arena.
  static constexpr size_t DefaultOpCacheSlots = size_t(1) << 17;

  /// Default GC watermark: collect once this many nodes have been
  /// allocated since the last collection. Sized so that the benchmark
  /// networks never trigger it mid-run (GC cost there is paid only at the
  /// explicit reset() between scenarios) while production-scale runs stay
  /// bounded. Overridable via NV_GC_WATERMARK (0 disables the trigger).
  static constexpr size_t DefaultGcWatermark = size_t(1) << 22;

  struct Node {
    uint32_t Var;          ///< Bit index tested, or LeafVar for leaves.
    Ref Lo = 0;            ///< Subtree when the bit is 0 (dashed edge).
    Ref Hi = 0;            ///< Subtree when the bit is 1 (solid edge).
    const void *Leaf = nullptr; ///< Leaf payload (LeafVar nodes only).
  };

  /// \p OpCacheSlots sizes the direct-mapped operation cache (rounded up
  /// to a power of two; tiny values are useful to stress eviction in
  /// tests).
  explicit BddManager(size_t OpCacheSlots = DefaultOpCacheSlots);

  /// Returns the canonical leaf holding \p Payload.
  Ref leaf(const void *Payload);

  /// Returns the canonical internal node (Var, Lo, Hi), applying the
  /// standard reduction Lo == Hi ==> Lo.
  Ref mkNode(uint32_t Var, Ref Lo, Ref Hi);

  bool isLeaf(Ref R) const { return Nodes[R].Var == LeafVar; }
  const void *leafPayload(Ref R) const { return Nodes[R].Leaf; }
  const Node &node(Ref R) const { return Nodes[R]; }

  /// Total number of live nodes in the manager.
  size_t numNodes() const { return Nodes.size(); }

  /// Allocates a fresh tag for memoizing a semantic operation. Operations
  /// keyed by the same tag must be the same mathematical function.
  uint64_t freshOpTag() { return NextOpTag++; }

  /// Applies \p Fn (any callable `const void *(const void *)`) to every
  /// leaf. \p Tag memoizes across calls (pass the same tag for the same
  /// Fn to share work between invocations). Template dispatch: the
  /// callback is invoked directly per distinct node, with no
  /// std::function indirection.
  template <typename UnaryFn> Ref map1(Ref A, UnaryFn &&Fn, uint64_t Tag) {
    return map1Rec(A, Fn, Tag);
  }

  /// Shannon-aligned binary apply: recurses over both diagrams and calls
  /// \p Fn (any callable `const void *(const void *, const void *)`) once
  /// per distinct pair of leaves. This single primitive implements NV's
  /// combine (Fn = merge) and mapIte (A = predicate diagram with boolean
  /// payloads, Fn dispatches on the predicate leaf).
  template <typename BinaryFn>
  Ref apply2(Ref A, Ref B, BinaryFn &&Fn, uint64_t Tag) {
    return apply2Rec(A, B, Fn, Tag);
  }

  /// Follows the path \p KeyBits (KeyBits[i] = value of bit i) to a leaf.
  /// Bits beyond the diagram's depth are ignored (the diagram is total).
  const void *get(Ref M, const std::vector<bool> &KeyBits) const;

  /// Returns the diagram equal to \p M except that the single key at
  /// \p KeyBits maps to \p Payload. \p NumBits is the key type's width
  /// (KeyBits.size() == NumBits).
  Ref set(Ref M, const std::vector<bool> &KeyBits, const void *Payload);

  //===--------------------------------------------------------------------===//
  // Boolean diagrams (predicates over keys)
  //===--------------------------------------------------------------------===//
  //
  // Predicates are ordinary MTBDDs whose payloads are the two canonical
  // pointers passed to setBoolPayloads (typically interned true/false
  // values). The boolean operations below are memoized internally.

  /// Registers the canonical payloads used by boolean diagrams.
  void setBoolPayloads(const void *TruePayload, const void *FalsePayload);

  Ref trueBdd() const { return TrueRef; }
  Ref falseBdd() const { return FalseRef; }
  bool isTrueLeaf(Ref R) const {
    return isLeaf(R) && leafPayload(R) == TruePayload;
  }

  /// Diagram testing a single bit: bit ? true : false.
  Ref bitVar(uint32_t Var);

  Ref bddNot(Ref A);
  Ref bddAnd(Ref A, Ref B);
  Ref bddOr(Ref A, Ref B);
  Ref bddXor(Ref A, Ref B);
  Ref bddXnor(Ref A, Ref B) { return bddNot(bddXor(A, B)); }
  /// if C then T else E, all boolean diagrams.
  Ref bddIte(Ref C, Ref T, Ref E);

  /// Per-bit merge of arbitrary MTBDDs: picks T's leaf where C holds and
  /// E's leaf elsewhere. C must be a boolean diagram.
  Ref mtbddIte(Ref C, Ref T, Ref E);

  /// True when the boolean diagram is satisfiable (not constant-false).
  bool satisfiable(Ref A) const { return A != FalseRef; }

  //===--------------------------------------------------------------------===//
  // Garbage collection
  //===--------------------------------------------------------------------===//

  /// Pins \p R as a GC root (reference-counted; unpin once per pin).
  void pin(Ref R) { ++Pins[R]; }
  void unpin(Ref R);

  /// A scoped set of pinned roots. Refs added survive collection and are
  /// rewritten in place when a collection remaps the node store, so the
  /// set stays valid across GC; everything is released on destruction.
  class RootSet {
  public:
    explicit RootSet(BddManager &M);
    ~RootSet();
    RootSet(const RootSet &) = delete;
    RootSet &operator=(const RootSet &) = delete;

    void add(Ref R) { Refs.push_back(R); }
    void clear() { Refs.clear(); }
    const std::vector<Ref> &refs() const { return Refs; }
    Ref operator[](size_t I) const { return Refs[I]; }
    size_t size() const { return Refs.size(); }

  private:
    friend class BddManager;
    BddManager &Mgr;
    std::vector<Ref> Refs;
  };

  /// External holders of Refs (caches, label tables) participate in GC
  /// through this interface: they contribute roots before marking and are
  /// told how Refs moved after the sweep.
  class GcRootProvider {
  public:
    virtual ~GcRootProvider() = default;
    /// Called once per collection before any marking (reset per-GC state).
    virtual void gcBegin() {}
    /// Appends every Ref the provider needs kept alive.
    virtual void appendRoots(std::vector<Ref> &Out) = 0;
    /// Called after the sweep: Remap[old] is the new Ref of a surviving
    /// node, or InvalidRef for a collected one. Roots always survive.
    virtual void notifyRemap(const std::vector<Ref> &Remap) { (void)Remap; }
  };

  void addRootProvider(GcRootProvider *P) { Providers.push_back(P); }
  void removeRootProvider(GcRootProvider *P);

  /// Leaf payloads may themselves reference diagrams in this manager
  /// (dict-of-dict values). The tracer is invoked for every marked leaf
  /// payload and appends any inner roots it finds.
  using PayloadTracerFn = void (*)(void *Cookie, const void *Payload,
                                   std::vector<Ref> &Out);
  void setPayloadTracer(PayloadTracerFn Fn, void *Cookie) {
    Tracer = Fn;
    TracerCookie = Cookie;
  }

  /// Mark-and-sweep: keeps everything reachable from the roots, compacts
  /// the node store (preserving relative Ref order), rebuilds the unique
  /// tables, drops the operation cache, and notifies every provider of the
  /// remap. Returns the number of nodes reclaimed. Callers must not hold
  /// un-rooted Refs across this call.
  size_t collectGarbage();

  /// Collects iff the watermark is enabled and node growth since the last
  /// collection exceeds it. Call only at safe points (no un-rooted Refs
  /// live). Returns true when a collection ran.
  bool maybeCollectAtSafePoint();

  /// Safe point between scenarios: drops the operation cache and collects
  /// back down to the pinned/provider roots.
  void reset();

  /// Allocation budget between collections; 0 disables the watermark
  /// trigger (explicit collectGarbage/reset still work). 1 collects at
  /// every safe point (stress mode).
  void setGcWatermark(size_t W) { GcWatermark = W; }
  size_t gcWatermark() const { return GcWatermark; }

  struct GcStats {
    uint64_t Collections = 0;    ///< collectGarbage runs.
    uint64_t NodesReclaimed = 0; ///< Total nodes swept across all runs.
    size_t PeakNodes = 0;        ///< High-watermark of numNodes().
    size_t FloorAfterLastGc = 0; ///< numNodes() after the last collection.
  };
  const GcStats &gcStats() const { return Gc; }

  //===--------------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------------===//

  /// Number of distinct leaves reachable from \p R.
  size_t numDistinctLeaves(Ref R) const;

  /// Number of nodes (internal + leaf) reachable from \p R.
  size_t numReachableNodes(Ref R) const;

  /// Enumerates all complete key assignments over \p NumBits bits together
  /// with their leaf payloads. Exponential in NumBits; testing/debugging
  /// only.
  void forEachKey(Ref R, unsigned NumBits,
                  const std::function<void(const std::vector<bool> &,
                                           const void *)> &Fn) const;

  /// Visits each maximal uniform cube as (bit assignment template, leaf):
  /// entries of the template are 0, 1 or -1 (don't care). Linear in the
  /// diagram size.
  void forEachCube(Ref R, unsigned NumBits,
                   const std::function<void(const std::vector<int8_t> &,
                                            const void *)> &Fn) const;

  /// Drops all operation caches (unique tables are kept).
  void clearCaches();

  /// Approximate bytes used by nodes and tables.
  size_t memoryBytes() const;

  /// Cache statistics (for the cache ablation bench).
  uint64_t cacheHits() const { return CacheHits; }
  uint64_t cacheMisses() const { return CacheMisses; }

  /// Number of direct-mapped operation-cache slots.
  size_t opCacheSlots() const { return OpCache.size(); }

  /// Disables operation caching (for the cache ablation bench).
  void setCachingEnabled(bool On) { CachingEnabled = On; }

  /// Unique/leaf-table statistics: lookups, hits (existing node returned),
  /// and collision probe steps beyond the home slot.
  uint64_t uniqueLookups() const { return UniqueLookups; }
  uint64_t uniqueHits() const { return UniqueHits; }
  uint64_t uniqueProbes() const { return UniqueProbes; }
  size_t uniqueCapacity() const { return UniqueSlots.size(); }
  size_t leafCapacity() const { return LeafSlots.size(); }

private:
  /// One direct-mapped operation-cache slot. Tag == 0 marks an empty slot
  /// (real tags start at 1; the reserved boolean tags are huge).
  struct OpEntry {
    uint64_t Tag = 0;
    Ref A = 0, B = 0;
    Ref Result = 0;
  };

  std::vector<Node> Nodes;
  /// Open-addressed hash-consing tables: slots hold Refs into Nodes (the
  /// key — (Var, Lo, Hi) or leaf payload — is read back from the node).
  /// InvalidRef marks an empty slot. Power-of-two sized, linear probing,
  /// grown by wholesale rebuild at 3/4 load; no tombstones ever.
  std::vector<Ref> UniqueSlots;
  size_t UniqueMask = 0;
  size_t UniqueCount = 0; ///< Internal nodes in UniqueSlots.
  std::vector<Ref> LeafSlots;
  size_t LeafMask = 0;
  size_t LeafCount = 0; ///< Leaves in LeafSlots.

  std::vector<OpEntry> OpCache; ///< Power-of-two sized, lossy.
  size_t OpCacheMask = 0;

  const void *TruePayload = nullptr;
  const void *FalsePayload = nullptr;
  Ref TrueRef = 0;
  Ref FalseRef = 0;
  uint64_t NextOpTag = 1;

  // GC state.
  std::unordered_map<Ref, uint32_t> Pins; ///< Ref -> pin count.
  std::vector<RootSet *> RootSets;
  std::vector<GcRootProvider *> Providers;
  PayloadTracerFn Tracer = nullptr;
  void *TracerCookie = nullptr;
  size_t GcWatermark = DefaultGcWatermark;
  GcStats Gc;

  // Reserved internal tags for boolean operations.
  enum : uint64_t {
    TagNot = 0xF000000000000001ull,
    TagAnd = 0xF000000000000002ull,
    TagOr = 0xF000000000000003ull,
    TagXor = 0xF000000000000004ull,
    TagIte = 0xF000000000000005ull, // combined pairwise
  };

  bool CachingEnabled = true;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t UniqueLookups = 0;
  uint64_t UniqueHits = 0;
  uint64_t UniqueProbes = 0;

  static size_t hashTriple(uint32_t Var, Ref Lo, Ref Hi) {
    uint64_t H = Var;
    H = H * 0x9E3779B97F4A7C15ull + Lo;
    H = H * 0x9E3779B97F4A7C15ull + Hi;
    return static_cast<size_t>(H ^ (H >> 32));
  }
  static size_t hashPayload(const void *P) {
    uint64_t H = reinterpret_cast<uint64_t>(P) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  void growUnique();
  void growLeaf();
  /// Rebuilds both tables from the node store (after a sweep).
  void rebuildTables();

  static size_t opHash(uint64_t Tag, Ref A, Ref B) {
    uint64_t H = Tag;
    H = H * 0x9E3779B97F4A7C15ull + A;
    H = H * 0x9E3779B97F4A7C15ull + B;
    return static_cast<size_t>(H ^ (H >> 32));
  }

  bool cacheLookup(uint64_t Tag, Ref A, Ref B, Ref &Out) {
    if (!CachingEnabled) {
      ++CacheMisses;
      return false;
    }
    const OpEntry &E = OpCache[opHash(Tag, A, B) & OpCacheMask];
    if (E.Tag == Tag && E.A == A && E.B == B) {
      ++CacheHits;
      Out = E.Result;
      return true;
    }
    ++CacheMisses;
    return false;
  }

  void cacheInsert(uint64_t Tag, Ref A, Ref B, Ref Result) {
    if (CachingEnabled)
      OpCache[opHash(Tag, A, B) & OpCacheMask] = OpEntry{Tag, A, B, Result};
  }

  /// Safe point on the operation-cache miss path (and at table growth):
  /// checks the governed node budget / heap watermark / deadline /
  /// cancellation and fault injection. Sits before any recursion or table
  /// mutation, so a throw leaves the manager fully consistent. Ungoverned
  /// runs pay one flag test.
  void pollSafePoint(GovSite Site) const {
    if (Governor::active())
      Governor::pollSafePoint(Site, Nodes.size(), memoryBytes());
  }

  template <typename UnaryFn> Ref map1Rec(Ref A, UnaryFn &Fn, uint64_t Tag) {
    Ref Cached;
    if (cacheLookup(Tag, A, LeafVar, Cached))
      return Cached;
    pollSafePoint(GovSite::ApplyCacheMiss);
    Ref Result;
    if (isLeaf(A)) {
      Result = leaf(Fn(leafPayload(A)));
    } else {
      const Node N = Nodes[A];
      Ref Lo = map1Rec(N.Lo, Fn, Tag);
      Ref Hi = map1Rec(N.Hi, Fn, Tag);
      Result = mkNode(N.Var, Lo, Hi);
    }
    cacheInsert(Tag, A, LeafVar, Result);
    return Result;
  }

  template <typename BinaryFn>
  Ref apply2Rec(Ref A, Ref B, BinaryFn &Fn, uint64_t Tag) {
    Ref Cached;
    if (cacheLookup(Tag, A, B, Cached))
      return Cached;
    pollSafePoint(GovSite::ApplyCacheMiss);
    Ref Result;
    if (isLeaf(A) && isLeaf(B)) {
      Result = leaf(Fn(leafPayload(A), leafPayload(B)));
    } else {
      // Recurse on the topmost variable of either operand.
      uint32_t VarA = Nodes[A].Var; // LeafVar sorts below every real var
      uint32_t VarB = Nodes[B].Var;
      uint32_t Var = VarA < VarB ? VarA : VarB;
      Ref ALo = A, AHi = A, BLo = B, BHi = B;
      if (VarA == Var) {
        ALo = Nodes[A].Lo;
        AHi = Nodes[A].Hi;
      }
      if (VarB == Var) {
        BLo = Nodes[B].Lo;
        BHi = Nodes[B].Hi;
      }
      Ref Lo = apply2Rec(ALo, BLo, Fn, Tag);
      Ref Hi = apply2Rec(AHi, BHi, Fn, Tag);
      Result = mkNode(Var, Lo, Hi);
    }
    cacheInsert(Tag, A, B, Result);
    return Result;
  }

  Ref setRec(Ref M, const std::vector<bool> &KeyBits, unsigned Depth,
             const void *Payload);
  Ref iteRec(Ref C, Ref T, Ref E, uint64_t Tag);
};

} // namespace nv

#endif // NV_BDD_MTBDD_H
