//===- Mtbdd.h - Hash-consed multi-terminal BDDs ----------------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A from-scratch multi-terminal BDD package (the paper used CUDD). NV
/// total maps are represented as MTBDDs over the bit-encoding of the key
/// type (Sec. 5.1, Fig. 11): leaves hold interned values (opaque pointers
/// here), internal nodes test one key bit. Nodes are hash-consed, so
/// structural equality is pointer (Ref) equality, and apply/map results are
/// memoized so each operation runs once per *distinct* leaf (or leaf pair).
///
/// Variable order: bit 0 is the most significant key bit and sits at the
/// top of the diagram, matching Fig. 11.
///
//===----------------------------------------------------------------------===//

#ifndef NV_BDD_MTBDD_H
#define NV_BDD_MTBDD_H

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

namespace nv {

/// Owns all MTBDD nodes, the unique (hash-consing) tables and the
/// operation caches. Leaves carry opaque `const void *` payloads; callers
/// must intern payloads so that payload equality is pointer equality.
///
/// There is no garbage collection: nodes live as long as the manager. The
/// simulator allocates one manager per analysis run.
class BddManager {
public:
  using Ref = uint32_t;
  static constexpr uint32_t LeafVar = 0xFFFFFFFFu;

  struct Node {
    uint32_t Var;          ///< Bit index tested, or LeafVar for leaves.
    Ref Lo = 0;            ///< Subtree when the bit is 0 (dashed edge).
    Ref Hi = 0;            ///< Subtree when the bit is 1 (solid edge).
    const void *Leaf = nullptr; ///< Leaf payload (LeafVar nodes only).
  };

  BddManager();

  /// Returns the canonical leaf holding \p Payload.
  Ref leaf(const void *Payload);

  /// Returns the canonical internal node (Var, Lo, Hi), applying the
  /// standard reduction Lo == Hi ==> Lo.
  Ref mkNode(uint32_t Var, Ref Lo, Ref Hi);

  bool isLeaf(Ref R) const { return Nodes[R].Var == LeafVar; }
  const void *leafPayload(Ref R) const { return Nodes[R].Leaf; }
  const Node &node(Ref R) const { return Nodes[R]; }

  /// Total number of live nodes in the manager.
  size_t numNodes() const { return Nodes.size(); }

  /// Allocates a fresh tag for memoizing a semantic operation. Operations
  /// keyed by the same tag must be the same mathematical function.
  uint64_t freshOpTag() { return NextOpTag++; }

  using UnaryFn = std::function<const void *(const void *)>;
  using BinaryFn = std::function<const void *(const void *, const void *)>;

  /// Applies \p Fn to every leaf. \p Tag memoizes across calls (pass the
  /// same tag for the same Fn to share work between invocations).
  Ref map1(Ref A, const UnaryFn &Fn, uint64_t Tag);

  /// Shannon-aligned binary apply: recurses over both diagrams and calls
  /// \p Fn once per distinct pair of leaves. This single primitive
  /// implements NV's combine (Fn = merge) and mapIte (A = predicate
  /// diagram with boolean payloads, Fn dispatches on the predicate leaf).
  Ref apply2(Ref A, Ref B, const BinaryFn &Fn, uint64_t Tag);

  /// Follows the path \p KeyBits (KeyBits[i] = value of bit i) to a leaf.
  /// Bits beyond the diagram's depth are ignored (the diagram is total).
  const void *get(Ref M, const std::vector<bool> &KeyBits) const;

  /// Returns the diagram equal to \p M except that the single key at
  /// \p KeyBits maps to \p Payload. \p NumBits is the key type's width
  /// (KeyBits.size() == NumBits).
  Ref set(Ref M, const std::vector<bool> &KeyBits, const void *Payload);

  //===--------------------------------------------------------------------===//
  // Boolean diagrams (predicates over keys)
  //===--------------------------------------------------------------------===//
  //
  // Predicates are ordinary MTBDDs whose payloads are the two canonical
  // pointers passed to setBoolPayloads (typically interned true/false
  // values). The boolean operations below are memoized internally.

  /// Registers the canonical payloads used by boolean diagrams.
  void setBoolPayloads(const void *TruePayload, const void *FalsePayload);

  Ref trueBdd() const { return TrueRef; }
  Ref falseBdd() const { return FalseRef; }
  bool isTrueLeaf(Ref R) const {
    return isLeaf(R) && leafPayload(R) == TruePayload;
  }

  /// Diagram testing a single bit: bit ? true : false.
  Ref bitVar(uint32_t Var);

  Ref bddNot(Ref A);
  Ref bddAnd(Ref A, Ref B);
  Ref bddOr(Ref A, Ref B);
  Ref bddXor(Ref A, Ref B);
  Ref bddXnor(Ref A, Ref B) { return bddNot(bddXor(A, B)); }
  /// if C then T else E, all boolean diagrams.
  Ref bddIte(Ref C, Ref T, Ref E);

  /// Per-bit merge of arbitrary MTBDDs: picks T's leaf where C holds and
  /// E's leaf elsewhere. C must be a boolean diagram.
  Ref mtbddIte(Ref C, Ref T, Ref E);

  /// True when the boolean diagram is satisfiable (not constant-false).
  bool satisfiable(Ref A) const { return A != FalseRef; }

  //===--------------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------------===//

  /// Number of distinct leaves reachable from \p R.
  size_t numDistinctLeaves(Ref R) const;

  /// Number of nodes (internal + leaf) reachable from \p R.
  size_t numReachableNodes(Ref R) const;

  /// Enumerates all complete key assignments over \p NumBits bits together
  /// with their leaf payloads. Exponential in NumBits; testing/debugging
  /// only.
  void forEachKey(Ref R, unsigned NumBits,
                  const std::function<void(const std::vector<bool> &,
                                           const void *)> &Fn) const;

  /// Visits each maximal uniform cube as (bit assignment template, leaf):
  /// entries of the template are 0, 1 or -1 (don't care). Linear in the
  /// diagram size.
  void forEachCube(Ref R, unsigned NumBits,
                   const std::function<void(const std::vector<int8_t> &,
                                            const void *)> &Fn) const;

  /// Drops all operation caches (unique tables are kept).
  void clearCaches();

  /// Approximate bytes used by nodes and tables.
  size_t memoryBytes() const;

  /// Cache statistics (for the cache ablation bench).
  uint64_t cacheHits() const { return CacheHits; }
  uint64_t cacheMisses() const { return CacheMisses; }

  /// Disables operation caching (for the cache ablation bench).
  void setCachingEnabled(bool On) { CachingEnabled = On; }

private:
  struct NodeKey {
    uint32_t Var;
    Ref Lo, Hi;
    bool operator==(const NodeKey &O) const {
      return Var == O.Var && Lo == O.Lo && Hi == O.Hi;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey &K) const {
      uint64_t H = K.Var;
      H = H * 0x9E3779B97F4A7C15ull + K.Lo;
      H = H * 0x9E3779B97F4A7C15ull + K.Hi;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };
  struct OpKey {
    uint64_t Tag;
    Ref A, B;
    bool operator==(const OpKey &O) const {
      return Tag == O.Tag && A == O.A && B == O.B;
    }
  };
  struct OpKeyHash {
    size_t operator()(const OpKey &K) const {
      uint64_t H = K.Tag;
      H = H * 0x9E3779B97F4A7C15ull + K.A;
      H = H * 0x9E3779B97F4A7C15ull + K.B;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

  std::vector<Node> Nodes;
  std::unordered_map<NodeKey, Ref, NodeKeyHash> Unique;
  std::unordered_map<const void *, Ref> LeafTable;
  std::unordered_map<OpKey, Ref, OpKeyHash> OpCache;

  const void *TruePayload = nullptr;
  const void *FalsePayload = nullptr;
  Ref TrueRef = 0;
  Ref FalseRef = 0;
  uint64_t NextOpTag = 1;

  // Reserved internal tags for boolean operations.
  enum : uint64_t {
    TagNot = 0xF000000000000001ull,
    TagAnd = 0xF000000000000002ull,
    TagOr = 0xF000000000000003ull,
    TagXor = 0xF000000000000004ull,
    TagIte = 0xF000000000000005ull, // combined pairwise
  };

  bool CachingEnabled = true;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;

  bool cacheLookup(uint64_t Tag, Ref A, Ref B, Ref &Out);
  void cacheInsert(uint64_t Tag, Ref A, Ref B, Ref Result);

  Ref setRec(Ref M, const std::vector<bool> &KeyBits, unsigned Depth,
             const void *Payload);
  Ref iteRec(Ref C, Ref T, Ref E, uint64_t Tag);
};

} // namespace nv

#endif // NV_BDD_MTBDD_H
