//===- Mtbdd.cpp - Hash-consed multi-terminal BDDs --------------------------===//

#include <cassert>
#include "bdd/Mtbdd.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

using namespace nv;

static size_t watermarkFromEnv() {
  if (const char *E = std::getenv("NV_GC_WATERMARK"))
    return static_cast<size_t>(std::strtoull(E, nullptr, 10));
  return BddManager::DefaultGcWatermark;
}

BddManager::BddManager(size_t OpCacheSlots) {
  Nodes.reserve(1 << 12);
  size_t Slots = 16;
  while (Slots < OpCacheSlots)
    Slots <<= 1;
  OpCache.assign(Slots, OpEntry{});
  OpCacheMask = Slots - 1;
  UniqueSlots.assign(size_t(1) << 13, InvalidRef);
  UniqueMask = UniqueSlots.size() - 1;
  LeafSlots.assign(size_t(1) << 10, InvalidRef);
  LeafMask = LeafSlots.size() - 1;
  GcWatermark = watermarkFromEnv();
}

//===----------------------------------------------------------------------===//
// Open-addressed hash-consing tables
//===----------------------------------------------------------------------===//

void BddManager::growUnique() {
  // Safe point before the table is touched: a throw here leaves the old
  // table intact and no node allocated (callers grow before inserting).
  pollSafePoint(GovSite::TableGrow);
  std::vector<Ref> Old = std::move(UniqueSlots);
  UniqueSlots.assign(Old.size() * 2, InvalidRef);
  UniqueMask = UniqueSlots.size() - 1;
  for (Ref S : Old) {
    if (S == InvalidRef)
      continue;
    const Node &N = Nodes[S];
    size_t H = hashTriple(N.Var, N.Lo, N.Hi) & UniqueMask;
    while (UniqueSlots[H] != InvalidRef)
      H = (H + 1) & UniqueMask;
    UniqueSlots[H] = S;
  }
}

void BddManager::growLeaf() {
  pollSafePoint(GovSite::TableGrow);
  std::vector<Ref> Old = std::move(LeafSlots);
  LeafSlots.assign(Old.size() * 2, InvalidRef);
  LeafMask = LeafSlots.size() - 1;
  for (Ref S : Old) {
    if (S == InvalidRef)
      continue;
    size_t H = hashPayload(Nodes[S].Leaf) & LeafMask;
    while (LeafSlots[H] != InvalidRef)
      H = (H + 1) & LeafMask;
    LeafSlots[H] = S;
  }
}

void BddManager::rebuildTables() {
  size_t UniqueCap = UniqueSlots.size();
  while (UniqueCap > (size_t(1) << 13) && UniqueCount * 4 < UniqueCap)
    UniqueCap >>= 1; // shrink after big sweeps, keeping load under 1/2
  size_t LeafCap = LeafSlots.size();
  while (LeafCap > (size_t(1) << 10) && LeafCount * 4 < LeafCap)
    LeafCap >>= 1;
  UniqueSlots.assign(UniqueCap, InvalidRef);
  UniqueMask = UniqueCap - 1;
  LeafSlots.assign(LeafCap, InvalidRef);
  LeafMask = LeafCap - 1;
  for (Ref R = 0; R < Nodes.size(); ++R) {
    const Node &N = Nodes[R];
    if (N.Var == LeafVar) {
      size_t H = hashPayload(N.Leaf) & LeafMask;
      while (LeafSlots[H] != InvalidRef)
        H = (H + 1) & LeafMask;
      LeafSlots[H] = R;
    } else {
      size_t H = hashTriple(N.Var, N.Lo, N.Hi) & UniqueMask;
      while (UniqueSlots[H] != InvalidRef)
        H = (H + 1) & UniqueMask;
      UniqueSlots[H] = R;
    }
  }
}

BddManager::Ref BddManager::leaf(const void *Payload) {
  if ((LeafCount + 1) * 4 > LeafSlots.size() * 3)
    growLeaf();
  ++UniqueLookups;
  size_t H = hashPayload(Payload) & LeafMask;
  while (true) {
    Ref S = LeafSlots[H];
    if (S == InvalidRef)
      break;
    if (Nodes[S].Leaf == Payload) {
      ++UniqueHits;
      return S;
    }
    ++UniqueProbes;
    H = (H + 1) & LeafMask;
  }
  Ref R = static_cast<Ref>(Nodes.size());
  Nodes.push_back(Node{LeafVar, 0, 0, Payload});
  LeafSlots[H] = R;
  ++LeafCount;
  if (Nodes.size() > Gc.PeakNodes)
    Gc.PeakNodes = Nodes.size();
  return R;
}

BddManager::Ref BddManager::mkNode(uint32_t Var, Ref Lo, Ref Hi) {
  if (Lo == Hi)
    return Lo;
  assert(Var < LeafVar && "internal nodes must test a real bit");
  assert((isLeaf(Lo) || Nodes[Lo].Var > Var) && "variable order violated");
  assert((isLeaf(Hi) || Nodes[Hi].Var > Var) && "variable order violated");
  if ((UniqueCount + 1) * 4 > UniqueSlots.size() * 3)
    growUnique();
  ++UniqueLookups;
  size_t H = hashTriple(Var, Lo, Hi) & UniqueMask;
  while (true) {
    Ref S = UniqueSlots[H];
    if (S == InvalidRef)
      break;
    const Node &N = Nodes[S];
    if (N.Var == Var && N.Lo == Lo && N.Hi == Hi) {
      ++UniqueHits;
      return S;
    }
    ++UniqueProbes;
    H = (H + 1) & UniqueMask;
  }
  Ref R = static_cast<Ref>(Nodes.size());
  Nodes.push_back(Node{Var, Lo, Hi, nullptr});
  UniqueSlots[H] = R;
  ++UniqueCount;
  if (Nodes.size() > Gc.PeakNodes)
    Gc.PeakNodes = Nodes.size();
  return R;
}

const void *BddManager::get(Ref M, const std::vector<bool> &KeyBits) const {
  Ref R = M;
  while (!isLeaf(R)) {
    const Node &N = Nodes[R];
    assert(N.Var < KeyBits.size() && "key narrower than the diagram");
    R = KeyBits[N.Var] ? N.Hi : N.Lo;
  }
  return leafPayload(R);
}

BddManager::Ref BddManager::setRec(Ref M, const std::vector<bool> &KeyBits,
                                   unsigned Depth, const void *Payload) {
  if (Depth == KeyBits.size()) {
    assert(isLeaf(M) && "diagram deeper than the key width");
    return leaf(Payload);
  }
  Ref Lo = M, Hi = M;
  uint32_t Var = Depth;
  if (!isLeaf(M) && Nodes[M].Var == Depth) {
    Lo = Nodes[M].Lo;
    Hi = Nodes[M].Hi;
  }
  if (KeyBits[Depth])
    return mkNode(Var, Lo, setRec(Hi, KeyBits, Depth + 1, Payload));
  return mkNode(Var, setRec(Lo, KeyBits, Depth + 1, Payload), Hi);
}

BddManager::Ref BddManager::set(Ref M, const std::vector<bool> &KeyBits,
                                const void *Payload) {
  return setRec(M, KeyBits, 0, Payload);
}

//===----------------------------------------------------------------------===//
// Garbage collection
//===----------------------------------------------------------------------===//

BddManager::RootSet::RootSet(BddManager &M) : Mgr(M) {
  Mgr.RootSets.push_back(this);
}

BddManager::RootSet::~RootSet() {
  auto &RS = Mgr.RootSets;
  RS.erase(std::find(RS.begin(), RS.end(), this));
}

void BddManager::unpin(Ref R) {
  auto It = Pins.find(R);
  assert(It != Pins.end() && "unpin without a matching pin");
  if (--It->second == 0)
    Pins.erase(It);
}

void BddManager::removeRootProvider(GcRootProvider *P) {
  auto It = std::find(Providers.begin(), Providers.end(), P);
  if (It != Providers.end())
    Providers.erase(It);
}

size_t BddManager::collectGarbage() {
  const size_t Before = Nodes.size();

  // Gather roots. Providers run in registration order; the evaluation
  // context (registered first) resets its per-GC visited set in gcBegin.
  for (GcRootProvider *P : Providers)
    P->gcBegin();
  std::vector<Ref> Work;
  if (TruePayload) {
    Work.push_back(TrueRef);
    Work.push_back(FalseRef);
  }
  for (const auto &[R, Count] : Pins)
    Work.push_back(R);
  for (const RootSet *RS : RootSets)
    Work.insert(Work.end(), RS->Refs.begin(), RS->Refs.end());
  for (GcRootProvider *P : Providers)
    P->appendRoots(Work);

  // Mark. Leaf payloads may reference further diagrams (dict-of-dict):
  // the tracer surfaces those inner roots, which join the work stack.
  std::vector<uint8_t> Marked(Before, 0);
  std::vector<Ref> TracerOut;
  while (!Work.empty()) {
    Ref R = Work.back();
    Work.pop_back();
    assert(R < Before && "root past the node store");
    if (Marked[R])
      continue;
    Marked[R] = 1;
    const Node &N = Nodes[R];
    if (N.Var == LeafVar) {
      if (Tracer) {
        TracerOut.clear();
        Tracer(TracerCookie, N.Leaf, TracerOut);
        Work.insert(Work.end(), TracerOut.begin(), TracerOut.end());
      }
    } else {
      Work.push_back(N.Lo);
      Work.push_back(N.Hi);
    }
  }

  // Sweep: in-place order-preserving compaction. Children always precede
  // parents in the store (hash-consing creates bottom-up), so a forward
  // scan can rewrite Lo/Hi through the remap as it goes. Preserving
  // relative Ref order keeps Ref-comparison canonicalization (bddAnd's
  // operand swap) deterministic across collections.
  std::vector<Ref> Remap(Before, InvalidRef);
  size_t Next = 0;
  UniqueCount = 0;
  LeafCount = 0;
  for (size_t I = 0; I < Before; ++I) {
    if (!Marked[I])
      continue;
    Remap[I] = static_cast<Ref>(Next);
    Node N = Nodes[I];
    if (N.Var != LeafVar) {
      N.Lo = Remap[N.Lo];
      N.Hi = Remap[N.Hi];
      assert(N.Lo != InvalidRef && N.Hi != InvalidRef &&
             "marked node with unmarked child");
      ++UniqueCount;
    } else {
      ++LeafCount;
    }
    Nodes[Next++] = N;
  }
  size_t Reclaimed = Before - Next;
  Nodes.resize(Next);

  rebuildTables();

  // Remap every internal Ref holder.
  if (TruePayload) {
    TrueRef = Remap[TrueRef];
    FalseRef = Remap[FalseRef];
  }
  if (!Pins.empty()) {
    std::unordered_map<Ref, uint32_t> NewPins;
    NewPins.reserve(Pins.size());
    for (const auto &[R, Count] : Pins)
      NewPins.emplace(Remap[R], Count);
    Pins = std::move(NewPins);
  }
  for (RootSet *RS : RootSets)
    for (Ref &R : RS->Refs)
      R = Remap[R];

  // The operation cache holds stale Refs on both sides; drop it.
  clearCaches();

  for (GcRootProvider *P : Providers)
    P->notifyRemap(Remap);

  ++Gc.Collections;
  Gc.NodesReclaimed += Reclaimed;
  Gc.FloorAfterLastGc = Nodes.size();
  return Reclaimed;
}

bool BddManager::maybeCollectAtSafePoint() {
  if (GcWatermark == 0 || Nodes.size() < Gc.FloorAfterLastGc + GcWatermark)
    return false;
  collectGarbage();
  return true;
}

void BddManager::reset() {
  collectGarbage();
}

//===----------------------------------------------------------------------===//
// Boolean diagrams
//===----------------------------------------------------------------------===//

void BddManager::setBoolPayloads(const void *TruePayloadIn,
                                 const void *FalsePayloadIn) {
  TruePayload = TruePayloadIn;
  FalsePayload = FalsePayloadIn;
  TrueRef = leaf(TruePayload);
  FalseRef = leaf(FalsePayload);
}

BddManager::Ref BddManager::bitVar(uint32_t Var) {
  assert(TruePayload && "setBoolPayloads must run first");
  return mkNode(Var, FalseRef, TrueRef);
}

BddManager::Ref BddManager::bddNot(Ref A) {
  return map1(
      A,
      [this](const void *P) {
        return P == TruePayload ? FalsePayload : TruePayload;
      },
      TagNot);
}

BddManager::Ref BddManager::bddAnd(Ref A, Ref B) {
  if (A == FalseRef || B == FalseRef)
    return FalseRef;
  if (A == TrueRef)
    return B;
  if (B == TrueRef)
    return A;
  if (A > B)
    std::swap(A, B); // commutative: canonicalize the cache key
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return (X == TruePayload && Y == TruePayload) ? TruePayload
                                                      : FalsePayload;
      },
      TagAnd);
}

BddManager::Ref BddManager::bddOr(Ref A, Ref B) {
  if (A == TrueRef || B == TrueRef)
    return TrueRef;
  if (A == FalseRef)
    return B;
  if (B == FalseRef)
    return A;
  if (A > B)
    std::swap(A, B);
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return (X == TruePayload || Y == TruePayload) ? TruePayload
                                                      : FalsePayload;
      },
      TagOr);
}

BddManager::Ref BddManager::bddXor(Ref A, Ref B) {
  if (A == FalseRef)
    return B;
  if (B == FalseRef)
    return A;
  if (A == B)
    return FalseRef;
  if (A > B)
    std::swap(A, B);
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return ((X == TruePayload) != (Y == TruePayload)) ? TruePayload
                                                          : FalsePayload;
      },
      TagXor);
}

BddManager::Ref BddManager::bddIte(Ref C, Ref T, Ref E) {
  return bddOr(bddAnd(C, T), bddAnd(bddNot(C), E));
}

BddManager::Ref BddManager::iteRec(Ref C, Ref T, Ref E, uint64_t Tag) {
  if (C == TrueRef)
    return T;
  if (C == FalseRef)
    return E;
  if (T == E)
    return T;
  Ref Cached;
  if (cacheLookup(Tag, C, T, Cached))
    return Cached;
  uint32_t Var = LeafVar;
  for (Ref R : {C, T, E})
    if (!isLeaf(R) && Nodes[R].Var < Var)
      Var = Nodes[R].Var;
  assert(Var != LeafVar && "C must be non-constant here");
  auto Branch = [&](Ref R, bool Hi) {
    if (!isLeaf(R) && Nodes[R].Var == Var)
      return Hi ? Nodes[R].Hi : Nodes[R].Lo;
    return R;
  };
  Ref Lo = iteRec(Branch(C, false), Branch(T, false), Branch(E, false), Tag);
  Ref Hi = iteRec(Branch(C, true), Branch(T, true), Branch(E, true), Tag);
  Ref Result = mkNode(Var, Lo, Hi);
  cacheInsert(Tag, C, T, Result);
  return Result;
}

BddManager::Ref BddManager::mtbddIte(Ref C, Ref T, Ref E) {
  // Encode E into the tag so the (Tag, C, T) cache key identifies the
  // ternary operation uniquely.
  uint64_t Tag = 0xE000000000000000ull + E;
  return iteRec(C, T, E, Tag);
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

size_t BddManager::numDistinctLeaves(Ref R) const {
  std::unordered_set<Ref> Seen;
  std::unordered_set<const void *> LeavesSeen;
  std::vector<Ref> Stack{R};
  while (!Stack.empty()) {
    Ref N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (isLeaf(N)) {
      LeavesSeen.insert(leafPayload(N));
      continue;
    }
    Stack.push_back(Nodes[N].Lo);
    Stack.push_back(Nodes[N].Hi);
  }
  return LeavesSeen.size();
}

size_t BddManager::numReachableNodes(Ref R) const {
  std::unordered_set<Ref> Seen;
  std::vector<Ref> Stack{R};
  while (!Stack.empty()) {
    Ref N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (isLeaf(N))
      continue;
    Stack.push_back(Nodes[N].Lo);
    Stack.push_back(Nodes[N].Hi);
  }
  return Seen.size();
}

void BddManager::forEachKey(
    Ref R, unsigned NumBits,
    const std::function<void(const std::vector<bool> &, const void *)> &Fn)
    const {
  std::vector<bool> Bits(NumBits, false);
  uint64_t Total = NumBits >= 64 ? 0 : (uint64_t(1) << NumBits);
  if (NumBits >= 26)
    evalError("forEachKey over " + std::to_string(NumBits) +
              " bits is too large to enumerate");
  for (uint64_t K = 0; K < Total; ++K) {
    for (unsigned I = 0; I < NumBits; ++I)
      Bits[I] = (K >> (NumBits - 1 - I)) & 1; // bit 0 is the MSB
    Fn(Bits, get(R, Bits));
  }
}

void BddManager::forEachCube(
    Ref R, unsigned NumBits,
    const std::function<void(const std::vector<int8_t> &, const void *)> &Fn)
    const {
  std::vector<int8_t> Tmpl(NumBits, -1);
  std::function<void(Ref)> Rec = [&](Ref N) {
    if (isLeaf(N)) {
      Fn(Tmpl, leafPayload(N));
      return;
    }
    uint32_t Var = Nodes[N].Var;
    Tmpl[Var] = 0;
    Rec(Nodes[N].Lo);
    Tmpl[Var] = 1;
    Rec(Nodes[N].Hi);
    Tmpl[Var] = -1;
  };
  Rec(R);
}

void BddManager::clearCaches() {
  std::fill(OpCache.begin(), OpCache.end(), OpEntry{});
}

size_t BddManager::memoryBytes() const {
  return Nodes.capacity() * sizeof(Node) +
         UniqueSlots.size() * sizeof(Ref) + LeafSlots.size() * sizeof(Ref) +
         OpCache.size() * sizeof(OpEntry) +
         Pins.size() * (sizeof(Ref) + sizeof(uint32_t) + 16);
}
