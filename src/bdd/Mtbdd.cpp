//===- Mtbdd.cpp - Hash-consed multi-terminal BDDs --------------------------===//

#include <cassert>
#include "bdd/Mtbdd.h"

#include "support/Fatal.h"

#include <algorithm>
#include <unordered_set>

using namespace nv;

BddManager::BddManager(size_t OpCacheSlots) {
  Nodes.reserve(1 << 12);
  size_t Slots = 16;
  while (Slots < OpCacheSlots)
    Slots <<= 1;
  OpCache.assign(Slots, OpEntry{});
  OpCacheMask = Slots - 1;
}

BddManager::Ref BddManager::leaf(const void *Payload) {
  auto It = LeafTable.find(Payload);
  if (It != LeafTable.end())
    return It->second;
  Ref R = static_cast<Ref>(Nodes.size());
  Nodes.push_back(Node{LeafVar, 0, 0, Payload});
  LeafTable.emplace(Payload, R);
  return R;
}

BddManager::Ref BddManager::mkNode(uint32_t Var, Ref Lo, Ref Hi) {
  if (Lo == Hi)
    return Lo;
  assert(Var < LeafVar && "internal nodes must test a real bit");
  assert((isLeaf(Lo) || Nodes[Lo].Var > Var) && "variable order violated");
  assert((isLeaf(Hi) || Nodes[Hi].Var > Var) && "variable order violated");
  NodeKey Key{Var, Lo, Hi};
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  Ref R = static_cast<Ref>(Nodes.size());
  Nodes.push_back(Node{Var, Lo, Hi, nullptr});
  Unique.emplace(Key, R);
  return R;
}

const void *BddManager::get(Ref M, const std::vector<bool> &KeyBits) const {
  Ref R = M;
  while (!isLeaf(R)) {
    const Node &N = Nodes[R];
    assert(N.Var < KeyBits.size() && "key narrower than the diagram");
    R = KeyBits[N.Var] ? N.Hi : N.Lo;
  }
  return leafPayload(R);
}

BddManager::Ref BddManager::setRec(Ref M, const std::vector<bool> &KeyBits,
                                   unsigned Depth, const void *Payload) {
  if (Depth == KeyBits.size()) {
    assert(isLeaf(M) && "diagram deeper than the key width");
    return leaf(Payload);
  }
  Ref Lo = M, Hi = M;
  uint32_t Var = Depth;
  if (!isLeaf(M) && Nodes[M].Var == Depth) {
    Lo = Nodes[M].Lo;
    Hi = Nodes[M].Hi;
  }
  if (KeyBits[Depth])
    return mkNode(Var, Lo, setRec(Hi, KeyBits, Depth + 1, Payload));
  return mkNode(Var, setRec(Lo, KeyBits, Depth + 1, Payload), Hi);
}

BddManager::Ref BddManager::set(Ref M, const std::vector<bool> &KeyBits,
                                const void *Payload) {
  return setRec(M, KeyBits, 0, Payload);
}

//===----------------------------------------------------------------------===//
// Boolean diagrams
//===----------------------------------------------------------------------===//

void BddManager::setBoolPayloads(const void *TruePayloadIn,
                                 const void *FalsePayloadIn) {
  TruePayload = TruePayloadIn;
  FalsePayload = FalsePayloadIn;
  TrueRef = leaf(TruePayload);
  FalseRef = leaf(FalsePayload);
}

BddManager::Ref BddManager::bitVar(uint32_t Var) {
  assert(TruePayload && "setBoolPayloads must run first");
  return mkNode(Var, FalseRef, TrueRef);
}

BddManager::Ref BddManager::bddNot(Ref A) {
  return map1(
      A,
      [this](const void *P) {
        return P == TruePayload ? FalsePayload : TruePayload;
      },
      TagNot);
}

BddManager::Ref BddManager::bddAnd(Ref A, Ref B) {
  if (A == FalseRef || B == FalseRef)
    return FalseRef;
  if (A == TrueRef)
    return B;
  if (B == TrueRef)
    return A;
  if (A > B)
    std::swap(A, B); // commutative: canonicalize the cache key
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return (X == TruePayload && Y == TruePayload) ? TruePayload
                                                      : FalsePayload;
      },
      TagAnd);
}

BddManager::Ref BddManager::bddOr(Ref A, Ref B) {
  if (A == TrueRef || B == TrueRef)
    return TrueRef;
  if (A == FalseRef)
    return B;
  if (B == FalseRef)
    return A;
  if (A > B)
    std::swap(A, B);
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return (X == TruePayload || Y == TruePayload) ? TruePayload
                                                      : FalsePayload;
      },
      TagOr);
}

BddManager::Ref BddManager::bddXor(Ref A, Ref B) {
  if (A == FalseRef)
    return B;
  if (B == FalseRef)
    return A;
  if (A == B)
    return FalseRef;
  if (A > B)
    std::swap(A, B);
  return apply2(
      A, B,
      [this](const void *X, const void *Y) {
        return ((X == TruePayload) != (Y == TruePayload)) ? TruePayload
                                                          : FalsePayload;
      },
      TagXor);
}

BddManager::Ref BddManager::bddIte(Ref C, Ref T, Ref E) {
  return bddOr(bddAnd(C, T), bddAnd(bddNot(C), E));
}

BddManager::Ref BddManager::iteRec(Ref C, Ref T, Ref E, uint64_t Tag) {
  if (C == TrueRef)
    return T;
  if (C == FalseRef)
    return E;
  if (T == E)
    return T;
  Ref Cached;
  if (cacheLookup(Tag, C, T, Cached))
    return Cached;
  uint32_t Var = LeafVar;
  for (Ref R : {C, T, E})
    if (!isLeaf(R) && Nodes[R].Var < Var)
      Var = Nodes[R].Var;
  assert(Var != LeafVar && "C must be non-constant here");
  auto Branch = [&](Ref R, bool Hi) {
    if (!isLeaf(R) && Nodes[R].Var == Var)
      return Hi ? Nodes[R].Hi : Nodes[R].Lo;
    return R;
  };
  Ref Lo = iteRec(Branch(C, false), Branch(T, false), Branch(E, false), Tag);
  Ref Hi = iteRec(Branch(C, true), Branch(T, true), Branch(E, true), Tag);
  Ref Result = mkNode(Var, Lo, Hi);
  cacheInsert(Tag, C, T, Result);
  return Result;
}

BddManager::Ref BddManager::mtbddIte(Ref C, Ref T, Ref E) {
  // Encode E into the tag so the (Tag, C, T) cache key identifies the
  // ternary operation uniquely.
  uint64_t Tag = 0xE000000000000000ull + E;
  return iteRec(C, T, E, Tag);
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

size_t BddManager::numDistinctLeaves(Ref R) const {
  std::unordered_set<Ref> Seen;
  std::unordered_set<const void *> LeavesSeen;
  std::vector<Ref> Stack{R};
  while (!Stack.empty()) {
    Ref N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (isLeaf(N)) {
      LeavesSeen.insert(leafPayload(N));
      continue;
    }
    Stack.push_back(Nodes[N].Lo);
    Stack.push_back(Nodes[N].Hi);
  }
  return LeavesSeen.size();
}

size_t BddManager::numReachableNodes(Ref R) const {
  std::unordered_set<Ref> Seen;
  std::vector<Ref> Stack{R};
  while (!Stack.empty()) {
    Ref N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (isLeaf(N))
      continue;
    Stack.push_back(Nodes[N].Lo);
    Stack.push_back(Nodes[N].Hi);
  }
  return Seen.size();
}

void BddManager::forEachKey(
    Ref R, unsigned NumBits,
    const std::function<void(const std::vector<bool> &, const void *)> &Fn)
    const {
  std::vector<bool> Bits(NumBits, false);
  uint64_t Total = NumBits >= 64 ? 0 : (uint64_t(1) << NumBits);
  if (NumBits >= 26)
    fatalError("forEachKey over " + std::to_string(NumBits) +
               " bits is too large to enumerate");
  for (uint64_t K = 0; K < Total; ++K) {
    for (unsigned I = 0; I < NumBits; ++I)
      Bits[I] = (K >> (NumBits - 1 - I)) & 1; // bit 0 is the MSB
    Fn(Bits, get(R, Bits));
  }
}

void BddManager::forEachCube(
    Ref R, unsigned NumBits,
    const std::function<void(const std::vector<int8_t> &, const void *)> &Fn)
    const {
  std::vector<int8_t> Tmpl(NumBits, -1);
  std::function<void(Ref)> Rec = [&](Ref N) {
    if (isLeaf(N)) {
      Fn(Tmpl, leafPayload(N));
      return;
    }
    uint32_t Var = Nodes[N].Var;
    Tmpl[Var] = 0;
    Rec(Nodes[N].Lo);
    Tmpl[Var] = 1;
    Rec(Nodes[N].Hi);
    Tmpl[Var] = -1;
  };
  Rec(R);
}

void BddManager::clearCaches() {
  std::fill(OpCache.begin(), OpCache.end(), OpEntry{});
}

size_t BddManager::memoryBytes() const {
  return Nodes.capacity() * sizeof(Node) +
         Unique.size() * (sizeof(NodeKey) + sizeof(Ref) + 16) +
         LeafTable.size() * (sizeof(void *) + sizeof(Ref) + 16) +
         OpCache.size() * sizeof(OpEntry);
}
