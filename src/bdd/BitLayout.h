//===- BitLayout.h - Bit encoding of finite NV types ------------*- C++ -*-===//
//
// Part of nv-cpp. Finite NV types are encoded as fixed-width bit vectors
// for use as MTBDD keys (Sec. 5.1): ints bitwise (MSB first), nodes with
// ceil(log2(numNodes)) bits, edges as two node fields, options as a tag
// bit followed by the payload, tuples/records by concatenation.
//
//===----------------------------------------------------------------------===//

#ifndef NV_BDD_BITLAYOUT_H
#define NV_BDD_BITLAYOUT_H

#include "core/Type.h"
#include "support/Governor.h"

namespace nv {

/// Computes bit widths of finite types for a concrete topology.
class BitLayout {
public:
  explicit BitLayout(uint32_t NumNodes) : NumNodes(NumNodes) {
    NodeBits = 1;
    while ((uint64_t(1) << NodeBits) < NumNodes)
      ++NodeBits;
  }

  uint32_t numNodes() const { return NumNodes; }
  unsigned nodeBits() const { return NodeBits; }

  /// Bit width of a finite type. Raises a recoverable EngineError on
  /// non-finite types (callers check isFiniteType first; map keys are
  /// validated by the type checker).
  unsigned widthOf(const TypePtr &RawT) const {
    TypePtr T = resolve(RawT);
    switch (T->Kind) {
    case TypeKind::Bool:
      return 1;
    case TypeKind::Int:
      return T->Width;
    case TypeKind::Node:
      return NodeBits;
    case TypeKind::Edge:
      return 2 * NodeBits;
    case TypeKind::Option: {
      return 1 + widthOf(T->Elems[0]);
    }
    case TypeKind::Tuple:
    case TypeKind::Record: {
      unsigned W = 0;
      for (const TypePtr &E : T->Elems)
        W += widthOf(E);
      return W;
    }
    case TypeKind::Dict:
    case TypeKind::Arrow:
    case TypeKind::Var:
      break;
    }
    evalError("type " + typeToString(T) + " has no bit encoding");
  }

private:
  uint32_t NumNodes;
  unsigned NodeBits;
};

} // namespace nv

#endif // NV_BDD_BITLAYOUT_H
