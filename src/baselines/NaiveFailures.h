//===- NaiveFailures.h - Per-scenario failure simulation --------*- C++ -*-===//
//
// Part of nv-cpp. The baseline the paper's fault-tolerance analysis is
// compared against (Sec. 2.7): "independently trying out all failure
// scenarios". Each scenario re-simulates the base program with a failure-
// injecting wrapper around the transfer function. Also used as the
// correctness oracle for the MTBDD meta-protocol in tests.
//
//===----------------------------------------------------------------------===//

#ifndef NV_BASELINES_NAIVEFAILURES_H
#define NV_BASELINES_NAIVEFAILURES_H

#include "analysis/FaultTolerance.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"

namespace nv {

/// Wraps a base evaluator, dropping routes over failed links and around a
/// failed node (init of the failed node is dropped as well).
class FailureInjectedEvaluator : public ProtocolEvaluator {
public:
  FailureInjectedEvaluator(ProtocolEvaluator &Base, const FtScenario &S,
                           const Value *DropValue)
      : Base(Base), S(S), Drop(DropValue) {}

  NvContext &ctx() override { return Base.ctx(); }
  const Value *init(uint32_t U) override {
    if (S.Node && *S.Node == U)
      return Drop;
    return Base.init(U);
  }
  const Value *trans(uint32_t U, uint32_t V, const Value *A) override {
    if (affects(U, V))
      return Drop;
    return Base.trans(U, V, A);
  }
  const Value *merge(uint32_t U, const Value *A, const Value *B) override {
    return Base.merge(U, A, B);
  }
  bool hasAssert() const override { return Base.hasAssert(); }
  bool assertAt(uint32_t U, const Value *A) override {
    return Base.assertAt(U, A);
  }
  bool requiresHold() const override { return Base.requiresHold(); }

private:
  ProtocolEvaluator &Base;
  FtScenario S;
  const Value *Drop;

  bool affects(uint32_t U, uint32_t V) const {
    if (S.Node && (*S.Node == U || *S.Node == V))
      return true;
    for (const auto &[A, B] : S.Links)
      if ((A == U && B == V) || (A == V && B == U))
        return true;
    return false;
  }
};

/// Simulates the base program under one failure scenario.
SimResult simulateScenario(const Program &P, ProtocolEvaluator &BaseEval,
                           const FtScenario &S, const Value *DropValue);

/// The naive exhaustive analysis: one simulation per scenario. Returns the
/// violations found plus the number of scenarios simulated (for the
/// Fig. 13a baseline timing).
///
/// Garbage-collects BaseEval's arena back to its pinned baseline after
/// each scenario (violation routes are pinned first, so the result stays
/// valid). Unpinned values the caller holds across this call do not
/// survive those collections — re-derive them afterwards if needed.
FtCheckResult naiveFaultTolerance(const Program &P,
                                  ProtocolEvaluator &BaseEval,
                                  const FtOptions &Opts,
                                  const Value *DropValue);

/// The stable journal/fleet key of scenario \p I ("s<I>"): enumeration
/// order is deterministic, so the index is the scenario's identity.
std::string naiveScenarioKey(size_t I);

/// Runs scenario \p I end to end — own governed scope, transient-retry —
/// and returns the same UnitRecord the in-process paths journal for it
/// (outcome + attempts + one "v" field per violation). This is the fleet
/// worker's unit handler: BaseEval's arena is collected back to its
/// pinned baseline before returning, so one evaluator serves many jobs.
UnitRecord runNaiveScenarioRecord(const Program &P, ProtocolEvaluator &BaseEval,
                                  const std::vector<FtScenario> &Scenarios,
                                  size_t I, const Value *DropValue,
                                  const FtOptions &Opts);

/// Folds one record per scenario — from a fleet run, a resume journal, or
/// a mix of both — into \p Out with exactly the replay path's semantics:
/// violations in scenario order (Route null, RouteText filled), non-ok
/// records counted as skipped, first non-ok outcome in scenario order
/// kept. Returns false when some scenario's record is missing. The caller
/// sets ScenariosReplayed (the split is its to know).
bool aggregateNaiveScenarioRecords(
    const std::vector<FtScenario> &Scenarios,
    const std::function<bool(const std::string &, UnitRecord &)> &Lookup,
    FtCheckResult &Out);

/// Thread-sharded naive analysis: one persistent worker per pool thread.
/// Each worker re-parses the program once into its own NvContext/
/// BddManager arena (hash-consing stays lock-free and no AST node, whose
/// free-variable cache is lazily filled, is shared across threads), claims
/// scenarios dynamically off a shared counter, and garbage-collects its
/// arena back to the pinned evaluator baseline between scenarios instead
/// of rebuilding parse + arena per chunk. Violations land in per-scenario
/// slots and are concatenated in scenario order, so the logical result is
/// identical for any pool size (route pointers live in per-worker arenas
/// retained by the result).
///
/// \p MakeDrop builds the injected "dropped route" value in a worker's
/// context (defaults to None); it must be a pure function of the context.
FtCheckResult naiveFaultToleranceParallel(
    const Program &P, const FtOptions &Opts, ThreadPool &Pool,
    const std::function<const Value *(NvContext &)> &MakeDrop = {});

} // namespace nv

#endif // NV_BASELINES_NAIVEFAILURES_H
