//===- BatfishSim.cpp - Batfish-style per-prefix simulation ------------------===//

#include "baselines/BatfishSim.h"

#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"

using namespace nv;

BatfishResult nv::batfishAllPrefixes(
    const Program &ParamProgram, const std::vector<uint32_t> &Destinations,
    const std::function<int64_t(const Value *)> &Extract) {
  BatfishResult R;
  for (uint32_t Dest : Destinations) {
    // Fresh context per prefix: no value sharing across destinations.
    NvContext Ctx(ParamProgram.numNodes());
    InterpProgramEvaluator Eval(Ctx, ParamProgram,
                                {{"dest", Ctx.nodeV(Dest)}});
    SimOptions Opts;
    Opts.IncrementalMerge = false; // full re-merge, Batfish-style
    SimResult Sim = simulate(ParamProgram, Eval, Opts);
    R.Converged &= Sim.Converged;
    ++R.PrefixesSimulated;
    R.TotalPops += Sim.Stats.Pops;
    R.TotalValuesAllocated += Ctx.Arena.size();
    if (Extract) {
      std::vector<int64_t> Row;
      Row.reserve(Sim.Labels.size());
      for (const Value *L : Sim.Labels)
        Row.push_back(Extract(L));
      R.Labels.push_back(std::move(Row));
    }
  }
  return R;
}
