//===- BatfishSim.cpp - Batfish-style per-prefix simulation ------------------===//

#include "baselines/BatfishSim.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "support/Fatal.h"

#include <atomic>
#include <cstdlib>

using namespace nv;

namespace {

/// Result of one per-prefix run, stored in a destination-indexed slot so
/// aggregation order (and thus the result) is identical for any pool size.
struct PerPrefix {
  bool Converged = false;
  RunOutcome Outcome;
  uint64_t Pops = 0;
  uint64_t ValuesAllocated = 0;
  std::vector<int64_t> Row;
};

void runOnePrefix(const Program &Prog, uint32_t Dest,
                  const std::function<int64_t(const Value *)> &Extract,
                  const RunBudget &JobBudget, PerPrefix &Out) {
  // Per-prefix governance on the thread that runs the prefix: a trip
  // skips exactly this prefix and leaves siblings bit-identical to an
  // ungoverned run (per-prefix state is fully isolated anyway).
  Governor::Scope Guard(JobBudget);
  try {
    // Fresh context per prefix: no value sharing across destinations.
    NvContext Ctx(Prog.numNodes());
    InterpProgramEvaluator Eval(Ctx, Prog, {{"dest", Ctx.nodeV(Dest)}});
    SimOptions Opts;
    Opts.IncrementalMerge = false; // full re-merge, Batfish-style
    SimResult Sim = simulate(Prog, Eval, Opts);
    Out.Converged = Sim.Converged;
    Out.Outcome = Sim.Outcome;
    Out.Pops = Sim.Stats.Pops;
    Out.ValuesAllocated = Ctx.Arena.size();
    if (Extract) {
      Out.Row.reserve(Sim.Labels.size());
      for (const Value *L : Sim.Labels)
        Out.Row.push_back(L ? Extract(L) : 0);
    }
  } catch (const EngineError &E) {
    // Evaluator construction or assert/extract evaluation tripped outside
    // the simulator's own catch.
    Out.Converged = false;
    Out.Outcome = E.outcome();
    Out.Row.clear();
  }
}

/// Journal key of destination index \p I (the destination list is part of
/// the run binding, so the index is stable).
std::string prefixKeyStr(size_t I) {
  std::string K = "p";
  K += std::to_string(I);
  return K;
}

/// Serializes one completed prefix into a journal record. Pops/allocation
/// counts and the extracted row are recorded so a replayed prefix
/// contributes exactly what the live run did.
void recordPrefixDone(ResumeLog &Log, size_t I, const PerPrefix &P,
                      unsigned Attempts, bool HasExtract) {
  UnitRecord Rec;
  Rec.Key = prefixKeyStr(I);
  addOutcome(Rec, P.Outcome, Attempts);
  Rec.addInt("conv", P.Converged ? 1 : 0);
  Rec.addInt("pops", (long long)P.Pops);
  Rec.addInt("values", (long long)P.ValuesAllocated);
  if (HasExtract) {
    std::string Row;
    for (size_t J = 0; J < P.Row.size(); ++J) {
      if (J)
        Row += ',';
      Row += std::to_string(P.Row[J]);
    }
    Rec.add("row", Row);
  }
  Log.recordDone(Rec);
}

bool replayPrefixRecord(const UnitRecord &Rec, PerPrefix &Out) {
  unsigned Attempts = 1;
  if (!parseOutcome(Rec, Out.Outcome, Attempts))
    return false;
  const std::string *Conv = Rec.get("conv");
  const std::string *Pops = Rec.get("pops");
  const std::string *Values = Rec.get("values");
  if (!Conv || !Pops || !Values)
    return false;
  Out.Converged = *Conv == "1";
  Out.Pops = std::strtoull(Pops->c_str(), nullptr, 10);
  Out.ValuesAllocated = std::strtoull(Values->c_str(), nullptr, 10);
  if (const std::string *Row = Rec.get("row")) {
    Out.Row.clear();
    if (!Row->empty()) {
      size_t Pos = 0;
      while (Pos <= Row->size()) {
        size_t Comma = Row->find(',', Pos);
        if (Comma == std::string::npos)
          Comma = Row->size();
        Out.Row.push_back(std::strtoll(Row->c_str() + Pos, nullptr, 10));
        Pos = Comma + 1;
      }
    }
  }
  return true;
}

} // namespace

BatfishResult nv::batfishAllPrefixes(
    const Program &ParamProgram, const std::vector<uint32_t> &Destinations,
    const std::function<int64_t(const Value *)> &Extract, ThreadPool *Pool,
    const RunBudget &JobBudget, ResumeLog *Resume, const RetryPolicy &Retry) {
  std::vector<PerPrefix> Per(Destinations.size());
  BatfishResult R;

  // Resume: restore journaled prefixes into their slots; only the rest
  // enter the (serial or sharded) worklist.
  std::vector<size_t> Pending;
  Pending.reserve(Destinations.size());
  for (size_t I = 0; I < Destinations.size(); ++I) {
    if (Resume) {
      UnitRecord Rec;
      if (Resume->replay(prefixKeyStr(I), Rec) &&
          replayPrefixRecord(Rec, Per[I])) {
        ++R.PrefixesReplayed;
        continue;
      }
    }
    Pending.push_back(I);
  }

  std::atomic<uint64_t> Retries{0};
  // One governed, retried, journaled prefix — shared by both paths.
  auto RunOne = [&](const Program &Prog, size_t I) {
    unsigned Attempts = 1;
    runUnitWithRetry(JobBudget, Retry, Attempts, [&](const RunBudget &B) {
      Per[I] = PerPrefix();
      runOnePrefix(Prog, Destinations[I], Extract, B, Per[I]);
      return Per[I].Outcome;
    });
    if (Attempts > 1)
      Retries.fetch_add(Attempts - 1, std::memory_order_relaxed);
    // Canceled prefixes are not journaled: they re-run on resume, which is
    // what keeps resumed aggregates identical to uninterrupted runs.
    if (Resume && Per[I].Outcome.Status != RunStatus::Canceled)
      recordPrefixDone(*Resume, I, Per[I], Attempts, Extract != nullptr);
  };

  if (!Pool || Pool->numThreads() <= 1 || Pending.size() <= 1) {
    for (size_t I : Pending)
      RunOne(ParamProgram, I);
  } else {
    // One persistent worker per pool thread: each re-parses the program
    // ONCE (no AST node, whose free-variable cache is lazily filled, is
    // shared across threads) and claims destinations dynamically off a
    // shared counter. Per-prefix contexts stay as in the serial path,
    // preserving Batfish's no-sharing cost model — and keeping per-prefix
    // allocation counts independent of the pool size.
    std::string Src = printProgram(ParamProgram);
    size_t Workers =
        std::min(Pending.size(), static_cast<size_t>(Pool->numThreads()));
    std::atomic<size_t> NextPending{0};
    Pool->parallelFor(Workers, [&](size_t) {
      DiagnosticEngine Diags;
      auto Local = parseProgram(Src, Diags);
      if (!Local || !typeCheck(*Local, Diags))
        fatalError("internal: Batfish-baseline worker failed to re-parse "
                   "the program:\n" +
                   Diags.str());
      for (size_t PI = NextPending.fetch_add(1); PI < Pending.size();
           PI = NextPending.fetch_add(1))
        RunOne(*Local, Pending[PI]);
    });
  }

  R.RetriesPerformed = Retries.load(std::memory_order_relaxed);
  for (PerPrefix &P : Per) {
    R.Converged &= P.Converged;
    ++R.PrefixesSimulated;
    if (!P.Outcome.ok()) {
      ++R.PrefixesSkipped;
      if (R.Outcome.ok())
        R.Outcome = P.Outcome; // first in destination order: deterministic
    }
    R.TotalPops += P.Pops;
    R.TotalValuesAllocated += P.ValuesAllocated;
    if (Extract)
      R.Labels.push_back(std::move(P.Row));
  }
  return R;
}
