//===- BatfishSim.cpp - Batfish-style per-prefix simulation ------------------===//

#include "baselines/BatfishSim.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "support/Fatal.h"

#include <atomic>

using namespace nv;

namespace {

/// Result of one per-prefix run, stored in a destination-indexed slot so
/// aggregation order (and thus the result) is identical for any pool size.
struct PerPrefix {
  bool Converged = false;
  RunOutcome Outcome;
  uint64_t Pops = 0;
  uint64_t ValuesAllocated = 0;
  std::vector<int64_t> Row;
};

void runOnePrefix(const Program &Prog, uint32_t Dest,
                  const std::function<int64_t(const Value *)> &Extract,
                  const RunBudget &JobBudget, PerPrefix &Out) {
  // Per-prefix governance on the thread that runs the prefix: a trip
  // skips exactly this prefix and leaves siblings bit-identical to an
  // ungoverned run (per-prefix state is fully isolated anyway).
  Governor::Scope Guard(JobBudget);
  try {
    // Fresh context per prefix: no value sharing across destinations.
    NvContext Ctx(Prog.numNodes());
    InterpProgramEvaluator Eval(Ctx, Prog, {{"dest", Ctx.nodeV(Dest)}});
    SimOptions Opts;
    Opts.IncrementalMerge = false; // full re-merge, Batfish-style
    SimResult Sim = simulate(Prog, Eval, Opts);
    Out.Converged = Sim.Converged;
    Out.Outcome = Sim.Outcome;
    Out.Pops = Sim.Stats.Pops;
    Out.ValuesAllocated = Ctx.Arena.size();
    if (Extract) {
      Out.Row.reserve(Sim.Labels.size());
      for (const Value *L : Sim.Labels)
        Out.Row.push_back(L ? Extract(L) : 0);
    }
  } catch (const EngineError &E) {
    // Evaluator construction or assert/extract evaluation tripped outside
    // the simulator's own catch.
    Out.Converged = false;
    Out.Outcome = E.outcome();
    Out.Row.clear();
  }
}

} // namespace

BatfishResult nv::batfishAllPrefixes(
    const Program &ParamProgram, const std::vector<uint32_t> &Destinations,
    const std::function<int64_t(const Value *)> &Extract, ThreadPool *Pool,
    const RunBudget &JobBudget) {
  std::vector<PerPrefix> Per(Destinations.size());

  if (!Pool || Pool->numThreads() <= 1 || Destinations.size() <= 1) {
    for (size_t I = 0; I < Destinations.size(); ++I)
      runOnePrefix(ParamProgram, Destinations[I], Extract, JobBudget, Per[I]);
  } else {
    // One persistent worker per pool thread: each re-parses the program
    // ONCE (no AST node, whose free-variable cache is lazily filled, is
    // shared across threads) and claims destinations dynamically off a
    // shared counter. Per-prefix contexts stay as in the serial path,
    // preserving Batfish's no-sharing cost model — and keeping per-prefix
    // allocation counts independent of the pool size.
    std::string Src = printProgram(ParamProgram);
    size_t Workers = std::min(Destinations.size(),
                              static_cast<size_t>(Pool->numThreads()));
    std::atomic<size_t> NextDest{0};
    Pool->parallelFor(Workers, [&](size_t) {
      DiagnosticEngine Diags;
      auto Local = parseProgram(Src, Diags);
      if (!Local || !typeCheck(*Local, Diags))
        fatalError("internal: Batfish-baseline worker failed to re-parse "
                   "the program:\n" +
                   Diags.str());
      for (size_t I = NextDest.fetch_add(1); I < Destinations.size();
           I = NextDest.fetch_add(1))
        runOnePrefix(*Local, Destinations[I], Extract, JobBudget, Per[I]);
    });
  }

  BatfishResult R;
  for (PerPrefix &P : Per) {
    R.Converged &= P.Converged;
    ++R.PrefixesSimulated;
    if (!P.Outcome.ok()) {
      ++R.PrefixesSkipped;
      if (R.Outcome.ok())
        R.Outcome = P.Outcome; // first in destination order: deterministic
    }
    R.TotalPops += P.Pops;
    R.TotalValuesAllocated += P.ValuesAllocated;
    if (Extract)
      R.Labels.push_back(std::move(P.Row));
  }
  return R;
}
