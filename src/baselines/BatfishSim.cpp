//===- BatfishSim.cpp - Batfish-style per-prefix simulation ------------------===//

#include "baselines/BatfishSim.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "eval/ProgramEvaluator.h"
#include "sim/Simulator.h"
#include "support/Fatal.h"

#include <atomic>

using namespace nv;

namespace {

/// Result of one per-prefix run, stored in a destination-indexed slot so
/// aggregation order (and thus the result) is identical for any pool size.
struct PerPrefix {
  bool Converged = false;
  uint64_t Pops = 0;
  uint64_t ValuesAllocated = 0;
  std::vector<int64_t> Row;
};

void runOnePrefix(const Program &Prog, uint32_t Dest,
                  const std::function<int64_t(const Value *)> &Extract,
                  PerPrefix &Out) {
  // Fresh context per prefix: no value sharing across destinations.
  NvContext Ctx(Prog.numNodes());
  InterpProgramEvaluator Eval(Ctx, Prog, {{"dest", Ctx.nodeV(Dest)}});
  SimOptions Opts;
  Opts.IncrementalMerge = false; // full re-merge, Batfish-style
  SimResult Sim = simulate(Prog, Eval, Opts);
  Out.Converged = Sim.Converged;
  Out.Pops = Sim.Stats.Pops;
  Out.ValuesAllocated = Ctx.Arena.size();
  if (Extract) {
    Out.Row.reserve(Sim.Labels.size());
    for (const Value *L : Sim.Labels)
      Out.Row.push_back(Extract(L));
  }
}

} // namespace

BatfishResult nv::batfishAllPrefixes(
    const Program &ParamProgram, const std::vector<uint32_t> &Destinations,
    const std::function<int64_t(const Value *)> &Extract, ThreadPool *Pool) {
  std::vector<PerPrefix> Per(Destinations.size());

  if (!Pool || Pool->numThreads() <= 1 || Destinations.size() <= 1) {
    for (size_t I = 0; I < Destinations.size(); ++I)
      runOnePrefix(ParamProgram, Destinations[I], Extract, Per[I]);
  } else {
    // One persistent worker per pool thread: each re-parses the program
    // ONCE (no AST node, whose free-variable cache is lazily filled, is
    // shared across threads) and claims destinations dynamically off a
    // shared counter. Per-prefix contexts stay as in the serial path,
    // preserving Batfish's no-sharing cost model — and keeping per-prefix
    // allocation counts independent of the pool size.
    std::string Src = printProgram(ParamProgram);
    size_t Workers = std::min(Destinations.size(),
                              static_cast<size_t>(Pool->numThreads()));
    std::atomic<size_t> NextDest{0};
    Pool->parallelFor(Workers, [&](size_t) {
      DiagnosticEngine Diags;
      auto Local = parseProgram(Src, Diags);
      if (!Local || !typeCheck(*Local, Diags))
        fatalError("internal: Batfish-baseline worker failed to re-parse "
                   "the program:\n" +
                   Diags.str());
      for (size_t I = NextDest.fetch_add(1); I < Destinations.size();
           I = NextDest.fetch_add(1))
        runOnePrefix(*Local, Destinations[I], Extract, Per[I]);
    });
  }

  BatfishResult R;
  for (PerPrefix &P : Per) {
    R.Converged &= P.Converged;
    ++R.PrefixesSimulated;
    R.TotalPops += P.Pops;
    R.TotalValuesAllocated += P.ValuesAllocated;
    if (Extract)
      R.Labels.push_back(std::move(P.Row));
  }
  return R;
}
