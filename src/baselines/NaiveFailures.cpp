//===- NaiveFailures.cpp - Per-scenario failure simulation ------------------===//

#include "baselines/NaiveFailures.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "support/Fatal.h"

#include <atomic>

using namespace nv;

SimResult nv::simulateScenario(const Program &P, ProtocolEvaluator &BaseEval,
                               const FtScenario &S, const Value *DropValue) {
  FailureInjectedEvaluator Eval(BaseEval, S, DropValue);
  return simulate(P, Eval);
}

namespace {

/// Simulates one scenario and appends its assertion violations to \p Out.
/// Returns the scenario's outcome: Ok, or why the fixpoint/assert run
/// ended early (the simulator reports trips through SimResult::Outcome;
/// assert evaluation may throw EngineError, handled by the callers'
/// per-scenario catch).
RunOutcome checkOneScenario(const Program &P, ProtocolEvaluator &BaseEval,
                            const FtScenario &S, const Value *DropValue,
                            std::vector<FtViolation> &Out) {
  SimResult Sim = simulateScenario(P, BaseEval, S, DropValue);
  if (!Sim.Converged)
    return Sim.Outcome;
  for (uint32_t U = 0; U < Sim.Labels.size(); ++U) {
    if (S.Node && *S.Node == U)
      continue;
    if (!BaseEval.assertAt(U, Sim.Labels[U]))
      Out.push_back({S, U, Sim.Labels[U]});
  }
  return {};
}

/// Runs one scenario under its own governed scope: the per-scenario
/// budget confines a trip to this scenario (and this worker, in the
/// sharded path) — siblings are untouched. On a non-Ok outcome the
/// scenario's partial violations are discarded so skipped scenarios
/// contribute nothing, keeping results deterministic.
RunOutcome runOneScenarioGoverned(const Program &P,
                                  ProtocolEvaluator &BaseEval,
                                  const FtScenario &S, const Value *DropValue,
                                  const RunBudget &Budget,
                                  std::vector<FtViolation> &Out) {
  size_t From = Out.size();
  Governor::Scope Guard(Budget);
  RunOutcome O;
  try {
    O = checkOneScenario(P, BaseEval, S, DropValue, Out);
  } catch (const EngineError &E) {
    O = E.outcome();
  }
  if (!O.ok())
    Out.resize(From);
  return O;
}

/// Pins the routes of violations [From, Out.size()) so they outlive the
/// between-scenario collections. The pins are intentionally never released:
/// the routes are reachable from the returned FtCheckResult, so they are
/// roots of the context for as long as the result is consulted.
void pinNewViolations(NvContext &Ctx, std::vector<FtViolation> &Out,
                      size_t From) {
  for (size_t I = From; I < Out.size(); ++I)
    Ctx.pinValue(Out[I].Route);
}

} // namespace

FtCheckResult nv::naiveFaultTolerance(const Program &P,
                                      ProtocolEvaluator &BaseEval,
                                      const FtOptions &Opts,
                                      const Value *DropValue) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  NvContext &Ctx = BaseEval.ctx();
  if (DropValue)
    Ctx.pinValue(DropValue);
  for (const FtScenario &S : Scenarios) {
    ++R.ScenariosChecked;
    size_t From = R.Violations.size();
    RunOutcome O = runOneScenarioGoverned(P, BaseEval, S, DropValue,
                                          Opts.Budget, R.Violations);
    if (!O.ok()) {
      ++R.ScenariosSkipped;
      if (R.Outcome.ok())
        R.Outcome = O;
    }
    pinNewViolations(Ctx, R.Violations, From);
    // Collect the scenario's fixpoint garbage back down to the pinned
    // baseline (evaluator globals + partials, drop value, violations).
    Ctx.resetBetweenRuns();
  }
  if (DropValue)
    Ctx.unpinValue(DropValue);
  return R;
}

FtCheckResult nv::naiveFaultToleranceParallel(
    const Program &P, const FtOptions &Opts, ThreadPool &Pool,
    const std::function<const Value *(NvContext &)> &MakeDrop) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  if (Scenarios.empty())
    return R;

  // One persistent worker per pool thread. Each worker re-parses the
  // program ONCE (AST nodes carry a lazily-filled free-variable cache, so
  // sharing them across threads would race), builds one evaluator over its
  // own NvContext/BddManager arena, then claims scenarios dynamically off
  // a shared counter and garbage-collects its arena back to the pinned
  // baseline between scenarios — instead of the old scheme of building
  // (and throwing away) a fresh parse + arena per contiguous chunk.
  std::string Src = printProgram(P);
  size_t Workers = std::min(Scenarios.size(), (size_t)Pool.numThreads());

  // Violations land in per-scenario slots and are concatenated in scenario
  // order below, so the logical result is identical for any pool size and
  // any dynamic interleaving (route pointers live in the per-worker arenas
  // retained by the result).
  std::vector<std::vector<FtViolation>> PerScenario(Scenarios.size());
  std::vector<RunOutcome> PerOutcome(Scenarios.size());
  std::vector<std::shared_ptr<NvContext>> Ctxs(Workers);
  std::atomic<size_t> NextScenario{0};

  Pool.parallelFor(Workers, [&](size_t W) {
    DiagnosticEngine Diags;
    auto Local = parseProgram(Src, Diags);
    if (!Local || !typeCheck(*Local, Diags))
      fatalError("internal: naive-baseline worker failed to re-parse the "
                 "program:\n" +
                 Diags.str());
    auto Ctx = std::make_shared<NvContext>(Local->numNodes());
    InterpProgramEvaluator BaseEval(*Ctx, *Local);
    const Value *Drop = MakeDrop ? MakeDrop(*Ctx) : Ctx->noneV();
    Ctx->pinValue(Drop);
    for (size_t I = NextScenario.fetch_add(1); I < Scenarios.size();
         I = NextScenario.fetch_add(1)) {
      // Each scenario is governed in its own scope on this worker thread
      // (the thread-local governor chain does not cross the pool), so a
      // budget trip or injected fault skips exactly this scenario;
      // sibling scenarios on this and other workers proceed and their
      // results are bit-identical to an ungoverned run.
      PerOutcome[I] = runOneScenarioGoverned(*Local, BaseEval, Scenarios[I],
                                             Drop, Opts.Budget, PerScenario[I]);
      pinNewViolations(*Ctx, PerScenario[I], 0);
      Ctx->resetBetweenRuns();
    }
    Ctxs[W] = std::move(Ctx);
  });

  R.ScenariosChecked = Scenarios.size();
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    if (!PerOutcome[I].ok()) {
      ++R.ScenariosSkipped;
      if (R.Outcome.ok())
        R.Outcome = PerOutcome[I]; // first in scenario order: deterministic
    }
    R.Violations.insert(R.Violations.end(), PerScenario[I].begin(),
                        PerScenario[I].end());
  }
  for (auto &C : Ctxs)
    R.RetainedContexts.push_back(std::move(C));
  return R;
}
