//===- NaiveFailures.cpp - Per-scenario failure simulation ------------------===//

#include "baselines/NaiveFailures.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "support/Fatal.h"

using namespace nv;

SimResult nv::simulateScenario(const Program &P, ProtocolEvaluator &BaseEval,
                               const FtScenario &S, const Value *DropValue) {
  FailureInjectedEvaluator Eval(BaseEval, S, DropValue);
  return simulate(P, Eval);
}

namespace {

/// Checks the scenarios [Begin, End) with \p BaseEval, appending to \p R.
void checkScenarioRange(const Program &P, ProtocolEvaluator &BaseEval,
                        const std::vector<FtScenario> &Scenarios, size_t Begin,
                        size_t End, const Value *DropValue, FtCheckResult &R) {
  for (size_t I = Begin; I < End; ++I) {
    const FtScenario &S = Scenarios[I];
    ++R.ScenariosChecked;
    SimResult Sim = simulateScenario(P, BaseEval, S, DropValue);
    if (!Sim.Converged)
      continue;
    for (uint32_t U = 0; U < Sim.Labels.size(); ++U) {
      if (S.Node && *S.Node == U)
        continue;
      if (!BaseEval.assertAt(U, Sim.Labels[U]))
        R.Violations.push_back({S, U, Sim.Labels[U]});
    }
  }
}

} // namespace

FtCheckResult nv::naiveFaultTolerance(const Program &P,
                                      ProtocolEvaluator &BaseEval,
                                      const FtOptions &Opts,
                                      const Value *DropValue) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  checkScenarioRange(P, BaseEval, Scenarios, 0, Scenarios.size(), DropValue,
                     R);
  return R;
}

FtCheckResult nv::naiveFaultToleranceParallel(
    const Program &P, const FtOptions &Opts, ThreadPool &Pool,
    const std::function<const Value *(NvContext &)> &MakeDrop) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  if (Scenarios.empty())
    return R;

  // Each chunk re-parses the program from source: AST nodes carry a
  // lazily-filled free-variable cache, so sharing them across threads
  // would race. Parsing once per chunk (not per scenario) amortizes to
  // noise against the per-scenario fixpoints.
  std::string Src = printProgram(P);
  size_t Chunks =
      std::min(Scenarios.size(), static_cast<size_t>(Pool.numThreads()) * 4);

  struct Shard {
    FtCheckResult Part;
    std::shared_ptr<NvContext> Ctx;
  };
  std::vector<Shard> Shards(Chunks);

  Pool.parallelFor(Chunks, [&](size_t C) {
    size_t Begin = C * Scenarios.size() / Chunks;
    size_t End = (C + 1) * Scenarios.size() / Chunks;
    DiagnosticEngine Diags;
    auto Local = parseProgram(Src, Diags);
    if (!Local || !typeCheck(*Local, Diags))
      fatalError("internal: naive-baseline worker failed to re-parse the "
                 "program:\n" +
                 Diags.str());
    auto Ctx = std::make_shared<NvContext>(Local->numNodes());
    InterpProgramEvaluator BaseEval(*Ctx, *Local);
    const Value *Drop = MakeDrop ? MakeDrop(*Ctx) : Ctx->noneV();
    checkScenarioRange(*Local, BaseEval, Scenarios, Begin, End, Drop,
                       Shards[C].Part);
    Shards[C].Ctx = std::move(Ctx);
  });

  for (Shard &S : Shards) {
    R.ScenariosChecked += S.Part.ScenariosChecked;
    R.Violations.insert(R.Violations.end(), S.Part.Violations.begin(),
                        S.Part.Violations.end());
    R.RetainedContexts.push_back(std::move(S.Ctx));
  }
  return R;
}
