//===- NaiveFailures.cpp - Per-scenario failure simulation ------------------===//

#include "baselines/NaiveFailures.h"

using namespace nv;

SimResult nv::simulateScenario(const Program &P, ProtocolEvaluator &BaseEval,
                               const FtScenario &S, const Value *DropValue) {
  FailureInjectedEvaluator Eval(BaseEval, S, DropValue);
  return simulate(P, Eval);
}

FtCheckResult nv::naiveFaultTolerance(const Program &P,
                                      ProtocolEvaluator &BaseEval,
                                      const FtOptions &Opts,
                                      const Value *DropValue) {
  FtCheckResult R;
  for (const FtScenario &S : enumerateScenarios(P, Opts)) {
    ++R.ScenariosChecked;
    SimResult Sim = simulateScenario(P, BaseEval, S, DropValue);
    if (!Sim.Converged)
      continue;
    for (uint32_t U = 0; U < Sim.Labels.size(); ++U) {
      if (S.Node && *S.Node == U)
        continue;
      if (!BaseEval.assertAt(U, Sim.Labels[U]))
        R.Violations.push_back({S, U, Sim.Labels[U]});
    }
  }
  return R;
}
