//===- NaiveFailures.cpp - Per-scenario failure simulation ------------------===//

#include "baselines/NaiveFailures.h"

#include "core/Parser.h"
#include "core/Printer.h"
#include "core/TypeChecker.h"
#include "support/Fatal.h"

#include <atomic>

using namespace nv;

SimResult nv::simulateScenario(const Program &P, ProtocolEvaluator &BaseEval,
                               const FtScenario &S, const Value *DropValue) {
  FailureInjectedEvaluator Eval(BaseEval, S, DropValue);
  return simulate(P, Eval);
}

namespace {

/// Simulates one scenario and appends its assertion violations to \p Out.
/// Returns the scenario's outcome: Ok, or why the fixpoint/assert run
/// ended early (the simulator reports trips through SimResult::Outcome;
/// assert evaluation may throw EngineError, handled by the callers'
/// per-scenario catch).
RunOutcome checkOneScenario(const Program &P, ProtocolEvaluator &BaseEval,
                            const FtScenario &S, const Value *DropValue,
                            std::vector<FtViolation> &Out) {
  SimResult Sim = simulateScenario(P, BaseEval, S, DropValue);
  if (!Sim.Converged)
    return Sim.Outcome;
  for (uint32_t U = 0; U < Sim.Labels.size(); ++U) {
    if (S.Node && *S.Node == U)
      continue;
    if (!BaseEval.assertAt(U, Sim.Labels[U]))
      Out.push_back({S, U, Sim.Labels[U], {}});
  }
  return {};
}

/// Runs one scenario under its own governed scope: the per-scenario
/// budget confines a trip to this scenario (and this worker, in the
/// sharded path) — siblings are untouched. On a non-Ok outcome the
/// scenario's partial violations are discarded so skipped scenarios
/// contribute nothing, keeping results deterministic.
RunOutcome runOneScenarioGoverned(const Program &P,
                                  ProtocolEvaluator &BaseEval,
                                  const FtScenario &S, const Value *DropValue,
                                  const RunBudget &Budget,
                                  std::vector<FtViolation> &Out) {
  size_t From = Out.size();
  Governor::Scope Guard(Budget);
  RunOutcome O;
  try {
    O = checkOneScenario(P, BaseEval, S, DropValue, Out);
  } catch (const EngineError &E) {
    O = E.outcome();
  }
  if (!O.ok())
    Out.resize(From);
  return O;
}

/// Pins the routes of violations [From, Out.size()) so they outlive the
/// between-scenario collections. The pins are intentionally never released:
/// the routes are reachable from the returned FtCheckResult, so they are
/// roots of the context for as long as the result is consulted.
void pinNewViolations(NvContext &Ctx, std::vector<FtViolation> &Out,
                      size_t From) {
  for (size_t I = From; I < Out.size(); ++I)
    Ctx.pinValue(Out[I].Route);
}

/// Builds the canonical record of a completed scenario: its outcome, how
/// many attempts the retry policy spent, and its violations ([\p From,
/// \p To)). Every producer of scenario records — the serial and parallel
/// in-process paths (journaling) and the fleet worker (result frames) —
/// goes through here, which is what makes their records byte-identical.
UnitRecord makeScenarioRecord(size_t I, const RunOutcome &O, unsigned Attempts,
                              const FtViolation *From, const FtViolation *To) {
  UnitRecord Rec;
  Rec.Key = naiveScenarioKey(I);
  addOutcome(Rec, O, Attempts);
  for (const FtViolation *V = From; V != To; ++V)
    addViolationField(Rec, I, *V);
  return Rec;
}

/// Durably records one completed scenario.
void recordScenarioDone(ResumeLog &Log, size_t I, const RunOutcome &O,
                        unsigned Attempts, const FtViolation *From,
                        const FtViolation *To) {
  Log.recordDone(makeScenarioRecord(I, O, Attempts, From, To));
}

/// Restores a journaled scenario: outcome into \p OutcomeOut, violations
/// (Route null, RouteText filled) appended to \p ViolationsOut.
void replayScenarioRecord(const UnitRecord &Rec,
                          const std::vector<FtScenario> &Scenarios,
                          RunOutcome &OutcomeOut,
                          std::vector<FtViolation> &ViolationsOut) {
  unsigned Attempts = 1;
  parseOutcome(Rec, OutcomeOut, Attempts);
  std::vector<std::pair<size_t, FtViolation>> Vs;
  if (parseViolationFields(Rec, Scenarios, Vs))
    for (auto &[Idx, V] : Vs)
      ViolationsOut.push_back(std::move(V));
}

} // namespace

std::string nv::naiveScenarioKey(size_t I) {
  std::string K = "s";
  K += std::to_string(I);
  return K;
}

UnitRecord nv::runNaiveScenarioRecord(const Program &P,
                                      ProtocolEvaluator &BaseEval,
                                      const std::vector<FtScenario> &Scenarios,
                                      size_t I, const Value *DropValue,
                                      const FtOptions &Opts) {
  std::vector<FtViolation> Vs;
  unsigned Attempts = 1;
  RunOutcome O = runUnitWithRetry(
      Opts.Budget, Opts.Retry, Attempts, [&](const RunBudget &B) {
        return runOneScenarioGoverned(P, BaseEval, Scenarios[I], DropValue, B,
                                      Vs);
      });
  // Render the record (routeStr reads the live routes) BEFORE collecting
  // the scenario's garbage; nothing in Vs needs to survive the reset.
  UnitRecord Rec =
      makeScenarioRecord(I, O, Attempts, Vs.data(), Vs.data() + Vs.size());
  BaseEval.ctx().resetBetweenRuns();
  return Rec;
}

bool nv::aggregateNaiveScenarioRecords(
    const std::vector<FtScenario> &Scenarios,
    const std::function<bool(const std::string &, UnitRecord &)> &Lookup,
    FtCheckResult &Out) {
  Out.ScenariosChecked = Scenarios.size();
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    UnitRecord Rec;
    if (!Lookup(naiveScenarioKey(I), Rec))
      return false;
    RunOutcome O;
    unsigned Attempts = 1;
    parseOutcome(Rec, O, Attempts);
    Out.RetriesPerformed += Attempts - 1;
    replayScenarioRecord(Rec, Scenarios, O, Out.Violations);
    if (!O.ok()) {
      ++Out.ScenariosSkipped;
      if (Out.Outcome.ok())
        Out.Outcome = O;
    }
  }
  return true;
}

FtCheckResult nv::naiveFaultTolerance(const Program &P,
                                      ProtocolEvaluator &BaseEval,
                                      const FtOptions &Opts,
                                      const Value *DropValue) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  NvContext &Ctx = BaseEval.ctx();
  if (DropValue)
    Ctx.pinValue(DropValue);
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    const FtScenario &S = Scenarios[I];
    ++R.ScenariosChecked;
    if (Opts.Resume) {
      UnitRecord Rec;
      if (Opts.Resume->replay(naiveScenarioKey(I), Rec)) {
        RunOutcome O;
        replayScenarioRecord(Rec, Scenarios, O, R.Violations);
        if (!O.ok()) {
          ++R.ScenariosSkipped;
          if (R.Outcome.ok())
            R.Outcome = O;
        }
        ++R.ScenariosReplayed;
        continue;
      }
    }
    size_t From = R.Violations.size();
    unsigned Attempts = 1;
    RunOutcome O = runUnitWithRetry(
        Opts.Budget, Opts.Retry, Attempts, [&](const RunBudget &B) {
          return runOneScenarioGoverned(P, BaseEval, S, DropValue, B,
                                        R.Violations);
        });
    R.RetriesPerformed += Attempts - 1;
    if (!O.ok()) {
      ++R.ScenariosSkipped;
      if (R.Outcome.ok())
        R.Outcome = O;
    }
    pinNewViolations(Ctx, R.Violations, From);
    // A canceled scenario is deliberately NOT journaled: cancellation is
    // the run stopping, not the scenario resolving, so it re-runs on
    // resume — which is what keeps resumed aggregates identical to an
    // uninterrupted run.
    if (Opts.Resume && O.Status != RunStatus::Canceled)
      recordScenarioDone(*Opts.Resume, I, O, Attempts,
                         R.Violations.data() + From,
                         R.Violations.data() + R.Violations.size());
    // Collect the scenario's fixpoint garbage back down to the pinned
    // baseline (evaluator globals + partials, drop value, violations).
    Ctx.resetBetweenRuns();
  }
  if (DropValue)
    Ctx.unpinValue(DropValue);
  return R;
}

FtCheckResult nv::naiveFaultToleranceParallel(
    const Program &P, const FtOptions &Opts, ThreadPool &Pool,
    const std::function<const Value *(NvContext &)> &MakeDrop) {
  FtCheckResult R;
  auto Scenarios = enumerateScenarios(P, Opts);
  if (Scenarios.empty())
    return R;

  // One persistent worker per pool thread. Each worker re-parses the
  // program ONCE (AST nodes carry a lazily-filled free-variable cache, so
  // sharing them across threads would race), builds one evaluator over its
  // own NvContext/BddManager arena, then claims scenarios dynamically off
  // a shared counter and garbage-collects its arena back to the pinned
  // baseline between scenarios — instead of the old scheme of building
  // (and throwing away) a fresh parse + arena per contiguous chunk.
  std::string Src = printProgram(P);

  // Violations land in per-scenario slots and are concatenated in scenario
  // order below, so the logical result is identical for any pool size and
  // any dynamic interleaving (route pointers live in the per-worker arenas
  // retained by the result).
  std::vector<std::vector<FtViolation>> PerScenario(Scenarios.size());
  std::vector<RunOutcome> PerOutcome(Scenarios.size());

  // Resume: journaled scenarios are restored up front and never enter the
  // worklist, so workers only claim pending ones. The per-scenario slots
  // make replayed and live results indistinguishable to the aggregation.
  std::vector<size_t> Pending;
  Pending.reserve(Scenarios.size());
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    if (Opts.Resume) {
      UnitRecord Rec;
      if (Opts.Resume->replay(naiveScenarioKey(I), Rec)) {
        replayScenarioRecord(Rec, Scenarios, PerOutcome[I], PerScenario[I]);
        ++R.ScenariosReplayed;
        continue;
      }
    }
    Pending.push_back(I);
  }

  size_t Workers = std::min(Pending.size(), (size_t)Pool.numThreads());
  std::vector<std::shared_ptr<NvContext>> Ctxs(Workers);
  std::atomic<size_t> NextPending{0};
  std::atomic<uint64_t> Retries{0};

  if (Workers > 0)
    Pool.parallelFor(Workers, [&](size_t W) {
      DiagnosticEngine Diags;
      auto Local = parseProgram(Src, Diags);
      if (!Local || !typeCheck(*Local, Diags))
        fatalError("internal: naive-baseline worker failed to re-parse the "
                   "program:\n" +
                   Diags.str());
      auto Ctx = std::make_shared<NvContext>(Local->numNodes());
      InterpProgramEvaluator BaseEval(*Ctx, *Local);
      const Value *Drop = MakeDrop ? MakeDrop(*Ctx) : Ctx->noneV();
      Ctx->pinValue(Drop);
      for (size_t PI = NextPending.fetch_add(1); PI < Pending.size();
           PI = NextPending.fetch_add(1)) {
        size_t I = Pending[PI];
        // Each scenario is governed in its own scope on this worker thread
        // (the thread-local governor chain does not cross the pool), so a
        // budget trip or injected fault skips exactly this scenario;
        // sibling scenarios on this and other workers proceed and their
        // results are bit-identical to an ungoverned run. Transient trips
        // retry with an escalated budget before counting as skipped.
        unsigned Attempts = 1;
        PerOutcome[I] = runUnitWithRetry(
            Opts.Budget, Opts.Retry, Attempts, [&](const RunBudget &B) {
              return runOneScenarioGoverned(*Local, BaseEval, Scenarios[I],
                                            Drop, B, PerScenario[I]);
            });
        if (Attempts > 1)
          Retries.fetch_add(Attempts - 1, std::memory_order_relaxed);
        pinNewViolations(*Ctx, PerScenario[I], 0);
        // Canceled scenarios are not journaled (see naiveFaultTolerance):
        // they re-run on resume. recordDone is thread-safe.
        if (Opts.Resume && PerOutcome[I].Status != RunStatus::Canceled)
          recordScenarioDone(*Opts.Resume, I, PerOutcome[I], Attempts,
                             PerScenario[I].data(),
                             PerScenario[I].data() + PerScenario[I].size());
        Ctx->resetBetweenRuns();
      }
      Ctxs[W] = std::move(Ctx);
    });

  R.ScenariosChecked = Scenarios.size();
  R.RetriesPerformed = Retries.load(std::memory_order_relaxed);
  for (size_t I = 0; I < Scenarios.size(); ++I) {
    if (!PerOutcome[I].ok()) {
      ++R.ScenariosSkipped;
      if (R.Outcome.ok())
        R.Outcome = PerOutcome[I]; // first in scenario order: deterministic
    }
    R.Violations.insert(R.Violations.end(), PerScenario[I].begin(),
                        PerScenario[I].end());
  }
  for (auto &C : Ctxs)
    R.RetainedContexts.push_back(std::move(C));
  return R;
}
