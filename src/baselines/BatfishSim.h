//===- BatfishSim.h - Batfish-style per-prefix simulation -------*- C++ -*-===//
//
// Part of nv-cpp. The simulator baseline of Sec. 6.4: Batfish-style
// all-prefixes analysis, re-implemented in C++ following its published
// architecture — each destination prefix is simulated independently with
// an environment-lookup interpreter over plain (non-MTBDD) route values
// and full re-merges, with no cross-prefix sharing or bulk processing.
// The absolute times differ from the Java tool; the shape (per-prefix
// duplication vs NV's bulk MTBDD processing) is what Fig. 14 compares.
//
//===----------------------------------------------------------------------===//

#ifndef NV_BASELINES_BATFISHSIM_H
#define NV_BASELINES_BATFISHSIM_H

#include "core/Ast.h"
#include "eval/Value.h"
#include "support/Diagnostics.h"
#include "support/Governor.h"
#include "support/Resume.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace nv {

struct BatfishResult {
  bool Converged = true;
  uint64_t PrefixesSimulated = 0;
  /// Prefixes whose governed run ended early (budget trip, cancellation,
  /// injected fault, evaluation error); skipped prefixes contribute empty
  /// Labels rows and clear Converged. Outcome records the first non-ok
  /// per-prefix outcome in destination order.
  uint64_t PrefixesSkipped = 0;
  /// Prefixes replayed from a resume journal (counted in
  /// PrefixesSimulated, so aggregates match an uninterrupted run).
  uint64_t PrefixesReplayed = 0;
  /// Extra attempts spent by the retry policy across all prefixes.
  uint64_t RetriesPerformed = 0;
  RunOutcome Outcome;
  uint64_t TotalPops = 0;
  /// Memory proxy: total interned values allocated across per-prefix runs
  /// (no sharing between prefixes, mirroring per-prefix RIB duplication).
  uint64_t TotalValuesAllocated = 0;
  /// Extracted per-prefix, per-node metrics (see the Extract parameter);
  /// values cannot outlive their per-prefix context, so only extracted
  /// numbers are returned.
  std::vector<std::vector<int64_t>> Labels;
};

/// Runs the all-prefixes problem one prefix at a time over the
/// parameterized single-destination program \p ParamProgram (which must
/// declare `symbolic dest : node`), announcing each of \p Destinations in
/// turn. A fresh evaluation context per prefix models Batfish's per-prefix
/// state.
/// \p Extract (optional) maps each converged label to a number recorded in
/// BatfishResult::Labels (e.g. a hop count); labels themselves die with the
/// per-prefix context. It may run concurrently and must be a pure function
/// of its argument.
/// \p Pool (optional) shards the destination list; per-prefix state stays
/// isolated exactly as in the serial run, and the per-destination results
/// are aggregated in destination order, so output is identical for any
/// pool size.
/// \p JobBudget (optional) governs each per-prefix run in its own scope
/// (on the worker thread that runs it): one prefix exceeding the budget
/// is skipped and reported, siblings are unaffected.
/// \p Resume (optional) checkpoints each completed prefix to a journal and
/// replays prefixes completed by a previous run (pops, allocation counts
/// and extracted rows are recorded, so replayed aggregates are identical);
/// canceled prefixes are never recorded and re-run on resume. \p Retry
/// re-runs transiently tripped prefixes with an escalated budget.
BatfishResult batfishAllPrefixes(
    const Program &ParamProgram, const std::vector<uint32_t> &Destinations,
    const std::function<int64_t(const Value *)> &Extract = nullptr,
    ThreadPool *Pool = nullptr, const RunBudget &JobBudget = {},
    ResumeLog *Resume = nullptr, const RetryPolicy &Retry = {});

} // namespace nv

#endif // NV_BASELINES_BATFISHSIM_H
