//===- Transforms.h - NV-to-NV program transformations ----------*- C++ -*-===//
//
// Part of nv-cpp, a C++ reproduction of "NV: An Intermediate Language for
// Verification of Network Control Planes" (PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source-to-source transformations over NV (Sec. 5.2): capture-avoiding
/// substitution, alpha-renaming to unique binders, top-level inlining and
/// partial evaluation. Analyses compose these — the fault-tolerance
/// meta-protocol (analysis/FaultTolerance.h) is itself an NV-to-NV
/// transform built on top.
///
/// Transforms operate on parsed (not necessarily type-checked) syntax and
/// return fresh trees sharing unchanged subtrees; callers re-run typeCheck
/// on transformed programs before evaluation or encoding.
///
//===----------------------------------------------------------------------===//

#ifndef NV_TRANSFORM_TRANSFORMS_H
#define NV_TRANSFORM_TRANSFORMS_H

#include "core/Ast.h"

#include <map>
#include <string>

namespace nv {

/// Substitutes \p Replacement for free occurrences of \p Name in \p E.
/// Capture-avoiding: binders shadowing Name stop the substitution, and
/// binders that would capture free variables of Replacement are renamed.
ExprPtr substitute(const ExprPtr &E, const std::string &Name,
                   const ExprPtr &Replacement);

/// Applies several substitutions simultaneously.
ExprPtr substituteAll(const ExprPtr &E,
                      const std::map<std::string, ExprPtr> &Subst);

/// Renames every binder in \p E to a fresh unique name ("x$17"). \p Counter
/// persists across calls so names stay unique program-wide.
ExprPtr alphaRename(const ExprPtr &E, uint64_t &Counter);

/// Renames binders in every declaration of \p P.
Program alphaRenameProgram(const Program &P, uint64_t &Counter);

/// Partial evaluation (Sec. 5.2 "Partial Evaluation"): beta-reduces
/// applications of known functions, folds operators over literals, resolves
/// conditionals and matches with statically-known scrutinees, projects
/// known tuples/records, and drops dead lets. The paper uses this pass to
/// "normalize away most of the clutter introduced by language abstractions
/// and transformations". Input must be alpha-renamed (unique binders).
ExprPtr partialEval(const ExprPtr &E);

/// Partially evaluates a whole program: inlines top-level lets into the
/// init/trans/merge/assert/require declarations and partially evaluates
/// the results, leaving a program whose semantic declarations are
/// self-contained. Symbolic declarations are kept as free variables.
Program partialEvalProgram(const Program &P);

/// Renames the init/trans/merge/assert declarations of \p P to
/// `__base_<name>` (adjusting references in every declaration body), so a
/// meta-protocol can wrap them. The returned program has no
/// init/trans/merge/assert declarations of its own.
Program renameSemanticDecls(const Program &P);

/// Counts AST nodes (testing/bench metric for transformation size).
size_t exprSize(const ExprPtr &E);
size_t programSize(const Program &P);

} // namespace nv

#endif // NV_TRANSFORM_TRANSFORMS_H
