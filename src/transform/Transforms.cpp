//===- Transforms.cpp - NV-to-NV program transformations --------------------===//

#include "transform/Transforms.h"

#include "core/TypeChecker.h"
#include "support/Fatal.h"
#include "support/Governor.h"

#include <atomic>
#include <set>

using namespace nv;

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

std::string freshName(const std::string &Base) {
  static std::atomic<uint64_t> Counter{0};
  return Base + "$" + std::to_string(Counter++);
}

ExprPtr shallowCopy(const ExprPtr &E) { return std::make_shared<Expr>(*E); }

/// Occurrences of free variable \p Name in \p E.
size_t countOccurrences(const ExprPtr &E, const std::string &Name) {
  if (!E)
    return 0;
  switch (E->Kind) {
  case ExprKind::Var:
    return E->Name == Name ? 1 : 0;
  case ExprKind::Let: {
    size_t N = countOccurrences(E->Args[0], Name);
    if (E->Name != Name)
      N += countOccurrences(E->Args[1], Name);
    return N;
  }
  case ExprKind::Fun:
    return E->Name == Name ? 0 : countOccurrences(E->Args[0], Name);
  case ExprKind::Match: {
    size_t N = countOccurrences(E->Args[0], Name);
    for (const MatchCase &C : E->Cases) {
      std::vector<std::string> Bound;
      C.Pat->boundVars(Bound);
      bool Shadowed = false;
      for (const std::string &B : Bound)
        Shadowed |= B == Name;
      if (!Shadowed)
        N += countOccurrences(C.Body, Name);
    }
    return N;
  }
  default: {
    size_t N = 0;
    for (const ExprPtr &A : E->Args)
      N += countOccurrences(A, Name);
    return N;
  }
  }
}

bool isFreeIn(const ExprPtr &E, const std::string &Name) {
  return countOccurrences(E, Name) > 0;
}

/// Renames the variables bound by \p P to fresh names, in place in a
/// cloned pattern; records the renamings.
PatternPtr freshenPattern(const PatternPtr &P,
                          std::map<std::string, ExprPtr> &Renames) {
  auto Copy = std::make_shared<Pattern>(*P);
  if (Copy->Kind == PatternKind::Var) {
    std::string NewName = freshName(Copy->Name);
    Renames[Copy->Name] = Expr::var(NewName);
    Copy->Name = NewName;
    return Copy;
  }
  for (PatternPtr &Sub : Copy->Elems)
    Sub = freshenPattern(Sub, Renames);
  return Copy;
}

} // namespace

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

ExprPtr nv::substituteAll(const ExprPtr &E,
                          const std::map<std::string, ExprPtr> &Subst) {
  if (!E || Subst.empty())
    return E;
  switch (E->Kind) {
  case ExprKind::Var: {
    auto It = Subst.find(E->Name);
    return It == Subst.end() ? E : It->second;
  }
  case ExprKind::Const:
  case ExprKind::None:
    return E;
  case ExprKind::Let: {
    ExprPtr Init = substituteAll(E->Args[0], Subst);
    std::map<std::string, ExprPtr> BodySubst = Subst;
    BodySubst.erase(E->Name);
    std::string Binder = E->Name;
    ExprPtr Body = E->Args[1];
    // Avoid capturing a free variable of any replacement.
    for (const auto &[_, R] : BodySubst) {
      if (isFreeIn(R, Binder)) {
        std::string NewName = freshName(Binder);
        Body = substituteAll(Body, {{Binder, Expr::var(NewName)}});
        Binder = NewName;
        break;
      }
    }
    if (BodySubst.empty() && Init.get() == E->Args[0].get() &&
        Binder == E->Name)
      return E;
    ExprPtr Copy = shallowCopy(E);
    Copy->Name = Binder;
    Copy->Args[0] = Init;
    Copy->Args[1] = substituteAll(Body, BodySubst);
    return Copy;
  }
  case ExprKind::Fun: {
    std::map<std::string, ExprPtr> BodySubst = Subst;
    BodySubst.erase(E->Name);
    std::string Binder = E->Name;
    ExprPtr Body = E->Args[0];
    for (const auto &[_, R] : BodySubst) {
      if (isFreeIn(R, Binder)) {
        std::string NewName = freshName(Binder);
        Body = substituteAll(Body, {{Binder, Expr::var(NewName)}});
        Binder = NewName;
        break;
      }
    }
    if (BodySubst.empty() && Binder == E->Name)
      return E;
    ExprPtr Copy = shallowCopy(E);
    Copy->Name = Binder;
    Copy->Args[0] = substituteAll(Body, BodySubst);
    Copy->CachedFreeVars = nullptr;
    return Copy;
  }
  case ExprKind::Match: {
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = substituteAll(E->Args[0], Subst);
    for (MatchCase &C : Copy->Cases) {
      std::vector<std::string> Bound;
      C.Pat->boundVars(Bound);
      std::map<std::string, ExprPtr> BodySubst = Subst;
      for (const std::string &B : Bound)
        BodySubst.erase(B);
      // Rename pattern binders that would capture replacement variables.
      bool NeedsFreshen = false;
      for (const std::string &B : Bound)
        for (const auto &[_, R] : BodySubst)
          NeedsFreshen |= isFreeIn(R, B);
      if (NeedsFreshen) {
        std::map<std::string, ExprPtr> Renames;
        C.Pat = freshenPattern(C.Pat, Renames);
        C.Body = substituteAll(C.Body, Renames);
      }
      C.Body = substituteAll(C.Body, BodySubst);
    }
    return Copy;
  }
  default: {
    ExprPtr Copy = shallowCopy(E);
    for (ExprPtr &A : Copy->Args)
      A = substituteAll(A, Subst);
    return Copy;
  }
  }
}

ExprPtr nv::substitute(const ExprPtr &E, const std::string &Name,
                       const ExprPtr &Replacement) {
  return substituteAll(E, {{Name, Replacement}});
}

//===----------------------------------------------------------------------===//
// Alpha renaming
//===----------------------------------------------------------------------===//

namespace {

PatternPtr renamePattern(const PatternPtr &P,
                         std::map<std::string, std::string> &Renames,
                         uint64_t &Counter) {
  auto Copy = std::make_shared<Pattern>(*P);
  if (Copy->Kind == PatternKind::Var) {
    std::string NewName = Copy->Name + "$" + std::to_string(Counter++);
    Renames[Copy->Name] = NewName;
    Copy->Name = NewName;
    return Copy;
  }
  for (PatternPtr &Sub : Copy->Elems)
    Sub = renamePattern(Sub, Renames, Counter);
  return Copy;
}

ExprPtr alphaRec(const ExprPtr &E, std::map<std::string, std::string> Renames,
                 uint64_t &Counter) {
  if (!E)
    return E;
  switch (E->Kind) {
  case ExprKind::Var: {
    auto It = Renames.find(E->Name);
    if (It == Renames.end())
      return E;
    ExprPtr Copy = shallowCopy(E);
    Copy->Name = It->second;
    return Copy;
  }
  case ExprKind::Const:
  case ExprKind::None:
    return E;
  case ExprKind::Let: {
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = alphaRec(E->Args[0], Renames, Counter);
    std::string NewName = E->Name + "$" + std::to_string(Counter++);
    Renames[E->Name] = NewName;
    Copy->Name = NewName;
    Copy->Args[1] = alphaRec(E->Args[1], Renames, Counter);
    return Copy;
  }
  case ExprKind::Fun: {
    ExprPtr Copy = shallowCopy(E);
    std::string NewName = E->Name + "$" + std::to_string(Counter++);
    Renames[E->Name] = NewName;
    Copy->Name = NewName;
    Copy->Args[0] = alphaRec(E->Args[0], Renames, Counter);
    Copy->CachedFreeVars = nullptr;
    return Copy;
  }
  case ExprKind::Match: {
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = alphaRec(E->Args[0], Renames, Counter);
    for (MatchCase &C : Copy->Cases) {
      std::map<std::string, std::string> CaseRenames = Renames;
      C.Pat = renamePattern(C.Pat, CaseRenames, Counter);
      C.Body = alphaRec(C.Body, CaseRenames, Counter);
    }
    return Copy;
  }
  default: {
    ExprPtr Copy = shallowCopy(E);
    for (ExprPtr &A : Copy->Args)
      A = alphaRec(A, Renames, Counter);
    return Copy;
  }
  }
}

} // namespace

ExprPtr nv::alphaRename(const ExprPtr &E, uint64_t &Counter) {
  return alphaRec(E, {}, Counter);
}

Program nv::alphaRenameProgram(const Program &P, uint64_t &Counter) {
  Program Out = P;
  for (DeclPtr &D : Out.Decls) {
    if (!D->Body)
      continue;
    auto Copy = std::make_shared<Decl>(*D);
    Copy->Body = alphaRename(D->Body, Counter);
    D = Copy;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Partial evaluation
//===----------------------------------------------------------------------===//

namespace {

/// True when duplicating \p E is free (substitution without a let).
bool isDuplicable(const ExprPtr &E) {
  switch (E->Kind) {
  case ExprKind::Const:
  case ExprKind::Var:
  case ExprKind::None:
  case ExprKind::Fun:
    return true;
  case ExprKind::Some:
  case ExprKind::Tuple:
  case ExprKind::Record: {
    for (const ExprPtr &A : E->Args)
      if (!isDuplicable(A))
        return false;
    return true;
  }
  default:
    return false;
  }
}

enum class MatchVerdict { Match, NoMatch, Unknown };

/// Decides whether the syntactic shape of \p E matches \p P.
MatchVerdict tryStaticMatch(const PatternPtr &P, const ExprPtr &E,
                            std::map<std::string, ExprPtr> &Bindings) {
  switch (P->Kind) {
  case PatternKind::Wild:
    return MatchVerdict::Match;
  case PatternKind::Var:
    Bindings[P->Name] = E;
    return MatchVerdict::Match;
  case PatternKind::Lit:
    if (E->Kind != ExprKind::Const)
      return MatchVerdict::Unknown;
    return E->Lit.equals(P->Lit) ? MatchVerdict::Match : MatchVerdict::NoMatch;
  case PatternKind::None:
    if (E->Kind == ExprKind::None)
      return MatchVerdict::Match;
    if (E->Kind == ExprKind::Some)
      return MatchVerdict::NoMatch;
    return MatchVerdict::Unknown;
  case PatternKind::Some:
    if (E->Kind == ExprKind::None)
      return MatchVerdict::NoMatch;
    if (E->Kind == ExprKind::Some)
      return tryStaticMatch(P->Elems[0], E->Args[0], Bindings);
    return MatchVerdict::Unknown;
  case PatternKind::Tuple: {
    // Tuples, and edge constants destructured as node pairs.
    if (E->Kind == ExprKind::Const && E->Lit.Kind == LiteralKind::Edge &&
        P->Elems.size() == 2) {
      ExprPtr U = Expr::nodeConst(E->Lit.NodeVal, E->Loc);
      ExprPtr V = Expr::nodeConst(E->Lit.NodeVal2, E->Loc);
      MatchVerdict M1 = tryStaticMatch(P->Elems[0], U, Bindings);
      if (M1 == MatchVerdict::NoMatch)
        return M1;
      MatchVerdict M2 = tryStaticMatch(P->Elems[1], V, Bindings);
      if (M2 == MatchVerdict::NoMatch)
        return M2;
      return M1 == MatchVerdict::Match && M2 == MatchVerdict::Match
                 ? MatchVerdict::Match
                 : MatchVerdict::Unknown;
    }
    if (E->Kind != ExprKind::Tuple || E->Args.size() != P->Elems.size())
      return MatchVerdict::Unknown;
    MatchVerdict Acc = MatchVerdict::Match;
    for (size_t I = 0; I < P->Elems.size(); ++I) {
      MatchVerdict M = tryStaticMatch(P->Elems[I], E->Args[I], Bindings);
      if (M == MatchVerdict::NoMatch)
        return M;
      if (M == MatchVerdict::Unknown)
        Acc = MatchVerdict::Unknown;
    }
    return Acc;
  }
  case PatternKind::Record: {
    if (E->Kind != ExprKind::Record)
      return MatchVerdict::Unknown;
    MatchVerdict Acc = MatchVerdict::Match;
    for (size_t I = 0; I < P->Labels.size(); ++I) {
      int Idx = -1;
      for (size_t J = 0; J < E->Labels.size(); ++J)
        if (E->Labels[J] == P->Labels[I])
          Idx = static_cast<int>(J);
      if (Idx < 0)
        return MatchVerdict::Unknown;
      MatchVerdict M = tryStaticMatch(P->Elems[I], E->Args[Idx], Bindings);
      if (M == MatchVerdict::NoMatch)
        return M;
      if (M == MatchVerdict::Unknown)
        Acc = MatchVerdict::Unknown;
    }
    return Acc;
  }
  }
  nv_unreachable("covered switch");
}

uint64_t truncWidth(uint64_t V, unsigned W) {
  return W >= 64 ? V : (V & ((uint64_t(1) << W) - 1));
}

/// Folds an operator over constant literals; null when not foldable.
ExprPtr foldOper(const ExprPtr &E) {
  Op O = E->OpCode;
  const auto &A = E->Args;
  auto isConst = [](const ExprPtr &X) { return X->Kind == ExprKind::Const; };
  auto boolOf = [](const ExprPtr &X) { return X->Lit.BoolVal; };

  switch (O) {
  case Op::And:
    if (isConst(A[0]))
      return boolOf(A[0]) ? A[1] : Expr::boolConst(false, E->Loc);
    if (isConst(A[1]) && boolOf(A[1]))
      return A[0];
    return nullptr;
  case Op::Or:
    if (isConst(A[0]))
      return boolOf(A[0]) ? Expr::boolConst(true, E->Loc) : A[1];
    if (isConst(A[1]) && !boolOf(A[1]))
      return A[0];
    return nullptr;
  case Op::Not:
    if (isConst(A[0]))
      return Expr::boolConst(!boolOf(A[0]), E->Loc);
    return nullptr;
  case Op::Eq:
  case Op::Neq: {
    // NV is pure and total: syntactically identical operands are equal.
    bool KnownEqual = exprEquals(A[0], A[1]);
    if (KnownEqual)
      return Expr::boolConst(O == Op::Eq, E->Loc);
    if (isConst(A[0]) && isConst(A[1])) {
      bool Eq = A[0]->Lit.equals(A[1]->Lit);
      return Expr::boolConst(O == Op::Eq ? Eq : !Eq, E->Loc);
    }
    // Distinct constructors can never be equal.
    auto Ctor = [](const ExprPtr &X) -> int {
      switch (X->Kind) {
      case ExprKind::None:
        return 1;
      case ExprKind::Some:
        return 2;
      default:
        return 0;
      }
    };
    if (Ctor(A[0]) && Ctor(A[1]) && Ctor(A[0]) != Ctor(A[1]))
      return Expr::boolConst(O == Op::Neq, E->Loc);
    return nullptr;
  }
  case Op::Add:
  case Op::Sub: {
    if (!isConst(A[0]) || !isConst(A[1]))
      return nullptr;
    unsigned W = A[0]->Lit.Width;
    uint64_t R = O == Op::Add ? A[0]->Lit.IntVal + A[1]->Lit.IntVal
                              : A[0]->Lit.IntVal - A[1]->Lit.IntVal;
    return Expr::intConst(truncWidth(R, W), W, E->Loc);
  }
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge: {
    if (!isConst(A[0]) || !isConst(A[1]))
      return nullptr;
    uint64_t L = A[0]->Lit.IntVal, R = A[1]->Lit.IntVal;
    bool B = O == Op::Lt ? L < R : O == Op::Le ? L <= R : O == Op::Gt ? L > R
                                                                      : L >= R;
    return Expr::boolConst(B, E->Loc);
  }
  default:
    return nullptr;
  }
}

} // namespace

ExprPtr nv::partialEval(const ExprPtr &E) {
  if (!E)
    return E;
  switch (E->Kind) {
  case ExprKind::Const:
  case ExprKind::Var:
  case ExprKind::None:
    return E;
  case ExprKind::Let: {
    ExprPtr Init = partialEval(E->Args[0]);
    size_t Uses = countOccurrences(E->Args[1], E->Name);
    if (Uses == 0)
      return partialEval(E->Args[1]); // pure language: dead let
    if (Uses == 1 || isDuplicable(Init))
      return partialEval(substitute(E->Args[1], E->Name, Init));
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Init;
    Copy->Args[1] = partialEval(E->Args[1]);
    return Copy;
  }
  case ExprKind::Fun: {
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = partialEval(E->Args[0]);
    Copy->CachedFreeVars = nullptr;
    return Copy;
  }
  case ExprKind::App: {
    ExprPtr Fn = partialEval(E->Args[0]);
    ExprPtr Arg = partialEval(E->Args[1]);
    if (Fn->Kind == ExprKind::Fun) {
      size_t Uses = countOccurrences(Fn->Args[0], Fn->Name);
      if (Uses == 0)
        return partialEval(Fn->Args[0]);
      if (Uses == 1 || isDuplicable(Arg))
        return partialEval(substitute(Fn->Args[0], Fn->Name, Arg));
      std::string Tmp = freshName(Fn->Name);
      return Expr::let(Tmp, Arg,
                       partialEval(substitute(Fn->Args[0], Fn->Name,
                                              Expr::var(Tmp))),
                       nullptr, E->Loc);
    }
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Fn;
    Copy->Args[1] = Arg;
    return Copy;
  }
  case ExprKind::If: {
    ExprPtr Cond = partialEval(E->Args[0]);
    if (Cond->Kind == ExprKind::Const)
      return partialEval(E->Args[Cond->Lit.BoolVal ? 1 : 2]);
    ExprPtr Then = partialEval(E->Args[1]);
    ExprPtr Else = partialEval(E->Args[2]);
    if (exprEquals(Then, Else))
      return Then;
    // if c then true else false  ==>  c
    if (Then->Kind == ExprKind::Const && Else->Kind == ExprKind::Const &&
        Then->Lit.Kind == LiteralKind::Bool &&
        Else->Lit.Kind == LiteralKind::Bool) {
      if (Then->Lit.BoolVal && !Else->Lit.BoolVal)
        return Cond;
      if (!Then->Lit.BoolVal && Else->Lit.BoolVal)
        return partialEval(Expr::oper(Op::Not, {Cond}, E->Loc));
    }
    ExprPtr Copy = shallowCopy(E);
    Copy->Args = {Cond, Then, Else};
    return Copy;
  }
  case ExprKind::Match: {
    ExprPtr Scrut = partialEval(E->Args[0]);
    std::vector<MatchCase> Residual;
    for (const MatchCase &C : E->Cases) {
      std::map<std::string, ExprPtr> Bindings;
      MatchVerdict V = tryStaticMatch(C.Pat, Scrut, Bindings);
      if (V == MatchVerdict::NoMatch)
        continue; // this case can never fire
      if (V == MatchVerdict::Match && Residual.empty()) {
        // First reachable case matches statically: commit to it. Bind
        // non-duplicable scrutinee parts through lets.
        ExprPtr Body = C.Body;
        std::map<std::string, ExprPtr> Direct;
        for (auto &[Name, Bound] : Bindings) {
          if (isDuplicable(Bound) ||
              countOccurrences(Body, Name) <= 1) {
            Direct[Name] = Bound;
          } else {
            std::string Tmp = freshName(Name);
            Body = Expr::let(Tmp, Bound,
                             substitute(Body, Name, Expr::var(Tmp)));
            // Note: binding through the let; nothing to substitute now.
          }
        }
        return partialEval(substituteAll(Body, Direct));
      }
      Residual.push_back({C.Pat, partialEval(C.Body)});
      if (V == MatchVerdict::Match)
        break; // later cases are unreachable
    }
    if (Residual.empty())
      evalError("partial evaluation found an inexhaustive match");
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Scrut;
    Copy->Cases = std::move(Residual);
    return Copy;
  }
  case ExprKind::Oper: {
    ExprPtr Copy = shallowCopy(E);
    for (ExprPtr &A : Copy->Args)
      A = partialEval(A);
    if (ExprPtr Folded = foldOper(Copy))
      return Folded;
    return Copy;
  }
  case ExprKind::Tuple:
  case ExprKind::Record:
  case ExprKind::Some: {
    ExprPtr Copy = shallowCopy(E);
    for (ExprPtr &A : Copy->Args)
      A = partialEval(A);
    return Copy;
  }
  case ExprKind::Proj: {
    ExprPtr Sub = partialEval(E->Args[0]);
    if (Sub->Kind == ExprKind::Tuple && E->Index < Sub->Args.size())
      return Sub->Args[E->Index];
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Sub;
    return Copy;
  }
  case ExprKind::Field: {
    ExprPtr Sub = partialEval(E->Args[0]);
    if (Sub->Kind == ExprKind::Record) {
      for (size_t I = 0; I < Sub->Labels.size(); ++I)
        if (Sub->Labels[I] == E->Name)
          return Sub->Args[I];
    }
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Sub;
    return Copy;
  }
  case ExprKind::RecordUpdate: {
    ExprPtr Base = partialEval(E->Args[0]);
    if (Base->Kind == ExprKind::Record) {
      ExprPtr Copy = shallowCopy(Base);
      for (size_t I = 0; I < E->Labels.size(); ++I) {
        for (size_t J = 0; J < Copy->Labels.size(); ++J)
          if (Copy->Labels[J] == E->Labels[I])
            Copy->Args[J] = partialEval(E->Args[I + 1]);
      }
      return Copy;
    }
    ExprPtr Copy = shallowCopy(E);
    Copy->Args[0] = Base;
    for (size_t I = 1; I < Copy->Args.size(); ++I)
      Copy->Args[I] = partialEval(E->Args[I]);
    return Copy;
  }
  }
  nv_unreachable("covered switch");
}

Program nv::partialEvalProgram(const Program &P) {
  uint64_t Counter = 0;
  Program Renamed = alphaRenameProgram(P, Counter);

  std::map<std::string, ExprPtr> Globals;
  static const std::set<std::string> Semantic = {"init", "trans", "merge",
                                                 "assert"};
  Program Out;
  Out.AttrType = P.AttrType;
  for (const DeclPtr &D : Renamed.Decls) {
    switch (D->Kind) {
    case DeclKind::Let: {
      ExprPtr Body = partialEval(substituteAll(D->Body, Globals));
      Globals[D->Name] = Body;
      if (Semantic.count(D->Name)) {
        auto Copy = std::make_shared<Decl>(*D);
        Copy->Body = Body;
        Out.Decls.push_back(Copy);
      }
      break;
    }
    case DeclKind::Require: {
      auto Copy = std::make_shared<Decl>(*D);
      Copy->Body = partialEval(substituteAll(D->Body, Globals));
      Out.Decls.push_back(Copy);
      break;
    }
    case DeclKind::Symbolic: {
      auto Copy = std::make_shared<Decl>(*D);
      if (Copy->Body)
        Copy->Body = partialEval(substituteAll(Copy->Body, Globals));
      Out.Decls.push_back(Copy);
      break;
    }
    case DeclKind::TypeAlias:
    case DeclKind::Nodes:
    case DeclKind::Edges:
      Out.Decls.push_back(D);
      break;
    }
  }
  return Out;
}

Program nv::renameSemanticDecls(const Program &P) {
  static const char *Names[] = {"init", "trans", "merge", "assert"};
  std::map<std::string, ExprPtr> Renames;
  for (const char *N : Names)
    Renames[N] = Expr::var(std::string("__base_") + N);

  Program Out;
  Out.AttrType = P.AttrType;
  for (const DeclPtr &D : P.Decls) {
    auto Copy = std::make_shared<Decl>(*D);
    if (Copy->Body)
      Copy->Body = substituteAll(Copy->Body, Renames);
    if (Copy->Kind == DeclKind::Let) {
      for (const char *N : Names)
        if (Copy->Name == N)
          Copy->Name = std::string("__base_") + N;
      // Pin the declaration to its inferred type (when the input was type
      // checked and the type is concrete). Without this, re-parsing the
      // printed program can re-generalize, leaving e.g. an empty set
      // literal's key type polymorphic and unevaluable.
      if (Copy->Body->Ty) {
        TypePtr T = zonk(Copy->Body->Ty);
        if (isClosedType(T)) {
          Copy->Ty = T;
          Copy->ParamCount = 0;
        }
      }
    }
    Out.Decls.push_back(Copy);
  }
  return Out;
}

size_t nv::exprSize(const ExprPtr &E) {
  if (!E)
    return 0;
  size_t N = 1;
  for (const ExprPtr &A : E->Args)
    N += exprSize(A);
  for (const MatchCase &C : E->Cases)
    N += exprSize(C.Body);
  return N;
}

size_t nv::programSize(const Program &P) {
  size_t N = 0;
  for (const DeclPtr &D : P.Decls)
    N += exprSize(D->Body);
  return N;
}
